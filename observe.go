package wrht

import (
	"fmt"
	"io"
	"os"
	"strings"

	"wrht/internal/obs"
	"wrht/internal/stats"
)

// Observer is the public handle on a SweepSession's flight recorder
// (internal/obs). Obtain one with SweepSession.Observe *before* pricing
// starts; every subsequent CommunicationTime / RunSweep / SimulateFabric /
// Compare call on the session then records per-step pricing spans,
// fabric admit/preempt/reconfig timelines, per-wavelength occupancy lanes,
// and cache/certificate counters. Observation is write-only: priced numbers
// are bit-identical to an unobserved session, and exported traces are
// byte-deterministic regardless of sweep parallelism (all timestamps are
// simulated time, and every logical run records to its own track set).
//
//	ss := wrht.NewSweepSession()
//	ob := ss.Observe()
//	res, _ := ss.SimulateFabric(cfg, jobs, policy)
//	ob.WriteTraceFile("trace.json") // open in ui.perfetto.dev
//	fmt.Print(ss.Snapshot().Markdown())
type Observer struct {
	rec *obs.Recorder
}

// Observe enables the session's flight recorder (idempotent: repeated calls
// return a handle on the same recorder) and returns the Observer used to
// export its artifacts. Enabling is safe to race with in-flight pricing —
// the recorder pointer is swapped in atomically, so concurrent calls that
// sampled the pre-swap state simply finish unobserved and everything that
// starts afterwards records. For byte-deterministic trace exports, still
// call Observe before issuing pricing work (a half-observed sweep records a
// nondeterministic subset of its runs).
func (ss *SweepSession) Observe() *Observer {
	rec := obs.New()
	if !ss.sess.rec.CompareAndSwap(nil, rec) {
		rec = ss.sess.rec.Load()
	}
	return &Observer{rec: rec}
}

// WriteTrace exports the session's recorded streams as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: fabric
// jobs as tracks with instant markers, run/settle spans, queue-depth and
// lit-wavelength counter tracks, per-wavelength occupancy lanes, and
// per-step pricing spans for every schedule the session priced.
func (o *Observer) WriteTrace(w io.Writer) error {
	return o.rec.WriteTrace(w)
}

// WriteTraceFile is WriteTrace to a file path.
func (o *Observer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.rec.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Metric is one named scalar of a metrics snapshot.
type Metric struct {
	Name  string
	Value float64
}

// GaugeMetric is the last/max pair of a recorded gauge.
type GaugeMetric struct {
	Name string
	Last float64
	Max  float64
}

// LatencyMetric summarizes one recorded latency histogram (seconds).
type LatencyMetric struct {
	Name  string
	Count int64
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
}

// WavelengthUse is one wavelength's accumulated busy time within one
// recorded fabric simulation (Process names the simulation).
type WavelengthUse struct {
	Process  string
	Index    int
	BusySec  float64
	Segments int
}

// MetricsSnapshot is a point-in-time summary of an observed session: cache
// effectiveness per layer plus every recorder counter, gauge, and
// per-wavelength occupancy accumulator. Render with Markdown or CSV.
type MetricsSnapshot struct {
	Cache       CacheStats
	Counters    []Metric
	Gauges      []GaugeMetric
	Latencies   []LatencyMetric
	Wavelengths []WavelengthUse
	// Spans/Instants/Samples count the recorded trace stream entries.
	Spans, Instants, Samples int
}

// Snapshot summarizes the session's observability state. It works on
// unobserved sessions too (cache stats only, empty recorder sections).
func (ss *SweepSession) Snapshot() MetricsSnapshot {
	snap := ss.sess.recorder().Snapshot()
	out := MetricsSnapshot{
		Cache:    ss.Stats(),
		Spans:    snap.Spans,
		Instants: snap.Instants,
		Samples:  snap.Samples,
	}
	for _, c := range snap.Counters {
		out.Counters = append(out.Counters, Metric(c))
	}
	for _, g := range snap.Gauges {
		out.Gauges = append(out.Gauges, GaugeMetric(g))
	}
	for _, h := range snap.Hists {
		out.Latencies = append(out.Latencies, LatencyMetric(h))
	}
	for _, ln := range snap.Lanes {
		out.Wavelengths = append(out.Wavelengths, WavelengthUse{
			Process: ln.Process, Index: ln.Lane, BusySec: ln.BusySec, Segments: ln.Segments,
		})
	}
	return out
}

// tables renders the snapshot sections as stats tables (shared by the
// Markdown and CSV forms, so both carry identical columns).
func (s MetricsSnapshot) tables() []*stats.Table {
	cache := stats.NewTable("Cache layers", "layer", "hits", "builds")
	cache.AddRowf("plan", s.Cache.PlanHits, s.Cache.PlanBuilds)
	cache.AddRowf("schedule", s.Cache.ScheduleHits, s.Cache.ScheduleBuilds)
	cache.AddRowf("simulation", s.Cache.SimulationHits, s.Cache.SimulationRuns)
	cache.AddRowf("fabric-runtime", s.Cache.FabricRuntimeHits, s.Cache.FabricRuntimeBuilds)
	out := []*stats.Table{cache}

	counters := stats.NewTable("Counters", "name", "value")
	for _, c := range s.Counters {
		counters.AddRowf(c.Name, c.Value)
	}
	counters.AddRowf("trace.spans", s.Spans)
	counters.AddRowf("trace.instants", s.Instants)
	counters.AddRowf("trace.samples", s.Samples)
	out = append(out, counters)

	if len(s.Gauges) > 0 {
		gauges := stats.NewTable("Gauges", "name", "last", "max")
		for _, g := range s.Gauges {
			gauges.AddRowf(g.Name, g.Last, g.Max)
		}
		out = append(out, gauges)
	}
	if len(s.Latencies) > 0 {
		lat := stats.NewTable("Latency", "name", "count", "mean", "p50", "p90", "p99", "max")
		for _, h := range s.Latencies {
			lat.AddRowf(h.Name, h.Count,
				stats.FormatSeconds(h.Mean), stats.FormatSeconds(h.P50),
				stats.FormatSeconds(h.P90), stats.FormatSeconds(h.P99),
				stats.FormatSeconds(h.Max))
		}
		out = append(out, lat)
	}
	if len(s.Wavelengths) > 0 {
		lanes := stats.NewTable("Wavelength occupancy", "process", "wavelength", "busy", "segments")
		for _, w := range s.Wavelengths {
			lanes.AddRowf(w.Process, w.Index, stats.FormatSeconds(w.BusySec), w.Segments)
		}
		out = append(out, lanes)
	}
	return out
}

// Markdown renders the snapshot as markdown tables.
func (s MetricsSnapshot) Markdown() string {
	var b strings.Builder
	for i, t := range s.tables() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.Markdown())
	}
	return b.String()
}

// CSV renders the snapshot as CSV sections separated by blank lines, with
// the same columns as the markdown form; each section is preceded by a
// `# <title>` comment line.
func (s MetricsSnapshot) CSV() string {
	var b strings.Builder
	for i, t := range s.tables() {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "# %s\n", t.Title)
		b.WriteString(t.CSV())
	}
	return b.String()
}

// ScheduleClassStats reports how the classed-pricing lowering classified a
// schedule's steps: how many carry a verified rotational-symmetry
// certificate (priced in O(classes) per step), how many were materialized
// transfer-by-transfer, and how many of those *claimed* a certificate that
// failed verification (demotions — silent fallbacks that cost the O(N)
// pricing speedup and that the observability layer exists to surface).
type ScheduleClassStats struct {
	Algorithm string
	Steps     int
	// CertifiedSteps/MaterializedSteps/DemotedSteps partition the steps
	// (demoted is a subset of materialized).
	CertifiedSteps    int
	MaterializedSteps int
	DemotedSteps      int
	// Classes is the total pricing-equivalence-class count across certified
	// steps; Transfers the total point-to-point transfer count they stand for.
	Classes   int
	Transfers int
}

// InspectScheduleClasses lowers the algorithm's schedule for a buffer of the
// given size (exactly as CommunicationTime would) and reports its
// certificate statistics without pricing it.
func InspectScheduleClasses(cfg Config, alg Algorithm, bytes int64) (ScheduleClassStats, error) {
	if err := cfg.Validate(); err != nil {
		return ScheduleClassStats{}, err
	}
	if bytes <= 0 {
		return ScheduleClassStats{}, fmt.Errorf("wrht: non-positive buffer size %d", bytes)
	}
	elems := int((bytes + int64(cfg.BytesPerElem) - 1) / int64(cfg.BytesPerElem))
	cls, _, _, err := buildClassSchedule(cfg, alg, elems, nil)
	if err != nil {
		return ScheduleClassStats{}, err
	}
	defer cls.Release()
	cert, mat, dem := cls.CertStats()
	return ScheduleClassStats{
		Algorithm:         cls.Algorithm,
		Steps:             cls.NumSteps(),
		CertifiedSteps:    cert,
		MaterializedSteps: mat,
		DemotedSteps:      dem,
		Classes:           cls.NumClasses(),
		Transfers:         cls.TotalTransfers(),
	}, nil
}
