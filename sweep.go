package wrht

import (
	"context"
	"fmt"

	"wrht/internal/dnn"
	"wrht/internal/exp"
)

// SweepSpec declares a multi-axis experiment grid over the repository's
// pricing paths. Every non-empty axis contributes one dimension to the
// cartesian product; empty axes pin their dimension to Base. The spec picks
// one of three modes from the axes present:
//
//   - communication (default): nodes × wavelengths × workloads × algorithms
//     × Wrht options, priced by CommunicationTime;
//   - fabric (FabricMixes set): nodes × wavelengths × job mixes × policies,
//     priced by SimulateFabric;
//   - multi-rack (Racks set): racks × nodes-per-rack × wavelengths ×
//     workloads × Wrht options, priced by MultiRackTime.
//
// RunSweep evaluates the grid on a worker pool while all workers share one
// memoized Wrht plan cache, so the redundant core.BuildPlan work that
// dominates wide serial sweeps is paid once per distinct
// (nodes, wavelengths, options) key.
type SweepSpec struct {
	// Base is the template configuration every point starts from. The zero
	// value means the evaluation defaults (DefaultConfig) with the node
	// count taken from the Nodes axis.
	Base Config

	// Nodes and Wavelengths override Base.Nodes / Base.Optical.Wavelengths.
	Nodes       []int
	Wavelengths []int

	// Models names catalog networks (gradient size at Base.BytesPerElem);
	// MessageBytes sweeps raw buffer sizes. Exactly one of the two axes
	// defines the workload of communication and multi-rack sweeps.
	Models       []string
	MessageBytes []int64

	// Algorithms defaults to [AlgWrht] (communication mode only).
	Algorithms []Algorithm

	// GroupSizes, GreedyA2A and PipelineChunks sweep the Wrht planner
	// options (Config.WrhtGroupSize / WrhtGreedyA2A / PipelineChunks); a
	// group size of 0 selects the optimizer. Infeasible combinations fail
	// per point without aborting the sweep.
	GroupSizes     []int
	GreedyA2A      []bool
	PipelineChunks []int

	// FabricMixes switches the sweep to fabric mode: each point co-simulates
	// one mix under one policy. FabricPolicies defaults to FabricPolicies().
	FabricMixes    []FabricMix
	FabricPolicies []FabricPolicy

	// Racks switches the sweep to multi-rack mode (NodesPerRack required;
	// the worker count is racks × nodes-per-rack, so the Nodes axis is
	// rejected).
	Racks        []int
	NodesPerRack []int

	// Parallelism is the worker-pool size; <= 0 selects GOMAXPROCS. Results
	// are independent of it.
	Parallelism int
}

// FabricMix is one named tenant mix of a fabric-mode sweep.
type FabricMix struct {
	// Name labels the mix in results; defaults to "mix<i>".
	Name string
	Jobs []JobSpec
}

// SweepCell is one priced point of a sweep, carrying the resolved scenario
// coordinates, the mode's primary metric (Seconds), the mode-specific detail
// result, and the point's error if pricing failed.
type SweepCell struct {
	// Index is the point's position in deterministic grid order.
	Index int

	Nodes          int
	Wavelengths    int
	Model          string
	Bytes          int64
	Algorithm      Algorithm
	GroupSize      int
	GreedyA2A      bool
	PipelineChunks int
	FabricMix      string
	FabricPolicy   FabricPolicy
	Racks          int
	NodesPerRack   int

	// Seconds is the mode's primary metric: communication time, fabric
	// makespan, or multi-rack total time.
	Seconds float64

	// Exactly one of Comm/Fabric/MultiRack is set on success.
	Comm      *Result
	Fabric    *FabricResult
	MultiRack *MultiRackResult

	// Err captures a per-point failure (e.g. an infeasible group size);
	// failed points keep their slot so the grid shape is preserved.
	Err error
}

// SweepResult is the outcome of RunSweep: cells in deterministic grid order
// plus the shared caches' counters.
type SweepResult struct {
	Cells []SweepCell
	// PlanBuilds is the number of distinct Wrht plans built; PlanHits the
	// number of plan requests served from the shared cache. Both are
	// independent of Parallelism, as are the schedule and simulation
	// counters below.
	PlanBuilds, PlanHits int64
	// SchedBuilds/SchedHits count distinct lowered schedules vs cache-served
	// schedule requests (E-Ring and O-Ring points share one ring schedule;
	// the optimizer's plan and the same explicit group size share one Wrht
	// schedule).
	SchedBuilds, SchedHits int64
	// SimRuns/SimHits count distinct substrate simulations vs cache-served
	// results — each distinct configuration simulates exactly once per sweep.
	SimRuns, SimHits int64
	// Failed counts cells with a non-nil Err.
	Failed int
}

// Err returns the first per-point error in grid order, or nil when every
// point priced successfully.
func (r *SweepResult) Err() error {
	for i := range r.Cells {
		if r.Cells[i].Err != nil {
			return r.Cells[i].Err
		}
	}
	return nil
}

// Lookup returns the first cell matching the predicate in grid order,
// surfacing the cell's own pricing error if it failed.
func (r *SweepResult) Lookup(match func(SweepCell) bool) (SweepCell, error) {
	for _, c := range r.Cells {
		if match(c) {
			return c, c.Err
		}
	}
	return SweepCell{}, fmt.Errorf("wrht: no sweep cell matches")
}

type sweepMode int

const (
	sweepComm sweepMode = iota
	sweepFabric
	sweepMultiRack
)

// RunSweep prices every point of the spec's grid concurrently and returns
// the cells in deterministic grid order regardless of parallelism or
// completion order. Per-point failures are captured in their cells; RunSweep
// itself only fails on a malformed spec.
func RunSweep(spec SweepSpec) (*SweepResult, error) {
	return runSweep(nil, spec, newSession())
}

// runSweep is RunSweep on an explicit session (SweepSession reuses one
// across calls, making the caches cross-run) and an optional cancellation
// context: once ctx is done, unevaluated points fill their Err slots with
// ctx.Err() and in-flight fabric points abandon their co-simulations at the
// next event boundary.
func runSweep(ctx context.Context, spec SweepSpec, sess *session) (*SweepResult, error) {
	mode, err := spec.mode()
	if err != nil {
		return nil, err
	}
	spec = spec.normalized(mode)
	pts := spec.grid(mode).Points()
	cancel := ctxCancel(ctx)
	cells, errs := exp.RunContext(ctx, len(pts), spec.Parallelism, func(i int) (SweepCell, error) {
		var cell SweepCell
		switch mode {
		case sweepFabric:
			cell = spec.priceFabric(pts[i], sess.fabric, cancel)
		case sweepMultiRack:
			cell = spec.priceMultiRack(pts[i], sess.buildPlan)
		default:
			cell = spec.priceComm(pts[i], sess)
		}
		return cell, cell.Err
	})
	for i := range cells {
		// Points skipped by cancellation come back as zero cells with the
		// error only in the slot array; keep the grid shape and surface the
		// cancellation as the cell's error.
		if errs[i] != nil && cells[i].Err == nil {
			cells[i] = SweepCell{Index: i, Err: errs[i]}
		}
	}
	res := &SweepResult{Cells: cells}
	res.PlanHits, res.PlanBuilds = sess.plans.Stats()
	res.SchedHits, res.SchedBuilds = sess.scheds.Stats()
	res.SimHits, res.SimRuns = sess.sims.Stats()
	for i := range cells {
		if cells[i].Err != nil {
			res.Failed++
		}
	}
	return res, nil
}

// base returns the template configuration (evaluation defaults when unset,
// with Nodes left to the axis).
func (spec SweepSpec) base() Config {
	if spec.Base == (Config{}) {
		b := DefaultConfig(2)
		b.Nodes = 0
		return b
	}
	return spec.Base
}

// mode classifies the spec and rejects inconsistent axis combinations.
func (spec SweepSpec) mode() (sweepMode, error) {
	fabric := len(spec.FabricMixes) > 0 || len(spec.FabricPolicies) > 0
	multi := len(spec.Racks) > 0 || len(spec.NodesPerRack) > 0
	if fabric && multi {
		return 0, fmt.Errorf("wrht: sweep mixes fabric and multi-rack axes")
	}
	workloads := len(spec.Models) > 0 || len(spec.MessageBytes) > 0
	if len(spec.Models) > 0 && len(spec.MessageBytes) > 0 {
		return 0, fmt.Errorf("wrht: sweep sets both Models and MessageBytes; pick one workload axis")
	}
	switch {
	case fabric:
		if len(spec.FabricMixes) == 0 {
			return 0, fmt.Errorf("wrht: fabric sweep needs at least one FabricMix")
		}
		if workloads || len(spec.Algorithms) > 0 || len(spec.GroupSizes) > 0 ||
			len(spec.GreedyA2A) > 0 || len(spec.PipelineChunks) > 0 {
			return 0, fmt.Errorf("wrht: fabric sweeps take workloads and algorithms from their job mixes; drop the communication axes")
		}
		if len(spec.Nodes) == 0 && spec.base().Nodes < 2 {
			return 0, fmt.Errorf("wrht: fabric sweep needs a Nodes axis or Base.Nodes")
		}
		return sweepFabric, nil
	case multi:
		if len(spec.Racks) == 0 || len(spec.NodesPerRack) == 0 {
			return 0, fmt.Errorf("wrht: multi-rack sweep needs both Racks and NodesPerRack")
		}
		if !workloads {
			return 0, fmt.Errorf("wrht: multi-rack sweep needs Models or MessageBytes")
		}
		if len(spec.Nodes) > 0 {
			return 0, fmt.Errorf("wrht: multi-rack sweeps derive the worker count from Racks × NodesPerRack; drop the Nodes axis")
		}
		if len(spec.Algorithms) > 0 || len(spec.PipelineChunks) > 0 {
			return 0, fmt.Errorf("wrht: multi-rack sweeps price per-rack Wrht plus the electrical leader ring; drop Algorithms/PipelineChunks")
		}
		return sweepMultiRack, nil
	default:
		if !workloads {
			return 0, fmt.Errorf("wrht: sweep needs Models or MessageBytes")
		}
		if len(spec.Nodes) == 0 && spec.base().Nodes < 2 {
			return 0, fmt.Errorf("wrht: sweep needs a Nodes axis or Base.Nodes")
		}
		return sweepComm, nil
	}
}

// normalized fills the mode's defaulted axes.
func (spec SweepSpec) normalized(mode sweepMode) SweepSpec {
	switch mode {
	case sweepComm:
		if len(spec.Algorithms) == 0 {
			spec.Algorithms = []Algorithm{AlgWrht}
		}
	case sweepFabric:
		if len(spec.FabricPolicies) == 0 {
			spec.FabricPolicies = FabricPolicies()
		}
	}
	return spec
}

// grid lowers the spec to the engine's domain-neutral axes.
func (spec SweepSpec) grid(mode sweepMode) exp.Grid {
	g := exp.Grid{
		Nodes:          spec.Nodes,
		Wavelengths:    spec.Wavelengths,
		Models:         spec.Models,
		MessageBytes:   spec.MessageBytes,
		GroupSizes:     spec.GroupSizes,
		GreedyA2A:      spec.GreedyA2A,
		PipelineChunks: spec.PipelineChunks,
		Racks:          spec.Racks,
		NodesPerRack:   spec.NodesPerRack,
	}
	if mode == sweepComm {
		for _, a := range spec.Algorithms {
			g.Algorithms = append(g.Algorithms, string(a))
		}
	}
	if mode == sweepFabric {
		g.FabricMixes = indexAxis(len(spec.FabricMixes))
		g.FabricPolicies = indexAxis(len(spec.FabricPolicies))
	}
	return g
}

func indexAxis(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// pointConfig resolves the point's coordinates onto the base configuration.
func (spec SweepSpec) pointConfig(pt exp.Point) Config {
	cfg := spec.base()
	if pt.Nodes > 0 {
		cfg.Nodes = pt.Nodes
	}
	if pt.Wavelengths > 0 {
		cfg.Optical.Wavelengths = pt.Wavelengths
	}
	// Axis presence gates the option overrides because their zero values
	// (optimizer group size, formula policy, default chunking) are
	// themselves sweepable coordinates.
	if len(spec.GroupSizes) > 0 {
		cfg.WrhtGroupSize = pt.GroupSize
	}
	if len(spec.GreedyA2A) > 0 {
		cfg.WrhtGreedyA2A = pt.GreedyA2A
	}
	if len(spec.PipelineChunks) > 0 {
		cfg.PipelineChunks = pt.PipelineChunks
	}
	return cfg
}

// pointBytes resolves the point's workload size.
func (spec SweepSpec) pointBytes(cfg Config, pt exp.Point) (int64, error) {
	if pt.Model != "" {
		m, err := dnn.ByName(pt.Model)
		if err != nil {
			return 0, err
		}
		bpe := cfg.BytesPerElem
		if bpe == 0 {
			bpe = 4
		}
		return m.GradientBytes(bpe), nil
	}
	if pt.MessageBytes <= 0 {
		return 0, fmt.Errorf("wrht: sweep point %d has no model and non-positive bytes %d",
			pt.Index, pt.MessageBytes)
	}
	return pt.MessageBytes, nil
}

// priceComm evaluates one communication-mode point.
func (spec SweepSpec) priceComm(pt exp.Point, sess *session) SweepCell {
	cfg := spec.pointConfig(pt)
	cell := SweepCell{
		Index:          pt.Index,
		Nodes:          cfg.Nodes,
		Wavelengths:    cfg.Optical.Wavelengths,
		Model:          pt.Model,
		Algorithm:      Algorithm(pt.Algorithm),
		GroupSize:      cfg.WrhtGroupSize,
		GreedyA2A:      cfg.WrhtGreedyA2A,
		PipelineChunks: cfg.PipelineChunks,
	}
	bytes, err := spec.pointBytes(cfg, pt)
	if err != nil {
		cell.Err = err
		return cell
	}
	cell.Bytes = bytes
	r, _, err := communicationTime(cfg, cell.Algorithm, bytes, sess)
	if err != nil {
		cell.Err = err
		return cell
	}
	cell.Comm = &r
	cell.Seconds = r.Seconds
	return cell
}

// priceFabric evaluates one fabric-mode point; cancel (nil = never) aborts
// the point's co-simulation at an event boundary.
func (spec SweepSpec) priceFabric(pt exp.Point, fcache *fabricCache, cancel func() error) SweepCell {
	cfg := spec.pointConfig(pt)
	mix := spec.FabricMixes[pt.FabricMix]
	if mix.Name == "" {
		mix.Name = fmt.Sprintf("mix%d", pt.FabricMix)
	}
	policy := spec.FabricPolicies[pt.FabricPolicy]
	cell := SweepCell{
		Index:        pt.Index,
		Nodes:        cfg.Nodes,
		Wavelengths:  cfg.Optical.Wavelengths,
		FabricMix:    mix.Name,
		FabricPolicy: policy,
	}
	fr, err := simulateFabric(cfg, mix.Jobs, policy, fcache, FaultPlan{}, cancel)
	if err != nil {
		cell.Err = err
		return cell
	}
	cell.Fabric = &fr
	cell.Seconds = fr.MakespanSec
	return cell
}

// priceMultiRack evaluates one multi-rack-mode point.
func (spec SweepSpec) priceMultiRack(pt exp.Point, build planBuilder) SweepCell {
	cfg := spec.pointConfig(pt)
	cell := SweepCell{
		Index:        pt.Index,
		Nodes:        pt.Racks * pt.NodesPerRack,
		Wavelengths:  cfg.Optical.Wavelengths,
		Model:        pt.Model,
		GroupSize:    cfg.WrhtGroupSize,
		GreedyA2A:    cfg.WrhtGreedyA2A,
		Racks:        pt.Racks,
		NodesPerRack: pt.NodesPerRack,
	}
	bytes, err := spec.pointBytes(cfg, pt)
	if err != nil {
		cell.Err = err
		return cell
	}
	cell.Bytes = bytes
	mr, err := multiRackTime(cfg, pt.Racks, pt.NodesPerRack, bytes, build)
	if err != nil {
		cell.Err = err
		return cell
	}
	cell.MultiRack = &mr
	cell.Seconds = mr.TotalSec
	return cell
}
