package wrht

import (
	"reflect"
	"sync"
	"testing"
)

// hammerOps builds the mixed workload the concurrency tests drive: point
// pricing on both substrates, fabric co-simulation with and without faults,
// a fleet co-simulation, and a sweep — every public pricing surface of a
// SweepSession, with enough key overlap that concurrent callers contend for
// the same cache entries.
func hammerOps(t *testing.T) []func(ss *SweepSession) (any, error) {
	t.Helper()
	cfg := DefaultConfig(16)
	fabJobs := []JobSpec{
		{Name: "a", Bytes: 1 << 16, Iterations: 2},
		{Name: "b", Bytes: 1 << 18, Iterations: 1, ArrivalSec: 1e-4},
		{Name: "c", Bytes: 1 << 16, Iterations: 3, ArrivalSec: 2e-4, MaxWavelengths: 4},
	}
	plan := FaultPlan{
		Seed: 7, HorizonSec: 0.5,
		JobFaultMTBFSec: 0.05,
		Scripted: []FaultEvent{
			{TimeSec: 1e-4, Kind: FaultWavelengthDown, Count: 4},
			{TimeSec: 3e-4, Kind: FaultWavelengthUp, Count: 4},
		},
	}
	fleetJobs := fleetTestTrace(t, 12)
	sweep := SweepSpec{
		Nodes:        []int{8, 16},
		MessageBytes: []int64{1 << 16},
		Algorithms:   []Algorithm{AlgWrht, AlgERing, AlgORing},
	}
	return []func(ss *SweepSession) (any, error){
		func(ss *SweepSession) (any, error) { return ss.CommunicationTime(cfg, AlgWrht, 1<<20) },
		func(ss *SweepSession) (any, error) { return ss.CommunicationTime(cfg, AlgERing, 1<<20) },
		func(ss *SweepSession) (any, error) {
			return ss.SimulateFabric(cfg, fabJobs, FabricPolicy{Kind: FabricFirstFit})
		},
		func(ss *SweepSession) (any, error) {
			return ss.SimulateFabric(cfg, fabJobs, FabricPolicy{Kind: FabricElastic}, plan)
		},
		func(ss *SweepSession) (any, error) {
			return ss.SimulateFleet(cfg, fleetTestFabrics(), fleetTestShapes(), fleetJobs, FleetOptions{})
		},
		func(ss *SweepSession) (any, error) {
			// Compare cells only: SweepResult also stamps the session's
			// cumulative cache counters, which legitimately depend on what
			// else the shared session has priced.
			res, err := ss.RunSweep(sweep)
			if err != nil {
				return nil, err
			}
			return res.Cells, nil
		},
	}
}

// TestSessionConcurrentHammer drives every pricing surface of one shared
// SweepSession from many goroutines at once (run under -race in CI) and
// checks the session contract: every concurrent result is bit-identical to
// a serial run of the same call, and once the shared session has seen the
// workload, a second concurrent pass is served entirely from cache — zero
// new plan builds, schedule lowerings, substrate simulations, or runtime
// curve builds.
func TestSessionConcurrentHammer(t *testing.T) {
	ops := hammerOps(t)

	// Serial baseline on its own session: sessions are documented
	// bit-identical to the session-free entry points and to each other.
	baseline := make([]any, len(ops))
	serial := NewSweepSession()
	for i, op := range ops {
		res, err := op(serial)
		if err != nil {
			t.Fatalf("serial op %d: %v", i, err)
		}
		baseline[i] = res
	}

	shared := NewSweepSession()
	const goroutines = 8
	hammer := func() {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, goroutines*len(ops))
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Stagger starting op per goroutine so different surfaces
				// race each other, not just themselves.
				for k := 0; k < len(ops); k++ {
					i := (g + k) % len(ops)
					res, err := ops[i](shared)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res, baseline[i]) {
						t.Errorf("op %d under concurrency diverged from serial result", i)
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	hammer()

	warm := shared.Stats()
	if warm.PlanBuilds == 0 || warm.SimulationRuns == 0 {
		t.Fatalf("hammer did no real work: %+v", warm)
	}
	hammer()
	again := shared.Stats()
	if again.PlanBuilds != warm.PlanBuilds ||
		again.ScheduleBuilds != warm.ScheduleBuilds ||
		again.SimulationRuns != warm.SimulationRuns ||
		again.FabricRuntimeBuilds != warm.FabricRuntimeBuilds {
		t.Fatalf("second pass rebuilt cached work: first %+v, second %+v", warm, again)
	}
	if again.SimulationHits <= warm.SimulationHits {
		t.Fatalf("second pass recorded no new cache hits: first %+v, second %+v", warm, again)
	}
}

// TestObserveRacesPricing pins the atomic flight-recorder swap: enabling
// observability mid-flight must not perturb concurrent pricing (calls that
// sampled the pre-swap nil simply finish unobserved) and everything priced
// after the swap records. Run under -race this also proves the swap itself
// is clean.
func TestObserveRacesPricing(t *testing.T) {
	ops := hammerOps(t)
	baseline := make([]any, len(ops))
	serial := NewSweepSession()
	for i, op := range ops {
		res, err := op(serial)
		if err != nil {
			t.Fatalf("serial op %d: %v", i, err)
		}
		baseline[i] = res
	}

	ss := NewSweepSession()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for k := 0; k < len(ops); k++ {
				i := (g + k) % len(ops)
				res, err := ops[i](ss)
				if err != nil {
					t.Errorf("op %d: %v", i, err)
					return
				}
				if !reflect.DeepEqual(res, baseline[i]) {
					t.Errorf("op %d diverged once observed", i)
				}
			}
		}(g)
	}
	// Swap the recorder in while pricing is in flight, and hit Snapshot
	// concurrently too: both are documented safe to race with pricing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		ss.Observe()
		_ = ss.Snapshot()
	}()
	close(start)
	wg.Wait()

	// Everything priced after this point must record: the session is warm,
	// so force one cold simulation and check the recorder saw it.
	if ss.Snapshot().Spans == 0 {
		if _, err := ss.CommunicationTime(DefaultConfig(32), AlgWrht, 1<<20); err != nil {
			t.Fatal(err)
		}
		if got := ss.Snapshot().Spans; got == 0 {
			t.Fatal("recorder enabled but a post-swap cold simulation recorded nothing")
		}
	}
}
