package wrht

import (
	"fmt"
	"hash/fnv"

	"wrht/internal/fleet"
)

// FleetFabricSpec describes one fabric of a heterogeneous fleet: a ring of
// Nodes workers sharing Wavelengths optical wavelengths, with its own
// elastic reconfiguration delay and inter-fabric migration cost. All other
// substrate parameters (rates, overheads, BytesPerElem, ...) come from the
// Config passed to SimulateFleet.
type FleetFabricSpec struct {
	// Name labels the fabric in results (default "fabric<i>").
	Name string
	// Nodes is this fabric's ring size (>= 2).
	Nodes int
	// Wavelengths is this fabric's wavelength budget (>= 1).
	Wavelengths int
	// ReconfigDelaySec is this fabric's optical switch settling time under
	// the elastic policy.
	ReconfigDelaySec float64
	// MigrationCostSec is the delay a job pays before starting here when
	// it is placed away from its affinity fabric.
	MigrationCostSec float64
}

// FleetShape is one workload shape of a fleet trace: jobs sharing a shape
// run the same model (or byte count) under the same algorithm, so they
// share runtime curves — the whole fleet prices each (fabric ring size,
// shape, width) triple through the single-ring simulation at most once.
type FleetShape struct {
	// Model names a catalog network; when set, its gradient size overrides
	// Bytes.
	Model string
	// Bytes is the all-reduced buffer size when Model is empty.
	Bytes int64
	// Algorithm prices the shape's all-reduce (default AlgWrht; electrical
	// algorithms are rejected).
	Algorithm Algorithm
}

// FleetJob is one trace entry: a tenant to be placed on some fabric of the
// fleet.
type FleetJob struct {
	// Name labels the job in per-job results (default "j<i>"; unused under
	// Lite).
	Name       string
	ArrivalSec float64
	Priority   int
	// MinWavelengths (default 1, raised to the shape algorithm's
	// structural floor) and MaxWavelengths (default: the target fabric's
	// whole budget) bound the stripe grant.
	MinWavelengths int
	MaxWavelengths int
	// Iterations is the number of back-to-back all-reduces (default 1).
	Iterations int
	// Shape indexes into SimulateFleet's shapes slice.
	Shape int
	// Affinity is the job's home fabric index (-1: no affinity; any first
	// placement is free, and off-affinity placements pay the target's
	// MigrationCostSec).
	Affinity int
	// CheckpointEverySec is the job's checkpoint interval in productive
	// service seconds (0: no checkpointing). Only meaningful under a
	// FaultPlan; checkpoints are fabric-local, so a job recovered onto a
	// different fabric restarts from scratch.
	CheckpointEverySec float64
}

// Fleet placement policies.
const (
	// FleetLeastLoaded places each job on the admissible fabric with the
	// lowest committed-load fraction.
	FleetLeastLoaded = "least-loaded"
	// FleetBestFit places each job on the fabric whose free wavelengths
	// most tightly fit its desired width.
	FleetBestFit = "best-fit"
	// FleetPriorityAware weighs migration cost against same-or-higher
	// priority contention, scaled by the job's solo runtime.
	FleetPriorityAware = "priority-aware"
)

// FleetOptions configures a fleet co-simulation.
type FleetOptions struct {
	// Placement is FleetLeastLoaded (default), FleetBestFit, or
	// FleetPriorityAware.
	Placement string
	// Policy is the per-fabric scheduling policy (default FabricElastic;
	// each fabric's ReconfigDelaySec comes from its spec, and FabricStatic
	// partition counts are not configurable at the fleet layer).
	Policy FabricPolicy
	// Lite drops per-job results and the per-fabric event traces, keeping
	// aggregates only — required for 10^5+ job traces.
	Lite bool
	// Faults injects seeded failures on the fleet's shared timeline; the
	// zero plan leaves every result bit-identical to a fault-free run.
	Faults FaultPlan
	// Recovery is RecoveryRetrySameFabric (default), RecoveryFailFast, or
	// RecoveryMigrateOnFailure; it governs jobs caught in fabric outages.
	Recovery string
	// MaxRetries/RetryBackoffSec/RetryBackoffMaxSec on the Faults plan
	// bound the recovery backoff at both the fabric and fleet layers.
}

// FleetFabricResult is one fabric's share of a fleet co-simulation.
type FleetFabricResult struct {
	Name   string
	Budget int
	// Placed counts jobs routed here; Migrated those that paid a migration
	// to land here.
	Placed       int
	Migrated     int
	Completed    int
	Rejected     int
	MakespanSec  float64
	MeanSlowdown float64
	Utilization  float64
	Reconfigs    int
	Preemptions  int
	// Fault shares (all zero without a FaultPlan).
	JobFaults   int
	Evictions   int
	Retries     int
	FailedJobs  int
	LostWorkSec float64
}

// FleetResult aggregates a trace-driven fleet co-simulation.
type FleetResult struct {
	Placement string
	Policy    FabricPolicy
	Fabrics   int
	Jobs      int
	Completed int
	// Rejected counts jobs that never completed; Unplaceable is its subset
	// rejected at the fleet front door (minimum grant above every budget).
	Rejected    int
	Unplaceable int
	// Migrations counts off-affinity placements; MigrationSec totals the
	// delay they paid.
	Migrations   int
	MigrationSec float64
	MakespanSec  float64
	MeanQueueSec float64
	MaxQueueSec  float64
	MeanSlowdown float64
	// Fairness is Jain's index over completed jobs' slowdowns, fleet-wide.
	Fairness float64
	// Utilization is lit wavelength-seconds over total budget x makespan.
	Utilization float64
	Reconfigs   int
	Preemptions int
	// EngineEvents counts executed events on the fleet's shared timeline.
	EngineEvents int64
	// Solver work counters, summed across fabrics: re-solve passes, tiers
	// the incremental solver filled vs. proved untouched, jobs re-priced,
	// and shape runtime-curve cache traffic.
	SolverSolves       int64
	SolverTiersTouched int64
	SolverTiersSkipped int64
	SolverJobsRepriced int64
	CurveHits          int64
	CurveBuilds        int64
	// Fault-recovery aggregates (all zero without a FaultPlan): Outages
	// counts whole-fabric failures; Killed jobs dropped by
	// RecoveryFailFast; FailedJobs exhausted retry budgets; JobFaults/
	// Evictions/Retries/LostWorkSec sum the per-fabric fault counters plus
	// work discarded by cross-fabric restarts.
	Outages     int
	Killed      int
	JobFaults   int
	Evictions   int
	Retries     int
	FailedJobs  int
	LostWorkSec float64
	// Availability is the capacity-weighted fraction of fleet
	// wavelength-second capacity not lost to dark wavelengths or outages
	// (1 without faults). P99Slowdown is the 99th-percentile completed-job
	// slowdown (nearest-rank; 0 under Lite).
	Availability float64
	P99Slowdown  float64
	PerFabric    []FleetFabricResult
}

// FleetTraceSpec parameterizes a seeded synthetic arrival trace for
// SimulateFleet. Generation is fully deterministic in the spec.
type FleetTraceSpec struct {
	// Kind is "poisson" (exponential gaps), "diurnal" (sinusoidally
	// rate-modulated), or "heavy-tail" (Pareto gaps with correlated
	// same-instant bursts).
	Kind string
	// Jobs is the trace length; Seed the generator seed; MeanGapSec the
	// mean inter-arrival gap.
	Jobs       int
	Seed       int64
	MeanGapSec float64
	// NumShapes and NumFabrics bound the per-job shape and affinity draws.
	NumShapes  int
	NumFabrics int
	// MaxWidth bounds MaxWavelengths draws (default 8); Priorities the
	// priority levels (default 3).
	MaxWidth   int
	Priorities int
	// PeriodSec/Amplitude shape the diurnal modulation (defaults 86400 and
	// 0.8); TailAlpha/BurstProb/BurstSize the heavy-tail process (defaults
	// 1.5, 0.05, 8).
	PeriodSec float64
	Amplitude float64
	TailAlpha float64
	BurstProb float64
	BurstSize int
}

func (s FleetTraceSpec) internal() (fleet.TraceSpec, error) {
	var kind fleet.TraceKind
	switch s.Kind {
	case "", "poisson":
		kind = fleet.Poisson
	case "diurnal":
		kind = fleet.Diurnal
	case "heavy-tail":
		kind = fleet.HeavyTail
	default:
		return fleet.TraceSpec{}, fmt.Errorf("wrht: unknown trace kind %q", s.Kind)
	}
	return fleet.TraceSpec{
		Kind: kind, Jobs: s.Jobs, Seed: s.Seed, MeanGapSec: s.MeanGapSec,
		NumShapes: s.NumShapes, NumFabrics: s.NumFabrics,
		MaxWidth: s.MaxWidth, Priorities: s.Priorities,
		PeriodSec: s.PeriodSec, Amplitude: s.Amplitude,
		TailAlpha: s.TailAlpha, BurstProb: s.BurstProb, BurstSize: s.BurstSize,
	}, nil
}

// GenerateFleetTrace generates a seeded synthetic arrival trace. The same
// spec yields the identical trace on every call.
func GenerateFleetTrace(spec FleetTraceSpec) ([]FleetJob, error) {
	inner, err := spec.internal()
	if err != nil {
		return nil, err
	}
	jobs, err := inner.Gen()
	if err != nil {
		return nil, err
	}
	out := make([]FleetJob, len(jobs))
	for i, j := range jobs {
		out[i] = FleetJob{
			ArrivalSec:     j.ArrivalSec,
			Priority:       j.Priority,
			MinWavelengths: j.MinWavelengths,
			MaxWavelengths: j.MaxWavelengths,
			Iterations:     j.Iterations,
			Shape:          j.Shape,
			Affinity:       j.Affinity,
		}
	}
	return out, nil
}

// SimulateFleet places every job of the trace onto a datacenter of
// heterogeneous optical fabrics and co-simulates all fabrics on one shared
// event timeline. Each fabric runs the per-fabric scheduling policy with
// its own wavelength budget and reconfiguration delay; the placement
// policy routes arrivals, paying migration costs for off-affinity
// placements. Pricing goes through the same single-ring simulation path as
// SimulateFabric, with runtime curves shared across every job of a shape
// and across fabrics with equal ring sizes. Deterministic: the same
// inputs produce the identical FleetResult.
func SimulateFleet(cfg Config, fabrics []FleetFabricSpec, shapes []FleetShape, jobs []FleetJob, opt FleetOptions) (FleetResult, error) {
	return simulateFleet(cfg, fabrics, shapes, jobs, opt, newSession().fabric, nil)
}

func simulateFleet(cfg Config, fabrics []FleetFabricSpec, shapes []FleetShape, jobs []FleetJob, opt FleetOptions, cache *fabricCache, cancel func() error) (FleetResult, error) {
	if err := cfg.Validate(); err != nil {
		return FleetResult{}, err
	}
	if len(fabrics) == 0 {
		return FleetResult{}, fmt.Errorf("wrht: empty fleet (no fabric specs)")
	}
	if len(shapes) == 0 {
		return FleetResult{}, fmt.Errorf("wrht: no workload shapes")
	}

	var placement fleet.PlacementKind
	switch opt.Placement {
	case "", FleetLeastLoaded:
		placement = fleet.LeastLoaded
	case FleetBestFit:
		placement = fleet.BestFit
	case FleetPriorityAware:
		placement = fleet.PriorityAware
	default:
		return FleetResult{}, fmt.Errorf("wrht: unknown fleet placement %q", opt.Placement)
	}
	policy := opt.Policy
	if policy.Kind == "" {
		policy.Kind = FabricElastic
	}
	pol, err := policy.internal()
	if err != nil {
		return FleetResult{}, err
	}

	specs := make([]fleet.FabricSpec, len(fabrics))
	for i, f := range fabrics {
		name := f.Name
		if name == "" {
			name = fmt.Sprintf("fabric%d", i)
		}
		specs[i] = fleet.FabricSpec{
			Name:             name,
			Nodes:            f.Nodes,
			Wavelengths:      f.Wavelengths,
			ReconfigDelaySec: f.ReconfigDelaySec,
			MigrationCostSec: f.MigrationCostSec,
		}
	}

	// Resolve each shape once: algorithm, byte count, structural width
	// floor, and one runtime closure per distinct fabric ring size (the
	// session cache keys on the full config, so fabrics with equal Nodes
	// share curves).
	type shapeInfo struct {
		alg   Algorithm
		bytes int64
		floor int
	}
	infos := make([]shapeInfo, len(shapes))
	for si, sh := range shapes {
		alg := sh.Algorithm
		if alg == "" {
			alg = AlgWrht
		}
		if isElectrical(alg) {
			return FleetResult{}, fmt.Errorf("wrht: shape %d: electrical algorithm %q cannot share an optical fabric", si, alg)
		}
		bytes, err := jobBytes(cfg, JobSpec{Name: fmt.Sprintf("shape%d", si), Model: sh.Model, Bytes: sh.Bytes})
		if err != nil {
			return FleetResult{}, fmt.Errorf("wrht: shape %d: %w", si, err)
		}
		infos[si] = shapeInfo{alg: alg, bytes: bytes, floor: algFloor(cfg, alg)}
	}
	curves := make([]map[int64]func(int) (float64, error), len(fabrics))
	for fi, f := range fabrics {
		curves[fi] = map[int64]func(int) (float64, error){}
		cfgF := cfg
		cfgF.Nodes = f.Nodes
		for si, info := range infos {
			curves[fi][int64(si)] = cache.runtime(cfgF, info.alg, info.bytes)
		}
	}
	rt := func(fab, shape, w int) (float64, error) {
		return curves[fab][int64(shape)](w)
	}

	inner := make([]fleet.Job, len(jobs))
	for i, j := range jobs {
		if j.Shape < 0 || j.Shape >= len(shapes) {
			return FleetResult{}, fmt.Errorf("wrht: fleet job %d (%q): shape %d with %d shapes",
				i, j.Name, j.Shape, len(shapes))
		}
		info := infos[j.Shape]
		minW := j.MinWavelengths
		if info.floor > minW {
			minW = info.floor
			if j.MaxWavelengths != 0 && j.MaxWavelengths < info.floor {
				return FleetResult{}, fmt.Errorf(
					"wrht: fleet job %d (%q): %s with group size m=%d needs at least %d wavelengths, MaxWavelengths is %d",
					i, j.Name, info.alg, cfg.WrhtGroupSize, info.floor, j.MaxWavelengths)
			}
		}
		inner[i] = fleet.Job{
			Name:               j.Name,
			ArrivalSec:         j.ArrivalSec,
			Priority:           j.Priority,
			MinWavelengths:     minW,
			MaxWavelengths:     j.MaxWavelengths,
			Iterations:         j.Iterations,
			Shape:              j.Shape,
			Affinity:           j.Affinity,
			CheckpointEverySec: j.CheckpointEverySec,
		}
	}

	var recovery fleet.RecoveryPolicy
	switch opt.Recovery {
	case "", RecoveryRetrySameFabric:
		recovery = fleet.RetrySameFabric
	case RecoveryFailFast:
		recovery = fleet.FailFast
	case RecoveryMigrateOnFailure:
		recovery = fleet.MigrateOnFailure
	default:
		return FleetResult{}, fmt.Errorf("wrht: unknown recovery policy %q", opt.Recovery)
	}
	fp, err := opt.Faults.internal()
	if err != nil {
		return FleetResult{}, err
	}

	rec := cache.sess.recorder()
	proc := ""
	if rec.Enabled() {
		proc = fleetProcName(cfg, fabrics, jobs, opt)
		if !opt.Faults.Empty() {
			proc += fmt.Sprintf(" · faults %08x · %s", opt.Faults.hash(), opt.Recovery)
		}
	}
	res, err := fleet.Simulate(specs, inner, rt, fleet.Options{
		Placement: placement, Policy: pol.Kind, Lite: opt.Lite, Rec: rec, Proc: proc,
		Faults: fp, Recovery: recovery, Retry: fp.Retry, Cancel: cancel,
	})
	if err != nil {
		return FleetResult{}, err
	}

	out := FleetResult{
		Placement:          res.Placement.String(),
		Policy:             policy,
		Fabrics:            res.Fabrics,
		Jobs:               res.Jobs,
		Completed:          res.Completed,
		Rejected:           res.Rejected,
		Unplaceable:        res.Unplaceable,
		Migrations:         res.Migrations,
		MigrationSec:       res.MigrationSec,
		MakespanSec:        res.MakespanSec,
		MeanQueueSec:       res.MeanQueueSec,
		MaxQueueSec:        res.MaxQueueSec,
		MeanSlowdown:       res.MeanSlowdown,
		Fairness:           res.Fairness,
		Utilization:        res.Utilization,
		Reconfigs:          res.Reconfigs,
		Preemptions:        res.Preemptions,
		EngineEvents:       res.EngineEvents,
		SolverSolves:       res.Solver.Solves,
		SolverTiersTouched: res.Solver.TiersTouched,
		SolverTiersSkipped: res.Solver.TiersSkipped,
		SolverJobsRepriced: res.Solver.JobsRepriced,
		CurveHits:          res.Solver.CurveHits,
		CurveBuilds:        res.Solver.CurveBuilds,
		Outages:            res.Outages,
		Killed:             res.Killed,
		JobFaults:          res.JobFaults,
		Evictions:          res.Evictions,
		Retries:            res.Retries,
		FailedJobs:         res.FailedJobs,
		LostWorkSec:        res.LostWorkSec,
		Availability:       res.Availability,
		P99Slowdown:        res.P99Slowdown,
	}
	for _, f := range res.PerFabric {
		out.PerFabric = append(out.PerFabric, FleetFabricResult{
			Name:         f.Name,
			Budget:       f.Budget,
			Placed:       f.Placed,
			Migrated:     f.Migrated,
			Completed:    f.Result.CompletedJobs,
			Rejected:     f.Result.RejectedJobs,
			MakespanSec:  f.Result.MakespanSec,
			MeanSlowdown: f.Result.MeanSlowdown,
			Utilization:  f.Result.Utilization,
			Reconfigs:    f.Result.Reconfigs,
			Preemptions:  f.Result.Preemptions,
			JobFaults:    f.Result.JobFaults,
			Evictions:    f.Result.Evictions,
			Retries:      f.Result.Retries,
			FailedJobs:   f.Result.FailedJobs,
			LostWorkSec:  f.Result.LostWorkSec,
		})
	}
	return out, nil
}

// fleetProcName names one fleet co-simulation's recorder process prefix;
// the hash over the trace keeps concurrent fleet runs on a shared session
// recording to disjoint track sets.
func fleetProcName(cfg Config, fabrics []FleetFabricSpec, jobs []FleetJob, opt FleetOptions) string {
	h := fnv.New32a()
	for _, f := range fabrics {
		fmt.Fprintf(h, "%s|%d|%d|%g|%g;", f.Name, f.Nodes, f.Wavelengths, f.ReconfigDelaySec, f.MigrationCostSec)
	}
	for _, j := range jobs {
		fmt.Fprintf(h, "%g|%d|%d|%d|%d;", j.ArrivalSec, j.Priority, j.Iterations, j.Shape, j.Affinity)
	}
	placement := opt.Placement
	if placement == "" {
		placement = FleetLeastLoaded
	}
	return fmt.Sprintf("fleet %s · %d fabrics · %d jobs · mix %08x",
		placement, len(fabrics), len(jobs), h.Sum32())
}
