package wrht

import (
	"strings"
	"testing"
)

func TestScheduleOutlineWrht(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.WrhtGroupSize = 3
	steps, err := ScheduleOutline(cfg, AlgWrht, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	sawReduce, sawBroadcast := false, false
	for _, st := range steps {
		if st.Transfers <= 0 || st.Seconds <= 0 {
			t.Fatalf("degenerate step: %+v", st)
		}
		if st.Wavelengths < 1 || st.Wavelengths > cfg.Optical.Wavelengths {
			t.Fatalf("step %d wavelengths %d", st.Index, st.Wavelengths)
		}
		if strings.HasPrefix(st.Label, "reduce") {
			sawReduce = true
		}
		if strings.HasPrefix(st.Label, "broadcast") {
			sawBroadcast = true
		}
		if len(st.Arcs) == 0 {
			t.Fatalf("step %d has no arcs", st.Index)
		}
	}
	if !sawReduce || !sawBroadcast {
		t.Fatalf("missing stages: reduce=%v broadcast=%v", sawReduce, sawBroadcast)
	}
}

func TestScheduleOutlineBaselines(t *testing.T) {
	cfg := DefaultConfig(8)
	for _, alg := range []Algorithm{AlgORing, AlgORingStriped, AlgERing} {
		steps, err := ScheduleOutline(cfg, alg, 1<<20)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(steps) != 14 { // 2(n-1) ring steps
			t.Fatalf("%s: %d steps", alg, len(steps))
		}
	}
}

func TestScheduleOutlineValidation(t *testing.T) {
	cfg := DefaultConfig(8)
	if _, err := ScheduleOutline(cfg, AlgWrht, 0); err == nil {
		t.Fatal("zero bytes accepted")
	}
	if _, err := ScheduleOutline(cfg, Algorithm("x"), 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestScheduleOutlineErrorPaths(t *testing.T) {
	badNodes := DefaultConfig(1)
	badOptical := DefaultConfig(8)
	badOptical.Optical.Wavelengths = 0
	badRate := DefaultConfig(8)
	badRate.Optical.GbpsPerWavelength = -1
	badElectrical := DefaultConfig(8)
	badElectrical.Electrical.LinkGbps = 0
	badElems := DefaultConfig(8)
	badElems.BytesPerElem = 0
	cases := []struct {
		name  string
		cfg   Config
		alg   Algorithm
		bytes int64
	}{
		{"negative bytes", DefaultConfig(8), AlgORing, -7},
		{"one node", badNodes, AlgWrht, 1 << 20},
		{"invalid optical wavelengths", badOptical, AlgWrht, 1 << 20},
		{"invalid optical rate", badRate, AlgORing, 1 << 20},
		{"invalid electrical", badElectrical, AlgERing, 1 << 20},
		{"invalid bytes per elem", badElems, AlgORing, 1 << 20},
	}
	for _, tc := range cases {
		if _, err := ScheduleOutline(tc.cfg, tc.alg, tc.bytes); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestScheduleOutlinePipelined(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.WrhtGroupSize = 3
	cfg.PipelineChunks = 4
	steps, err := ScheduleOutline(cfg, AlgWrhtPipelined, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := ScheduleOutline(cfg, AlgWrhtUnstriped, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(plain)+cfg.PipelineChunks-1 {
		t.Fatalf("pipelined steps %d, want %d", len(steps), len(plain)+cfg.PipelineChunks-1)
	}
}

func TestScheduleOutlineGreedyPolicy(t *testing.T) {
	cfg := DefaultConfig(128)
	cfg.WrhtGroupSize = 3
	greedy := cfg
	greedy.WrhtGreedyA2A = true
	sf, err := ScheduleOutline(cfg, AlgWrht, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := ScheduleOutline(greedy, AlgWrht, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg) >= len(sf) {
		t.Fatalf("greedy (%d steps) should have fewer steps than formula (%d)", len(sg), len(sf))
	}
}
