package wrht

import (
	"fmt"
	"hash/fnv"

	"wrht/internal/faults"
)

// faultsPlan aliases the internal plan type for the simulateFabric plumbing.
type faultsPlan = faults.Plan

// Fault event kinds for FaultEvent.Kind, matching the strings that appear in
// exported fabric traces.
const (
	// FaultWavelengthDown darkens Count wavelengths of one fabric until a
	// matching FaultWavelengthUp.
	FaultWavelengthDown = "wavelength-down"
	// FaultWavelengthUp restores Count previously darkened wavelengths.
	FaultWavelengthUp = "wavelength-up"
	// FaultJob crashes one running job; it loses the work since its last
	// checkpoint and replays the tail.
	FaultJob = "job-fault"
	// FaultFabricDown takes a whole fabric offline (fleet simulations only);
	// every resident job is routed through the fleet's recovery policy.
	FaultFabricDown = "fabric-down"
	// FaultFabricUp repairs an offline fabric and releases jobs parked on it.
	FaultFabricUp = "fabric-up"
)

// FaultEvent is one scripted failure injection.
type FaultEvent struct {
	// TimeSec is the injection instant on the simulation timeline.
	TimeSec float64
	// Kind is one of the Fault* constants.
	Kind string
	// Fabric indexes the target fleet fabric (0, the only valid value, for
	// SimulateFabric).
	Fabric int
	// Count is how many wavelengths a wavelength-down/-up affects
	// (default: the plan's WavelengthsPerFault, itself defaulting to 1).
	Count int
	// Job optionally names a job-fault's victim; it must be running at the
	// injection instant or the event is a no-op. Empty picks the
	// longest-resident running job.
	Job string
}

// FaultPlan is a seeded, deterministic failure model: exponential MTBF/MTTR
// generators per fault class, plus explicitly scripted events. The zero
// value injects nothing and is guaranteed to leave every simulated number
// bit-identical to a run without a plan. Expansion into concrete events is
// deterministic in (Seed, HorizonSec, rates), so faulty simulations are as
// reproducible as fault-free ones.
type FaultPlan struct {
	// Seed drives every generator stream.
	Seed int64
	// HorizonSec bounds generated injection times; required (> 0) when any
	// MTBF generator is enabled.
	HorizonSec float64

	// WavelengthMTBFSec > 0 enables wavelength darkening: per fabric,
	// exponential times-between-failures of this mean, each darkening
	// WavelengthsPerFault wavelengths (default 1) for an exponential
	// duration of mean WavelengthMTTRSec (required > 0 when enabled).
	// Unsupported under FabricStatic (shares pin concrete wavelengths).
	WavelengthMTBFSec   float64
	WavelengthMTTRSec   float64
	WavelengthsPerFault int

	// JobFaultMTBFSec > 0 enables transient job crashes with exponential
	// inter-fault times of this mean per fabric.
	JobFaultMTBFSec float64

	// FabricMTBFSec > 0 enables whole-fabric outages (fleet simulations
	// only) with exponential times-between-failures of this mean and
	// exponential outage durations of mean FabricMTTRSec (required > 0 when
	// enabled).
	FabricMTBFSec float64
	FabricMTTRSec float64

	// Scripted events are injected as given, merged with the generated
	// streams.
	Scripted []FaultEvent

	// MaxRetries is the per-job retry budget (default 10); a job evicted
	// with no budget left fails permanently. RetryBackoffSec is the first
	// retry delay (default 1ms), doubling per attempt up to
	// RetryBackoffMaxSec (default 64ms).
	MaxRetries         int
	RetryBackoffSec    float64
	RetryBackoffMaxSec float64
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool {
	return p.WavelengthMTBFSec == 0 && p.JobFaultMTBFSec == 0 &&
		p.FabricMTBFSec == 0 && len(p.Scripted) == 0
}

// faultKind parses a Fault* constant.
func faultKind(s string) (faults.Kind, error) {
	switch s {
	case FaultWavelengthDown:
		return faults.WavelengthDown, nil
	case FaultWavelengthUp:
		return faults.WavelengthUp, nil
	case FaultJob:
		return faults.JobFault, nil
	case FaultFabricDown:
		return faults.FabricDown, nil
	case FaultFabricUp:
		return faults.FabricUp, nil
	default:
		return 0, fmt.Errorf("wrht: unknown fault event kind %q", s)
	}
}

// internal lowers the plan to the internal representation.
func (p FaultPlan) internal() (faults.Plan, error) {
	fp := faults.Plan{
		Seed:                p.Seed,
		HorizonSec:          p.HorizonSec,
		WavelengthMTBFSec:   p.WavelengthMTBFSec,
		WavelengthMTTRSec:   p.WavelengthMTTRSec,
		WavelengthsPerFault: p.WavelengthsPerFault,
		JobFaultMTBFSec:     p.JobFaultMTBFSec,
		FabricMTBFSec:       p.FabricMTBFSec,
		FabricMTTRSec:       p.FabricMTTRSec,
		Retry: faults.Retry{
			BackoffSec:    p.RetryBackoffSec,
			BackoffMaxSec: p.RetryBackoffMaxSec,
			MaxRetries:    p.MaxRetries,
		},
	}
	for i, ev := range p.Scripted {
		k, err := faultKind(ev.Kind)
		if err != nil {
			return faults.Plan{}, fmt.Errorf("wrht: scripted fault event %d: %w", i, err)
		}
		fp.Scripted = append(fp.Scripted, faults.Event{
			TimeSec: ev.TimeSec, Kind: k, Fabric: ev.Fabric, Count: ev.Count, Job: ev.Job,
		})
	}
	return fp, nil
}

// hash digests the plan for recorder process naming: faulted runs must
// record to track sets disjoint from the fault-free run of the same mix.
func (p FaultPlan) hash() uint32 {
	h := fnv.New32a()
	fmt.Fprintf(h, "%d|%g|%g|%g|%d|%g|%g|%g|%d|%g|%g;",
		p.Seed, p.HorizonSec, p.WavelengthMTBFSec, p.WavelengthMTTRSec,
		p.WavelengthsPerFault, p.JobFaultMTBFSec, p.FabricMTBFSec, p.FabricMTTRSec,
		p.MaxRetries, p.RetryBackoffSec, p.RetryBackoffMaxSec)
	for _, ev := range p.Scripted {
		fmt.Fprintf(h, "%g|%s|%d|%d|%s;", ev.TimeSec, ev.Kind, ev.Fabric, ev.Count, ev.Job)
	}
	return h.Sum32()
}

// onePlan unwraps the optional trailing FaultPlan argument.
func onePlan(plan []FaultPlan) (FaultPlan, error) {
	switch len(plan) {
	case 0:
		return FaultPlan{}, nil
	case 1:
		return plan[0], nil
	default:
		return FaultPlan{}, fmt.Errorf("wrht: at most one FaultPlan may be passed (got %d)", len(plan))
	}
}

// Recovery policies for FleetOptions.Recovery.
const (
	// RecoveryRetrySameFabric (the default) holds outage-evicted jobs and
	// resubmits them to their own fabric once repaired, resuming from the
	// last checkpoint.
	RecoveryRetrySameFabric = "retry"
	// RecoveryFailFast drops every job caught in a fabric outage.
	RecoveryFailFast = "fail-fast"
	// RecoveryMigrateOnFailure re-places evicted jobs on the best surviving
	// fabric per the placement policy, restarting from scratch there
	// (checkpoints are fabric-local).
	RecoveryMigrateOnFailure = "migrate"
)
