package wrht

import (
	"reflect"
	"testing"

	"wrht/internal/core"
	"wrht/internal/runner"
	"wrht/internal/wdm"
)

// referenceCommunicationTime is the historical pricing path — boxed schedule
// through runner.RunOptical/RunElectrical — kept verbatim as the old-path
// oracle the compact fast path must match bit for bit.
func referenceCommunicationTime(cfg Config, alg Algorithm, bytes int64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	elems := int((bytes + int64(cfg.BytesPerElem) - 1) / int64(cfg.BytesPerElem))
	s, _, err := buildSchedule(cfg, alg, elems, core.BuildPlan)
	if err != nil {
		return Result{}, err
	}
	out := Result{Algorithm: alg, Steps: s.NumSteps()}
	if isElectrical(alg) {
		res, err := runner.RunElectrical(s, runner.ElectricalOptions{
			Params:       cfg.Electrical,
			BytesPerElem: cfg.BytesPerElem,
		})
		if err != nil {
			return Result{}, err
		}
		out.Substrate = res.Substrate
		out.Seconds = res.TotalSec
		return out, nil
	}
	opts := runner.DefaultOpticalOptions()
	opts.Params = cfg.Optical
	opts.BytesPerElem = cfg.BytesPerElem
	opts.Assigner = wdm.FirstFit
	if alg == AlgORingStriped {
		opts.DefaultWidth = cfg.Optical.Wavelengths
	}
	res, err := runner.RunOptical(s, opts)
	if err != nil {
		return Result{}, err
	}
	out.Substrate = res.Substrate
	out.Seconds = res.TotalSec
	out.MaxWavelengths = res.MaxWavelengths
	return out, nil
}

// goldenConfigs is a miniature of the Figure-2 grid plus the canonical
// report axes (group sizes, wavelength budgets) at test-friendly scales.
func goldenConfigs() []Config {
	var out []Config
	for _, n := range []int{16, 24, 32} {
		for _, w := range []int{8, 64} {
			cfg := DefaultConfig(n)
			cfg.Optical.Wavelengths = w
			out = append(out, cfg)
		}
	}
	gs := DefaultConfig(24)
	gs.WrhtGroupSize = 3
	out = append(out, gs)
	greedy := DefaultConfig(24)
	greedy.WrhtGreedyA2A = true
	out = append(out, greedy)
	return out
}

// TestCommunicationTimeGoldenEquality: every priced number out of the
// compact, pooled, memoized fast path is bit-identical to the historical
// boxed path, across the canonical grid axes and every algorithm.
func TestCommunicationTimeGoldenEquality(t *testing.T) {
	const bytes = 3 << 20
	for _, cfg := range goldenConfigs() {
		for _, alg := range Algorithms() {
			want, refErr := referenceCommunicationTime(cfg, alg, bytes)
			got, newErr := CommunicationTime(cfg, alg, bytes)
			if (refErr == nil) != (newErr == nil) {
				t.Fatalf("n=%d w=%d %s: error divergence: ref=%v new=%v",
					cfg.Nodes, cfg.Optical.Wavelengths, alg, refErr, newErr)
			}
			if refErr != nil {
				continue
			}
			// The reference does not recompute PredictedSeconds (it is not a
			// simulate-path output); compare the simulated fields bit-exactly.
			got.PredictedSeconds = 0
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d w=%d %s: fast path diverges\n got %+v\nwant %+v",
					cfg.Nodes, cfg.Optical.Wavelengths, alg, got, want)
			}
		}
	}
}

// TestSessionReuseGoldenEquality: pricing through a shared SweepSession —
// caches warm, schedules and simulations served from memory — returns
// bit-identical results to fresh uncached calls, in any order.
func TestSessionReuseGoldenEquality(t *testing.T) {
	sess := NewSweepSession()
	cfg := DefaultConfig(24)
	const bytes = 1 << 20
	for round := 0; round < 3; round++ {
		for _, alg := range Algorithms() {
			fresh, err := CommunicationTime(cfg, alg, bytes)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := sess.CommunicationTime(cfg, alg, bytes)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh, cached) {
				t.Fatalf("round %d %s: session result diverges", round, alg)
			}
		}
	}
	st := sess.Stats()
	if st.SimulationRuns == 0 || st.SimulationHits == 0 {
		t.Fatalf("session caches idle: %+v", st)
	}
	// Rounds 2 and 3 must be pure cache hits: no new simulations.
	if st.SimulationRuns > int64(len(Algorithms())) {
		t.Fatalf("repeat rounds re-simulated: %+v", st)
	}
}

// TestSimulateFabricGoldenEquality: the session-backed fabric path equals
// the one-shot path, and repeated session use stays bit-stable.
func TestSimulateFabricGoldenEquality(t *testing.T) {
	cfg := DefaultConfig(16)
	cfg.Optical.Wavelengths = 16
	jobs := []JobSpec{
		{Name: "a", Bytes: 1 << 20, Priority: 2, MaxWavelengths: 8},
		{Name: "b", Bytes: 2 << 20, ArrivalSec: 1e-4},
		{Name: "c", Bytes: 1 << 19, Algorithm: AlgORing},
	}
	sess := NewSweepSession()
	for _, pol := range FabricPolicies() {
		want, err := SimulateFabric(cfg, jobs, pol)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			got, err := sess.SimulateFabric(cfg, jobs, pol)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("policy %s round %d: session fabric result diverges", pol, round)
			}
		}
	}
}

// TestSweepSessionRunSweepGoldenEquality: a sweep through a warm shared
// session equals a fresh RunSweep cell for cell.
func TestSweepSessionRunSweepGoldenEquality(t *testing.T) {
	spec := sweepTestSpec()
	fresh, err := RunSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSweepSession()
	for round := 0; round < 2; round++ {
		got, err := sess.RunSweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Cells) != len(fresh.Cells) {
			t.Fatalf("cell count diverges: %d vs %d", len(got.Cells), len(fresh.Cells))
		}
		for i := range got.Cells {
			g, w := got.Cells[i], fresh.Cells[i]
			// Errors carry distinct instances; compare text.
			if (g.Err == nil) != (w.Err == nil) {
				t.Fatalf("cell %d error divergence", i)
			}
			if g.Err != nil {
				if g.Err.Error() != w.Err.Error() {
					t.Fatalf("cell %d error text diverges", i)
				}
				continue
			}
			g.Err, w.Err = nil, nil
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("cell %d diverges between fresh and warm-session sweeps", i)
			}
		}
	}
}
