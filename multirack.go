package wrht

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/model"
	"wrht/internal/multiring"
)

// MultiRackResult describes a hierarchical all-reduce over several optical
// rings joined by an electrical leader network.
type MultiRackResult struct {
	Racks, NodesPerRack int
	// Phase timings: Wrht reduce inside every rack (parallel), leader
	// all-reduce across racks, mirrored broadcast.
	IntraReduceSec    float64
	InterSec          float64
	IntraBroadcastSec float64
	TotalSec          float64
	// FlatERingSec is the flat electrical ring over all workers, for
	// comparison.
	FlatERingSec float64
}

// MultiRackTime prices a hierarchical all-reduce of `bytes` bytes over
// racks × nodesPerRack workers: per-rack Wrht on cfg.Optical rings, leaders
// all-reduced over cfg.Electrical. cfg.Nodes is ignored (the worker count is
// racks × nodesPerRack).
func MultiRackTime(cfg Config, racks, nodesPerRack int, bytes int64) (MultiRackResult, error) {
	return multiRackTime(cfg, racks, nodesPerRack, bytes, core.BuildPlan)
}

// multiRackTime is MultiRackTime with an injectable intra-rack plan builder
// (RunSweep shares its memoized cache across multi-rack points).
func multiRackTime(cfg Config, racks, nodesPerRack int, bytes int64, build planBuilder) (MultiRackResult, error) {
	if err := cfg.Optical.Validate(); err != nil {
		return MultiRackResult{}, err
	}
	if err := cfg.Electrical.Validate(); err != nil {
		return MultiRackResult{}, err
	}
	if bytes <= 0 {
		return MultiRackResult{}, fmt.Errorf("wrht: non-positive buffer size %d", bytes)
	}
	bpe := cfg.BytesPerElem
	if bpe == 0 {
		bpe = 4
	}
	if bpe < 1 {
		// Same validation CommunicationTime applies (via Config.Validate);
		// only the zero value means "default", a negative width is an error,
		// not a silent negative element count.
		return MultiRackResult{}, fmt.Errorf("wrht: BytesPerElem %d", cfg.BytesPerElem)
	}
	opts := core.DefaultOptions()
	opts.Cost = model.CostParamsOf(cfg.Optical)
	opts.M = cfg.WrhtGroupSize
	if cfg.WrhtGreedyA2A {
		opts.Policy = core.A2AGreedy
	}
	plan, err := multiring.BuildPlanWith(racks, nodesPerRack, cfg.Optical.Wavelengths, opts,
		multiring.PlanBuilder(build))
	if err != nil {
		return MultiRackResult{}, err
	}
	elems := int((bytes + int64(bpe) - 1) / int64(bpe))
	tb, err := plan.Time(elems, cfg.Optical, cfg.Electrical)
	if err != nil {
		return MultiRackResult{}, err
	}
	return MultiRackResult{
		Racks: racks, NodesPerRack: nodesPerRack,
		IntraReduceSec:    tb.IntraReduceSec,
		InterSec:          tb.InterSec,
		IntraBroadcastSec: tb.IntraBroadcastSec,
		TotalSec:          tb.TotalSec(),
		FlatERingSec:      model.ERing(racks*nodesPerRack, int64(elems)*int64(bpe), cfg.Electrical),
	}, nil
}

// VerifyMultiRack executes the composed hierarchical schedule on real
// buffers and confirms every worker ends with the exact global sum.
func VerifyMultiRack(cfg Config, racks, nodesPerRack, elems int) error {
	opts := core.DefaultOptions()
	opts.Cost = model.CostParamsOf(cfg.Optical)
	opts.M = cfg.WrhtGroupSize
	plan, err := multiring.BuildPlan(racks, nodesPerRack, cfg.Optical.Wavelengths, opts)
	if err != nil {
		return err
	}
	s, err := plan.GlobalSchedule(elems)
	if err != nil {
		return err
	}
	return collective.VerifyAllReduce(s)
}
