// Package trace simulates one data-parallel SGD training iteration: backprop
// produces per-layer gradients in reverse layer order, gradients are fused
// into buckets (internal/dnn), and each bucket's all-reduce overlaps the
// remaining backward compute — the standard DDP pipeline. The package
// quantifies the paper's motivating claim (communication occupies 50–90% of
// iteration time on electrical networks at scale) and shows how Wrht changes
// the balance; see examples/ddp_training and BenchmarkTrainingIteration.
package trace

import (
	"fmt"

	"wrht/internal/dnn"
)

// ComputeModel is the per-worker compute cost of one iteration.
type ComputeModel struct {
	ForwardSec  float64
	BackwardSec float64
}

// Validate checks the compute model.
func (c ComputeModel) Validate() error {
	if c.ForwardSec < 0 || c.BackwardSec <= 0 {
		return fmt.Errorf("trace: invalid compute model %+v", c)
	}
	return nil
}

// DefaultCompute returns representative single-GPU iteration times (batch 32,
// V100-class accelerator) for the paper's four models. The absolute values
// are synthetic stand-ins — the paper does not publish its compute times —
// but their relative magnitudes track the models' costs, which is what the
// overlap analysis is sensitive to.
func DefaultCompute(m dnn.Model) ComputeModel {
	switch m.Name {
	case "AlexNet":
		return ComputeModel{ForwardSec: 5e-3, BackwardSec: 10e-3}
	case "VGG16":
		return ComputeModel{ForwardSec: 30e-3, BackwardSec: 60e-3}
	case "ResNet50":
		return ComputeModel{ForwardSec: 20e-3, BackwardSec: 40e-3}
	case "GoogLeNet":
		return ComputeModel{ForwardSec: 10e-3, BackwardSec: 20e-3}
	default:
		// Scale with parameter count relative to ResNet50.
		f := float64(m.TotalParams()) / 25.5e6
		return ComputeModel{ForwardSec: 20e-3 * f, BackwardSec: 40e-3 * f}
	}
}

// ComputeFromFLOPs derives the compute model from the model's layer-accurate
// FLOP table: forward = batch·FLOPs/(TFLOPS·efficiency), backward = 2×
// forward (the standard backprop cost ratio). efficiency is the achieved
// fraction of peak (dense CNNs on fp32 GPUs typically reach 0.3–0.5).
func ComputeFromFLOPs(m dnn.Model, batch int, tflops, efficiency float64) (ComputeModel, error) {
	if batch < 1 || tflops <= 0 || efficiency <= 0 || efficiency > 1 {
		return ComputeModel{}, fmt.Errorf("trace: bad compute derivation (batch=%d tflops=%v eff=%v)",
			batch, tflops, efficiency)
	}
	fl := m.TotalFLOPs()
	if fl <= 0 {
		return ComputeModel{}, fmt.Errorf("trace: model %s has no FLOP table", m.Name)
	}
	fwd := float64(batch) * float64(fl) / (tflops * 1e12 * efficiency)
	return ComputeModel{ForwardSec: fwd, BackwardSec: 2 * fwd}, nil
}

// CommTimer prices one fused-bucket all-reduce of the given byte size.
type CommTimer func(bytes int64) float64

// IterationResult describes one simulated training iteration.
type IterationResult struct {
	// ComputeSec is forward + backward compute.
	ComputeSec float64
	// CommSec is the total all-reduce busy time (sum over buckets).
	CommSec float64
	// ExposedCommSec is the communication time not hidden behind backprop.
	ExposedCommSec float64
	// IterationSec is the wall-clock iteration time.
	IterationSec float64
	// Buckets is the number of fused all-reduces issued.
	Buckets int
	// CommShare is CommSec / (serial compute + comm) — the paper's
	// "communication may occupy 50–90% of per-iteration time" metric,
	// i.e. the share if nothing were overlapped.
	CommShare float64
	// ScalingEfficiency is ComputeSec+overhead-free time over IterationSec.
	ScalingEfficiency float64
}

// SimulateIteration runs the bucketed-overlap pipeline for one iteration.
//
// Backward compute is distributed over layers proportionally to their
// parameter counts (a standard first-order proxy); bucket b's all-reduce can
// start once backprop has passed its earliest layer and the previous bucket's
// all-reduce finished (all-reduces serialize on the network, in backprop
// order, as DDP implementations do). The iteration ends when both backprop
// and the last all-reduce are done, plus the forward pass of the next step.
func SimulateIteration(m dnn.Model, cm ComputeModel, bucketCapBytes int64,
	bytesPerElem int, comm CommTimer) (IterationResult, error) {
	if err := cm.Validate(); err != nil {
		return IterationResult{}, err
	}
	if comm == nil {
		return IterationResult{}, fmt.Errorf("trace: nil CommTimer")
	}
	buckets, err := m.Buckets(bucketCapBytes, bytesPerElem)
	if err != nil {
		return IterationResult{}, err
	}
	total := m.TotalParams()
	if total == 0 {
		return IterationResult{}, fmt.Errorf("trace: model %s has no parameters", m.Name)
	}

	// prefix[i] = params of layers [0, i); backprop reaches layer i's
	// gradient at time BackwardSec * (total - prefix[i]) / total.
	prefix := make([]int64, len(m.Layers)+1)
	for i, l := range m.Layers {
		prefix[i+1] = prefix[i] + l.Params
	}
	gradReady := func(layer int) float64 {
		return cm.BackwardSec * float64(total-prefix[layer]) / float64(total)
	}

	res := IterationResult{
		ComputeSec: cm.ForwardSec + cm.BackwardSec,
		Buckets:    len(buckets),
	}
	commFree := 0.0 // when the network is next free
	lastDone := 0.0
	for _, b := range buckets {
		ready := gradReady(b.FirstLayer)
		start := ready
		if commFree > start {
			start = commFree
		}
		d := comm(b.Params * int64(bytesPerElem))
		if d < 0 {
			return IterationResult{}, fmt.Errorf("trace: negative comm time %v", d)
		}
		res.CommSec += d
		commFree = start + d
		lastDone = commFree
	}
	backDone := cm.BackwardSec
	end := backDone
	if lastDone > end {
		end = lastDone
	}
	res.ExposedCommSec = end - backDone
	res.IterationSec = cm.ForwardSec + end
	serial := res.ComputeSec + res.CommSec
	if serial > 0 {
		res.CommShare = res.CommSec / serial
	}
	if res.IterationSec > 0 {
		res.ScalingEfficiency = res.ComputeSec / res.IterationSec
	}
	return res, nil
}
