package trace

import (
	"math"
	"testing"

	"wrht/internal/dnn"
	"wrht/internal/electrical"
	"wrht/internal/model"
	"wrht/internal/optical"
)

func TestSimulateIterationFullyHidden(t *testing.T) {
	// Instant communication: iteration time = compute time, zero exposure.
	m := dnn.AlexNet()
	cm := DefaultCompute(m)
	res, err := SimulateIteration(m, cm, 25<<20, 4, func(int64) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	if res.ExposedCommSec != 0 {
		t.Fatalf("exposed = %v", res.ExposedCommSec)
	}
	if math.Abs(res.IterationSec-res.ComputeSec) > 1e-12 {
		t.Fatalf("iteration %v != compute %v", res.IterationSec, res.ComputeSec)
	}
	if res.ScalingEfficiency != 1 {
		t.Fatalf("efficiency = %v", res.ScalingEfficiency)
	}
}

func TestSimulateIterationFullyExposed(t *testing.T) {
	// One giant bucket that only becomes ready at the very start of
	// backprop... the earliest layer gate means a single bucket waits for
	// the whole backward pass only if it includes layer 0.
	m := dnn.AlexNet()
	cm := DefaultCompute(m)
	const commTime = 0.5
	res, err := SimulateIteration(m, cm, 1<<40, 4, func(int64) float64 { return commTime })
	if err != nil {
		t.Fatal(err)
	}
	if res.Buckets != 1 {
		t.Fatalf("buckets = %d", res.Buckets)
	}
	// Single bucket covering all layers is ready when backprop reaches
	// layer 0, i.e. at BackwardSec. Everything is exposed.
	if math.Abs(res.ExposedCommSec-commTime) > 1e-9 {
		t.Fatalf("exposed = %v, want %v", res.ExposedCommSec, commTime)
	}
	want := cm.ForwardSec + cm.BackwardSec + commTime
	if math.Abs(res.IterationSec-want) > 1e-9 {
		t.Fatalf("iteration = %v, want %v", res.IterationSec, want)
	}
}

func TestBucketingImprovesOverlap(t *testing.T) {
	// With a fixed per-byte communication rate, small buckets must expose
	// no more communication than one monolithic bucket.
	m := dnn.VGG16()
	cm := DefaultCompute(m)
	perByte := 100e-12 // 100 ps/byte ≈ 80 Gb/s effective
	comm := func(b int64) float64 { return float64(b) * perByte }
	mono, err := SimulateIteration(m, cm, 1<<40, 4, comm)
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := SimulateIteration(m, cm, 25<<20, 4, comm)
	if err != nil {
		t.Fatal(err)
	}
	if bucketed.ExposedCommSec > mono.ExposedCommSec+1e-9 {
		t.Fatalf("bucketing exposed more: %v > %v", bucketed.ExposedCommSec, mono.ExposedCommSec)
	}
	if bucketed.Buckets <= mono.Buckets {
		t.Fatalf("expected more buckets, got %d vs %d", bucketed.Buckets, mono.Buckets)
	}
}

func TestPaperMotivationCommShare(t *testing.T) {
	// The paper's intro: all-reduce occupies 50–90% of per-iteration time at
	// scale on electrical networks. Check E-Ring at n=1024 lands in that
	// band for the large models, and that Wrht cuts the share.
	ep := electrical.DefaultParams()
	op := optical.DefaultParams()
	for _, m := range []dnn.Model{dnn.AlexNet(), dnn.VGG16()} {
		cm := DefaultCompute(m)
		eComm := func(b int64) float64 { return model.ERing(1024, b, ep) }
		res, err := SimulateIteration(m, cm, 25<<20, 4, eComm)
		if err != nil {
			t.Fatal(err)
		}
		if res.CommShare < 0.5 || res.CommShare > 0.95 {
			t.Errorf("%s: E-Ring comm share %.0f%%, expected the paper's 50–90%% band",
				m.Name, 100*res.CommShare)
		}
		wComm := func(b int64) float64 {
			_, tm, err := model.WrhtAuto(1024, b, op)
			if err != nil {
				t.Fatal(err)
			}
			return tm
		}
		wres, err := SimulateIteration(m, cm, 25<<20, 4, wComm)
		if err != nil {
			t.Fatal(err)
		}
		if wres.CommShare >= res.CommShare {
			t.Errorf("%s: Wrht share %.0f%% not below E-Ring share %.0f%%",
				m.Name, 100*wres.CommShare, 100*res.CommShare)
		}
		if wres.IterationSec >= res.IterationSec {
			t.Errorf("%s: Wrht iteration %.4g not faster than E-Ring %.4g",
				m.Name, wres.IterationSec, res.IterationSec)
		}
	}
}

func TestValidation(t *testing.T) {
	m := dnn.AlexNet()
	if _, err := SimulateIteration(m, ComputeModel{}, 1<<20, 4, func(int64) float64 { return 0 }); err == nil {
		t.Fatal("zero compute model accepted")
	}
	cm := DefaultCompute(m)
	if _, err := SimulateIteration(m, cm, 1<<20, 4, nil); err == nil {
		t.Fatal("nil timer accepted")
	}
	if _, err := SimulateIteration(m, cm, 0, 4, func(int64) float64 { return 0 }); err == nil {
		t.Fatal("zero bucket cap accepted")
	}
	if _, err := SimulateIteration(m, cm, 1<<20, 4, func(int64) float64 { return -1 }); err == nil {
		t.Fatal("negative comm time accepted")
	}
}

func TestDefaultComputeCoversCatalogAndFallback(t *testing.T) {
	for _, m := range dnn.PaperModels() {
		cm := DefaultCompute(m)
		if err := cm.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
	custom := dnn.Model{Name: "custom", Layers: []dnn.Layer{{Name: "fc", Params: 51_000_000}}}
	cm := DefaultCompute(custom)
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	if cm.BackwardSec <= 0 {
		t.Fatal("fallback compute model empty")
	}
}

func TestComputeFromFLOPs(t *testing.T) {
	m := dnn.VGG16()
	cm, err := ComputeFromFLOPs(m, 32, 15.7, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// 32 × 30.94 GFLOPs / (15.7 TFLOPS × 0.4) ≈ 158 ms forward.
	if cm.ForwardSec < 0.1 || cm.ForwardSec > 0.25 {
		t.Fatalf("VGG16 forward %v s, expected ≈0.16 s", cm.ForwardSec)
	}
	if math.Abs(cm.BackwardSec-2*cm.ForwardSec) > 1e-12 {
		t.Fatalf("backward should be 2x forward")
	}
	if _, err := ComputeFromFLOPs(m, 0, 15.7, 0.4); err == nil {
		t.Fatal("batch=0 accepted")
	}
	if _, err := ComputeFromFLOPs(m, 32, 15.7, 1.5); err == nil {
		t.Fatal("efficiency>1 accepted")
	}
	if _, err := ComputeFromFLOPs(dnn.Model{Name: "empty"}, 32, 15.7, 0.4); err == nil {
		t.Fatal("FLOP-less model accepted")
	}
}

func TestFLOPsDerivedIterationSensible(t *testing.T) {
	// FLOPs-derived compute and the synthetic defaults must agree on the
	// qualitative outcome: Wrht hides most communication, E-Ring does not.
	op := optical.DefaultParams()
	ep := electrical.DefaultParams()
	m := dnn.ResNet50()
	cm, err := ComputeFromFLOPs(m, 32, 15.7, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	eComm := func(b int64) float64 { return model.ERing(1024, b, ep) }
	wComm := func(b int64) float64 {
		_, tm, err := model.WrhtAuto(1024, b, op)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	e, err := SimulateIteration(m, cm, 25<<20, 4, eComm)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SimulateIteration(m, cm, 25<<20, 4, wComm)
	if err != nil {
		t.Fatal(err)
	}
	if w.ExposedCommSec >= e.ExposedCommSec {
		t.Fatalf("Wrht exposed %v >= E-Ring exposed %v", w.ExposedCommSec, e.ExposedCommSec)
	}
	if w.ScalingEfficiency < 0.9 {
		t.Fatalf("Wrht ResNet50 efficiency %v, expected near-perfect overlap", w.ScalingEfficiency)
	}
}
