package exp

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/runner"
)

func TestGridSizeAndDeterministicOrder(t *testing.T) {
	g := Grid{
		Nodes:        []int{16, 32},
		MessageBytes: []int64{1 << 10, 1 << 20, 1 << 30},
		Algorithms:   []string{"wrht", "o-ring"},
	}
	if got := g.Size(); got != 12 {
		t.Fatalf("Size() = %d, want 12", got)
	}
	pts := g.Points()
	if len(pts) != 12 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
	}
	// Fixed nesting: nodes outermost, then message sizes, then algorithms.
	want := Point{Index: 1, Nodes: 16, MessageBytes: 1 << 10, Algorithm: "o-ring"}
	if pts[1] != want {
		t.Fatalf("pts[1] = %+v, want %+v", pts[1], want)
	}
	want = Point{Index: 8, Nodes: 32, MessageBytes: 1 << 20, Algorithm: "wrht"}
	if pts[8] != want {
		t.Fatalf("pts[8] = %+v, want %+v", pts[8], want)
	}
	if !reflect.DeepEqual(pts, g.Points()) {
		t.Fatal("re-enumeration changed the point list")
	}
}

func TestGridEmptyAxesCollapse(t *testing.T) {
	pts := Grid{}.Points()
	if len(pts) != 1 || pts[0] != (Point{}) {
		t.Fatalf("empty grid: %+v", pts)
	}
}

func TestRunStableOrderAndErrorCapture(t *testing.T) {
	const n = 100
	var want []int
	for i := 0; i < n; i++ {
		want = append(want, i*i)
	}
	for _, par := range []int{0, 1, 3, 16, 200} {
		res, errs := Run(n, par, func(i int) (int, error) {
			if i%7 == 0 {
				return -1, fmt.Errorf("point %d failed", i)
			}
			return i * i, nil
		})
		for i := 0; i < n; i++ {
			if i%7 == 0 {
				if errs[i] == nil {
					t.Fatalf("par=%d: point %d error not captured", par, i)
				}
				continue
			}
			if errs[i] != nil || res[i] != want[i] {
				t.Fatalf("par=%d: point %d = (%d, %v), want (%d, nil)",
					par, i, res[i], errs[i], want[i])
			}
		}
	}
}

func TestPlanCachePointerIdentity(t *testing.T) {
	c := NewPlanCache()
	opts := core.DefaultOptions()
	p1, err := c.Plan(64, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(64, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeated key did not return the pointer-identical plan")
	}
	p3, err := c.Plan(64, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("distinct keys share a plan")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
}

func TestPlanCacheConcurrentSharing(t *testing.T) {
	c := NewPlanCache()
	const workers = 64
	plans := make([]*core.Plan, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Plan(128, 16, core.DefaultOptions())
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent callers received different plans for one key")
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != workers-1 {
		t.Fatalf("stats = (%d hits, %d misses), want (%d, 1)", hits, misses, workers-1)
	}
}

func TestPlanCacheMemoizesErrors(t *testing.T) {
	c := NewPlanCache()
	opts := core.DefaultOptions()
	opts.M = 9 // ⌊9/2⌋ = 4 wavelengths needed; a budget of 1 is infeasible
	_, err1 := c.Plan(64, 1, opts)
	if err1 == nil {
		t.Fatal("infeasible key built")
	}
	_, err2 := c.Plan(64, 1, opts)
	if err2 != err1 {
		t.Fatal("error not memoized")
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("%d misses, want 1", misses)
	}
}

func TestPlanCacheSharesOptimizerCandidates(t *testing.T) {
	c := NewPlanCache()
	opts := core.DefaultOptions() // M = 0: automatic group size
	auto, err := c.Plan(24, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Requesting the chosen shape explicitly must be served from the
	// candidate the optimizer already built — pointer identity, no rebuild.
	explicit := opts
	explicit.M = auto.M
	explicit.Policy = auto.Policy
	before := core.PlanBuildCount()
	p, err := c.Plan(24, 8, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if p != auto {
		t.Fatal("explicit-m request did not reuse the optimizer's candidate plan")
	}
	if d := core.PlanBuildCount() - before; d != 0 {
		t.Fatalf("explicit-m request issued %d BuildPlan calls, want 0", d)
	}
	// Caller-visible stats count only the two requests, each a miss (first
	// counted request per key — candidate fills don't pre-claim keys, which
	// keeps the counters deterministic under concurrency).
	hits, misses := c.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("stats = (%d hits, %d misses), want (0, 2)", hits, misses)
	}
}

func TestScheduleCacheSharing(t *testing.T) {
	c := NewScheduleCache()
	key := ScheduleKey{Algorithm: "ring", N: 8, Elems: 64}
	builds := 0
	build := func() (*collective.ClassSchedule, error) {
		builds++
		return collective.RingAllReduceClassed(8, 64)
	}
	s1, err := c.Schedule(key, build)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Schedule(key, build)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || builds != 1 {
		t.Fatalf("cache did not share: builds=%d", builds)
	}
	other := key
	other.Elems = 128
	if _, err := c.Schedule(other, func() (*collective.ClassSchedule, error) {
		builds++
		return collective.RingAllReduceClassed(8, 128)
	}); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Fatalf("distinct key did not build: builds=%d", builds)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d, %d), want (1, 2)", hits, misses)
	}
}

func TestSimCacheSharing(t *testing.T) {
	cs, err := collective.RingAllReduceCompact(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSimCache()
	key := SimKey{
		Sched:   ScheduleKey{Algorithm: "ring", N: 8, Elems: 64},
		OptOpts: runner.DefaultOpticalOptions(),
	}
	runs := 0
	run := func() (runner.Result, error) {
		runs++
		return runner.RunOpticalCompact(cs, runner.DefaultOpticalOptions())
	}
	r1, err := c.Run(key, run)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run(key, run)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Fatalf("simulated %d times, want 1", runs)
	}
	if r1.TotalSec != r2.TotalSec || r1.TotalSec <= 0 {
		t.Fatalf("cached results diverge: %v vs %v", r1.TotalSec, r2.TotalSec)
	}
	// Different substrate options are distinct entries.
	wider := key
	wider.OptOpts.DefaultWidth = 8
	if _, err := c.Run(wider, func() (runner.Result, error) {
		runs++
		o := runner.DefaultOpticalOptions()
		o.DefaultWidth = 8
		return runner.RunOpticalCompact(cs, o)
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("distinct options did not rerun: runs=%d", runs)
	}
}

func TestSimCacheConcurrentSingleRun(t *testing.T) {
	cs, err := collective.RingAllReduceCompact(16, 256)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSimCache()
	key := SimKey{Sched: ScheduleKey{Algorithm: "ring", N: 16, Elems: 256}, OptOpts: runner.DefaultOpticalOptions()}
	var runs int64
	var wg sync.WaitGroup
	results := make([]runner.Result, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Run(key, func() (runner.Result, error) {
				atomic.AddInt64(&runs, 1)
				return runner.RunOpticalCompact(cs, runner.DefaultOpticalOptions())
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if runs != 1 {
		t.Fatalf("concurrent callers ran %d simulations, want 1", runs)
	}
	for i := 1; i < 32; i++ {
		if results[i].TotalSec != results[0].TotalSec {
			t.Fatal("concurrent callers got different results")
		}
	}
}
