package exp

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"wrht/internal/core"
)

func TestGridSizeAndDeterministicOrder(t *testing.T) {
	g := Grid{
		Nodes:        []int{16, 32},
		MessageBytes: []int64{1 << 10, 1 << 20, 1 << 30},
		Algorithms:   []string{"wrht", "o-ring"},
	}
	if got := g.Size(); got != 12 {
		t.Fatalf("Size() = %d, want 12", got)
	}
	pts := g.Points()
	if len(pts) != 12 {
		t.Fatalf("%d points", len(pts))
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has Index %d", i, p.Index)
		}
	}
	// Fixed nesting: nodes outermost, then message sizes, then algorithms.
	want := Point{Index: 1, Nodes: 16, MessageBytes: 1 << 10, Algorithm: "o-ring"}
	if pts[1] != want {
		t.Fatalf("pts[1] = %+v, want %+v", pts[1], want)
	}
	want = Point{Index: 8, Nodes: 32, MessageBytes: 1 << 20, Algorithm: "wrht"}
	if pts[8] != want {
		t.Fatalf("pts[8] = %+v, want %+v", pts[8], want)
	}
	if !reflect.DeepEqual(pts, g.Points()) {
		t.Fatal("re-enumeration changed the point list")
	}
}

func TestGridEmptyAxesCollapse(t *testing.T) {
	pts := Grid{}.Points()
	if len(pts) != 1 || pts[0] != (Point{}) {
		t.Fatalf("empty grid: %+v", pts)
	}
}

func TestRunStableOrderAndErrorCapture(t *testing.T) {
	const n = 100
	var want []int
	for i := 0; i < n; i++ {
		want = append(want, i*i)
	}
	for _, par := range []int{0, 1, 3, 16, 200} {
		res, errs := Run(n, par, func(i int) (int, error) {
			if i%7 == 0 {
				return -1, fmt.Errorf("point %d failed", i)
			}
			return i * i, nil
		})
		for i := 0; i < n; i++ {
			if i%7 == 0 {
				if errs[i] == nil {
					t.Fatalf("par=%d: point %d error not captured", par, i)
				}
				continue
			}
			if errs[i] != nil || res[i] != want[i] {
				t.Fatalf("par=%d: point %d = (%d, %v), want (%d, nil)",
					par, i, res[i], errs[i], want[i])
			}
		}
	}
}

func TestPlanCachePointerIdentity(t *testing.T) {
	c := NewPlanCache()
	opts := core.DefaultOptions()
	p1, err := c.Plan(64, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(64, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeated key did not return the pointer-identical plan")
	}
	p3, err := c.Plan(64, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("distinct keys share a plan")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
}

func TestPlanCacheConcurrentSharing(t *testing.T) {
	c := NewPlanCache()
	const workers = 64
	plans := make([]*core.Plan, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Plan(128, 16, core.DefaultOptions())
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if plans[i] != plans[0] {
			t.Fatal("concurrent callers received different plans for one key")
		}
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != workers-1 {
		t.Fatalf("stats = (%d hits, %d misses), want (%d, 1)", hits, misses, workers-1)
	}
}

func TestPlanCacheMemoizesErrors(t *testing.T) {
	c := NewPlanCache()
	opts := core.DefaultOptions()
	opts.M = 9 // ⌊9/2⌋ = 4 wavelengths needed; a budget of 1 is infeasible
	_, err1 := c.Plan(64, 1, opts)
	if err1 == nil {
		t.Fatal("infeasible key built")
	}
	_, err2 := c.Plan(64, 1, opts)
	if err2 != err1 {
		t.Fatal("error not memoized")
	}
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("%d misses, want 1", misses)
	}
}
