// Package exp is the concurrent experiment engine behind wrht.RunSweep: a
// declarative Grid that enumerates scenario axes into a deterministic point
// list, a worker pool that evaluates points concurrently while returning
// results in stable grid order, and a shared memoized PlanCache that
// eliminates the redundant core.BuildPlan calls that dominate wide sweeps
// (the optimizer alone issues hundreds of candidate builds per distinct
// (nodes, wavelengths) pair). The package is domain-neutral on purpose: the
// mapping from a Point to a priced scenario lives in the public API
// (sweep.go), which is the only layer that knows about configs, catalog
// models, and fabric job mixes.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Grid declares the axes of an experiment. Every non-empty axis contributes
// one dimension to the cartesian product; empty axes are skipped (their Point
// field stays at the zero value, which the caller interprets as "pinned to
// the base scenario"). FabricMixes and FabricPolicies hold indices into
// caller-side tables of job mixes and partitioning policies, keeping the
// engine free of domain types.
type Grid struct {
	Nodes          []int
	Wavelengths    []int
	Models         []string
	MessageBytes   []int64
	Algorithms     []string
	GroupSizes     []int
	GreedyA2A      []bool
	PipelineChunks []int
	FabricMixes    []int
	FabricPolicies []int
	Racks          []int
	NodesPerRack   []int
}

// Point is one fully resolved scenario of a Grid. Index is the point's
// position in the deterministic enumeration order.
type Point struct {
	Index          int
	Nodes          int
	Wavelengths    int
	Model          string
	MessageBytes   int64
	Algorithm      string
	GroupSize      int
	GreedyA2A      bool
	PipelineChunks int
	FabricMix      int
	FabricPolicy   int
	Racks          int
	NodesPerRack   int
}

// axes returns the grid's dimensions in enumeration order (outermost first).
func (g Grid) axes() []struct {
	n   int
	set func(p *Point, i int)
} {
	return []struct {
		n   int
		set func(p *Point, i int)
	}{
		{len(g.Nodes), func(p *Point, i int) { p.Nodes = g.Nodes[i] }},
		{len(g.Racks), func(p *Point, i int) { p.Racks = g.Racks[i] }},
		{len(g.NodesPerRack), func(p *Point, i int) { p.NodesPerRack = g.NodesPerRack[i] }},
		{len(g.Wavelengths), func(p *Point, i int) { p.Wavelengths = g.Wavelengths[i] }},
		{len(g.Models), func(p *Point, i int) { p.Model = g.Models[i] }},
		{len(g.MessageBytes), func(p *Point, i int) { p.MessageBytes = g.MessageBytes[i] }},
		{len(g.Algorithms), func(p *Point, i int) { p.Algorithm = g.Algorithms[i] }},
		{len(g.GroupSizes), func(p *Point, i int) { p.GroupSize = g.GroupSizes[i] }},
		{len(g.GreedyA2A), func(p *Point, i int) { p.GreedyA2A = g.GreedyA2A[i] }},
		{len(g.PipelineChunks), func(p *Point, i int) { p.PipelineChunks = g.PipelineChunks[i] }},
		{len(g.FabricMixes), func(p *Point, i int) { p.FabricMix = g.FabricMixes[i] }},
		{len(g.FabricPolicies), func(p *Point, i int) { p.FabricPolicy = g.FabricPolicies[i] }},
	}
}

// Size returns the number of points the grid enumerates.
func (g Grid) Size() int {
	n := 1
	for _, a := range g.axes() {
		if a.n > 0 {
			n *= a.n
		}
	}
	return n
}

// Points enumerates the grid into its deterministic point list: a nested
// cartesian product in fixed axis order (nodes outermost, fabric policy
// innermost), independent of how the sweep is later parallelized.
func (g Grid) Points() []Point {
	axes := g.axes()
	out := make([]Point, 0, g.Size())
	var rec func(p Point, k int)
	rec = func(p Point, k int) {
		if k == len(axes) {
			p.Index = len(out)
			out = append(out, p)
			return
		}
		a := axes[k]
		if a.n == 0 {
			rec(p, k+1)
			return
		}
		for i := 0; i < a.n; i++ {
			a.set(&p, i)
			rec(p, k+1)
		}
	}
	rec(Point{}, 0)
	return out
}

// RunContext is Run under a cancellation context: once ctx is done, workers
// stop evaluating and every remaining index fills its error slot with
// ctx.Err() (already-completed points keep their results, so the output
// shape is stable). A nil ctx degrades to plain Run. Cancellation is
// checked at point boundaries — a point already being evaluated runs to
// completion unless its own pricing path observes the same context.
func RunContext[T any](ctx context.Context, n, parallelism int, fn func(i int) (T, error)) ([]T, []error) {
	if ctx == nil {
		return Run(n, parallelism, fn)
	}
	return Run(n, parallelism, func(i int) (T, error) {
		if err := ctx.Err(); err != nil {
			var zero T
			return zero, err
		}
		return fn(i)
	})
}

// Run evaluates fn for every index in [0, n) on `parallelism` workers
// (<= 0 selects GOMAXPROCS) and returns results and errors in index order
// regardless of completion order. Each index is evaluated exactly once; a
// failed point fills its error slot without aborting the rest of the sweep.
func Run[T any](n, parallelism int, fn func(i int) (T, error)) ([]T, []error) {
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
		return results, errs
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		// Label the worker goroutines so CPU and goroutine profiles
		// attribute sweep time to the pool (and to the worker slot) instead
		// of an anonymous closure. The serial parallelism==1 path above
		// stays unlabeled and allocation-free.
		labels := pprof.Labels("pool", "exp.Run", "worker", fmt.Sprintf("%d", w))
		//wrht:allow ctxflow -- pprof.Do only carries profiler labels here; the pool has no cancellation contract, workers drain the closed idx channel
		go pprof.Do(context.Background(), labels, func(context.Context) {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = fn(i)
			}
		})
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errs
}
