package exp

import (
	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/runner"
)

// ScheduleKey identifies one lowered schedule. Exactly one of the two
// identity halves is set: Algorithm names a classical schedule constructor
// ("ring", "rd", "hd", "binomial" — pure functions of N and Elems), while a
// non-zero Sig identifies a planned Wrht schedule (core.PlanSig fully
// determines the lowering, so the optimizer's plan and the same plan
// requested with an explicit group size share one entry). Chunks
// distinguishes the chunked-pipeline lowering (0 = plain).
type ScheduleKey struct {
	Algorithm string
	N         int
	Elems     int
	Chunks    int
	Sig       core.PlanSig
}

// ScheduleCache memoizes lowered classed schedules (the symmetry-aware
// pricing form) across sweep points and fabric tenants. Cached schedules are
// shared: callers must treat them as immutable and must never Release them.
type ScheduleCache struct {
	m memo[ScheduleKey, *collective.ClassSchedule]
}

// NewScheduleCache returns an empty cache.
func NewScheduleCache() *ScheduleCache {
	return &ScheduleCache{}
}

// Schedule returns the memoized schedule for key, building it on first use.
func (c *ScheduleCache) Schedule(key ScheduleKey, build func() (*collective.ClassSchedule, error)) (*collective.ClassSchedule, error) {
	return c.m.do(key, true, build)
}

// Stats returns cache hits and misses (= distinct keys built).
func (c *ScheduleCache) Stats() (hits, misses int64) {
	return c.m.stats()
}

// SimKey identifies one priced simulation: the schedule identity plus the
// complete substrate configuration. Both options structs are comparable
// value types (ElectricalOptions.Network must be nil — derived from the
// schedule — for the result to be cacheable; callers on the cached path
// guarantee this).
type SimKey struct {
	Sched      ScheduleKey
	Electrical bool
	OptOpts    runner.OpticalOptions
	ElecOpts   runner.ElectricalOptions
}

// SimCache memoizes substrate simulation results — the most expensive layer:
// one entry saves an entire RunOptical/RunElectrical replay. Results are
// shared; callers must not mutate the Result's slices.
type SimCache struct {
	m memo[SimKey, runner.Result]
}

// NewSimCache returns an empty cache.
func NewSimCache() *SimCache {
	return &SimCache{}
}

// Run returns the memoized result for key, simulating on first use.
func (c *SimCache) Run(key SimKey, run func() (runner.Result, error)) (runner.Result, error) {
	return c.m.do(key, true, run)
}

// Stats returns cache hits and misses (= distinct simulations executed).
func (c *SimCache) Stats() (hits, misses int64) {
	return c.m.stats()
}
