package exp

import (
	"sync"

	"wrht/internal/core"
)

// PlanKey identifies one Wrht plan: core.BuildPlan is a pure function of
// these fields, so equal keys always yield identical plans.
type PlanKey struct {
	N, W int
	Opts core.Options
}

type planEntry struct {
	once sync.Once
	plan *core.Plan
	err  error
}

// PlanCache memoizes core.BuildPlan across concurrent sweep workers. The map
// is mutex-guarded; each entry builds under its own sync.Once, so concurrent
// requests for the same key share a single BuildPlan call (and distinct keys
// build in parallel) and every caller receives the same *core.Plan. Plans are
// immutable after construction, so sharing one pointer across goroutines is
// safe. Build errors are memoized too: an infeasible key fails once, not once
// per point.
type PlanCache struct {
	mu      sync.Mutex
	entries map[PlanKey]*planEntry
	hits    int64
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: map[PlanKey]*planEntry{}}
}

// Plan returns the memoized plan for (n, w, opts), building it on first use.
func (c *PlanCache) Plan(n, w int, opts core.Options) (*core.Plan, error) {
	key := PlanKey{N: n, W: w, Opts: opts}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		e = &planEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.plan, e.err = core.BuildPlan(n, w, opts)
	})
	return e.plan, e.err
}

// Stats returns the number of cache hits and misses so far. Misses equal the
// number of distinct keys requested (= BuildPlan invocations issued through
// the cache); both are deterministic for a fixed request multiset, whatever
// the parallelism.
func (c *PlanCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, int64(len(c.entries))
}
