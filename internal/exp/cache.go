package exp

import (
	"sync"

	"wrht/internal/core"
)

// memo is a mutex+once memoization table: the map is mutex-guarded, each
// entry computes under its own sync.Once, so concurrent requests for the
// same key share a single computation (and distinct keys compute in
// parallel) while every caller receives the same value. Errors are memoized
// too. It is the shared machinery behind the three cache layers
// (plan → schedule → simulation).
type memo[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*memoEntry[V]
	hits    int64
	misses  int64
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
	// requested marks that a counted request has seen this entry. The first
	// counted request per key is a miss even when an uncounted fill (an
	// optimizer candidate) arrived earlier — that keeps the counters
	// deterministic whatever the scheduling of concurrent workers.
	requested bool
}

// do returns the memoized value for key, computing it with fn on first use.
// counted controls whether the request moves the hit/miss counters
// (internal requests — e.g. the plan optimizer's candidate builds — fill
// the table without inflating the caller-visible stats).
func (m *memo[K, V]) do(key K, counted bool, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = map[K]*memoEntry[V]{}
	}
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[V]{}
		m.entries[key] = e
	}
	if counted {
		if e.requested {
			m.hits++
		} else {
			e.requested = true
			m.misses++
		}
	}
	m.mu.Unlock()
	e.once.Do(func() {
		e.val, e.err = fn()
	})
	return e.val, e.err
}

// stats returns the counted hits and misses so far; both are deterministic
// for a fixed request multiset, whatever the parallelism.
func (m *memo[K, V]) stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// PlanKey identifies one Wrht plan: core.BuildPlan is a pure function of
// these fields, so equal keys always yield identical plans.
type PlanKey struct {
	N, W int
	Opts core.Options
}

// PlanCache memoizes core.BuildPlan across concurrent sweep workers. Plans
// are immutable after construction, so sharing one pointer across goroutines
// is safe; build errors are memoized too (an infeasible key fails once, not
// once per point).
//
// Automatic-group-size keys (Opts.M == 0) run the optimizer with every
// candidate built through the cache itself, so the candidates land under
// their explicit-m keys: a later request for the plan the optimizer chose —
// or any other explicit m the optimizer already evaluated — is a cache hit,
// not a rebuild. Candidate fills do not move the hit/miss counters; Stats
// reflects caller-visible requests only.
type PlanCache struct {
	m memo[PlanKey, *core.Plan]
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{}
}

// Plan returns the memoized plan for (n, w, opts), building it on first use.
func (c *PlanCache) Plan(n, w int, opts core.Options) (*core.Plan, error) {
	return c.plan(n, w, opts, true)
}

func (c *PlanCache) plan(n, w int, opts core.Options, counted bool) (*core.Plan, error) {
	key := PlanKey{N: n, W: w, Opts: opts}
	return c.m.do(key, counted, func() (*core.Plan, error) {
		if opts.M == 0 && n >= 2 && w >= 1 {
			return core.ChooseMWith(n, w, opts, func(n, w int, o core.Options) (*core.Plan, error) {
				return c.plan(n, w, o, false)
			})
		}
		return core.BuildPlan(n, w, opts)
	})
}

// Stats returns the number of cache hits and misses so far: a miss is the
// first Plan request for a key, a hit any repeat (the optimizer's internal
// candidate fills count as neither, though they do save the miss's build
// work); both are deterministic for a fixed request multiset, whatever the
// parallelism.
func (c *PlanCache) Stats() (hits, misses int64) {
	return c.m.stats()
}
