package serve

import (
	"sync"
	"time"
)

// Degrade tiers. The service degrades by cost, most expensive first, so
// sustained overload narrows the API instead of collapsing it: tier 1 stops
// accepting sweeps (unbounded grids), tier 2 also stops fleet
// co-simulations, and single-point pricing plus single-fabric pricing stay
// alive at every tier. Tier changes are driven by admission-queue pressure
// with hysteresis on both edges: a transient burst is the 429 shed path's
// job, so stepping a tier up requires pressure held at or above Hi for
// UpHold, and stepping back down requires pressure held at or below Lo for
// Hold — a sawtooth load flaps neither way.
const (
	tierNormal   = 0
	tierNoSweeps = 1
	tierNoFleet  = 2
)

type degradeConfig struct {
	// Hi is the pressure at or above which overload credit accrues.
	Hi float64
	// Lo is the pressure at or below which recovery credit accrues.
	Lo float64
	// UpHold is how long pressure must stay at or above Hi before one tier
	// step up.
	UpHold time.Duration
	// Hold is how long pressure must stay at or below Lo before one tier
	// step down.
	Hold time.Duration
}

func (c degradeConfig) withDefaults() degradeConfig {
	if c.Hi <= 0 {
		c.Hi = 0.75
	}
	if c.Lo <= 0 {
		c.Lo = 0.25
	}
	if c.Lo > c.Hi {
		c.Lo = c.Hi
	}
	if c.UpHold <= 0 {
		c.UpHold = 500 * time.Millisecond
	}
	if c.Hold <= 0 {
		c.Hold = 2 * time.Second
	}
	return c
}

// degrader tracks the current degrade tier from sampled queue pressure.
// now is injected so hysteresis is testable without sleeping.
type degrader struct {
	cfg degradeConfig
	now func() time.Time

	mu       sync.Mutex
	tier     int
	hiSince  time.Time // zero: pressure not currently in overload band
	lowSince time.Time // zero: pressure not currently in recovery band
}

func newDegrader(cfg degradeConfig, now func() time.Time) *degrader {
	if now == nil {
		now = time.Now
	}
	return &degrader{cfg: cfg.withDefaults(), now: now}
}

// observe folds one pressure sample (the max across admission queues, or
// 1.0 for a shed) into the tier state and returns the tier to enforce for
// the observing request.
func (d *degrader) observe(pressure float64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case pressure >= d.cfg.Hi:
		d.lowSince = time.Time{}
		t := d.now()
		if d.hiSince.IsZero() {
			d.hiSince = t
		} else if d.tier < tierNoFleet && t.Sub(d.hiSince) >= d.cfg.UpHold {
			d.tier++
			d.hiSince = t
		}
	case pressure <= d.cfg.Lo:
		d.hiSince = time.Time{}
		t := d.now()
		if d.lowSince.IsZero() {
			d.lowSince = t
		} else if d.tier > tierNormal && t.Sub(d.lowSince) >= d.cfg.Hold {
			d.tier--
			d.lowSince = t
		}
	default:
		// Between the bands: hold the current tier, reset both credits.
		d.hiSince = time.Time{}
		d.lowSince = time.Time{}
	}
	return d.tier
}

// current returns the tier without folding in a new sample.
func (d *degrader) current() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tier
}

// rejects reports whether the tier sheds the given class.
func (d *degrader) rejects(tier int, c Class) bool {
	switch c {
	case ClassSweep:
		return tier >= tierNoSweeps
	case ClassFleet:
		return tier >= tierNoFleet
	}
	return false
}
