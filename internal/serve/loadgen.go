package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"wrht/internal/obs"
)

// LoadSpec drives one load-generation run against a serve endpoint.
type LoadSpec struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Endpoint is the path to hit, e.g. "/v1/commtime".
	Endpoint string
	// Bodies are the JSON payloads, issued round-robin per worker. At
	// least one is required unless NewBody is set.
	Bodies [][]byte
	// NewBody, when set, generates the i-th request's payload and takes
	// precedence over Bodies. Generating a unique payload per request keeps
	// every request cold (the server's session caches make repeats
	// near-free), which is what a queue-saturation run needs.
	NewBody func(i int) []byte
	// Concurrency is the closed-loop worker count (default 1). Each worker
	// issues requests back to back, so offered load tracks service
	// capacity.
	Concurrency int
	// RatePerSec, when > 0, switches to open-loop: requests start on a
	// fixed schedule regardless of completions, which is what actually
	// overloads a server (closed loops self-throttle). In-flight requests
	// are capped at MaxInflight to keep the generator itself bounded.
	RatePerSec float64
	// MaxInflight bounds open-loop concurrency (default 1024).
	MaxInflight int
	// Duration bounds the run (default 2s); ctx cancellation stops early.
	Duration time.Duration
	// Client defaults to a dedicated http.Client with generous timeouts.
	Client *http.Client
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Endpoint    string        `json:"endpoint"`
	Mode        string        `json:"mode"` // "closed" or "open"
	Requests    int64         `json:"requests"`
	Errors      int64         `json:"errors"` // transport-level failures
	ByStatus    map[int]int64 `json:"by_status"`
	DurationSec float64       `json:"duration_sec"`
	QPS         float64       `json:"qps"` // completed requests per second
	// Latency quantiles over all completed requests, milliseconds.
	MeanMillis float64 `json:"mean_ms"`
	P50Millis  float64 `json:"p50_ms"`
	P90Millis  float64 `json:"p90_ms"`
	P99Millis  float64 `json:"p99_ms"`
	MaxMillis  float64 `json:"max_ms"`
}

// OK returns the number of 200 responses.
func (r LoadReport) OK() int64 { return r.ByStatus[http.StatusOK] }

// Shed returns the number of 429 responses.
func (r LoadReport) Shed() int64 { return r.ByStatus[http.StatusTooManyRequests] }

// loadCounters is the shared accumulation state of one run.
type loadCounters struct {
	mu       sync.Mutex
	byStatus map[int]int64
	errors   int64
	requests atomic.Int64
	hist     *obs.Histogram
}

func (c *loadCounters) record(status int, err error, elapsed time.Duration) {
	c.requests.Add(1)
	c.hist.Observe(elapsed.Seconds())
	c.mu.Lock()
	if err != nil {
		c.errors++
	} else {
		c.byStatus[status]++
	}
	c.mu.Unlock()
}

// RunLoad executes the spec and reports latency quantiles, QPS, and the
// status breakdown.
func RunLoad(ctx context.Context, spec LoadSpec) (LoadReport, error) {
	if len(spec.Bodies) == 0 && spec.NewBody == nil {
		return LoadReport{}, fmt.Errorf("loadgen: no request bodies")
	}
	body := spec.NewBody
	if body == nil {
		body = func(i int) []byte { return spec.Bodies[i%len(spec.Bodies)] }
	}
	if spec.Concurrency <= 0 {
		spec.Concurrency = 1
	}
	if spec.Duration <= 0 {
		spec.Duration = 2 * time.Second
	}
	if spec.MaxInflight <= 0 {
		spec.MaxInflight = 1024
	}
	client := spec.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	url := spec.BaseURL + spec.Endpoint
	ctr := &loadCounters{byStatus: make(map[int]int64), hist: obs.NewHistogram()}

	runCtx, cancel := context.WithTimeout(ctx, spec.Duration)
	defer cancel()
	t0 := time.Now()
	mode := "closed"
	if spec.RatePerSec > 0 {
		mode = "open"
		runOpenLoop(runCtx, spec, body, client, url, ctr)
	} else {
		runClosedLoop(runCtx, spec, body, client, url, ctr)
	}
	elapsed := time.Since(t0)

	rep := LoadReport{
		Endpoint:    spec.Endpoint,
		Mode:        mode,
		Requests:    ctr.requests.Load(),
		Errors:      ctr.errors,
		ByStatus:    ctr.byStatus,
		DurationSec: elapsed.Seconds(),
	}
	if rep.DurationSec > 0 {
		rep.QPS = float64(rep.Requests) / rep.DurationSec
	}
	st := ctr.hist.Stat("lat")
	rep.MeanMillis = st.Mean * 1e3
	rep.P50Millis = st.P50 * 1e3
	rep.P90Millis = st.P90 * 1e3
	rep.P99Millis = st.P99 * 1e3
	rep.MaxMillis = st.Max * 1e3
	return rep, nil
}

func issue(client *http.Client, url string, body []byte, ctr *loadCounters) {
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	status := 0
	if err == nil {
		status = resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	ctr.record(status, err, time.Since(t0))
}

func runClosedLoop(ctx context.Context, spec LoadSpec, body func(int) []byte, client *http.Client, url string, ctr *loadCounters) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < spec.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				issue(client, url, body(int(next.Add(1)-1)), ctr)
			}
		}()
	}
	wg.Wait()
}

func runOpenLoop(ctx context.Context, spec LoadSpec, body func(int) []byte, client *http.Client, url string, ctr *loadCounters) {
	interval := time.Duration(float64(time.Second) / spec.RatePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, spec.MaxInflight)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var wg sync.WaitGroup
	i := 0
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-ticker.C:
			select {
			case sem <- struct{}{}:
			default:
				continue // generator saturated: drop the tick, stay bounded
			}
			b := body(i)
			i++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				issue(client, url, b, ctr)
			}()
		}
	}
}
