package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"

	"wrht"
)

// Request payload limits. The service answers untrusted JSON, so every axis
// that scales simulation cost is bounded up front; oversized requests fail
// 400 before touching an engine. The bounds are generous against the
// paper's evaluation range (128–1024 nodes) while keeping the worst
// admissible request finite.
const (
	maxNodes        = 4096
	maxWavelengths  = 4096
	maxBytes        = int64(1) << 40 // 1 TiB buffer
	maxFabricJobs   = 256
	maxFleetFabrics = 64
	maxFleetShapes  = 64
	maxFleetJobs    = 20000
	maxSweepPoints  = 4096
	maxIterations   = 10000
)

// testHook, when non-nil, runs inside the coalesced computation (holding the
// caller's admission slot) before the engines are invoked. Tests use it to
// block workers, burn deadlines, and inject panics to prove the overload and
// isolation contracts; production leaves it nil.
var testHook func(endpoint, key string)

// CommTimeRequest prices one all-reduce (POST /v1/commtime).
type CommTimeRequest struct {
	// Nodes is the worker count (required, 2..4096).
	Nodes int
	// Wavelengths overrides the default WDM budget when > 0.
	Wavelengths int
	// Algorithm defaults to "wrht".
	Algorithm wrht.Algorithm
	// Model names a catalog network; when set it overrides Bytes.
	Model string
	// Bytes is the buffer size when Model is empty.
	Bytes int64
	// DeadlineMillis caps this request's latency budget (0: class default).
	DeadlineMillis int64
}

// CommTimeResponse is the success body of /v1/commtime.
type CommTimeResponse struct {
	Result wrht.Result
	// Coalesced reports whether this response rode another in-flight
	// identical request.
	Coalesced bool
}

// FabricRequest co-simulates one tenant mix (POST /v1/fabric).
type FabricRequest struct {
	Nodes          int
	Wavelengths    int
	Jobs           []wrht.JobSpec
	Policy         wrht.FabricPolicy
	Faults         wrht.FaultPlan
	DeadlineMillis int64
}

// FabricResponse is the success body of /v1/fabric.
type FabricResponse struct {
	Result    wrht.FabricResult
	Coalesced bool
}

// FleetRequest co-simulates a multi-fabric fleet (POST /v1/fleet).
type FleetRequest struct {
	// Nodes seeds the base pricing config (default: the largest fabric's
	// ring size).
	Nodes          int
	Fabrics        []wrht.FleetFabricSpec
	Shapes         []wrht.FleetShape
	Jobs           []wrht.FleetJob
	Options        wrht.FleetOptions
	DeadlineMillis int64
}

// FleetResponse is the success body of /v1/fleet.
type FleetResponse struct {
	Result    wrht.FleetResult
	Coalesced bool
}

// SweepRequest prices a full grid (POST /v1/sweep).
type SweepRequest struct {
	Spec           wrht.SweepSpec
	DeadlineMillis int64
}

// SweepResponse is the success body of /v1/sweep.
type SweepResponse struct {
	Result    *wrht.SweepResult
	Coalesced bool
}

// badRequestError marks a validation failure (HTTP 400).
type badRequestError struct{ msg string }

func (e badRequestError) Error() string { return e.msg }

func badf(format string, args ...any) error {
	return badRequestError{msg: fmt.Sprintf(format, args...)}
}

// resolveModelBytes maps a catalog model name to its gradient byte size.
func resolveModelBytes(name string) (int64, error) {
	for _, m := range wrht.Models() {
		if m.Name == name {
			return m.Bytes, nil
		}
	}
	return 0, badf("unknown model %q", name)
}

// buildConfig assembles the pricing config shared by the point and fabric
// endpoints from the request's (nodes, wavelengths) pair.
func buildConfig(nodes, wavelengths int) (wrht.Config, error) {
	if nodes < 2 || nodes > maxNodes {
		return wrht.Config{}, badf("nodes %d out of range [2, %d]", nodes, maxNodes)
	}
	if wavelengths < 0 || wavelengths > maxWavelengths {
		return wrht.Config{}, badf("wavelengths %d out of range [0, %d]", wavelengths, maxWavelengths)
	}
	cfg := wrht.DefaultConfig(nodes)
	if wavelengths > 0 {
		cfg.Optical.Wavelengths = wavelengths
	}
	return cfg, nil
}

// normalize validates the request and fills defaults so that equivalent
// requests share one canonical form (and therefore one coalescing key).
func (r *CommTimeRequest) normalize() error {
	if r.Algorithm == "" {
		r.Algorithm = wrht.AlgWrht
	}
	if r.Model != "" {
		b, err := resolveModelBytes(r.Model)
		if err != nil {
			return err
		}
		r.Bytes = b
		r.Model = ""
	}
	if r.Bytes <= 0 || r.Bytes > maxBytes {
		return badf("bytes %d out of range (0, %d]", r.Bytes, maxBytes)
	}
	if _, err := buildConfig(r.Nodes, r.Wavelengths); err != nil {
		return err
	}
	return nil
}

func (r *FabricRequest) normalize() error {
	if _, err := buildConfig(r.Nodes, r.Wavelengths); err != nil {
		return err
	}
	if len(r.Jobs) == 0 {
		return badf("no jobs")
	}
	if len(r.Jobs) > maxFabricJobs {
		return badf("%d jobs exceeds limit %d", len(r.Jobs), maxFabricJobs)
	}
	for i := range r.Jobs {
		if r.Jobs[i].Iterations > maxIterations {
			return badf("job %d: iterations %d exceeds limit %d", i, r.Jobs[i].Iterations, maxIterations)
		}
		if err := r.Jobs[i].Validate(); err != nil {
			return badRequestError{msg: err.Error()}
		}
	}
	return nil
}

func (r *FleetRequest) normalize() error {
	if len(r.Fabrics) == 0 || len(r.Fabrics) > maxFleetFabrics {
		return badf("fabric count %d out of range [1, %d]", len(r.Fabrics), maxFleetFabrics)
	}
	if len(r.Shapes) == 0 || len(r.Shapes) > maxFleetShapes {
		return badf("shape count %d out of range [1, %d]", len(r.Shapes), maxFleetShapes)
	}
	if len(r.Jobs) > maxFleetJobs {
		return badf("%d jobs exceeds limit %d", len(r.Jobs), maxFleetJobs)
	}
	for i := range r.Jobs {
		if r.Jobs[i].Iterations > maxIterations {
			return badf("job %d: iterations %d exceeds limit %d", i, r.Jobs[i].Iterations, maxIterations)
		}
	}
	if r.Nodes == 0 {
		for _, f := range r.Fabrics {
			if f.Nodes > r.Nodes {
				r.Nodes = f.Nodes
			}
		}
	}
	if r.Nodes < 2 || r.Nodes > maxNodes {
		return badf("nodes %d out of range [2, %d]", r.Nodes, maxNodes)
	}
	for _, f := range r.Fabrics {
		if f.Nodes > maxNodes || f.Wavelengths > maxWavelengths {
			return badf("fabric %q size out of range", f.Name)
		}
	}
	return nil
}

// sweepPoints estimates the grid size of a spec: the product of every
// non-empty axis, matching the sweep engine's cross-product semantics
// closely enough to bound cost (the engine may reject combinations the
// estimate accepts, never the reverse).
func sweepPoints(spec wrht.SweepSpec) int {
	n := 1
	mul := func(k int) {
		if k > 0 && n <= maxSweepPoints {
			n *= k
		}
	}
	mul(len(spec.Nodes))
	mul(len(spec.Wavelengths))
	mul(len(spec.Models))
	mul(len(spec.MessageBytes))
	mul(len(spec.Algorithms))
	mul(len(spec.GroupSizes))
	mul(len(spec.GreedyA2A))
	mul(len(spec.PipelineChunks))
	mul(len(spec.FabricMixes))
	mul(len(spec.FabricPolicies))
	mul(len(spec.Racks))
	mul(len(spec.NodesPerRack))
	return n
}

func (r *SweepRequest) normalize() error {
	if n := sweepPoints(r.Spec); n > maxSweepPoints {
		return badf("sweep grid has %d+ points, limit %d", n, maxSweepPoints)
	}
	for _, n := range r.Spec.Nodes {
		if n > maxNodes {
			return badf("nodes %d out of range [2, %d]", n, maxNodes)
		}
	}
	for _, w := range r.Spec.Wavelengths {
		if w > maxWavelengths {
			return badf("wavelengths %d exceeds limit %d", w, maxWavelengths)
		}
	}
	for _, b := range r.Spec.MessageBytes {
		if b <= 0 || b > maxBytes {
			return badf("bytes %d out of range (0, %d]", b, maxBytes)
		}
	}
	if r.Spec.Base.Nodes > maxNodes {
		return badf("base nodes %d exceeds limit %d", r.Spec.Base.Nodes, maxNodes)
	}
	for _, mix := range r.Spec.FabricMixes {
		if len(mix.Jobs) > maxFabricJobs {
			return badf("mix %q: %d jobs exceeds limit %d", mix.Name, len(mix.Jobs), maxFabricJobs)
		}
	}
	// The server owns the worker budget; client parallelism hints are
	// clamped so one sweep cannot monopolize the host.
	if p := r.Spec.Parallelism; p <= 0 || p > runtime.GOMAXPROCS(0) {
		r.Spec.Parallelism = runtime.GOMAXPROCS(0)
	}
	return nil
}

// key returns the canonical coalescing key: endpoint + the normalized
// request's full field dump. Normalization runs first, so requests that
// differ only in defaulted fields share a key.
func requestKey(endpoint string, normalized any) string {
	return fmt.Sprintf("%s|%+v", endpoint, normalized)
}

// shardOf maps a key onto one of n session shards.
func shardOf(key string, n int) int {
	h := fnv.New32a()
	fmt.Fprint(h, key)
	return int(h.Sum32() % uint32(n))
}

// run executes the endpoint's pricing against a session shard. DeadlineMillis
// is excluded from the key (two identical queries with different budgets
// still coalesce), so runners read everything else from the request.

func runCommTime(ctx context.Context, ss *wrht.SweepSession, r CommTimeRequest) (any, error) {
	cfg, err := buildConfig(r.Nodes, r.Wavelengths)
	if err != nil {
		return nil, err
	}
	res, err := ss.CommunicationTimeContext(ctx, cfg, r.Algorithm, r.Bytes)
	if err != nil {
		return nil, err
	}
	return CommTimeResponse{Result: res}, nil
}

func runFabric(ctx context.Context, ss *wrht.SweepSession, r FabricRequest) (any, error) {
	cfg, err := buildConfig(r.Nodes, r.Wavelengths)
	if err != nil {
		return nil, err
	}
	res, err := ss.SimulateFabricContext(ctx, cfg, r.Jobs, r.Policy, r.Faults)
	if err != nil {
		return nil, err
	}
	return FabricResponse{Result: res}, nil
}

func runFleet(ctx context.Context, ss *wrht.SweepSession, r FleetRequest) (any, error) {
	cfg, err := buildConfig(r.Nodes, 0)
	if err != nil {
		return nil, err
	}
	res, err := ss.SimulateFleetContext(ctx, cfg, r.Fabrics, r.Shapes, r.Jobs, r.Options)
	if err != nil {
		return nil, err
	}
	return FleetResponse{Result: res}, nil
}

func runSweep(ctx context.Context, ss *wrht.SweepSession, r SweepRequest) (any, error) {
	res, err := ss.RunSweepContext(ctx, r.Spec)
	if err != nil {
		return nil, err
	}
	// A sweep canceled mid-grid fills remaining cells with the context
	// error rather than failing the call; the service reports that as a
	// deadline, not a partial 200.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return SweepResponse{Result: res}, nil
}
