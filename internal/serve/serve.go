// Package serve is the overload-safe pricing service: an HTTP/JSON front end
// over a sharded pool of warm wrht.SweepSession caches, engineered so that
// sustained overload degrades the API surface instead of the process.
//
// The request path is: drain gate → strict JSON decode (bounded body) →
// normalize/validate (400) → degrade tier check (503, expensive classes
// first) → bounded admission (429 on a full queue in microseconds, 504 on a
// deadline spent queueing) → singleflight coalescing keyed by the canonical
// request (identical concurrent queries run one simulation) → context-bound
// pricing on a session shard (engines poll cancellation at event
// boundaries) → JSON response. Panics in the engines are confined to the
// request: the key is quarantined, the caller gets 500, and the server
// keeps serving. SIGTERM (via Drain) stops admission and completes every
// in-flight request with zero drops.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wrht"
	"wrht/internal/obs"
)

// ClassLimits bounds one admission class.
type ClassLimits struct {
	// Workers is the class's concurrent execution limit.
	Workers int
	// Queue is how many requests may wait beyond the workers before the
	// class sheds with 429.
	Queue int
	// Deadline is the default per-request latency budget; requests may ask
	// for less (never more than Config.MaxDeadline).
	Deadline time.Duration
}

func (l ClassLimits) withDefaults(workers, queue int, d time.Duration) ClassLimits {
	if l.Workers <= 0 {
		l.Workers = workers
	}
	if l.Queue <= 0 {
		l.Queue = queue
	}
	if l.Deadline <= 0 {
		l.Deadline = d
	}
	return l
}

// Config parameterizes a Server. The zero value serves with sane defaults.
type Config struct {
	// Shards is the number of warm SweepSession caches; requests map to
	// shards by request-key hash, so identical queries always hit the same
	// warm cache while distinct heavy queries spread their cache footprint.
	Shards int
	// Point, Fabric, Fleet and Sweep bound the four admission classes.
	Point, Fabric, Fleet, Sweep ClassLimits
	// MaxDeadline caps any client-requested deadline.
	MaxDeadline time.Duration
	// MaxBodyBytes bounds request bodies (strict JSON decode).
	MaxBodyBytes int64
	// DegradeHi/DegradeLo/DegradeUpHold/DegradeHold tune the degrade
	// hysteresis: queue pressure >= Hi sustained for UpHold steps the tier
	// up (transient bursts stay on the 429 shed path), pressure <= Lo
	// sustained for Hold steps it back down.
	DegradeHi, DegradeLo       float64
	DegradeUpHold, DegradeHold time.Duration
	// Now is the clock (tests inject a fake one for hysteresis).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	procs := runtime.GOMAXPROCS(0)
	if c.Shards <= 0 {
		c.Shards = 4
	}
	c.Point = c.Point.withDefaults(procs, 256, 2*time.Second)
	c.Fabric = c.Fabric.withDefaults(max(2, procs/2), 64, 15*time.Second)
	c.Fleet = c.Fleet.withDefaults(2, 16, 30*time.Second)
	c.Sweep = c.Sweep.withDefaults(1, 4, 60*time.Second)
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the pricing service. Construct with New, mount Handler, stop
// with Drain.
type Server struct {
	cfg     Config
	shards  []*wrht.SweepSession
	admits  [numClasses]*admitter
	limits  [numClasses]ClassLimits
	deg     *degrader
	flights *flightGroup
	rec     *obs.Recorder
	mux     *http.ServeMux
	start   time.Time

	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup
	inflight atomic.Int64
}

// New builds a Server with warm (empty) session shards.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		flights: newFlightGroup(),
		rec:     obs.New(),
		mux:     http.NewServeMux(),
		start:   cfg.Now(),
	}
	s.shards = make([]*wrht.SweepSession, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = wrht.NewSweepSession()
	}
	s.limits = [numClasses]ClassLimits{
		ClassPoint:  cfg.Point,
		ClassFabric: cfg.Fabric,
		ClassFleet:  cfg.Fleet,
		ClassSweep:  cfg.Sweep,
	}
	for c := Class(0); c < numClasses; c++ {
		s.admits[c] = newAdmitter(s.limits[c].Workers, s.limits[c].Queue)
	}
	s.deg = newDegrader(degradeConfig{
		Hi: cfg.DegradeHi, Lo: cfg.DegradeLo,
		UpHold: cfg.DegradeUpHold, Hold: cfg.DegradeHold,
	}, cfg.Now)

	register(s, "/v1/commtime", ClassPoint,
		(*CommTimeRequest).normalize,
		func(r *CommTimeRequest) int64 { return r.DeadlineMillis },
		runCommTime)
	register(s, "/v1/fabric", ClassFabric,
		(*FabricRequest).normalize,
		func(r *FabricRequest) int64 { return r.DeadlineMillis },
		runFabric)
	register(s, "/v1/fleet", ClassFleet,
		(*FleetRequest).normalize,
		func(r *FleetRequest) int64 { return r.DeadlineMillis },
		runFleet)
	register(s, "/v1/sweep", ClassSweep,
		(*SweepRequest).normalize,
		func(r *SweepRequest) int64 { return r.DeadlineMillis },
		runSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metricsz", s.handleMetricsz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// enter registers one request with the drain gate; false means the server
// is draining and the request must be turned away.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.wg.Add(1)
	s.inflight.Add(1)
	return true
}

func (s *Server) leave() {
	s.inflight.Add(-1)
	s.wg.Done()
}

// Drain stops admitting new requests and waits for every in-flight request
// to complete. It returns the number of requests that were in flight when
// the drain began and nil once all of them finished; a canceled context
// abandons the wait (the requests keep running) and returns its error.
// Drain is idempotent.
func (s *Server) Drain(ctx context.Context) (int, error) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	n := int(s.inflight.Load())
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return n, nil
	case <-ctx.Done():
		return n, ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Status: status})
}

// register mounts one pricing endpoint with the full overload pipeline.
func register[T any](s *Server, path string, class Class,
	norm func(*T) error,
	deadline func(*T) int64,
	run func(context.Context, *wrht.SweepSession, T) (any, error)) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		serveOne(s, path, class, norm, deadline, run, w, r)
	})
}

func serveOne[T any](s *Server, path string, class Class,
	norm func(*T) error,
	deadline func(*T) int64,
	run func(context.Context, *wrht.SweepSession, T) (any, error),
	w http.ResponseWriter, r *http.Request) {
	t0 := s.cfg.Now()
	if !s.enter() {
		w.Header().Set("Connection", "close")
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.leave()
	status := serveAdmitted(s, path, class, norm, deadline, run, w, r)
	s.rec.Add(fmt.Sprintf("serve.%s.%d", class, status), 1)
	s.rec.Hist("serve.latency." + class.String()).Observe(s.cfg.Now().Sub(t0).Seconds())
}

// serveAdmitted runs the post-drain-gate pipeline and returns the HTTP
// status it wrote.
func serveAdmitted[T any](s *Server, path string, class Class,
	norm func(*T) error,
	deadline func(*T) int64,
	run func(context.Context, *wrht.SweepSession, T) (any, error),
	w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return http.StatusMethodNotAllowed
	}
	var req T
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return http.StatusBadRequest
	}
	if err := norm(&req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return http.StatusBadRequest
	}

	// Degrade check: fold the worst queue pressure into the tier and shed
	// the expensive classes while degraded.
	tier := s.deg.observe(s.maxPressure())
	if s.deg.rejects(tier, class) {
		s.rec.Add("serve.degraded."+class.String(), 1)
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusServiceUnavailable, "degraded (tier %d): %s requests temporarily rejected", tier, class)
		return http.StatusServiceUnavailable
	}

	// Deadline: class default, tightened by the client, capped globally.
	budget := s.limits[class].Deadline
	if ms := deadline(&req); ms > 0 {
		if d := time.Duration(ms) * time.Millisecond; d < budget {
			budget = d
		}
	}
	if budget > s.cfg.MaxDeadline {
		budget = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	// Bounded admission.
	release, outcome := s.admits[class].admit(ctx)
	switch outcome {
	case shedQueueFull:
		s.rec.Add("serve.shed."+class.String(), 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%s queue full", class)
		return http.StatusTooManyRequests
	case shedDeadline:
		s.rec.Add("serve.queue_timeout."+class.String(), 1)
		writeError(w, http.StatusGatewayTimeout, "deadline expired while queued for %s", class)
		return http.StatusGatewayTimeout
	}
	defer release()

	// Coalesced, panic-isolated execution on the key's session shard.
	key := requestKey(path, req)
	shard := s.shards[shardOf(key, len(s.shards))]
	val, err, shared := s.flights.do(key, func() (any, error) {
		if testHook != nil {
			testHook(path, key)
		}
		return run(ctx, shard, req)
	})
	if shared {
		s.rec.Add("serve.coalesced."+class.String(), 1)
	}
	if err != nil {
		return s.writeRunError(w, class, err)
	}
	writeJSON(w, http.StatusOK, withCoalesced(val, shared))
	return http.StatusOK
}

// writeRunError maps a pricing error to its HTTP status.
func (s *Server) writeRunError(w http.ResponseWriter, class Class, err error) int {
	switch {
	case errors.Is(err, errQuarantined), errors.Is(err, errPanicked):
		s.rec.Add("serve.panic."+class.String(), 1)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.rec.Add("serve.deadline."+class.String(), 1)
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded during pricing")
		return http.StatusGatewayTimeout
	default:
		// Everything else is a payload the engines rejected.
		writeError(w, http.StatusBadRequest, "%v", err)
		return http.StatusBadRequest
	}
}

// withCoalesced stamps the shared flag into the typed response value.
func withCoalesced(val any, shared bool) any {
	switch v := val.(type) {
	case CommTimeResponse:
		v.Coalesced = shared
		return v
	case FabricResponse:
		v.Coalesced = shared
		return v
	case FleetResponse:
		v.Coalesced = shared
		return v
	case SweepResponse:
		v.Coalesced = shared
		return v
	}
	return val
}

// maxPressure is the worst admission-queue occupancy across classes.
func (s *Server) maxPressure() float64 {
	p := 0.0
	for c := Class(0); c < numClasses; c++ {
		if q := s.admits[c].pressure(); q > p {
			p = q
		}
	}
	return p
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "tier": s.deg.current()})
}

// MetricsBody is the /metricsz JSON document: server counters and latency
// histograms from the flight recorder, plus per-shard cache effectiveness.
type MetricsBody struct {
	UptimeSec   float64           `json:"uptime_sec"`
	Draining    bool              `json:"draining"`
	Tier        int               `json:"tier"`
	Inflight    int64             `json:"inflight"`
	Quarantined int               `json:"quarantined"`
	Counters    map[string]int64  `json:"counters"`
	Latencies   []obs.HistStat    `json:"latencies"`
	Shards      []wrht.CacheStats `json:"shards"`
}

// Metrics assembles the /metricsz document.
func (s *Server) Metrics() MetricsBody {
	snap := s.rec.Snapshot()
	body := MetricsBody{
		UptimeSec:   s.cfg.Now().Sub(s.start).Seconds(),
		Draining:    s.Draining(),
		Tier:        s.deg.current(),
		Inflight:    s.inflight.Load(),
		Quarantined: s.flights.quarantined(),
		Counters:    make(map[string]int64, len(snap.Counters)),
		Latencies:   snap.Hists,
	}
	for _, c := range snap.Counters {
		body.Counters[c.Name] = int64(c.Value)
	}
	for _, ss := range s.shards {
		body.Shards = append(body.Shards, ss.Stats())
	}
	return body
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
