package serve

import (
	"context"
	"sync/atomic"
)

// Class partitions the service's endpoints by cost so overload control can
// treat them differently: single-point pricing is microseconds warm, fabric
// and fleet co-simulations are milliseconds to seconds, and sweeps are
// unbounded grids. Each class gets its own worker pool and bounded queue, so
// a flood of expensive requests can never starve the cheap class — the
// degradation contract (keep single-point pricing alive) falls out of the
// partitioning rather than being bolted on.
type Class int

const (
	ClassPoint  Class = iota // /v1/commtime
	ClassFabric              // /v1/fabric
	ClassFleet               // /v1/fleet
	ClassSweep               // /v1/sweep
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassPoint:
		return "point"
	case ClassFabric:
		return "fabric"
	case ClassFleet:
		return "fleet"
	case ClassSweep:
		return "sweep"
	}
	return "unknown"
}

// admitOutcome is the admission decision for one request.
type admitOutcome int

const (
	admitted admitOutcome = iota
	shedQueueFull
	shedDeadline
)

// admitter is one class's bounded admission gate: a fixed worker pool
// (buffered channel of slots) fronted by a bounded in-system count, so at
// most workers+queue requests occupy the class at once. The shed decision —
// system full — is a single atomic add-and-compare with no locks and no
// waiting, so rejected requests turn around in microseconds regardless of
// how congested the workers are; that is the property the 429 fast-path
// contract tests pin down.
type admitter struct {
	slots    chan struct{} // capacity = worker count
	inSystem atomic.Int64  // admitted and not yet released
	workers  int64
	capacity int64 // workers + queue depth
}

func newAdmitter(workers, queue int) *admitter {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admitter{
		slots:    make(chan struct{}, workers),
		workers:  int64(workers),
		capacity: int64(workers + queue),
	}
}

// admit tries to enter the class. On success it returns admitted and a
// release function the caller must invoke when the work finishes. A full
// system sheds immediately (shedQueueFull → 429); a context that expires
// while queued sheds without ever occupying a worker (shedDeadline → 504).
func (a *admitter) admit(ctx context.Context) (func(), admitOutcome) {
	if a.inSystem.Add(1) > a.capacity {
		a.inSystem.Add(-1)
		return nil, shedQueueFull
	}
	select {
	case a.slots <- struct{}{}:
		return func() {
			<-a.slots
			a.inSystem.Add(-1)
		}, admitted
	case <-ctx.Done():
		a.inSystem.Add(-1)
		return nil, shedDeadline
	}
}

// pressure is the wait-queue occupancy fraction in [0, 1]: requests beyond
// the worker pool against the configured queue depth. The degrader samples
// this on every arrival.
func (a *admitter) pressure() float64 {
	queued := a.inSystem.Load() - a.workers
	depth := a.capacity - a.workers
	if queued <= 0 {
		return 0
	}
	if depth == 0 || queued >= depth {
		return 1
	}
	return float64(queued) / float64(depth)
}
