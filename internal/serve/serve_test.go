package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// postJSON issues one request and returns (status, decoded body map).
func postJSON(t *testing.T, url string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, m
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestCommTimeBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, m := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 16, "Algorithm": "wrht", "Bytes": 1048576}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, m)
	}
	res := m["Result"].(map[string]any)
	if secs := res["Seconds"].(float64); secs <= 0 {
		t.Fatalf("Seconds = %v", secs)
	}

	// Unknown fields are rejected (strict decode).
	if status, _ := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 16, "Bytes": 1024, "Bogus": 1}`); status != http.StatusBadRequest {
		t.Fatalf("unknown field: status = %d", status)
	}
	// Engine-level validation surfaces as 400.
	if status, _ := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 16, "Algorithm": "no-such-alg", "Bytes": 1024}`); status != http.StatusBadRequest {
		t.Fatalf("bad algorithm: status = %d", status)
	}
	// Payload limits fail fast.
	if status, _ := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 999999, "Bytes": 1024}`); status != http.StatusBadRequest {
		t.Fatalf("oversized nodes: status = %d", status)
	}
	// Model resolution.
	if status, _ := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 16, "Model": "ResNet50"}`); status != http.StatusOK {
		t.Fatalf("model request: status = %d", status)
	}
}

// TestShedFastWhenQueueFull pins the 429 fast path: with the class's single
// worker blocked and its queue full, excess requests are shed immediately —
// never behind the blocked worker.
func TestShedFastWhenQueueFull(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 16)
	testHook = func(endpoint, key string) {
		if endpoint == "/v1/commtime" {
			entered <- struct{}{}
			<-block
		}
	}
	defer func() { testHook = nil }()

	_, ts := newTestServer(t, Config{
		Point: ClassLimits{Workers: 1, Queue: 1, Deadline: time.Minute},
	})

	results := make(chan int, 8)
	// Distinct bodies so requests do not coalesce onto the blocked flight.
	issue := func(i int) {
		status, _ := postJSON(t, ts.URL+"/v1/commtime",
			fmt.Sprintf(`{"Nodes": 16, "Bytes": %d}`, 1024+i))
		results <- status
	}
	go issue(0) // occupies the worker (blocked in hook)
	<-entered
	go issue(1) // waits in the queue
	// Give the queued request time to enter admission.
	time.Sleep(50 * time.Millisecond)

	// System full (1 running + 1 queued): these must shed fast.
	for i := 2; i < 6; i++ {
		t0 := time.Now()
		status, _ := postJSON(t, ts.URL+"/v1/commtime",
			fmt.Sprintf(`{"Nodes": 16, "Bytes": %d}`, 1024+i))
		elapsed := time.Since(t0)
		if status != http.StatusTooManyRequests {
			t.Errorf("request %d: status = %d, want 429", i, status)
		}
		if elapsed > 500*time.Millisecond {
			t.Errorf("request %d: shed took %v, want immediate", i, elapsed)
		}
	}
	close(block)
	if s := <-results; s != http.StatusOK {
		t.Fatalf("blocked request finished %d", s)
	}
	if s := <-results; s != http.StatusOK {
		t.Fatalf("queued request finished %d", s)
	}
}

// TestCoalesce pins the dedup contract: M identical concurrent queries run
// exactly one simulation (verified via the shard's cache counters) and the
// followers are marked Coalesced.
func TestCoalesce(t *testing.T) {
	const m = 8
	block := make(chan struct{})
	var once sync.Once
	arrived := make(chan struct{})
	testHook = func(endpoint, key string) {
		// Only the leader runs the hook; block it until followers pile on.
		once.Do(func() { close(arrived) })
		<-block
	}
	defer func() { testHook = nil }()

	srv, ts := newTestServer(t, Config{
		Point: ClassLimits{Workers: m, Queue: m, Deadline: time.Minute},
	})

	var wg sync.WaitGroup
	statuses := make([]int, m)
	coalesced := make([]bool, m)
	body := `{"Nodes": 16, "Algorithm": "wrht", "Bytes": 1048576}`
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, resp := postJSON(t, ts.URL+"/v1/commtime", body)
			statuses[i] = status
			if c, ok := resp["Coalesced"].(bool); ok {
				coalesced[i] = c
			}
		}(i)
	}
	<-arrived
	time.Sleep(100 * time.Millisecond) // let followers join the flight
	close(block)
	wg.Wait()

	nCoalesced := 0
	for i := 0; i < m; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if coalesced[i] {
			nCoalesced++
		}
	}
	if nCoalesced == 0 {
		t.Fatalf("no request reported Coalesced among %d identical concurrent queries", m)
	}
	var runs int64
	for _, st := range srv.Metrics().Shards {
		runs += st.SimulationRuns
	}
	if runs != 1 {
		t.Fatalf("SimulationRuns = %d across shards, want exactly 1", runs)
	}
}

// TestPanicIsolation pins the containment contract: a panicking request
// returns 500, its key is quarantined, and the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	testHook = func(endpoint, key string) {
		panic("injected engine panic")
	}
	srv, ts := newTestServer(t, Config{})
	body := `{"Nodes": 16, "Bytes": 2048}`
	status, m := postJSON(t, ts.URL+"/v1/commtime", body)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: status = %d, body %v", status, m)
	}
	testHook = nil

	// Same key: quarantined, still 500, without re-running the engine.
	status, m = postJSON(t, ts.URL+"/v1/commtime", body)
	if status != http.StatusInternalServerError {
		t.Fatalf("quarantined key: status = %d", status)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "quarantined") {
		t.Fatalf("quarantined key error = %q", msg)
	}
	if q := srv.Metrics().Quarantined; q != 1 {
		t.Fatalf("quarantined = %d", q)
	}

	// Different request: the server is alive and well.
	if status, _ := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 16, "Bytes": 4096}`); status != http.StatusOK {
		t.Fatalf("post-panic request: status = %d", status)
	}
}

// TestDeadline pins the 504 contract for both queue-expired and
// mid-pricing-expired requests.
func TestDeadline(t *testing.T) {
	testHook = func(endpoint, key string) {
		time.Sleep(100 * time.Millisecond) // burn well past the 10ms budget
	}
	defer func() { testHook = nil }()
	_, ts := newTestServer(t, Config{})
	status, m := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 16, "Bytes": 8192, "DeadlineMillis": 10}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %v", status, m)
	}
}

// TestDegradeShedsExpensiveClassesFirst drives the sweep queue into
// saturation and checks the tiered contract: sweeps degrade, single-point
// pricing stays alive.
func TestDegradeShedsExpensiveClassesFirst(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 64)
	testHook = func(endpoint, key string) {
		if endpoint == "/v1/sweep" {
			entered <- struct{}{}
			<-block
		}
	}
	defer func() { testHook = nil }()

	srv, ts := newTestServer(t, Config{
		Sweep:         ClassLimits{Workers: 1, Queue: 2, Deadline: time.Minute},
		DegradeUpHold: time.Millisecond,
	})

	sweepBody := func(i int) string {
		return fmt.Sprintf(`{"Spec": {"Nodes": [8], "MessageBytes": [%d]}}`, 1024+i)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make([]int, 12)
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, _ := postJSON(t, ts.URL+"/v1/sweep", sweepBody(i))
			mu.Lock()
			statuses[i] = st
			mu.Unlock()
		}(i)
	}
	<-entered // worker occupied; queue fills behind it
	defer func() {
		close(block)
		wg.Wait() // all flood goroutines drain before testHook resets
	}()

	shed := func() int {
		mu.Lock()
		defer mu.Unlock()
		rejected := 0
		for _, st := range statuses {
			if st == http.StatusTooManyRequests || st == http.StatusServiceUnavailable {
				rejected++
			}
		}
		return rejected
	}
	// Keep offering sweeps while the queue is saturated: the burst sheds
	// 429s, and the sustained pressure (past UpHold) steps the tier up.
	waited := time.Now()
	for (shed() == 0 || srv.deg.current() < tierNoSweeps) && time.Since(waited) < 5*time.Second {
		st, _ := postJSON(t, ts.URL+"/v1/sweep", sweepBody(100+int(time.Since(waited))))
		if st == http.StatusOK {
			t.Fatalf("sweep accepted while queue saturated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if shed() == 0 || srv.deg.current() < tierNoSweeps {
		t.Fatalf("sweep flood did not degrade: statuses %v tier %d", statuses, srv.deg.current())
	}
	// The cheap class is untouched while degraded.
	if status, _ := postJSON(t, ts.URL+"/v1/commtime",
		`{"Nodes": 16, "Bytes": 1024}`); status != http.StatusOK {
		t.Fatalf("commtime during degrade: status = %d", status)
	}
	// Fresh sweeps are rejected at the degrade gate (503), before admission.
	status, m := postJSON(t, ts.URL+"/v1/sweep", sweepBody(999))
	if status != http.StatusServiceUnavailable && status != http.StatusTooManyRequests {
		t.Fatalf("sweep during degrade: status = %d body %v", status, m)
	}
}

// TestDrain pins the graceful-shutdown contract: in-flight requests finish
// (zero drops) while new requests are turned away.
func TestDrain(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 4)
	testHook = func(endpoint, key string) {
		entered <- struct{}{}
		<-block
	}
	defer func() { testHook = nil }()

	srv, ts := newTestServer(t, Config{})
	result := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, ts.URL+"/v1/commtime", `{"Nodes": 16, "Bytes": 1024}`)
		result <- status
	}()
	<-entered

	drained := make(chan int, 1)
	go func() {
		n, err := srv.Drain(t.Context())
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		drained <- n
	}()
	// Drain must flip readiness and reject new work while waiting.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	if status, _ := postJSON(t, ts.URL+"/v1/commtime", `{"Nodes": 16, "Bytes": 4096}`); status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status = %d", status)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d", resp.StatusCode)
	}

	close(block) // let the in-flight request finish
	if status := <-result; status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status = %d, want 200 (zero drops)", status)
	}
	if n := <-drained; n < 1 {
		t.Fatalf("drained %d in-flight, want >= 1", n)
	}
}

// TestMetricsEndpoints sanity-checks /healthz, /readyz and /metricsz.
func TestMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if status, _ := postJSON(t, ts.URL+"/v1/commtime", `{"Nodes": 16, "Bytes": 1024}`); status != http.StatusOK {
		t.Fatalf("warmup failed: %d", status)
	}
	for _, path := range []string{"/healthz", "/readyz", "/metricsz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body MetricsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Counters["serve.point.200"] < 1 {
		t.Fatalf("counters = %v", body.Counters)
	}
	if len(body.Latencies) == 0 || body.Latencies[0].Count < 1 {
		t.Fatalf("latencies = %v", body.Latencies)
	}
	if len(body.Shards) == 0 {
		t.Fatalf("no shard stats")
	}
}

// TestSweepEndpoint prices a small grid end to end.
func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, m := postJSON(t, ts.URL+"/v1/sweep",
		`{"Spec": {"Nodes": [8, 16], "MessageBytes": [65536], "Algorithms": ["wrht", "e-ring"]}}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %v", status, m)
	}
	res := m["Result"].(map[string]any)
	cells := res["Cells"].([]any)
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	// Grid limit enforcement.
	big := `{"Spec": {"Nodes": [` + strings.Repeat("8,", 99) + `8], "MessageBytes": [` +
		strings.Repeat("1024,", 99) + `1024]}}`
	if status, _ := postJSON(t, ts.URL+"/v1/sweep", big); status != http.StatusBadRequest {
		t.Fatalf("oversized grid: status = %d", status)
	}
}

// TestFabricAndFleetEndpoints prices one tenant mix and one small fleet.
func TestFabricAndFleetEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, m := postJSON(t, ts.URL+"/v1/fabric", `{
		"Nodes": 16, "Wavelengths": 8,
		"Jobs": [
			{"Name": "a", "Bytes": 1048576},
			{"Name": "b", "Bytes": 524288, "ArrivalSec": 0.001}
		],
		"Policy": {"Kind": "first-fit"}
	}`)
	if status != http.StatusOK {
		t.Fatalf("fabric: status = %d, body %v", status, m)
	}

	status, m = postJSON(t, ts.URL+"/v1/fleet", `{
		"Fabrics": [
			{"Name": "f0", "Nodes": 8, "Wavelengths": 8},
			{"Name": "f1", "Nodes": 8, "Wavelengths": 4}
		],
		"Shapes": [{"Bytes": 262144}],
		"Jobs": [
			{"Name": "j0", "Shape": 0, "Affinity": -1},
			{"Name": "j1", "Shape": 0, "Affinity": -1, "ArrivalSec": 0.0005}
		],
		"Options": {"Placement": "least-loaded"}
	}`)
	if status != http.StatusOK {
		t.Fatalf("fleet: status = %d, body %v", status, m)
	}
}

// TestDegraderHysteresis unit-tests the tier state machine with a fake clock.
func TestDegraderHysteresis(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	d := newDegrader(degradeConfig{Hi: 0.75, Lo: 0.25, UpHold: 100 * time.Millisecond, Hold: time.Second}, clock)

	if tier := d.observe(0.1); tier != tierNormal {
		t.Fatalf("tier = %d", tier)
	}
	// A transient spike does NOT degrade — that is the 429 path's job.
	if tier := d.observe(0.9); tier != tierNormal {
		t.Fatalf("transient spike: tier = %d", tier)
	}
	// Sustained pressure past UpHold steps up one tier per hold period.
	now = now.Add(150 * time.Millisecond)
	if tier := d.observe(0.9); tier != tierNoSweeps {
		t.Fatalf("after sustained spike: tier = %d", tier)
	}
	now = now.Add(150 * time.Millisecond)
	if tier := d.observe(1.0); tier != tierNoFleet {
		t.Fatalf("after second hold: tier = %d", tier)
	}
	now = now.Add(150 * time.Millisecond)
	if tier := d.observe(1.0); tier != tierNoFleet {
		t.Fatalf("tier overflow: %d", tier)
	}
	// Mid-band pressure holds the tier.
	if tier := d.observe(0.5); tier != tierNoFleet {
		t.Fatalf("mid-band: tier = %d", tier)
	}
	// Low pressure needs Hold before stepping down.
	if tier := d.observe(0.1); tier != tierNoFleet {
		t.Fatalf("low without hold: tier = %d", tier)
	}
	now = now.Add(500 * time.Millisecond)
	if tier := d.observe(0.1); tier != tierNoFleet {
		t.Fatalf("low at half hold: tier = %d", tier)
	}
	now = now.Add(600 * time.Millisecond)
	if tier := d.observe(0.1); tier != tierNoSweeps {
		t.Fatalf("after hold: tier = %d", tier)
	}
	// A spike resets recovery credit (but does not step up by itself).
	if tier := d.observe(0.9); tier != tierNoSweeps {
		t.Fatalf("re-spike: tier = %d", tier)
	}
	now = now.Add(2 * time.Second)
	d.observe(0.1) // starts recovery credit afresh
	now = now.Add(2 * time.Second)
	if tier := d.observe(0.1); tier != tierNormal {
		t.Fatalf("recovery: tier = %d", tier)
	}
}

// TestLoadgenClosedLoop smoke-tests the load generator against a live server.
func TestLoadgenClosedLoop(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rep, err := RunLoad(t.Context(), LoadSpec{
		BaseURL:     ts.URL,
		Endpoint:    "/v1/commtime",
		Bodies:      [][]byte{[]byte(`{"Nodes": 16, "Bytes": 1048576}`)},
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.OK() == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.P50Millis <= 0 || rep.QPS <= 0 {
		t.Fatalf("quantiles missing: %+v", rep)
	}
}
