package serve

import (
	"errors"
	"fmt"
	"sync"
)

// errQuarantined marks a request key whose pricing previously panicked. The
// key stays poisoned for the server's lifetime: a panic is a bug in the
// engine for that exact input, so re-running it would re-panic — the server
// answers 500 immediately instead of burning a worker to find out again.
var errQuarantined = errors.New("serve: request quarantined after engine panic")

// errPanicked is what the panicking request itself (and any followers
// coalesced onto it) observes.
var errPanicked = errors.New("serve: engine panicked")

// maxQuarantined bounds the poison set; beyond it the oldest keys are
// dropped (they would re-panic and re-quarantine, which is correct, just
// slower).
const maxQuarantined = 1024

// flight is one in-progress computation; followers block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// flightGroup is request coalescing (singleflight) with panic isolation.
// Identical concurrent requests — same canonical key — share one execution:
// the first caller becomes the leader and runs fn, later callers block until
// the leader finishes and receive the same value. The session caches below
// already coalesce the *simulation*; this layer also coalesces the
// per-request decode/validate/assembly work and gives the server one place
// to catch panics: a panicking leader poisons the key, every coalesced
// follower gets the same 500, and the worker goroutine survives.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flight
	poisoned map[string]string // key → panic message
	poisonQ  []string          // FIFO of poisoned keys for bounded eviction
}

func newFlightGroup() *flightGroup {
	return &flightGroup{
		inflight: make(map[string]*flight),
		poisoned: make(map[string]string),
	}
}

// do runs fn under key, coalescing concurrent duplicates. shared reports
// whether this caller rode an existing flight. A fn panic is recovered: the
// key is quarantined, and both leader and followers get errPanicked.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if msg, ok := g.poisoned[key]; ok {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w (panic: %s)", errQuarantined, msg), false
	}
	if f, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.inflight[key] = f
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("%w: %v", errPanicked, r)
				g.quarantine(key, fmt.Sprint(r))
			}
		}()
		f.val, f.err = fn()
	}()

	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, false
}

func (g *flightGroup) quarantine(key, msg string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.poisoned[key]; ok {
		return
	}
	g.poisoned[key] = msg
	g.poisonQ = append(g.poisonQ, key)
	for len(g.poisonQ) > maxQuarantined {
		delete(g.poisoned, g.poisonQ[0])
		g.poisonQ = g.poisonQ[1:]
	}
}

// quarantined returns the number of poisoned keys.
func (g *flightGroup) quarantined() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.poisoned)
}
