// Package faults is the seeded, deterministic failure-injection subsystem
// for the fabric and fleet co-simulators. A Plan combines MTBF/MTTR-driven
// generators (wavelength darkening, transient job faults, whole-fabric
// outages) with explicitly scripted events; Events expands it — before any
// simulation runs — into a time-sorted event list that the caller schedules
// on the shared sim.Engine. Expansion is fully deterministic in the plan:
// the same plan yields the byte-identical event slice regardless of
// GOMAXPROCS or call site, so faulty simulations stay reproducible.
//
// The package deliberately knows nothing about schedulers or fleets: it
// produces events and retry/backoff arithmetic, and the fabric/fleet layers
// own the recovery machinery those events exercise.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind enumerates injectable failure events.
type Kind int

const (
	// WavelengthDown darkens Count wavelengths of one fabric, shrinking its
	// live budget until a matching WavelengthUp.
	WavelengthDown Kind = iota
	// WavelengthUp restores Count previously darkened wavelengths.
	WavelengthUp
	// JobFault crashes one running job: it loses all work since its last
	// checkpoint and replays the tail (see Job.CheckpointEverySec).
	JobFault
	// FabricDown takes a whole fabric offline: every resident job is
	// evicted and routed through the fleet's RecoveryPolicy.
	FabricDown
	// FabricUp brings an offline fabric back and releases jobs parked on it.
	FabricUp
)

func (k Kind) String() string {
	switch k {
	case WavelengthDown:
		return "wavelength-down"
	case WavelengthUp:
		return "wavelength-up"
	case JobFault:
		return "job-fault"
	case FabricDown:
		return "fabric-down"
	case FabricUp:
		return "fabric-up"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one concrete injection, either scripted by the caller or drawn
// from the plan's seeded generators.
type Event struct {
	TimeSec float64
	Kind    Kind
	// Fabric indexes the target fabric (always 0 for single-fabric runs).
	Fabric int
	// Count is how many wavelengths a WavelengthDown/Up affects (default 1).
	Count int
	// Pick selects a JobFault victim among the jobs running at injection
	// time (victim = running[Pick % len(running)]); it is drawn from the
	// plan's RNG so generated faults spread deterministically.
	Pick uint64
	// Job optionally names a scripted JobFault's victim; it must be running
	// at injection time or the event is a no-op. Empty uses Pick.
	Job string
}

// Retry caps how evicted or unfittable jobs come back: capped exponential
// backoff with a per-job retry budget. The zero value means defaults.
type Retry struct {
	// BackoffSec is the first retry delay (default 1ms).
	BackoffSec float64
	// BackoffMaxSec caps the exponential growth (default 64ms).
	BackoffMaxSec float64
	// MaxRetries is the per-job retry budget; a job evicted with no budget
	// left fails permanently (default 10).
	MaxRetries int
}

// WithDefaults fills zero-valued fields with the documented defaults.
func (r Retry) WithDefaults() Retry {
	if r.BackoffSec == 0 {
		r.BackoffSec = 1e-3
	}
	if r.BackoffMaxSec == 0 {
		r.BackoffMaxSec = 64e-3
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 10
	}
	return r
}

// Validate rejects unusable retry configurations (as WithDefaults leaves
// them).
func (r Retry) Validate() error {
	r = r.WithDefaults()
	if !(r.BackoffSec > 0) || math.IsInf(r.BackoffSec, 0) {
		return fmt.Errorf("faults: retry backoff %v (need > 0)", r.BackoffSec)
	}
	if !(r.BackoffMaxSec >= r.BackoffSec) || math.IsInf(r.BackoffMaxSec, 0) {
		return fmt.Errorf("faults: retry backoff cap %v (need >= backoff %v)", r.BackoffMaxSec, r.BackoffSec)
	}
	if r.MaxRetries < 1 {
		return fmt.Errorf("faults: retry budget %d (need >= 1)", r.MaxRetries)
	}
	if r.MaxRetries > MaxRetryBudget {
		return fmt.Errorf("faults: retry budget %d (max %d)", r.MaxRetries, MaxRetryBudget)
	}
	return nil
}

// MaxRetryBudget bounds the per-job retry budget: every retry replays real
// simulation work, so an absurd budget turns one unlucky job into an
// unbounded run.
const MaxRetryBudget = 1_000_000

// Delay returns the backoff before retry number attempt (0-based):
// BackoffSec·2^attempt, capped at BackoffMaxSec.
func (r Retry) Delay(attempt int) float64 {
	r = r.WithDefaults()
	d := r.BackoffSec
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= r.BackoffMaxSec {
			return r.BackoffMaxSec
		}
	}
	if d > r.BackoffMaxSec {
		return r.BackoffMaxSec
	}
	return d
}

// Plan is a seeded failure model: per-fabric MTBF/MTTR generators plus an
// explicit script. The zero value is the empty plan (no faults).
type Plan struct {
	Seed int64
	// HorizonSec bounds generated fault injection times; required (> 0)
	// when any MTBF generator is set. Restores paired with a generated
	// outage may land past the horizon.
	HorizonSec float64

	// WavelengthMTBFSec > 0 enables per-fabric wavelength darkening with
	// exponential times-between-failures of this mean; each fault darkens
	// WavelengthsPerFault wavelengths (default 1) for an exponential
	// duration of mean WavelengthMTTRSec (required > 0 when enabled).
	WavelengthMTBFSec   float64
	WavelengthMTTRSec   float64
	WavelengthsPerFault int

	// JobFaultMTBFSec > 0 enables per-fabric transient job crashes with
	// exponential inter-fault times of this mean.
	JobFaultMTBFSec float64

	// FabricMTBFSec > 0 enables whole-fabric outages with exponential
	// times-between-failures of this mean and exponential outage durations
	// of mean FabricMTTRSec (required > 0 when enabled).
	FabricMTBFSec float64
	FabricMTTRSec float64

	// Scripted events are injected as given, merged with the generated
	// stream.
	Scripted []Event

	// Retry governs eviction backoff and per-job retry budgets.
	Retry Retry
}

// Empty reports whether the plan injects nothing (and so must leave every
// simulated number bit-identical to a plan-free run).
func (p Plan) Empty() bool {
	return p.WavelengthMTBFSec == 0 && p.JobFaultMTBFSec == 0 &&
		p.FabricMTBFSec == 0 && len(p.Scripted) == 0
}

// mtbfField checks one (enabled-by, value) generator field pair.
func mtbfField(name string, mtbf, mttr float64, needMTTR bool) error {
	if mtbf < 0 || math.IsNaN(mtbf) || math.IsInf(mtbf, 0) {
		return fmt.Errorf("faults: %s MTBF %v (need >= 0)", name, mtbf)
	}
	if mtbf > 0 && needMTTR && (!(mttr > 0) || math.IsInf(mttr, 0)) {
		return fmt.Errorf("faults: %s MTTR %v (need > 0 when the %s generator is enabled)", name, mttr, name)
	}
	return nil
}

// MaxExpectedFaults bounds the expected generated event count of one
// generator stream (HorizonSec / MTBF). Plans expand into a concrete
// time-sorted event list before simulation, so a pathological tiny MTBF
// against a long horizon would otherwise allocate billions of events and
// hang the run instead of erroring.
const MaxExpectedFaults = 200_000

// Validate rejects unusable plans. nFabrics bounds scripted fabric indexes.
func (p Plan) Validate(nFabrics int) error {
	if err := mtbfField("wavelength", p.WavelengthMTBFSec, p.WavelengthMTTRSec, true); err != nil {
		return err
	}
	if err := mtbfField("job-fault", p.JobFaultMTBFSec, 0, false); err != nil {
		return err
	}
	if err := mtbfField("fabric", p.FabricMTBFSec, p.FabricMTTRSec, true); err != nil {
		return err
	}
	for _, g := range []struct {
		name string
		mtbf float64
	}{
		{"wavelength", p.WavelengthMTBFSec},
		{"job-fault", p.JobFaultMTBFSec},
		{"fabric", p.FabricMTBFSec},
	} {
		if g.mtbf > 0 && p.HorizonSec/g.mtbf > MaxExpectedFaults {
			return fmt.Errorf("faults: %s generator expects ~%.0f events over the %v s horizon (max %d)",
				g.name, p.HorizonSec/g.mtbf, p.HorizonSec, MaxExpectedFaults)
		}
	}
	if p.WavelengthsPerFault < 0 {
		return fmt.Errorf("faults: wavelengths per fault %d (need >= 0)", p.WavelengthsPerFault)
	}
	generated := p.WavelengthMTBFSec > 0 || p.JobFaultMTBFSec > 0 || p.FabricMTBFSec > 0
	if generated && (!(p.HorizonSec > 0) || math.IsInf(p.HorizonSec, 0)) {
		return fmt.Errorf("faults: horizon %v (need > 0 when a generator is enabled)", p.HorizonSec)
	}
	for i, ev := range p.Scripted {
		if ev.TimeSec < 0 || math.IsNaN(ev.TimeSec) || math.IsInf(ev.TimeSec, 0) {
			return fmt.Errorf("faults: scripted event %d at t=%v (need >= 0)", i, ev.TimeSec)
		}
		switch ev.Kind {
		case WavelengthDown, WavelengthUp, JobFault, FabricDown, FabricUp:
		default:
			return fmt.Errorf("faults: scripted event %d has unknown kind %v", i, ev.Kind)
		}
		if ev.Fabric < 0 || ev.Fabric >= nFabrics {
			return fmt.Errorf("faults: scripted event %d targets fabric %d (fleet has %d)", i, ev.Fabric, nFabrics)
		}
		if ev.Count < 0 {
			return fmt.Errorf("faults: scripted event %d count %d (need >= 0)", i, ev.Count)
		}
	}
	return p.Retry.Validate()
}

// streamSeed derives one generator stream's RNG seed from the plan seed, the
// fabric index, and a small per-stream tag, keeping streams independent and
// stable under fleet-size changes.
func (p Plan) streamSeed(fabric, stream int64) int64 {
	return p.Seed + fabric*1_000_003 + stream*7919
}

// Events expands the plan into a time-sorted injection list for a fleet of
// nFabrics fabrics. Wavelength darkening and fabric outages emit paired
// Down/Up events; generated JobFaults carry a seeded victim Pick.
func (p Plan) Events(nFabrics int) ([]Event, error) {
	if err := p.Validate(nFabrics); err != nil {
		return nil, err
	}
	if p.Empty() {
		return nil, nil
	}
	perFault := p.WavelengthsPerFault
	if perFault == 0 {
		perFault = 1
	}
	var out []Event
	for fi := 0; fi < nFabrics; fi++ {
		if p.WavelengthMTBFSec > 0 {
			rng := rand.New(rand.NewSource(p.streamSeed(int64(fi), 1)))
			for t := rng.ExpFloat64() * p.WavelengthMTBFSec; t < p.HorizonSec; t += rng.ExpFloat64() * p.WavelengthMTBFSec {
				dur := rng.ExpFloat64() * p.WavelengthMTTRSec
				out = append(out,
					Event{TimeSec: t, Kind: WavelengthDown, Fabric: fi, Count: perFault},
					Event{TimeSec: t + dur, Kind: WavelengthUp, Fabric: fi, Count: perFault})
			}
		}
		if p.JobFaultMTBFSec > 0 {
			rng := rand.New(rand.NewSource(p.streamSeed(int64(fi), 2)))
			for t := rng.ExpFloat64() * p.JobFaultMTBFSec; t < p.HorizonSec; t += rng.ExpFloat64() * p.JobFaultMTBFSec {
				out = append(out, Event{TimeSec: t, Kind: JobFault, Fabric: fi, Pick: rng.Uint64()})
			}
		}
		if p.FabricMTBFSec > 0 {
			rng := rand.New(rand.NewSource(p.streamSeed(int64(fi), 3)))
			for t := rng.ExpFloat64() * p.FabricMTBFSec; t < p.HorizonSec; t += rng.ExpFloat64() * p.FabricMTBFSec {
				dur := rng.ExpFloat64() * p.FabricMTTRSec
				out = append(out,
					Event{TimeSec: t, Kind: FabricDown, Fabric: fi},
					Event{TimeSec: t + dur, Kind: FabricUp, Fabric: fi})
				// The next failure draw starts after the repair completes.
				t += dur
			}
		}
	}
	for _, ev := range p.Scripted {
		if ev.Count == 0 {
			ev.Count = perFault
		}
		out = append(out, ev)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TimeSec != out[j].TimeSec {
			return out[i].TimeSec < out[j].TimeSec
		}
		if out[i].Fabric != out[j].Fabric {
			return out[i].Fabric < out[j].Fabric
		}
		return out[i].Kind < out[j].Kind
	})
	return out, nil
}

// HasWavelengthEvents reports whether any event darkens or restores
// wavelengths (unsupported under the static-partition policy).
func HasWavelengthEvents(evs []Event) bool {
	for _, ev := range evs {
		if ev.Kind == WavelengthDown || ev.Kind == WavelengthUp {
			return true
		}
	}
	return false
}

// HasFabricEvents reports whether any event is a whole-fabric outage
// (meaningless without a fleet to recover through).
func HasFabricEvents(evs []Event) bool {
	for _, ev := range evs {
		if ev.Kind == FabricDown || ev.Kind == FabricUp {
			return true
		}
	}
	return false
}
