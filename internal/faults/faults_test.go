package faults

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		WavelengthDown: "wavelength-down",
		WavelengthUp:   "wavelength-up",
		JobFault:       "job-fault",
		FabricDown:     "fabric-down",
		FabricUp:       "fabric-up",
		Kind(99):       "Kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestRetryDelay(t *testing.T) {
	r := Retry{BackoffSec: 1e-3, BackoffMaxSec: 8e-3, MaxRetries: 5}
	want := []float64{1e-3, 2e-3, 4e-3, 8e-3, 8e-3, 8e-3}
	for i, w := range want {
		if got := r.Delay(i); math.Abs(got-w) > 1e-15 {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Defaults: positive, capped, budget >= 1.
	d := Retry{}
	if d.Delay(0) <= 0 || d.Delay(100) != d.WithDefaults().BackoffMaxSec {
		t.Fatalf("default delays broken: %v %v", d.Delay(0), d.Delay(100))
	}
	if err := (Retry{}).Validate(); err != nil {
		t.Fatalf("zero retry should validate via defaults: %v", err)
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Fatal("zero plan should be empty")
	}
	if (Plan{JobFaultMTBFSec: 1, HorizonSec: 1}).Empty() {
		t.Fatal("generator plan should not be empty")
	}
	if (Plan{Scripted: []Event{{Kind: FabricDown}}}).Empty() {
		t.Fatal("scripted plan should not be empty")
	}
	evs, err := (Plan{}).Events(3)
	if err != nil || evs != nil {
		t.Fatalf("empty plan expansion = %v, %v", evs, err)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{WavelengthMTBFSec: 1, HorizonSec: 1},                               // missing MTTR
		{FabricMTBFSec: 1, HorizonSec: 1},                                   // missing MTTR
		{JobFaultMTBFSec: 1},                                                // missing horizon
		{WavelengthMTBFSec: -1},                                             // negative MTBF
		{Scripted: []Event{{TimeSec: -1, Kind: JobFault}}},                  // negative time
		{Scripted: []Event{{Kind: Kind(42)}}},                               // unknown kind
		{Scripted: []Event{{Kind: FabricDown, Fabric: 3}}},                  // fabric out of range
		{Scripted: []Event{{Kind: WavelengthDown, Count: -2}}},              // negative count
		{Scripted: []Event{{Kind: JobFault}}, Retry: Retry{MaxRetries: -1}}, // bad retry
	}
	for i, p := range bad {
		if err := p.Validate(2); err == nil {
			t.Errorf("plan %d should not validate: %+v", i, p)
		}
	}
}

func TestPlanEventsDeterministicAndSorted(t *testing.T) {
	p := Plan{
		Seed:              7,
		HorizonSec:        5,
		WavelengthMTBFSec: 0.5, WavelengthMTTRSec: 0.1, WavelengthsPerFault: 2,
		JobFaultMTBFSec: 0.7,
		FabricMTBFSec:   2, FabricMTTRSec: 0.5,
		Scripted: []Event{{TimeSec: 1.5, Kind: FabricDown, Fabric: 1}},
	}
	a, err := p.Events(2)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Events(2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("expansion is not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("expected generated events")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].TimeSec < a[j].TimeSec }) {
		t.Fatal("events not time-sorted")
	}
	downs, ups := 0, 0
	for _, ev := range a {
		switch ev.Kind {
		case WavelengthDown:
			downs++
			if ev.Count != 2 {
				t.Fatalf("generated darkening count %d, want 2", ev.Count)
			}
		case WavelengthUp:
			ups++
		}
		if ev.Fabric < 0 || ev.Fabric > 1 {
			t.Fatalf("event fabric %d out of range", ev.Fabric)
		}
	}
	if downs == 0 || downs != ups {
		t.Fatalf("unpaired darkening events: %d down, %d up", downs, ups)
	}
	if !HasWavelengthEvents(a) || !HasFabricEvents(a) {
		t.Fatal("event classifiers broken")
	}
	// A different seed moves the injections.
	p2 := p
	p2.Seed = 8
	c, _ := p2.Events(2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("seed does not perturb the generated stream")
	}
}
