package report

import (
	"fmt"

	"wrht"
	"wrht/internal/stats"
)

// FabricPolicyTable summarizes one job mix under several policies: one row
// per policy with makespan, queueing, slowdown, fairness and utilization.
// cmd/fabricsim renders it as text, markdown, or CSV.
func FabricPolicyTable(title string, results []wrht.FabricResult) *stats.Table {
	tb := stats.NewTable(title,
		"policy", "makespan", "mean queue", "max queue",
		"mean slowdown", "fairness", "utilization", "peak λ", "rejected")
	for _, r := range results {
		tb.AddRow(
			r.Policy.String(),
			stats.FormatSeconds(r.MakespanSec),
			stats.FormatSeconds(r.MeanQueueSec),
			stats.FormatSeconds(r.MaxQueueSec),
			fmt.Sprintf("%.2fx", r.MeanSlowdown),
			fmt.Sprintf("%.3f", r.Fairness),
			fmt.Sprintf("%.1f%%", 100*r.Utilization),
			fmt.Sprintf("%d/%d", r.PeakWavelengths, r.Budget),
			fmt.Sprintf("%d", r.RejectedJobs),
		)
	}
	return tb
}

// FabricJobsTable details every tenant of one fabric run.
func FabricJobsTable(res wrht.FabricResult) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("per-job outcome under %s (budget %d λ)", res.Policy, res.Budget),
		"job", "arrival", "queue", "service", "done", "λ", "preempts", "slowdown")
	for _, j := range res.Jobs {
		if j.Rejected {
			tb.AddRow(j.Name, stats.FormatSeconds(j.ArrivalSec),
				"-", "-", "rejected", "-", "-", "-")
			continue
		}
		tb.AddRow(
			j.Name,
			stats.FormatSeconds(j.ArrivalSec),
			stats.FormatSeconds(j.QueueSec),
			stats.FormatSeconds(j.ServiceSec),
			stats.FormatSeconds(j.DoneSec),
			fmt.Sprintf("%d", j.Width),
			fmt.Sprintf("%d", j.Preemptions),
			fmt.Sprintf("%.2fx", j.Slowdown),
		)
	}
	return tb
}
