package report

import (
	"fmt"

	"wrht"
	"wrht/internal/stats"
)

// FabricPolicyTable summarizes one job mix under several policies: one row
// per policy with makespan, queueing, slowdown, fairness, utilization, and
// the total preemption/reconfiguration churn. cmd/fabricsim renders it as
// text, markdown, or CSV.
func FabricPolicyTable(title string, results []wrht.FabricResult) *stats.Table {
	tb := stats.NewTable(title,
		"policy", "makespan", "mean queue", "max queue",
		"mean slowdown", "fairness", "utilization", "peak λ",
		"preempts", "reconfigs", "rejected")
	for _, r := range results {
		preempts, reconfigs := 0, 0
		for _, j := range r.Jobs {
			preempts += j.Preemptions
			reconfigs += j.Reconfigs
		}
		tb.AddRow(
			r.Policy.String(),
			stats.FormatSeconds(r.MakespanSec),
			stats.FormatSeconds(r.MeanQueueSec),
			stats.FormatSeconds(r.MaxQueueSec),
			fmt.Sprintf("%.2fx", r.MeanSlowdown),
			fmt.Sprintf("%.3f", r.Fairness),
			fmt.Sprintf("%.1f%%", 100*r.Utilization),
			fmt.Sprintf("%d/%d", r.PeakWavelengths, r.Budget),
			fmt.Sprintf("%d", preempts),
			fmt.Sprintf("%d", reconfigs),
			fmt.Sprintf("%d", r.RejectedJobs),
		)
	}
	return tb
}

// FabricJobsTable details every tenant of one fabric run.
func FabricJobsTable(res wrht.FabricResult) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("per-job outcome under %s (budget %d λ)", res.Policy, res.Budget),
		"job", "arrival", "queue", "service", "done", "λ", "preempts", "reconfigs", "slowdown")
	for _, j := range res.Jobs {
		if j.Rejected {
			tb.AddRow(j.Name, stats.FormatSeconds(j.ArrivalSec),
				"-", "-", "rejected", "-", "-", "-", "-")
			continue
		}
		tb.AddRow(
			j.Name,
			stats.FormatSeconds(j.ArrivalSec),
			stats.FormatSeconds(j.QueueSec),
			stats.FormatSeconds(j.ServiceSec),
			stats.FormatSeconds(j.DoneSec),
			fmt.Sprintf("%d", j.Width),
			fmt.Sprintf("%d", j.Preemptions),
			fmt.Sprintf("%d", j.Reconfigs),
			fmt.Sprintf("%.2fx", j.Slowdown),
		)
	}
	return tb
}

// ChurnMix is the canonical departure-heavy tenant mix for the elastic
// policy comparison (EXPERIMENTS.md F2, BenchmarkFabricElastic): a burst of
// short capped jobs fills the whole pool, then a long uncapped straggler
// arrives while the fabric is full. A grant-once policy starts the
// straggler at whatever sliver the first departure frees and leaves it
// there while the rest of the fabric drains dark around it; elastic
// re-allocation widens it into every freed stripe. The mix is fixed (not
// seeded at call time) so every consumer prices the identical scenario.
func ChurnMix() wrht.FabricMix {
	var jobs []wrht.JobSpec
	for i := 0; i < 8; i++ {
		jobs = append(jobs, wrht.JobSpec{
			Name:           fmt.Sprintf("burst%d-alexnet", i),
			Model:          "AlexNet",
			ArrivalSec:     float64(i) * 1e-4,
			MaxWavelengths: 8,
			Iterations:     1 + i%3,
		})
	}
	jobs = append(jobs, wrht.JobSpec{
		Name: "straggler-vgg", Model: "VGG16", ArrivalSec: 2e-3, Iterations: 2,
	})
	return wrht.FabricMix{Name: "churn", Jobs: jobs}
}

// ChurnObservability runs the canonical ChurnMix under the elastic policy
// (2 µs reconfiguration delay, the F2 setting) on an observed session and
// returns the flight recorder's two headline views of the run: the
// per-wavelength utilization profile (busy time and segment count per
// 8-wavelength bucket against the run's makespan) and the reconfiguration
// timeline (when each elastic width change happened, to which job, and the
// stripe width it left the job holding). This is the paper's "where does
// the 434→253 ms win come from" picture in table form; the same recorder
// state exports to Perfetto via cmd/fabricsim -scenario churn -trace.
func ChurnObservability() (util, timeline *stats.Table, err error) {
	ss := wrht.NewSweepSession()
	ss.Observe()
	cfg := wrht.DefaultConfig(64)
	mix := ChurnMix()
	res, err := ss.SimulateFabric(cfg, mix.Jobs, wrht.FabricPolicy{
		Kind: wrht.FabricElastic, ReconfigDelaySec: 2e-6,
	})
	if err != nil {
		return nil, nil, err
	}
	snap := ss.Snapshot()

	const bucket = 8
	type acc struct {
		busy float64
		segs int
	}
	buckets := map[int]*acc{}
	for _, w := range snap.Wavelengths {
		b := w.Index / bucket
		a := buckets[b]
		if a == nil {
			a = &acc{}
			buckets[b] = a
		}
		a.busy += w.BusySec
		a.segs += w.Segments
	}
	util = stats.NewTable(
		fmt.Sprintf("per-wavelength utilization, churn mix under elastic (makespan %s)",
			stats.FormatSeconds(res.MakespanSec)),
		"wavelengths", "busy λ·s", "mean utilization", "segments")
	for b := 0; b*bucket < res.Budget; b++ {
		a := buckets[b]
		if a == nil {
			a = &acc{}
		}
		lanes := bucket
		if rest := res.Budget - b*bucket; rest < lanes {
			lanes = rest
		}
		meanUtil := 0.0
		if res.MakespanSec > 0 {
			meanUtil = a.busy / (float64(lanes) * res.MakespanSec)
		}
		util.AddRow(
			fmt.Sprintf("λ%02d–%02d", b*bucket, b*bucket+lanes-1),
			fmt.Sprintf("%.4g", a.busy),
			fmt.Sprintf("%.1f%%", 100*meanUtil),
			fmt.Sprintf("%d", a.segs))
	}

	timeline = stats.NewTable(
		"reconfiguration timeline, churn mix under elastic",
		"time", "event", "job", "λ")
	for _, ev := range res.Events {
		if ev.Kind != "reconfig" && ev.Job != "straggler-vgg" {
			continue
		}
		waves := "-"
		if ev.Wavelengths > 0 {
			waves = fmt.Sprintf("%d", ev.Wavelengths)
		}
		timeline.AddRow(stats.FormatSeconds(ev.TimeSec), ev.Kind, ev.Job, waves)
	}
	return util, timeline, nil
}
