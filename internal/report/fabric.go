package report

import (
	"fmt"

	"wrht"
	"wrht/internal/stats"
)

// FabricPolicyTable summarizes one job mix under several policies: one row
// per policy with makespan, queueing, slowdown, fairness, utilization, and
// the total preemption/reconfiguration churn. cmd/fabricsim renders it as
// text, markdown, or CSV.
func FabricPolicyTable(title string, results []wrht.FabricResult) *stats.Table {
	tb := stats.NewTable(title,
		"policy", "makespan", "mean queue", "max queue",
		"mean slowdown", "fairness", "utilization", "peak λ",
		"preempts", "reconfigs", "rejected")
	for _, r := range results {
		preempts, reconfigs := 0, 0
		for _, j := range r.Jobs {
			preempts += j.Preemptions
			reconfigs += j.Reconfigs
		}
		tb.AddRow(
			r.Policy.String(),
			stats.FormatSeconds(r.MakespanSec),
			stats.FormatSeconds(r.MeanQueueSec),
			stats.FormatSeconds(r.MaxQueueSec),
			fmt.Sprintf("%.2fx", r.MeanSlowdown),
			fmt.Sprintf("%.3f", r.Fairness),
			fmt.Sprintf("%.1f%%", 100*r.Utilization),
			fmt.Sprintf("%d/%d", r.PeakWavelengths, r.Budget),
			fmt.Sprintf("%d", preempts),
			fmt.Sprintf("%d", reconfigs),
			fmt.Sprintf("%d", r.RejectedJobs),
		)
	}
	return tb
}

// FabricJobsTable details every tenant of one fabric run.
func FabricJobsTable(res wrht.FabricResult) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("per-job outcome under %s (budget %d λ)", res.Policy, res.Budget),
		"job", "arrival", "queue", "service", "done", "λ", "preempts", "reconfigs", "slowdown")
	for _, j := range res.Jobs {
		if j.Rejected {
			tb.AddRow(j.Name, stats.FormatSeconds(j.ArrivalSec),
				"-", "-", "rejected", "-", "-", "-", "-")
			continue
		}
		tb.AddRow(
			j.Name,
			stats.FormatSeconds(j.ArrivalSec),
			stats.FormatSeconds(j.QueueSec),
			stats.FormatSeconds(j.ServiceSec),
			stats.FormatSeconds(j.DoneSec),
			fmt.Sprintf("%d", j.Width),
			fmt.Sprintf("%d", j.Preemptions),
			fmt.Sprintf("%d", j.Reconfigs),
			fmt.Sprintf("%.2fx", j.Slowdown),
		)
	}
	return tb
}

// ChurnMix is the canonical departure-heavy tenant mix for the elastic
// policy comparison (EXPERIMENTS.md F2, BenchmarkFabricElastic): a burst of
// short capped jobs fills the whole pool, then a long uncapped straggler
// arrives while the fabric is full. A grant-once policy starts the
// straggler at whatever sliver the first departure frees and leaves it
// there while the rest of the fabric drains dark around it; elastic
// re-allocation widens it into every freed stripe. The mix is fixed (not
// seeded at call time) so every consumer prices the identical scenario.
func ChurnMix() wrht.FabricMix {
	var jobs []wrht.JobSpec
	for i := 0; i < 8; i++ {
		jobs = append(jobs, wrht.JobSpec{
			Name:           fmt.Sprintf("burst%d-alexnet", i),
			Model:          "AlexNet",
			ArrivalSec:     float64(i) * 1e-4,
			MaxWavelengths: 8,
			Iterations:     1 + i%3,
		})
	}
	jobs = append(jobs, wrht.JobSpec{
		Name: "straggler-vgg", Model: "VGG16", ArrivalSec: 2e-3, Iterations: 2,
	})
	return wrht.FabricMix{Name: "churn", Jobs: jobs}
}
