package report

import (
	"fmt"

	"wrht"
	"wrht/internal/stats"
)

// FleetPlacementTable summarizes one trace under several placement
// policies: one row per fleet run with completion, migration, latency, and
// solver-work columns. The "tiers skipped" column is the incremental
// solver's win — the fraction of priority tiers each re-solve proved
// untouched and carried over without re-pricing a single member.
func FleetPlacementTable(title string, results []wrht.FleetResult) *stats.Table {
	tb := stats.NewTable(title,
		"placement", "completed", "migrations", "makespan",
		"mean slowdown", "fairness", "utilization",
		"reconfigs", "tiers skipped", "curve hits")
	for _, r := range results {
		skipped := "-"
		if total := r.SolverTiersTouched + r.SolverTiersSkipped; total > 0 {
			skipped = fmt.Sprintf("%.1f%%", 100*float64(r.SolverTiersSkipped)/float64(total))
		}
		hits := "-"
		if total := r.CurveHits + r.CurveBuilds; total > 0 {
			hits = fmt.Sprintf("%.1f%%", 100*float64(r.CurveHits)/float64(total))
		}
		tb.AddRow(
			r.Placement,
			fmt.Sprintf("%d/%d", r.Completed, r.Jobs),
			fmt.Sprintf("%d", r.Migrations),
			stats.FormatSeconds(r.MakespanSec),
			fmt.Sprintf("%.2fx", r.MeanSlowdown),
			fmt.Sprintf("%.3f", r.Fairness),
			fmt.Sprintf("%.1f%%", 100*r.Utilization),
			fmt.Sprintf("%d", r.Reconfigs),
			skipped,
			hits,
		)
	}
	return tb
}

// FleetFabricTable details how one fleet run spread across its fabrics.
func FleetFabricTable(res wrht.FleetResult) *stats.Table {
	tb := stats.NewTable(
		fmt.Sprintf("per-fabric outcome under %s placement", res.Placement),
		"fabric", "λ budget", "placed", "migrated in", "completed",
		"makespan", "mean slowdown", "utilization", "reconfigs")
	for _, f := range res.PerFabric {
		tb.AddRow(
			f.Name,
			fmt.Sprintf("%d", f.Budget),
			fmt.Sprintf("%d", f.Placed),
			fmt.Sprintf("%d", f.Migrated),
			fmt.Sprintf("%d", f.Completed),
			stats.FormatSeconds(f.MakespanSec),
			fmt.Sprintf("%.2fx", f.MeanSlowdown),
			fmt.Sprintf("%.1f%%", 100*f.Utilization),
			fmt.Sprintf("%d", f.Reconfigs),
		)
	}
	return tb
}

// FleetChurnFabrics is the canonical heterogeneous fleet for the F4
// comparison (and the short BenchmarkFabricTrace smoke): two large fast
// fabrics, one mid-size, one small slow edge fabric with cheap migration.
func FleetChurnFabrics() []wrht.FleetFabricSpec {
	return []wrht.FleetFabricSpec{
		{Name: "pod-a", Nodes: 32, Wavelengths: 16, ReconfigDelaySec: 2e-6, MigrationCostSec: 20e-3},
		{Name: "pod-b", Nodes: 32, Wavelengths: 16, ReconfigDelaySec: 2e-6, MigrationCostSec: 20e-3},
		{Name: "pod-c", Nodes: 16, Wavelengths: 8, ReconfigDelaySec: 5e-6, MigrationCostSec: 10e-3},
		{Name: "edge", Nodes: 16, Wavelengths: 4, ReconfigDelaySec: 10e-6, MigrationCostSec: 5e-3},
	}
}

// FleetChurnShapes is the canonical shape catalog for F4: three models
// whose gradient sizes span two orders of magnitude.
func FleetChurnShapes() []wrht.FleetShape {
	return []wrht.FleetShape{
		{Model: "AlexNet"},
		{Model: "ResNet50"},
		{Model: "VGG16"},
	}
}

// FleetChurnTrace is the canonical F4 arrival trace: a seeded heavy-tail
// burst process (Pareto gaps plus correlated same-instant bursts) — the
// churn-heavy regime the incremental solver and the placement layer exist
// for. The spec is fixed so every consumer prices the identical scenario.
func FleetChurnTrace() wrht.FleetTraceSpec {
	return wrht.FleetTraceSpec{
		Kind: "heavy-tail", Jobs: 4000, Seed: 1, MeanGapSec: 40e-3,
		NumShapes: 3, NumFabrics: 4, MaxWidth: 8,
	}
}

// FleetChurnComparison runs the canonical F4 trace under every placement
// policy on one shared session (so runtime curves price once) and returns
// the comparison table plus the per-fabric breakdown of the
// priority-aware run. Deterministic and byte-stable.
func FleetChurnComparison() (comparison, perFabric *stats.Table, err error) {
	ss := wrht.NewSweepSession()
	cfg := wrht.DefaultConfig(32)
	jobs, err := wrht.GenerateFleetTrace(FleetChurnTrace())
	if err != nil {
		return nil, nil, err
	}
	var results []wrht.FleetResult
	var prioAware wrht.FleetResult
	for _, placement := range []string{wrht.FleetLeastLoaded, wrht.FleetBestFit, wrht.FleetPriorityAware} {
		res, err := ss.SimulateFleet(cfg, FleetChurnFabrics(), FleetChurnShapes(), jobs,
			wrht.FleetOptions{Placement: placement, Lite: true})
		if err != nil {
			return nil, nil, fmt.Errorf("fleet %s: %w", placement, err)
		}
		results = append(results, res)
		if placement == wrht.FleetPriorityAware {
			prioAware = res
		}
	}
	return FleetPlacementTable("", results), FleetFabricTable(prioAware), nil
}
