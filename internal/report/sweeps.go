package report

import (
	"fmt"

	"wrht"
	"wrht/internal/stats"
)

// The canonical ablation grids. cmd/sweep prints them interactively and
// cmd/experiments commits them to EXPERIMENTS.md, so they are defined once
// here: editing a grid changes both surfaces together and the committed
// file cannot drift from what the command prints.
var (
	// CanonicalGroupSizes is the A3 axis (0 = the optimizer's choice).
	CanonicalGroupSizes = []int{0, 2, 3, 5, 9, 17, 33, 65, 129}
	// CanonicalWavelengths is the A6 axis.
	CanonicalWavelengths = []int{1, 2, 4, 8, 16, 32, 64, 128}
	// CanonicalMessageSizes is the A1 axis.
	CanonicalMessageSizes = []int64{64 << 10, 1 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30}
	// CanonicalScalingNodes is the E13 axis: the large-N regime (TopoOpt-scale
	// clusters) that symmetry-aware classed pricing makes routine — the paper's
	// own sweep tops out at 1024.
	CanonicalScalingNodes = []int{4096, 16384, 65536}
)

// runOn routes a sweep through the caller's session when one is supplied
// (sharing its caches and, when observed, its flight recorder) and through a
// fresh per-call session otherwise. Every canonical sweep below takes an
// optional *wrht.SweepSession for this reason; nil keeps the historical
// behavior.
func runOn(ss *wrht.SweepSession, spec wrht.SweepSpec) (*wrht.SweepResult, error) {
	if ss == nil {
		return wrht.RunSweep(spec)
	}
	return ss.RunSweep(spec)
}

// GroupSizeSweep runs the canonical group-size ablation (A3) for the model
// on cfg's ring and renders it with the plan shape per row, plus a summary
// line naming the optimizer's choice. Infeasible group sizes are skipped,
// matching the historical serial sweep.
func GroupSizeSweep(ss *wrht.SweepSession, cfg wrht.Config, model string, parallelism int) (*stats.Table, string, error) {
	res, err := runOn(ss, wrht.SweepSpec{
		Base:        cfg,
		Models:      []string{model},
		GroupSizes:  CanonicalGroupSizes,
		Parallelism: parallelism,
	})
	if err != nil {
		return nil, "", err
	}
	opt, err := res.Lookup(func(c wrht.SweepCell) bool { return c.GroupSize == 0 })
	if err != nil {
		return nil, "", err
	}
	tb := stats.NewTable(
		fmt.Sprintf("Wrht group-size sweep: %s on %d nodes (w=%d)",
			model, cfg.Nodes, cfg.Optical.Wavelengths),
		"m", "steps", "tree stripe", "time", "vs optimizer")
	for _, c := range res.Cells {
		if c.GroupSize == 0 || c.Err != nil {
			continue // the optimizer row is the summary; infeasible m for this w
		}
		cc := cfg
		cc.WrhtGroupSize = c.GroupSize
		p, err := wrht.Plan(cc)
		if err != nil {
			return nil, "", err
		}
		tb.AddRow(fmt.Sprintf("%d", c.GroupSize), fmt.Sprintf("%d", p.Steps),
			fmt.Sprintf("x%d", p.TreeStripe),
			stats.FormatSeconds(c.Seconds),
			fmt.Sprintf("%.2fx", c.Seconds/opt.Seconds))
	}
	autoPlan, err := wrht.Plan(cfg)
	if err != nil {
		return nil, "", err
	}
	summary := fmt.Sprintf("optimizer choice: m=%d, %s (%s)",
		autoPlan.GroupSize, stats.FormatSeconds(opt.Seconds), autoPlan.Description)
	return tb, summary, nil
}

// WavelengthSweep runs the canonical wavelength-budget sweep (A6): Wrht vs
// the unstriped optical ring for the model at every budget.
func WavelengthSweep(ss *wrht.SweepSession, nodes int, model string, parallelism int) (*stats.Table, error) {
	res, err := runOn(ss, wrht.SweepSpec{
		Base:        wrht.DefaultConfig(nodes),
		Wavelengths: CanonicalWavelengths,
		Models:      []string{model},
		Algorithms:  []wrht.Algorithm{wrht.AlgWrht, wrht.AlgORing},
		Parallelism: parallelism,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	tb := stats.NewTable(
		fmt.Sprintf("wavelength sweep: %s on %d nodes", model, nodes),
		"w", "wrht", "o-ring", "reduction")
	// Pair cells by key rather than position so the table survives grid
	// edits (extra algorithms or models) without silent mis-pairing.
	for _, w := range CanonicalWavelengths {
		rw, err := res.Lookup(func(c wrht.SweepCell) bool {
			return c.Wavelengths == w && c.Algorithm == wrht.AlgWrht
		})
		if err != nil {
			return nil, err
		}
		ro, err := res.Lookup(func(c wrht.SweepCell) bool {
			return c.Wavelengths == w && c.Algorithm == wrht.AlgORing
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", w),
			stats.FormatSeconds(rw.Seconds),
			stats.FormatSeconds(ro.Seconds),
			fmt.Sprintf("%.1f%%", 100*(1-rw.Seconds/ro.Seconds)))
	}
	return tb, nil
}

// ScalingSweep runs the canonical large-N scaling grid (E13): the paper's
// four algorithms at N ∈ {4096, 16384, 65536} for the model. These points
// price through the same exact simulate paths as the Figure-2 grid — the
// symmetry-aware classed pricer makes them ~O(N) per point instead of O(N²),
// which is what admits them to a routine sweep at all.
func ScalingSweep(ss *wrht.SweepSession, model string, parallelism int) (*stats.Table, error) {
	res, err := runOn(ss, wrht.SweepSpec{
		Nodes:       CanonicalScalingNodes,
		Models:      []string{model},
		Algorithms:  wrht.PaperAlgorithms(),
		Parallelism: parallelism,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	tb := stats.NewTable(
		fmt.Sprintf("large-N scaling: %s, classed pricing", model),
		"nodes", "e-ring", "rd", "o-ring", "wrht", "wrht vs o-ring")
	for _, n := range CanonicalScalingNodes {
		get := func(alg wrht.Algorithm) (wrht.SweepCell, error) {
			return res.Lookup(func(c wrht.SweepCell) bool {
				return c.Nodes == n && c.Algorithm == alg
			})
		}
		er, err := get(wrht.AlgERing)
		if err != nil {
			return nil, err
		}
		rd, err := get(wrht.AlgRD)
		if err != nil {
			return nil, err
		}
		or, err := get(wrht.AlgORing)
		if err != nil {
			return nil, err
		}
		wr, err := get(wrht.AlgWrht)
		if err != nil {
			return nil, err
		}
		tb.AddRow(fmt.Sprintf("%d", n),
			stats.FormatSeconds(er.Seconds),
			stats.FormatSeconds(rd.Seconds),
			stats.FormatSeconds(or.Seconds),
			stats.FormatSeconds(wr.Seconds),
			fmt.Sprintf("%.1f%%", 100*(1-wr.Seconds/or.Seconds)))
	}
	return tb, nil
}

// SizeSweep runs the canonical message-size crossover (A1): Wrht vs the
// fully striped optical ring, the bandwidth-optimal bound on any ring
// schedule.
func SizeSweep(ss *wrht.SweepSession, nodes, parallelism int) (*stats.Table, error) {
	res, err := runOn(ss, wrht.SweepSpec{
		Base:         wrht.DefaultConfig(nodes),
		MessageBytes: CanonicalMessageSizes,
		Algorithms:   []wrht.Algorithm{wrht.AlgWrht, wrht.AlgORingStriped},
		Parallelism:  parallelism,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Err(); err != nil {
		return nil, err
	}
	tb := stats.NewTable(
		fmt.Sprintf("message-size sweep on %d nodes: Wrht vs striped optical ring", nodes),
		"bytes", "wrht", "o-ring-striped", "winner")
	for _, bytes := range CanonicalMessageSizes {
		rw, err := res.Lookup(func(c wrht.SweepCell) bool {
			return c.Bytes == bytes && c.Algorithm == wrht.AlgWrht
		})
		if err != nil {
			return nil, err
		}
		rs, err := res.Lookup(func(c wrht.SweepCell) bool {
			return c.Bytes == bytes && c.Algorithm == wrht.AlgORingStriped
		})
		if err != nil {
			return nil, err
		}
		winner := "wrht"
		if rs.Seconds < rw.Seconds {
			winner = "o-ring-striped"
		}
		tb.AddRow(stats.FormatBytes(rw.Bytes),
			stats.FormatSeconds(rw.Seconds),
			stats.FormatSeconds(rs.Seconds),
			winner)
	}
	return tb, nil
}
