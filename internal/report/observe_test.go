package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wrht"
)

// churnElastic runs the canonical churn mix under the F2 elastic policy on
// an observed session and returns the session plus the fabric result.
func churnElastic(t *testing.T) (*wrht.SweepSession, *wrht.Observer, wrht.FabricResult) {
	t.Helper()
	ss := wrht.NewSweepSession()
	ob := ss.Observe()
	res, err := ss.SimulateFabric(wrht.DefaultConfig(64), ChurnMix().Jobs, wrht.FabricPolicy{
		Kind: wrht.FabricElastic, ReconfigDelaySec: 2e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ss, ob, res
}

// traceEvent is the subset of the Chrome trace-event schema the golden test
// reads back.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestChurnMixPerfettoGolden pins the per-job event counts of the F2 elastic
// churn run as read back from the exported Perfetto trace: the straggler
// widens through 6 reconfigurations, every later burst job narrows then
// restores (2 reconfigs each), the first burst job finishes untouched, and
// nothing is ever preempted. The counts are asserted on the exported JSON —
// not the in-memory result — so the export path itself is under test.
func TestChurnMixPerfettoGolden(t *testing.T) {
	_, ob, res := churnElastic(t)

	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	// Resolve the fabric process and its job-named threads from metadata.
	procName := map[int]string{}
	threadName := map[[2]int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			continue
		}
		name, _ := ev.Args["name"].(string)
		switch ev.Name {
		case "process_name":
			procName[ev.Pid] = name
		case "thread_name":
			threadName[[2]int{ev.Pid, ev.Tid}] = name
		}
	}

	// Count instant events (fabric transitions) per (job, kind).
	counts := map[string]map[string]int{}
	total := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "i" || !strings.HasPrefix(procName[ev.Pid], "fabric ") {
			continue
		}
		job := threadName[[2]int{ev.Pid, ev.Tid}]
		if counts[job] == nil {
			counts[job] = map[string]int{}
		}
		counts[job][ev.Name]++
		total++
	}

	if total != len(res.Events) {
		t.Fatalf("trace carries %d fabric instants, result has %d events", total, len(res.Events))
	}
	// Golden per-job counts for the fixed mix (see ChurnMix): reconfigs per
	// job, exactly one arrive/start/finish each, zero preemptions anywhere.
	wantReconfigs := map[string]int{
		"burst0-alexnet": 0,
		"burst1-alexnet": 2, "burst2-alexnet": 2, "burst3-alexnet": 2,
		"burst4-alexnet": 2, "burst5-alexnet": 2, "burst6-alexnet": 2,
		"burst7-alexnet": 2,
		"straggler-vgg":  6,
	}
	for job, want := range wantReconfigs {
		c := counts[job]
		if c == nil {
			t.Fatalf("job %s missing from trace (jobs seen: %v)", job, counts)
		}
		if c["reconfig"] != want {
			t.Errorf("%s: %d reconfig instants in trace, want %d", job, c["reconfig"], want)
		}
		if c["arrive"] != 1 || c["start"] != 1 || c["finish"] != 1 {
			t.Errorf("%s: arrive/start/finish = %d/%d/%d, want 1/1/1",
				job, c["arrive"], c["start"], c["finish"])
		}
		if c["preempt"] != 0 {
			t.Errorf("%s: %d preempt instants, want 0 (elastic never preempts here)", job, c["preempt"])
		}
	}
	if len(counts) != len(wantReconfigs) {
		t.Errorf("trace has %d fabric job tracks, want %d", len(counts), len(wantReconfigs))
	}
}

// TestChurnObservabilityTables: the F3 tables render with one utilization
// row per 8-λ bucket and a timeline that includes the straggler's
// progressive widening.
func TestChurnObservabilityTables(t *testing.T) {
	util, timeline, err := ChurnObservability()
	if err != nil {
		t.Fatal(err)
	}
	utilMD := util.Markdown()
	if got := strings.Count(utilMD, "λ"); got == 0 {
		t.Fatalf("utilization table has no wavelength rows:\n%s", utilMD)
	}
	if !strings.Contains(utilMD, "λ00–07") || !strings.Contains(utilMD, "λ56–63") {
		t.Fatalf("utilization table missing bucket rows:\n%s", utilMD)
	}
	tlMD := timeline.Markdown()
	for _, want := range []string{"straggler-vgg", "reconfig", "finish"} {
		if !strings.Contains(tlMD, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tlMD)
		}
	}
}

// TestFabricChurnColumnsAgreeAcrossFormats: the policy and per-job tables
// carry the same preempts/reconfigs numbers in markdown and CSV (both render
// from one shared stats.Table), and those numbers match the golden mix.
func TestFabricChurnColumnsAgreeAcrossFormats(t *testing.T) {
	_, _, res := churnElastic(t)

	pt := FabricPolicyTable("churn", []wrht.FabricResult{res})
	md, csv := pt.Markdown(), pt.CSV()
	// Totals over the golden mix: 7 burst jobs × 2 + straggler × 6 = 20
	// reconfigs, 0 preempts; both formats must carry them.
	for _, format := range []string{md, csv} {
		if !strings.Contains(format, "preempts") || !strings.Contains(format, "reconfigs") {
			t.Fatalf("policy table missing churn columns:\n%s", format)
		}
	}
	mdRow := lastDataRow(t, md, "|")
	csvRow := lastDataRow(t, csv, ",")
	wantPre, wantRec := "0", "20"
	if mdRow[8] != wantPre || mdRow[9] != wantRec {
		t.Fatalf("markdown preempts/reconfigs = %s/%s, want %s/%s", mdRow[8], mdRow[9], wantPre, wantRec)
	}
	if csvRow[8] != wantPre || csvRow[9] != wantRec {
		t.Fatalf("CSV preempts/reconfigs = %s/%s, want %s/%s", csvRow[8], csvRow[9], wantPre, wantRec)
	}

	jt := FabricJobsTable(res)
	jmd, jcsv := jt.Markdown(), jt.CSV()
	for _, format := range []string{jmd, jcsv} {
		// The straggler's row carries its 6 reconfigurations in both formats.
		found := false
		for _, line := range strings.Split(format, "\n") {
			if strings.Contains(line, "straggler-vgg") && strings.Contains(line, "6") {
				found = true
			}
		}
		if !found {
			t.Fatalf("jobs table missing straggler reconfig count:\n%s", format)
		}
	}
}

// lastDataRow splits the last non-empty line of a rendered table on sep and
// trims each cell.
func lastDataRow(t *testing.T, rendered, sep string) []string {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(rendered), "\n")
	cells := strings.Split(lines[len(lines)-1], sep)
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		c = strings.TrimSpace(c)
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}
