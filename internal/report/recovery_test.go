package report

import (
	"strings"
	"testing"
)

// TestFleetRecoveryGridPinned pins the F5 contract: the canonical grid is
// byte-stable across regenerations, and at every failure rate
// MigrateOnFailure delivers strictly more goodput than FailFast (it saves
// the jobs FailFast kills) while FailFast is the only policy that kills.
func TestFleetRecoveryGridPinned(t *testing.T) {
	rows, err := FleetRecoveryRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 3 rates x 3 policies", len(rows))
	}
	goodput := map[string]map[string]float64{}
	for _, r := range rows {
		if goodput[r.Rate] == nil {
			goodput[r.Rate] = map[string]float64{}
		}
		goodput[r.Rate][r.Recovery] = r.Goodput()
		switch r.Recovery {
		case "fail-fast":
			if r.Result.Killed == 0 {
				t.Fatalf("%s @%s killed nothing", r.Recovery, r.Rate)
			}
		default:
			if r.Result.Killed != 0 {
				t.Fatalf("%s @%s killed %d jobs", r.Recovery, r.Rate, r.Result.Killed)
			}
			if r.Result.Retries == 0 {
				t.Fatalf("%s @%s never retried", r.Recovery, r.Rate)
			}
		}
		if !(r.Result.Availability > 0 && r.Result.Availability < 1) {
			t.Fatalf("%s @%s availability %v", r.Recovery, r.Rate, r.Result.Availability)
		}
	}
	for rate, byPolicy := range goodput {
		if byPolicy["migrate"] <= byPolicy["fail-fast"] {
			t.Fatalf("@%s: migrate goodput %.2f <= fail-fast %.2f",
				rate, byPolicy["migrate"], byPolicy["fail-fast"])
		}
	}

	again, err := FleetRecoveryRows()
	if err != nil {
		t.Fatal(err)
	}
	a := FleetRecoveryTable("", rows).Markdown()
	b := FleetRecoveryTable("", again).Markdown()
	if a != b {
		t.Fatal("F5 grid is not byte-stable across regenerations")
	}
	if !strings.Contains(a, "job/s") {
		t.Fatalf("goodput column missing:\n%s", a)
	}
}
