package report

import (
	"math"
	"strings"
	"testing"

	"wrht"
)

// golden pins the reproduced Figure-2 values (milliseconds) against
// regressions. The simulators are deterministic, so these are exact to
// float precision; the tolerance absorbs only formatting.
var golden = []struct {
	model string
	nodes int
	alg   wrht.Algorithm
	ms    float64
}{
	{"VGG16", 1024, wrht.AlgERing, 98.7},
	{"VGG16", 1024, wrht.AlgRD, 442.8},
	{"VGG16", 1024, wrht.AlgORing, 360.0},
	{"VGG16", 1024, wrht.AlgWrht, 36.0},
	{"AlexNet", 128, wrht.AlgWrht, 11.3},
	{"AlexNet", 1024, wrht.AlgRD, 199.7},
	{"ResNet50", 1024, wrht.AlgORing, 71.6},
	{"GoogLeNet", 128, wrht.AlgERing, 5.7},
}

func TestFigure2Golden(t *testing.T) {
	cells, err := Figure2(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4*4*4 {
		t.Fatalf("grid has %d cells", len(cells))
	}
	for _, g := range golden {
		sec, err := Lookup(cells, g.model, g.nodes, g.alg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sec*1e3-g.ms) > 0.05+g.ms*0.001 {
			t.Errorf("%s/%d/%s = %.2f ms, golden %.1f ms", g.model, g.nodes, g.alg, sec*1e3, g.ms)
		}
	}
}

func TestHeadlineGolden(t *testing.T) {
	cells, err := Figure2(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Headline(cells)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned reproduction values (paper: 91.86% vs O-Ring, 75.76% vs
	// electrical).
	if math.Abs(r.VsORing-0.9159) > 0.002 {
		t.Errorf("vs O-Ring = %.4f, golden 0.9159", r.VsORing)
	}
	if math.Abs(r.VsERing-0.7214) > 0.002 {
		t.Errorf("vs E-Ring = %.4f, golden 0.7214", r.VsERing)
	}
	if math.Abs(r.VsElectric-0.8732) > 0.002 {
		t.Errorf("vs electrical mean = %.4f, golden 0.8732", r.VsElectric)
	}
	if math.Abs(r.VsRD-0.9166) > 0.002 {
		t.Errorf("vs RD = %.4f, golden 0.9166", r.VsRD)
	}
}

func TestExtensionFigureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("large-gradient grid")
	}
	cells, err := ExtensionFigure(0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's ordering must carry over to transformer-scale gradients.
	for _, m := range []string{"BERT-Large", "GPT-2-XL"} {
		for _, n := range Scales {
			w, err := Lookup(cells, m, n, wrht.AlgWrht)
			if err != nil {
				t.Fatal(err)
			}
			e, _ := Lookup(cells, m, n, wrht.AlgERing)
			o, _ := Lookup(cells, m, n, wrht.AlgORing)
			if !(w < e && e < o) {
				t.Errorf("%s n=%d: ordering broken (wrht=%.3g e=%.3g o=%.3g)", m, n, w, e, o)
			}
		}
	}
}

func TestLookupMissing(t *testing.T) {
	if _, err := Lookup(nil, "x", 1, wrht.AlgWrht); err == nil {
		t.Fatal("missing cell accepted")
	}
}

func TestTablesRender(t *testing.T) {
	cells := []Cell{
		{Model: "VGG16", Nodes: 128, Alg: wrht.AlgWrht, Seconds: 0.025},
		{Model: "VGG16", Nodes: 256, Alg: wrht.AlgWrht, Seconds: 0.030},
	}
	tbs := Tables(cells, []wrht.Algorithm{wrht.AlgWrht})
	if len(tbs) != 1 {
		t.Fatalf("%d tables", len(tbs))
	}
	s := tbs[0].String()
	if !strings.Contains(s, "VGG16") || !strings.Contains(s, "25.0") {
		t.Fatalf("table missing content:\n%s", s)
	}
}

func TestHeadlineIncompleteGrid(t *testing.T) {
	cells := []Cell{{Model: "VGG16", Nodes: 128, Alg: wrht.AlgWrht, Seconds: 1}}
	if _, err := Headline(cells); err == nil {
		t.Fatal("incomplete grid accepted")
	}
}
