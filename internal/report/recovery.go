package report

import (
	"fmt"

	"wrht"
	"wrht/internal/stats"
)

// FleetRecoveryRow labels one faulty fleet run for the F5 table.
type FleetRecoveryRow struct {
	// Recovery is the wrht.Recovery* policy the run used; Rate labels the
	// failure-rate multiplier (e.g. "1.0x", or "-" for single-rate runs).
	Recovery string
	Rate     string
	// SpanSec is the trace's arrival span — the policy-independent
	// denominator for Goodput.
	SpanSec float64
	Result  wrht.FleetResult
}

// Goodput is the row's delivered-job throughput in jobs per second of the
// workload's arrival span. The denominator is fixed per trace rather than
// per run: normalizing by each run's own makespan would reward FailFast
// for ending early by killing stragglers, when the work it dropped is
// exactly what the recovery policies trade against each other.
func (r FleetRecoveryRow) Goodput() float64 {
	if r.SpanSec <= 0 {
		return 0
	}
	return float64(r.Result.Completed) / r.SpanSec
}

// traceSpan is the arrival span of a trace (its last arrival instant).
func traceSpan(jobs []wrht.FleetJob) float64 {
	span := 0.0
	for _, j := range jobs {
		if j.ArrivalSec > span {
			span = j.ArrivalSec
		}
	}
	return span
}

// FleetRecoveryTable renders faulty fleet runs side by side: survival
// accounting (killed / failed / retries / lost work), goodput, tail
// latency, and delivered availability.
func FleetRecoveryTable(title string, rows []FleetRecoveryRow) *stats.Table {
	tb := stats.NewTable(title,
		"recovery", "rate", "completed", "killed", "failed", "retries",
		"lost work", "goodput", "p99 slowdown", "availability")
	for _, r := range rows {
		res := r.Result
		p99 := "-"
		if res.P99Slowdown > 0 {
			p99 = fmt.Sprintf("%.2fx", res.P99Slowdown)
		}
		tb.AddRow(
			r.Recovery,
			r.Rate,
			fmt.Sprintf("%d/%d", res.Completed, res.Jobs),
			fmt.Sprintf("%d", res.Killed),
			fmt.Sprintf("%d", res.FailedJobs),
			fmt.Sprintf("%d", res.Retries),
			stats.FormatSeconds(res.LostWorkSec),
			fmt.Sprintf("%.1f job/s", r.Goodput()),
			p99,
			fmt.Sprintf("%.2f%%", 100*res.Availability),
		)
	}
	return tb
}

// FleetRecoveryPlan is the canonical F5 failure model at a given rate
// multiplier: all three fault classes (wavelength darkening, transient job
// crashes, whole-fabric outages) seeded over the first 60 s of the F4
// churn trace's ~120 s arrival span, so every recovered job has arrival
// slack to drain in. rate scales mean failure frequency; repair times stay
// fixed, so higher rates strictly darken more capacity.
func FleetRecoveryPlan(rate float64) wrht.FaultPlan {
	return wrht.FaultPlan{
		Seed:              5,
		HorizonSec:        60,
		WavelengthMTBFSec: 40 / rate,
		WavelengthMTTRSec: 1.5,
		JobFaultMTBFSec:   25 / rate,
		FabricMTBFSec:     90 / rate,
		FabricMTTRSec:     8,
	}
}

// FleetRecoveryRows runs the canonical F5 grid — the F4 churn trace under
// every recovery policy at 0.5x, 1x, and 2x failure rates, with jobs
// checkpointing every 50 ms of service — on one shared session.
// Deterministic and byte-stable.
func FleetRecoveryRows() ([]FleetRecoveryRow, error) {
	ss := wrht.NewSweepSession()
	cfg := wrht.DefaultConfig(32)
	spec := FleetChurnTrace()
	jobs, err := wrht.GenerateFleetTrace(spec)
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		jobs[i].CheckpointEverySec = 50e-3
	}
	span := traceSpan(jobs)
	var rows []FleetRecoveryRow
	for _, rate := range []float64{0.5, 1, 2} {
		for _, recovery := range []string{
			wrht.RecoveryFailFast, wrht.RecoveryRetrySameFabric, wrht.RecoveryMigrateOnFailure,
		} {
			res, err := ss.SimulateFleet(cfg, FleetChurnFabrics(), FleetChurnShapes(), jobs,
				wrht.FleetOptions{
					Placement: wrht.FleetBestFit,
					Faults:    FleetRecoveryPlan(rate),
					Recovery:  recovery,
				})
			if err != nil {
				return nil, fmt.Errorf("fleet recovery %s @%gx: %w", recovery, rate, err)
			}
			rows = append(rows, FleetRecoveryRow{
				Recovery: recovery,
				Rate:     fmt.Sprintf("%.1fx", rate),
				SpanSec:  span,
				Result:   res,
			})
		}
	}
	return rows, nil
}

// FleetRecoveryComparison renders the canonical F5 grid.
func FleetRecoveryComparison() (*stats.Table, error) {
	rows, err := FleetRecoveryRows()
	if err != nil {
		return nil, err
	}
	return FleetRecoveryTable("", rows), nil
}
