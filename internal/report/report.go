// Package report assembles the paper's evaluation artifacts from the public
// API: the Figure-2 grid, the headline reductions, and the transformer
// extension figure. cmd/figure2 renders what this package computes, and a
// golden test pins the reproduced values against regressions (the simulators
// are deterministic, so the numbers are exact).
package report

import (
	"fmt"

	"wrht"
	"wrht/internal/stats"
)

// Scales are the paper's Figure-2 worker counts.
var Scales = []int{128, 256, 512, 1024}

// Cell is one bar of a figure: one (model, nodes, algorithm) measurement.
type Cell struct {
	Model   string
	Nodes   int
	Alg     wrht.Algorithm
	Seconds float64
}

// Figure2 measures the paper's Figure 2 (4 models × 4 scales × 4 algorithms)
// with the default configuration. parallelism bounds the engine's worker
// pool (<= 0 selects GOMAXPROCS); the cells are identical either way.
func Figure2(parallelism int) ([]Cell, error) {
	return grid(wrht.Models(), Scales, wrht.PaperAlgorithms(), parallelism)
}

// ExtensionFigure measures the transformer extension workloads (BERT-Large,
// GPT-2 XL) on the same grid — gradients 2.4×–11× larger than VGG16.
func ExtensionFigure(parallelism int) ([]Cell, error) {
	models := []wrht.ModelSpec{wrht.MustModel("BERT-Large"), wrht.MustModel("GPT-2-XL")}
	return grid(models, Scales, wrht.PaperAlgorithms(), parallelism)
}

func grid(models []wrht.ModelSpec, scales []int, algs []wrht.Algorithm, parallelism int) ([]Cell, error) {
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	// The concurrent engine prices the whole grid through the exact
	// CommunicationTime path with a shared plan cache; cells come back in
	// deterministic grid order, and every consumer looks cells up by
	// (model, nodes, algorithm) key.
	res, err := wrht.RunSweep(wrht.SweepSpec{
		Nodes:       scales,
		Models:      names,
		Algorithms:  algs,
		Parallelism: parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	out := make([]Cell, 0, len(res.Cells))
	for _, c := range res.Cells {
		if c.Err != nil {
			return nil, fmt.Errorf("report: %s/%d/%s: %w", c.Model, c.Nodes, c.Algorithm, c.Err)
		}
		out = append(out, Cell{Model: c.Model, Nodes: c.Nodes, Alg: c.Algorithm, Seconds: c.Seconds})
	}
	return out, nil
}

// Lookup returns the cell's seconds, or an error if absent.
func Lookup(cells []Cell, model string, nodes int, alg wrht.Algorithm) (float64, error) {
	for _, c := range cells {
		if c.Model == model && c.Nodes == nodes && c.Alg == alg {
			return c.Seconds, nil
		}
	}
	return 0, fmt.Errorf("report: no cell %s/%d/%s", model, nodes, alg)
}

// Reductions are the paper's headline aggregate metrics.
type Reductions struct {
	VsERing    float64 // mean reduction vs E-Ring
	VsRD       float64 // mean reduction vs RD
	VsElectric float64 // mean reduction vs mean(E-Ring, RD); paper: 0.7576
	VsORing    float64 // mean reduction vs O-Ring;            paper: 0.9186
}

// Headline computes the mean reductions of WRHT over the baselines across
// the grid.
func Headline(cells []Cell) (Reductions, error) {
	type key struct {
		model string
		nodes int
	}
	byConfig := map[key]map[wrht.Algorithm]float64{}
	var keys []key // first-seen order: deterministic, unlike map iteration
	for _, c := range cells {
		k := key{c.Model, c.Nodes}
		if byConfig[k] == nil {
			byConfig[k] = map[wrht.Algorithm]float64{}
			keys = append(keys, k)
		}
		byConfig[k][c.Alg] = c.Seconds
	}
	// Iterate in input order, not map order: Mean sums in slice order, and
	// float addition is not associative, so map iteration would perturb the
	// headline numbers at the last ulp from run to run.
	var vsE, vsRD, vsElec, vsO []float64
	for _, k := range keys {
		row := byConfig[k]
		w, okW := row[wrht.AlgWrht]
		e, okE := row[wrht.AlgERing]
		r, okR := row[wrht.AlgRD]
		o, okO := row[wrht.AlgORing]
		if !okW || !okE || !okR || !okO {
			return Reductions{}, fmt.Errorf("report: incomplete grid at %v", k)
		}
		vsE = append(vsE, 1-w/e)
		vsRD = append(vsRD, 1-w/r)
		vsElec = append(vsElec, 1-w/((e+r)/2))
		vsO = append(vsO, 1-w/o)
	}
	return Reductions{
		VsERing:    stats.Mean(vsE),
		VsRD:       stats.Mean(vsRD),
		VsElectric: stats.Mean(vsElec),
		VsORing:    stats.Mean(vsO),
	}, nil
}

// Tables renders one stats.Table per model, in milliseconds, Figure-2 style.
func Tables(cells []Cell, algs []wrht.Algorithm) []*stats.Table {
	modelOrder := []string{}
	seen := map[string]bool{}
	for _, c := range cells {
		if !seen[c.Model] {
			seen[c.Model] = true
			modelOrder = append(modelOrder, c.Model)
		}
	}
	var out []*stats.Table
	for i, m := range modelOrder {
		headers := []string{"nodes"}
		for _, a := range algs {
			headers = append(headers, string(a))
		}
		tb := stats.NewTable(
			fmt.Sprintf("Figure 2(%c): %s, communication time [ms]", 'a'+rune(i), m),
			headers...)
		for _, n := range Scales {
			row := []string{fmt.Sprintf("%d", n)}
			for _, a := range algs {
				sec, err := Lookup(cells, m, n, a)
				if err != nil {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.1f", sec*1e3))
			}
			tb.AddRow(row...)
		}
		out = append(out, tb)
	}
	return out
}
