package report

import (
	"strings"
	"testing"

	"wrht"
)

func fabricMix() []wrht.JobSpec {
	return []wrht.JobSpec{
		{Name: "cv", Model: "ResNet50"},
		{Name: "nlp", Model: "VGG16", ArrivalSec: 1e-3, Priority: 1},
		{Name: "tiny", Bytes: 1 << 20, ArrivalSec: 2e-3, MaxWavelengths: 2},
	}
}

func TestFabricPolicyTable(t *testing.T) {
	cfg := wrht.DefaultConfig(16)
	cfg.Optical.Wavelengths = 16
	results, err := wrht.CompareFabricPolicies(cfg, fabricMix(), wrht.FabricPolicies())
	if err != nil {
		t.Fatal(err)
	}
	tb := FabricPolicyTable("policy comparison", results)
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"static", "first-fit", "priority", "elastic", "fairness"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if csv := tb.CSV(); !strings.Contains(csv, "policy,makespan") {
		t.Fatalf("bad CSV header:\n%s", csv)
	}
}

// TestChurnMixElasticStrictlyImprovesOnFirstFit pins the PR's headline
// claim (EXPERIMENTS.md F2): on the canonical departure-heavy mix the
// elastic policy strictly improves both makespan and mean slowdown over
// first-fit.
func TestChurnMixElasticStrictlyImprovesOnFirstFit(t *testing.T) {
	cfg := wrht.DefaultConfig(64)
	results, err := wrht.CompareFabricPolicies(cfg, ChurnMix().Jobs, []wrht.FabricPolicy{
		{Kind: wrht.FabricFirstFit},
		{Kind: wrht.FabricElastic, ReconfigDelaySec: 2e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	ff, el := results[0], results[1]
	if el.MakespanSec >= ff.MakespanSec {
		t.Fatalf("elastic makespan %v >= first-fit %v", el.MakespanSec, ff.MakespanSec)
	}
	if el.MeanSlowdown >= ff.MeanSlowdown {
		t.Fatalf("elastic mean slowdown %v >= first-fit %v", el.MeanSlowdown, ff.MeanSlowdown)
	}
}

func TestFabricJobsTable(t *testing.T) {
	cfg := wrht.DefaultConfig(16)
	cfg.Optical.Wavelengths = 16
	jobs := append(fabricMix(),
		wrht.JobSpec{Name: "toowide", Bytes: 1 << 20, MinWavelengths: 9})
	res, err := wrht.SimulateFabric(cfg, jobs,
		wrht.FabricPolicy{Kind: wrht.FabricStatic, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	tb := FabricJobsTable(res)
	if len(tb.Rows) != len(jobs) {
		t.Fatalf("%d rows for %d jobs", len(tb.Rows), len(jobs))
	}
	if out := tb.String(); !strings.Contains(out, "rejected") {
		t.Fatalf("rejected job not marked:\n%s", out)
	}
}
