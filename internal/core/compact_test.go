package core

import (
	"reflect"
	"testing"
)

// TestCompactScheduleMatchesBoxed: the direct columnar lowering produces
// exactly the boxed lowering, across plan shapes (policies, striping,
// wrap-avoidance, explicit and automatic group sizes).
func TestCompactScheduleMatchesBoxed(t *testing.T) {
	cases := []struct {
		n, w int
		opts Options
	}{
		{8, 4, Options{M: 3, Policy: A2AFormula}},
		{8, 4, Options{M: 3, Policy: A2AGreedy}},
		{24, 8, Options{M: 5, Policy: A2AFormula, Striping: true}},
		{24, 8, Options{M: 5, Policy: A2AFormula, AvoidWrap: true}},
		{30, 16, Options{M: 0, Policy: A2AFormula, Striping: true, Cost: DefaultCostParams()}},
		{64, 8, Options{M: 9, Policy: A2AGreedy, Striping: true}},
		{7, 3, Options{M: 2, Policy: A2AFormula}},
	}
	for _, c := range cases {
		p, err := BuildPlan(c.n, c.w, c.opts)
		if err != nil {
			t.Fatalf("n=%d w=%d: %v", c.n, c.w, err)
		}
		for _, elems := range []int{0, 1, 100} {
			boxed, err := p.Schedule(elems)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := p.CompactSchedule(elems)
			if err != nil {
				t.Fatal(err)
			}
			back := cs.Expand()
			// Expand reconstructs empty steps as nil transfer slices.
			for i := range boxed.Steps {
				if len(boxed.Steps[i].Transfers) == 0 {
					boxed.Steps[i].Transfers = nil
				}
				if len(back.Steps[i].Transfers) == 0 {
					back.Steps[i].Transfers = nil
				}
			}
			if !reflect.DeepEqual(back, boxed) {
				t.Fatalf("n=%d w=%d m=%d elems=%d: compact lowering diverges from boxed",
					c.n, c.w, p.M, elems)
			}
			cs.Release()
		}
	}
}

// TestClassScheduleMatchesBoxed: the direct classed lowering — uniform
// levels as certified orbit steps, ragged levels and the all-to-all
// materialized — expands to exactly the boxed lowering, across plan shapes.
func TestClassScheduleMatchesBoxed(t *testing.T) {
	cases := []struct {
		n, w int
		opts Options
	}{
		{8, 4, Options{M: 3, Policy: A2AFormula}},
		{9, 4, Options{M: 3, Policy: A2AFormula}}, // uniform 3|9 levels
		{8, 4, Options{M: 3, Policy: A2AGreedy}},
		{16, 8, Options{M: 4, Policy: A2AFormula, Striping: true}}, // uniform 4|16
		{24, 8, Options{M: 5, Policy: A2AFormula, Striping: true}},
		{24, 8, Options{M: 5, Policy: A2AFormula, AvoidWrap: true}},
		{30, 16, Options{M: 0, Policy: A2AFormula, Striping: true, Cost: DefaultCostParams()}},
		{64, 8, Options{M: 9, Policy: A2AGreedy, Striping: true}},
		{7, 3, Options{M: 2, Policy: A2AFormula}},
	}
	for _, c := range cases {
		p, err := BuildPlan(c.n, c.w, c.opts)
		if err != nil {
			t.Fatalf("n=%d w=%d: %v", c.n, c.w, err)
		}
		for _, elems := range []int{0, 1, 100} {
			boxed, err := p.Schedule(elems)
			if err != nil {
				t.Fatal(err)
			}
			cls, err := p.ClassSchedule(elems)
			if err != nil {
				t.Fatal(err)
			}
			back := cls.Expand()
			for i := range boxed.Steps {
				if len(boxed.Steps[i].Transfers) == 0 {
					boxed.Steps[i].Transfers = nil
				}
				if len(back.Steps[i].Transfers) == 0 {
					back.Steps[i].Transfers = nil
				}
			}
			if !reflect.DeepEqual(back, boxed) {
				t.Fatalf("n=%d w=%d m=%d elems=%d: classed lowering diverges from boxed",
					c.n, c.w, p.M, elems)
			}
			cls.Release()
		}
	}
}

// TestClassScheduleCertifiesUniformLevels: when the node count is an exact
// power of the group size, every tree level is uniform and must carry the
// symmetry certificate (the large-N fast path depends on it).
func TestClassScheduleCertifiesUniformLevels(t *testing.T) {
	p, err := BuildPlan(27, 8, Options{M: 3, Policy: A2AFormula})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := p.ClassSchedule(81)
	if err != nil {
		t.Fatal(err)
	}
	defer cls.Release()
	symSteps := 0
	for s := 0; s < cls.NumSteps(); s++ {
		if _, _, _, _, ok := cls.Sym(s); ok {
			symSteps++
		}
	}
	// 27 = 3³ with m=3: levels 27→9 and 9→3 are uniform in both stages; the
	// final 3-rep stage ends in the all-to-all (materialized).
	if symSteps < 4 {
		t.Fatalf("only %d certified steps of %d; uniform levels lost their certificate",
			symSteps, cls.NumSteps())
	}
}

// TestCompactScheduleRejectsNegativeElems mirrors Schedule's validation.
func TestCompactScheduleRejectsNegativeElems(t *testing.T) {
	p, err := BuildPlan(8, 4, Options{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CompactSchedule(-1); err == nil {
		t.Fatal("negative elems accepted")
	}
}

// TestPlanSigDeterminesSchedule: plans built through different paths with
// equal signatures lower to identical schedules (the schedule cache's
// soundness condition).
func TestPlanSigDeterminesSchedule(t *testing.T) {
	// The optimizer's choice, and the same (m, policy) requested explicitly.
	auto, err := BuildPlan(30, 16, Options{Policy: A2AFormula, Striping: true, Cost: DefaultCostParams()})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := BuildPlan(30, 16, Options{
		M: auto.M, Policy: auto.Policy, Striping: true, Cost: DefaultCostParams(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Sig() != explicit.Sig() {
		t.Fatalf("sigs differ: %+v vs %+v", auto.Sig(), explicit.Sig())
	}
	a, err := auto.Schedule(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.Schedule(64)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal signatures lowered to different schedules")
	}
	// Distinct shapes must have distinct signatures.
	other, err := BuildPlan(30, 16, Options{M: 2, Policy: A2AFormula, Striping: true})
	if err != nil {
		t.Fatal(err)
	}
	if other.M != auto.M && other.Sig() == auto.Sig() {
		t.Fatal("different plans share a signature")
	}
}

// TestChooseMWithBuilderEquivalence: routing candidate builds through an
// arbitrary builder yields exactly ChooseM's plan.
func TestChooseMWithBuilderEquivalence(t *testing.T) {
	opts := DefaultOptions()
	direct, err := ChooseM(48, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	injected, err := ChooseMWith(48, 16, opts, func(n, w int, o Options) (*Plan, error) {
		calls++
		if o.M == 0 {
			t.Fatal("optimizer asked the builder for an automatic group size")
		}
		return BuildPlan(n, w, o)
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("builder never called")
	}
	if direct.Sig() != injected.Sig() {
		t.Fatalf("injected builder changed the chosen plan: %+v vs %+v", direct.Sig(), injected.Sig())
	}
}
