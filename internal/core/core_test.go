package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wrht/internal/collective"
	"wrht/internal/ring"
	"wrht/internal/wdm"
)

func mustPlan(t *testing.T, n, w int, opts Options) *Plan {
	t.Helper()
	p, err := BuildPlan(n, w, opts)
	if err != nil {
		t.Fatalf("BuildPlan(n=%d, w=%d, %+v): %v", n, w, opts, err)
	}
	return p
}

func TestCeilLogM(t *testing.T) {
	cases := []struct{ m, n, want int }{
		{2, 1, 0}, {2, 2, 1}, {2, 3, 2}, {2, 1024, 10},
		{3, 1024, 7}, {129, 1024, 2}, {129, 129, 1}, {10, 1000, 3}, {10, 1001, 4},
	}
	for _, c := range cases {
		if got := CeilLogM(c.m, c.n); got != c.want {
			t.Errorf("CeilLogM(%d,%d) = %d, want %d", c.m, c.n, got, c.want)
		}
	}
}

func TestMStar(t *testing.T) {
	// Paper: m* = ⌈N / m^(⌈log_m N⌉−1)⌉
	cases := []struct{ n, m, want int }{
		{1024, 3, 2},   // ⌈1024/729⌉
		{1024, 129, 8}, // ⌈1024/129⌉
		{1024, 2, 2},
		{128, 3, 2}, // ⌈128/81⌉
		{100, 10, 10},
	}
	for _, c := range cases {
		if got := MStar(c.n, c.m); got != c.want {
			t.Errorf("MStar(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestStepCountFormulaPolicy(t *testing.T) {
	// For the formula policy the paper's step count is exact:
	// 2⌈log_m N⌉ − 1 when all-to-all is feasible at the last level,
	// 2⌈log_m N⌉ otherwise.
	for _, n := range []int{2, 3, 7, 16, 100, 128, 256, 512, 1024} {
		for _, w := range []int{1, 2, 4, 8, 64} {
			maxM := MaxGroupSize(w)
			if maxM > n {
				maxM = n
			}
			for m := 2; m <= maxM; m++ {
				p := mustPlan(t, n, w, Options{M: m, Policy: A2AFormula, Striping: true})
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("n=%d w=%d m=%d: %v", n, w, m, err)
				}
				bound := 2 * CeilLogM(m, n)
				want := bound
				if wdm.LiangShenBound(MStar(n, m)) <= w {
					want = bound - 1
				}
				if got := p.NumSteps(); got != want {
					t.Errorf("n=%d w=%d m=%d: steps=%d, want %d", n, w, m, got, want)
				}
			}
		}
	}
}

func TestPaperHeadlineShapes(t *testing.T) {
	// TeraRack defaults: w=64. The shapes the paper quotes:
	// N=1024, m=129 (max fan-in): 2 levels, m*=8, steps 3.
	p := mustPlan(t, 1024, 64, Options{M: 129, Policy: A2AFormula})
	if len(p.ReduceLevels) != 1 || p.A2AReps == nil || len(p.A2AReps) != 8 {
		t.Fatalf("m=129: levels=%d a2a=%v", len(p.ReduceLevels), p.A2AReps)
	}
	if p.NumSteps() != 3 {
		t.Fatalf("m=129 steps = %d, want 3", p.NumSteps())
	}
	if p.A2ADemand != wdm.LiangShenBound(8) {
		t.Fatalf("a2a demand %d", p.A2ADemand)
	}

	// m=3: ⌈log3 1024⌉ = 7 → 13 steps under the formula policy.
	p3 := mustPlan(t, 1024, 64, Options{M: 3, Policy: A2AFormula})
	if p3.NumSteps() != 13 {
		t.Fatalf("m=3 steps = %d, want 13", p3.NumSteps())
	}
	// Greedy policy stops the tree as soon as ⌈r²/8⌉ ≤ 64 (r=13 at level 4).
	g3 := mustPlan(t, 1024, 64, Options{M: 3, Policy: A2AGreedy})
	if g3.NumSteps() >= p3.NumSteps() {
		t.Fatalf("greedy (%d steps) should beat formula (%d steps) at m=3",
			g3.NumSteps(), p3.NumSteps())
	}
	if len(g3.A2AReps) != 13 {
		t.Fatalf("greedy a2a reps = %d, want 13", len(g3.A2AReps))
	}
}

func TestTreeStripeUsesResidualWavelengths(t *testing.T) {
	// m=3 demands ⌊3/2⌋=1 wavelength per step, so striping should give each
	// transfer all 64.
	p := mustPlan(t, 128, 64, Options{M: 3, Policy: A2AFormula, Striping: true})
	if p.TreeStripe != 64 {
		t.Fatalf("TreeStripe = %d, want 64", p.TreeStripe)
	}
	// m=9 demands 4: stripe 16.
	p9 := mustPlan(t, 128, 64, Options{M: 9, Policy: A2AFormula, Striping: true})
	if p9.TreeStripe != 16 {
		t.Fatalf("TreeStripe = %d, want 16", p9.TreeStripe)
	}
	// Striping off: always 1.
	p1 := mustPlan(t, 128, 64, Options{M: 3, Policy: A2AFormula, Striping: false})
	if p1.TreeStripe != 1 || p1.A2AStripe != 1 {
		t.Fatalf("striping off gave stripes %d/%d", p1.TreeStripe, p1.A2AStripe)
	}
}

func TestWavelengthDemandsWithinBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(300) + 2
		w := rng.Intn(64) + 1
		maxM := MaxGroupSize(w)
		if maxM > n {
			maxM = n
		}
		m := 2
		if maxM > 2 {
			m = rng.Intn(maxM-1) + 2
		}
		policy := A2APolicy(rng.Intn(2))
		striping := rng.Intn(2) == 0
		p := mustPlan(t, n, w, Options{M: m, Policy: policy, Striping: striping})
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("n=%d w=%d m=%d %v striping=%v: %v", n, w, m, policy, striping, err)
		}
		for si, d := range p.WavelengthDemands() {
			if d > w {
				t.Fatalf("n=%d w=%d m=%d: step %d demand %d > w", n, w, m, si, d)
			}
		}
	}
}

func TestScheduleIsCorrectAllReduce(t *testing.T) {
	// The decisive test: every Wrht schedule must actually all-reduce.
	cases := []struct {
		n, w, m int
		policy  A2APolicy
	}{
		{2, 1, 2, A2AFormula},
		{3, 1, 2, A2AFormula},
		{4, 2, 3, A2AFormula},
		{7, 2, 4, A2AGreedy},
		{16, 4, 3, A2AFormula},
		{16, 4, 9, A2AGreedy},
		{33, 8, 5, A2AFormula},
		{64, 64, 65, A2AFormula}, // single level collapses to all-to-all? m>n clamps
		{100, 16, 7, A2AGreedy},
		{128, 64, 3, A2AFormula},
		{128, 64, 129, A2AFormula},
	}
	for _, c := range cases {
		m := c.m
		if m > c.n {
			m = c.n
		}
		p := mustPlan(t, c.n, c.w, Options{M: m, Policy: c.policy, Striping: true})
		for _, elems := range []int{1, 5, 64} {
			s, err := p.Schedule(elems)
			if err != nil {
				t.Fatal(err)
			}
			if err := collective.VerifyAllReduce(s); err != nil {
				t.Fatalf("n=%d w=%d m=%d %v: %v", c.n, c.w, m, c.policy, err)
			}
		}
	}
}

func TestScheduleCorrectnessProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	prop := func(nRaw uint8, wRaw uint8, mRaw uint8, policyRaw, stripeRaw uint8) bool {
		n := int(nRaw)%126 + 2
		w := int(wRaw)%32 + 1
		maxM := MaxGroupSize(w)
		if maxM > n {
			maxM = n
		}
		m := 2
		if maxM > 2 {
			m = int(mRaw)%(maxM-1) + 2
		}
		opts := Options{
			M:        m,
			Policy:   A2APolicy(policyRaw % 2),
			Striping: stripeRaw%2 == 0,
		}
		p, err := BuildPlan(n, w, opts)
		if err != nil {
			return false
		}
		if p.CheckInvariants() != nil {
			return false
		}
		s, err := p.Schedule(17)
		if err != nil {
			return false
		}
		return collective.VerifyAllReduce(s) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleWavelengthAssignable(t *testing.T) {
	// Every step of a Wrht schedule must be colorable within w wavelengths
	// in a single round (the plan's whole point). Verified with real
	// First-Fit assignment on the step's arcs.
	cases := []struct {
		n, w, m int
		policy  A2APolicy
	}{
		{16, 4, 3, A2AFormula},
		{64, 8, 5, A2AFormula},
		{128, 64, 3, A2AFormula},
		{128, 64, 129, A2AFormula},
		{100, 16, 7, A2AGreedy},
		{256, 64, 17, A2AGreedy},
	}
	for _, c := range cases {
		m := c.m
		if m > c.n {
			m = c.n
		}
		p := mustPlan(t, c.n, c.w, Options{M: m, Policy: c.policy, Striping: true})
		s, err := p.Schedule(8)
		if err != nil {
			t.Fatal(err)
		}
		for si, st := range s.Steps {
			demands := make([]wdm.Demand, 0, len(st.Transfers))
			for _, tr := range st.Transfers {
				demands = append(demands, wdm.Demand{
					Arc:   arcOf(tr),
					Width: tr.Width,
				})
			}
			asg, err := wdm.Assign(p.Topo, demands, wdm.FirstFit, wdm.LongestFirst)
			if err != nil {
				t.Fatalf("n=%d m=%d step %d: %v", c.n, m, si, err)
			}
			if err := wdm.Validate(p.Topo, demands, asg); err != nil {
				t.Fatalf("n=%d m=%d step %d: %v", c.n, m, si, err)
			}
			// Tree steps must fit exactly; the all-to-all step may exceed the
			// Liang–Shen load bound under First-Fit by a small factor (the
			// substrate then splits it into rounds), so allow slack there.
			budget := c.w
			if p.A2AReps != nil && si == len(p.ReduceLevels) {
				budget = c.w + c.w/2
			}
			if asg.NumColors > budget {
				t.Errorf("n=%d m=%d step %d (%s): %d colors > budget %d",
					c.n, m, si, st.Label, asg.NumColors, budget)
			}
		}
	}
}

func TestChooseMPicksSensibleShape(t *testing.T) {
	opts := DefaultOptions()
	p, err := BuildPlan(1024, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With striping, deep narrow trees (m=3, stripe 64) dominate shallow wide
	// ones; the optimizer must not pick the max fan-in.
	if p.M >= MaxGroupSize(64) {
		t.Fatalf("optimizer picked max fan-in m=%d", p.M)
	}
	// And the chosen plan must beat both extremes it searched.
	t3 := p.PredictTime(opts.Cost, 100<<20)
	for _, m := range []int{2, 129} {
		alt := mustPlan(t, 1024, 64, Options{M: m, Policy: A2AFormula, Striping: true})
		if ta := alt.PredictTime(opts.Cost, 100<<20); ta < t3-1e-12 {
			t.Fatalf("optimizer time %.6f beaten by m=%d (%.6f)", t3, m, ta)
		}
	}
}

func TestChooseMWithoutStripingPrefersShallow(t *testing.T) {
	// Without striping each transfer is one wavelength, so fewer steps win:
	// the optimizer should pick a large fan-in (or greedy all-to-all), never
	// the binary tree.
	opts := Options{Striping: false, Cost: DefaultCostParams()}
	p, err := BuildPlan(1024, 64, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSteps() > 5 {
		t.Fatalf("unstriped optimizer chose %d steps (m=%d)", p.NumSteps(), p.M)
	}
}

func TestBuildPlanValidation(t *testing.T) {
	if _, err := BuildPlan(1, 4, Options{M: 2}); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := BuildPlan(8, 0, Options{M: 2}); err == nil {
		t.Fatal("w=0 accepted")
	}
	if _, err := BuildPlan(8, 4, Options{M: 1}); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := BuildPlan(8, 2, Options{M: 6}); err == nil {
		t.Fatal("⌊m/2⌋ > w accepted")
	}
}

func TestPlanString(t *testing.T) {
	p := mustPlan(t, 16, 4, Options{M: 3, Policy: A2AFormula, Striping: true})
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestPredictTimeMonotoneInBytes(t *testing.T) {
	p := mustPlan(t, 128, 64, Options{M: 3, Policy: A2AFormula, Striping: true})
	c := DefaultCostParams()
	small := p.PredictTime(c, 1<<20)
	big := p.PredictTime(c, 1<<30)
	if big <= small {
		t.Fatalf("PredictTime not monotone: %v vs %v", small, big)
	}
}

func TestW1DegeneratesToBinaryTreePlusExchange(t *testing.T) {
	// With a single wavelength the only feasible fan-ins are m ∈ {2, 3}; the
	// plan must still terminate and verify.
	for _, n := range []int{2, 5, 16, 33} {
		for _, m := range []int{2, 3} {
			mm := m
			if mm > n {
				mm = n
			}
			p := mustPlan(t, n, 1, Options{M: mm, Policy: A2AFormula})
			if err := p.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			s, err := p.Schedule(9)
			if err != nil {
				t.Fatal(err)
			}
			if err := collective.VerifyAllReduce(s); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// arcOf converts a routed transfer to its ring arc.
func arcOf(tr collective.Transfer) ring.Arc {
	return ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
}
