package core

import (
	"testing"

	"wrht/internal/collective"
)

func TestPipelinedScheduleCorrectness(t *testing.T) {
	cases := []struct{ n, w, m, chunks, elems int }{
		{8, 2, 3, 2, 16},
		{16, 4, 3, 4, 64},
		{16, 4, 3, 7, 65},
		{27, 8, 3, 3, 100},
		{100, 16, 7, 5, 50},
		{64, 64, 9, 8, 33},
		{16, 4, 3, 32, 17}, // more chunks than elements per chunk
	}
	for _, c := range cases {
		for _, striping := range []bool{false, true} {
			p := mustPlan(t, c.n, c.w, Options{M: c.m, Policy: A2AFormula, Striping: striping})
			s, err := p.PipelinedSchedule(c.elems, c.chunks)
			if err != nil {
				t.Fatal(err)
			}
			if err := collective.VerifyAllReduce(s); err != nil {
				t.Fatalf("n=%d m=%d chunks=%d striping=%v: %v", c.n, c.m, c.chunks, striping, err)
			}
			want := p.NumSteps() + c.chunks - 1
			if got := s.NumSteps(); got != want {
				t.Fatalf("n=%d chunks=%d: steps=%d, want %d", c.n, c.chunks, got, want)
			}
		}
	}
}

func TestPipelinedChunks1EqualsPlain(t *testing.T) {
	p := mustPlan(t, 16, 4, Options{M: 3, Policy: A2AFormula})
	a, err := p.PipelinedSchedule(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Schedule(64)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSteps() != b.NumSteps() || a.TotalTransfers() != b.TotalTransfers() {
		t.Fatalf("chunks=1 differs from plain: %d/%d vs %d/%d",
			a.NumSteps(), a.TotalTransfers(), b.NumSteps(), b.TotalTransfers())
	}
}

func TestPipelinedValidation(t *testing.T) {
	p := mustPlan(t, 8, 2, Options{M: 3, Policy: A2AFormula})
	if _, err := p.PipelinedSchedule(16, 0); err == nil {
		t.Fatal("chunks=0 accepted")
	}
	if _, err := p.PipelinedSchedule(-1, 2); err == nil {
		t.Fatal("negative elems accepted")
	}
}

func TestPipelinedTrafficConserved(t *testing.T) {
	// Pipelining reorders work; total traffic must be identical.
	p := mustPlan(t, 27, 8, Options{M: 3, Policy: A2AFormula})
	plain, err := p.Schedule(999)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := p.PipelinedSchedule(999, 6)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalTrafficElems() != piped.TotalTrafficElems() {
		t.Fatalf("traffic %d vs %d", plain.TotalTrafficElems(), piped.TotalTrafficElems())
	}
}
