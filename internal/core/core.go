// Package core implements Wrht — the Wavelength Reused Hierarchical Tree
// all-reduce of Dai et al. (PPoPP'23) — as a planner that turns (N nodes,
// w wavelengths) into a collective.Schedule.
//
// The plan has a reduce stage and a broadcast stage. In each reduce level the
// current participants (initially all N nodes) are partitioned into
// contiguous groups of at most m along the ring; the middle node of each
// group is its representative and collects every member's full gradient
// vector, using ⌊m/2⌋ wavelengths per group (the two halves of a group travel
// on opposite waveguides, and link-disjoint groups reuse the same
// wavelengths). Levels repeat until the surviving representatives can finish
// with a single-step WDM all-to-all (wavelength requirement ⌈r²/8⌉, Liang &
// Shen), after which the broadcast stage mirrors the reduce stage. Total
// steps: 2⌈log_m N⌉ or 2⌈log_m N⌉ − 1, matching the paper.
//
// Beyond the paper's prose the planner supports wavelength striping (a
// transfer may ride k = ⌊w/demand⌋ wavelengths in parallel, exploiting the
// residual WDM capacity TeraRack hardware exposes), a greedy variant of the
// all-to-all trigger, and an optimizer that searches group size and policy
// against an analytic time model.
package core

import (
	"fmt"
	"sync/atomic"

	"wrht/internal/ring"
	"wrht/internal/wdm"
)

// A2APolicy controls when the reduce stage switches from tree levels to the
// final all-to-all among representatives.
type A2APolicy int

const (
	// A2AFormula runs tree levels while more than m representatives remain,
	// then finishes with an all-to-all among the final m* ≤ m
	// representatives — the construction behind the paper's step-count
	// formula 2⌈log_m N⌉ − 1. If even that all-to-all exceeds the wavelength
	// budget, a last tree level reduces to a single root (2⌈log_m N⌉ steps).
	A2AFormula A2APolicy = iota
	// A2AGreedy switches to all-to-all at the first level where
	// ⌈r²/8⌉ ≤ w, the literal reading of the paper's prose. It can finish in
	// fewer, larger steps than A2AFormula.
	A2AGreedy
)

func (p A2APolicy) String() string {
	switch p {
	case A2AFormula:
		return "formula"
	case A2AGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("A2APolicy(%d)", int(p))
	}
}

// Options configures plan construction.
type Options struct {
	// M is the group size (fan-in) per tree level; 2 ≤ M. M = 0 selects the
	// group size automatically via ChooseM against Cost.
	M int
	// Policy is the all-to-all trigger policy.
	Policy A2APolicy
	// Striping lets transfers ride multiple wavelengths when the step's
	// wavelength demand leaves headroom. The paper's analysis assigns one
	// wavelength per transfer; striping is the natural hardware extension
	// and is on in the evaluation (see DESIGN.md). Disable for the literal
	// single-wavelength reading.
	Striping bool
	// AvoidWrap routes the final all-to-all so that no transfer crosses the
	// ring span between node N-1 and node 0. Since tree groups are
	// contiguous and never wrap, the entire schedule then survives a
	// failure of that span (a property O-Ring cannot have) — at the cost of
	// higher all-to-all link load.
	AvoidWrap bool
	// Cost parameterizes the analytic model used when M == 0.
	Cost CostParams
}

// DefaultOptions returns the configuration used throughout the evaluation:
// automatic group size, formula policy preferred by the optimizer, striping
// enabled, default TeraRack-like cost constants.
func DefaultOptions() Options {
	return Options{M: 0, Policy: A2AFormula, Striping: true, Cost: DefaultCostParams()}
}

// Level is one reduce level: the grouping applied to the participants that
// survived the previous level.
type Level struct {
	Groups []ring.Group
	// MaxHops is the largest member→representative ring distance in this
	// level (drives propagation delay).
	MaxHops int
	// Demand is the per-step wavelength demand before striping: the largest
	// ⌊len(group)/2⌋ over groups.
	Demand int
}

// Plan is a fully resolved Wrht schedule shape for N nodes and w wavelengths.
type Plan struct {
	N, W, M  int
	Policy   A2APolicy
	Striping bool

	Topo ring.Topology

	// ReduceLevels are applied in order; the broadcast stage mirrors them in
	// reverse.
	ReduceLevels []Level

	// A2AReps holds the representatives of the final all-to-all step, or is
	// nil when the reduce stage ends at a single Root.
	A2AReps []int
	// Root is the final representative when A2AReps is nil.
	Root int

	// TreeStripe and A2AStripe are the wavelengths per transfer in tree
	// levels and in the all-to-all step (1 when striping is off).
	TreeStripe int
	A2AStripe  int

	// A2ADemand is the analytic wavelength requirement ⌈r²/8⌉ of the
	// all-to-all step before striping (0 when A2AReps is nil).
	A2ADemand int

	// AvoidWrap records Options.AvoidWrap.
	AvoidWrap bool
}

// CeilLogM returns ⌈log_m n⌉ for m ≥ 2, n ≥ 1: the smallest L with m^L ≥ n.
func CeilLogM(m, n int) int {
	if m < 2 || n < 1 {
		panic(fmt.Sprintf("core: CeilLogM(%d, %d)", m, n))
	}
	l := 0
	p := 1
	for p < n {
		// p*m can overflow for silly inputs; n is bounded by node counts.
		p *= m
		l++
	}
	return l
}

// MStar returns the paper's representative count at the last level,
// m* = ⌈N / m^(⌈log_m N⌉−1)⌉.
func MStar(n, m int) int {
	l := CeilLogM(m, n)
	p := 1
	for i := 0; i < l-1; i++ {
		p *= m
	}
	return (n + p - 1) / p
}

// MaxGroupSize returns the largest feasible m for w wavelengths: the tree
// step needs ⌊m/2⌋ ≤ w, so m ≤ 2w+1.
func MaxGroupSize(w int) int { return 2*w + 1 }

// planBuilds counts every BuildPlan invocation process-wide, including the
// optimizer's internal candidate builds (ChooseM issues one per feasible
// group size and policy). Benchmarks diff it to quantify what plan caching
// saves on wide sweeps.
var planBuilds atomic.Int64

// PlanBuildCount returns the process-wide number of BuildPlan invocations.
func PlanBuildCount() int64 { return planBuilds.Load() }

// BuildPlan constructs a Wrht plan for n nodes and w wavelengths.
func BuildPlan(n, w int, opts Options) (*Plan, error) {
	planBuilds.Add(1)
	if n < 2 {
		return nil, fmt.Errorf("core: need at least 2 nodes, got %d", n)
	}
	if w < 1 {
		return nil, fmt.Errorf("core: need at least 1 wavelength, got %d", w)
	}
	m := opts.M
	if m == 0 {
		best, err := ChooseM(n, w, opts)
		if err != nil {
			return nil, err
		}
		return best, nil
	}
	if m < 2 {
		return nil, fmt.Errorf("core: group size m=%d (need >= 2)", m)
	}
	if m/2 > w {
		return nil, fmt.Errorf("core: group size m=%d needs ⌊m/2⌋=%d wavelengths, budget is %d",
			m, m/2, w)
	}

	topo, err := ring.New(n)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		N: n, W: w, M: m,
		Policy:    opts.Policy,
		Striping:  opts.Striping,
		AvoidWrap: opts.AvoidWrap,
		Topo:      topo,
	}

	reps := topo.AllNodes()
	for len(reps) > 1 {
		r := len(reps)
		a2aFeasible := wdm.LiangShenBound(r) <= w
		switch opts.Policy {
		case A2AGreedy:
			if a2aFeasible {
				p.A2AReps = reps
				p.A2ADemand = wdm.LiangShenBound(r)
				reps = nil
				continue
			}
		case A2AFormula:
			if r <= m && a2aFeasible {
				p.A2AReps = reps
				p.A2ADemand = wdm.LiangShenBound(r)
				reps = nil
				continue
			}
			// If r <= m but all-to-all is infeasible, fall through to one
			// more tree level, which reduces to a single root.
		default:
			return nil, fmt.Errorf("core: unknown policy %v", opts.Policy)
		}
		groups := ring.PartitionContiguous(reps, m)
		lvl := Level{Groups: groups}
		next := make([]int, 0, len(groups))
		for _, g := range groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				if h := topo.Dist(mem, g.Rep, dirToward(mem, g.Rep)); h > lvl.MaxHops {
					lvl.MaxHops = h
				}
			}
			if d := len(g.Members) / 2; d > lvl.Demand {
				lvl.Demand = d
			}
			next = append(next, g.Rep)
		}
		p.ReduceLevels = append(p.ReduceLevels, lvl)
		reps = next
	}
	if p.A2AReps == nil {
		if len(reps) != 1 {
			return nil, fmt.Errorf("core: internal error: reduce ended with %d reps", len(reps))
		}
		p.Root = reps[0]
	}

	p.TreeStripe, p.A2AStripe = 1, 1
	if opts.Striping {
		maxDemand := 1
		for _, lvl := range p.ReduceLevels {
			if lvl.Demand > maxDemand {
				maxDemand = lvl.Demand
			}
		}
		if k := w / maxDemand; k > 1 {
			p.TreeStripe = k
		}
		if p.A2ADemand > 0 {
			if k := w / p.A2ADemand; k > 1 {
				p.A2AStripe = k
			}
		}
	}
	return p, nil
}

// dirToward returns the ring direction from a member to its representative
// inside a contiguous (non-wrapping) group: node ids within a group are
// ascending, so lower ids travel CW and higher ids travel CCW.
func dirToward(member, rep int) ring.Direction {
	if member < rep {
		return ring.CW
	}
	return ring.CCW
}

// NumSteps returns the total number of communication steps:
// len(ReduceLevels) tree steps + optional all-to-all + broadcast mirror.
func (p *Plan) NumSteps() int {
	steps := len(p.ReduceLevels) * 2 // reduce + broadcast mirrors
	if p.A2AReps != nil {
		steps++
	}
	return steps
}

// StepsUpperBound returns the paper's bound 2⌈log_m N⌉; the realized count
// NumSteps is that or one less.
func (p *Plan) StepsUpperBound() int { return 2 * CeilLogM(p.M, p.N) }

// WavelengthDemands returns the per-step wavelength usage (after striping)
// in execution order: reduce levels, optional all-to-all, broadcast levels.
func (p *Plan) WavelengthDemands() []int {
	var out []int
	for _, lvl := range p.ReduceLevels {
		out = append(out, lvl.Demand*p.TreeStripe)
	}
	if p.A2AReps != nil {
		out = append(out, p.A2ADemand*p.A2AStripe)
	}
	for i := len(p.ReduceLevels) - 1; i >= 0; i-- {
		out = append(out, p.ReduceLevels[i].Demand*p.TreeStripe)
	}
	return out
}

// PlanSig is a comparable value that fully determines a plan's schedule:
// two plans with equal signatures lower to identical schedules for any
// elems, whatever path built them (BuildPlan is deterministic in these
// fields — partitioning, representative choice, and all-to-all routing are
// pure functions of them). Cross-run schedule and simulation caches key on
// it so the optimizer's chosen plan and the same plan requested with an
// explicit group size share entries.
type PlanSig struct {
	N, W, M    int
	Policy     A2APolicy
	Striping   bool
	AvoidWrap  bool
	TreeStripe int
	A2AStripe  int
}

// Sig returns the plan's schedule-identity signature.
func (p *Plan) Sig() PlanSig {
	return PlanSig{
		N: p.N, W: p.W, M: p.M,
		Policy:     p.Policy,
		Striping:   p.Striping,
		AvoidWrap:  p.AvoidWrap,
		TreeStripe: p.TreeStripe,
		A2AStripe:  p.A2AStripe,
	}
}

// String summarizes the plan shape.
func (p *Plan) String() string {
	a2a := "none"
	if p.A2AReps != nil {
		a2a = fmt.Sprintf("%d reps (demand %d, stripe %d)", len(p.A2AReps), p.A2ADemand, p.A2AStripe)
	}
	return fmt.Sprintf("wrht{N=%d w=%d m=%d policy=%v levels=%d a2a=%s steps=%d stripe=%d}",
		p.N, p.W, p.M, p.Policy, len(p.ReduceLevels), a2a, p.NumSteps(), p.TreeStripe)
}
