package core

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/tensor"
)

// PipelinedSchedule is the chunked-pipeline extension of Wrht (beyond the
// paper; its natural "future work"): the buffer is split into `chunks`
// contiguous chunks, and chunk c enters reduce level 1 at global step c, so
// stage s processes chunk c during global step s+c. Total steps grow to
// NumSteps()+chunks-1, but each step serializes only 1/chunks of the buffer.
//
// Pipelining pays off when transfers cannot stripe across the full
// wavelength budget (e.g. the paper's literal one-wavelength-per-transfer
// accounting): concurrent stages then ride distinct wavelengths. Under full
// striping the fabric is already bandwidth-saturated and pipelining only
// adds steps — the ablation BenchmarkAblationPipelining quantifies both
// regimes. Wavelength demand grows with the number of concurrently active
// stages; the substrate splits any over-budget step into rounds, so the
// timing stays honest either way.
// MaxPipelineChunks bounds the pipeline chunk count. Schedule construction
// and simulation are O(chunks), so an unbounded count turns a bad input
// into a multi-minute hang instead of an error; no realistic pipeline needs
// more stages in flight than this.
const MaxPipelineChunks = 1 << 16

func (p *Plan) PipelinedSchedule(elems, chunks int) (*collective.Schedule, error) {
	if chunks < 1 {
		return nil, fmt.Errorf("core: pipeline chunks %d", chunks)
	}
	if chunks > MaxPipelineChunks {
		return nil, fmt.Errorf("core: pipeline chunks %d (max %d)", chunks, MaxPipelineChunks)
	}
	if elems < 0 {
		return nil, fmt.Errorf("core: negative elems %d", elems)
	}
	if chunks == 1 {
		return p.Schedule(elems)
	}
	regions := tensor.Chunks(elems, chunks)
	stages := p.stageTemplates()

	s := &collective.Schedule{
		Algorithm: fmt.Sprintf("wrht-pipelined(m=%d,c=%d)", p.M, chunks),
		N:         p.N,
		Elems:     elems,
	}
	totalSteps := len(stages) + chunks - 1
	for t := 0; t < totalSteps; t++ {
		st := collective.Step{Label: fmt.Sprintf("pipeline step %d", t+1)}
		for si, stage := range stages {
			c := t - si
			if c < 0 || c >= chunks {
				continue
			}
			if regions[c].Len == 0 {
				continue
			}
			for _, tr := range stage {
				tr.Region = regions[c]
				st.Transfers = append(st.Transfers, tr)
			}
		}
		s.Steps = append(s.Steps, st)
	}
	return s, nil
}

// stageTemplates lowers the plan to its stage sequence with full-buffer
// placeholder regions (the pipeline substitutes per-chunk regions).
func (p *Plan) stageTemplates() [][]collective.Transfer {
	var stages [][]collective.Transfer
	tree := func(li int, broadcast bool) []collective.Transfer {
		var out []collective.Transfer
		for _, g := range p.ReduceLevels[li].Groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				tr := collective.Transfer{
					Routed: true,
					Width:  p.TreeStripe,
				}
				if broadcast {
					tr.Src, tr.Dst = g.Rep, mem
					tr.Op = collective.OpCopy
					tr.Dir = dirToward(mem, g.Rep).Opposite()
				} else {
					tr.Src, tr.Dst = mem, g.Rep
					tr.Op = collective.OpReduce
					tr.Dir = dirToward(mem, g.Rep)
				}
				out = append(out, tr)
			}
		}
		return out
	}
	for li := range p.ReduceLevels {
		stages = append(stages, tree(li, false))
	}
	if p.A2AReps != nil {
		var out []collective.Transfer
		for _, d := range p.a2aDemands() {
			out = append(out, collective.Transfer{
				Src: d.Arc.Src, Dst: d.Arc.Dst,
				Op:     collective.OpReduce,
				Routed: true,
				Dir:    d.Arc.Dir,
				Width:  p.A2AStripe,
			})
		}
		stages = append(stages, out)
	}
	for li := len(p.ReduceLevels) - 1; li >= 0; li-- {
		stages = append(stages, tree(li, true))
	}
	return stages
}
