package core

import (
	"fmt"
	"math"

	"wrht/internal/ring"
)

// CostParams is the minimal optical cost model the planner's optimizer needs.
// It mirrors the per-transfer structure of internal/optical's full timing
// model without importing it (the substrate packages sit above the planner).
type CostParams struct {
	// GbpsPerWavelength is the line rate of a single wavelength channel.
	GbpsPerWavelength float64
	// PerStepSec is the fixed overhead charged once per synchronous step
	// (micro-ring tuning + control plane + SerDes + E/O + O/E).
	PerStepSec float64
	// PropSecPerHop is the per-hop propagation delay.
	PropSecPerHop float64
}

// DefaultCostParams matches internal/optical's defaults: 25 Gb/s channels,
// ≈3 µs per-step overhead (2 µs MRR tuning + 1 µs control + conversion
// latencies), 10 ns/hop.
func DefaultCostParams() CostParams {
	return CostParams{
		GbpsPerWavelength: 25,
		PerStepSec:        3.02e-6,
		PropSecPerHop:     10e-9,
	}
}

// PredictTime returns the analytic communication time for all-reducing
// `bytes` bytes under this plan: every step costs the fixed overhead, the
// propagation of its longest arc, and the serialization of the full buffer
// over that step's stripe width. Tests assert agreement with the
// event-accurate optical substrate to within ~1%.
func (p *Plan) PredictTime(c CostParams, bytes int64) float64 {
	if c.GbpsPerWavelength <= 0 {
		panic(fmt.Sprintf("core: non-positive wavelength rate %v", c.GbpsPerWavelength))
	}
	bits := float64(bytes) * 8
	chanBps := c.GbpsPerWavelength * 1e9
	total := 0.0
	treeStep := func(lvl Level) float64 {
		return c.PerStepSec +
			float64(lvl.MaxHops)*c.PropSecPerHop +
			bits/(float64(p.TreeStripe)*chanBps)
	}
	for _, lvl := range p.ReduceLevels {
		total += 2 * treeStep(lvl) // reduce + mirrored broadcast
	}
	if p.A2AReps != nil {
		total += c.PerStepSec +
			float64(p.a2aMaxHops())*c.PropSecPerHop +
			bits/(float64(p.A2AStripe)*chanBps)
	}
	return total
}

// a2aMaxHops returns the longest shortest-path arc between any two
// representatives of the all-to-all step (0 when the plan has none).
func (p *Plan) a2aMaxHops() int {
	maxHops := 0
	for i, src := range p.A2AReps {
		for j, dst := range p.A2AReps {
			if i == j {
				continue
			}
			cw := p.Topo.Dist(src, dst, ring.CW)
			ccw := p.Topo.N() - cw
			h := cw
			if ccw < h {
				h = ccw
			}
			if h > maxHops {
				maxHops = h
			}
		}
	}
	return maxHops
}

// PredictPipelinedTime approximates the time of the chunked-pipeline
// schedule (PipelinedSchedule) under the reduced cost model: chunk c enters
// stage s at global step s+c, so step t runs every stage s with
// 0 ≤ t−s < chunks concurrently. Each step pays the fixed overhead once; its
// concurrent stages' wavelength demands add up, and when they exceed the
// budget the substrate splits the step into ⌈demand/w⌉ sequential rounds,
// each bounded by the slowest active transfer — which is what this model
// charges. When every step's aggregate demand fits the budget (true for the
// evaluation defaults, where stripes are sized so each stage fits), the
// prediction matches the wavelength-level simulation exactly; when steps
// split into rounds it is a documented approximation (the summed demand
// ignores wavelength reuse between link-disjoint stages, and the simulator's
// round packing is not uniform), validated by tests at a loose tolerance
// rather than the 1% the unpipelined predictors meet. Consistent with
// PredictTime at chunks = 1.
func (p *Plan) PredictPipelinedTime(c CostParams, bytes int64, chunks int) float64 {
	if chunks <= 1 {
		return p.PredictTime(c, bytes)
	}
	if c.GbpsPerWavelength <= 0 {
		panic(fmt.Sprintf("core: non-positive wavelength rate %v", c.GbpsPerWavelength))
	}
	type stage struct {
		demand int     // wavelengths the stage lights (after striping)
		hops   int     // longest arc of the stage
		serSec float64 // one chunk's serialization over the stage's stripe
	}
	chanBps := c.GbpsPerWavelength * 1e9
	chunkBits := float64(bytes) * 8 / float64(chunks)
	treeStage := func(lvl Level) stage {
		return stage{
			demand: lvl.Demand * p.TreeStripe,
			hops:   lvl.MaxHops,
			serSec: chunkBits / (float64(p.TreeStripe) * chanBps),
		}
	}
	var stages []stage
	for _, lvl := range p.ReduceLevels {
		stages = append(stages, treeStage(lvl))
	}
	if p.A2AReps != nil {
		stages = append(stages, stage{
			demand: p.A2ADemand * p.A2AStripe,
			hops:   p.a2aMaxHops(),
			serSec: chunkBits / (float64(p.A2AStripe) * chanBps),
		})
	}
	for i := len(p.ReduceLevels) - 1; i >= 0; i-- {
		stages = append(stages, treeStage(p.ReduceLevels[i]))
	}

	total := 0.0
	for t := 0; t < len(stages)+chunks-1; t++ {
		demand, hops, ser := 0, 0, 0.0
		for s := range stages {
			if ci := t - s; ci < 0 || ci >= chunks {
				continue
			}
			demand += stages[s].demand
			if stages[s].hops > hops {
				hops = stages[s].hops
			}
			if stages[s].serSec > ser {
				ser = stages[s].serSec
			}
		}
		rounds := (demand + p.W - 1) / p.W
		if rounds < 1 {
			rounds = 1
		}
		total += c.PerStepSec + float64(rounds)*(float64(hops)*c.PropSecPerHop+ser)
	}
	return total
}

// ChooseM searches group sizes m ∈ [2, min(2w+1, N)] and both all-to-all
// policies for the plan with the smallest predicted time on opts.Cost,
// breaking ties toward fewer steps, then smaller m. opts.M is ignored.
//
// The buffer size only rescales the bandwidth term identically across plans
// with equal stripe×steps products, so the optimizer evaluates a nominal
// 100 MB buffer; callers with extreme latency/bandwidth ratios can build
// specific plans directly.
func ChooseM(n, w int, opts Options) (*Plan, error) {
	return ChooseMWith(n, w, opts, BuildPlan)
}

// Builder is the signature of BuildPlan. Memoizing callers (internal/exp's
// PlanCache) inject a caching builder so the optimizer's candidate plans
// land in — and are served from — the same cache as explicit-m requests.
type Builder func(n, w int, opts Options) (*Plan, error)

// ChooseMWith is ChooseM with every candidate built through the given
// builder. Candidate options always carry an explicit M >= 2, so a caching
// builder never recurses back into the optimizer.
func ChooseMWith(n, w int, opts Options, build Builder) (*Plan, error) {
	const nominalBytes = 100 << 20
	var best *Plan
	bestTime := math.Inf(1)
	maxM := MaxGroupSize(w)
	if maxM > n {
		maxM = n
	}
	if maxM < 2 {
		maxM = 2
	}
	for _, policy := range []A2APolicy{A2AFormula, A2AGreedy} {
		for m := 2; m <= maxM; m++ {
			o := opts
			o.M = m
			o.Policy = policy
			p, err := build(n, w, o)
			if err != nil {
				return nil, fmt.Errorf("core: ChooseM at m=%d: %w", m, err)
			}
			t := p.PredictTime(opts.Cost, nominalBytes)
			if better(t, p, bestTime, best) {
				best, bestTime = p, t
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no feasible plan for n=%d w=%d", n, w)
	}
	return best, nil
}

// better orders candidate plans: lower predicted time, then fewer steps,
// then smaller m, then formula policy (deterministic tie-breaking).
func better(t float64, p *Plan, bestTime float64, best *Plan) bool {
	if best == nil {
		return true
	}
	const eps = 1e-12
	switch {
	case t < bestTime-eps:
		return true
	case t > bestTime+eps:
		return false
	}
	if p.NumSteps() != best.NumSteps() {
		return p.NumSteps() < best.NumSteps()
	}
	if p.M != best.M {
		return p.M < best.M
	}
	return p.Policy == A2AFormula && best.Policy != A2AFormula
}
