package core

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/ring"
	"wrht/internal/tensor"
	"wrht/internal/wdm"
)

// CompactSchedule lowers the plan directly to the columnar IR — the form the
// simulate fast path consumes — with the exact same steps, labels, and
// transfer order as Schedule. Tests enforce that CompactSchedule(e).Expand()
// deep-equals Schedule(e) for every plan shape.
func (p *Plan) CompactSchedule(elems int) (*collective.CompactSchedule, error) {
	if elems < 0 {
		return nil, fmt.Errorf("core: negative elems %d", elems)
	}
	b := collective.NewScheduleBuilder(fmt.Sprintf("wrht(m=%d,%v)", p.M, p.Policy), p.N, elems)
	steps, transfers := p.NumSteps(), 0
	for _, lvl := range p.ReduceLevels {
		for _, g := range lvl.Groups {
			transfers += 2 * (len(g.Members) - 1) // reduce + mirrored broadcast
		}
	}
	if r := len(p.A2AReps); r > 1 {
		transfers += r * (r - 1)
	}
	b.Grow(steps, transfers)
	full := tensor.Region{Offset: 0, Len: elems}

	// Reduce stage.
	for li, lvl := range p.ReduceLevels {
		b.StartStep(fmt.Sprintf("reduce level %d", li+1))
		for _, g := range lvl.Groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				b.Add(collective.Transfer{
					Src: mem, Dst: g.Rep,
					Region: full,
					Op:     collective.OpReduce,
					Routed: true,
					Dir:    dirToward(mem, g.Rep),
					Width:  p.TreeStripe,
				})
			}
		}
	}

	// All-to-all among the final representatives.
	if p.A2AReps != nil {
		b.StartStep(fmt.Sprintf("all-to-all among %d reps", len(p.A2AReps)))
		for _, d := range p.a2aDemands() {
			b.Add(collective.Transfer{
				Src: d.Arc.Src, Dst: d.Arc.Dst,
				Region: full,
				Op:     collective.OpReduce,
				Routed: true,
				Dir:    d.Arc.Dir,
				Width:  p.A2AStripe,
			})
		}
	}

	// Broadcast stage: mirror of the reduce stage.
	for li := len(p.ReduceLevels) - 1; li >= 0; li-- {
		b.StartStep(fmt.Sprintf("broadcast level %d", li+1))
		for _, g := range p.ReduceLevels[li].Groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				b.Add(collective.Transfer{
					Src: g.Rep, Dst: mem,
					Region: full,
					Op:     collective.OpCopy,
					Routed: true,
					Dir:    dirToward(mem, g.Rep).Opposite(),
					Width:  p.TreeStripe,
				})
			}
		}
	}
	return b.Finish(), nil
}

// ClassSchedule lowers the plan directly to the symmetry-aware classed IR.
// A reduce/broadcast level whose groups are uniform — equal sizes, members
// and representative translated by a fixed stride — becomes one orbit step
// (group 0's transfers, replicated #groups times at the stride); ragged
// levels and the all-to-all step are materialized. Steps, labels, and
// transfer order (under ClassSchedule.ForEachTransfer) are identical to
// CompactSchedule, and classed pricing of the result is bit-identical to
// the compact path — tests enforce both.
func (p *Plan) ClassSchedule(elems int) (*collective.ClassSchedule, error) {
	if elems < 0 {
		return nil, fmt.Errorf("core: negative elems %d", elems)
	}
	b := collective.NewClassScheduleBuilder(fmt.Sprintf("wrht(m=%d,%v)", p.M, p.Policy), p.N, elems)
	full := tensor.Region{Offset: 0, Len: elems}

	reduceLevel := func(li int, broadcast bool) {
		lvl := p.ReduceLevels[li]
		label := fmt.Sprintf("reduce level %d", li+1)
		if broadcast {
			label = fmt.Sprintf("broadcast level %d", li+1)
		}
		if period, ok := uniformLevel(lvl.Groups); ok {
			b.StartSymUniform(label, period, len(lvl.Groups), full)
			emitGroup(b.AddOrbit, lvl.Groups[0], full, p.TreeStripe, broadcast)
			return
		}
		b.StartStep(label)
		for _, g := range lvl.Groups {
			emitGroup(b.Add, g, full, p.TreeStripe, broadcast)
		}
	}

	for li := range p.ReduceLevels {
		reduceLevel(li, false)
	}
	if p.A2AReps != nil {
		b.StartStep(fmt.Sprintf("all-to-all among %d reps", len(p.A2AReps)))
		for _, d := range p.a2aDemands() {
			b.Add(collective.Transfer{
				Src: d.Arc.Src, Dst: d.Arc.Dst,
				Region: full,
				Op:     collective.OpReduce,
				Routed: true,
				Dir:    d.Arc.Dir,
				Width:  p.A2AStripe,
			})
		}
	}
	for li := len(p.ReduceLevels) - 1; li >= 0; li-- {
		reduceLevel(li, true)
	}
	return b.Finish(), nil
}

// emitGroup appends one group's member↔representative transfers (reduce
// direction, or its broadcast mirror) through add.
func emitGroup(add func(collective.Transfer), g ring.Group, full tensor.Region, stripe int, broadcast bool) {
	for _, mem := range g.Members {
		if mem == g.Rep {
			continue
		}
		tr := collective.Transfer{
			Src: mem, Dst: g.Rep,
			Region: full,
			Op:     collective.OpReduce,
			Routed: true,
			Dir:    dirToward(mem, g.Rep),
			Width:  stripe,
		}
		if broadcast {
			tr.Src, tr.Dst = g.Rep, mem
			tr.Op = collective.OpCopy
			tr.Dir = tr.Dir.Opposite()
		}
		add(tr)
	}
}

// uniformLevel reports whether every group is group 0 translated by a fixed
// stride (the provably-symmetric level shape) and returns that stride.
func uniformLevel(groups []ring.Group) (int, bool) {
	if len(groups) < 2 {
		return 0, false
	}
	g0 := groups[0]
	period := groups[1].Members[0] - g0.Members[0]
	if period < 1 {
		return 0, false
	}
	for k, g := range groups {
		if len(g.Members) != len(g0.Members) {
			return 0, false
		}
		shift := k * period
		if g.Rep != g0.Rep+shift {
			return 0, false
		}
		for i, mem := range g.Members {
			if mem != g0.Members[i]+shift {
				return 0, false
			}
		}
	}
	return period, true
}

// Schedule lowers the plan to the collective IR over a buffer of elems
// elements. Tree reduce levels move each member's full buffer to its
// representative (OpReduce); the all-to-all step exchanges full partials
// among representatives; broadcast levels mirror the reduce levels with
// OpCopy. The resulting schedule passes collective.VerifyAllReduce for every
// (N, w, m, policy) combination — tests enforce this.
func (p *Plan) Schedule(elems int) (*collective.Schedule, error) {
	if elems < 0 {
		return nil, fmt.Errorf("core: negative elems %d", elems)
	}
	s := &collective.Schedule{
		Algorithm: fmt.Sprintf("wrht(m=%d,%v)", p.M, p.Policy),
		N:         p.N,
		Elems:     elems,
	}
	full := tensor.Region{Offset: 0, Len: elems}

	// Reduce stage.
	for li, lvl := range p.ReduceLevels {
		st := collective.Step{Label: fmt.Sprintf("reduce level %d", li+1)}
		for _, g := range lvl.Groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				st.Transfers = append(st.Transfers, collective.Transfer{
					Src: mem, Dst: g.Rep,
					Region: full,
					Op:     collective.OpReduce,
					Routed: true,
					Dir:    dirToward(mem, g.Rep),
					Width:  p.TreeStripe,
				})
			}
		}
		s.Steps = append(s.Steps, st)
	}

	// All-to-all among the final representatives.
	if p.A2AReps != nil {
		st := collective.Step{Label: fmt.Sprintf("all-to-all among %d reps", len(p.A2AReps))}
		demands := p.a2aDemands()
		for _, d := range demands {
			st.Transfers = append(st.Transfers, collective.Transfer{
				Src: d.Arc.Src, Dst: d.Arc.Dst,
				Region: full,
				Op:     collective.OpReduce,
				Routed: true,
				Dir:    d.Arc.Dir,
				Width:  p.A2AStripe,
			})
		}
		s.Steps = append(s.Steps, st)
	}

	// Broadcast stage: mirror of the reduce stage.
	for li := len(p.ReduceLevels) - 1; li >= 0; li-- {
		lvl := p.ReduceLevels[li]
		st := collective.Step{Label: fmt.Sprintf("broadcast level %d", li+1)}
		for _, g := range lvl.Groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				st.Transfers = append(st.Transfers, collective.Transfer{
					Src: g.Rep, Dst: mem,
					Region: full,
					Op:     collective.OpCopy,
					Routed: true,
					Dir:    dirToward(mem, g.Rep).Opposite(),
					Width:  p.TreeStripe,
				})
			}
		}
		s.Steps = append(s.Steps, st)
	}
	return s, nil
}

// a2aDemands routes the final all-to-all: load-balanced by default,
// wrap-avoiding when the plan was built with AvoidWrap.
func (p *Plan) a2aDemands() []wdm.Demand {
	if p.AvoidWrap {
		return wdm.AllToAllDemandsNoWrap(p.Topo, p.A2AReps, 1)
	}
	return wdm.AllToAllDemandsBalanced(p.Topo, p.A2AReps, 1)
}

// CheckInvariants verifies the structural properties the paper's analysis
// relies on. It is exercised heavily by tests and available to callers that
// construct unusual configurations:
//
//   - every node participates exactly once per level (as member or pass-through
//     representative of the previous level),
//   - each group is contiguous and ascending with its representative a member,
//   - per-step wavelength demand after striping fits the budget w,
//   - the step count matches the paper's 2⌈log_m N⌉ (or −1) bound for the
//     formula policy, and never exceeds it for the greedy policy.
func (p *Plan) CheckInvariants() error {
	// Level participant bookkeeping.
	expected := p.Topo.AllNodes()
	for li, lvl := range p.ReduceLevels {
		seen := make(map[int]bool, len(expected))
		var next []int
		for gi, g := range lvl.Groups {
			if len(g.Members) == 0 {
				return fmt.Errorf("core: level %d group %d empty", li, gi)
			}
			if len(g.Members) > p.M {
				return fmt.Errorf("core: level %d group %d has %d members (m=%d)",
					li, gi, len(g.Members), p.M)
			}
			if g.RepIndex() < 0 {
				return fmt.Errorf("core: level %d group %d rep %d not a member", li, gi, g.Rep)
			}
			prev := -1
			for _, mem := range g.Members {
				if mem <= prev {
					return fmt.Errorf("core: level %d group %d members not ascending", li, gi)
				}
				prev = mem
				if seen[mem] {
					return fmt.Errorf("core: level %d node %d in two groups", li, mem)
				}
				seen[mem] = true
			}
			next = append(next, g.Rep)
		}
		if len(seen) != len(expected) {
			return fmt.Errorf("core: level %d covers %d of %d participants",
				li, len(seen), len(expected))
		}
		for _, e := range expected {
			if !seen[e] {
				return fmt.Errorf("core: level %d missing participant %d", li, e)
			}
		}
		expected = next
	}
	if p.A2AReps != nil {
		if len(expected) != len(p.A2AReps) {
			return fmt.Errorf("core: all-to-all over %d reps, levels left %d",
				len(p.A2AReps), len(expected))
		}
		if wdm.LiangShenBound(len(p.A2AReps)) > p.W {
			return fmt.Errorf("core: all-to-all demand %d exceeds budget %d",
				wdm.LiangShenBound(len(p.A2AReps)), p.W)
		}
	} else if len(expected) != 1 || expected[0] != p.Root {
		return fmt.Errorf("core: root mismatch: levels end at %v, Root=%d", expected, p.Root)
	}

	for si, d := range p.WavelengthDemands() {
		if d > p.W {
			return fmt.Errorf("core: step %d demands %d wavelengths, budget %d", si, d, p.W)
		}
		if d < 1 {
			return fmt.Errorf("core: step %d demands %d wavelengths", si, d)
		}
	}

	bound := p.StepsUpperBound()
	switch p.Policy {
	case A2AFormula:
		if n := p.NumSteps(); n != bound && n != bound-1 {
			return fmt.Errorf("core: formula policy steps %d, want %d or %d", n, bound, bound-1)
		}
	case A2AGreedy:
		if n := p.NumSteps(); n > bound {
			return fmt.Errorf("core: greedy policy steps %d exceed bound %d", n, bound)
		}
	}
	return nil
}
