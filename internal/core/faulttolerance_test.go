package core

import (
	"testing"

	"wrht/internal/collective"
	"wrht/internal/ring"
	"wrht/internal/runner"
)

// wrapLinks returns the dense indices of the two directed links of the span
// between node N-1 and node 0.
func wrapLinks(topo ring.Topology) (cw, ccw int) {
	n := topo.N()
	return topo.Index(ring.Link{From: n - 1, Dir: ring.CW}),
		topo.Index(ring.Link{From: 0, Dir: ring.CCW})
}

// usesWrap reports whether any transfer of the schedule occupies the wrap
// span (transfers are routed; unrouted ones take the shortest path).
func usesWrap(t *testing.T, topo ring.Topology, s *collective.Schedule) bool {
	t.Helper()
	cw, ccw := wrapLinks(topo)
	for _, st := range s.Steps {
		for _, tr := range st.Transfers {
			arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
			if !tr.Routed {
				arc = topo.ShortestArc(tr.Src, tr.Dst)
			}
			hit := false
			topo.VisitLinks(arc, func(l int) {
				if l == cw || l == ccw {
					hit = true
				}
			})
			if hit {
				return true
			}
		}
	}
	return false
}

func TestAvoidWrapSurvivesSpanFailure(t *testing.T) {
	// Wrht's tree groups are contiguous and never wrap, so with the
	// wrap-avoiding all-to-all routing the whole schedule survives a failure
	// of the span between node N-1 and node 0. This is a structural
	// fault-tolerance property the ring baselines cannot have.
	cases := []struct{ n, w, m int }{
		{16, 4, 3},
		{100, 16, 7},
		{128, 64, 3},
		{128, 64, 129},
		{1024, 64, 3},
	}
	for _, c := range cases {
		m := c.m
		if m > c.n {
			m = c.n
		}
		p := mustPlan(t, c.n, c.w, Options{M: m, Policy: A2AFormula, Striping: true, AvoidWrap: true})
		s, err := p.Schedule(16)
		if err != nil {
			t.Fatal(err)
		}
		if usesWrap(t, p.Topo, s) {
			t.Errorf("n=%d m=%d: AvoidWrap schedule crosses the wrap span", c.n, m)
		}
		// Still a correct all-reduce, and still realizable on the fabric.
		if err := collective.VerifyAllReduce(s); err != nil {
			t.Fatalf("n=%d m=%d: %v", c.n, m, err)
		}
		opts := runner.DefaultOpticalOptions()
		opts.Params.Wavelengths = c.w
		opts.ValidateFabric = true
		if _, err := runner.RunOptical(s, opts); err != nil {
			t.Fatalf("n=%d m=%d: %v", c.n, m, err)
		}
	}
}

func TestTreeStepsNeverWrapEvenWithoutOption(t *testing.T) {
	// The contiguous-group invariant alone keeps every *tree* transfer off
	// the wrap span; only the all-to-all may cross it under balanced routing.
	p := mustPlan(t, 128, 64, Options{M: 5, Policy: A2AFormula, Striping: true})
	s, err := p.Schedule(8)
	if err != nil {
		t.Fatal(err)
	}
	cw, ccw := wrapLinks(p.Topo)
	for si, st := range s.Steps {
		if p.A2AReps != nil && si == len(p.ReduceLevels) {
			continue // the all-to-all step is exempt here
		}
		for _, tr := range st.Transfers {
			arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
			p.Topo.VisitLinks(arc, func(l int) {
				if l == cw || l == ccw {
					t.Errorf("step %d (%s): tree transfer %v wraps", si, st.Label, arc)
				}
			})
		}
	}
}

func TestORingNecessarilyUsesEveryLink(t *testing.T) {
	// Contrast: the ring baseline traverses the wrap span by construction,
	// so a span failure kills it.
	s, err := collective.RingAllReduce(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	topo := ring.MustNew(16)
	if !usesWrap(t, topo, s) {
		t.Fatal("ring all-reduce unexpectedly avoids the wrap span")
	}
}

func TestAvoidWrapPipelinedToo(t *testing.T) {
	p := mustPlan(t, 27, 8, Options{M: 3, Policy: A2AFormula, Striping: false, AvoidWrap: true})
	s, err := p.PipelinedSchedule(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if usesWrap(t, p.Topo, s) {
		t.Error("pipelined AvoidWrap schedule crosses the wrap span")
	}
	if err := collective.VerifyAllReduce(s); err != nil {
		t.Fatal(err)
	}
}
