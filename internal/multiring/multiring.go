// Package multiring scales Wrht beyond a single optical ring — the natural
// deployment question TeraRack-style racks raise: K racks of R nodes each,
// every rack an independent WDM ring, racks joined by an electrical leader
// network. The hierarchical all-reduce runs Wrht's reduce stage inside every
// rack in parallel, gathers each rack's partial at a leader, all-reduces the
// K leaders across racks, and mirrors the broadcast back down.
//
// The composed global schedule is verified by the same data-level oracle as
// every other algorithm; timing composes the per-phase substrate costs
// (intra phases run in parallel across racks on their own rings).
package multiring

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/optical"
	"wrht/internal/runner"
	"wrht/internal/tensor"
)

// Plan is a hierarchical all-reduce plan over Racks × NodesPerRack workers.
type Plan struct {
	Racks, NodesPerRack int
	// Intra is the per-rack Wrht plan (identical across racks).
	Intra *core.Plan
	// LeaderLocal is the local id of each rack's leader (the first final
	// representative of the intra plan).
	LeaderLocal int
}

// PlanBuilder mirrors core.BuildPlan's signature so sweeps can inject a
// shared memoized plan cache for the intra-rack plan.
type PlanBuilder func(n, w int, opts core.Options) (*core.Plan, error)

// BuildPlan constructs the hierarchy: a Wrht plan per rack plus leader
// selection. wavelengths is the per-rack WDM budget.
func BuildPlan(racks, nodesPerRack, wavelengths int, opts core.Options) (*Plan, error) {
	return BuildPlanWith(racks, nodesPerRack, wavelengths, opts, core.BuildPlan)
}

// BuildPlanWith is BuildPlan with an injectable intra-rack plan builder.
func BuildPlanWith(racks, nodesPerRack, wavelengths int, opts core.Options, build PlanBuilder) (*Plan, error) {
	if racks < 2 {
		return nil, fmt.Errorf("multiring: need >= 2 racks, got %d", racks)
	}
	if nodesPerRack < 2 {
		return nil, fmt.Errorf("multiring: need >= 2 nodes per rack, got %d", nodesPerRack)
	}
	intra, err := build(nodesPerRack, wavelengths, opts)
	if err != nil {
		return nil, err
	}
	leader := intra.Root
	if intra.A2AReps != nil {
		leader = intra.A2AReps[0]
	}
	return &Plan{
		Racks: racks, NodesPerRack: nodesPerRack,
		Intra:       intra,
		LeaderLocal: leader,
	}, nil
}

// Nodes returns the total worker count.
func (p *Plan) Nodes() int { return p.Racks * p.NodesPerRack }

// global maps a rack-local node id to the global id.
func (p *Plan) global(rack, local int) int { return rack*p.NodesPerRack + local }

// intraReduceSteps returns the per-rack reduce steps on local ids: the Wrht
// tree levels, then (when the intra plan ends in an all-to-all) a gather of
// the other final representatives into the leader.
func (p *Plan) intraReduceSteps(elems int) []collective.Step {
	full := tensor.Region{Offset: 0, Len: elems}
	var steps []collective.Step
	for li, lvl := range p.Intra.ReduceLevels {
		st := collective.Step{Label: fmt.Sprintf("rack reduce level %d", li+1)}
		for _, g := range lvl.Groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				st.Transfers = append(st.Transfers, collective.Transfer{
					Src: mem, Dst: g.Rep, Region: full,
					Op:    collective.OpReduce,
					Width: p.Intra.TreeStripe,
				})
			}
		}
		steps = append(steps, st)
	}
	if p.Intra.A2AReps != nil && len(p.Intra.A2AReps) > 1 {
		st := collective.Step{Label: "rack gather to leader"}
		for _, rep := range p.Intra.A2AReps {
			if rep == p.LeaderLocal {
				continue
			}
			st.Transfers = append(st.Transfers, collective.Transfer{
				Src: rep, Dst: p.LeaderLocal, Region: full,
				Op:    collective.OpReduce,
				Width: p.Intra.TreeStripe,
			})
		}
		steps = append(steps, st)
	}
	return steps
}

// intraBroadcastSteps mirrors intraReduceSteps: leader scatter to the other
// representatives, then the tree broadcast.
func (p *Plan) intraBroadcastSteps(elems int) []collective.Step {
	full := tensor.Region{Offset: 0, Len: elems}
	var steps []collective.Step
	if p.Intra.A2AReps != nil && len(p.Intra.A2AReps) > 1 {
		st := collective.Step{Label: "rack scatter from leader"}
		for _, rep := range p.Intra.A2AReps {
			if rep == p.LeaderLocal {
				continue
			}
			st.Transfers = append(st.Transfers, collective.Transfer{
				Src: p.LeaderLocal, Dst: rep, Region: full,
				Op:    collective.OpCopy,
				Width: p.Intra.TreeStripe,
			})
		}
		steps = append(steps, st)
	}
	for li := len(p.Intra.ReduceLevels) - 1; li >= 0; li-- {
		st := collective.Step{Label: fmt.Sprintf("rack broadcast level %d", li+1)}
		for _, g := range p.Intra.ReduceLevels[li].Groups {
			for _, mem := range g.Members {
				if mem == g.Rep {
					continue
				}
				st.Transfers = append(st.Transfers, collective.Transfer{
					Src: g.Rep, Dst: mem, Region: full,
					Op:    collective.OpCopy,
					Width: p.Intra.TreeStripe,
				})
			}
		}
		steps = append(steps, st)
	}
	return steps
}

// remapSteps shifts a rack-local step list to global ids for every rack and
// merges racks step-by-step (racks run in lockstep, each on its own ring).
func (p *Plan) remapSteps(local []collective.Step) []collective.Step {
	out := make([]collective.Step, len(local))
	for si, st := range local {
		g := collective.Step{Label: st.Label}
		for rack := 0; rack < p.Racks; rack++ {
			for _, tr := range st.Transfers {
				tr.Src = p.global(rack, tr.Src)
				tr.Dst = p.global(rack, tr.Dst)
				g.Transfers = append(g.Transfers, tr)
			}
		}
		out[si] = g
	}
	return out
}

// InterSchedule builds the leader all-reduce on K logical nodes (ring
// all-reduce — bandwidth optimal on the electrical leader network).
func (p *Plan) InterSchedule(elems int) (*collective.Schedule, error) {
	return collective.RingAllReduce(p.Racks, elems)
}

// GlobalSchedule composes the full hierarchy on Racks·NodesPerRack global
// node ids, for data-level verification.
func (p *Plan) GlobalSchedule(elems int) (*collective.Schedule, error) {
	if elems < 0 {
		return nil, fmt.Errorf("multiring: negative elems %d", elems)
	}
	s := &collective.Schedule{
		Algorithm: fmt.Sprintf("multiring-wrht(%dx%d)", p.Racks, p.NodesPerRack),
		N:         p.Nodes(),
		Elems:     elems,
	}
	s.Steps = append(s.Steps, p.remapSteps(p.intraReduceSteps(elems))...)

	inter, err := p.InterSchedule(elems)
	if err != nil {
		return nil, err
	}
	for _, st := range inter.Steps {
		g := collective.Step{Label: "inter-rack " + st.Label}
		for _, tr := range st.Transfers {
			tr.Src = p.global(tr.Src, p.LeaderLocal)
			tr.Dst = p.global(tr.Dst, p.LeaderLocal)
			tr.Routed = false
			g.Transfers = append(g.Transfers, tr)
		}
		s.Steps = append(s.Steps, g)
	}

	s.Steps = append(s.Steps, p.remapSteps(p.intraBroadcastSteps(elems))...)
	return s, nil
}

// TimeBreakdown is the per-phase cost of the hierarchical all-reduce.
type TimeBreakdown struct {
	IntraReduceSec    float64
	InterSec          float64
	IntraBroadcastSec float64
}

// TotalSec sums the phases.
func (t TimeBreakdown) TotalSec() float64 {
	return t.IntraReduceSec + t.InterSec + t.IntraBroadcastSec
}

// Time prices the hierarchy: the intra phases run on one rack's ring (all
// racks in parallel), the inter phase on an electrical cluster of K leader
// uplinks.
func (p *Plan) Time(elems int, op optical.Params, ep electrical.Params) (TimeBreakdown, error) {
	intraReduce := &collective.Schedule{
		Algorithm: "intra-reduce", N: p.NodesPerRack, Elems: elems,
		Steps: p.intraReduceSteps(elems),
	}
	intraBcast := &collective.Schedule{
		Algorithm: "intra-broadcast", N: p.NodesPerRack, Elems: elems,
		Steps: p.intraBroadcastSteps(elems),
	}
	optOpts := runner.DefaultOpticalOptions()
	optOpts.Params = op
	var out TimeBreakdown
	r1, err := runner.RunOptical(intraReduce, optOpts)
	if err != nil {
		return out, err
	}
	r3, err := runner.RunOptical(intraBcast, optOpts)
	if err != nil {
		return out, err
	}
	inter, err := p.InterSchedule(elems)
	if err != nil {
		return out, err
	}
	r2, err := runner.RunElectrical(inter, runner.ElectricalOptions{Params: ep})
	if err != nil {
		return out, err
	}
	out.IntraReduceSec = r1.TotalSec
	out.InterSec = r2.TotalSec
	out.IntraBroadcastSec = r3.TotalSec
	return out, nil
}
