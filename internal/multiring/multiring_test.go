package multiring

import (
	"math/rand"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/optical"
)

func opts(m int) core.Options {
	return core.Options{M: m, Policy: core.A2AFormula, Striping: true}
}

func TestGlobalScheduleIsCorrectAllReduce(t *testing.T) {
	cases := []struct{ racks, perRack, m, elems int }{
		{2, 4, 3, 16},
		{3, 9, 3, 25},
		{4, 16, 5, 64},
		{2, 100, 7, 10},
		{8, 8, 3, 33},
	}
	for _, c := range cases {
		p, err := BuildPlan(c.racks, c.perRack, 16, opts(c.m))
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.GlobalSchedule(c.elems)
		if err != nil {
			t.Fatal(err)
		}
		if err := collective.VerifyAllReduce(s); err != nil {
			t.Fatalf("racks=%d perRack=%d m=%d: %v", c.racks, c.perRack, c.m, err)
		}
	}
}

func TestGlobalScheduleRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		racks := rng.Intn(6) + 2
		perRack := rng.Intn(30) + 2
		w := rng.Intn(16) + 1
		maxM := core.MaxGroupSize(w)
		if maxM > perRack {
			maxM = perRack
		}
		m := 2
		if maxM > 2 {
			m = rng.Intn(maxM-1) + 2
		}
		p, err := BuildPlan(racks, perRack, w, opts(m))
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.GlobalSchedule(rng.Intn(40) + 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := collective.VerifyAllReduce(s); err != nil {
			t.Fatalf("racks=%d perRack=%d w=%d m=%d: %v", racks, perRack, w, m, err)
		}
	}
}

func TestTimeBreakdownPositiveAndComposes(t *testing.T) {
	p, err := BuildPlan(8, 128, 64, opts(3))
	if err != nil {
		t.Fatal(err)
	}
	const elems = 1 << 20
	tb, err := p.Time(elems, optical.DefaultParams(), electrical.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tb.IntraReduceSec <= 0 || tb.InterSec <= 0 || tb.IntraBroadcastSec <= 0 {
		t.Fatalf("non-positive phase: %+v", tb)
	}
	if tb.TotalSec() != tb.IntraReduceSec+tb.InterSec+tb.IntraBroadcastSec {
		t.Fatal("TotalSec broken")
	}
}

func TestHierarchyCompetitiveAtScale(t *testing.T) {
	// 8 racks × 128 nodes = 1024 workers. The hierarchy's intra phases run
	// racks in parallel, so it must beat a flat electrical ring over all
	// 1024 nodes for large buffers, where the leader ring at K=8 is cheap.
	p, err := BuildPlan(8, 128, 64, opts(3))
	if err != nil {
		t.Fatal(err)
	}
	const elems = 32 << 20 // 128 MB
	tb, err := p.Time(elems, optical.DefaultParams(), electrical.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	flat, err := collective.RingAllReduce(1024, elems)
	if err != nil {
		t.Fatal(err)
	}
	// Closed-form E-Ring at 1024 on the electrical substrate.
	chunkBits := float64(elems/1024) * 4 * 8
	ep := electrical.DefaultParams()
	flatSec := float64(2*1023) * (ep.PerStepLatencySec + chunkBits/(ep.LinkGbps*1e9))
	_ = flat
	if tb.TotalSec() >= flatSec {
		t.Fatalf("hierarchy %.4g s not under flat E-Ring %.4g s", tb.TotalSec(), flatSec)
	}
}

func TestLeaderSelection(t *testing.T) {
	p, err := BuildPlan(2, 16, 4, opts(3))
	if err != nil {
		t.Fatal(err)
	}
	if p.Intra.A2AReps != nil {
		if p.LeaderLocal != p.Intra.A2AReps[0] {
			t.Fatalf("leader %d, want first rep %d", p.LeaderLocal, p.Intra.A2AReps[0])
		}
	} else if p.LeaderLocal != p.Intra.Root {
		t.Fatalf("leader %d, want root %d", p.LeaderLocal, p.Intra.Root)
	}
	if p.Nodes() != 32 {
		t.Fatalf("Nodes() = %d", p.Nodes())
	}
}

func TestBuildPlanValidation(t *testing.T) {
	if _, err := BuildPlan(1, 8, 4, opts(3)); err == nil {
		t.Fatal("1 rack accepted")
	}
	if _, err := BuildPlan(4, 1, 4, opts(3)); err == nil {
		t.Fatal("1 node per rack accepted")
	}
	if _, err := BuildPlan(4, 8, 0, opts(3)); err == nil {
		t.Fatal("0 wavelengths accepted")
	}
}
