package model

import (
	"math"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/dnn"
	"wrht/internal/electrical"
	"wrht/internal/optical"
	"wrht/internal/runner"
)

func almost(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// bytesToElems converts an FP32 byte count to whole elements, as the
// simulators work in elements.
func bytesToElems(bytes int64) int { return int(bytes / 4) }

func TestERingMatchesSimulator(t *testing.T) {
	p := electrical.DefaultParams()
	for _, n := range []int{8, 64, 128} {
		bytes := int64(n) * 4 * 4096 // divisible by n so chunking is exact
		s, err := collective.RingAllReduce(n, bytesToElems(bytes))
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.RunElectrical(s, runner.ElectricalOptions{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		pred := ERing(n, bytes, p)
		if !almost(res.TotalSec, pred, 0.01) {
			t.Errorf("n=%d: ERing sim %.6g vs model %.6g", n, res.TotalSec, pred)
		}
	}
}

func TestRDMatchesSimulator(t *testing.T) {
	p := electrical.DefaultParams()
	for _, n := range []int{8, 64, 100, 128} {
		bytes := int64(1 << 22)
		s, err := collective.RecursiveDoubling(n, bytesToElems(bytes))
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.RunElectrical(s, runner.ElectricalOptions{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		pred := RD(n, bytes, p)
		if !almost(res.TotalSec, pred, 0.01) {
			t.Errorf("n=%d: RD sim %.6g vs model %.6g", n, res.TotalSec, pred)
		}
	}
}

func TestHDMatchesSimulator(t *testing.T) {
	p := electrical.DefaultParams()
	for _, n := range []int{8, 16, 64} {
		bytes := int64(1 << 22)
		s, err := collective.HalvingDoubling(n, bytesToElems(bytes))
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.RunElectrical(s, runner.ElectricalOptions{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		pred := HD(n, bytes, p)
		if !almost(res.TotalSec, pred, 0.01) {
			t.Errorf("n=%d: HD sim %.6g vs model %.6g", n, res.TotalSec, pred)
		}
	}
}

func TestORingMatchesSimulator(t *testing.T) {
	p := optical.DefaultParams()
	for _, n := range []int{8, 64, 128} {
		bytes := int64(n) * 4 * 4096
		s, err := collective.RingAllReduce(n, bytesToElems(bytes))
		if err != nil {
			t.Fatal(err)
		}
		opts := runner.DefaultOpticalOptions()
		res, err := runner.RunOptical(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		pred := ORing(n, bytes, p)
		if !almost(res.TotalSec, pred, 0.01) {
			t.Errorf("n=%d: ORing sim %.6g vs model %.6g", n, res.TotalSec, pred)
		}
		// Striped variant.
		opts.DefaultWidth = p.Wavelengths
		resS, err := runner.RunOptical(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		predS := ORingStriped(n, bytes, p)
		if !almost(resS.TotalSec, predS, 0.01) {
			t.Errorf("n=%d: ORingStriped sim %.6g vs model %.6g", n, resS.TotalSec, predS)
		}
	}
}

func TestWrhtAutoMatchesSimulator(t *testing.T) {
	p := optical.DefaultParams()
	for _, n := range []int{128, 256} {
		bytes := int64(1 << 24)
		plan, pred, err := WrhtAuto(n, bytes, p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := plan.Schedule(bytesToElems(bytes))
		if err != nil {
			t.Fatal(err)
		}
		opts := runner.DefaultOpticalOptions()
		opts.ValidateFabric = true
		res, err := runner.RunOptical(s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(res.TotalSec, pred, 0.01) {
			t.Errorf("n=%d: Wrht sim %.6g vs model %.6g (plan %v)", n, res.TotalSec, pred, plan)
		}
	}
}

func TestPaperOrderingHolds(t *testing.T) {
	// The qualitative shape of Figure 2 with default parameters, at every
	// Figure-2 scale and for every paper model: WRHT < E-Ring < O-Ring and
	// WRHT < RD.
	op := optical.DefaultParams()
	ep := electrical.DefaultParams()
	for _, m := range dnn.PaperModels() {
		bytes := m.GradientBytes(4)
		for _, n := range []int{128, 256, 512, 1024} {
			_, wrht, err := WrhtAuto(n, bytes, op)
			if err != nil {
				t.Fatal(err)
			}
			eRing := ERing(n, bytes, ep)
			rd := RD(n, bytes, ep)
			oRing := ORing(n, bytes, op)
			if !(wrht < eRing && eRing < oRing && wrht < rd) {
				t.Errorf("%s n=%d: ordering broken: wrht=%.4g eRing=%.4g rd=%.4g oRing=%.4g",
					m.Name, n, wrht, eRing, rd, oRing)
			}
			// Headline-scale factors: vs O-Ring the reduction should be deep
			// (paper: 91.86%); vs E-Ring substantial (paper: 75.76%).
			if r := Reduction(oRing, wrht); r < 0.75 {
				t.Errorf("%s n=%d: reduction vs O-Ring only %.1f%%", m.Name, n, 100*r)
			}
			if r := Reduction(eRing, wrht); r < 0.40 {
				t.Errorf("%s n=%d: reduction vs E-Ring only %.1f%%", m.Name, n, 100*r)
			}
		}
	}
}

func TestRDWorstForLargeModels(t *testing.T) {
	// RD moves log2(n) full buffers: for the big models it must exceed
	// E-Ring at scale (the tallest Figure-2 bars).
	ep := electrical.DefaultParams()
	bytes := dnn.VGG16().GradientBytes(4)
	if RD(1024, bytes, ep) <= ERing(1024, bytes, ep) {
		t.Fatal("RD should be slower than E-Ring for VGG16 at n=1024")
	}
}

func TestCrossoverStripedRingVsWrht(t *testing.T) {
	// With striping allowed for both, ring all-reduce is bandwidth-optimal
	// and must win for huge buffers, while Wrht's O(log) steps win for small
	// ones → a crossover exists. This is ablation A1's headline number.
	op := optical.DefaultParams()
	const n = 1024
	plan, err := core.BuildPlan(n, op.Wavelengths, core.Options{M: 3, Policy: core.A2AFormula, Striping: true})
	if err != nil {
		t.Fatal(err)
	}
	wrht := func(b int64) float64 { return Wrht(plan, b, op) }
	ringS := func(b int64) float64 { return ORingStriped(n, b, op) }
	cross, err := CrossoverBytes(wrht, ringS, 1<<10, 1<<34)
	if err != nil {
		t.Fatal(err)
	}
	// Small buffers: Wrht wins; large: striped ring wins.
	if !(wrht(cross/4) < ringS(cross/4)) {
		t.Errorf("below crossover (%d B) Wrht should win", cross/4)
	}
	if !(wrht(cross*4) > ringS(cross*4)) {
		t.Errorf("above crossover (%d B) striped ring should win", cross*4)
	}
}

func TestCrossoverValidation(t *testing.T) {
	f := func(b int64) float64 { return 1 }
	g := func(b int64) float64 { return 2 }
	if _, err := CrossoverBytes(f, g, 1, 100); err == nil {
		t.Fatal("no-crossover accepted")
	}
	if _, err := CrossoverBytes(f, g, 100, 1); err == nil {
		t.Fatal("bad interval accepted")
	}
}

func TestReduction(t *testing.T) {
	if r := Reduction(100, 25); r != 0.75 {
		t.Fatalf("Reduction = %v", r)
	}
	if r := Reduction(0, 5); r != 0 {
		t.Fatalf("Reduction with zero baseline = %v", r)
	}
}

func TestHeadlineReductionsNearPaper(t *testing.T) {
	// Averaged over the paper's 4 models × 4 scales, the measured reductions
	// should land near the paper's 75.76% (vs electrical) and 91.86%
	// (vs O-Ring). We accept ±12 percentage points — the paper's exact
	// parameter table is unpublished; see EXPERIMENTS.md.
	op := optical.DefaultParams()
	ep := electrical.DefaultParams()
	var vsElec, vsORing []float64
	for _, m := range dnn.PaperModels() {
		bytes := m.GradientBytes(4)
		for _, n := range []int{128, 256, 512, 1024} {
			_, wrht, err := WrhtAuto(n, bytes, op)
			if err != nil {
				t.Fatal(err)
			}
			elec := (ERing(n, bytes, ep) + RD(n, bytes, ep)) / 2
			vsElec = append(vsElec, Reduction(elec, wrht))
			vsORing = append(vsORing, Reduction(ORing(n, bytes, op), wrht))
		}
	}
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	ae, ao := avg(vsElec), avg(vsORing)
	if math.Abs(ae-0.7576) > 0.12 {
		t.Errorf("avg reduction vs electrical = %.2f%%, paper 75.76%%", 100*ae)
	}
	if math.Abs(ao-0.9186) > 0.12 {
		t.Errorf("avg reduction vs O-Ring = %.2f%%, paper 91.86%%", 100*ao)
	}
	t.Logf("measured headline reductions: vs electrical %.2f%%, vs O-Ring %.2f%%", 100*ae, 100*ao)
}

func TestBinomialMatchesSimulator(t *testing.T) {
	p := electrical.DefaultParams()
	for _, n := range []int{8, 24, 64, 100} {
		bytes := int64(1 << 22)
		s, err := collective.BinomialTree(n, bytesToElems(bytes))
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.RunElectrical(s, runner.ElectricalOptions{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		pred := Binomial(n, bytes, p)
		if !almost(res.TotalSec, pred, 0.01) {
			t.Errorf("n=%d: Binomial sim %.6g vs model %.6g", n, res.TotalSec, pred)
		}
	}
}

// pipelinedSim prices a pipelined plan's schedule through the wavelength
// simulator for comparison with the analytic predictor.
func pipelinedSim(t *testing.T, plan *core.Plan, p optical.Params, bytes int64, chunks int) float64 {
	t.Helper()
	s, err := plan.PipelinedSchedule(bytesToElems(bytes), chunks)
	if err != nil {
		t.Fatal(err)
	}
	opts := runner.DefaultOpticalOptions()
	opts.Params = p
	res, err := runner.RunOptical(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res.TotalSec
}

func TestWrhtPipelinedPredictor(t *testing.T) {
	// Exact when every pipeline step's aggregate demand fits the wavelength
	// budget (the evaluation regimes); a documented approximation when steps
	// split into rounds. chunks <= 1 degrades to the unpipelined predictor.
	p := optical.DefaultParams()
	p.Wavelengths = 8
	opts := core.DefaultOptions()
	opts.Cost = CostParamsOf(p)
	opts.Striping = false
	opts.M = 3
	plan, err := core.BuildPlan(64, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	bytes := int64(32 << 20)

	if got, want := WrhtPipelined(plan, bytes, p, 1), Wrht(plan, bytes, p); got != want {
		t.Fatalf("chunks=1: %.9g, want unpipelined %.9g", got, want)
	}
	if sim, pred := pipelinedSim(t, plan, p, bytes, 64), WrhtPipelined(plan, bytes, p, 64); !almost(sim, pred, 1e-9) {
		t.Errorf("fit-budget regime: sim %.9g vs model %.9g", sim, pred)
	}
	if a, b := WrhtPipelined(plan, bytes, p, 64), WrhtPipelined(plan, 2*bytes, p, 64); b <= a {
		t.Errorf("not monotone in bytes: %.6g then %.6g", a, b)
	}

	// Round-splitting regime: a narrow budget forces concurrent stages to
	// serialize; the uniform-split model is only loosely accurate there.
	pn := optical.DefaultParams()
	pn.Wavelengths = 4
	optsN := core.DefaultOptions()
	optsN.Cost = CostParamsOf(pn)
	optsN.Striping = false
	optsN.M = 3
	narrow, err := core.BuildPlan(27, 4, optsN)
	if err != nil {
		t.Fatal(err)
	}
	sim := pipelinedSim(t, narrow, pn, 4<<20, 16)
	pred := WrhtPipelined(narrow, 4<<20, pn, 16)
	if pred <= 0 || !almost(sim, pred, 0.7) {
		t.Errorf("round-split regime: sim %.6g vs model %.6g outside the documented band", sim, pred)
	}
}
