// Package model provides closed-form communication-time predictors for every
// all-reduce algorithm in the repository on both substrates, mirroring the
// alpha–beta analyses in the paper and its references. The predictors are
// validated against the flow/wavelength-level simulators (internal/runner)
// to within 1% by tests, and power the group-size optimizer's sweeps and the
// crossover analyses in EXPERIMENTS.md.
package model

import (
	"fmt"
	"math"

	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/optical"
)

// ceilDiv is ⌈a/b⌉ for positive b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// ERing predicts the electrical ring all-reduce (paper baseline "E-Ring"):
// 2(n−1) steps, each moving a ⌈S/n⌉ chunk at line rate through the
// non-blocking cluster.
func ERing(n int, bytes int64, p electrical.Params) float64 {
	steps := float64(2 * (n - 1))
	chunkBits := float64(ceilDiv(bytes, int64(n))) * 8
	return steps * (p.PerStepLatencySec + chunkBits/(p.LinkGbps*1e9))
}

// RD predicts electrical recursive doubling (paper baseline "RD"):
// ⌈log2 n⌉ full-buffer exchanges, plus fold/unfold steps when n is not a
// power of two.
func RD(n int, bytes int64, p electrical.Params) float64 {
	pow2, extra := 1, 0
	for pow2*2 <= n {
		pow2 *= 2
	}
	if pow2 != n {
		extra = 2
	}
	steps := float64(log2(pow2) + extra)
	fullBits := float64(bytes) * 8
	return steps * (p.PerStepLatencySec + fullBits/(p.LinkGbps*1e9))
}

// HD predicts electrical halving-doubling: 2·log2(n) steps moving
// 2(n−1)/n·S per node in total (fold/unfold added for non-powers of two).
func HD(n int, bytes int64, p electrical.Params) float64 {
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	total := 0.0
	if pow2 != n {
		fullBits := float64(bytes) * 8
		total += 2 * (p.PerStepLatencySec + fullBits/(p.LinkGbps*1e9))
	}
	// Halving: S/2, S/4, ...; doubling mirrors.
	remaining := float64(bytes)
	for d := pow2 / 2; d >= 1; d /= 2 {
		remaining /= 2
		total += 2 * (p.PerStepLatencySec + remaining*8/(p.LinkGbps*1e9))
	}
	return total
}

func log2(pow2 int) int {
	l := 0
	for p := 1; p < pow2; p *= 2 {
		l++
	}
	return l
}

// Binomial predicts the electrical binomial reduce+broadcast tree:
// 2⌈log2 n⌉ steps, each moving the full buffer between disjoint node pairs —
// so on the non-blocking cluster every flow runs at line rate and the closed
// form matches the flow-level simulation exactly.
func Binomial(n int, bytes int64, p electrical.Params) float64 {
	steps := float64(2 * core.CeilLogM(2, n))
	fullBits := float64(bytes) * 8
	return steps * (p.PerStepLatencySec + fullBits/(p.LinkGbps*1e9))
}

// ORing predicts the paper's optical ring baseline "O-Ring": the electrical
// ring schedule executed on the WDM ring with a single wavelength per
// transfer (the baseline's defining constraint).
func ORing(n int, bytes int64, p optical.Params) float64 {
	return oRingWidth(n, bytes, p, 1)
}

// ORingStriped is the ablation variant in which each neighbor transfer
// stripes across all w wavelengths. It is bandwidth-optimal on the fabric and
// bounds what any ring schedule can achieve (see EXPERIMENTS.md A1).
func ORingStriped(n int, bytes int64, p optical.Params) float64 {
	return oRingWidth(n, bytes, p, p.Wavelengths)
}

func oRingWidth(n int, bytes int64, p optical.Params, width int) float64 {
	steps := float64(2 * (n - 1))
	chunkBytes := ceilDiv(bytes, int64(n))
	return steps * (p.StepOverheadSec() + p.TransferSec(chunkBytes, width, 1))
}

// CostParamsOf converts the optical substrate constants into the planner's
// reduced cost model (per-step constant = reconfiguration + per-transfer
// conversion overheads, since one transfer's overhead is on every step's
// critical path).
func CostParamsOf(p optical.Params) core.CostParams {
	return core.CostParams{
		GbpsPerWavelength: p.GbpsPerWavelength,
		PerStepSec:        p.StepOverheadSec() + p.PerTransferOverheadSec(),
		PropSecPerHop:     p.PropagationNsPerHop * 1e-9,
	}
}

// Wrht predicts the Wrht plan's communication time on the optical substrate.
func Wrht(plan *core.Plan, bytes int64, p optical.Params) float64 {
	return plan.PredictTime(CostParamsOf(p), bytes)
}

// WrhtPipelined predicts the chunked-pipeline variant's communication time
// (core.PredictPipelinedTime's documented round-splitting approximation).
func WrhtPipelined(plan *core.Plan, bytes int64, p optical.Params, chunks int) float64 {
	return plan.PredictPipelinedTime(CostParamsOf(p), bytes, chunks)
}

// WrhtAuto builds the optimizer-chosen plan for (n, w implied by p) and
// predicts its time.
func WrhtAuto(n int, bytes int64, p optical.Params) (*core.Plan, float64, error) {
	opts := core.DefaultOptions()
	opts.Cost = CostParamsOf(p)
	plan, err := core.BuildPlan(n, p.Wavelengths, opts)
	if err != nil {
		return nil, 0, err
	}
	return plan, Wrht(plan, bytes, p), nil
}

// Reduction returns the paper's headline metric: the fractional time
// reduction of ours versus baseline (e.g. 0.7576 for "75.76%").
func Reduction(baseline, ours float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return 1 - ours/baseline
}

// CrossoverBytes finds, by bisection over [lo, hi], the buffer size at which
// two time functions cross (f(lo)-g(lo) and f(hi)-g(hi) must differ in
// sign). It returns an error when no crossover exists in the interval.
func CrossoverBytes(f, g func(bytes int64) float64, lo, hi int64) (int64, error) {
	if lo <= 0 || hi <= lo {
		return 0, fmt.Errorf("model: bad interval [%d, %d]", lo, hi)
	}
	d := func(b int64) float64 { return f(b) - g(b) }
	dl, dh := d(lo), d(hi)
	if dl == 0 {
		return lo, nil
	}
	if dh == 0 {
		return hi, nil
	}
	if math.Signbit(dl) == math.Signbit(dh) {
		return 0, fmt.Errorf("model: no crossover in [%d, %d] (Δlo=%g, Δhi=%g)", lo, hi, dl, dh)
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		dm := d(mid)
		if dm == 0 {
			return mid, nil
		}
		if math.Signbit(dm) == math.Signbit(dl) {
			lo, dl = mid, dm
		} else {
			hi = mid
		}
	}
	return hi, nil
}
