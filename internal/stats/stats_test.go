package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRowf("bee", 2.5)
	s := tb.String()
	for _, want := range []string{"demo", "name", "value", "a", "bee", "2.5", "----"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tb := NewTable("m", "x", "y")
	tb.AddRow("a,b", "2")
	md := tb.Markdown()
	if !strings.Contains(md, "| x | y |") || !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("bad markdown:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"a,b",2`) {
		t.Fatalf("bad csv quoting:\n%s", csv)
	}
}

func TestAddRowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on row width mismatch")
		}
	}()
	NewTable("", "a", "b").AddRow("only one")
}

func TestAddRowfTypes(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d")
	tb.AddRowf("s", 1.5, 7, int64(9))
	row := tb.Rows[0]
	if row[0] != "s" || row[1] != "1.5" || row[2] != "7" || row[3] != "9" {
		t.Fatalf("AddRowf row = %v", row)
	}
}

func TestMeans(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 || Median(nil) != 0 {
		t.Fatal("empty inputs should give 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean broken")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("GeoMean with negative should be 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd Median broken")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even Median broken")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4}, 2)
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("Normalize = %v", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero unit accepted")
		}
	}()
	Normalize([]float64{1}, 0)
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:       "0s",
		1.5e-9:  "1.5ns",
		2.5e-6:  "2.5µs",
		3.25e-3: "3.25ms",
		1.75:    "1.75s",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		17:        "17B",
		2048:      "2KiB",
		5 << 20:   "5MiB",
		3 << 30:   "3GiB",
		249513376: "238MiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("JainIndex(nil) = %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero input = %v", got)
	}
	if got := JainIndex([]float64{3, 3, 3, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal allocations = %v, want 1", got)
	}
	// One tenant hogging everything approaches 1/n.
	if got := JainIndex([]float64{100, 1e-9, 1e-9, 1e-9}); math.Abs(got-0.25) > 1e-6 {
		t.Fatalf("dominated allocations = %v, want ~0.25", got)
	}
	// Known closed form: {1,2,3} -> 36/(3*14).
	if got, want := JainIndex([]float64{1, 2, 3}), 36.0/42.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("JainIndex({1,2,3}) = %v, want %v", got, want)
	}
}

func TestMax(t *testing.T) {
	if got := Max(nil); got != 0 {
		t.Fatalf("Max(nil) = %v", got)
	}
	if got := Max([]float64{-3, 2.5, 1}); got != 2.5 {
		t.Fatalf("Max = %v", got)
	}
}
