// Package stats renders experiment results as aligned text, markdown, or CSV
// tables, and provides the small statistical helpers (normalization, means,
// reductions) the harness uses to compare against the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it must match the header count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of formatted values: strings pass through, float64
// render with %.4g, ints with %d.
func (t *Table) AddRowf(cells ...interface{}) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.4g", v)
		case int:
			out[i] = fmt.Sprintf("%d", v)
		case int64:
			out[i] = fmt.Sprintf("%d", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(out...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Headers, " | "))
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

// CSV renders the table as comma-separated values (naive quoting: cells
// containing commas or quotes are double-quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Percentile returns the p-th percentile (0 < p <= 100) by the nearest-rank
// method: the smallest value with at least p% of the sample at or below it.
// Empty input returns 0. Nearest-rank is exact and deterministic — no
// interpolation — so percentile tables are byte-stable across runs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	rank := int(math.Ceil(p / 100 * float64(len(c))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(c) {
		rank = len(c)
	}
	return c[rank-1]
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) for non-negative
// allocations or slowdowns: 1 when all values are equal, approaching 1/n as
// one value dominates. Empty or all-zero input returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Max returns the maximum value (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Normalize divides every value by unit (the paper's figures use a common
// time unit across subplots). unit must be non-zero.
func Normalize(xs []float64, unit float64) []float64 {
	if unit == 0 {
		panic("stats: zero normalization unit")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / unit
	}
	return out
}

// FormatSeconds renders a duration with an adaptive unit (ns/µs/ms/s).
func FormatSeconds(s float64) string {
	abs := math.Abs(s)
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.3gns", s*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.3gµs", s*1e6)
	case abs < 1:
		return fmt.Sprintf("%.4gms", s*1e3)
	default:
		return fmt.Sprintf("%.4gs", s)
	}
}

// FormatBytes renders a byte count with an adaptive binary unit.
func FormatBytes(b int64) string {
	const kib = 1024
	switch {
	case b < kib:
		return fmt.Sprintf("%dB", b)
	case b < kib*kib:
		return fmt.Sprintf("%.3gKiB", float64(b)/kib)
	case b < kib*kib*kib:
		return fmt.Sprintf("%.4gMiB", float64(b)/(kib*kib))
	default:
		return fmt.Sprintf("%.4gGiB", float64(b)/(kib*kib*kib))
	}
}
