// Package tensor provides the small amount of buffer math the collective
// schedules need: contiguous regions of a flat gradient vector, elementwise
// reductions over regions, deterministic fill patterns used by correctness
// tests, and tolerant comparison helpers.
//
// Buffers are []float64. Correctness tests use integer-valued fills so that
// sums are exact (no floating-point reassociation error) up to 2^53.
package tensor

import (
	"fmt"
	"math"
)

// Region identifies a contiguous span [Offset, Offset+Len) of a flat buffer,
// in elements.
type Region struct {
	Offset int
	Len    int
}

// End returns the exclusive upper bound of the region.
func (r Region) End() int { return r.Offset + r.Len }

// Valid reports whether the region lies within a buffer of n elements.
func (r Region) Valid(n int) bool {
	return r.Offset >= 0 && r.Len >= 0 && r.Offset+r.Len <= n
}

func (r Region) String() string {
	return fmt.Sprintf("[%d:%d)", r.Offset, r.Offset+r.Len)
}

// Overlaps reports whether two regions share at least one element.
func (r Region) Overlaps(o Region) bool {
	return r.Len > 0 && o.Len > 0 && r.Offset < o.End() && o.Offset < r.End()
}

// Chunks partitions n elements into parts contiguous regions whose lengths
// differ by at most one (the first n%parts regions get the extra element).
// It covers [0, n) exactly. parts must be >= 1; n may be smaller than parts,
// in which case trailing regions are empty.
func Chunks(n, parts int) []Region {
	if parts < 1 {
		panic(fmt.Sprintf("tensor: Chunks called with parts=%d", parts))
	}
	if n < 0 {
		panic(fmt.Sprintf("tensor: Chunks called with n=%d", n))
	}
	out := make([]Region, parts)
	base := n / parts
	extra := n % parts
	off := 0
	for i := range out {
		l := base
		if i < extra {
			l++
		}
		out[i] = Region{Offset: off, Len: l}
		off += l
	}
	return out
}

// Halves splits a region into two regions of as-equal-as-possible length,
// the first taking the extra element when the length is odd.
func Halves(r Region) (Region, Region) {
	l0 := (r.Len + 1) / 2
	return Region{Offset: r.Offset, Len: l0},
		Region{Offset: r.Offset + l0, Len: r.Len - l0}
}

// AddRegion accumulates src's region into dst's same region: dst[r] += src[r].
func AddRegion(dst, src []float64, r Region) {
	d := dst[r.Offset:r.End()]
	s := src[r.Offset:r.End()]
	for i := range d {
		d[i] += s[i]
	}
}

// CopyRegion copies src's region into dst's same region.
func CopyRegion(dst, src []float64, r Region) {
	copy(dst[r.Offset:r.End()], src[r.Offset:r.End()])
}

// Add accumulates src into dst elementwise. Lengths must match.
func Add(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// Scale multiplies every element of buf by f.
func Scale(buf []float64, f float64) {
	for i := range buf {
		buf[i] *= f
	}
}

// Fill writes a deterministic per-node pattern: buf[i] = pattern(node, i).
// The default integer pattern keeps sums exact for up to ~10^6 nodes.
func Fill(buf []float64, node int) {
	for i := range buf {
		buf[i] = PatternValue(node, i)
	}
}

// PatternValue is the canonical deterministic test pattern. It is integer
// valued so reductions are exact regardless of the order of addition.
func PatternValue(node, i int) float64 {
	return float64((node+1)*(i%97+1) + i%13)
}

// ExpectedSum returns what element i of an all-reduced buffer must equal when
// every node n filled its buffer with PatternValue(n, i).
func ExpectedSum(n, i int) float64 {
	// sum over node=0..n-1 of (node+1)*(i%97+1) + i%13
	// = (i%97+1) * n(n+1)/2 + n*(i%13)
	return float64(i%97+1)*float64(n)*float64(n+1)/2 + float64(n)*float64(i%13)
}

// AllClose reports whether a and b agree elementwise within absolute
// tolerance tol. Lengths must match exactly.
func AllClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise |a[i]-b[i]| and its index.
// Lengths must match.
func MaxAbsDiff(a, b []float64) (float64, int) {
	if len(a) != len(b) {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	worst, at := 0.0, -1
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst, at = d, i
		}
	}
	return worst, at
}

// Zeros returns a freshly allocated zero buffer of n elements.
func Zeros(n int) []float64 { return make([]float64, n) }

// Clone returns a copy of buf.
func Clone(buf []float64) []float64 {
	out := make([]float64, len(buf))
	copy(out, buf)
	return out
}
