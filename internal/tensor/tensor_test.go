package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChunksCoverExactly(t *testing.T) {
	cases := []struct{ n, parts int }{
		{0, 1}, {1, 1}, {5, 2}, {7, 3}, {10, 10}, {3, 5}, {1000, 7}, {97, 96},
	}
	for _, c := range cases {
		regs := Chunks(c.n, c.parts)
		if len(regs) != c.parts {
			t.Fatalf("Chunks(%d,%d): got %d regions", c.n, c.parts, len(regs))
		}
		off := 0
		for i, r := range regs {
			if r.Offset != off {
				t.Fatalf("Chunks(%d,%d): region %d offset %d, want %d", c.n, c.parts, i, r.Offset, off)
			}
			if r.Len < 0 {
				t.Fatalf("negative length region %v", r)
			}
			off = r.End()
		}
		if off != c.n {
			t.Fatalf("Chunks(%d,%d): covered %d elements", c.n, c.parts, off)
		}
	}
}

func TestChunksBalanced(t *testing.T) {
	// Lengths differ by at most one.
	prop := func(n uint16, parts uint8) bool {
		p := int(parts)%64 + 1
		regs := Chunks(int(n), p)
		min, max := int(n)+1, -1
		for _, r := range regs {
			if r.Len < min {
				min = r.Len
			}
			if r.Len > max {
				max = r.Len
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Chunks(1,0) did not panic")
		}
	}()
	Chunks(1, 0)
}

func TestHalves(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 8, 9} {
		r := Region{Offset: 5, Len: n}
		a, b := Halves(r)
		if a.Offset != r.Offset || b.End() != r.End() || a.Len+b.Len != n {
			t.Fatalf("Halves(%v) = %v,%v", r, a, b)
		}
		if a.Len-b.Len < 0 || a.Len-b.Len > 1 {
			t.Fatalf("Halves(%v) unbalanced: %v %v", r, a, b)
		}
	}
}

func TestRegionOverlaps(t *testing.T) {
	cases := []struct {
		a, b Region
		want bool
	}{
		{Region{0, 5}, Region{5, 5}, false},
		{Region{0, 5}, Region{4, 1}, true},
		{Region{0, 0}, Region{0, 5}, false},
		{Region{2, 3}, Region{0, 10}, true},
		{Region{7, 2}, Region{3, 4}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v)=%v want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("symmetry: %v.Overlaps(%v)=%v want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestAddAndCopyRegion(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	AddRegion(a, b, Region{1, 3})
	want := []float64{1, 22, 33, 44, 5}
	if !AllClose(a, want, 0) {
		t.Fatalf("AddRegion: got %v want %v", a, want)
	}
	CopyRegion(a, b, Region{0, 2})
	want = []float64{10, 20, 33, 44, 5}
	if !AllClose(a, want, 0) {
		t.Fatalf("CopyRegion: got %v want %v", a, want)
	}
}

func TestExpectedSumMatchesBruteForce(t *testing.T) {
	const n, elems = 17, 300
	acc := make([]float64, elems)
	buf := make([]float64, elems)
	for node := 0; node < n; node++ {
		Fill(buf, node)
		Add(acc, buf)
	}
	for i := 0; i < elems; i++ {
		if acc[i] != ExpectedSum(n, i) {
			t.Fatalf("element %d: brute force %v, ExpectedSum %v", i, acc[i], ExpectedSum(n, i))
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2.5, 3}
	if AllClose(a, b, 0.4) {
		t.Fatal("AllClose should fail at tol 0.4")
	}
	if !AllClose(a, b, 0.6) {
		t.Fatal("AllClose should pass at tol 0.6")
	}
	d, at := MaxAbsDiff(a, b)
	if d != 0.5 || at != 1 {
		t.Fatalf("MaxAbsDiff = %v at %d", d, at)
	}
	if AllClose(a, []float64{1, 2}, 1) {
		t.Fatal("AllClose must reject length mismatch")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := []float64{1, 2, 3}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestScale(t *testing.T) {
	a := []float64{2, 4}
	Scale(a, 0.5)
	if !AllClose(a, []float64{1, 2}, 0) {
		t.Fatalf("Scale: %v", a)
	}
}

func TestAddLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched lengths did not panic")
		}
	}()
	Add([]float64{1}, []float64{1, 2})
}

func TestChunksRandomizedCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(5000)
		parts := rng.Intn(64) + 1
		regs := Chunks(n, parts)
		seen := make([]bool, n)
		for _, r := range regs {
			for i := r.Offset; i < r.End(); i++ {
				if seen[i] {
					t.Fatalf("n=%d parts=%d: element %d covered twice", n, parts, i)
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("n=%d parts=%d: element %d not covered", n, parts, i)
			}
		}
	}
}
