package fabric

import (
	"math"
	"sort"
)

// This file holds both elastic solvers. dispatchElasticFull is the
// reference: a from-scratch three-pass solve over the whole live tenant set
// on every arrival/departure, exactly as documented on ElasticReallocate.
// elasticIndex.solve is the production incremental solver: live tenants are
// indexed by priority tier with cached fill state, so a solve visits only
// the tiers whose water level can actually change and proves the rest
// untouched in O(1) per tier. The two are bit-identical — same events, same
// stats, same recorder traces — which the equivalence property tests pin;
// the incremental solver is what makes million-event traces affordable
// (solver work scales with the churned tiers, not the live set).

// jobLess is the scheduling order shared by the priority and elastic
// policies: priority descending, then arrival ascending, then admission
// index ascending — the final tie-break makes results stable across runs
// and sweep parallelism. victimsFor sorts by its negation.
func jobLess(a, b *jobRec) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.ArrivalSec != b.ArrivalSec {
		return a.ArrivalSec < b.ArrivalSec
	}
	return a.idx < b.idx
}

// widenPays reports whether restarting r at the wider stripe strictly
// beats letting the current segment finish: the reconfiguration stall plus
// the re-priced tail must complete earlier than segStart+segLen. Pricing
// the candidate width may hit the caller's runtime function for the first
// time; its errors abort the simulation like any other runtime failure.
func (s *scheduler) widenPays(r *jobRec, width int) bool {
	tail, err := s.price(r, width)
	if err != nil {
		s.fail(err)
		return false
	}
	now := s.eng.Now()
	return now+s.pol.ReconfigDelaySec+tail*r.remainingAt(now) < r.segStart+r.segLen
}

// dispatchElastic routes an elastic solve to the incremental tier index,
// or to the reference full solver when Policy.fullSolve asks for it. With
// faults armed, queued jobs whose floor no longer fits the dark-shrunk
// budget are parked first (identically for both solvers, keeping them
// equivalent), and freed capacity settles dark after the solve.
func (s *scheduler) dispatchElastic() {
	if s.faultsOn {
		s.parkUnfittable()
		if s.err != nil {
			return
		}
	}
	if s.el != nil {
		s.el.solve(s)
	} else {
		s.dispatchElasticFull()
	}
	if s.faultsOn && s.err == nil {
		s.settleDark()
	}
}

// elTier is one priority tier of the incremental solver's live-tenant
// index: its member set (sorted by arrival, then admission index — the
// water-fill deal order) plus the cached fill state that lets a solve skip
// the tier entirely when its inputs are provably unchanged.
type elTier struct {
	prio    int
	members []*jobRec
	// sumMin/sumMax are Σ MinWavelengths / Σ MaxWavelengths over members:
	// the tier's floor and cap sums in the common case of no pinned and no
	// due members.
	sumMin int
	sumMax int
	// minEnd is a lower bound on the earliest running member completion
	// (exact as of the last fill; only member removals happen in between,
	// so it can only err conservative). A solve at now with
	// minEnd-now <= ReconfigDelaySec must scan members for pins and
	// exclusions; otherwise the cached sums are exact.
	minEnd float64
	// lastTotal is the tier's total width after the last applied fill
	// (-1 before the first); clean records that that fill had no pinned or
	// due members and no widen vetoes; dirty marks a membership change
	// since. A tier may be skipped — its assignments provably
	// byte-identical — iff !dirty && clean && no pins possible now && no
	// veto this solve && its granted total equals lastTotal: identical
	// inputs to a deterministic fill reproduce the applied widths exactly.
	lastTotal int
	clean     bool
	dirty     bool
	// Per-solve scratch, valid while stamp matches the solve number.
	stamp     int64
	exact     bool // pins/due members possible: member scan required
	hasVeto   bool
	fillClean bool // the last fill this solve saw no pins/due members
	floorSum  int  // exact floor sum (when exact)
	capSum    int  // exact cap sum (when exact)
}

// elasticIndex is the incremental solver's persistent state plus reusable
// scratch, so steady-state solves allocate nothing.
type elasticIndex struct {
	tiers   []*elTier // priority descending
	byPrio  map[int]*elTier
	filled  []*elTier // tiers filled in the current round
	changed []*jobRec // running members whose width changes this solve
	nAdmit  int
}

func newElasticIndex() *elasticIndex {
	return &elasticIndex{byPrio: map[int]*elTier{}}
}

// enqueue inserts r into the wait queue keeping it sorted by jobLess, so
// admission walks a pre-sorted queue instead of re-sorting per solve.
func (el *elasticIndex) enqueue(s *scheduler, r *jobRec) {
	q := s.queue
	i := sort.Search(len(q), func(i int) bool { return jobLess(r, q[i]) })
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = r
	s.queue = q
}

// tierFor returns (creating on demand) the tier for priority prio.
func (el *elasticIndex) tierFor(prio int) *elTier {
	if t := el.byPrio[prio]; t != nil {
		return t
	}
	t := &elTier{prio: prio, minEnd: math.Inf(1), lastTotal: -1}
	el.byPrio[prio] = t
	i := sort.Search(len(el.tiers), func(i int) bool { return el.tiers[i].prio < prio })
	el.tiers = append(el.tiers, nil)
	copy(el.tiers[i+1:], el.tiers[i:])
	el.tiers[i] = t
	return t
}

// insertMember adds r to tier t in (ArrivalSec, idx) order — the
// water-fill deal order — and marks the tier dirty.
func (el *elasticIndex) insertMember(t *elTier, r *jobRec) {
	i := sort.Search(len(t.members), func(i int) bool {
		m := t.members[i]
		if r.ArrivalSec != m.ArrivalSec {
			return r.ArrivalSec < m.ArrivalSec
		}
		return r.idx < m.idx
	})
	t.members = append(t.members, nil)
	copy(t.members[i+1:], t.members[i:])
	t.members[i] = r
	t.sumMin += r.MinWavelengths
	t.sumMax += r.MaxWavelengths
	t.dirty = true
	r.tier = t
}

// removeMember detaches a completed member from its tier.
func (el *elasticIndex) removeMember(r *jobRec) {
	t := r.tier
	if t == nil {
		return
	}
	r.tier = nil
	for i, m := range t.members {
		if m == r {
			copy(t.members[i:], t.members[i+1:])
			t.members[len(t.members)-1] = nil
			t.members = t.members[:len(t.members)-1]
			break
		}
	}
	t.sumMin -= r.MinWavelengths
	t.sumMax -= r.MaxWavelengths
	t.dirty = true
}

// solve is the incremental elastic re-solve: bit-identical in effect to
// dispatchElasticFull, but an event only pays for the tiers it can touch.
func (el *elasticIndex) solve(s *scheduler) {
	now := s.eng.Now()
	s.solver.Solves++
	solveID := s.solver.Solves
	delay := s.pol.ReconfigDelaySec

	// Phase 1: per-tier floor sums. A tier whose earliest member
	// completion lies within the settling delay may hold pinned (floor =
	// cap = current width) or due-to-complete (excluded) members and needs
	// an exact member scan; any other tier's floor sum is its cached
	// sumMin.
	reserved := 0
	for _, t := range el.tiers {
		t.stamp = solveID
		t.hasVeto = false
		if len(t.members) == 0 {
			t.exact = false
			continue
		}
		t.exact = t.minEnd-now <= delay
		if !t.exact {
			reserved += t.sumMin
			continue
		}
		t.floorSum, t.capSum = 0, 0
		for _, m := range t.members {
			end := m.segStart + m.segLen
			if m.state == stRunning && now >= end {
				continue // due to complete at this instant: left alone
			}
			f, c := m.MinWavelengths, m.MaxWavelengths
			if m.state == stRunning && end-now <= delay {
				f = len(m.waves) // pinned at its current width
				c = f
			}
			t.floorSum += f
			t.capSum += c
		}
		reserved += t.floorSum
	}

	// Phase 2: admission. The wait queue is kept sorted by jobLess, so
	// queued jobs are admitted from the front while their minimums fit;
	// the first failure blocks the rest (head-of-line, matching
	// dispatchPriority — backfilling past a blocked wide high-priority job
	// would starve it).
	el.nAdmit = 0
	for _, r := range s.queue {
		if reserved+r.MinWavelengths > s.effBudget() {
			break
		}
		reserved += r.MinWavelengths
		el.nAdmit++
		t := el.tierFor(r.Priority)
		if t.stamp != solveID { // tier created (or first seen) this solve
			t.stamp, t.exact, t.hasVeto = solveID, false, false
		}
		el.insertMember(t, r)
		if t.exact {
			t.floorSum += r.MinWavelengths
			t.capSum += r.MaxWavelengths
		}
	}

	// Phase 3: water-fill with the widen-guard veto fixed point. Each
	// round deals the surplus tier by tier (highest priority first); a
	// tier is skipped outright when its fill inputs are provably identical
	// to its last applied fill. Vetoed widenings re-cap the job at its
	// current width and trigger another round, exactly like the reference
	// solver's global re-solve; each round permanently caps at least one
	// job, so the loop terminates.
	for {
		el.filled = el.filled[:0]
		remaining := s.effBudget() - reserved
		anyVeto := false
		for _, t := range el.tiers {
			if len(t.members) == 0 {
				continue
			}
			floorSum, capSum := t.sumMin, t.sumMax
			if t.exact {
				floorSum, capSum = t.floorSum, t.capSum
			}
			if t.hasVeto {
				capSum = el.capSumWithVetoes(t, now, delay, solveID)
			}
			g := capSum - floorSum
			if g > remaining {
				g = remaining
			}
			if g < 0 {
				// Pinned floors can briefly exceed a dark-shrunk budget;
				// the tier then fills at its floors only.
				g = 0
			}
			total := floorSum + g
			remaining -= g
			if !t.dirty && !t.exact && !t.hasVeto && t.clean && t.lastTotal == total {
				s.solver.TiersSkipped++
				continue // assignments provably unchanged, byte-identical
			}
			el.fillTier(s, t, g, now, delay, solveID)
			el.filled = append(el.filled, t)
		}
		s.solver.TiersTouched += int64(len(el.filled))
		for _, t := range el.filled {
			for _, m := range t.members {
				if m.state == stRunning && m.elTarget > len(m.waves) && !s.widenPays(m, m.elTarget) {
					if s.err != nil {
						return
					}
					m.vetoCap = len(m.waves)
					m.vetoStamp = solveID
					t.hasVeto = true
					anyVeto = true
				}
			}
		}
		if s.err != nil {
			return
		}
		if !anyVeto {
			break
		}
	}

	// Phase 4: apply, in the reference solver's exact order — pause every
	// changed running member (tiers descending, members in deal order),
	// reconfigure them in the same order, drop the admitted prefix from
	// the queue, then start the admitted jobs.
	el.changed = el.changed[:0]
	for _, t := range el.filled {
		for _, m := range t.members {
			if m.state == stRunning && m.elTarget != len(m.waves) {
				el.changed = append(el.changed, m)
			}
		}
	}
	for _, m := range el.changed {
		s.pause(m)
	}
	for _, m := range el.changed {
		s.reconfigure(m, m.elTarget)
		if s.err != nil {
			return
		}
	}
	s.queue = s.queue[el.nAdmit:]
	for _, t := range el.filled {
		for _, m := range t.members {
			if s.err == nil && m.state == stWaiting {
				s.start(m, m.elTarget)
			}
		}
	}
	if s.err != nil {
		return
	}

	// Phase 5: refresh the cached fill state of every touched tier from
	// the applied assignment.
	for _, t := range el.filled {
		t.dirty = false
		t.clean = t.fillClean && !t.hasVeto
		total := 0
		minEnd := math.Inf(1)
		for _, m := range t.members {
			if m.state == stRunning {
				total += len(m.waves)
				if end := m.segStart + m.segLen; end < minEnd {
					minEnd = end
				}
			}
		}
		t.lastTotal = total
		t.minEnd = minEnd
	}
}

// capSumWithVetoes recomputes a tier's cap sum with this solve's veto caps
// (and pins/exclusions) applied.
func (el *elasticIndex) capSumWithVetoes(t *elTier, now, delay float64, solveID int64) int {
	sum := 0
	for _, m := range t.members {
		end := m.segStart + m.segLen
		if m.state == stRunning && now >= end {
			continue
		}
		c := m.MaxWavelengths
		if m.state == stRunning && end-now <= delay {
			c = len(m.waves)
		}
		if m.vetoStamp == solveID && m.vetoCap < c {
			c = m.vetoCap
		}
		sum += c
	}
	return sum
}

// fillTier materializes one tier's water-fill: targets start at each
// member's floor, then g surplus wavelengths are dealt one at a time
// round-robin in member order until every member hits its cap — the exact
// deal the reference solver performs on this tier's segment of the global
// admitted list.
func (el *elasticIndex) fillTier(s *scheduler, t *elTier, g int, now, delay float64, solveID int64) {
	t.fillClean = true
	for _, m := range t.members {
		s.solver.JobsRepriced++
		end := m.segStart + m.segLen
		if m.state == stRunning && now >= end {
			// Due to complete at this instant: untouched by the solve.
			m.elTarget = len(m.waves)
			m.elCap = m.elTarget
			t.fillClean = false
			continue
		}
		f, c := m.MinWavelengths, m.MaxWavelengths
		if m.state == stRunning && end-now <= delay {
			f = len(m.waves)
			c = f
			t.fillClean = false
		}
		if m.vetoStamp == solveID && m.vetoCap < c {
			c = m.vetoCap
		}
		m.elTarget = f
		m.elCap = c
	}
	for g > 0 {
		progressed := false
		for _, m := range t.members {
			if g == 0 {
				break
			}
			if m.elTarget < m.elCap {
				m.elTarget++
				g--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
}

// dispatchElasticFull re-solves the stripe assignment for the live tenant
// set (running plus queued) from scratch, in three passes:
//
//  1. admission — running jobs always keep at least their minimum (elastic
//     shrinks, it never fully preempts); queued jobs are admitted in
//     (priority desc, arrival asc, admission index asc) order until the
//     first one whose minimum no longer fits, which blocks the rest of the
//     queue (head-of-line, like dispatchPriority — backfilling past a
//     blocked wide high-priority job would starve it);
//  2. target widths — tiered water-filling: every admitted job starts at
//     its minimum, then the surplus is dealt one wavelength at a time
//     round-robin within each priority tier (highest tier saturates to its
//     MaxWavelengths before the next tier sees any surplus);
//  3. apply — changed running jobs are paused (work credited pro-rata),
//     then restarted at their new width with the reconfiguration penalty;
//     newly admitted jobs start penalty-free. A widening whose projected
//     completion (now + penalty + re-priced tail) is not strictly earlier
//     than the current segment's is skipped — near the end of a run the
//     settling stall outweighs any wider stripe — and a job due to finish
//     within the settling delay is pinned at its current width (its
//     departure frees capacity sooner than a stalled resize would).
//
// All orderings are deterministic, so the co-simulation stays reproducible.
// This is the reference implementation the incremental solver is proven
// against; it walks every record on every solve, so it is only selected by
// the in-package equivalence tests (Policy.fullSolve).
func (s *scheduler) dispatchElasticFull() {
	now := s.eng.Now()
	s.solver.Solves++
	var cands []*jobRec
	for _, r := range s.recs {
		// A running segment due to complete at this very instant is left
		// alone: its pending completion event (same timestamp, later
		// sequence) frees the wavelengths and re-enters this solver.
		if r.state == stRunning && now < r.segStart+r.segLen {
			cands = append(cands, r)
		}
	}
	cands = append(cands, s.queue...)
	sort.SliceStable(cands, func(a, b int) bool {
		return jobLess(cands[a], cands[b])
	})

	// A running job due to finish within the settling delay is pinned at
	// its current width: shrinking it can never pay — its natural departure
	// frees the capacity sooner than a stalled resize would — and any
	// widening would fail the widen guard anyway. Without the pin, an
	// ill-timed arrival could stall a nearly-done job for the full delay
	// and leave elastic strictly worse than grant-once first-fit.
	pinned := func(r *jobRec) bool {
		return r.state == stRunning && r.segStart+r.segLen-now <= s.pol.ReconfigDelaySec
	}
	// floor is the width a running job must keep through the solve: its
	// minimum normally, its exact current width when pinned.
	floor := func(r *jobRec) int {
		if pinned(r) {
			return len(r.waves)
		}
		return r.MinWavelengths
	}

	// Pass 1: admission. Running jobs' floors are pre-reserved; queued
	// jobs join strictly in priority order while their minimums still fit.
	// Admission stops at the first queued job that does not fit (matching
	// dispatchPriority's head-of-line semantics): letting later
	// lower-priority arrivals backfill past a blocked wide high-priority
	// job would starve it indefinitely under a steady low-priority stream.
	reserved := 0
	for _, r := range cands {
		if r.state == stRunning {
			reserved += floor(r)
		}
	}
	var admit []*jobRec
	blocked := false
	for _, r := range cands {
		if r.state == stRunning {
			// Running jobs always stay in the solve (they keep at least
			// their minimum and share in the water-fill), even when they
			// sort below a blocked queued job.
			admit = append(admit, r)
			continue
		}
		if blocked || reserved+r.MinWavelengths > s.effBudget() {
			blocked = true
			continue
		}
		reserved += r.MinWavelengths
		admit = append(admit, r)
	}

	// Pass 2: tiered water-filling over the admitted set. Fill caps start
	// at each job's MaxWavelengths; when the widen guard below vetoes a
	// widening, the job is re-capped at its current width and the fill
	// re-solved, so the declined surplus flows to jobs whose own widening
	// still pays instead of sitting dark until the next event. Each veto
	// round permanently caps at least one job (a capped job's target can
	// never exceed its current width again), so the loop runs at most
	// len(admit) times.
	caps := make([]int, len(admit))
	for i, r := range admit {
		caps[i] = r.MaxWavelengths
		if pinned(r) {
			caps[i] = len(r.waves)
		}
	}
	solve := func() []int {
		target := make([]int, len(admit))
		for i, r := range admit {
			target[i] = floor(r)
		}
		surplus := s.effBudget() - reserved
		for lo := 0; lo < len(admit) && surplus > 0; {
			hi := lo
			for hi < len(admit) && admit[hi].Priority == admit[lo].Priority {
				hi++
			}
			for surplus > 0 {
				progressed := false
				for i := lo; i < hi && surplus > 0; i++ {
					if target[i] < caps[i] {
						target[i]++
						surplus--
						progressed = true
					}
				}
				if !progressed {
					break
				}
			}
			lo = hi
		}
		return target
	}
	target := solve()
	for s.err == nil {
		vetoed := false
		for i, r := range admit {
			if r.state == stRunning && target[i] > len(r.waves) && !s.widenPays(r, target[i]) {
				caps[i] = len(r.waves)
				vetoed = true
			}
		}
		if !vetoed {
			break
		}
		target = solve()
	}
	if s.err != nil {
		return
	}

	// Pass 3: apply. Release every shrinking/changed stripe before
	// allocating any new one so a widening job can absorb a shrinking
	// neighbor's wavelengths.
	var changed []*jobRec
	widths := make(map[*jobRec]int, len(admit))
	for i, r := range admit {
		if r.state != stRunning || target[i] == len(r.waves) {
			continue
		}
		changed = append(changed, r)
		widths[r] = target[i]
	}
	for _, r := range changed {
		s.pause(r)
	}
	for _, r := range changed {
		s.reconfigure(r, widths[r])
		if s.err != nil {
			return
		}
	}
	// Newly admitted jobs start at their solved width, penalty-free.
	admitted := make(map[*jobRec]bool, len(admit))
	for i, r := range admit {
		if r.state == stWaiting {
			admitted[r] = true
			widths[r] = target[i]
		}
	}
	var keep []*jobRec
	for _, r := range s.queue {
		if !admitted[r] {
			keep = append(keep, r)
		}
	}
	s.queue = keep
	for _, r := range admit {
		if s.err == nil && admitted[r] {
			s.start(r, widths[r])
		}
	}
}
