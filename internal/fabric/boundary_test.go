package fabric

import "testing"

// The elastic widen decision (widenPays) is a strict inequality: widening
// pays only when reconfig stall + re-priced tail finishes strictly earlier
// than the current segment. A gain of exactly ReconfigDelaySec — i.e. the
// widened finish landing exactly on the unwidened one — must be vetoed, and
// identically so in the incremental and full-solve paths.
//
// Construction: budget 2, ReconfigDelaySec 3. Job A (min 1, max 2) with
// R(w) = 8/w shares the fabric with single-wavelength job B (R = 2). Both
// arrive at t=0, so A starts at width 1 with segment [0, 8]. B departs at
// t=2 freeing a wavelength; A's remaining fraction is 0.75, so widening to
// 2 prices a 3-second tail: 2 + 3 + 3 = 8 — exactly A's current segment
// end. All quantities are exact binary floats, so the comparison is a true
// equality, not a near-miss.
func TestWidenVetoExactGainBoundary(t *testing.T) {
	jobs := []Job{
		{Name: "a", MinWavelengths: 1, MaxWavelengths: 2, Runtime: perfectScaling(8)},
		{Name: "b", MaxWavelengths: 1, Runtime: perfectScaling(2)},
	}
	for _, full := range []bool{false, true} {
		pol := Policy{Kind: ElasticReallocate, ReconfigDelaySec: 3, fullSolve: full}
		res := mustSimulate(t, 2, jobs, pol)
		a := res.Jobs[0]
		if a.Reconfigs != 0 {
			t.Fatalf("fullSolve=%v: exact-gain widen not vetoed: %d reconfigs", full, a.Reconfigs)
		}
		if a.DoneSec != 8 {
			t.Fatalf("fullSolve=%v: a done %v, want exactly 8 (no widen)", full, a.DoneSec)
		}

		// Any strictly positive gain flips the decision: with delay 2.999 the
		// widened finish is 7.999 < 8, so the widen goes through.
		pol.ReconfigDelaySec = 2.999
		res = mustSimulate(t, 2, jobs, pol)
		a = res.Jobs[0]
		if a.Reconfigs != 1 || a.DoneSec >= 8 {
			t.Fatalf("fullSolve=%v: sub-boundary widen skipped: %d reconfigs, done %v",
				full, a.Reconfigs, a.DoneSec)
		}
	}
}

// The elastic pin decision is the complementary non-strict inequality: a
// running job whose segment ends within ReconfigDelaySec of now —
// boundary included — is pinned at its current width, because shrinking it
// cannot free capacity before it finishes on its own. A remaining segment
// of exactly ReconfigDelaySec must be pinned in both solver paths.
//
// Construction: budget 2, ReconfigDelaySec 1. Job A (min 1, max 2,
// R(w) = 8/w) runs alone at width 2 with segment [0, 4]. Job B (1
// wavelength, R = 2) arrives at t=3: A's remaining segment is exactly 1 =
// ReconfigDelaySec, so A is pinned, B waits, and starts at A's natural
// finish t=4.
func TestElasticPinExactBoundary(t *testing.T) {
	for _, full := range []bool{false, true} {
		pol := Policy{Kind: ElasticReallocate, ReconfigDelaySec: 1, fullSolve: full}
		jobs := []Job{
			{Name: "a", MinWavelengths: 1, MaxWavelengths: 2, Runtime: perfectScaling(8)},
			{Name: "b", ArrivalSec: 3, MaxWavelengths: 1, Runtime: perfectScaling(2)},
		}
		res := mustSimulate(t, 2, jobs, pol)
		a, b := res.Jobs[0], res.Jobs[1]
		if a.Reconfigs != 0 || a.DoneSec != 4 {
			t.Fatalf("fullSolve=%v: boundary pin violated: a reconfigs %d done %v, want 0 / 4",
				full, a.Reconfigs, a.DoneSec)
		}
		if b.StartSec != 4 || b.DoneSec != 6 {
			t.Fatalf("fullSolve=%v: b start %v done %v, want 4 / 6", full, b.StartSec, b.DoneSec)
		}

		// One tick earlier and A is no longer protected: its remaining
		// segment (1.25) exceeds the delay, so the solver shrinks it and B
		// starts immediately after the reconfig stall.
		jobs[1].ArrivalSec = 2.75
		res = mustSimulate(t, 2, jobs, pol)
		a, b = res.Jobs[0], res.Jobs[1]
		if a.Reconfigs != 1 {
			t.Fatalf("fullSolve=%v: sub-boundary arrival did not shrink a: %d reconfigs",
				full, a.Reconfigs)
		}
		if b.StartSec >= 4 {
			t.Fatalf("fullSolve=%v: b start %v, want < 4 (a shrunk on arrival)", full, b.StartSec)
		}
	}
}
