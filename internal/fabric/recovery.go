package fabric

// Failure injection and recovery: dark wavelengths (budget shrink with
// settle/evict/park), transient job crashes (checkpoint rollback and tail
// replay), and whole-fabric outages (evict-and-resubmit, driven by
// internal/fleet). Everything here is gated behind SchedOpts.Faults — with
// the machinery disarmed no branch executes, which is what keeps fault-free
// runs bit-identical to a scheduler without it.

import (
	"fmt"
	"math"
	"sort"

	"wrht/internal/faults"
	"wrht/internal/obs"
)

// Resubmit carries one outage-evicted job out of the scheduler so the
// fleet can replay it — on this fabric after repair, or elsewhere: the
// normalized job spec, its rolled-back progress and checkpoint state, the
// stats accumulated so far, and the spent retry budget.
type Resubmit struct {
	Job           Job
	Remaining     float64
	CkptRemaining float64
	CkptService   float64
	Retries       int
	Stats         JobStats
}

// WavelengthsDown darkens k wavelengths: the live budget shrinks, free
// wavelengths settle dark immediately, and tenants are shrunk to their
// floors (elastic) or evicted (pool policies) until the fabric fits.
// Requires SchedOpts.Faults; not supported under StaticPartition.
func (f *Scheduler) WavelengthsDown(k int) { f.s.wavelengthsDown(k) }

// WavelengthsUp restores up to k previously darkened wavelengths.
func (f *Scheduler) WavelengthsUp(k int) { f.s.wavelengthsUp(k) }

// InjectJobFault crashes a running job — by name when name is non-empty,
// otherwise picked by pick among the currently running set. Work since the
// job's last checkpoint is lost and the tail replays in place.
func (f *Scheduler) InjectJobFault(pick uint64, name string) {
	f.s.injectJobFault(pick, name)
}

// Outage takes the whole fabric down: every resident job (running, queued,
// or parked) is evicted and returned in admission order for the caller's
// recovery policy; arrivals while down are bounced through SchedOpts.OnEvict.
func (f *Scheduler) Outage() []Resubmit { return f.s.outage() }

// Restore brings the fabric back after an Outage.
func (f *Scheduler) Restore() { f.s.restoreFabric() }

// Down reports whether the fabric is currently in an outage.
func (f *Scheduler) Down() bool { return f.s.down }

// SubmitResumed re-enters an evicted job (same fabric after repair, or a
// migration target), seeded with its carried progress, checkpoint state,
// stats, and retry budget. rs.Job.ArrivalSec is the re-entry time — the
// caller sets it to now plus backoff (and migration cost) and it must not
// lie in the engine's past; rs.Stats.ArrivalSec keeps the original arrival
// so end-to-end slowdown spans the whole recovery.
func (f *Scheduler) SubmitResumed(rs Resubmit) error { return f.s.submitResumed(rs) }

// effBudget is the live wavelength budget: the configured budget minus
// wavelengths dark (or pending dark) from injected faults.
func (s *scheduler) effBudget() int { return s.budget - s.darkTarget }

// darkNow is the capacity currently lost to faults, for availability
// accounting: the whole budget during an outage, else the dark target.
func (s *scheduler) darkNow() int {
	if s.down {
		return s.budget
	}
	return s.darkTarget
}

func (s *scheduler) wavelengthsDown(k int) {
	if s.err != nil {
		return
	}
	if s.pol.Kind == StaticPartition {
		s.fail(fmt.Errorf("fabric: wavelength faults are not supported under StaticPartition"))
		return
	}
	if k > s.budget-s.darkTarget {
		k = s.budget - s.darkTarget
	}
	if k <= 0 {
		return
	}
	s.account()
	s.darkTarget += k
	s.emitFault(EvWavelengthDown, k)
	s.settleDark()
	if s.pol.Kind == ElasticReallocate {
		// Elastic can shrink tenants to their floors; evict (reverse
		// scheduling order) only while even the floors no longer fit.
		for s.err == nil && s.sumRunningFloors() > s.effBudget() {
			v := s.cheapestRunning()
			if v == nil {
				break
			}
			s.evictRunning(v)
			s.settleDark()
		}
	} else {
		// Grant-once pools cannot shrink a stripe; evict until the dark
		// target is physically settled.
		for s.err == nil && s.darkCount < s.darkTarget {
			v := s.cheapestRunning()
			if v == nil {
				break
			}
			s.evictRunning(v)
			s.settleDark()
		}
	}
	s.dispatch()
}

func (s *scheduler) wavelengthsUp(k int) {
	if s.err != nil {
		return
	}
	if k > s.darkTarget {
		k = s.darkTarget
	}
	if k <= 0 {
		return
	}
	s.account()
	s.darkTarget -= k
	now := s.eng.Now()
	for s.darkCount > s.darkTarget {
		n := len(s.darkIdx) - 1
		c := s.darkIdx[n]
		s.darkIdx = s.darkIdx[:n]
		s.darkCount--
		s.free[c] = true
		s.nfree++
		if s.obsTracks {
			s.rec.LaneOff(s.proc, c, now)
		}
	}
	s.emitFault(EvWavelengthUp, k)
	s.dispatch()
}

// settleDark physically darkens free wavelengths — highest index first,
// keeping the low indices the allocator prefers — until the dark count
// meets the target. When every wavelength is busy the remainder settles as
// later releases free capacity (dispatch paths re-call this).
func (s *scheduler) settleDark() {
	for s.darkCount < s.darkTarget {
		c := -1
		for i := s.budget - 1; i >= 0; i-- {
			if s.free[i] {
				c = i
				break
			}
		}
		if c < 0 {
			return
		}
		s.free[c] = false
		s.nfree--
		s.darkIdx = append(s.darkIdx, c)
		s.darkCount++
		if s.obsTracks {
			s.rec.LaneOn(s.proc, c, s.eng.Now(), "DARK")
		}
	}
}

// sumRunningFloors is Σ MinWavelengths over running tenants — the least
// capacity an elastic re-solve must reserve for them.
func (s *scheduler) sumRunningFloors() int {
	n := 0
	for _, r := range s.liveRun {
		n += r.MinWavelengths
	}
	return n
}

// cheapestRunning picks the running job the eviction order sacrifices
// first: lowest priority, then latest arrival, then highest admission
// index — the exact reverse of jobLess, so it is deterministic.
func (s *scheduler) cheapestRunning() *jobRec {
	var v *jobRec
	for _, m := range s.liveRun {
		if v == nil || jobLess(v, m) {
			v = m
		}
	}
	return v
}

// evictRunning force-evicts a running job. The cut is graceful (progress is
// credited pro-rata, unlike a crash) and the job re-enters through the
// backoff retry path.
func (s *scheduler) evictRunning(r *jobRec) {
	s.pause(r)
	if r.share >= 0 {
		s.shareBusy[r.share] = false
		r.share = -1
	}
	if s.el != nil {
		s.el.removeMember(r)
	}
	s.park(r)
}

// parkUnfittable parks every queued job whose minimum exceeds the live
// (dark-shrunk) budget: it cannot start until wavelengths are restored, and
// under head-of-line admission it would block the whole queue meanwhile.
// Inert without dark wavelengths.
func (s *scheduler) parkUnfittable() {
	if s.darkTarget == 0 {
		return
	}
	eff := s.effBudget()
	for i := 0; i < len(s.queue); {
		r := s.queue[i]
		if r.MinWavelengths <= eff {
			i++
			continue
		}
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.dequeued(r)
		s.park(r)
		if s.err != nil {
			return
		}
	}
}

// park evicts a live job that is neither queued nor holding wavelengths
// into the backoff parking lot, or fails it when its retry budget is spent.
func (s *scheduler) park(r *jobRec) {
	r.st.Evictions++
	s.evictions++
	s.emit(r, EvEvict, 0)
	s.parkForRetry(r)
}

func (s *scheduler) parkForRetry(r *jobRec) {
	if r.retries >= s.retry.MaxRetries {
		s.failJob(r)
		return
	}
	r.state = stParked
	s.parked = append(s.parked, r)
	delay := s.retry.Delay(r.retries)
	r.retries++
	r.epoch++
	epoch := r.epoch
	s.eng.After(delay, func() { s.retryArrive(r, epoch) })
}

// retryArrive re-enters a parked job after its backoff. An outage cancels
// parked retries via the epoch guard, so a live firing never races one.
func (s *scheduler) retryArrive(r *jobRec, epoch int) {
	if s.err != nil || r.epoch != epoch || r.state != stParked {
		return
	}
	for i, p := range s.parked {
		if p == r {
			s.parked = append(s.parked[:i], s.parked[i+1:]...)
			break
		}
	}
	r.state = stWaiting
	r.st.Retries++
	s.retriesN++
	s.emit(r, EvRetry, 0)
	s.queuedMin += r.MinWavelengths
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] += r.MinWavelengths
	}
	if s.el != nil {
		s.el.enqueue(s, r)
	} else {
		s.queue = append(s.queue, r)
	}
	s.dispatch()
}

// failJob permanently fails a job whose retry budget ran out. All service
// it accumulated is counted as lost work.
func (s *scheduler) failJob(r *jobRec) {
	r.state = stFailed
	r.st.Failed = true
	s.failedJobs++
	if waste := r.st.ServiceSec - r.st.LostWorkSec; waste > 0 {
		r.st.LostWorkSec += waste
		s.lostWorkSec += waste
	}
	s.liveJobs--
	if s.lite {
		s.recycle(r)
	}
}

// advanceCkpt advances r's checkpoint cursor past a cut segment that made
// `run` productive seconds out of a planned `active` (both net of the
// settling stall). With checkpointing every C service seconds, the k-th
// checkpoint of this stretch lands at productive offset kC - ckptService
// into the segment; progress is linear in time within a segment, so the
// last one fixes ckptRemaining, and the leftover service carries forward.
func (r *jobRec) advanceCkpt(run, active float64) {
	c := r.CheckpointEverySec
	total := r.ckptService + run
	if c > 0 && active > 0 {
		if k := math.Floor(total / c); k >= 1 {
			off := k*c - r.ckptService
			r.ckptRemaining = r.remaining * (1 - off/active)
			r.ckptService = total - k*c
			return
		}
	}
	r.ckptService = total
}

// rollback is advanceCkpt for a crashed segment: service past the last
// checkpoint is not carried forward but lost. Returns the lost seconds —
// the whole stretch when no checkpoint landed (or C is 0).
func (r *jobRec) rollback(run, active float64) float64 {
	c := r.CheckpointEverySec
	total := r.ckptService + run
	if c > 0 && active > 0 {
		if k := math.Floor(total / c); k >= 1 {
			off := k*c - r.ckptService
			r.ckptRemaining = r.remaining * (1 - off/active)
			r.ckptService = 0
			return total - k*c
		}
	}
	r.ckptService = 0
	return total
}

// crash cuts r's running segment like a failure: the elapsed wall time is
// charged as service, progress rolls back to the last checkpoint, and the
// pending completion is invalidated. The caller decides what happens to the
// wavelengths (replay in place for a transient fault, release on outage).
func (s *scheduler) crash(r *jobRec) {
	now := s.eng.Now()
	elapsed := now - r.segStart
	r.st.ServiceSec += elapsed
	run := elapsed - r.segPenalty
	if run < 0 {
		run = 0
	}
	active := r.segLen - r.segPenalty
	if run > active {
		run = active
	}
	lost := r.rollback(run, active)
	r.st.LostWorkSec += lost
	s.lostWorkSec += lost
	r.remaining = r.ckptRemaining
	r.epoch++ // invalidate the pending completion event
	if r.tier != nil {
		// The replayed tail ends later than the cached tier state assumed;
		// the stale minEnd only errs conservative, but force a fill so the
		// cached targets are rebuilt.
		r.tier.dirty = true
	}
}

func (s *scheduler) injectJobFault(pick uint64, name string) {
	if s.err != nil || s.down || len(s.liveRun) == 0 {
		return
	}
	var r *jobRec
	if name != "" {
		for _, m := range s.liveRun {
			if m.Name == name {
				r = m
				break
			}
		}
	} else {
		r = s.liveRun[pick%uint64(len(s.liveRun))]
	}
	now := s.eng.Now()
	if r == nil || now >= r.segStart+r.segLen {
		return // no such victim, or it completes at this very instant
	}
	s.jobFaults++
	s.crash(r)
	s.lanesOffAndCloseSeg(r)
	// The replayed tail restarts in place at the same stripe width — the
	// wavelengths never changed, so there is no reconfiguration stall.
	tail, err := s.price(r, len(r.waves))
	if err != nil {
		s.fail(err)
		return
	}
	r.segStart = now
	r.segPenalty = 0
	r.segLen = tail * r.remaining
	s.emit(r, EvJobFault, len(r.waves))
	s.lanesOn(r)
	epoch := r.epoch // crash already bumped it
	s.eng.After(r.segLen, func() { s.complete(r, epoch) })
}

func (s *scheduler) outage() []Resubmit {
	if s.err != nil || s.down {
		return nil
	}
	s.account()
	s.down = true
	s.outages++
	victims := make([]*jobRec, 0, len(s.liveRun)+len(s.queue)+len(s.parked))
	victims = append(victims, s.liveRun...)
	victims = append(victims, s.queue...)
	victims = append(victims, s.parked...)
	sort.Slice(victims, func(i, j int) bool { return victims[i].idx < victims[j].idx })
	out := make([]Resubmit, 0, len(victims))
	for _, r := range victims {
		switch r.state {
		case stRunning:
			s.crash(r)
			s.lanesOffAndCloseSeg(r)
			s.busyNow -= len(r.waves)
			if s.prioLoad != nil {
				s.prioLoad[r.Priority] -= len(r.waves)
			}
			s.release(r.waves)
			r.waves = r.waves[:0]
			s.dropRunning(r)
			if r.share >= 0 {
				s.shareBusy[r.share] = false
				r.share = -1
			}
			if s.el != nil {
				s.el.removeMember(r)
			}
		case stWaiting:
			// Pro-rata progress held only in memory dies with the fabric;
			// the job replays from its last checkpoint.
			s.dequeued(r)
			if r.ckptService > 0 {
				r.st.LostWorkSec += r.ckptService
				s.lostWorkSec += r.ckptService
				r.ckptService = 0
			}
			r.remaining = r.ckptRemaining
		case stParked:
			r.epoch++ // cancel the pending backoff retry
		}
		out = append(out, s.evictOut(r))
	}
	s.queue = s.queue[:0]
	s.parked = s.parked[:0]
	s.settleDark() // the pool is idle now; settle any dark backlog
	return out
}

// evictOut hands one outage victim to the fleet: its state is packaged for
// replay and the record leaves this scheduler's live set.
func (s *scheduler) evictOut(r *jobRec) Resubmit {
	r.st.Evictions++
	s.evictions++
	s.evictedAway++
	s.emit(r, EvEvict, 0)
	rs := Resubmit{
		Job:           r.Job,
		Remaining:     r.remaining,
		CkptRemaining: r.ckptRemaining,
		CkptService:   r.ckptService,
		Retries:       r.retries,
		Stats:         r.st,
	}
	s.liveJobs--
	r.state = stEvicted
	if s.lite {
		s.recycle(r)
	}
	return rs
}

func (s *scheduler) restoreFabric() {
	if s.err != nil || !s.down {
		return
	}
	s.account()
	s.down = false
	s.dispatch()
}

// arriveDown handles an arrival while the fabric is in an outage: the job
// bounces to the fleet through OnEvict, or — with no fleet above — waits
// out the outage in the backoff parking lot.
func (s *scheduler) arriveDown(r *jobRec) {
	s.emit(r, EvArrive, 0)
	r.st.Evictions++
	s.evictions++
	s.emit(r, EvEvict, 0)
	if s.onEvict != nil {
		s.evictedAway++
		rs := Resubmit{
			Job:           r.Job,
			Remaining:     r.remaining,
			CkptRemaining: r.ckptRemaining,
			CkptService:   r.ckptService,
			Retries:       r.retries,
			Stats:         r.st,
		}
		r.state = stEvicted
		if s.lite {
			s.recycle(r)
		}
		s.onEvict(rs)
		return
	}
	s.liveJobs++
	s.parkForRetry(r)
}

func (s *scheduler) submitResumed(rs Resubmit) error {
	j := rs.Job
	if math.IsNaN(j.ArrivalSec) || math.IsInf(j.ArrivalSec, 0) || j.ArrivalSec < s.eng.Now() {
		return fmt.Errorf("fabric: resumed job %q arrival %v is in the engine's past",
			j.Name, j.ArrivalSec)
	}
	if j.Runtime == nil {
		return fmt.Errorf("fabric: resumed job %q has no runtime function", j.Name)
	}
	if j.MinWavelengths < 1 {
		j.MinWavelengths = 1
	}
	if j.MaxWavelengths == 0 || j.MaxWavelengths > s.budget {
		j.MaxWavelengths = s.budget
	}
	if j.MaxWavelengths < j.MinWavelengths {
		// Keeps the record well-formed; admission rejects or parks a
		// minimum beyond this fabric anyway.
		j.MaxWavelengths = j.MinWavelengths
	}
	if j.Iterations < 1 {
		j.Iterations = 1
	}
	idx := s.nextID
	s.nextID++
	r := s.newRec(j, idx)
	r.remaining = rs.Remaining
	r.ckptRemaining = rs.CkptRemaining
	r.ckptService = rs.CkptService
	r.retries = rs.Retries
	r.st = rs.Stats
	if !s.lite {
		s.recs = append(s.recs, r)
		if s.rec != nil {
			s.obsTracks = true
			s.jobTracks = append(s.jobTracks, s.rec.Track(s.proc, r.Name))
		}
	}
	s.eng.At(j.ArrivalSec, func() { s.arriveResumed(r) })
	return nil
}

// arriveResumed is arrive for a recovered job: it re-enters as a retry
// (EvRetry, not EvArrive) and a temporarily short budget parks it instead
// of rejecting.
func (s *scheduler) arriveResumed(r *jobRec) {
	if s.err != nil {
		return
	}
	if s.down {
		s.arriveDown(r)
		return
	}
	r.st.Retries++
	s.retriesN++
	s.emit(r, EvRetry, 0)
	if r.MinWavelengths > s.maxGrant() {
		if r.MinWavelengths <= s.structuralMax() {
			s.liveJobs++
			s.park(r)
			return
		}
		r.state = stRejected
		r.st.Rejected = true
		s.emit(r, EvReject, 0)
		if s.lite {
			s.liteRejected++
			s.recycle(r)
		}
		return
	}
	r.state = stWaiting
	s.liveJobs++
	s.queuedMin += r.MinWavelengths
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] += r.MinWavelengths
	}
	if s.el != nil {
		s.el.enqueue(s, r)
	} else {
		s.queue = append(s.queue, r)
	}
	s.dispatch()
}

// emitFault records a fabric-level fault event (no owning job).
func (s *scheduler) emitFault(kind EventKind, width int) {
	s.evCounts[kind]++
	if s.lite {
		return
	}
	s.events = append(s.events, Event{
		TimeSec: s.eng.Now(), Kind: kind, Wavelengths: width,
	})
	if s.rec != nil {
		if !s.ftkReady {
			s.ftkReady = true
			s.faultTk = s.rec.Track(s.proc, "faults")
			s.darkTk = s.rec.CounterTrack(s.proc, "dark wavelengths")
		}
		now := s.eng.Now()
		s.rec.Instant(s.faultTk, kind.String(), now, int64(width))
		s.rec.Sample(s.darkTk, now, float64(s.darkTarget))
	}
}

// SimulateFaults is SimulateObserved with a failure plan injected on the
// run's private engine. An empty plan routes straight to SimulateObserved,
// so results stay bit-identical to the fault-free path. Fabric outage
// events are rejected here — whole-fabric recovery needs a fleet
// (internal/fleet) — and wavelength faults are rejected under
// StaticPartition (shares are position-fixed; there is no pool to shrink).
func SimulateFaults(budget int, jobs []Job, pol Policy, plan faults.Plan,
	rec *obs.Recorder, proc string) (Result, error) {
	return SimulateWith(budget, jobs, pol, plan, SchedOpts{Rec: rec, Proc: proc})
}
