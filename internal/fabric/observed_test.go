package fabric

import (
	"reflect"
	"testing"

	"wrht/internal/obs"
)

// churnJobs is a small elastic scenario with queueing, preemption-free width
// changes, and lane churn: two capped jobs fill the pool, then an uncapped
// straggler arrives and widens as they drain.
func churnJobs() []Job {
	return []Job{
		{Name: "a", MaxWavelengths: 4, Runtime: perfectScaling(8)},
		{Name: "b", MaxWavelengths: 4, Runtime: perfectScaling(8)},
		{Name: "c", ArrivalSec: 0.5, Runtime: perfectScaling(16)},
	}
}

// TestSimulateObservedBitIdentical: attaching a recorder never changes the
// simulated outcome, and the recorder captures the run's event stream,
// lane occupancy, and totals.
func TestSimulateObservedBitIdentical(t *testing.T) {
	pol := Policy{Kind: ElasticReallocate, ReconfigDelaySec: 1e-3}
	want, err := Simulate(8, churnJobs(), pol)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	got, err := SimulateObserved(8, churnJobs(), pol, rec, "fabric test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("observed fabric result diverges\n got %+v\nwant %+v", got, want)
	}

	// Every engine event appears as an instant on its job's track, and the
	// per-kind counters partition the event stream.
	snap := rec.Snapshot()
	if snap.Instants != len(want.Events) {
		t.Fatalf("recorded %d instants, want %d events", snap.Instants, len(want.Events))
	}
	var byKind int64
	for _, k := range []string{"arrive", "reject", "start", "preempt", "resume", "finish", "reconfig"} {
		byKind += rec.Counter("fabric.events." + k)
	}
	if byKind != int64(len(want.Events)) {
		t.Fatalf("per-kind event counters sum to %d, want %d", byKind, len(want.Events))
	}
	if n := rec.Counter("fabric.sims"); n != 1 {
		t.Fatalf("fabric.sims = %d, want 1", n)
	}

	// Lane busy time integrates to the run's utilization: busy λ·s equals
	// utilization × budget × makespan.
	var busy float64
	for _, ln := range snap.Lanes {
		busy += ln.BusySec
	}
	wantBusy := want.Utilization * float64(want.Budget) * want.MakespanSec
	if !approx(busy, wantBusy) {
		t.Fatalf("lane busy %.9f λ·s, want utilization·budget·makespan = %.9f", busy, wantBusy)
	}
	if v := rec.FloatCounter("fabric.lambda_busy_seconds"); !approx(v, wantBusy) {
		t.Fatalf("fabric.lambda_busy_seconds = %.9f, want %.9f", v, wantBusy)
	}

	// Peak-width gauge agrees with the result.
	var peak float64
	for _, g := range snap.Gauges {
		if g.Name == "fabric.peak_wavelengths" {
			peak = g.Max
		}
	}
	if int(peak) != want.PeakWavelengths {
		t.Fatalf("fabric.peak_wavelengths = %v, want %d", peak, want.PeakWavelengths)
	}
}

// TestSimulateObservedNilRecorder: the observed entry point with a nil
// recorder is exactly Simulate.
func TestSimulateObservedNilRecorder(t *testing.T) {
	pol := Policy{Kind: PriorityPreempt}
	want, err := Simulate(8, churnJobs(), pol)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateObserved(8, churnJobs(), pol, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("nil-recorder observed fabric result diverges")
	}
}
