package fabric

import (
	"fmt"
	"reflect"
	"testing"

	"wrht/internal/faults"
	"wrht/internal/sim"
)

// runArmed co-simulates jobs on a scheduler with the fault machinery armed
// but no fault injected.
func runArmed(t *testing.T, budget int, jobs []Job, pol Policy) Result {
	t.Helper()
	var eng sim.Engine
	sch, err := NewScheduler(&eng, budget, pol, SchedOpts{Faults: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := sch.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	res, err := sch.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFaultsArmedZeroInjectionsBitIdentical pins the central zero-fault
// guarantee at the scheduler layer: arming the fault machinery without
// injecting anything leaves every field of the result — events, per-job
// stats, aggregates, solver counters — bit-identical to a scheduler built
// without it.
func TestFaultsArmedZeroInjectionsBitIdentical(t *testing.T) {
	mixes := []struct {
		name   string
		budget int
		jobs   []Job
	}{
		{"heavy8", 8, heavyMix()},
		{"churn64", 64, churnLikeMix()},
		{"rand16", 16, randomMix(3, 12, 16)},
	}
	pols := []Policy{
		{Kind: FirstFitShare},
		{Kind: PriorityPreempt},
		{Kind: ElasticReallocate, ReconfigDelaySec: 0.03},
		{Kind: ElasticReallocate, ReconfigDelaySec: 0.03, fullSolve: true},
	}
	for _, mix := range mixes {
		for _, pol := range pols {
			name := fmt.Sprintf("%s/%s", mix.name, pol.Kind)
			base := mustSimulate(t, mix.budget, mix.jobs, pol)
			armed := runArmed(t, mix.budget, mix.jobs, pol)
			if !reflect.DeepEqual(base, armed) {
				t.Fatalf("%s: armed zero-fault run diverges from baseline:\n  base  %+v\n  armed %+v",
					name, base, armed)
			}
			if armed.Availability != 1 {
				t.Fatalf("%s: zero-fault availability %v, want 1", name, armed.Availability)
			}
		}
	}
}

// TestJobFaultCheckpointReplay pins the checkpoint arithmetic: a crash
// loses exactly the service since the last checkpoint and replays only
// that tail, while a checkpoint-free job replays from scratch.
func TestJobFaultCheckpointReplay(t *testing.T) {
	cases := []struct {
		name     string
		ckpt     float64
		wantDone float64
		wantLost float64
	}{
		// Crash at t=0.5 of a 1s run with checkpoints every 0.3 service
		// seconds: the k=1 checkpoint at 0.3 survives, 0.2 is lost, and the
		// 0.7 tail replays -> done at 1.2.
		{"ckpt0.3", 0.3, 1.2, 0.2},
		// No checkpointing: the whole 0.5 is lost, full restart -> 1.5.
		{"none", 0, 1.5, 0.5},
	}
	for _, tc := range cases {
		plan := faults.Plan{Scripted: []faults.Event{{TimeSec: 0.5, Kind: faults.JobFault}}}
		jobs := []Job{{
			Name: "solo", MaxWavelengths: 1, CheckpointEverySec: tc.ckpt,
			Runtime: perfectScaling(1.0),
		}}
		res, err := SimulateFaults(1, jobs, Policy{Kind: FirstFitShare}, plan, nil, "")
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.JobFaults != 1 || res.CompletedJobs != 1 {
			t.Fatalf("%s: faults %d completed %d, want 1/1", tc.name, res.JobFaults, res.CompletedJobs)
		}
		st := res.Jobs[0]
		if !approx(st.DoneSec, tc.wantDone) || !approx(st.LostWorkSec, tc.wantLost) {
			t.Fatalf("%s: done %v lost %v, want %v / %v",
				tc.name, st.DoneSec, st.LostWorkSec, tc.wantDone, tc.wantLost)
		}
		if !approx(res.LostWorkSec, tc.wantLost) || !approx(st.ServiceSec, tc.wantDone) {
			t.Fatalf("%s: aggregate lost %v service %v", tc.name, res.LostWorkSec, st.ServiceSec)
		}
		if res.Availability != 1 {
			t.Fatalf("%s: job faults darken nothing, availability %v", tc.name, res.Availability)
		}
	}
}

// TestWavelengthDarkElasticShrinkRestore: darkening wavelengths mid-run
// shrinks elastic tenants, restoring re-widens them, the lost capacity
// shows up in Availability, and the whole run is deterministic.
func TestWavelengthDarkElasticShrinkRestore(t *testing.T) {
	run := func() Result {
		plan := faults.Plan{Scripted: []faults.Event{
			{TimeSec: 0.5, Kind: faults.WavelengthDown, Count: 2},
			{TimeSec: 1.0, Kind: faults.WavelengthUp, Count: 2},
		}}
		jobs := []Job{
			{Name: "a", MaxWavelengths: 4, Runtime: perfectScaling(4)},
			{Name: "b", ArrivalSec: 1e-9, MaxWavelengths: 4, Runtime: perfectScaling(4)},
		}
		res, err := SimulateFaults(4, jobs, Policy{Kind: ElasticReallocate}, plan, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mustSimulate(t, 4, []Job{
		{Name: "a", MaxWavelengths: 4, Runtime: perfectScaling(4)},
		{Name: "b", ArrivalSec: 1e-9, MaxWavelengths: 4, Runtime: perfectScaling(4)},
	}, Policy{Kind: ElasticReallocate})
	res := run()
	if res.CompletedJobs != 2 {
		t.Fatalf("completed %d, want 2", res.CompletedJobs)
	}
	if res.MakespanSec <= base.MakespanSec {
		t.Fatalf("dark wavelengths should stretch the makespan: %v <= %v",
			res.MakespanSec, base.MakespanSec)
	}
	if !(res.Availability > 0 && res.Availability < 1) {
		t.Fatalf("availability %v, want in (0,1)", res.Availability)
	}
	var downs, ups int
	for _, ev := range res.Events {
		switch ev.Kind {
		case EvWavelengthDown:
			downs++
		case EvWavelengthUp:
			ups++
		}
	}
	if downs != 1 || ups != 1 {
		t.Fatalf("trace has %d down / %d up events, want 1/1", downs, ups)
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Fatalf("faulty run is not deterministic")
	}
}

// TestDarkEvictionParkRetry: under a grant-once pool policy a darkened
// wavelength evicts its tenant into the backoff parking lot; the tenant
// retries (several times while the fabric is still short) and completes
// after restore, with its pro-rata progress preserved — eviction is
// graceful, so no work is lost.
func TestDarkEvictionParkRetry(t *testing.T) {
	plan := faults.Plan{Scripted: []faults.Event{
		{TimeSec: 0.2, Kind: faults.WavelengthDown, Count: 1},
		{TimeSec: 0.3, Kind: faults.WavelengthUp, Count: 1},
	}}
	jobs := []Job{{Name: "wide", MinWavelengths: 2, MaxWavelengths: 2, Runtime: perfectScaling(2)}}
	res, err := SimulateFaults(2, jobs, Policy{Kind: FirstFitShare}, plan, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedJobs != 1 || res.FailedJobs != 0 {
		t.Fatalf("completed %d failed %d, want 1/0", res.CompletedJobs, res.FailedJobs)
	}
	st := res.Jobs[0]
	if st.Evictions < 1 || st.Retries < 1 {
		t.Fatalf("evictions %d retries %d, want >= 1 each", st.Evictions, st.Retries)
	}
	if res.Evictions != st.Evictions || res.Retries != st.Retries {
		t.Fatalf("aggregates (%d,%d) diverge from job stats (%d,%d)",
			res.Evictions, res.Retries, st.Evictions, st.Retries)
	}
	if res.LostWorkSec != 0 {
		t.Fatalf("graceful eviction lost %v seconds of work, want 0", res.LostWorkSec)
	}
	// 0.2s of the 1s run survived the eviction pro rata: the replayed tail
	// is 0.8, so completion lands at first-fitting-retry + 0.8.
	if st.DoneSec >= 0.3+1.0 || st.DoneSec <= 0.3+0.8 {
		t.Fatalf("done %v, want in (1.1, 1.3): pro-rata progress preserved", st.DoneSec)
	}
}

// TestDarkRetryBudgetExhausted: a job whose floor never fits the darkened
// budget burns its retry budget and fails permanently, with all its service
// charged as lost work.
func TestDarkRetryBudgetExhausted(t *testing.T) {
	plan := faults.Plan{
		Scripted: []faults.Event{{TimeSec: 0.2, Kind: faults.WavelengthDown, Count: 1}},
		Retry:    faults.Retry{MaxRetries: 3},
	}
	jobs := []Job{{Name: "wide", MinWavelengths: 2, MaxWavelengths: 2, Runtime: perfectScaling(2)}}
	res, err := SimulateFaults(2, jobs, Policy{Kind: FirstFitShare}, plan, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedJobs != 0 || res.FailedJobs != 1 {
		t.Fatalf("completed %d failed %d, want 0/1", res.CompletedJobs, res.FailedJobs)
	}
	if len(res.Jobs) != 1 || !res.Jobs[0].Failed {
		t.Fatalf("failed job missing from per-job stats: %+v", res.Jobs)
	}
	st := res.Jobs[0]
	if !approx(st.LostWorkSec, st.ServiceSec) || st.ServiceSec <= 0 {
		t.Fatalf("a failed job's service is all lost: lost %v of %v", st.LostWorkSec, st.ServiceSec)
	}
	if st.Retries != 3 {
		t.Fatalf("retries %d, want the full budget of 3", st.Retries)
	}
}

// TestOutageCheckpointResume drives an outage through the external
// scheduler API the way internal/fleet does: the resident job is evicted
// mid-run, rolls back to its last checkpoint, and SubmitResumed replays
// exactly the unsaved tail after repair.
func TestOutageCheckpointResume(t *testing.T) {
	var eng sim.Engine
	sch, err := NewScheduler(&eng, 1, Policy{Kind: FirstFitShare}, SchedOpts{Faults: true})
	if err != nil {
		t.Fatal(err)
	}
	err = sch.Submit(Job{
		Name: "a", MaxWavelengths: 1, CheckpointEverySec: 0.25,
		Runtime: perfectScaling(1.0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []Resubmit
	eng.At(0.6, func() { out = sch.Outage() })
	eng.At(0.8, func() {
		sch.Restore()
		if len(out) != 1 {
			t.Errorf("outage evicted %d jobs, want 1", len(out))
			return
		}
		rs := out[0]
		rs.Job.ArrivalSec = 0.85
		if err := sch.SubmitResumed(rs); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	res, err := sch.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedJobs != 1 || res.Evictions != 1 || res.Retries != 1 {
		t.Fatalf("completed/evictions/retries %d/%d/%d, want 1/1/1",
			res.CompletedJobs, res.Evictions, res.Retries)
	}
	// Crash at 0.6 with checkpoints every 0.25: the 0.5 checkpoint holds,
	// 0.1 is lost, and the resumed job replays the remaining half from
	// t=0.85 -> done at 1.35.
	var done JobStats
	for _, st := range res.Jobs {
		if !st.Rejected && st.DoneSec > 0 {
			done = st
		}
	}
	if !approx(done.DoneSec, 1.35) || !approx(done.LostWorkSec, 0.1) {
		t.Fatalf("done %v lost %v, want 1.35 / 0.1", done.DoneSec, done.LostWorkSec)
	}
	if done.ArrivalSec != 0 {
		t.Fatalf("resumed stats must keep the original arrival, got %v", done.ArrivalSec)
	}
	// The outage blacked out the whole 1-wavelength fabric for 0.2s of a
	// 1.35s makespan.
	want := 1 - 0.2/1.35
	if !approx(res.Availability, want) {
		t.Fatalf("availability %v, want %v", res.Availability, want)
	}
}

// TestOutageRejectedWithoutFleet pins that single-fabric fault plans cannot
// script whole-fabric outages (recovery needs a fleet above), and that
// wavelength faults are rejected under StaticPartition.
func TestOutageRejectedWithoutFleet(t *testing.T) {
	jobs := []Job{{Name: "a", Runtime: perfectScaling(1)}}
	plan := faults.Plan{Scripted: []faults.Event{{TimeSec: 0.1, Kind: faults.FabricDown}}}
	if _, err := SimulateFaults(2, jobs, Policy{Kind: FirstFitShare}, plan, nil, ""); err == nil {
		t.Fatal("fabric outage accepted without a fleet")
	}
	plan = faults.Plan{Scripted: []faults.Event{{TimeSec: 0.1, Kind: faults.WavelengthDown}}}
	if _, err := SimulateFaults(2, jobs, Policy{Kind: StaticPartition}, plan, nil, ""); err == nil {
		t.Fatal("wavelength fault accepted under StaticPartition")
	}
}

// TestGeneratedFaultPlanDeterministic: a seeded MTBF/MTTR plan produces the
// byte-identical result on every run.
func TestGeneratedFaultPlanDeterministic(t *testing.T) {
	run := func() Result {
		plan := faults.Plan{
			Seed: 42, HorizonSec: 2,
			WavelengthMTBFSec: 0.3, WavelengthMTTRSec: 0.1,
			JobFaultMTBFSec: 0.5,
		}
		res, err := SimulateFaults(8, heavyMix(), Policy{Kind: ElasticReallocate, ReconfigDelaySec: 1e-3}, plan, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seeded faulty run is not deterministic:\n  a %+v\n  b %+v", a, b)
	}
	if a.JobFaults == 0 && a.Evictions == 0 && a.Availability == 1 {
		t.Fatalf("plan injected nothing: %+v", a)
	}
}
