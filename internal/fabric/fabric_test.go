package fabric

import (
	"math"
	"reflect"
	"testing"
)

// perfectScaling returns a Runtime pricing `work` wavelength-seconds with
// ideal speedup: runtime(w) = work/w. It makes expected times exact.
func perfectScaling(work float64) func(int) (float64, error) {
	return func(w int) (float64, error) { return work / float64(w), nil }
}

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

func mustSimulate(t *testing.T, budget int, jobs []Job, pol Policy) Result {
	t.Helper()
	res, err := Simulate(budget, jobs, pol)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func jobByName(t *testing.T, res Result, name string) JobStats {
	t.Helper()
	for _, j := range res.Jobs {
		if j.Name == name {
			return j
		}
	}
	t.Fatalf("no job %q in result", name)
	return JobStats{}
}

func TestSingleJobGetsWholeBudget(t *testing.T) {
	for _, pol := range []Policy{{Kind: FirstFitShare}, {Kind: PriorityPreempt}} {
		res := mustSimulate(t, 8, []Job{{Name: "a", Runtime: perfectScaling(8)}}, pol)
		a := jobByName(t, res, "a")
		if a.Width != 8 || a.QueueSec != 0 || !approx(a.DoneSec, 1.0) {
			t.Fatalf("%v: %+v", pol.Kind, a)
		}
		if !approx(a.Slowdown, 1.0) || !approx(res.Utilization, 1.0) {
			t.Fatalf("%v: slowdown %v utilization %v", pol.Kind, a.Slowdown, res.Utilization)
		}
	}
}

func TestStaticPartitionShares(t *testing.T) {
	// Budget 8 split 4 ways: each tenant gets exactly 2 wavelengths.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(2)},
		{Name: "b", Runtime: perfectScaling(2)},
		{Name: "c", Runtime: perfectScaling(2)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	for _, name := range []string{"a", "b", "c"} {
		j := jobByName(t, res, name)
		if j.Width != 2 || j.QueueSec != 0 || !approx(j.DoneSec, 1.0) {
			t.Fatalf("%s: %+v", name, j)
		}
	}
	if res.PeakWavelengths != 6 {
		t.Fatalf("peak %d, want 6", res.PeakWavelengths)
	}
}

func TestStaticPartitionQueues(t *testing.T) {
	// Five equal jobs on four shares: the fifth waits for the first finisher.
	var jobs []Job
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		jobs = append(jobs, Job{Name: n, Runtime: perfectScaling(2)})
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	e := jobByName(t, res, "e")
	if !approx(e.QueueSec, 1.0) || !approx(e.DoneSec, 2.0) {
		t.Fatalf("queued job: %+v", e)
	}
	if !approx(res.MaxQueueSec, 1.0) || !approx(res.MakespanSec, 2.0) {
		t.Fatalf("aggregates: %+v", res)
	}
}

func TestStaticPartitionRespectsMaxWavelengths(t *testing.T) {
	// Shares are 2 wide but the job only accepts 1 wavelength: it must run
	// at width 1 (the share's second wavelength stays dark), and it still
	// occupies a whole tenant share.
	jobs := []Job{
		{Name: "narrow", MaxWavelengths: 1, Runtime: perfectScaling(2)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	j := jobByName(t, res, "narrow")
	if j.Width != 1 || !approx(j.DoneSec, 2.0) {
		t.Fatalf("narrow job: %+v", j)
	}
}

func TestStaticPartitionCapsTenants(t *testing.T) {
	// Five width-1 tenants on four shares: even though wavelengths remain
	// free, static isolation admits at most Partitions concurrent tenants.
	var jobs []Job
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		jobs = append(jobs, Job{Name: n, MaxWavelengths: 1, Runtime: perfectScaling(1)})
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	if res.PeakWavelengths != 4 {
		t.Fatalf("peak %d, want 4 (one per share)", res.PeakWavelengths)
	}
	e := jobByName(t, res, "e")
	if !approx(e.QueueSec, 1.0) {
		t.Fatalf("fifth tenant should wait for a share: %+v", e)
	}
}

func TestStaticPartitionDefaultClampsToSmallBudget(t *testing.T) {
	// Unset Partitions defaults to 4, clamped to the budget: a 2-wavelength
	// fabric still supports the static policy with two 1-wide shares.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(1)},
		{Name: "b", Runtime: perfectScaling(1)},
		{Name: "c", Runtime: perfectScaling(1)},
	}
	res := mustSimulate(t, 2, jobs, Policy{Kind: StaticPartition})
	a, c := jobByName(t, res, "a"), jobByName(t, res, "c")
	if a.Width != 1 || !approx(a.DoneSec, 1.0) {
		t.Fatalf("a: %+v", a)
	}
	if !approx(c.QueueSec, 1.0) {
		t.Fatalf("third tenant should queue on two shares: %+v", c)
	}
}

func TestAloneSecUsesJobWidthCap(t *testing.T) {
	// A job capped at 2 wavelengths alone on an 8-wavelength fabric is not
	// "slowed down" by its own cap: alone time is priced at its cap.
	res := mustSimulate(t, 8,
		[]Job{{Name: "capped", MaxWavelengths: 2, Runtime: perfectScaling(8)}},
		Policy{Kind: FirstFitShare})
	j := jobByName(t, res, "capped")
	if !approx(j.AloneSec, 4.0) || !approx(j.Slowdown, 1.0) {
		t.Fatalf("capped solo job: alone %v slowdown %v", j.AloneSec, j.Slowdown)
	}
}

func TestFirstFitSharesPool(t *testing.T) {
	// a takes the whole pool; b must wait; when a finishes, b and c start
	// together and split what they ask for.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(8)}, // runs 0..1 at width 8
		{Name: "b", ArrivalSec: 0.25, MinWavelengths: 4, Runtime: perfectScaling(8)},
		{Name: "c", ArrivalSec: 0.5, MaxWavelengths: 2, Runtime: perfectScaling(2)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: FirstFitShare})
	b, c := jobByName(t, res, "b"), jobByName(t, res, "c")
	if !approx(b.StartSec, 1.0) || b.Width != 8 {
		t.Fatalf("b: %+v", b)
	}
	// b grabbed everything free at t=1 (its max defaults to the budget), so
	// c waits for b despite asking for only 2 wavelengths.
	if !approx(c.StartSec, 2.0) || c.Width != 2 {
		t.Fatalf("c: %+v", c)
	}
}

func TestFirstFitSmallJobOvertakes(t *testing.T) {
	// a holds 6 of 8; b needs 4 and blocks; c needs 2 and overtakes b.
	jobs := []Job{
		{Name: "a", MaxWavelengths: 6, Runtime: perfectScaling(6)},
		{Name: "b", ArrivalSec: 0.1, MinWavelengths: 4, Runtime: perfectScaling(4)},
		{Name: "c", ArrivalSec: 0.2, MaxWavelengths: 2, Runtime: perfectScaling(1)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: FirstFitShare})
	b, c := jobByName(t, res, "b"), jobByName(t, res, "c")
	if !approx(c.StartSec, 0.2) || c.Width != 2 {
		t.Fatalf("small job should start immediately: %+v", c)
	}
	if !approx(b.StartSec, 1.0) {
		t.Fatalf("wide job should wait for a: %+v", b)
	}
}

func TestPriorityPreemption(t *testing.T) {
	// Low-priority a owns the fabric; high-priority b arrives halfway and
	// needs everything, so a is preempted and resumes pro-rata after b.
	jobs := []Job{
		{Name: "a", Priority: 0, Runtime: perfectScaling(8)},
		{Name: "b", Priority: 1, ArrivalSec: 0.5, MinWavelengths: 8, Runtime: perfectScaling(8)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: PriorityPreempt})
	a, b := jobByName(t, res, "a"), jobByName(t, res, "b")
	if !approx(b.StartSec, 0.5) || !approx(b.QueueSec, 0) || !approx(b.DoneSec, 1.5) {
		t.Fatalf("high priority should run immediately: %+v", b)
	}
	if a.Preemptions != 1 || !approx(a.DoneSec, 2.0) || !approx(a.ServiceSec, 1.0) {
		t.Fatalf("preempted job: %+v", a)
	}
	var kinds []EventKind
	for _, ev := range res.Events {
		if ev.Job == "a" {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []EventKind{EvArrive, EvStart, EvPreempt, EvResume, EvFinish}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("a's trace %v, want %v", kinds, want)
	}
}

func TestPriorityArrivalAtExactCompletionDoesNotPreempt(t *testing.T) {
	// v's completion is due at exactly t=1.0, the same instant the
	// high-priority job arrives. The arrival event fires first (lower
	// sequence number), but v's finished run must not be discarded as a
	// preemption: v completes at 1.0 and h starts at 1.0.
	jobs := []Job{
		{Name: "v", Priority: 0, Runtime: perfectScaling(8)},
		{Name: "h", Priority: 5, ArrivalSec: 1.0, MinWavelengths: 8, Runtime: perfectScaling(8)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: PriorityPreempt})
	v, h := jobByName(t, res, "v"), jobByName(t, res, "h")
	if v.Preemptions != 0 || !approx(v.DoneSec, 1.0) || !approx(v.Slowdown, 1.0) {
		t.Fatalf("finished job spuriously preempted: %+v", v)
	}
	if !approx(h.StartSec, 1.0) || !approx(h.QueueSec, 0) {
		t.Fatalf("arrival at completion instant should start immediately: %+v", h)
	}
}

func TestPriorityEqualDoesNotPreempt(t *testing.T) {
	jobs := []Job{
		{Name: "a", Priority: 1, Runtime: perfectScaling(8)},
		{Name: "b", Priority: 1, ArrivalSec: 0.5, Runtime: perfectScaling(8)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: PriorityPreempt})
	a, b := jobByName(t, res, "a"), jobByName(t, res, "b")
	if a.Preemptions != 0 || !approx(b.StartSec, 1.0) {
		t.Fatalf("equal priority must not preempt: a=%+v b=%+v", a, b)
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	// Static shares are 2 wide; a job demanding 3 can never be placed.
	jobs := []Job{
		{Name: "ok", Runtime: perfectScaling(2)},
		{Name: "wide", MinWavelengths: 3, Runtime: perfectScaling(3)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	if res.RejectedJobs != 1 || !jobByName(t, res, "wide").Rejected {
		t.Fatalf("want one rejection: %+v", res)
	}
	if jobByName(t, res, "ok").Rejected {
		t.Fatal("feasible job rejected")
	}
}

func TestAdmissionControlRejectsUnderPooledPolicies(t *testing.T) {
	// A minimum beyond the whole budget rejects that job at arrival; the
	// feasible tenants still run and produce results.
	for _, pol := range []Policy{{Kind: FirstFitShare}, {Kind: PriorityPreempt}} {
		jobs := []Job{
			{Name: "ok", Runtime: perfectScaling(2)},
			{Name: "greedy", MinWavelengths: 9, Runtime: perfectScaling(2)},
		}
		res := mustSimulate(t, 8, jobs, pol)
		if res.RejectedJobs != 1 || !jobByName(t, res, "greedy").Rejected {
			t.Fatalf("%v: want one rejection: %+v", pol.Kind, res)
		}
		if ok := jobByName(t, res, "ok"); ok.Rejected || ok.DoneSec <= 0 {
			t.Fatalf("%v: feasible job did not complete: %+v", pol.Kind, ok)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	ok := Job{Name: "a", Runtime: perfectScaling(1)}
	cases := []struct {
		name   string
		budget int
		jobs   []Job
		pol    Policy
	}{
		{"zero budget", 0, []Job{ok}, Policy{Kind: FirstFitShare}},
		{"no jobs", 8, nil, Policy{Kind: FirstFitShare}},
		{"bad policy kind", 8, []Job{ok}, Policy{Kind: PolicyKind(99)}},
		{"too many partitions", 8, []Job{ok}, Policy{Kind: StaticPartition, Partitions: 9}},
		{"negative partitions", 8, []Job{ok}, Policy{Kind: StaticPartition, Partitions: -1}},
		{"duplicate names", 8, []Job{ok, ok}, Policy{Kind: FirstFitShare}},
		{"negative arrival", 8, []Job{{Name: "a", ArrivalSec: -1, Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"NaN arrival", 8, []Job{{Name: "a", ArrivalSec: math.NaN(), Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"inverted range", 8, []Job{{Name: "a", MinWavelengths: 4, MaxWavelengths: 2, Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"negative iterations", 8, []Job{{Name: "a", Iterations: -1, Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"nil runtime", 8, []Job{{Name: "a"}}, Policy{Kind: FirstFitShare}},
		{"all rejected", 8, []Job{{Name: "a", MinWavelengths: 5, Runtime: perfectScaling(1)}}, Policy{Kind: StaticPartition}},
	}
	for _, tc := range cases {
		if _, err := Simulate(tc.budget, tc.jobs, tc.pol); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRuntimeErrorsPropagate(t *testing.T) {
	bad := func(w int) (float64, error) { return 0, errTest }
	if _, err := Simulate(8, []Job{{Name: "a", Runtime: bad}}, Policy{Kind: FirstFitShare}); err == nil {
		t.Fatal("runtime error swallowed")
	}
	negative := func(w int) (float64, error) { return -1, nil }
	if _, err := Simulate(8, []Job{{Name: "a", Runtime: negative}}, Policy{Kind: FirstFitShare}); err == nil {
		t.Fatal("non-positive runtime accepted")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic runtime failure" }

// heavyMix is a deterministic 9-job heterogeneous workload used by the
// property tests below.
func heavyMix() []Job {
	var jobs []Job
	works := []float64{8, 2, 16, 4, 1, 12, 3, 6, 2}
	for i, w := range works {
		jobs = append(jobs, Job{
			Name:           "j" + string(rune('0'+i)),
			ArrivalSec:     float64(i) * 0.15,
			Priority:       i % 3,
			MinWavelengths: 1 + i%2,
			MaxWavelengths: 2 + (i*3)%7,
			Iterations:     1 + i%2,
			Runtime:        perfectScaling(w),
		})
	}
	return jobs
}

// TestBudgetNeverExceeded replays the event trace and checks the core
// physical invariant: the sum of allocated wavelengths never exceeds the
// budget, and PeakWavelengths reports the true maximum.
func TestBudgetNeverExceeded(t *testing.T) {
	for _, pol := range []Policy{
		{Kind: StaticPartition, Partitions: 4},
		{Kind: FirstFitShare},
		{Kind: PriorityPreempt},
	} {
		const budget = 8
		res := mustSimulate(t, budget, heavyMix(), pol)
		held := map[string]int{}
		total, peak := 0, 0
		for _, ev := range res.Events {
			switch ev.Kind {
			case EvStart, EvResume:
				if held[ev.Job] != 0 {
					t.Fatalf("%v: %s started while holding %d wavelengths", pol.Kind, ev.Job, held[ev.Job])
				}
				held[ev.Job] = ev.Wavelengths
				total += ev.Wavelengths
			case EvPreempt, EvFinish:
				total -= held[ev.Job]
				held[ev.Job] = 0
			}
			if total > budget || total < 0 {
				t.Fatalf("%v: %d wavelengths allocated at t=%v (budget %d)", pol.Kind, total, ev.TimeSec, budget)
			}
			if total > peak {
				peak = total
			}
		}
		if total != 0 {
			t.Fatalf("%v: %d wavelengths still held at end", pol.Kind, total)
		}
		if peak != res.PeakWavelengths {
			t.Fatalf("%v: replayed peak %d, reported %d", pol.Kind, peak, res.PeakWavelengths)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("%v: utilization %v", pol.Kind, res.Utilization)
		}
		if res.Fairness <= 0 || res.Fairness > 1 {
			t.Fatalf("%v: fairness %v", pol.Kind, res.Fairness)
		}
		for _, j := range res.Jobs {
			if j.Rejected {
				continue
			}
			if j.Slowdown < 1-1e-9 {
				t.Fatalf("%v: job %s finished faster than alone (slowdown %v)", pol.Kind, j.Name, j.Slowdown)
			}
			if j.QueueSec < 0 || j.ServiceSec <= 0 || j.DoneSec < j.StartSec {
				t.Fatalf("%v: inconsistent stats %+v", pol.Kind, j)
			}
		}
	}
}

// TestWorkConservation checks that under perfect scaling, every job receives
// exactly its work in wavelength-seconds across all run segments, even
// through preemptions.
func TestWorkConservation(t *testing.T) {
	jobs := heavyMix()
	want := map[string]float64{}
	for i, w := range []float64{8, 2, 16, 4, 1, 12, 3, 6, 2} {
		want[jobs[i].Name] = w * float64(jobs[i].Iterations)
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: PriorityPreempt})
	got := map[string]float64{}
	holdW := map[string]int{}
	holdT := map[string]float64{}
	for _, ev := range res.Events {
		switch ev.Kind {
		case EvStart, EvResume:
			holdW[ev.Job] = ev.Wavelengths
			holdT[ev.Job] = ev.TimeSec
		case EvPreempt, EvFinish:
			got[ev.Job] += float64(holdW[ev.Job]) * (ev.TimeSec - holdT[ev.Job])
			holdW[ev.Job] = 0
		}
	}
	for name, w := range want {
		if !approx(got[name], w) {
			t.Fatalf("job %s did %v wavelength-seconds of work, want %v", name, got[name], w)
		}
	}
}

// TestDeterminism runs the same heavy workload twice per policy and requires
// bit-identical results (the sim engine breaks ties deterministically).
func TestDeterminism(t *testing.T) {
	for _, pol := range []Policy{
		{Kind: StaticPartition, Partitions: 4},
		{Kind: FirstFitShare},
		{Kind: PriorityPreempt},
	} {
		a := mustSimulate(t, 8, heavyMix(), pol)
		b := mustSimulate(t, 8, heavyMix(), pol)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: two runs differ", pol.Kind)
		}
	}
}

func TestIterationsScaleRuntime(t *testing.T) {
	one := mustSimulate(t, 8,
		[]Job{{Name: "a", Runtime: perfectScaling(8)}}, Policy{Kind: FirstFitShare})
	three := mustSimulate(t, 8,
		[]Job{{Name: "a", Iterations: 3, Runtime: perfectScaling(8)}}, Policy{Kind: FirstFitShare})
	if !approx(three.MakespanSec, 3*one.MakespanSec) {
		t.Fatalf("3 iterations took %v, one took %v", three.MakespanSec, one.MakespanSec)
	}
}

func TestPolicyAndEventStrings(t *testing.T) {
	if StaticPartition.String() != "static" || FirstFitShare.String() != "first-fit" ||
		PriorityPreempt.String() != "priority" {
		t.Fatal("policy names changed")
	}
	for _, k := range []EventKind{EvArrive, EvReject, EvStart, EvPreempt, EvResume, EvFinish} {
		if k.String() == "" {
			t.Fatalf("event kind %d has no name", int(k))
		}
	}
}
