package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// perfectScaling returns a Runtime pricing `work` wavelength-seconds with
// ideal speedup: runtime(w) = work/w. It makes expected times exact.
func perfectScaling(work float64) func(int) (float64, error) {
	return func(w int) (float64, error) { return work / float64(w), nil }
}

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

func mustSimulate(t *testing.T, budget int, jobs []Job, pol Policy) Result {
	t.Helper()
	res, err := Simulate(budget, jobs, pol)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func jobByName(t *testing.T, res Result, name string) JobStats {
	t.Helper()
	for _, j := range res.Jobs {
		if j.Name == name {
			return j
		}
	}
	t.Fatalf("no job %q in result", name)
	return JobStats{}
}

func TestSingleJobGetsWholeBudget(t *testing.T) {
	for _, pol := range []Policy{{Kind: FirstFitShare}, {Kind: PriorityPreempt}} {
		res := mustSimulate(t, 8, []Job{{Name: "a", Runtime: perfectScaling(8)}}, pol)
		a := jobByName(t, res, "a")
		if a.Width != 8 || a.QueueSec != 0 || !approx(a.DoneSec, 1.0) {
			t.Fatalf("%v: %+v", pol.Kind, a)
		}
		if !approx(a.Slowdown, 1.0) || !approx(res.Utilization, 1.0) {
			t.Fatalf("%v: slowdown %v utilization %v", pol.Kind, a.Slowdown, res.Utilization)
		}
	}
}

func TestStaticPartitionShares(t *testing.T) {
	// Budget 8 split 4 ways: each tenant gets exactly 2 wavelengths.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(2)},
		{Name: "b", Runtime: perfectScaling(2)},
		{Name: "c", Runtime: perfectScaling(2)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	for _, name := range []string{"a", "b", "c"} {
		j := jobByName(t, res, name)
		if j.Width != 2 || j.QueueSec != 0 || !approx(j.DoneSec, 1.0) {
			t.Fatalf("%s: %+v", name, j)
		}
	}
	if res.PeakWavelengths != 6 {
		t.Fatalf("peak %d, want 6", res.PeakWavelengths)
	}
}

func TestStaticPartitionQueues(t *testing.T) {
	// Five equal jobs on four shares: the fifth waits for the first finisher.
	var jobs []Job
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		jobs = append(jobs, Job{Name: n, Runtime: perfectScaling(2)})
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	e := jobByName(t, res, "e")
	if !approx(e.QueueSec, 1.0) || !approx(e.DoneSec, 2.0) {
		t.Fatalf("queued job: %+v", e)
	}
	if !approx(res.MaxQueueSec, 1.0) || !approx(res.MakespanSec, 2.0) {
		t.Fatalf("aggregates: %+v", res)
	}
}

func TestStaticPartitionRespectsMaxWavelengths(t *testing.T) {
	// Shares are 2 wide but the job only accepts 1 wavelength: it must run
	// at width 1 (the share's second wavelength stays dark), and it still
	// occupies a whole tenant share.
	jobs := []Job{
		{Name: "narrow", MaxWavelengths: 1, Runtime: perfectScaling(2)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	j := jobByName(t, res, "narrow")
	if j.Width != 1 || !approx(j.DoneSec, 2.0) {
		t.Fatalf("narrow job: %+v", j)
	}
}

func TestStaticPartitionCapsTenants(t *testing.T) {
	// Five width-1 tenants on four shares: even though wavelengths remain
	// free, static isolation admits at most Partitions concurrent tenants.
	var jobs []Job
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		jobs = append(jobs, Job{Name: n, MaxWavelengths: 1, Runtime: perfectScaling(1)})
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	if res.PeakWavelengths != 4 {
		t.Fatalf("peak %d, want 4 (one per share)", res.PeakWavelengths)
	}
	e := jobByName(t, res, "e")
	if !approx(e.QueueSec, 1.0) {
		t.Fatalf("fifth tenant should wait for a share: %+v", e)
	}
}

func TestStaticPartitionDefaultClampsToSmallBudget(t *testing.T) {
	// Unset Partitions defaults to 4, clamped to the budget: a 2-wavelength
	// fabric still supports the static policy with two 1-wide shares.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(1)},
		{Name: "b", Runtime: perfectScaling(1)},
		{Name: "c", Runtime: perfectScaling(1)},
	}
	res := mustSimulate(t, 2, jobs, Policy{Kind: StaticPartition})
	a, c := jobByName(t, res, "a"), jobByName(t, res, "c")
	if a.Width != 1 || !approx(a.DoneSec, 1.0) {
		t.Fatalf("a: %+v", a)
	}
	if !approx(c.QueueSec, 1.0) {
		t.Fatalf("third tenant should queue on two shares: %+v", c)
	}
}

func TestAloneSecUsesJobWidthCap(t *testing.T) {
	// A job capped at 2 wavelengths alone on an 8-wavelength fabric is not
	// "slowed down" by its own cap: alone time is priced at its cap.
	res := mustSimulate(t, 8,
		[]Job{{Name: "capped", MaxWavelengths: 2, Runtime: perfectScaling(8)}},
		Policy{Kind: FirstFitShare})
	j := jobByName(t, res, "capped")
	if !approx(j.AloneSec, 4.0) || !approx(j.Slowdown, 1.0) {
		t.Fatalf("capped solo job: alone %v slowdown %v", j.AloneSec, j.Slowdown)
	}
}

func TestFirstFitSharesPool(t *testing.T) {
	// a takes the whole pool; b must wait; when a finishes, b and c start
	// together and split what they ask for.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(8)}, // runs 0..1 at width 8
		{Name: "b", ArrivalSec: 0.25, MinWavelengths: 4, Runtime: perfectScaling(8)},
		{Name: "c", ArrivalSec: 0.5, MaxWavelengths: 2, Runtime: perfectScaling(2)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: FirstFitShare})
	b, c := jobByName(t, res, "b"), jobByName(t, res, "c")
	if !approx(b.StartSec, 1.0) || b.Width != 8 {
		t.Fatalf("b: %+v", b)
	}
	// b grabbed everything free at t=1 (its max defaults to the budget), so
	// c waits for b despite asking for only 2 wavelengths.
	if !approx(c.StartSec, 2.0) || c.Width != 2 {
		t.Fatalf("c: %+v", c)
	}
}

func TestFirstFitSmallJobOvertakes(t *testing.T) {
	// a holds 6 of 8; b needs 4 and blocks; c needs 2 and overtakes b.
	jobs := []Job{
		{Name: "a", MaxWavelengths: 6, Runtime: perfectScaling(6)},
		{Name: "b", ArrivalSec: 0.1, MinWavelengths: 4, Runtime: perfectScaling(4)},
		{Name: "c", ArrivalSec: 0.2, MaxWavelengths: 2, Runtime: perfectScaling(1)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: FirstFitShare})
	b, c := jobByName(t, res, "b"), jobByName(t, res, "c")
	if !approx(c.StartSec, 0.2) || c.Width != 2 {
		t.Fatalf("small job should start immediately: %+v", c)
	}
	if !approx(b.StartSec, 1.0) {
		t.Fatalf("wide job should wait for a: %+v", b)
	}
}

func TestPriorityPreemption(t *testing.T) {
	// Low-priority a owns the fabric; high-priority b arrives halfway and
	// needs everything, so a is preempted and resumes pro-rata after b.
	jobs := []Job{
		{Name: "a", Priority: 0, Runtime: perfectScaling(8)},
		{Name: "b", Priority: 1, ArrivalSec: 0.5, MinWavelengths: 8, Runtime: perfectScaling(8)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: PriorityPreempt})
	a, b := jobByName(t, res, "a"), jobByName(t, res, "b")
	if !approx(b.StartSec, 0.5) || !approx(b.QueueSec, 0) || !approx(b.DoneSec, 1.5) {
		t.Fatalf("high priority should run immediately: %+v", b)
	}
	if a.Preemptions != 1 || !approx(a.DoneSec, 2.0) || !approx(a.ServiceSec, 1.0) {
		t.Fatalf("preempted job: %+v", a)
	}
	var kinds []EventKind
	for _, ev := range res.Events {
		if ev.Job == "a" {
			kinds = append(kinds, ev.Kind)
		}
	}
	want := []EventKind{EvArrive, EvStart, EvPreempt, EvResume, EvFinish}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("a's trace %v, want %v", kinds, want)
	}
}

func TestPriorityArrivalAtExactCompletionDoesNotPreempt(t *testing.T) {
	// v's completion is due at exactly t=1.0, the same instant the
	// high-priority job arrives. The arrival event fires first (lower
	// sequence number), but v's finished run must not be discarded as a
	// preemption: v completes at 1.0 and h starts at 1.0.
	jobs := []Job{
		{Name: "v", Priority: 0, Runtime: perfectScaling(8)},
		{Name: "h", Priority: 5, ArrivalSec: 1.0, MinWavelengths: 8, Runtime: perfectScaling(8)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: PriorityPreempt})
	v, h := jobByName(t, res, "v"), jobByName(t, res, "h")
	if v.Preemptions != 0 || !approx(v.DoneSec, 1.0) || !approx(v.Slowdown, 1.0) {
		t.Fatalf("finished job spuriously preempted: %+v", v)
	}
	if !approx(h.StartSec, 1.0) || !approx(h.QueueSec, 0) {
		t.Fatalf("arrival at completion instant should start immediately: %+v", h)
	}
}

func TestPriorityEqualDoesNotPreempt(t *testing.T) {
	jobs := []Job{
		{Name: "a", Priority: 1, Runtime: perfectScaling(8)},
		{Name: "b", Priority: 1, ArrivalSec: 0.5, Runtime: perfectScaling(8)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: PriorityPreempt})
	a, b := jobByName(t, res, "a"), jobByName(t, res, "b")
	if a.Preemptions != 0 || !approx(b.StartSec, 1.0) {
		t.Fatalf("equal priority must not preempt: a=%+v b=%+v", a, b)
	}
}

func TestStaticPartitionDistributesRemainder(t *testing.T) {
	// Budget 10 split 4 ways used to leave 10%4 = 2 wavelengths permanently
	// dark (every share was 10/4 = 2 wide). The remainder is now spread
	// round-robin: shares are 3,3,2,2 — every wavelength belongs to a share.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(6)},
		{Name: "b", Runtime: perfectScaling(6)},
		{Name: "c", Runtime: perfectScaling(6)},
		{Name: "d", Runtime: perfectScaling(6)},
	}
	res := mustSimulate(t, 10, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	widths := map[string]int{}
	for _, j := range res.Jobs {
		widths[j.Name] = j.Width
	}
	want := map[string]int{"a": 3, "b": 3, "c": 2, "d": 2}
	if !reflect.DeepEqual(widths, want) {
		t.Fatalf("share widths %v, want %v", widths, want)
	}
	// Old behavior gap (golden): with all shares 2 wide, peak was 8 of 10
	// and every job took 3.0s; now the fabric lights all 10 wavelengths and
	// the two wide-share tenants finish at 2.0s.
	if res.PeakWavelengths != 10 {
		t.Fatalf("peak %d, want 10 (remainder no longer dark)", res.PeakWavelengths)
	}
	if a := jobByName(t, res, "a"); !approx(a.DoneSec, 2.0) {
		t.Fatalf("wide-share tenant: %+v", a)
	}
	if d := jobByName(t, res, "d"); !approx(d.DoneSec, 3.0) {
		t.Fatalf("base-share tenant: %+v", d)
	}
}

func TestStaticPartitionCappedJobTakesNarrowShare(t *testing.T) {
	// Shares are 3,3,2,2. A width-capped job (Max 2) must take a narrow
	// share, leaving the wide remainder shares for tenants that can use
	// them: the min-3 job arriving right after it gets a wide share at once.
	jobs := []Job{
		{Name: "capped", MaxWavelengths: 2, Runtime: perfectScaling(4)},
		{Name: "wide", ArrivalSec: 0.1, MinWavelengths: 3, Runtime: perfectScaling(3)},
	}
	res := mustSimulate(t, 10, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	capped, wide := jobByName(t, res, "capped"), jobByName(t, res, "wide")
	if capped.Width != 2 || !approx(capped.DoneSec, 2.0) {
		t.Fatalf("capped job: %+v", capped)
	}
	if wide.Width != 3 || !approx(wide.StartSec, 0.1) {
		t.Fatalf("wide-minimum job should get a wide share immediately: %+v", wide)
	}
}

func TestStaticPartitionRemainderAdmitsWiderMinimum(t *testing.T) {
	// A job whose minimum exceeds the base share but fits a remainder share
	// used to be rejected outright; now it waits for (or takes) a wide share.
	jobs := []Job{
		{Name: "wide", MinWavelengths: 3, Runtime: perfectScaling(3)},
	}
	res := mustSimulate(t, 10, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	j := jobByName(t, res, "wide")
	if j.Rejected || j.Width != 3 || !approx(j.DoneSec, 1.0) {
		t.Fatalf("wide-minimum tenant on a remainder share: %+v", j)
	}
	// Head-of-line semantics: when both wide shares are busy, a
	// wide-minimum head job waits even though narrow shares sit free.
	mix := []Job{
		{Name: "w1", MinWavelengths: 3, Runtime: perfectScaling(3)},
		{Name: "w2", MinWavelengths: 3, Runtime: perfectScaling(3)},
		{Name: "w3", ArrivalSec: 0.1, MinWavelengths: 3, Runtime: perfectScaling(3)},
	}
	res = mustSimulate(t, 10, mix, Policy{Kind: StaticPartition, Partitions: 4})
	if w3 := jobByName(t, res, "w3"); !approx(w3.StartSec, 1.0) {
		t.Fatalf("third wide tenant should wait for a wide share: %+v", w3)
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	// Static shares are 2 wide; a job demanding 3 can never be placed.
	jobs := []Job{
		{Name: "ok", Runtime: perfectScaling(2)},
		{Name: "wide", MinWavelengths: 3, Runtime: perfectScaling(3)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: StaticPartition, Partitions: 4})
	if res.RejectedJobs != 1 || !jobByName(t, res, "wide").Rejected {
		t.Fatalf("want one rejection: %+v", res)
	}
	if jobByName(t, res, "ok").Rejected {
		t.Fatal("feasible job rejected")
	}
}

func TestAdmissionControlRejectsUnderPooledPolicies(t *testing.T) {
	// A minimum beyond the whole budget rejects that job at arrival; the
	// feasible tenants still run and produce results.
	for _, pol := range []Policy{{Kind: FirstFitShare}, {Kind: PriorityPreempt}} {
		jobs := []Job{
			{Name: "ok", Runtime: perfectScaling(2)},
			{Name: "greedy", MinWavelengths: 9, Runtime: perfectScaling(2)},
		}
		res := mustSimulate(t, 8, jobs, pol)
		if res.RejectedJobs != 1 || !jobByName(t, res, "greedy").Rejected {
			t.Fatalf("%v: want one rejection: %+v", pol.Kind, res)
		}
		if ok := jobByName(t, res, "ok"); ok.Rejected || ok.DoneSec <= 0 {
			t.Fatalf("%v: feasible job did not complete: %+v", pol.Kind, ok)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	ok := Job{Name: "a", Runtime: perfectScaling(1)}
	cases := []struct {
		name   string
		budget int
		jobs   []Job
		pol    Policy
	}{
		{"zero budget", 0, []Job{ok}, Policy{Kind: FirstFitShare}},
		{"no jobs", 8, nil, Policy{Kind: FirstFitShare}},
		{"bad policy kind", 8, []Job{ok}, Policy{Kind: PolicyKind(99)}},
		{"too many partitions", 8, []Job{ok}, Policy{Kind: StaticPartition, Partitions: 9}},
		{"negative partitions", 8, []Job{ok}, Policy{Kind: StaticPartition, Partitions: -1}},
		{"duplicate names", 8, []Job{ok, ok}, Policy{Kind: FirstFitShare}},
		{"negative arrival", 8, []Job{{Name: "a", ArrivalSec: -1, Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"NaN arrival", 8, []Job{{Name: "a", ArrivalSec: math.NaN(), Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"inverted range", 8, []Job{{Name: "a", MinWavelengths: 4, MaxWavelengths: 2, Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"negative iterations", 8, []Job{{Name: "a", Iterations: -1, Runtime: perfectScaling(1)}}, Policy{Kind: FirstFitShare}},
		{"nil runtime", 8, []Job{{Name: "a"}}, Policy{Kind: FirstFitShare}},
		{"all rejected", 8, []Job{{Name: "a", MinWavelengths: 5, Runtime: perfectScaling(1)}}, Policy{Kind: StaticPartition}},
	}
	for _, tc := range cases {
		if _, err := Simulate(tc.budget, tc.jobs, tc.pol); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRuntimeErrorsPropagate(t *testing.T) {
	bad := func(w int) (float64, error) { return 0, errTest }
	if _, err := Simulate(8, []Job{{Name: "a", Runtime: bad}}, Policy{Kind: FirstFitShare}); err == nil {
		t.Fatal("runtime error swallowed")
	}
	negative := func(w int) (float64, error) { return -1, nil }
	if _, err := Simulate(8, []Job{{Name: "a", Runtime: negative}}, Policy{Kind: FirstFitShare}); err == nil {
		t.Fatal("non-positive runtime accepted")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic runtime failure" }

// heavyMix is a deterministic 9-job heterogeneous workload used by the
// property tests below.
func heavyMix() []Job {
	var jobs []Job
	works := []float64{8, 2, 16, 4, 1, 12, 3, 6, 2}
	for i, w := range works {
		jobs = append(jobs, Job{
			Name:           "j" + string(rune('0'+i)),
			ArrivalSec:     float64(i) * 0.15,
			Priority:       i % 3,
			MinWavelengths: 1 + i%2,
			MaxWavelengths: 2 + (i*3)%7,
			Iterations:     1 + i%2,
			Runtime:        perfectScaling(w),
		})
	}
	return jobs
}

// TestBudgetNeverExceeded replays the event trace and checks the core
// physical invariant: the sum of allocated wavelengths never exceeds the
// budget, and PeakWavelengths reports the true maximum.
func TestBudgetNeverExceeded(t *testing.T) {
	for _, pol := range []Policy{
		{Kind: StaticPartition, Partitions: 4},
		{Kind: FirstFitShare},
		{Kind: PriorityPreempt},
		{Kind: ElasticReallocate},
		{Kind: ElasticReallocate, ReconfigDelaySec: 0.05},
	} {
		const budget = 8
		res := mustSimulate(t, budget, heavyMix(), pol)
		held := map[string]int{}
		total, peak := 0, 0
		for _, ev := range res.Events {
			switch ev.Kind {
			case EvStart, EvResume:
				if held[ev.Job] != 0 {
					t.Fatalf("%v: %s started while holding %d wavelengths", pol.Kind, ev.Job, held[ev.Job])
				}
				held[ev.Job] = ev.Wavelengths
				total += ev.Wavelengths
			case EvReconfig:
				if held[ev.Job] == 0 {
					t.Fatalf("%v: %s reconfigured while not running", pol.Kind, ev.Job)
				}
				total += ev.Wavelengths - held[ev.Job]
				held[ev.Job] = ev.Wavelengths
			case EvPreempt, EvFinish:
				total -= held[ev.Job]
				held[ev.Job] = 0
			}
			if total > budget || total < 0 {
				t.Fatalf("%v: %d wavelengths allocated at t=%v (budget %d)", pol.Kind, total, ev.TimeSec, budget)
			}
			if total > peak {
				peak = total
			}
		}
		if total != 0 {
			t.Fatalf("%v: %d wavelengths still held at end", pol.Kind, total)
		}
		if peak != res.PeakWavelengths {
			t.Fatalf("%v: replayed peak %d, reported %d", pol.Kind, peak, res.PeakWavelengths)
		}
		if res.Utilization <= 0 || res.Utilization > 1 {
			t.Fatalf("%v: utilization %v", pol.Kind, res.Utilization)
		}
		if res.Fairness <= 0 || res.Fairness > 1 {
			t.Fatalf("%v: fairness %v", pol.Kind, res.Fairness)
		}
		for _, j := range res.Jobs {
			if j.Rejected {
				continue
			}
			if j.Slowdown < 1-1e-9 {
				t.Fatalf("%v: job %s finished faster than alone (slowdown %v)", pol.Kind, j.Name, j.Slowdown)
			}
			if j.QueueSec < 0 || j.ServiceSec <= 0 || j.DoneSec < j.StartSec {
				t.Fatalf("%v: inconsistent stats %+v", pol.Kind, j)
			}
		}
	}
}

// TestWorkConservation checks that under perfect scaling, every job receives
// exactly its work in wavelength-seconds across all run segments, even
// through preemptions (priority) and mid-flight stripe changes (elastic at
// zero settling delay — a nonzero delay adds stall wavelength-seconds on
// top of the work by design).
func TestWorkConservation(t *testing.T) {
	for _, pol := range []Policy{{Kind: PriorityPreempt}, {Kind: ElasticReallocate}} {
		jobs := heavyMix()
		want := map[string]float64{}
		for i, w := range []float64{8, 2, 16, 4, 1, 12, 3, 6, 2} {
			want[jobs[i].Name] = w * float64(jobs[i].Iterations)
		}
		res := mustSimulate(t, 8, jobs, pol)
		got := map[string]float64{}
		holdW := map[string]int{}
		holdT := map[string]float64{}
		for _, ev := range res.Events {
			switch ev.Kind {
			case EvStart, EvResume:
				holdW[ev.Job] = ev.Wavelengths
				holdT[ev.Job] = ev.TimeSec
			case EvReconfig:
				got[ev.Job] += float64(holdW[ev.Job]) * (ev.TimeSec - holdT[ev.Job])
				holdW[ev.Job] = ev.Wavelengths
				holdT[ev.Job] = ev.TimeSec
			case EvPreempt, EvFinish:
				got[ev.Job] += float64(holdW[ev.Job]) * (ev.TimeSec - holdT[ev.Job])
				holdW[ev.Job] = 0
			}
		}
		for name, w := range want {
			if !approx(got[name], w) {
				t.Fatalf("%v: job %s did %v wavelength-seconds of work, want %v",
					pol.Kind, name, got[name], w)
			}
		}
	}
}

// TestDeterminism runs the same heavy workload twice per policy and requires
// bit-identical results (the sim engine breaks ties deterministically).
func TestDeterminism(t *testing.T) {
	for _, pol := range []Policy{
		{Kind: StaticPartition, Partitions: 4},
		{Kind: FirstFitShare},
		{Kind: PriorityPreempt},
		{Kind: ElasticReallocate, ReconfigDelaySec: 0.02},
	} {
		a := mustSimulate(t, 8, heavyMix(), pol)
		b := mustSimulate(t, 8, heavyMix(), pol)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: two runs differ", pol.Kind)
		}
	}
}

func TestIterationsScaleRuntime(t *testing.T) {
	one := mustSimulate(t, 8,
		[]Job{{Name: "a", Runtime: perfectScaling(8)}}, Policy{Kind: FirstFitShare})
	three := mustSimulate(t, 8,
		[]Job{{Name: "a", Iterations: 3, Runtime: perfectScaling(8)}}, Policy{Kind: FirstFitShare})
	if !approx(three.MakespanSec, 3*one.MakespanSec) {
		t.Fatalf("3 iterations took %v, one took %v", three.MakespanSec, one.MakespanSec)
	}
}

func TestPolicyAndEventStrings(t *testing.T) {
	if StaticPartition.String() != "static" || FirstFitShare.String() != "first-fit" ||
		PriorityPreempt.String() != "priority" || ElasticReallocate.String() != "elastic" {
		t.Fatal("policy names changed")
	}
	for _, k := range []EventKind{EvArrive, EvReject, EvStart, EvPreempt, EvResume, EvFinish, EvReconfig} {
		if k.String() == "" {
			t.Fatalf("event kind %d has no name", int(k))
		}
	}
}

func TestElasticWidensOnDeparture(t *testing.T) {
	// a (work 8) and b (work 4) split the pool 4/4 at t=0. b departs at
	// t=1; elastic re-solves and widens a to the full budget, so its
	// remaining half runs at 8 wide: done at 1.5 instead of 2.0.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(8)},
		{Name: "b", Runtime: perfectScaling(4)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: ElasticReallocate})
	a, b := jobByName(t, res, "a"), jobByName(t, res, "b")
	if a.Width != 8 || a.Reconfigs != 1 || !approx(a.DoneSec, 1.5) {
		t.Fatalf("widened job: %+v", a)
	}
	if !approx(b.DoneSec, 1.0) || b.Reconfigs != 0 {
		t.Fatalf("departing job: %+v", b)
	}
	var sawReconfig bool
	for _, ev := range res.Events {
		if ev.Kind == EvReconfig {
			if ev.Job != "a" || ev.Wavelengths != 8 || !approx(ev.TimeSec, 1.0) {
				t.Fatalf("unexpected reconfig event: %+v", ev)
			}
			sawReconfig = true
		}
	}
	if !sawReconfig {
		t.Fatal("no reconfig event in the trace")
	}
}

func TestElasticAdmitsQueuedOnDeparture(t *testing.T) {
	// a needs the whole budget; b queues behind it and is admitted at the
	// full width the moment a departs.
	jobs := []Job{
		{Name: "a", MinWavelengths: 8, Runtime: perfectScaling(8)},
		{Name: "b", ArrivalSec: 0.5, Runtime: perfectScaling(4)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: ElasticReallocate})
	b := jobByName(t, res, "b")
	if !approx(b.StartSec, 1.0) || b.Width != 8 || !approx(b.DoneSec, 1.5) {
		t.Fatalf("queued job after departure: %+v", b)
	}
	if !approx(b.QueueSec, 0.5) {
		t.Fatalf("queue time %v, want 0.5", b.QueueSec)
	}
}

func TestElasticShrinksInsteadOfPreempting(t *testing.T) {
	// Low-priority a owns the fabric when high-priority b (min 6) arrives.
	// Priority preemption would evict a entirely; elastic shrinks it to its
	// 2-wavelength minimum so both make progress, then widens it back after
	// b departs.
	jobs := []Job{
		{Name: "a", Priority: 0, MinWavelengths: 2, Runtime: perfectScaling(8)},
		{Name: "b", Priority: 5, ArrivalSec: 0.5, MinWavelengths: 6, MaxWavelengths: 6,
			Runtime: perfectScaling(6)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: ElasticReallocate})
	a, b := jobByName(t, res, "a"), jobByName(t, res, "b")
	if b.QueueSec != 0 || !approx(b.DoneSec, 1.5) || b.Width != 6 {
		t.Fatalf("high-priority arrival: %+v", b)
	}
	// a: runs 8-wide 0..0.5 (half done), 2-wide 0.5..1.5 (quarter more),
	// then widens back to 8 at b's departure: remaining quarter in 0.25s.
	if a.Preemptions != 0 {
		t.Fatalf("elastic must never fully preempt: %+v", a)
	}
	if a.Reconfigs != 2 || !approx(a.DoneSec, 1.75) {
		t.Fatalf("shrunk-then-widened job: %+v", a)
	}
}

func TestElasticReconfigPenaltyAndWidenGuard(t *testing.T) {
	// Same departure as TestElasticWidensOnDeparture. With a 0.25s settling
	// delay the widening still pays (1 + 0.25 + 0.5 = 1.75 < 2.0); with a
	// 0.6s delay it would finish later than just staying at width 4, so the
	// solver must skip it.
	mk := func() []Job {
		return []Job{
			{Name: "a", Runtime: perfectScaling(8)},
			{Name: "b", Runtime: perfectScaling(4)},
		}
	}
	res := mustSimulate(t, 8, mk(), Policy{Kind: ElasticReallocate, ReconfigDelaySec: 0.25})
	a := jobByName(t, res, "a")
	if a.Reconfigs != 1 || !approx(a.DoneSec, 1.75) {
		t.Fatalf("paying widen: %+v", a)
	}
	res = mustSimulate(t, 8, mk(), Policy{Kind: ElasticReallocate, ReconfigDelaySec: 0.6})
	a = jobByName(t, res, "a")
	if a.Reconfigs != 0 || !approx(a.DoneSec, 2.0) || a.Width != 4 {
		t.Fatalf("widen guard should keep the narrow stripe: %+v", a)
	}
	// The guarded run still reports a valid utilization (stalls hold
	// wavelengths, so utilization can exceed the pure-work level but not 1).
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestElasticVetoedSurplusFlowsToOtherJobs(t *testing.T) {
	// X, Y, Z water-fill to 4 λ each at t=0. X departs at t=1, freeing 4 λ.
	// The even re-split (Y, Z → 6 each) fails the widen guard for Y — with
	// a 1.3s settling stall, 1 + 1.3 + 0.75·(16/6) = 4.3 > its current 4.0
	// finish — so Y is re-capped at 4 and the re-solved fill hands the whole
	// freed stripe to Z (4 → 8), whose widening does pay:
	// 1 + 1.3 + (5/6)·(24/8) = 4.8 < 6.0. Without the re-solve the 4 λ
	// would sit dark until the next event and Z would finish at 5.63.
	jobs := []Job{
		{Name: "x", MaxWavelengths: 4, Runtime: perfectScaling(4)},
		{Name: "y", MaxWavelengths: 8, Runtime: perfectScaling(16)},
		{Name: "z", MaxWavelengths: 12, Runtime: perfectScaling(24)},
	}
	res := mustSimulate(t, 12, jobs, Policy{Kind: ElasticReallocate, ReconfigDelaySec: 1.3})
	y, z := jobByName(t, res, "y"), jobByName(t, res, "z")
	if y.Reconfigs != 0 || y.Width != 4 || !approx(y.DoneSec, 4.0) {
		t.Fatalf("vetoed job must keep its stripe untouched: %+v", y)
	}
	if z.Reconfigs != 1 || z.Width != 8 || !approx(z.DoneSec, 4.8) {
		t.Fatalf("freed stripe should flow past the vetoed job: %+v", z)
	}
}

func TestElasticPinsNearlyDoneJobInsteadOfShrinking(t *testing.T) {
	// a holds the whole fabric and is due to finish at t=1.0 when b arrives
	// at t=0.999 with a 0.5s settling delay. Shrinking a to admit b would
	// stall a's last millisecond of work behind the full delay (finishing
	// at ~1.5 and pushing makespan to ~2.0, strictly worse than first-fit's
	// 1.5). The solver must pin a at its current width; b then starts at
	// a's natural departure with the whole budget, matching first-fit.
	jobs := []Job{
		{Name: "a", Runtime: perfectScaling(8)},
		{Name: "b", ArrivalSec: 0.999, Runtime: perfectScaling(4)},
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: ElasticReallocate, ReconfigDelaySec: 0.5})
	a, b := jobByName(t, res, "a"), jobByName(t, res, "b")
	if a.Reconfigs != 0 || !approx(a.DoneSec, 1.0) {
		t.Fatalf("nearly-done job must not be shrunk: %+v", a)
	}
	if b.Width != 8 || !approx(b.StartSec, 1.0) || !approx(b.DoneSec, 1.5) {
		t.Fatalf("arrival should wait for the natural departure: %+v", b)
	}
	if !approx(res.MakespanSec, 1.5) {
		t.Fatalf("makespan %v, want first-fit-equivalent 1.5", res.MakespanSec)
	}
}

func TestElasticSoloMatchesDedicated(t *testing.T) {
	// A lone tenant gets the whole budget immediately and never
	// reconfigures, so elastic reproduces the dedicated-ring time exactly.
	res := mustSimulate(t, 8,
		[]Job{{Name: "solo", Runtime: perfectScaling(8)}},
		Policy{Kind: ElasticReallocate, ReconfigDelaySec: 0.1})
	j := jobByName(t, res, "solo")
	if j.Width != 8 || j.Reconfigs != 0 || !approx(j.DoneSec, 1.0) || !approx(j.Slowdown, 1.0) {
		t.Fatalf("solo elastic tenant: %+v", j)
	}
}

func TestElasticDoesNotStarveBlockedHighPriority(t *testing.T) {
	// Two low-priority min-4 tenants hold the fabric when a high-priority
	// full-width job H arrives, followed by a steady stream of low-priority
	// min-4 jobs. Backfilling admission would slip each arrival into the
	// half freed by every departure and starve H forever; head-of-line
	// admission must start H at the first instant both halves are free.
	jobs := []Job{
		{Name: "low0", Priority: 0, MinWavelengths: 4, MaxWavelengths: 4, Runtime: perfectScaling(4)},
		{Name: "low1", Priority: 0, MinWavelengths: 4, MaxWavelengths: 4, Runtime: perfectScaling(8)},
		{Name: "H", Priority: 9, ArrivalSec: 0.1, MinWavelengths: 8, Runtime: perfectScaling(8)},
	}
	for i := 0; i < 6; i++ {
		jobs = append(jobs, Job{
			Name:           fmt.Sprintf("late%d", i),
			Priority:       0,
			ArrivalSec:     0.2 + 0.1*float64(i),
			MinWavelengths: 4, MaxWavelengths: 4,
			Runtime: perfectScaling(4),
		})
	}
	res := mustSimulate(t, 8, jobs, Policy{Kind: ElasticReallocate})
	h := jobByName(t, res, "H")
	// low0 departs at 1.0, low1 at 2.0; H must start at 2.0, before any of
	// the later low-priority arrivals run.
	if !approx(h.StartSec, 2.0) {
		t.Fatalf("blocked high-priority job started at %v, want 2.0: %+v", h.StartSec, h)
	}
	for i := 0; i < 6; i++ {
		if late := jobByName(t, res, fmt.Sprintf("late%d", i)); late.StartSec < h.StartSec {
			t.Fatalf("low-priority late%d overtook the blocked high-priority job: %+v", i, late)
		}
	}
}

func TestElasticValidation(t *testing.T) {
	ok := []Job{{Name: "a", Runtime: perfectScaling(1)}}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := Simulate(8, ok, Policy{Kind: ElasticReallocate, ReconfigDelaySec: bad}); err == nil {
			t.Errorf("reconfig delay %v accepted", bad)
		}
	}
}

// TestPriorityTieBreakByAdmissionIndex: two jobs with identical priority and
// arrival time must start in admission (spec) order, every run.
func TestPriorityTieBreakByAdmissionIndex(t *testing.T) {
	mk := func() []Job {
		var jobs []Job
		for _, n := range []string{"first", "second", "third"} {
			jobs = append(jobs, Job{
				Name: n, Priority: 3, MinWavelengths: 8, Runtime: perfectScaling(8),
			})
		}
		return jobs
	}
	want := mustSimulate(t, 8, mk(), Policy{Kind: PriorityPreempt})
	for i, name := range []string{"first", "second", "third"} {
		j := jobByName(t, want, name)
		if !approx(j.StartSec, float64(i)) {
			t.Fatalf("tied job %s started at %v, want admission order (t=%d)", name, j.StartSec, i)
		}
	}
	for run := 0; run < 5; run++ {
		if got := mustSimulate(t, 8, mk(), Policy{Kind: PriorityPreempt}); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: tied-priority schedule not stable", run)
		}
	}
}

// randomMix builds a seeded random job mix for the property tests: bursty
// arrivals, mixed priorities, stripe appetites, and iteration counts, with
// a mildly non-ideal (but monotone) speedup curve.
func randomMix(seed int64, n, budget int) []Job {
	rng := rand.New(rand.NewSource(seed))
	var jobs []Job
	for i := 0; i < n; i++ {
		work := 0.5 + rng.Float64()*15
		min := 1 + rng.Intn(3)
		max := min + rng.Intn(budget-min+1)
		jobs = append(jobs, Job{
			Name:           fmt.Sprintf("r%02d", i),
			ArrivalSec:     rng.Float64() * 3,
			Priority:       rng.Intn(4),
			MinWavelengths: min,
			MaxWavelengths: max,
			Iterations:     1 + rng.Intn(3),
			Runtime: func(w int) (float64, error) {
				return work/float64(w) + 0.01, nil
			},
		})
	}
	return jobs
}

// TestPreemptionAccountingInvariants property-tests the per-job accounting
// through preemptions (priority) and mid-flight reconfigurations (elastic,
// with and without settling delay) over seeded random mixes: queue time is
// non-negative, service time fits inside the job's span, no job beats its
// contention-free alone time, and slowdowns are >= 1.
func TestPreemptionAccountingInvariants(t *testing.T) {
	const budget = 8
	const eps = 1e-9
	preempts, reconfigs := 0, 0
	for seed := int64(1); seed <= 8; seed++ {
		for _, pol := range []Policy{
			{Kind: PriorityPreempt},
			{Kind: ElasticReallocate},
			{Kind: ElasticReallocate, ReconfigDelaySec: 0.03},
		} {
			res := mustSimulate(t, budget, randomMix(seed, 10, budget), pol)
			for _, j := range res.Jobs {
				if j.Rejected {
					t.Fatalf("seed %d %v: unexpected rejection %+v", seed, pol, j)
				}
				preempts += j.Preemptions
				reconfigs += j.Reconfigs
				if j.QueueSec < -eps || j.StartSec < j.ArrivalSec-eps {
					t.Fatalf("seed %d %v: negative queue time %+v", seed, pol, j)
				}
				if j.ServiceSec <= 0 || j.DoneSec < j.StartSec-eps {
					t.Fatalf("seed %d %v: inconsistent service span %+v", seed, pol, j)
				}
				if j.ServiceSec > j.DoneSec-j.ArrivalSec+eps {
					t.Fatalf("seed %d %v: service exceeds span %+v", seed, pol, j)
				}
				if j.DoneSec-j.ArrivalSec < j.AloneSec-eps {
					t.Fatalf("seed %d %v: job beat its alone time %+v", seed, pol, j)
				}
				if j.Slowdown < 1-eps {
					t.Fatalf("seed %d %v: slowdown %v < 1 %+v", seed, pol, j.Slowdown, j)
				}
				if pol.Kind == ElasticReallocate && j.Preemptions != 0 {
					t.Fatalf("seed %d: elastic preempted %+v", seed, j)
				}
			}
		}
	}
	// The mixes are contended enough to exercise the machinery somewhere.
	if preempts == 0 || reconfigs == 0 {
		t.Fatalf("property mixes exercised %d preemptions, %d reconfigs; want both > 0",
			preempts, reconfigs)
	}
}
