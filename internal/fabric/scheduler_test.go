package fabric

import (
	"fmt"
	"testing"

	"wrht/internal/sim"
)

// runLite co-simulates jobs through the external-engine Scheduler API with
// aggregate-only stats.
func runLite(t *testing.T, budget int, jobs []Job, pol Policy) Result {
	t.Helper()
	var eng sim.Engine
	sch, err := NewScheduler(&eng, budget, pol, SchedOpts{Lite: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := sch.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	res, err := sch.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLiteAggregatesMatchFull pins that Lite mode (no events, no per-job
// stats, recycled records) reproduces the full mode's aggregates exactly.
func TestLiteAggregatesMatchFull(t *testing.T) {
	mixes := []struct {
		name   string
		budget int
		jobs   []Job
	}{
		{"heavy8", 8, heavyMix()},
		{"churn64", 64, churnLikeMix()},
		{"rand16", 16, randomMix(3, 12, 16)},
	}
	pols := []Policy{
		{Kind: FirstFitShare},
		{Kind: PriorityPreempt},
		{Kind: ElasticReallocate, ReconfigDelaySec: 0.03},
		{Kind: StaticPartition},
	}
	for _, mix := range mixes {
		for _, pol := range pols {
			name := fmt.Sprintf("%s/%s", mix.name, pol.Kind)
			full := mustSimulate(t, mix.budget, mix.jobs, pol)
			lite := runLite(t, mix.budget, mix.jobs, pol)
			if lite.Jobs != nil || lite.Events != nil {
				t.Fatalf("%s: lite result retained per-job state", name)
			}
			if lite.CompletedJobs != full.CompletedJobs ||
				lite.RejectedJobs != full.RejectedJobs ||
				lite.Preemptions != full.Preemptions ||
				lite.Reconfigs != full.Reconfigs ||
				lite.PeakWavelengths != full.PeakWavelengths {
				t.Fatalf("%s: counts diverge:\n  lite %+v\n  full %+v", name, lite, full)
			}
			floats := []struct {
				what string
				l, f float64
			}{
				{"makespan", lite.MakespanSec, full.MakespanSec},
				{"mean queue", lite.MeanQueueSec, full.MeanQueueSec},
				{"max queue", lite.MaxQueueSec, full.MaxQueueSec},
				{"mean slowdown", lite.MeanSlowdown, full.MeanSlowdown},
				{"fairness", lite.Fairness, full.Fairness},
				{"utilization", lite.Utilization, full.Utilization},
				{"slowdown sum", lite.SlowdownSum, full.SlowdownSum},
				{"slowdown sumsq", lite.SlowdownSumSq, full.SlowdownSumSq},
			}
			for _, fl := range floats {
				if !approx(fl.l, fl.f) {
					t.Fatalf("%s: %s diverges: lite %v, full %v", name, fl.what, fl.l, fl.f)
				}
			}
		}
	}
}

// TestShapeCurveCache pins that shape-sharing jobs price each (shape,
// width) pair through the runtime function at most once per scheduler, and
// that sharing a shape does not change results.
func TestShapeCurveCache(t *testing.T) {
	calls := map[int]int{}
	shaped := func(w int) (float64, error) {
		calls[w]++
		return 2.0 / float64(w), nil
	}
	var jobs, plain []Job
	for i := 0; i < 6; i++ {
		j := Job{
			Name:           fmt.Sprintf("s%d", i),
			ArrivalSec:     float64(i) * 0.1,
			MaxWavelengths: 4,
			Iterations:     1 + i%3,
		}
		p := j
		j.Shape = 7
		j.Runtime = shaped
		p.Runtime = perfectScaling(2.0)
		jobs = append(jobs, j)
		plain = append(plain, p)
	}
	pol := Policy{Kind: ElasticReallocate, ReconfigDelaySec: 0.01}
	res := mustSimulate(t, 8, jobs, pol)
	for w, n := range calls {
		if n > 1 {
			t.Fatalf("width %d priced %d times despite shared shape", w, n)
		}
	}
	if res.Solver.CurveHits == 0 || res.Solver.CurveBuilds == 0 {
		t.Fatalf("curve cache counters empty: %+v", res.Solver)
	}
	ref := mustSimulate(t, 8, plain, pol)
	for i := range res.Jobs {
		if !approx(res.Jobs[i].DoneSec, ref.Jobs[i].DoneSec) ||
			res.Jobs[i].Width != ref.Jobs[i].Width {
			t.Fatalf("shaped job %q diverges from shape-0 twin: %+v vs %+v",
				res.Jobs[i].Name, res.Jobs[i], ref.Jobs[i])
		}
	}
}

// TestSchedulerSubmitValidation mirrors the historical Simulate validation
// through the incremental Submit path.
func TestSchedulerSubmitValidation(t *testing.T) {
	var eng sim.Engine
	sch, err := NewScheduler(&eng, 8, Policy{Kind: FirstFitShare}, SchedOpts{})
	if err != nil {
		t.Fatal(err)
	}
	ok := Job{Name: "a", Runtime: perfectScaling(1)}
	if err := sch.Submit(ok); err != nil {
		t.Fatal(err)
	}
	bad := []Job{
		{Name: "a", Runtime: perfectScaling(1)},                 // duplicate
		{Name: "b", ArrivalSec: -1, Runtime: perfectScaling(1)}, // negative arrival
		{Name: "c", MinWavelengths: 4, MaxWavelengths: 2, Runtime: perfectScaling(1)},
		{Name: "d", Iterations: -1, Runtime: perfectScaling(1)},
		{Name: "e"}, // no runtime
	}
	for _, j := range bad {
		if err := sch.Submit(j); err == nil {
			t.Fatalf("job %q: expected validation error", j.Name)
		}
	}
	if _, err := NewScheduler(&eng, 0, Policy{}, SchedOpts{}); err == nil {
		t.Fatal("budget 0: expected error")
	}
}
