package fabric

import (
	"fmt"
	"math"
	"sort"

	"wrht/internal/faults"
	"wrht/internal/obs"
	"wrht/internal/sim"
	"wrht/internal/stats"
)

// SchedOpts configures a Scheduler beyond its budget and policy.
type SchedOpts struct {
	// Rec attaches a flight recorder (nil disables observability). With
	// Lite set, per-job tracks and lanes are skipped and only the run's
	// aggregate counters are recorded at Finalize.
	Rec *obs.Recorder
	// Proc names the recorder process for this fabric (one process per
	// scheduler; give concurrent fabrics unique names).
	Proc string
	// Lite switches the scheduler to aggregate-only statistics: no event
	// trace, no per-job JobStats, no duplicate-name check, and completed
	// job records are recycled — memory stays O(live jobs), not O(total
	// jobs), which is what lets trace-driven fleet runs scale to 10^6
	// events. Result.Jobs and Result.Events are nil; every aggregate field
	// is still exact.
	Lite bool
	// TrackLoad maintains per-priority committed-load counters so fleet
	// placement can query LoadAtOrAbove in O(distinct priorities).
	TrackLoad bool
	// Faults arms the failure-recovery machinery (checkpoint tracking,
	// park/retry with backoff, dark-wavelength accounting). Disarmed (the
	// default), none of its branches execute and results are bit-identical
	// to a scheduler without it.
	Faults bool
	// Retry bounds eviction recovery: capped exponential backoff between
	// retries and a per-job retry budget (zero values take
	// faults.Retry defaults). Only read when Faults is set.
	Retry faults.Retry
	// OnEvict, when set, receives jobs that arrive while the fabric is down
	// from an outage, instead of parking them locally — the fleet layer
	// re-routes them per its recovery policy. (Jobs resident at Outage()
	// time are returned by Outage itself.)
	OnEvict func(Resubmit)
	// Cancel, when set, is polled at event boundaries (every
	// sim.Engine.RunChecked interval) by the Simulate* entry points; a
	// non-nil return abandons the co-simulation with that error. This is
	// how serving deadlines propagate into a running fabric simulation.
	// Ignored by callers that drive the engine themselves (internal/fleet
	// has its own Options.Cancel).
	Cancel func() error
}

// Scheduler is one fabric's scheduler bound to an externally owned event
// engine, so several fabrics can co-simulate on a single timeline
// (internal/fleet). Submit jobs (before or during the run, with arrivals
// not in the engine's past), drive the engine, then Finalize.
//
// Simulate / SimulateObserved remain the one-fabric entry points; they are
// thin wrappers over this API.
type Scheduler struct {
	s *scheduler
}

// NewScheduler validates the budget and policy and returns a scheduler
// bound to eng. The engine must outlive the scheduler; Finalize may only be
// called once eng has drained.
func NewScheduler(eng *sim.Engine, budget int, pol Policy, opt SchedOpts) (*Scheduler, error) {
	if budget < 1 {
		return nil, fmt.Errorf("fabric: wavelength budget %d", budget)
	}
	if err := pol.Validate(budget); err != nil {
		return nil, err
	}
	s := &scheduler{
		eng: eng, pol: pol, budget: budget,
		free: make([]bool, budget), nfree: budget,
		lite: opt.Lite,
	}
	for c := range s.free {
		s.free[c] = true
	}
	if opt.Rec.Enabled() {
		s.rec = opt.Rec
		s.proc = opt.Rec.Process(opt.Proc)
	}
	if opt.TrackLoad {
		s.prioLoad = map[int]int{}
	}
	if pol.Kind == StaticPartition {
		s.shareWidth = pol.shareWidths(budget)
		s.shareBusy = make([]bool, len(s.shareWidth))
	}
	if pol.Kind == ElasticReallocate && !pol.fullSolve {
		s.el = newElasticIndex()
	}
	if !opt.Lite {
		s.seen = map[string]bool{}
	}
	if opt.Faults {
		if err := opt.Retry.Validate(); err != nil {
			return nil, err
		}
		s.faultsOn = true
		s.retry = opt.Retry.WithDefaults()
		s.onEvict = opt.OnEvict
	}
	return &Scheduler{s: s}, nil
}

// Submit validates one job and schedules its arrival. The arrival must not
// lie in the engine's past. Under Lite mode names are not deduplicated (and
// may be empty); otherwise an empty name defaults to "job<n>" in submission
// order.
func (f *Scheduler) Submit(j Job) error {
	return f.s.submit(j)
}

// Finalize closes the run and returns its statistics. The engine must have
// drained (every submitted job completed or been rejected).
func (f *Scheduler) Finalize() (Result, error) {
	s := f.s
	if s.err != nil {
		return Result{}, s.err
	}
	if s.rec != nil {
		s.recordTotals()
	}
	return s.finalize()
}

// Budget returns the fabric's wavelength budget.
func (f *Scheduler) Budget() int { return f.s.budget }

// FreeWavelengths returns the currently unallocated wavelength count.
func (f *Scheduler) FreeWavelengths() int { return f.s.nfree }

// CommittedLoad is the wavelength demand already accepted: the sum of
// running stripe widths plus queued jobs' minimum grants.
func (f *Scheduler) CommittedLoad() int { return f.s.busyNow + f.s.queuedMin }

// LiveJobs counts tenants currently running or queued.
func (f *Scheduler) LiveJobs() int { return f.s.liveJobs }

// LoadAtOrAbove is the committed load (running widths + queued minimums)
// from jobs with priority >= p. Requires SchedOpts.TrackLoad.
func (f *Scheduler) LoadAtOrAbove(p int) int {
	n := 0
	for prio, load := range f.s.prioLoad {
		if prio >= p {
			n += load
		}
	}
	return n
}

// SolverStats returns the run's scheduling-work counters so far.
func (f *Scheduler) SolverStats() SolverStats { return f.s.solver }

type scheduler struct {
	eng    *sim.Engine
	pol    Policy
	budget int
	free   []bool // free[c] = wavelength c unallocated
	nfree  int
	queue  []*jobRec
	recs   []*jobRec
	events []Event
	seen   map[string]bool // duplicate-name check (nil under Lite)
	nextID int             // submission index (jobRec.idx, auto-name suffix)

	// el is the incremental elastic solver's tier index (nil for the other
	// policies and for the reference full solver).
	el *elasticIndex

	// curves caches one-iteration runtimes keyed by (Job.Shape, width) for
	// shape-sharing jobs; shape-0 jobs memoize privately in jobRec.memo.
	curves map[int64]float64

	// solver counts scheduling work (always maintained; mirrored to the
	// recorder at Finalize).
	solver SolverStats

	// evCounts tallies emitted events per kind (kept in Lite mode where
	// the event slice itself is dropped).
	evCounts [EvRetry + 1]int64

	// Failure-recovery state (SchedOpts.Faults; all zero/idle otherwise).
	// darkTarget is the wavelength count requested dark by injected faults;
	// darkCount <= darkTarget is how many are physically dark so far
	// (settling waits for busy wavelengths to free), with darkIdx the
	// darkened indices in LIFO restore order. parked holds jobs waiting out
	// a retry backoff; down marks a whole-fabric outage.
	faultsOn    bool
	retry       faults.Retry
	onEvict     func(Resubmit)
	down        bool
	darkTarget  int
	darkCount   int
	darkIdx     []int
	parked      []*jobRec
	darkSec     float64 // Σ dark wavelength-seconds (availability)
	outages     int
	jobFaults   int
	evictions   int
	retriesN    int
	failedJobs  int
	evictedAway int // jobs handed to the fleet by an outage
	lostWorkSec float64

	// lite: aggregate-only mode (see SchedOpts.Lite).
	lite      bool
	freeRecs  []*jobRec // recycled jobRecs under Lite
	liveJobs  int       // running + waiting
	queuedMin int       // Σ MinWavelengths over queued jobs
	prioLoad  map[int]int
	// Lite aggregates over completed jobs.
	liteDone      int
	liteRejected  int
	liteSumQueue  float64
	liteMaxQueue  float64
	liteSumSlow   float64
	liteSumSlowSq float64
	liteMakespan  float64
	litePreempts  int
	liteReconfigs int

	// shareWidth holds the per-share wavelength counts under
	// StaticPartition (the remainder of an inexact division makes the
	// leading shares one wavelength wider); shareBusy marks shares
	// currently occupied by a tenant.
	shareWidth []int
	shareBusy  []bool

	// liveRun tracks running jobs for O(1) membership updates (jobRec.runPos),
	// replacing the all-records scan that Lite mode cannot afford.
	liveRun []*jobRec

	// solvePending coalesces ElasticReallocate re-solves: every arrival
	// and departure in one simulated instant triggers a single assignment
	// solve (scheduled at the same timestamp, after the instant's other
	// events), so physically simultaneous events cause one reconfiguration
	// decision instead of a cascade of transient ones.
	solvePending bool

	// ownEng marks a scheduler created by Simulate/SimulateObserved (it
	// owns the engine, so engine-wide counters are recorded at Finalize;
	// fleet runs record them once at the fleet layer instead).
	ownEng bool

	// utilization accounting
	lastT   float64
	busySec float64
	busyNow int
	peak    int

	// Flight recorder (nil when disabled): one process per simulation, a
	// span/instant track per job, queue-depth and lit-wavelength counter
	// tracks, and one occupancy lane per wavelength index.
	rec       *obs.Recorder
	proc      obs.ProcID
	jobTracks []obs.TrackID
	queueTk   obs.TrackID
	litTk     obs.TrackID
	obsTracks bool // per-job tracks/lanes enabled (recorder on, not Lite)
	ctkReady  bool // queue/lit counter tracks created
	faultTk   obs.TrackID
	darkTk    obs.TrackID
	ftkReady  bool // fault instant/dark counter tracks created

	err error
}

// submit normalizes and validates one job and schedules its arrival,
// mirroring the historical Simulate validation exactly (same error text,
// same defaulting).
func (s *scheduler) submit(j Job) error {
	idx := s.nextID
	if j.Name == "" && !s.lite {
		j.Name = fmt.Sprintf("job%d", idx)
	}
	if s.seen != nil {
		if s.seen[j.Name] {
			return fmt.Errorf("fabric: duplicate job name %q", j.Name)
		}
		s.seen[j.Name] = true
	}
	if j.ArrivalSec < 0 || math.IsNaN(j.ArrivalSec) || math.IsInf(j.ArrivalSec, 0) {
		return fmt.Errorf("fabric: job %q arrival %v", j.Name, j.ArrivalSec)
	}
	if j.MinWavelengths == 0 {
		j.MinWavelengths = 1
	}
	if j.MinWavelengths < 1 ||
		(j.MaxWavelengths != 0 && j.MaxWavelengths < j.MinWavelengths) {
		return fmt.Errorf("fabric: job %q wavelength range [%d,%d]",
			j.Name, j.MinWavelengths, j.MaxWavelengths)
	}
	// A minimum beyond the budget is not a spec error: admission control
	// rejects that job at arrival while the rest of the mix still runs.
	if j.MaxWavelengths == 0 || j.MaxWavelengths > s.budget {
		j.MaxWavelengths = s.budget
	}
	if j.Iterations == 0 {
		j.Iterations = 1
	}
	if j.Iterations < 1 {
		return fmt.Errorf("fabric: job %q iterations %d", j.Name, j.Iterations)
	}
	if j.Runtime == nil {
		return fmt.Errorf("fabric: job %q has no runtime function", j.Name)
	}
	s.nextID++
	r := s.newRec(j, idx)
	if !s.lite {
		s.recs = append(s.recs, r)
		if s.rec != nil {
			s.obsTracks = true
			s.jobTracks = append(s.jobTracks, s.rec.Track(s.proc, r.Name))
		}
	}
	s.eng.At(r.ArrivalSec, func() { s.arrive(r) })
	return nil
}

// newRec builds (or, under Lite, recycles) a job record.
func (s *scheduler) newRec(j Job, idx int) *jobRec {
	if n := len(s.freeRecs); n > 0 {
		r := s.freeRecs[n-1]
		s.freeRecs = s.freeRecs[:n-1]
		epoch := r.epoch // stays monotonic so stale events never resurrect
		waves := r.waves[:0]
		*r = jobRec{
			Job: j, idx: idx, remaining: 1, share: -1,
			st:    JobStats{Name: j.Name, ArrivalSec: j.ArrivalSec},
			epoch: epoch, waves: waves, runPos: -1, ckptRemaining: 1,
		}
		return r
	}
	return &jobRec{
		Job: j, idx: idx, remaining: 1, share: -1,
		st:     JobStats{Name: j.Name, ArrivalSec: j.ArrivalSec},
		runPos: -1, ckptRemaining: 1,
	}
}

// price returns the job's full-workload runtime (all iterations) at width
// w, through the shape-keyed curve cache for shape-sharing jobs or the
// job's private memo otherwise.
func (s *scheduler) price(r *jobRec, w int) (float64, error) {
	if r.Shape != 0 {
		key := int64(r.Shape)<<32 | int64(w)
		if v, ok := s.curves[key]; ok {
			s.solver.CurveHits++
			return v * float64(r.Iterations), nil
		}
		one, err := s.priceOne(r, w)
		if err != nil {
			return 0, err
		}
		if s.curves == nil {
			s.curves = map[int64]float64{}
		}
		s.curves[key] = one
		s.solver.CurveBuilds++
		return one * float64(r.Iterations), nil
	}
	if v, ok := r.memo[w]; ok {
		return v, nil
	}
	one, err := s.priceOne(r, w)
	if err != nil {
		return 0, err
	}
	v := one * float64(r.Iterations)
	if r.memo == nil {
		r.memo = map[int]float64{}
	}
	r.memo[w] = v
	return v, nil
}

// priceOne calls the job's runtime function for one all-reduce at width w
// and validates the result.
func (s *scheduler) priceOne(r *jobRec, w int) (float64, error) {
	one, err := r.Runtime(w)
	if err != nil {
		return 0, fmt.Errorf("fabric: job %q at width %d: %w", r.Name, w, err)
	}
	if one <= 0 || math.IsNaN(one) || math.IsInf(one, 0) {
		return 0, fmt.Errorf("fabric: job %q runtime %v at width %d", r.Name, one, w)
	}
	return one, nil
}

// recordTotals rolls the finished simulation up into recorder counters and
// gauges: engine stats (event count, heap high-water mark — only when this
// scheduler owns the engine), per-kind trace event counts, solver-work
// counters, and the lit wavelength-second integral.
func (s *scheduler) recordTotals() {
	s.rec.Add("fabric.sims", 1)
	if s.ownEng {
		s.rec.Add("fabric.engine.events", s.eng.Steps())
		s.rec.Gauge("fabric.engine.max_pending", float64(s.eng.MaxPending()))
	}
	s.rec.Gauge("fabric.peak_wavelengths", float64(s.peak))
	for k, c := range s.evCounts {
		if c > 0 {
			s.rec.Add(eventCounterName(EventKind(k)), c)
		}
	}
	if s.solver.Solves > 0 {
		s.rec.Add("fabric.solver.solves", s.solver.Solves)
		s.rec.Add("fabric.solver.tiers_touched", s.solver.TiersTouched)
		s.rec.Add("fabric.solver.tiers_skipped", s.solver.TiersSkipped)
		s.rec.Add("fabric.solver.jobs_repriced", s.solver.JobsRepriced)
	}
	if s.solver.CurveHits+s.solver.CurveBuilds > 0 {
		s.rec.Add("fabric.solver.curve_hits", s.solver.CurveHits)
		s.rec.Add("fabric.solver.curve_builds", s.solver.CurveBuilds)
	}
	s.rec.AddSeconds("fabric.lambda_busy_seconds", s.busySec)
	// Fault counters are only recorded when nonzero so fault-free metrics
	// snapshots stay byte-identical to runs without the machinery.
	if c := s.evCounts[EvWavelengthDown]; c > 0 {
		s.rec.Add("fabric.faults.wavelength_down", c)
	}
	if s.outages > 0 {
		s.rec.Add("fabric.faults.outages", int64(s.outages))
	}
	if s.jobFaults > 0 {
		s.rec.Add("fabric.faults.job_faults", int64(s.jobFaults))
	}
	if s.evictions > 0 {
		s.rec.Add("fabric.faults.evictions", int64(s.evictions))
	}
	if s.retriesN > 0 {
		s.rec.Add("fabric.faults.retries", int64(s.retriesN))
	}
	if s.failedJobs > 0 {
		s.rec.Add("fabric.faults.failed_jobs", int64(s.failedJobs))
	}
	if s.lostWorkSec > 0 {
		s.rec.AddSeconds("fabric.faults.lost_work_seconds", s.lostWorkSec)
	}
	if s.darkSec > 0 {
		s.rec.AddSeconds("fabric.faults.dark_lambda_seconds", s.darkSec)
	}
}

// eventCounterName maps an event kind to its fixed recorder counter name
// (fixed strings so the enabled path never concatenates).
func eventCounterName(k EventKind) string {
	switch k {
	case EvArrive:
		return "fabric.events.arrive"
	case EvReject:
		return "fabric.events.reject"
	case EvStart:
		return "fabric.events.start"
	case EvPreempt:
		return "fabric.events.preempt"
	case EvResume:
		return "fabric.events.resume"
	case EvFinish:
		return "fabric.events.finish"
	case EvReconfig:
		return "fabric.events.reconfig"
	case EvWavelengthDown:
		return "fabric.events.wavelength_down"
	case EvWavelengthUp:
		return "fabric.events.wavelength_up"
	case EvJobFault:
		return "fabric.events.job_fault"
	case EvEvict:
		return "fabric.events.evict"
	case EvRetry:
		return "fabric.events.retry"
	default:
		return "fabric.events.other"
	}
}

// fail aborts the simulation at the first runtime-function error; remaining
// events become no-ops.
func (s *scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *scheduler) emit(r *jobRec, kind EventKind, width int) {
	s.evCounts[kind]++
	if s.lite {
		return
	}
	s.events = append(s.events, Event{
		TimeSec: s.eng.Now(), Job: r.Name, Kind: kind, Wavelengths: width,
	})
	if s.rec != nil {
		if !s.ctkReady {
			s.ctkReady = true
			s.queueTk = s.rec.CounterTrack(s.proc, "queue depth")
			s.litTk = s.rec.CounterTrack(s.proc, "lit wavelengths")
		}
		now := s.eng.Now()
		s.rec.Instant(s.jobTracks[r.idx], kind.String(), now, int64(width))
		s.rec.Sample(s.queueTk, now, float64(len(s.queue)))
		s.rec.Sample(s.litTk, now, float64(s.busyNow))
	}
}

// lanesOn opens r's wavelength occupancy lanes at the current instant.
func (s *scheduler) lanesOn(r *jobRec) {
	if !s.obsTracks {
		return
	}
	now := s.eng.Now()
	for _, c := range r.waves {
		s.rec.LaneOn(s.proc, c, now, r.Name)
	}
}

// lanesOffAndCloseSeg closes r's occupancy lanes and records the finished
// run segment as a span (with a leading "settle" span for the
// reconfiguration stall, when one applied).
func (s *scheduler) lanesOffAndCloseSeg(r *jobRec) {
	if !s.obsTracks {
		return
	}
	now := s.eng.Now()
	for _, c := range r.waves {
		s.rec.LaneOff(s.proc, c, now)
	}
	if now <= r.segStart {
		return
	}
	tk := s.jobTracks[r.idx]
	width := obs.SpanArgs{Width: int64(len(r.waves))}
	runStart := r.segStart
	if r.segPenalty > 0 {
		settle := math.Min(r.segPenalty, now-r.segStart)
		s.rec.Span(tk, "settle", r.segStart, settle, width)
		runStart += settle
	}
	if now > runStart {
		s.rec.Span(tk, "run", runStart, now-runStart, width)
	}
}

// account integrates lit wavelength-seconds (and, when faults are armed,
// dark wavelength-seconds) up to the current time.
func (s *scheduler) account() {
	now := s.eng.Now()
	s.busySec += float64(s.busyNow) * (now - s.lastT)
	if s.faultsOn {
		s.darkSec += float64(s.darkNow()) * (now - s.lastT)
	}
	s.lastT = now
}

// maxGrant is the widest allocation any job can receive right now — the
// structural maximum minus any wavelengths dark from injected faults.
func (s *scheduler) maxGrant() int {
	if s.pol.Kind == StaticPartition {
		return s.shareWidth[0] // leading shares are widest
	}
	return s.budget - s.darkTarget
}

// structuralMax is the widest grant the fabric could ever satisfy with no
// wavelengths dark — the admission bound that separates a permanently
// impossible minimum (reject) from a temporarily unfittable one (park).
func (s *scheduler) structuralMax() int {
	if s.pol.Kind == StaticPartition {
		return s.shareWidth[0]
	}
	return s.budget
}

func (s *scheduler) arrive(r *jobRec) {
	if s.err != nil {
		return
	}
	if s.down {
		s.arriveDown(r)
		return
	}
	s.emit(r, EvArrive, 0)
	if r.MinWavelengths > s.maxGrant() {
		if s.faultsOn && r.MinWavelengths <= s.structuralMax() {
			// Only dark wavelengths block this job: park it for a backoff
			// retry instead of rejecting.
			s.liveJobs++
			s.park(r)
			return
		}
		// Admission control: this job can never be satisfied here.
		r.state = stRejected
		r.st.Rejected = true
		s.emit(r, EvReject, 0)
		if s.lite {
			s.liteRejected++
			s.recycle(r)
		}
		return
	}
	r.state = stWaiting
	s.liveJobs++
	s.queuedMin += r.MinWavelengths
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] += r.MinWavelengths
	}
	if s.el != nil {
		s.el.enqueue(s, r) // keeps the wait queue sorted by jobLess
	} else {
		s.queue = append(s.queue, r)
	}
	s.dispatch()
}

// dequeued updates the committed-load accounting when r leaves the wait
// queue (to start, or at elastic admission).
func (s *scheduler) dequeued(r *jobRec) {
	s.queuedMin -= r.MinWavelengths
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] -= r.MinWavelengths
	}
}

// allocate grants r the `width` lowest-indexed free wavelengths (first
// fit), reusing r's waves slice.
func (s *scheduler) allocate(r *jobRec, width int) {
	waves := r.waves[:0]
	for c := 0; c < s.budget && len(waves) < width; c++ {
		if s.free[c] {
			s.free[c] = false
			waves = append(waves, c)
		}
	}
	if len(waves) != width {
		panic(fmt.Sprintf("fabric: allocated %d of %d requested wavelengths", len(waves), width))
	}
	s.nfree -= width
	r.waves = waves
}

func (s *scheduler) release(waves []int) {
	for _, c := range waves {
		if s.free[c] {
			panic(fmt.Sprintf("fabric: double free of wavelength %d", c))
		}
		s.free[c] = true
	}
	s.nfree += len(waves)
}

// start grants `width` wavelengths to r and schedules its (remaining) run.
func (s *scheduler) start(r *jobRec, width int) {
	seg, err := s.price(r, width)
	if err != nil {
		s.fail(err)
		return
	}
	s.account()
	s.dequeued(r)
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] += width
	}
	s.allocate(r, width)
	r.state = stRunning
	r.runPos = len(s.liveRun)
	s.liveRun = append(s.liveRun, r)
	r.segStart = s.eng.Now()
	r.segLen = seg * r.remaining
	r.segPenalty = 0
	r.st.Width = width
	if !s.lite {
		r.st.Wavelengths = append(r.st.Wavelengths[:0], r.waves...)
	}
	kind := EvStart
	if r.st.Preemptions > 0 {
		kind = EvResume
	} else {
		r.st.StartSec = s.eng.Now()
		r.st.QueueSec = r.st.StartSec - r.ArrivalSec
	}
	s.busyNow += width
	if s.busyNow > s.peak {
		s.peak = s.busyNow
	}
	s.emit(r, kind, width)
	s.lanesOn(r)
	r.epoch++
	epoch := r.epoch
	s.eng.After(r.segLen, func() { s.complete(r, epoch) })
}

// dropRunning removes r from the live-running index.
func (s *scheduler) dropRunning(r *jobRec) {
	last := len(s.liveRun) - 1
	other := s.liveRun[last]
	s.liveRun[r.runPos] = other
	other.runPos = r.runPos
	s.liveRun = s.liveRun[:last]
	r.runPos = -1
}

func (s *scheduler) complete(r *jobRec, epoch int) {
	if s.err != nil || r.epoch != epoch || r.state != stRunning {
		return // stale completion of a preempted segment
	}
	s.account()
	r.state = stDone
	r.remaining = 0
	r.st.ServiceSec += r.segLen
	r.st.DoneSec = s.eng.Now()
	s.lanesOffAndCloseSeg(r)
	s.busyNow -= len(r.waves)
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] -= len(r.waves)
	}
	s.release(r.waves)
	r.waves = r.waves[:0]
	s.dropRunning(r)
	if r.share >= 0 {
		s.shareBusy[r.share] = false
		r.share = -1
	}
	if s.el != nil {
		s.el.removeMember(r)
	}
	s.liveJobs--
	s.emit(r, EvFinish, 0)
	if s.lite {
		s.liteFinish(r)
	}
	s.dispatch()
}

// liteFinish folds a completed job into the Lite aggregates and recycles
// its record.
func (s *scheduler) liteFinish(r *jobRec) {
	alone, err := s.price(r, r.MaxWavelengths)
	if err != nil {
		s.fail(err)
		return
	}
	slow := (r.st.DoneSec - r.st.ArrivalSec) / alone
	s.liteDone++
	s.liteSumQueue += r.st.QueueSec
	if r.st.QueueSec > s.liteMaxQueue {
		s.liteMaxQueue = r.st.QueueSec
	}
	s.liteSumSlow += slow
	s.liteSumSlowSq += slow * slow
	if r.st.DoneSec > s.liteMakespan {
		s.liteMakespan = r.st.DoneSec
	}
	s.litePreempts += r.st.Preemptions
	s.liteReconfigs += r.st.Reconfigs
	s.recycle(r)
}

// recycle returns a finished record to the freelist (Lite mode only). The
// epoch is preserved — it keeps growing across reuses, so stale completion
// events scheduled against a previous tenant can never fire on the new one.
func (s *scheduler) recycle(r *jobRec) {
	s.freeRecs = append(s.freeRecs, r)
}

// pause stops r's running segment at the current instant: completed work is
// credited pro-rata (remainingAt), the pending completion event is
// invalidated, and the job's wavelengths return to the pool. The caller
// decides what happens next — requeue (preemption) or an immediate restart
// at a new width (elastic reconfiguration).
func (s *scheduler) pause(r *jobRec) {
	s.account()
	now := s.eng.Now()
	if s.faultsOn {
		// Progress is kept (this is a graceful cut, not a crash), but the
		// checkpoint cursor must advance past the segment's productive run
		// so a later crash rolls back to the right point.
		run := now - r.segStart - r.segPenalty
		if run < 0 {
			run = 0
		}
		active := r.segLen - r.segPenalty
		if run > active {
			run = active
		}
		r.advanceCkpt(run, active)
	}
	r.remaining = r.remainingAt(now)
	r.st.ServiceSec += now - r.segStart
	r.epoch++ // invalidate the pending completion event
	s.lanesOffAndCloseSeg(r)
	s.busyNow -= len(r.waves)
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] -= len(r.waves)
	}
	s.release(r.waves)
	r.waves = r.waves[:0]
	s.dropRunning(r)
}

// preempt pauses a running job, returning its wavelengths to the pool and
// requeueing its remaining work.
func (s *scheduler) preempt(r *jobRec) {
	s.pause(r)
	r.st.Preemptions++
	r.state = stWaiting
	s.queuedMin += r.MinWavelengths
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] += r.MinWavelengths
	}
	s.queue = append(s.queue, r)
	s.emit(r, EvPreempt, 0)
}

// reconfigure restarts a paused job at a new stripe width without it ever
// leaving the fabric: the remaining work is re-priced at the new width and
// the segment is stretched by the policy's reconfiguration delay (optical
// switch settling — the job holds its new wavelengths but makes no progress
// until the stall elapses).
func (s *scheduler) reconfigure(r *jobRec, width int) {
	tail, err := s.price(r, width)
	if err != nil {
		s.fail(err)
		return
	}
	s.allocate(r, width)
	r.runPos = len(s.liveRun)
	s.liveRun = append(s.liveRun, r)
	r.segStart = s.eng.Now()
	r.segPenalty = s.pol.ReconfigDelaySec
	r.segLen = r.segPenalty + tail*r.remaining
	r.st.Width = width
	if !s.lite {
		r.st.Wavelengths = append(r.st.Wavelengths[:0], r.waves...)
	}
	r.st.Reconfigs++
	if s.prioLoad != nil {
		s.prioLoad[r.Priority] += width
	}
	s.busyNow += width
	if s.busyNow > s.peak {
		s.peak = s.busyNow
	}
	s.emit(r, EvReconfig, width)
	s.lanesOn(r)
	r.epoch++
	epoch := r.epoch
	s.eng.After(r.segLen, func() { s.complete(r, epoch) })
}

// dispatch runs the policy's scheduling pass over the wait queue. During a
// whole-fabric outage nothing starts; Restore re-dispatches.
func (s *scheduler) dispatch() {
	if s.err != nil || s.down {
		return
	}
	switch s.pol.Kind {
	case StaticPartition:
		s.dispatchStatic()
	case FirstFitShare:
		s.dispatchFirstFit()
	case PriorityPreempt:
		s.dispatchPriority()
	case ElasticReallocate:
		if !s.solvePending {
			s.solvePending = true
			s.eng.After(0, func() {
				s.solvePending = false
				if s.err == nil {
					s.dispatchElastic()
				}
			})
		}
	}
}

// dispatchStatic starts FIFO-queued jobs while a fitting tenant share is
// free. The head job takes the narrowest free share that covers its full
// appetite (so a width-capped job does not burn a wide remainder share
// another tenant could use), falling back to the widest free share that
// still fits its minimum; a job narrower than its share runs at its own
// MaxWavelengths cap (the rest of the share stays dark — static isolation:
// at most Partitions concurrent tenants). The queue is strictly FIFO: a
// head job waiting for one of the wider remainder shares blocks later
// arrivals.
func (s *scheduler) dispatchStatic() {
	for len(s.queue) > 0 {
		r := s.queue[0]
		desire := r.MaxWavelengths
		if w := s.shareWidth[0]; desire > w {
			desire = w
		}
		share := -1
		for i, busy := range s.shareBusy {
			if !busy && s.shareWidth[i] >= desire &&
				(share < 0 || s.shareWidth[i] < s.shareWidth[share]) {
				share = i
			}
		}
		if share < 0 {
			for i, busy := range s.shareBusy {
				if !busy && s.shareWidth[i] >= r.MinWavelengths &&
					(share < 0 || s.shareWidth[i] > s.shareWidth[share]) {
					share = i
				}
			}
		}
		if share < 0 {
			return // no fitting share free; head-of-line waits
		}
		s.queue = s.queue[1:]
		width := s.shareWidth[share]
		if r.MaxWavelengths < width {
			width = r.MaxWavelengths
		}
		s.shareBusy[share] = true
		r.share = share
		s.start(r, width)
		if s.err != nil {
			return
		}
	}
}

// dispatchFirstFit scans the queue in arrival order and starts every job
// whose minimum fits the remaining pool, granting up to its maximum.
func (s *scheduler) dispatchFirstFit() {
	if s.faultsOn {
		s.parkUnfittable()
	}
	var keep []*jobRec
	for _, r := range s.queue {
		if s.err == nil && r.MinWavelengths <= s.nfree {
			width := r.MaxWavelengths
			if width > s.nfree {
				width = s.nfree
			}
			s.start(r, width)
			continue
		}
		keep = append(keep, r)
	}
	s.queue = keep
}

// dispatchPriority serves the queue in jobLess order, preempting strictly
// lower-priority running jobs when the pool is short.
func (s *scheduler) dispatchPriority() {
	if s.faultsOn {
		s.parkUnfittable()
	}
	for s.err == nil && len(s.queue) > 0 {
		sort.SliceStable(s.queue, func(a, b int) bool {
			return jobLess(s.queue[a], s.queue[b])
		})
		head := s.queue[0]
		if head.MinWavelengths > s.nfree {
			// Reclaimable width from strictly lower-priority tenants.
			victims := s.victimsFor(head)
			reclaim := 0
			for _, v := range victims {
				reclaim += len(v.waves)
			}
			if s.nfree+reclaim < head.MinWavelengths {
				return // even preempting everything eligible is not enough
			}
			for _, v := range victims {
				if s.nfree >= head.MinWavelengths {
					break
				}
				s.preempt(v)
			}
		}
		s.queue = s.queue[1:]
		width := head.MaxWavelengths
		if width > s.nfree {
			width = s.nfree
		}
		s.start(head, width)
	}
}

// victimsFor lists running jobs preemptible by r: strictly lower priority,
// cheapest first (lowest priority, then latest arrival). A job whose
// segment is already due to complete at the current instant is not a
// victim — its pending completion event (same timestamp, later sequence)
// will free the wavelengths anyway, and preempting it would spuriously
// discard a finished run.
func (s *scheduler) victimsFor(r *jobRec) []*jobRec {
	now := s.eng.Now()
	var out []*jobRec
	for _, v := range s.liveRun {
		if v.Priority < r.Priority && now < v.segStart+v.segLen {
			out = append(out, v)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return jobLess(out[b], out[a])
	})
	return out
}

func (s *scheduler) finalize() (Result, error) {
	res := Result{
		Policy: s.pol, Budget: s.budget,
		Events:          s.events,
		PeakWavelengths: s.peak,
		Solver:          s.solver,
		JobFaults:       s.jobFaults,
		Evictions:       s.evictions,
		Retries:         s.retriesN,
		FailedJobs:      s.failedJobs,
		LostWorkSec:     s.lostWorkSec,
		Availability:    1,
	}
	if s.lite {
		if s.liveJobs > 0 {
			return Result{}, fmt.Errorf("fabric: %d jobs never completed (deadlock?)", s.liveJobs)
		}
		if s.liteDone == 0 && s.failedJobs == 0 && s.evictedAway == 0 {
			return Result{}, fmt.Errorf("fabric: every job was rejected")
		}
		res.RejectedJobs = s.liteRejected
		res.CompletedJobs = s.liteDone
		res.Preemptions = s.litePreempts
		res.Reconfigs = s.liteReconfigs
		res.MakespanSec = s.liteMakespan
		if s.liteDone > 0 {
			res.MeanQueueSec = s.liteSumQueue / float64(s.liteDone)
			res.MeanSlowdown = s.liteSumSlow / float64(s.liteDone)
		}
		res.MaxQueueSec = s.liteMaxQueue
		res.SlowdownSum = s.liteSumSlow
		res.SlowdownSumSq = s.liteSumSlowSq
		if s.liteSumSlowSq > 0 {
			res.Fairness = s.liteSumSlow * s.liteSumSlow /
				(float64(s.liteDone) * s.liteSumSlowSq)
		}
		if res.MakespanSec > 0 {
			res.Utilization = s.busySec / (float64(s.budget) * res.MakespanSec)
		}
		s.setAvailability(&res)
		return res, nil
	}
	var queues, slowdowns []float64
	for _, r := range s.recs {
		if r.state == stRejected {
			res.RejectedJobs++
			res.Jobs = append(res.Jobs, r.st)
			continue
		}
		if r.state == stEvicted {
			continue // left in an outage; the fleet replays it elsewhere
		}
		if r.state == stFailed {
			res.Jobs = append(res.Jobs, r.st)
			continue
		}
		if r.state != stDone {
			return Result{}, fmt.Errorf("fabric: job %q never completed (deadlock?)", r.Name)
		}
		alone, err := s.price(r, r.MaxWavelengths)
		if err != nil {
			return Result{}, err
		}
		r.st.AloneSec = alone
		r.st.Slowdown = (r.st.DoneSec - r.st.ArrivalSec) / alone
		if r.st.DoneSec > res.MakespanSec {
			res.MakespanSec = r.st.DoneSec
		}
		res.Preemptions += r.st.Preemptions
		res.Reconfigs += r.st.Reconfigs
		queues = append(queues, r.st.QueueSec)
		slowdowns = append(slowdowns, r.st.Slowdown)
		res.Jobs = append(res.Jobs, r.st)
	}
	if len(slowdowns) == 0 {
		if s.failedJobs == 0 && s.evictedAway == 0 {
			return Result{}, fmt.Errorf("fabric: every job was rejected")
		}
		if res.MakespanSec > 0 {
			res.Utilization = s.busySec / (float64(s.budget) * res.MakespanSec)
		}
		s.setAvailability(&res)
		return res, nil
	}
	res.CompletedJobs = len(slowdowns)
	for _, x := range slowdowns {
		res.SlowdownSum += x
		res.SlowdownSumSq += x * x
	}
	res.MeanQueueSec = stats.Mean(queues)
	res.MaxQueueSec = stats.Max(queues)
	res.MeanSlowdown = stats.Mean(slowdowns)
	res.Fairness = stats.JainIndex(slowdowns)
	if res.MakespanSec > 0 {
		res.Utilization = s.busySec / (float64(s.budget) * res.MakespanSec)
	}
	s.setAvailability(&res)
	return res, nil
}

// setAvailability fills res.Availability: the fraction of the fabric's
// wavelength-second capacity over the makespan that was not dark from
// injected faults or outages. Exactly 1 on fault-free runs (darkSec is only
// integrated with faults armed); clamped because dark intervals may extend
// past the last completion.
func (s *scheduler) setAvailability(res *Result) {
	if s.darkSec <= 0 || res.MakespanSec <= 0 {
		return
	}
	a := 1 - s.darkSec/(float64(s.budget)*res.MakespanSec)
	if a < 0 {
		a = 0
	}
	res.Availability = a
}

// remainingAt projects the fraction of r's total work still outstanding if
// its running segment were cut at time now: completed work is credited
// pro-rata, net of the segment's leading reconfiguration stall (during
// which no progress was made). pause applies this credit and widenPays
// previews it, so both must price the cut identically.
func (r *jobRec) remainingAt(now float64) float64 {
	active := r.segLen - r.segPenalty
	if active <= 0 {
		return 0
	}
	run := now - r.segStart - r.segPenalty
	if run < 0 {
		run = 0 // still inside the settling stall: no progress yet
	}
	frac := run / active
	if frac > 1 {
		frac = 1
	}
	return r.remaining * (1 - frac)
}
