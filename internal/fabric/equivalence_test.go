package fabric

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wrht/internal/obs"
)

// The incremental tier-indexed elastic solver must be bit-identical to the
// reference from-scratch solver: same event trace, same per-job stats, same
// aggregates, and byte-identical Perfetto exports. These tests are the
// proof obligation for every skip the tier index takes.

// churnLikeMix mirrors report.ChurnMix in-package: a burst of short capped
// jobs fills the pool, then a long uncapped straggler arrives while the
// fabric is full — the canonical departure-heavy elastic scenario.
func churnLikeMix() []Job {
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{
			Name:           fmt.Sprintf("burst%d", i),
			ArrivalSec:     float64(i) * 1e-4,
			MaxWavelengths: 8,
			Iterations:     1 + i%3,
			Runtime:        perfectScaling(0.02),
		})
	}
	jobs = append(jobs, Job{
		Name: "straggler", ArrivalSec: 2e-3, Iterations: 2,
		Runtime: perfectScaling(0.4),
	})
	return jobs
}

// tieMix quantizes arrivals and work so that many arrivals and departures
// land on the same simulated instant: the solver coalescing path
// (solvePending) and the due-member exclusion get exercised hard.
func tieMix(seed int64, n, budget int) []Job {
	rng := rand.New(rand.NewSource(seed))
	var jobs []Job
	for i := 0; i < n; i++ {
		min := 1 + rng.Intn(2)
		jobs = append(jobs, Job{
			Name:           fmt.Sprintf("t%02d", i),
			ArrivalSec:     float64(rng.Intn(8)) * 0.25,
			Priority:       rng.Intn(3),
			MinWavelengths: min,
			MaxWavelengths: min + rng.Intn(budget-min+1),
			Iterations:     1 + rng.Intn(2),
			Runtime:        perfectScaling(float64(1+rng.Intn(6)) * 0.5),
		})
	}
	return jobs
}

// stripVolatile zeroes the fields the two solvers legitimately differ in:
// the policy (carries the fullSolve selector) and the solver-work counters
// (the whole point of the incremental solver is doing less work).
func stripVolatile(r Result) Result {
	r.Policy = Policy{}
	r.Solver = SolverStats{}
	return r
}

func assertEquivalent(t *testing.T, name string, budget int, jobs []Job, delay float64) {
	t.Helper()
	inc, err := Simulate(budget, jobs, Policy{Kind: ElasticReallocate, ReconfigDelaySec: delay})
	if err != nil {
		t.Fatalf("%s: incremental: %v", name, err)
	}
	full, err := Simulate(budget, jobs, Policy{Kind: ElasticReallocate, ReconfigDelaySec: delay, fullSolve: true})
	if err != nil {
		t.Fatalf("%s: full solve: %v", name, err)
	}
	if !reflect.DeepEqual(inc.Events, full.Events) {
		n := len(inc.Events)
		if len(full.Events) < n {
			n = len(full.Events)
		}
		for i := 0; i < n; i++ {
			if inc.Events[i] != full.Events[i] {
				t.Fatalf("%s: event %d diverges:\n  incremental %+v\n  full        %+v",
					name, i, inc.Events[i], full.Events[i])
			}
		}
		t.Fatalf("%s: event counts diverge: incremental %d, full %d", name, len(inc.Events), len(full.Events))
	}
	if !reflect.DeepEqual(inc.Jobs, full.Jobs) {
		for i := range inc.Jobs {
			if !reflect.DeepEqual(inc.Jobs[i], full.Jobs[i]) {
				t.Fatalf("%s: job %q stats diverge:\n  incremental %+v\n  full        %+v",
					name, inc.Jobs[i].Name, inc.Jobs[i], full.Jobs[i])
			}
		}
	}
	if !reflect.DeepEqual(stripVolatile(inc), stripVolatile(full)) {
		t.Fatalf("%s: aggregates diverge:\n  incremental %+v\n  full        %+v",
			name, stripVolatile(inc), stripVolatile(full))
	}
}

func TestElasticIncrementalMatchesFullSolveChurn(t *testing.T) {
	for _, delay := range []float64{0, 2e-6, 1e-3} {
		assertEquivalent(t, fmt.Sprintf("churn/delay=%g", delay), 64, churnLikeMix(), delay)
	}
}

func TestElasticIncrementalMatchesFullSolveHeavy(t *testing.T) {
	for _, delay := range []float64{0, 0.03, 0.5} {
		assertEquivalent(t, fmt.Sprintf("heavy/delay=%g", delay), 8, heavyMix(), delay)
	}
}

// TestElasticIncrementalMatchesFullSolveProperty is the property test over
// arrival/departure interleavings: seeded random mixes across budgets and
// reconfiguration delays, plus tie-quantized mixes where many arrivals and
// departures collide on the same instant.
func TestElasticIncrementalMatchesFullSolveProperty(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		for _, budget := range []int{4, 8, 16} {
			for _, delay := range []float64{0, 0.03, 0.5} {
				name := fmt.Sprintf("rand/seed=%d/budget=%d/delay=%g", seed, budget, delay)
				assertEquivalent(t, name, budget, randomMix(seed, 12, budget), delay)
			}
		}
	}
	for seed := int64(1); seed <= 10; seed++ {
		for _, delay := range []float64{0, 0.1} {
			name := fmt.Sprintf("ties/seed=%d/delay=%g", seed, delay)
			assertEquivalent(t, name, 8, tieMix(seed, 14, 8), delay)
		}
	}
}

// TestElasticIncrementalPerfettoByteIdentical pins the strongest form of
// equivalence: the flight-recorder export (every span, instant, lane
// segment, and counter sample, in order) is byte-identical between the two
// solvers.
func TestElasticIncrementalPerfettoByteIdentical(t *testing.T) {
	run := func(full bool) []byte {
		rec := obs.New()
		pol := Policy{Kind: ElasticReallocate, ReconfigDelaySec: 2e-6, fullSolve: full}
		if _, err := SimulateObserved(64, churnLikeMix(), pol, rec, "equiv"); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	inc, full := run(false), run(true)
	if !bytes.Equal(inc, full) {
		t.Fatalf("perfetto traces diverge: incremental %d bytes, full %d bytes", len(inc), len(full))
	}
}

// TestElasticIncrementalSkipsTiers guards the point of the refactor: on a
// churn-heavy mix with several priority tiers, the incremental solver must
// actually skip tiers (not just match the full solver by filling
// everything every time).
func TestElasticIncrementalSkipsTiers(t *testing.T) {
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{
			Name:           fmt.Sprintf("p%d", i),
			ArrivalSec:     float64(i) * 0.3,
			Priority:       i % 3,
			MinWavelengths: 1,
			MaxWavelengths: 4,
			Iterations:     1 + i%2,
			Runtime:        perfectScaling(4),
		})
	}
	res, err := Simulate(16, jobs, Policy{Kind: ElasticReallocate})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Solves == 0 {
		t.Fatal("no solves recorded")
	}
	if res.Solver.TiersSkipped == 0 {
		t.Fatalf("incremental solver never skipped a tier: %+v", res.Solver)
	}
	if res.Solver.JobsRepriced == 0 || res.Solver.TiersTouched == 0 {
		t.Fatalf("solver work counters empty: %+v", res.Solver)
	}
}
