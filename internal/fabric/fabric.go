// Package fabric schedules concurrent all-reduce jobs onto one shared WDM
// optical ring fabric with a global wavelength budget. The paper prices a
// single all-reduce on a dedicated ring; a production optical interconnect
// serves many training jobs at once (TopoOpt, RAMP), contending for the same
// wavelength pool. This package models that regime: jobs arrive over time,
// pass admission control, receive disjoint sets of concrete wavelength
// indices under a partitioning policy, run for as long as their all-reduce
// takes at the granted stripe width, and release the wavelengths for queued
// tenants.
//
// Four policies are provided: a static split of the budget into tenant
// shares (the remainder of an inexact division is spread round-robin, so no
// wavelength is permanently dark), first-fit sharing from a common pool
// (small jobs may overtake a blocked head-of-line job), priority scheduling
// with preemption (a higher-priority arrival reclaims wavelengths from the
// lowest-priority running tenants; preempted work resumes pro-rata), and
// elastic re-allocation (every arrival and departure re-solves the stripe
// assignment for the live tenant set: running jobs widen up to their
// maximum when capacity frees, shrink — never fully preempt — to admit
// higher-priority arrivals, and each mid-flight width change pays a
// configurable optical reconfiguration penalty).
//
// The co-simulation is a discrete-event program on internal/sim, so runs are
// deterministic: same jobs, same policy, same trace. Per-job runtimes are
// supplied by the caller as a function of the granted wavelength count —
// the public API wires this to the full single-ring simulation path
// (wavelength assignment via internal/wdm and all), so fabric numbers are
// consistent with the paper harness by construction.
package fabric

import (
	"fmt"
	"math"
	"sort"

	"wrht/internal/obs"
	"wrht/internal/sim"
	"wrht/internal/stats"
)

// Job is one tenant: an all-reduce workload arriving at a shared fabric.
type Job struct {
	// Name identifies the job in stats and traces; must be unique.
	Name string
	// ArrivalSec is when the job enters the fabric.
	ArrivalSec float64
	// Priority orders jobs under PriorityPreempt (higher wins). Ignored by
	// the other policies.
	Priority int
	// MinWavelengths is the smallest grant the job accepts (default 1). A
	// job whose minimum cannot ever be satisfied under the policy is
	// rejected at arrival (admission control).
	MinWavelengths int
	// MaxWavelengths is the grant the job asks for (default: whole budget).
	MaxWavelengths int
	// Iterations is the number of back-to-back all-reduces the job runs
	// (default 1).
	Iterations int
	// Runtime prices ONE all-reduce at stripe budget w (MinWavelengths <=
	// w <= MaxWavelengths). It must be positive and finite; wider grants
	// should not run slower. Preempted jobs resume pro-rata: remaining
	// work scales linearly with the fraction of the segment completed.
	Runtime func(w int) (float64, error)
}

// PolicyKind selects the wavelength-partitioning discipline.
type PolicyKind int

const (
	// StaticPartition splits the budget into Partitions equal shares; a
	// job occupies exactly one share and queues FIFO when all are busy.
	StaticPartition PolicyKind = iota
	// FirstFitShare grants each job min(MaxWavelengths, free) wavelengths
	// from a common pool, scanning the FIFO queue so a small job may start
	// while a wide head-of-line job waits.
	FirstFitShare
	// PriorityPreempt serves the queue in (priority, arrival, admission
	// index) order and lets a higher-priority job reclaim wavelengths from
	// running lower-priority tenants; preempted jobs requeue with their
	// remaining work and resume later.
	PriorityPreempt
	// ElasticReallocate re-solves the whole stripe assignment on every
	// arrival and departure: the live tenant set (running plus queued) is
	// re-partitioned by tiered water-filling — minimums first in (priority,
	// arrival, admission index) order with head-of-line blocking at the
	// first queued minimum that no longer fits, then the surplus one
	// wavelength at a time within each priority tier. Running jobs widen when capacity
	// frees and shrink (down to their minimum, never a full preemption) to
	// admit higher-priority arrivals; each mid-flight width change splits
	// the job's remaining work at the reconfiguration instant, re-prices
	// the tail at the new width, and pays Policy.ReconfigDelaySec of
	// optical switch settling. A widening that would not strictly improve
	// the job's projected completion (the penalty outweighs the wider
	// stripe on a nearly-done segment) is skipped.
	ElasticReallocate
)

func (k PolicyKind) String() string {
	switch k {
	case StaticPartition:
		return "static"
	case FirstFitShare:
		return "first-fit"
	case PriorityPreempt:
		return "priority"
	case ElasticReallocate:
		return "elastic"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Policy is a policy kind plus its parameters.
type Policy struct {
	Kind PolicyKind
	// Partitions is the number of tenant shares under StaticPartition
	// (default 4, clamped to the budget when unset). Must not exceed the
	// wavelength budget. Each share is budget/Partitions wavelengths wide
	// and the remainder of an inexact division is distributed round-robin,
	// so the first budget mod Partitions shares are one wavelength wider
	// and every wavelength belongs to exactly one share.
	Partitions int
	// ReconfigDelaySec is the optical switch settling time a running job
	// pays for each mid-flight stripe change under ElasticReallocate (the
	// job holds its new wavelengths but makes no progress while the
	// switch retunes). Ignored by the other policies. Must be >= 0 and
	// finite; 0 models an idealized instantly-reconfigurable fabric.
	ReconfigDelaySec float64
}

// Validate checks the policy against a wavelength budget.
func (p Policy) Validate(budget int) error {
	switch p.Kind {
	case StaticPartition:
		parts := p.partitions(budget)
		if parts < 1 || parts > budget {
			return fmt.Errorf("fabric: %d partitions for budget %d", parts, budget)
		}
	case FirstFitShare, PriorityPreempt:
	case ElasticReallocate:
		if p.ReconfigDelaySec < 0 || math.IsNaN(p.ReconfigDelaySec) || math.IsInf(p.ReconfigDelaySec, 0) {
			return fmt.Errorf("fabric: reconfiguration delay %v", p.ReconfigDelaySec)
		}
	default:
		return fmt.Errorf("fabric: unknown policy kind %d", int(p.Kind))
	}
	return nil
}

// partitions returns the effective share count for StaticPartition:
// Partitions when set, else 4 clamped to the budget.
func (p Policy) partitions(budget int) int {
	if p.Partitions == 0 {
		if budget < 4 {
			return budget
		}
		return 4
	}
	return p.Partitions
}

// shareWidths returns the per-share wavelength counts under StaticPartition:
// budget/parts each, with the remainder of the division spread round-robin
// over the leading shares (widest shares first).
func (p Policy) shareWidths(budget int) []int {
	parts := p.partitions(budget)
	base, rem := budget/parts, budget%parts
	widths := make([]int, parts)
	for i := range widths {
		widths[i] = base
		if i < rem {
			widths[i]++
		}
	}
	return widths
}

// EventKind tags one entry of the fabric trace.
type EventKind int

const (
	EvArrive EventKind = iota
	EvReject
	EvStart
	EvPreempt
	EvResume
	EvFinish
	// EvReconfig records a mid-flight stripe change under ElasticReallocate:
	// the job now holds Wavelengths wavelengths (wider or narrower than
	// before) and stalls for the policy's reconfiguration delay before its
	// re-priced tail resumes.
	EvReconfig
)

func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvReject:
		return "reject"
	case EvStart:
		return "start"
	case EvPreempt:
		return "preempt"
	case EvResume:
		return "resume"
	case EvFinish:
		return "finish"
	case EvReconfig:
		return "reconfig"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the fabric trace: what happened to which job when,
// and how many wavelengths it held afterwards.
type Event struct {
	TimeSec     float64
	Job         string
	Kind        EventKind
	Wavelengths int
}

// JobStats is the per-tenant outcome of a fabric simulation.
type JobStats struct {
	Name     string
	Rejected bool
	// ArrivalSec, StartSec and DoneSec are absolute simulation times;
	// QueueSec = StartSec - ArrivalSec is the initial queueing delay and
	// ServiceSec the total time actually spent running (across segments).
	ArrivalSec float64
	StartSec   float64
	DoneSec    float64
	QueueSec   float64
	ServiceSec float64
	// Wavelengths is the concrete wavelength index set of the final run
	// segment; Width is its size.
	Wavelengths []int
	Width       int
	Preemptions int
	// Reconfigs counts mid-flight stripe changes under ElasticReallocate
	// (each one stalled the job for the policy's reconfiguration delay,
	// which is included in ServiceSec — the job held wavelengths while the
	// switch settled).
	Reconfigs int
	// AloneSec is the job's runtime had it run alone at its widest grant
	// (MaxWavelengths, clamped to the budget) with no contention;
	// Slowdown = (DoneSec-ArrivalSec)/AloneSec >= 1 measures what sharing
	// cost this tenant.
	AloneSec float64
	Slowdown float64
}

// Result is the outcome of co-simulating all jobs on the shared fabric.
type Result struct {
	Policy Policy
	Budget int
	Jobs   []JobStats
	Events []Event
	// MakespanSec is the completion time of the last job.
	MakespanSec  float64
	MeanQueueSec float64
	MaxQueueSec  float64
	MeanSlowdown float64
	// Fairness is Jain's index over completed jobs' slowdowns (1 = every
	// tenant slowed equally).
	Fairness float64
	// Utilization is lit wavelength-seconds over budget x makespan.
	Utilization float64
	// PeakWavelengths is the most wavelengths simultaneously allocated.
	PeakWavelengths int
	RejectedJobs    int
}

// jobRec is the scheduler's mutable view of one job.
type jobRec struct {
	Job
	idx       int
	state     int // 0 queued (pre-arrival), 1 waiting, 2 running, 3 done, 4 rejected
	remaining float64
	epoch     int
	waves     []int
	share     int // occupied share index under StaticPartition, else -1
	segStart  float64
	segLen    float64
	// segPenalty is the leading reconfiguration stall of the current
	// segment (ElasticReallocate): the job holds wavelengths but makes no
	// progress during it, so pro-rata work accounting nets it out.
	segPenalty float64
	st         JobStats
	memo       map[int]float64
}

const (
	stWaiting  = 1
	stRunning  = 2
	stDone     = 3
	stRejected = 4
)

// totalRuntime prices the job's full workload (all iterations) at width w.
func (j *jobRec) totalRuntime(w int) (float64, error) {
	if v, ok := j.memo[w]; ok {
		return v, nil
	}
	one, err := j.Runtime(w)
	if err != nil {
		return 0, fmt.Errorf("fabric: job %q at width %d: %w", j.Name, w, err)
	}
	if one <= 0 || math.IsNaN(one) || math.IsInf(one, 0) {
		return 0, fmt.Errorf("fabric: job %q runtime %v at width %d", j.Name, one, w)
	}
	v := one * float64(j.Iterations)
	j.memo[w] = v
	return v, nil
}

type scheduler struct {
	eng    sim.Engine
	pol    Policy
	budget int
	free   []bool // free[c] = wavelength c unallocated
	nfree  int
	queue  []*jobRec
	recs   []*jobRec
	events []Event

	// shareWidth holds the per-share wavelength counts under
	// StaticPartition (the remainder of an inexact division makes the
	// leading shares one wavelength wider); shareBusy marks shares
	// currently occupied by a tenant.
	shareWidth []int
	shareBusy  []bool

	// solvePending coalesces ElasticReallocate re-solves: every arrival
	// and departure in one simulated instant triggers a single assignment
	// solve (scheduled at the same timestamp, after the instant's other
	// events), so physically simultaneous events cause one reconfiguration
	// decision instead of a cascade of transient ones.
	solvePending bool

	// utilization accounting
	lastT   float64
	busySec float64
	busyNow int
	peak    int

	// Flight recorder (nil when disabled): one process per simulation, a
	// span/instant track per job, queue-depth and lit-wavelength counter
	// tracks, and one occupancy lane per wavelength index.
	rec       *obs.Recorder
	proc      obs.ProcID
	jobTracks []obs.TrackID
	queueTk   obs.TrackID
	litTk     obs.TrackID

	err error
}

// Simulate co-schedules the jobs on a fabric of `budget` wavelengths under
// the policy and returns per-job and aggregate statistics plus the full
// event trace. The simulation is deterministic.
func Simulate(budget int, jobs []Job, pol Policy) (Result, error) {
	return SimulateObserved(budget, jobs, pol, nil, "")
}

// SimulateObserved is Simulate with a flight recorder attached: the run
// becomes one recorder process (named proc — give each simulation a unique
// name so concurrent runs stay on disjoint tracks), every job an
// instant/span track (arrive/start/preempt/reconfig/finish markers plus
// run/settle segments), queue depth and lit wavelengths counter tracks, and
// each wavelength index an occupancy lane labeled with the holding job.
// The recorder is write-only — scheduling decisions never read it — so
// results are bit-identical to Simulate; a nil recorder costs one branch
// per event.
func SimulateObserved(budget int, jobs []Job, pol Policy, rec *obs.Recorder, proc string) (Result, error) {
	if budget < 1 {
		return Result{}, fmt.Errorf("fabric: wavelength budget %d", budget)
	}
	if len(jobs) == 0 {
		return Result{}, fmt.Errorf("fabric: no jobs")
	}
	if err := pol.Validate(budget); err != nil {
		return Result{}, err
	}
	recs := make([]*jobRec, len(jobs))
	seen := map[string]bool{}
	for i, j := range jobs {
		if j.Name == "" {
			j.Name = fmt.Sprintf("job%d", i)
		}
		if seen[j.Name] {
			return Result{}, fmt.Errorf("fabric: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.ArrivalSec < 0 || math.IsNaN(j.ArrivalSec) || math.IsInf(j.ArrivalSec, 0) {
			return Result{}, fmt.Errorf("fabric: job %q arrival %v", j.Name, j.ArrivalSec)
		}
		if j.MinWavelengths == 0 {
			j.MinWavelengths = 1
		}
		if j.MinWavelengths < 1 ||
			(j.MaxWavelengths != 0 && j.MaxWavelengths < j.MinWavelengths) {
			return Result{}, fmt.Errorf("fabric: job %q wavelength range [%d,%d]",
				j.Name, j.MinWavelengths, j.MaxWavelengths)
		}
		// A minimum beyond the budget is not a spec error: admission
		// control rejects that job at arrival while the rest of the mix
		// still runs.
		if j.MaxWavelengths == 0 || j.MaxWavelengths > budget {
			j.MaxWavelengths = budget
		}
		if j.Iterations == 0 {
			j.Iterations = 1
		}
		if j.Iterations < 1 {
			return Result{}, fmt.Errorf("fabric: job %q iterations %d", j.Name, j.Iterations)
		}
		if j.Runtime == nil {
			return Result{}, fmt.Errorf("fabric: job %q has no runtime function", j.Name)
		}
		recs[i] = &jobRec{
			Job: j, idx: i, remaining: 1, share: -1,
			st:   JobStats{Name: j.Name, ArrivalSec: j.ArrivalSec},
			memo: map[int]float64{},
		}
	}

	s := &scheduler{pol: pol, budget: budget, free: make([]bool, budget), nfree: budget, recs: recs}
	for c := range s.free {
		s.free[c] = true
	}
	if rec.Enabled() {
		s.rec = rec
		s.proc = rec.Process(proc)
		s.jobTracks = make([]obs.TrackID, len(recs))
		for i, r := range recs {
			s.jobTracks[i] = rec.Track(s.proc, r.Name)
		}
		s.queueTk = rec.CounterTrack(s.proc, "queue depth")
		s.litTk = rec.CounterTrack(s.proc, "lit wavelengths")
	}
	if pol.Kind == StaticPartition {
		s.shareWidth = pol.shareWidths(budget)
		s.shareBusy = make([]bool, len(s.shareWidth))
	}
	for _, r := range recs {
		r := r
		s.eng.At(r.ArrivalSec, func() { s.arrive(r) })
	}
	s.eng.Run()
	if s.err != nil {
		return Result{}, s.err
	}
	if s.rec != nil {
		s.recordTotals()
	}
	return s.finalize(recs)
}

// recordTotals rolls the finished simulation up into recorder counters and
// gauges: engine stats (event count, heap high-water mark), per-kind trace
// event counts, and the lit wavelength-second integral.
func (s *scheduler) recordTotals() {
	s.rec.Add("fabric.sims", 1)
	s.rec.Add("fabric.engine.events", s.eng.Steps())
	s.rec.Gauge("fabric.engine.max_pending", float64(s.eng.MaxPending()))
	s.rec.Gauge("fabric.peak_wavelengths", float64(s.peak))
	var counts [EvReconfig + 1]int64
	for _, ev := range s.events {
		counts[ev.Kind]++
	}
	for k, c := range counts {
		if c > 0 {
			s.rec.Add(eventCounterName(EventKind(k)), c)
		}
	}
	s.rec.AddSeconds("fabric.lambda_busy_seconds", s.busySec)
}

// eventCounterName maps an event kind to its fixed recorder counter name
// (fixed strings so the enabled path never concatenates).
func eventCounterName(k EventKind) string {
	switch k {
	case EvArrive:
		return "fabric.events.arrive"
	case EvReject:
		return "fabric.events.reject"
	case EvStart:
		return "fabric.events.start"
	case EvPreempt:
		return "fabric.events.preempt"
	case EvResume:
		return "fabric.events.resume"
	case EvFinish:
		return "fabric.events.finish"
	case EvReconfig:
		return "fabric.events.reconfig"
	default:
		return "fabric.events.other"
	}
}

// fail aborts the simulation at the first runtime-function error; remaining
// events become no-ops.
func (s *scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *scheduler) emit(r *jobRec, kind EventKind, width int) {
	s.events = append(s.events, Event{
		TimeSec: s.eng.Now(), Job: r.Name, Kind: kind, Wavelengths: width,
	})
	if s.rec != nil {
		now := s.eng.Now()
		s.rec.Instant(s.jobTracks[r.idx], kind.String(), now, int64(width))
		s.rec.Sample(s.queueTk, now, float64(len(s.queue)))
		s.rec.Sample(s.litTk, now, float64(s.busyNow))
	}
}

// lanesOn opens r's wavelength occupancy lanes at the current instant.
func (s *scheduler) lanesOn(r *jobRec) {
	if s.rec == nil {
		return
	}
	now := s.eng.Now()
	for _, c := range r.waves {
		s.rec.LaneOn(s.proc, c, now, r.Name)
	}
}

// lanesOffAndCloseSeg closes r's occupancy lanes and records the finished
// run segment as a span (with a leading "settle" span for the
// reconfiguration stall, when one applied).
func (s *scheduler) lanesOffAndCloseSeg(r *jobRec) {
	if s.rec == nil {
		return
	}
	now := s.eng.Now()
	for _, c := range r.waves {
		s.rec.LaneOff(s.proc, c, now)
	}
	if now <= r.segStart {
		return
	}
	tk := s.jobTracks[r.idx]
	width := obs.SpanArgs{Width: int64(len(r.waves))}
	runStart := r.segStart
	if r.segPenalty > 0 {
		settle := math.Min(r.segPenalty, now-r.segStart)
		s.rec.Span(tk, "settle", r.segStart, settle, width)
		runStart += settle
	}
	if now > runStart {
		s.rec.Span(tk, "run", runStart, now-runStart, width)
	}
}

// account integrates lit wavelength-seconds up to the current time.
func (s *scheduler) account() {
	now := s.eng.Now()
	s.busySec += float64(s.busyNow) * (now - s.lastT)
	s.lastT = now
}

// maxGrant is the widest allocation any job can ever receive.
func (s *scheduler) maxGrant() int {
	if s.pol.Kind == StaticPartition {
		return s.shareWidth[0] // leading shares are widest
	}
	return s.budget
}

func (s *scheduler) arrive(r *jobRec) {
	if s.err != nil {
		return
	}
	s.emit(r, EvArrive, 0)
	if r.MinWavelengths > s.maxGrant() {
		// Admission control: this job can never be satisfied here.
		r.state = stRejected
		r.st.Rejected = true
		s.emit(r, EvReject, 0)
		return
	}
	r.state = stWaiting
	s.queue = append(s.queue, r)
	s.dispatch()
}

// allocate takes `width` lowest-indexed free wavelengths (first fit).
func (s *scheduler) allocate(width int) []int {
	waves := make([]int, 0, width)
	for c := 0; c < s.budget && len(waves) < width; c++ {
		if s.free[c] {
			s.free[c] = false
			waves = append(waves, c)
		}
	}
	if len(waves) != width {
		panic(fmt.Sprintf("fabric: allocated %d of %d requested wavelengths", len(waves), width))
	}
	s.nfree -= width
	return waves
}

func (s *scheduler) release(waves []int) {
	for _, c := range waves {
		if s.free[c] {
			panic(fmt.Sprintf("fabric: double free of wavelength %d", c))
		}
		s.free[c] = true
	}
	s.nfree += len(waves)
}

// start grants `width` wavelengths to r and schedules its (remaining) run.
func (s *scheduler) start(r *jobRec, width int) {
	seg, err := r.totalRuntime(width)
	if err != nil {
		s.fail(err)
		return
	}
	s.account()
	r.waves = s.allocate(width)
	r.state = stRunning
	r.segStart = s.eng.Now()
	r.segLen = seg * r.remaining
	r.segPenalty = 0
	r.st.Width = width
	r.st.Wavelengths = append([]int(nil), r.waves...)
	kind := EvStart
	if r.st.Preemptions > 0 {
		kind = EvResume
	} else {
		r.st.StartSec = s.eng.Now()
		r.st.QueueSec = r.st.StartSec - r.ArrivalSec
	}
	s.busyNow += width
	if s.busyNow > s.peak {
		s.peak = s.busyNow
	}
	s.emit(r, kind, width)
	s.lanesOn(r)
	r.epoch++
	epoch := r.epoch
	s.eng.After(r.segLen, func() { s.complete(r, epoch) })
}

func (s *scheduler) complete(r *jobRec, epoch int) {
	if s.err != nil || r.epoch != epoch || r.state != stRunning {
		return // stale completion of a preempted segment
	}
	s.account()
	r.state = stDone
	r.remaining = 0
	r.st.ServiceSec += r.segLen
	r.st.DoneSec = s.eng.Now()
	s.lanesOffAndCloseSeg(r)
	s.busyNow -= len(r.waves)
	s.release(r.waves)
	r.waves = nil
	if r.share >= 0 {
		s.shareBusy[r.share] = false
		r.share = -1
	}
	s.emit(r, EvFinish, 0)
	s.dispatch()
}

// remainingAt projects the fraction of r's total work still outstanding if
// its running segment were cut at time now: completed work is credited
// pro-rata, net of the segment's leading reconfiguration stall (during
// which no progress was made). pause applies this credit and widenPays
// previews it, so both must price the cut identically.
func (r *jobRec) remainingAt(now float64) float64 {
	active := r.segLen - r.segPenalty
	if active <= 0 {
		return 0
	}
	run := now - r.segStart - r.segPenalty
	if run < 0 {
		run = 0 // still inside the settling stall: no progress yet
	}
	frac := run / active
	if frac > 1 {
		frac = 1
	}
	return r.remaining * (1 - frac)
}

// pause stops r's running segment at the current instant: completed work is
// credited pro-rata (remainingAt), the pending completion event is
// invalidated, and the job's wavelengths return to the pool. The caller
// decides what happens next — requeue (preemption) or an immediate restart
// at a new width (elastic reconfiguration).
func (s *scheduler) pause(r *jobRec) {
	s.account()
	now := s.eng.Now()
	r.remaining = r.remainingAt(now)
	r.st.ServiceSec += now - r.segStart
	r.epoch++ // invalidate the pending completion event
	s.lanesOffAndCloseSeg(r)
	s.busyNow -= len(r.waves)
	s.release(r.waves)
	r.waves = nil
}

// preempt pauses a running job, returning its wavelengths to the pool and
// requeueing its remaining work.
func (s *scheduler) preempt(r *jobRec) {
	s.pause(r)
	r.st.Preemptions++
	r.state = stWaiting
	s.queue = append(s.queue, r)
	s.emit(r, EvPreempt, 0)
}

// reconfigure restarts a paused job at a new stripe width without it ever
// leaving the fabric: the remaining work is re-priced at the new width and
// the segment is stretched by the policy's reconfiguration delay (optical
// switch settling — the job holds its new wavelengths but makes no progress
// until the stall elapses).
func (s *scheduler) reconfigure(r *jobRec, width int) {
	tail, err := r.totalRuntime(width)
	if err != nil {
		s.fail(err)
		return
	}
	r.waves = s.allocate(width)
	r.segStart = s.eng.Now()
	r.segPenalty = s.pol.ReconfigDelaySec
	r.segLen = r.segPenalty + tail*r.remaining
	r.st.Width = width
	r.st.Wavelengths = append([]int(nil), r.waves...)
	r.st.Reconfigs++
	s.busyNow += width
	if s.busyNow > s.peak {
		s.peak = s.busyNow
	}
	s.emit(r, EvReconfig, width)
	s.lanesOn(r)
	r.epoch++
	epoch := r.epoch
	s.eng.After(r.segLen, func() { s.complete(r, epoch) })
}

// dispatch runs the policy's scheduling pass over the wait queue.
func (s *scheduler) dispatch() {
	if s.err != nil {
		return
	}
	switch s.pol.Kind {
	case StaticPartition:
		s.dispatchStatic()
	case FirstFitShare:
		s.dispatchFirstFit()
	case PriorityPreempt:
		s.dispatchPriority()
	case ElasticReallocate:
		if !s.solvePending {
			s.solvePending = true
			s.eng.After(0, func() {
				s.solvePending = false
				if s.err == nil {
					s.dispatchElastic()
				}
			})
		}
	}
}

// dispatchStatic starts FIFO-queued jobs while a fitting tenant share is
// free. The head job takes the narrowest free share that covers its full
// appetite (so a width-capped job does not burn a wide remainder share
// another tenant could use), falling back to the widest free share that
// still fits its minimum; a job narrower than its share runs at its own
// MaxWavelengths cap (the rest of the share stays dark — static isolation:
// at most Partitions concurrent tenants). The queue is strictly FIFO: a
// head job waiting for one of the wider remainder shares blocks later
// arrivals.
func (s *scheduler) dispatchStatic() {
	for len(s.queue) > 0 {
		r := s.queue[0]
		desire := r.MaxWavelengths
		if w := s.shareWidth[0]; desire > w {
			desire = w
		}
		share := -1
		for i, busy := range s.shareBusy {
			if !busy && s.shareWidth[i] >= desire &&
				(share < 0 || s.shareWidth[i] < s.shareWidth[share]) {
				share = i
			}
		}
		if share < 0 {
			for i, busy := range s.shareBusy {
				if !busy && s.shareWidth[i] >= r.MinWavelengths &&
					(share < 0 || s.shareWidth[i] > s.shareWidth[share]) {
					share = i
				}
			}
		}
		if share < 0 {
			return // no fitting share free; head-of-line waits
		}
		s.queue = s.queue[1:]
		width := s.shareWidth[share]
		if r.MaxWavelengths < width {
			width = r.MaxWavelengths
		}
		s.shareBusy[share] = true
		r.share = share
		s.start(r, width)
		if s.err != nil {
			return
		}
	}
}

// dispatchFirstFit scans the queue in arrival order and starts every job
// whose minimum fits the remaining pool, granting up to its maximum.
func (s *scheduler) dispatchFirstFit() {
	var keep []*jobRec
	for _, r := range s.queue {
		if s.err == nil && r.MinWavelengths <= s.nfree {
			width := r.MaxWavelengths
			if width > s.nfree {
				width = s.nfree
			}
			s.start(r, width)
			continue
		}
		keep = append(keep, r)
	}
	s.queue = keep
}

// jobLess is the scheduling order shared by the priority and elastic
// policies: priority descending, then arrival ascending, then admission
// index ascending — the final tie-break makes results stable across runs
// and sweep parallelism. victimsFor sorts by its negation.
func jobLess(a, b *jobRec) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.ArrivalSec != b.ArrivalSec {
		return a.ArrivalSec < b.ArrivalSec
	}
	return a.idx < b.idx
}

// dispatchPriority serves the queue in jobLess order, preempting strictly
// lower-priority running jobs when the pool is short.
func (s *scheduler) dispatchPriority() {
	for s.err == nil && len(s.queue) > 0 {
		sort.SliceStable(s.queue, func(a, b int) bool {
			return jobLess(s.queue[a], s.queue[b])
		})
		head := s.queue[0]
		if head.MinWavelengths > s.nfree {
			// Reclaimable width from strictly lower-priority tenants.
			victims := s.victimsFor(head)
			reclaim := 0
			for _, v := range victims {
				reclaim += len(v.waves)
			}
			if s.nfree+reclaim < head.MinWavelengths {
				return // even preempting everything eligible is not enough
			}
			for _, v := range victims {
				if s.nfree >= head.MinWavelengths {
					break
				}
				s.preempt(v)
			}
		}
		s.queue = s.queue[1:]
		width := head.MaxWavelengths
		if width > s.nfree {
			width = s.nfree
		}
		s.start(head, width)
	}
}

// victimsFor lists running jobs preemptible by r: strictly lower priority,
// cheapest first (lowest priority, then latest arrival). A job whose
// segment is already due to complete at the current instant is not a
// victim — its pending completion event (same timestamp, later sequence)
// will free the wavelengths anyway, and preempting it would spuriously
// discard a finished run.
func (s *scheduler) victimsFor(r *jobRec) []*jobRec {
	now := s.eng.Now()
	var out []*jobRec
	for _, v := range s.running() {
		if v.Priority < r.Priority && now < v.segStart+v.segLen {
			out = append(out, v)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return jobLess(out[b], out[a])
	})
	return out
}

// dispatchElastic re-solves the stripe assignment for the live tenant set
// (running plus queued) from scratch, in three passes:
//
//  1. admission — running jobs always keep at least their minimum (elastic
//     shrinks, it never fully preempts); queued jobs are admitted in
//     (priority desc, arrival asc, admission index asc) order until the
//     first one whose minimum no longer fits, which blocks the rest of the
//     queue (head-of-line, like dispatchPriority — backfilling past a
//     blocked wide high-priority job would starve it);
//  2. target widths — tiered water-filling: every admitted job starts at
//     its minimum, then the surplus is dealt one wavelength at a time
//     round-robin within each priority tier (highest tier saturates to its
//     MaxWavelengths before the next tier sees any surplus);
//  3. apply — changed running jobs are paused (work credited pro-rata),
//     then restarted at their new width with the reconfiguration penalty;
//     newly admitted jobs start penalty-free. A widening whose projected
//     completion (now + penalty + re-priced tail) is not strictly earlier
//     than the current segment's is skipped — near the end of a run the
//     settling stall outweighs any wider stripe — and a job due to finish
//     within the settling delay is pinned at its current width (its
//     departure frees capacity sooner than a stalled resize would).
//
// All orderings are deterministic, so the co-simulation stays reproducible.
func (s *scheduler) dispatchElastic() {
	now := s.eng.Now()
	var cands []*jobRec
	for _, r := range s.recs {
		// A running segment due to complete at this very instant is left
		// alone: its pending completion event (same timestamp, later
		// sequence) frees the wavelengths and re-enters this solver.
		if r.state == stRunning && now < r.segStart+r.segLen {
			cands = append(cands, r)
		}
	}
	cands = append(cands, s.queue...)
	sort.SliceStable(cands, func(a, b int) bool {
		return jobLess(cands[a], cands[b])
	})

	// A running job due to finish within the settling delay is pinned at
	// its current width: shrinking it can never pay — its natural departure
	// frees the capacity sooner than a stalled resize would — and any
	// widening would fail the widen guard anyway. Without the pin, an
	// ill-timed arrival could stall a nearly-done job for the full delay
	// and leave elastic strictly worse than grant-once first-fit.
	pinned := func(r *jobRec) bool {
		return r.state == stRunning && r.segStart+r.segLen-now <= s.pol.ReconfigDelaySec
	}
	// floor is the width a running job must keep through the solve: its
	// minimum normally, its exact current width when pinned.
	floor := func(r *jobRec) int {
		if pinned(r) {
			return len(r.waves)
		}
		return r.MinWavelengths
	}

	// Pass 1: admission. Running jobs' floors are pre-reserved; queued
	// jobs join strictly in priority order while their minimums still fit.
	// Admission stops at the first queued job that does not fit (matching
	// dispatchPriority's head-of-line semantics): letting later
	// lower-priority arrivals backfill past a blocked wide high-priority
	// job would starve it indefinitely under a steady low-priority stream.
	reserved := 0
	for _, r := range cands {
		if r.state == stRunning {
			reserved += floor(r)
		}
	}
	var admit []*jobRec
	blocked := false
	for _, r := range cands {
		if r.state == stRunning {
			// Running jobs always stay in the solve (they keep at least
			// their minimum and share in the water-fill), even when they
			// sort below a blocked queued job.
			admit = append(admit, r)
			continue
		}
		if blocked || reserved+r.MinWavelengths > s.budget {
			blocked = true
			continue
		}
		reserved += r.MinWavelengths
		admit = append(admit, r)
	}

	// Pass 2: tiered water-filling over the admitted set. Fill caps start
	// at each job's MaxWavelengths; when the widen guard below vetoes a
	// widening, the job is re-capped at its current width and the fill
	// re-solved, so the declined surplus flows to jobs whose own widening
	// still pays instead of sitting dark until the next event. Each veto
	// round permanently caps at least one job (a capped job's target can
	// never exceed its current width again), so the loop runs at most
	// len(admit) times.
	caps := make([]int, len(admit))
	for i, r := range admit {
		caps[i] = r.MaxWavelengths
		if pinned(r) {
			caps[i] = len(r.waves)
		}
	}
	solve := func() []int {
		target := make([]int, len(admit))
		for i, r := range admit {
			target[i] = floor(r)
		}
		surplus := s.budget - reserved
		for lo := 0; lo < len(admit) && surplus > 0; {
			hi := lo
			for hi < len(admit) && admit[hi].Priority == admit[lo].Priority {
				hi++
			}
			for surplus > 0 {
				progressed := false
				for i := lo; i < hi && surplus > 0; i++ {
					if target[i] < caps[i] {
						target[i]++
						surplus--
						progressed = true
					}
				}
				if !progressed {
					break
				}
			}
			lo = hi
		}
		return target
	}
	target := solve()
	for s.err == nil {
		vetoed := false
		for i, r := range admit {
			if r.state == stRunning && target[i] > len(r.waves) && !s.widenPays(r, target[i]) {
				caps[i] = len(r.waves)
				vetoed = true
			}
		}
		if !vetoed {
			break
		}
		target = solve()
	}
	if s.err != nil {
		return
	}

	// Pass 3: apply. Release every shrinking/changed stripe before
	// allocating any new one so a widening job can absorb a shrinking
	// neighbor's wavelengths.
	var changed []*jobRec
	widths := make(map[*jobRec]int, len(admit))
	for i, r := range admit {
		if r.state != stRunning || target[i] == len(r.waves) {
			continue
		}
		changed = append(changed, r)
		widths[r] = target[i]
	}
	for _, r := range changed {
		s.pause(r)
	}
	for _, r := range changed {
		s.reconfigure(r, widths[r])
		if s.err != nil {
			return
		}
	}
	// Newly admitted jobs start at their solved width, penalty-free.
	admitted := make(map[*jobRec]bool, len(admit))
	for i, r := range admit {
		if r.state == stWaiting {
			admitted[r] = true
			widths[r] = target[i]
		}
	}
	var keep []*jobRec
	for _, r := range s.queue {
		if !admitted[r] {
			keep = append(keep, r)
		}
	}
	s.queue = keep
	for _, r := range admit {
		if s.err == nil && admitted[r] {
			s.start(r, widths[r])
		}
	}
}

// widenPays reports whether restarting r at the wider stripe strictly
// beats letting the current segment finish: the reconfiguration stall plus
// the re-priced tail must complete earlier than segStart+segLen. Pricing
// the candidate width may hit the caller's runtime function for the first
// time; its errors abort the simulation like any other runtime failure.
func (s *scheduler) widenPays(r *jobRec, width int) bool {
	tail, err := r.totalRuntime(width)
	if err != nil {
		s.fail(err)
		return false
	}
	now := s.eng.Now()
	return now+s.pol.ReconfigDelaySec+tail*r.remainingAt(now) < r.segStart+r.segLen
}

func (s *scheduler) running() []*jobRec {
	var out []*jobRec
	for _, r := range s.recs {
		if r.state == stRunning {
			out = append(out, r)
		}
	}
	return out
}

func (s *scheduler) finalize(recs []*jobRec) (Result, error) {
	res := Result{
		Policy: s.pol, Budget: s.budget,
		Events:          s.events,
		PeakWavelengths: s.peak,
	}
	var queues, slowdowns []float64
	for _, r := range recs {
		if r.state == stRejected {
			res.RejectedJobs++
			res.Jobs = append(res.Jobs, r.st)
			continue
		}
		if r.state != stDone {
			return Result{}, fmt.Errorf("fabric: job %q never completed (deadlock?)", r.Name)
		}
		alone, err := r.totalRuntime(r.MaxWavelengths)
		if err != nil {
			return Result{}, err
		}
		r.st.AloneSec = alone
		r.st.Slowdown = (r.st.DoneSec - r.st.ArrivalSec) / alone
		if r.st.DoneSec > res.MakespanSec {
			res.MakespanSec = r.st.DoneSec
		}
		queues = append(queues, r.st.QueueSec)
		slowdowns = append(slowdowns, r.st.Slowdown)
		res.Jobs = append(res.Jobs, r.st)
	}
	if len(slowdowns) == 0 {
		return Result{}, fmt.Errorf("fabric: every job was rejected")
	}
	res.MeanQueueSec = stats.Mean(queues)
	res.MaxQueueSec = stats.Max(queues)
	res.MeanSlowdown = stats.Mean(slowdowns)
	res.Fairness = stats.JainIndex(slowdowns)
	if res.MakespanSec > 0 {
		res.Utilization = s.busySec / (float64(s.budget) * res.MakespanSec)
	}
	return res, nil
}
