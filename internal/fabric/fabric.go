// Package fabric schedules concurrent all-reduce jobs onto one shared WDM
// optical ring fabric with a global wavelength budget. The paper prices a
// single all-reduce on a dedicated ring; a production optical interconnect
// serves many training jobs at once (TopoOpt, RAMP), contending for the same
// wavelength pool. This package models that regime: jobs arrive over time,
// pass admission control, receive disjoint sets of concrete wavelength
// indices under a partitioning policy, run for as long as their all-reduce
// takes at the granted stripe width, and release the wavelengths for queued
// tenants.
//
// Three policies are provided: a static equal split of the budget into
// tenant shares, first-fit sharing from a common pool (small jobs may
// overtake a blocked head-of-line job), and priority scheduling with
// preemption (a higher-priority arrival reclaims wavelengths from the
// lowest-priority running tenants; preempted work resumes pro-rata).
//
// The co-simulation is a discrete-event program on internal/sim, so runs are
// deterministic: same jobs, same policy, same trace. Per-job runtimes are
// supplied by the caller as a function of the granted wavelength count —
// the public API wires this to the full single-ring simulation path
// (wavelength assignment via internal/wdm and all), so fabric numbers are
// consistent with the paper harness by construction.
package fabric

import (
	"fmt"
	"math"
	"sort"

	"wrht/internal/sim"
	"wrht/internal/stats"
)

// Job is one tenant: an all-reduce workload arriving at a shared fabric.
type Job struct {
	// Name identifies the job in stats and traces; must be unique.
	Name string
	// ArrivalSec is when the job enters the fabric.
	ArrivalSec float64
	// Priority orders jobs under PriorityPreempt (higher wins). Ignored by
	// the other policies.
	Priority int
	// MinWavelengths is the smallest grant the job accepts (default 1). A
	// job whose minimum cannot ever be satisfied under the policy is
	// rejected at arrival (admission control).
	MinWavelengths int
	// MaxWavelengths is the grant the job asks for (default: whole budget).
	MaxWavelengths int
	// Iterations is the number of back-to-back all-reduces the job runs
	// (default 1).
	Iterations int
	// Runtime prices ONE all-reduce at stripe budget w (MinWavelengths <=
	// w <= MaxWavelengths). It must be positive and finite; wider grants
	// should not run slower. Preempted jobs resume pro-rata: remaining
	// work scales linearly with the fraction of the segment completed.
	Runtime func(w int) (float64, error)
}

// PolicyKind selects the wavelength-partitioning discipline.
type PolicyKind int

const (
	// StaticPartition splits the budget into Partitions equal shares; a
	// job occupies exactly one share and queues FIFO when all are busy.
	StaticPartition PolicyKind = iota
	// FirstFitShare grants each job min(MaxWavelengths, free) wavelengths
	// from a common pool, scanning the FIFO queue so a small job may start
	// while a wide head-of-line job waits.
	FirstFitShare
	// PriorityPreempt serves the queue in (priority, arrival) order and
	// lets a higher-priority job reclaim wavelengths from running
	// lower-priority tenants; preempted jobs requeue with their remaining
	// work and resume later.
	PriorityPreempt
)

func (k PolicyKind) String() string {
	switch k {
	case StaticPartition:
		return "static"
	case FirstFitShare:
		return "first-fit"
	case PriorityPreempt:
		return "priority"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Policy is a policy kind plus its parameters.
type Policy struct {
	Kind PolicyKind
	// Partitions is the number of equal shares under StaticPartition
	// (default 4, clamped to the budget when unset). Must not exceed the
	// wavelength budget. Each share is budget/Partitions wide; when the
	// division is not exact, the remaining budget mod Partitions
	// wavelengths stay dark (they still count in the utilization
	// denominator — choose Partitions dividing the budget to avoid it).
	Partitions int
}

// Validate checks the policy against a wavelength budget.
func (p Policy) Validate(budget int) error {
	switch p.Kind {
	case StaticPartition:
		parts := p.partitions(budget)
		if parts < 1 || parts > budget {
			return fmt.Errorf("fabric: %d partitions for budget %d", parts, budget)
		}
	case FirstFitShare, PriorityPreempt:
	default:
		return fmt.Errorf("fabric: unknown policy kind %d", int(p.Kind))
	}
	return nil
}

// partitions returns the effective share count for StaticPartition:
// Partitions when set, else 4 clamped to the budget.
func (p Policy) partitions(budget int) int {
	if p.Partitions == 0 {
		if budget < 4 {
			return budget
		}
		return 4
	}
	return p.Partitions
}

// EventKind tags one entry of the fabric trace.
type EventKind int

const (
	EvArrive EventKind = iota
	EvReject
	EvStart
	EvPreempt
	EvResume
	EvFinish
)

func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvReject:
		return "reject"
	case EvStart:
		return "start"
	case EvPreempt:
		return "preempt"
	case EvResume:
		return "resume"
	case EvFinish:
		return "finish"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the fabric trace: what happened to which job when,
// and how many wavelengths it held afterwards.
type Event struct {
	TimeSec     float64
	Job         string
	Kind        EventKind
	Wavelengths int
}

// JobStats is the per-tenant outcome of a fabric simulation.
type JobStats struct {
	Name     string
	Rejected bool
	// ArrivalSec, StartSec and DoneSec are absolute simulation times;
	// QueueSec = StartSec - ArrivalSec is the initial queueing delay and
	// ServiceSec the total time actually spent running (across segments).
	ArrivalSec float64
	StartSec   float64
	DoneSec    float64
	QueueSec   float64
	ServiceSec float64
	// Wavelengths is the concrete wavelength index set of the final run
	// segment; Width is its size.
	Wavelengths []int
	Width       int
	Preemptions int
	// AloneSec is the job's runtime had it run alone at its widest grant
	// (MaxWavelengths, clamped to the budget) with no contention;
	// Slowdown = (DoneSec-ArrivalSec)/AloneSec >= 1 measures what sharing
	// cost this tenant.
	AloneSec float64
	Slowdown float64
}

// Result is the outcome of co-simulating all jobs on the shared fabric.
type Result struct {
	Policy Policy
	Budget int
	Jobs   []JobStats
	Events []Event
	// MakespanSec is the completion time of the last job.
	MakespanSec  float64
	MeanQueueSec float64
	MaxQueueSec  float64
	MeanSlowdown float64
	// Fairness is Jain's index over completed jobs' slowdowns (1 = every
	// tenant slowed equally).
	Fairness float64
	// Utilization is lit wavelength-seconds over budget x makespan.
	Utilization float64
	// PeakWavelengths is the most wavelengths simultaneously allocated.
	PeakWavelengths int
	RejectedJobs    int
}

// jobRec is the scheduler's mutable view of one job.
type jobRec struct {
	Job
	idx       int
	state     int // 0 queued (pre-arrival), 1 waiting, 2 running, 3 done, 4 rejected
	remaining float64
	epoch     int
	waves     []int
	segStart  float64
	segLen    float64
	st        JobStats
	memo      map[int]float64
}

const (
	stWaiting  = 1
	stRunning  = 2
	stDone     = 3
	stRejected = 4
)

// totalRuntime prices the job's full workload (all iterations) at width w.
func (j *jobRec) totalRuntime(w int) (float64, error) {
	if v, ok := j.memo[w]; ok {
		return v, nil
	}
	one, err := j.Runtime(w)
	if err != nil {
		return 0, fmt.Errorf("fabric: job %q at width %d: %w", j.Name, w, err)
	}
	if one <= 0 || math.IsNaN(one) || math.IsInf(one, 0) {
		return 0, fmt.Errorf("fabric: job %q runtime %v at width %d", j.Name, one, w)
	}
	v := one * float64(j.Iterations)
	j.memo[w] = v
	return v, nil
}

type scheduler struct {
	eng    sim.Engine
	pol    Policy
	budget int
	free   []bool // free[c] = wavelength c unallocated
	nfree  int
	queue  []*jobRec
	recs   []*jobRec
	events []Event

	// shareSize is one tenant share under StaticPartition, parts the
	// effective share count; activeShares counts tenants currently
	// occupying a share.
	shareSize    int
	parts        int
	activeShares int

	// utilization accounting
	lastT   float64
	busySec float64
	busyNow int
	peak    int

	err error
}

// Simulate co-schedules the jobs on a fabric of `budget` wavelengths under
// the policy and returns per-job and aggregate statistics plus the full
// event trace. The simulation is deterministic.
func Simulate(budget int, jobs []Job, pol Policy) (Result, error) {
	if budget < 1 {
		return Result{}, fmt.Errorf("fabric: wavelength budget %d", budget)
	}
	if len(jobs) == 0 {
		return Result{}, fmt.Errorf("fabric: no jobs")
	}
	if err := pol.Validate(budget); err != nil {
		return Result{}, err
	}
	recs := make([]*jobRec, len(jobs))
	seen := map[string]bool{}
	for i, j := range jobs {
		if j.Name == "" {
			j.Name = fmt.Sprintf("job%d", i)
		}
		if seen[j.Name] {
			return Result{}, fmt.Errorf("fabric: duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		if j.ArrivalSec < 0 || math.IsNaN(j.ArrivalSec) || math.IsInf(j.ArrivalSec, 0) {
			return Result{}, fmt.Errorf("fabric: job %q arrival %v", j.Name, j.ArrivalSec)
		}
		if j.MinWavelengths == 0 {
			j.MinWavelengths = 1
		}
		if j.MinWavelengths < 1 ||
			(j.MaxWavelengths != 0 && j.MaxWavelengths < j.MinWavelengths) {
			return Result{}, fmt.Errorf("fabric: job %q wavelength range [%d,%d]",
				j.Name, j.MinWavelengths, j.MaxWavelengths)
		}
		// A minimum beyond the budget is not a spec error: admission
		// control rejects that job at arrival while the rest of the mix
		// still runs.
		if j.MaxWavelengths == 0 || j.MaxWavelengths > budget {
			j.MaxWavelengths = budget
		}
		if j.Iterations == 0 {
			j.Iterations = 1
		}
		if j.Iterations < 1 {
			return Result{}, fmt.Errorf("fabric: job %q iterations %d", j.Name, j.Iterations)
		}
		if j.Runtime == nil {
			return Result{}, fmt.Errorf("fabric: job %q has no runtime function", j.Name)
		}
		recs[i] = &jobRec{
			Job: j, idx: i, remaining: 1,
			st:   JobStats{Name: j.Name, ArrivalSec: j.ArrivalSec},
			memo: map[int]float64{},
		}
	}

	s := &scheduler{pol: pol, budget: budget, free: make([]bool, budget), nfree: budget, recs: recs}
	for c := range s.free {
		s.free[c] = true
	}
	if pol.Kind == StaticPartition {
		s.parts = pol.partitions(budget)
		s.shareSize = budget / s.parts
	}
	for _, r := range recs {
		r := r
		s.eng.At(r.ArrivalSec, func() { s.arrive(r) })
	}
	s.eng.Run()
	if s.err != nil {
		return Result{}, s.err
	}

	return s.finalize(recs)
}

// fail aborts the simulation at the first runtime-function error; remaining
// events become no-ops.
func (s *scheduler) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *scheduler) emit(r *jobRec, kind EventKind, width int) {
	s.events = append(s.events, Event{
		TimeSec: s.eng.Now(), Job: r.Name, Kind: kind, Wavelengths: width,
	})
}

// account integrates lit wavelength-seconds up to the current time.
func (s *scheduler) account() {
	now := s.eng.Now()
	s.busySec += float64(s.busyNow) * (now - s.lastT)
	s.lastT = now
}

// maxGrant is the widest allocation any job can ever receive.
func (s *scheduler) maxGrant() int {
	if s.pol.Kind == StaticPartition {
		return s.shareSize
	}
	return s.budget
}

func (s *scheduler) arrive(r *jobRec) {
	if s.err != nil {
		return
	}
	s.emit(r, EvArrive, 0)
	if r.MinWavelengths > s.maxGrant() {
		// Admission control: this job can never be satisfied here.
		r.state = stRejected
		r.st.Rejected = true
		s.emit(r, EvReject, 0)
		return
	}
	r.state = stWaiting
	s.queue = append(s.queue, r)
	s.dispatch()
}

// allocate takes `width` lowest-indexed free wavelengths (first fit).
func (s *scheduler) allocate(width int) []int {
	waves := make([]int, 0, width)
	for c := 0; c < s.budget && len(waves) < width; c++ {
		if s.free[c] {
			s.free[c] = false
			waves = append(waves, c)
		}
	}
	if len(waves) != width {
		panic(fmt.Sprintf("fabric: allocated %d of %d requested wavelengths", len(waves), width))
	}
	s.nfree -= width
	return waves
}

func (s *scheduler) release(waves []int) {
	for _, c := range waves {
		if s.free[c] {
			panic(fmt.Sprintf("fabric: double free of wavelength %d", c))
		}
		s.free[c] = true
	}
	s.nfree += len(waves)
}

// start grants `width` wavelengths to r and schedules its (remaining) run.
func (s *scheduler) start(r *jobRec, width int) {
	seg, err := r.totalRuntime(width)
	if err != nil {
		s.fail(err)
		return
	}
	s.account()
	r.waves = s.allocate(width)
	r.state = stRunning
	r.segStart = s.eng.Now()
	r.segLen = seg * r.remaining
	r.st.Width = width
	r.st.Wavelengths = append([]int(nil), r.waves...)
	kind := EvStart
	if r.st.Preemptions > 0 {
		kind = EvResume
	} else {
		r.st.StartSec = s.eng.Now()
		r.st.QueueSec = r.st.StartSec - r.ArrivalSec
	}
	s.busyNow += width
	if s.busyNow > s.peak {
		s.peak = s.busyNow
	}
	s.emit(r, kind, width)
	r.epoch++
	epoch := r.epoch
	s.eng.After(r.segLen, func() { s.complete(r, epoch) })
}

func (s *scheduler) complete(r *jobRec, epoch int) {
	if s.err != nil || r.epoch != epoch || r.state != stRunning {
		return // stale completion of a preempted segment
	}
	s.account()
	r.state = stDone
	r.remaining = 0
	r.st.ServiceSec += r.segLen
	r.st.DoneSec = s.eng.Now()
	s.busyNow -= len(r.waves)
	s.release(r.waves)
	r.waves = nil
	if s.pol.Kind == StaticPartition {
		s.activeShares--
	}
	s.emit(r, EvFinish, 0)
	s.dispatch()
}

// preempt pauses a running job, returning its wavelengths to the pool and
// requeueing its remaining work.
func (s *scheduler) preempt(r *jobRec) {
	s.account()
	now := s.eng.Now()
	if r.segLen > 0 {
		frac := (now - r.segStart) / r.segLen
		if frac > 1 {
			frac = 1
		}
		r.remaining *= 1 - frac
	} else {
		r.remaining = 0
	}
	r.st.ServiceSec += now - r.segStart
	r.st.Preemptions++
	r.epoch++ // invalidate the pending completion event
	s.busyNow -= len(r.waves)
	s.release(r.waves)
	r.waves = nil
	r.state = stWaiting
	s.queue = append(s.queue, r)
	s.emit(r, EvPreempt, 0)
}

// dispatch runs the policy's scheduling pass over the wait queue.
func (s *scheduler) dispatch() {
	if s.err != nil {
		return
	}
	switch s.pol.Kind {
	case StaticPartition:
		s.dispatchStatic()
	case FirstFitShare:
		s.dispatchFirstFit()
	case PriorityPreempt:
		s.dispatchPriority()
	}
}

// dispatchStatic starts FIFO-queued jobs while a tenant share is free. A
// job narrower than its share runs at its own MaxWavelengths cap; the rest
// of the share stays dark (static isolation: at most Partitions tenants).
func (s *scheduler) dispatchStatic() {
	for len(s.queue) > 0 && s.activeShares < s.parts {
		r := s.queue[0]
		s.queue = s.queue[1:]
		width := s.shareSize
		if r.MaxWavelengths < width {
			width = r.MaxWavelengths
		}
		s.activeShares++
		s.start(r, width)
		if s.err != nil {
			return
		}
	}
}

// dispatchFirstFit scans the queue in arrival order and starts every job
// whose minimum fits the remaining pool, granting up to its maximum.
func (s *scheduler) dispatchFirstFit() {
	var keep []*jobRec
	for _, r := range s.queue {
		if s.err == nil && r.MinWavelengths <= s.nfree {
			width := r.MaxWavelengths
			if width > s.nfree {
				width = s.nfree
			}
			s.start(r, width)
			continue
		}
		keep = append(keep, r)
	}
	s.queue = keep
}

// dispatchPriority serves the queue in (priority desc, arrival asc) order,
// preempting strictly lower-priority running jobs when the pool is short.
func (s *scheduler) dispatchPriority() {
	for s.err == nil && len(s.queue) > 0 {
		sort.SliceStable(s.queue, func(a, b int) bool {
			if s.queue[a].Priority != s.queue[b].Priority {
				return s.queue[a].Priority > s.queue[b].Priority
			}
			if s.queue[a].ArrivalSec != s.queue[b].ArrivalSec {
				return s.queue[a].ArrivalSec < s.queue[b].ArrivalSec
			}
			return s.queue[a].idx < s.queue[b].idx
		})
		head := s.queue[0]
		if head.MinWavelengths > s.nfree {
			// Reclaimable width from strictly lower-priority tenants.
			victims := s.victimsFor(head)
			reclaim := 0
			for _, v := range victims {
				reclaim += len(v.waves)
			}
			if s.nfree+reclaim < head.MinWavelengths {
				return // even preempting everything eligible is not enough
			}
			for _, v := range victims {
				if s.nfree >= head.MinWavelengths {
					break
				}
				s.preempt(v)
			}
		}
		s.queue = s.queue[1:]
		width := head.MaxWavelengths
		if width > s.nfree {
			width = s.nfree
		}
		s.start(head, width)
	}
}

// victimsFor lists running jobs preemptible by r: strictly lower priority,
// cheapest first (lowest priority, then latest arrival). A job whose
// segment is already due to complete at the current instant is not a
// victim — its pending completion event (same timestamp, later sequence)
// will free the wavelengths anyway, and preempting it would spuriously
// discard a finished run.
func (s *scheduler) victimsFor(r *jobRec) []*jobRec {
	now := s.eng.Now()
	var out []*jobRec
	for _, v := range s.running() {
		if v.Priority < r.Priority && now < v.segStart+v.segLen {
			out = append(out, v)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Priority != out[b].Priority {
			return out[a].Priority < out[b].Priority
		}
		if out[a].ArrivalSec != out[b].ArrivalSec {
			return out[a].ArrivalSec > out[b].ArrivalSec
		}
		return out[a].idx > out[b].idx
	})
	return out
}

func (s *scheduler) running() []*jobRec {
	var out []*jobRec
	for _, r := range s.recs {
		if r.state == stRunning {
			out = append(out, r)
		}
	}
	return out
}

func (s *scheduler) finalize(recs []*jobRec) (Result, error) {
	res := Result{
		Policy: s.pol, Budget: s.budget,
		Events:          s.events,
		PeakWavelengths: s.peak,
	}
	var queues, slowdowns []float64
	for _, r := range recs {
		if r.state == stRejected {
			res.RejectedJobs++
			res.Jobs = append(res.Jobs, r.st)
			continue
		}
		if r.state != stDone {
			return Result{}, fmt.Errorf("fabric: job %q never completed (deadlock?)", r.Name)
		}
		alone, err := r.totalRuntime(r.MaxWavelengths)
		if err != nil {
			return Result{}, err
		}
		r.st.AloneSec = alone
		r.st.Slowdown = (r.st.DoneSec - r.st.ArrivalSec) / alone
		if r.st.DoneSec > res.MakespanSec {
			res.MakespanSec = r.st.DoneSec
		}
		queues = append(queues, r.st.QueueSec)
		slowdowns = append(slowdowns, r.st.Slowdown)
		res.Jobs = append(res.Jobs, r.st)
	}
	if len(slowdowns) == 0 {
		return Result{}, fmt.Errorf("fabric: every job was rejected")
	}
	res.MeanQueueSec = stats.Mean(queues)
	res.MaxQueueSec = stats.Max(queues)
	res.MeanSlowdown = stats.Mean(slowdowns)
	res.Fairness = stats.JainIndex(slowdowns)
	if res.MakespanSec > 0 {
		res.Utilization = s.busySec / (float64(s.budget) * res.MakespanSec)
	}
	return res, nil
}
