// Package fabric schedules concurrent all-reduce jobs onto one shared WDM
// optical ring fabric with a global wavelength budget. The paper prices a
// single all-reduce on a dedicated ring; a production optical interconnect
// serves many training jobs at once (TopoOpt, RAMP), contending for the same
// wavelength pool. This package models that regime: jobs arrive over time,
// pass admission control, receive disjoint sets of concrete wavelength
// indices under a partitioning policy, run for as long as their all-reduce
// takes at the granted stripe width, and release the wavelengths for queued
// tenants.
//
// Four policies are provided: a static split of the budget into tenant
// shares (the remainder of an inexact division is spread round-robin, so no
// wavelength is permanently dark), first-fit sharing from a common pool
// (small jobs may overtake a blocked head-of-line job), priority scheduling
// with preemption (a higher-priority arrival reclaims wavelengths from the
// lowest-priority running tenants; preempted work resumes pro-rata), and
// elastic re-allocation (every arrival and departure re-solves the stripe
// assignment for the live tenant set: running jobs widen up to their
// maximum when capacity frees, shrink — never fully preempt — to admit
// higher-priority arrivals, and each mid-flight width change pays a
// configurable optical reconfiguration penalty).
//
// The elastic solve is incremental: live tenants are indexed by priority
// tier with cached fill state, so an arrival or departure touches only the
// tiers whose water level can change while lower tiers' assignments stay
// untouched (and byte-identical to a from-scratch solve — see elastic.go).
// Together with the shape-keyed runtime-curve cache and the aggregate-only
// Lite stats mode this scales fabric co-simulation to million-event traces;
// internal/fleet runs many fabrics on one shared engine on top of the
// external-engine Scheduler API.
//
// The co-simulation is a discrete-event program on internal/sim, so runs are
// deterministic: same jobs, same policy, same trace. Per-job runtimes are
// supplied by the caller as a function of the granted wavelength count —
// the public API wires this to the full single-ring simulation path
// (wavelength assignment via internal/wdm and all), so fabric numbers are
// consistent with the paper harness by construction.
package fabric

import (
	"fmt"
	"math"

	"wrht/internal/faults"
	"wrht/internal/obs"
	"wrht/internal/sim"
)

// Job is one tenant: an all-reduce workload arriving at a shared fabric.
type Job struct {
	// Name identifies the job in stats and traces; must be unique.
	Name string
	// ArrivalSec is when the job enters the fabric.
	ArrivalSec float64
	// Priority orders jobs under PriorityPreempt (higher wins). Ignored by
	// the other policies.
	Priority int
	// MinWavelengths is the smallest grant the job accepts (default 1). A
	// job whose minimum cannot ever be satisfied under the policy is
	// rejected at arrival (admission control).
	MinWavelengths int
	// MaxWavelengths is the grant the job asks for (default: whole budget).
	MaxWavelengths int
	// Iterations is the number of back-to-back all-reduces the job runs
	// (default 1).
	Iterations int
	// Shape keys the scheduler's shared runtime-curve cache: jobs with the
	// same non-zero Shape are priced by the same Runtime curve, so one
	// (shape, width) pair hits the runtime function at most once per
	// scheduler no matter how many tenants share the shape. Shape 0 (the
	// default) keeps a private per-job memo. Jobs sharing a Shape must
	// supply equivalent Runtime functions; Iterations may differ (the cache
	// stores one-iteration seconds).
	Shape int
	// CheckpointEverySec is how often (in productive service seconds) the
	// job checkpoints its progress. A transient fault (faults.JobFault)
	// rolls the job back to its last checkpoint and replays the tail; 0
	// (the default) means no checkpointing — a fault restarts the job from
	// scratch. Irrelevant without fault injection.
	CheckpointEverySec float64
	// Tag is an opaque caller tag carried through stats and outage
	// resubmissions (internal/fleet stores its trace index here). The
	// scheduler never reads it.
	Tag int
	// Runtime prices ONE all-reduce at stripe budget w (MinWavelengths <=
	// w <= MaxWavelengths). It must be positive and finite; wider grants
	// should not run slower. Preempted jobs resume pro-rata: remaining
	// work scales linearly with the fraction of the segment completed.
	Runtime func(w int) (float64, error)
}

// PolicyKind selects the wavelength-partitioning discipline.
type PolicyKind int

const (
	// StaticPartition splits the budget into Partitions equal shares; a
	// job occupies exactly one share and queues FIFO when all are busy.
	StaticPartition PolicyKind = iota
	// FirstFitShare grants each job min(MaxWavelengths, free) wavelengths
	// from a common pool, scanning the FIFO queue so a small job may start
	// while a wide head-of-line job waits.
	FirstFitShare
	// PriorityPreempt serves the queue in (priority, arrival, admission
	// index) order and lets a higher-priority job reclaim wavelengths from
	// running lower-priority tenants; preempted jobs requeue with their
	// remaining work and resume later.
	PriorityPreempt
	// ElasticReallocate re-solves the whole stripe assignment on every
	// arrival and departure: the live tenant set (running plus queued) is
	// re-partitioned by tiered water-filling — minimums first in (priority,
	// arrival, admission index) order with head-of-line blocking at the
	// first queued minimum that no longer fits, then the surplus one
	// wavelength at a time within each priority tier. Running jobs widen when capacity
	// frees and shrink (down to their minimum, never a full preemption) to
	// admit higher-priority arrivals; each mid-flight width change splits
	// the job's remaining work at the reconfiguration instant, re-prices
	// the tail at the new width, and pays Policy.ReconfigDelaySec of
	// optical switch settling. A widening that would not strictly improve
	// the job's projected completion (the penalty outweighs the wider
	// stripe on a nearly-done segment) is skipped.
	ElasticReallocate
)

func (k PolicyKind) String() string {
	switch k {
	case StaticPartition:
		return "static"
	case FirstFitShare:
		return "first-fit"
	case PriorityPreempt:
		return "priority"
	case ElasticReallocate:
		return "elastic"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// Policy is a policy kind plus its parameters.
type Policy struct {
	Kind PolicyKind
	// Partitions is the number of tenant shares under StaticPartition
	// (default 4, clamped to the budget when unset). Must not exceed the
	// wavelength budget. Each share is budget/Partitions wavelengths wide
	// and the remainder of an inexact division is distributed round-robin,
	// so the first budget mod Partitions shares are one wavelength wider
	// and every wavelength belongs to exactly one share.
	Partitions int
	// ReconfigDelaySec is the optical switch settling time a running job
	// pays for each mid-flight stripe change under ElasticReallocate (the
	// job holds its new wavelengths but makes no progress while the
	// switch retunes). Ignored by the other policies. Must be >= 0 and
	// finite; 0 models an idealized instantly-reconfigurable fabric.
	ReconfigDelaySec float64

	// fullSolve forces the reference from-scratch elastic solver instead
	// of the incremental tier-indexed one. The two are bit-identical by
	// construction (the equivalence property tests pin this); the flag
	// exists only so in-package tests can run both sides of the proof.
	fullSolve bool
}

// Validate checks the policy against a wavelength budget.
func (p Policy) Validate(budget int) error {
	switch p.Kind {
	case StaticPartition:
		parts := p.partitions(budget)
		if parts < 1 || parts > budget {
			return fmt.Errorf("fabric: %d partitions for budget %d", parts, budget)
		}
	case FirstFitShare, PriorityPreempt:
	case ElasticReallocate:
		if p.ReconfigDelaySec < 0 || math.IsNaN(p.ReconfigDelaySec) || math.IsInf(p.ReconfigDelaySec, 0) {
			return fmt.Errorf("fabric: reconfiguration delay %v", p.ReconfigDelaySec)
		}
	default:
		return fmt.Errorf("fabric: unknown policy kind %v", p.Kind)
	}
	return nil
}

// partitions returns the effective share count for StaticPartition:
// Partitions when set, else 4 clamped to the budget.
func (p Policy) partitions(budget int) int {
	if p.Partitions == 0 {
		if budget < 4 {
			return budget
		}
		return 4
	}
	return p.Partitions
}

// shareWidths returns the per-share wavelength counts under StaticPartition:
// budget/parts each, with the remainder of the division spread round-robin
// over the leading shares (widest shares first).
func (p Policy) shareWidths(budget int) []int {
	parts := p.partitions(budget)
	base, rem := budget/parts, budget%parts
	widths := make([]int, parts)
	for i := range widths {
		widths[i] = base
		if i < rem {
			widths[i]++
		}
	}
	return widths
}

// EventKind tags one entry of the fabric trace.
type EventKind int

const (
	EvArrive EventKind = iota
	EvReject
	EvStart
	EvPreempt
	EvResume
	EvFinish
	// EvReconfig records a mid-flight stripe change under ElasticReallocate:
	// the job now holds Wavelengths wavelengths (wider or narrower than
	// before) and stalls for the policy's reconfiguration delay before its
	// re-priced tail resumes.
	EvReconfig
	// EvWavelengthDown / EvWavelengthUp record injected fabric-level
	// wavelength faults (Job is empty, Wavelengths is the affected count):
	// the live budget shrinks until the matching restore.
	EvWavelengthDown
	EvWavelengthUp
	// EvJobFault records a transient crash of the running job: work since
	// its last checkpoint is lost and the re-priced tail replays at the
	// same stripe width.
	EvJobFault
	// EvEvict records a job forced off the fabric (dark wavelengths below
	// its floor, or a whole-fabric outage); it retries after a capped
	// exponential backoff or is replayed by the fleet's recovery policy.
	EvEvict
	// EvRetry records an evicted job re-entering the wait queue.
	EvRetry
)

func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvReject:
		return "reject"
	case EvStart:
		return "start"
	case EvPreempt:
		return "preempt"
	case EvResume:
		return "resume"
	case EvFinish:
		return "finish"
	case EvReconfig:
		return "reconfig"
	case EvWavelengthDown:
		return "wavelength-down"
	case EvWavelengthUp:
		return "wavelength-up"
	case EvJobFault:
		return "job-fault"
	case EvEvict:
		return "evict"
	case EvRetry:
		return "retry"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the fabric trace: what happened to which job when,
// and how many wavelengths it held afterwards.
type Event struct {
	TimeSec     float64
	Job         string
	Kind        EventKind
	Wavelengths int
}

// JobStats is the per-tenant outcome of a fabric simulation.
type JobStats struct {
	Name     string
	Rejected bool
	// ArrivalSec, StartSec and DoneSec are absolute simulation times;
	// QueueSec = StartSec - ArrivalSec is the initial queueing delay and
	// ServiceSec the total time actually spent running (across segments).
	ArrivalSec float64
	StartSec   float64
	DoneSec    float64
	QueueSec   float64
	ServiceSec float64
	// Wavelengths is the concrete wavelength index set of the final run
	// segment; Width is its size.
	Wavelengths []int
	Width       int
	Preemptions int
	// Reconfigs counts mid-flight stripe changes under ElasticReallocate
	// (each one stalled the job for the policy's reconfiguration delay,
	// which is included in ServiceSec — the job held wavelengths while the
	// switch settled).
	Reconfigs int
	// AloneSec is the job's runtime had it run alone at its widest grant
	// (MaxWavelengths, clamped to the budget) with no contention;
	// Slowdown = (DoneSec-ArrivalSec)/AloneSec >= 1 measures what sharing
	// cost this tenant.
	AloneSec float64
	Slowdown float64
	// Retries / Evictions count fault-recovery round trips: how often the
	// job was forced off the fabric (dark wavelengths, outages) and how
	// often it re-entered the queue after a backoff.
	Retries   int
	Evictions int
	// LostWorkSec is productive service discarded by transient faults and
	// outages: work past the job's last checkpoint that had to be replayed
	// (all of it when CheckpointEverySec is 0).
	LostWorkSec float64
	// Failed marks a job whose per-job retry budget ran out; like a
	// rejected job it has no completion or slowdown.
	Failed bool
}

// SolverStats counts the scheduling work a run performed. Under
// ElasticReallocate with the incremental solver they measure how much of
// each re-solve the tier index skipped; the reference full solver touches
// every tier on every solve by construction. The curve counters track the
// shape-keyed runtime cache (Job.Shape) and stay zero for shape-0 jobs.
type SolverStats struct {
	// Solves is the number of elastic re-solve passes (coalesced per
	// simulated instant).
	Solves int64
	// TiersTouched / TiersSkipped count priority tiers the solver filled
	// exactly vs. proved untouched (assignments carried over byte-identical
	// without visiting members).
	TiersTouched int64
	TiersSkipped int64
	// JobsRepriced counts member jobs whose target width was recomputed
	// (the water-fill visited them); jobs in skipped tiers are not
	// re-priced.
	JobsRepriced int64
	// CurveHits / CurveBuilds count shape-keyed runtime-curve lookups that
	// were served from cache vs. priced through the job's Runtime function.
	CurveHits   int64
	CurveBuilds int64
}

func (a SolverStats) add(b SolverStats) SolverStats {
	a.Solves += b.Solves
	a.TiersTouched += b.TiersTouched
	a.TiersSkipped += b.TiersSkipped
	a.JobsRepriced += b.JobsRepriced
	a.CurveHits += b.CurveHits
	a.CurveBuilds += b.CurveBuilds
	return a
}

// Sum returns the elementwise sum of two counter sets (fleet aggregation).
func (a SolverStats) Sum(b SolverStats) SolverStats { return a.add(b) }

// Result is the outcome of co-simulating all jobs on the shared fabric.
type Result struct {
	Policy Policy
	Budget int
	// Jobs and Events are nil when the run used SchedOpts.Lite (only the
	// aggregate fields below are kept).
	Jobs   []JobStats
	Events []Event
	// MakespanSec is the completion time of the last job.
	MakespanSec  float64
	MeanQueueSec float64
	MaxQueueSec  float64
	MeanSlowdown float64
	// Fairness is Jain's index over completed jobs' slowdowns (1 = every
	// tenant slowed equally).
	Fairness float64
	// Utilization is lit wavelength-seconds over budget x makespan.
	Utilization float64
	// PeakWavelengths is the most wavelengths simultaneously allocated.
	PeakWavelengths int
	RejectedJobs    int
	// CompletedJobs counts jobs that ran to completion (available in Lite
	// mode where Jobs is nil).
	CompletedJobs int
	// Preemptions/Reconfigs total the per-job counters (available in Lite
	// mode where Jobs is nil).
	Preemptions int
	Reconfigs   int
	// SlowdownSum / SlowdownSumSq are Σ slowdown and Σ slowdown² over
	// completed jobs — enough to recombine mean and Jain fairness across
	// fabrics (internal/fleet) without per-job stats.
	SlowdownSum   float64
	SlowdownSumSq float64
	// Solver counts the scheduling work the run performed.
	Solver SolverStats
	// Fault-recovery aggregates (all zero on fault-free runs). JobFaults
	// counts injected transient crashes, Evictions/Retries total the
	// per-job counters, FailedJobs counts exhausted retry budgets, and
	// LostWorkSec totals replayed service.
	JobFaults   int
	Evictions   int
	Retries     int
	FailedJobs  int
	LostWorkSec float64
	// Availability is the fraction of the fabric's wavelength-second
	// capacity (budget × makespan) that was not dark from injected faults
	// or outages; 1 on fault-free runs.
	Availability float64
}

// jobRec is the scheduler's mutable view of one job.
type jobRec struct {
	Job
	idx       int
	state     int // 0 queued (pre-arrival), 1 waiting, 2 running, 3 done, 4 rejected
	remaining float64
	epoch     int
	waves     []int
	share     int // occupied share index under StaticPartition, else -1
	segStart  float64
	segLen    float64
	// segPenalty is the leading reconfiguration stall of the current
	// segment (ElasticReallocate): the job holds wavelengths but makes no
	// progress during it, so pro-rata work accounting nets it out.
	segPenalty float64
	st         JobStats
	memo       map[int]float64

	// Fault-recovery state: spent retry budget, and the checkpoint the job
	// would roll back to on a crash — the remaining-work fraction at its
	// last checkpoint plus the productive service accumulated since
	// (ckptRemaining starts at 1: "checkpoint zero" is the job's start).
	retries       int
	ckptRemaining float64
	ckptService   float64

	// Incremental elastic solver state (elastic.go): the tier this member
	// belongs to, its per-solve fill target and cap, and the per-solve
	// widen-veto cap (valid when the stamp matches the current solve
	// number).
	tier      *elTier
	elTarget  int
	elCap     int
	vetoCap   int
	vetoStamp int64
	// runPos is the job's index in scheduler.liveRun while running (-1
	// otherwise), for O(1) removal at completion under Lite mode.
	runPos int
}

const (
	stWaiting  = 1
	stRunning  = 2
	stDone     = 3
	stRejected = 4
	// stParked: evicted by a fault, waiting out its retry backoff.
	stParked = 5
	// stEvicted: left this fabric in an outage; the fleet owns it now.
	stEvicted = 6
	// stFailed: retry budget exhausted, permanently failed.
	stFailed = 7
)

// Simulate co-schedules the jobs on a fabric of `budget` wavelengths under
// the policy and returns per-job and aggregate statistics plus the full
// event trace. The simulation is deterministic.
func Simulate(budget int, jobs []Job, pol Policy) (Result, error) {
	return SimulateObserved(budget, jobs, pol, nil, "")
}

// SimulateObserved is Simulate with a flight recorder attached: the run
// becomes one recorder process (named proc — give each simulation a unique
// name so concurrent runs stay on disjoint tracks), every job an
// instant/span track (arrive/start/preempt/reconfig/finish markers plus
// run/settle segments), queue depth and lit wavelengths counter tracks, and
// each wavelength index an occupancy lane labeled with the holding job.
// The recorder is write-only — scheduling decisions never read it — so
// results are bit-identical to Simulate; a nil recorder costs one branch
// per event.
func SimulateObserved(budget int, jobs []Job, pol Policy, rec *obs.Recorder, proc string) (Result, error) {
	return SimulateWith(budget, jobs, pol, faults.Plan{}, SchedOpts{Rec: rec, Proc: proc})
}

// cancelCheckEvery is how many executed events separate two cancellation
// polls of SchedOpts.Cancel — coarse enough to be free on the hot path,
// fine enough that a deadline kills a runaway co-simulation in well under a
// millisecond of wall time.
const cancelCheckEvery = 1024

// SimulateWith is the generalized one-fabric entry point behind Simulate,
// SimulateObserved, and SimulateFaults: an optional failure plan injected
// on the run's private engine plus the full SchedOpts surface (recorder,
// cancellation hook). An empty plan leaves every result bit-identical to
// the fault-free path; a cancellation abandons the run at an event boundary
// and returns the hook's error.
func SimulateWith(budget int, jobs []Job, pol Policy, plan faults.Plan, opt SchedOpts) (Result, error) {
	var evs []faults.Event
	if !plan.Empty() {
		if err := plan.Validate(1); err != nil {
			return Result{}, err
		}
		var err error
		evs, err = plan.Events(1)
		if err != nil {
			return Result{}, err
		}
		if faults.HasFabricEvents(evs) {
			return Result{}, fmt.Errorf("fabric: fabric outage events need a fleet (internal/fleet)")
		}
		if pol.Kind == StaticPartition && faults.HasWavelengthEvents(evs) {
			return Result{}, fmt.Errorf("fabric: wavelength faults are not supported under StaticPartition")
		}
		opt.Faults = true
		opt.Retry = plan.Retry
	}
	if budget < 1 {
		return Result{}, fmt.Errorf("fabric: wavelength budget %d", budget)
	}
	if len(jobs) == 0 {
		return Result{}, fmt.Errorf("fabric: no jobs")
	}
	var eng sim.Engine
	s, err := NewScheduler(&eng, budget, pol, opt)
	if err != nil {
		return Result{}, err
	}
	s.s.ownEng = true
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			return Result{}, err
		}
	}
	for _, ev := range evs {
		ev := ev
		switch ev.Kind {
		case faults.WavelengthDown:
			eng.At(ev.TimeSec, func() { s.s.wavelengthsDown(ev.Count) })
		case faults.WavelengthUp:
			eng.At(ev.TimeSec, func() { s.s.wavelengthsUp(ev.Count) })
		case faults.JobFault:
			eng.At(ev.TimeSec, func() { s.s.injectJobFault(ev.Pick, ev.Job) })
		}
	}
	if _, err := eng.RunChecked(cancelCheckEvery, opt.Cancel); err != nil {
		return Result{}, err
	}
	return s.Finalize()
}
