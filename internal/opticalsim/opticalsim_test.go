package opticalsim

import (
	"math"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/ring"
	"wrht/internal/runner"
)

func almost(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func wrhtSchedule(t *testing.T, n, w, m int, elems int) *collective.Schedule {
	t.Helper()
	plan, err := core.BuildPlan(n, w, core.Options{M: m, Policy: core.A2AFormula, Striping: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := plan.Schedule(elems)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBarrierMatchesStepModel(t *testing.T) {
	// For schedules whose steps fit the wavelength budget in one round, the
	// event-level barrier simulation must equal the closed-form step model
	// to float precision.
	schedules := []*collective.Schedule{}
	ringS, err := collective.RingAllReduce(32, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	schedules = append(schedules, ringS, wrhtSchedule(t, 64, 64, 3, 64<<10))
	for _, s := range schedules {
		simRes, err := Run(s, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		stepRes, err := runner.RunOptical(s, runner.DefaultOpticalOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !almost(simRes.TotalSec, stepRes.TotalSec, 1e-9) {
			t.Errorf("%s: event sim %.9g vs step model %.9g",
				s.Algorithm, simRes.TotalSec, stepRes.TotalSec)
		}
		topo := ring.MustNew(s.N)
		if err := ValidateTimeline(topo, simRes.Events); err != nil {
			t.Errorf("%s: %v", s.Algorithm, err)
		}
	}
}

func TestAsyncNeverSlowerThanBarrier(t *testing.T) {
	// With zero fixed overheads, removing barriers can only help.
	opts := DefaultOptions()
	opts.Params.TuningNs = 0
	opts.Params.StepControlNs = 0
	schedules := []*collective.Schedule{
		wrhtSchedule(t, 64, 64, 3, 32<<10),
		wrhtSchedule(t, 100, 16, 7, 32<<10),
	}
	ringS, err := collective.RingAllReduce(16, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	hier, err := collective.HierarchicalRing(16, 4, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	schedules = append(schedules, ringS, hier)
	for _, s := range schedules {
		b := opts
		b.Mode = Barrier
		a := opts
		a.Mode = Async
		rb, err := Run(s, b)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := Run(s, a)
		if err != nil {
			t.Fatal(err)
		}
		if ra.TotalSec > rb.TotalSec*(1+1e-9) {
			t.Errorf("%s: async %.9g slower than barrier %.9g",
				s.Algorithm, ra.TotalSec, rb.TotalSec)
		}
		topo := ring.MustNew(s.N)
		if err := ValidateTimeline(topo, ra.Events); err != nil {
			t.Errorf("%s async: %v", s.Algorithm, err)
		}
	}
}

func TestAsyncCompletesAllTransfers(t *testing.T) {
	s := wrhtSchedule(t, 128, 64, 5, 16<<10)
	opts := DefaultOptions()
	opts.Mode = Async
	res, err := Run(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, st := range s.Steps {
		want += len(st.Transfers)
	}
	if len(res.Events) != want {
		t.Fatalf("events %d, transfers %d", len(res.Events), want)
	}
	if res.EventCount <= 0 {
		t.Fatal("no engine events recorded")
	}
}

func TestAsyncExploitsImbalance(t *testing.T) {
	// Two independent pipelines of unequal depth: node 0→1→2 (two hops of
	// data dependency) and node 4→5. Under barriers the second step waits
	// for the slow first step; async lets 4→5... both are step-0 here, so
	// craft imbalance across steps: step 0 = {0→1 big, 4→5 small},
	// step 1 = {5→6 small}. Async starts 5→6 as soon as 4→5 lands.
	s := &collective.Schedule{Algorithm: "imbalanced", N: 8, Elems: 1 << 20}
	big := collectiveTransfer(0, 1, 1<<20)
	small := collectiveTransfer(4, 5, 1<<10)
	next := collectiveTransfer(5, 6, 1<<10)
	s.Steps = []collective.Step{
		{Label: "s0", Transfers: []collective.Transfer{big, small}},
		{Label: "s1", Transfers: []collective.Transfer{next}},
	}
	opts := DefaultOptions()
	opts.Params.TuningNs = 0
	opts.Params.StepControlNs = 0

	b := opts
	b.Mode = Barrier
	rb, err := Run(s, b)
	if err != nil {
		t.Fatal(err)
	}
	a := opts
	a.Mode = Async
	ra, err := Run(s, a)
	if err != nil {
		t.Fatal(err)
	}
	// The makespan is dominated by the big transfer either way, but async
	// must still be (slightly) faster, and — the real pipelining evidence —
	// the dependent 5→6 transfer must start long before the big transfer
	// ends, which the barrier forbids.
	if ra.TotalSec >= rb.TotalSec {
		t.Fatalf("async %.9g not faster than barrier %.9g", ra.TotalSec, rb.TotalSec)
	}
	var bigEnd, nextStartAsync, nextStartBarrier float64
	for _, ev := range ra.Events {
		if ev.Src == 0 && ev.Dst == 1 {
			bigEnd = ev.End
		}
		if ev.Src == 5 && ev.Dst == 6 {
			nextStartAsync = ev.Start
		}
	}
	for _, ev := range rb.Events {
		if ev.Src == 5 && ev.Dst == 6 {
			nextStartBarrier = ev.Start
		}
	}
	if !(nextStartAsync < bigEnd*0.1) {
		t.Fatalf("async 5→6 started at %.9g, not pipelined ahead of big end %.9g",
			nextStartAsync, bigEnd)
	}
	if !(nextStartBarrier >= bigEnd) {
		t.Fatalf("barrier 5→6 started at %.9g, before the step barrier at %.9g",
			nextStartBarrier, bigEnd)
	}
}

func collectiveTransfer(src, dst, elems int) collective.Transfer {
	return collective.Transfer{
		Src: src, Dst: dst,
		Region: regionOf(elems),
		Op:     collective.OpReduce,
	}
}

func regionOf(elems int) (r struct{ Offset, Len int }) {
	r.Len = elems
	return
}

func TestReduceComputeExtendsCriticalPath(t *testing.T) {
	s := wrhtSchedule(t, 16, 8, 3, 1<<18)
	fast := DefaultOptions()
	fast.Mode = Async
	slow := fast
	slow.ReduceGBps = 1 // 1 GB/s reduction: very slow
	rf, err := Run(s, fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(s, slow)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalSec <= rf.TotalSec {
		t.Fatalf("reduce compute had no effect: %v vs %v", rs.TotalSec, rf.TotalSec)
	}
}

func TestRunValidation(t *testing.T) {
	s, err := collective.RingAllReduce(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultOptions()
	bad.BytesPerElem = -1
	if _, err := Run(s, bad); err == nil {
		t.Fatal("negative BytesPerElem accepted")
	}
	bad = DefaultOptions()
	bad.ReduceGBps = -1
	if _, err := Run(s, bad); err == nil {
		t.Fatal("negative ReduceGBps accepted")
	}
	bad = DefaultOptions()
	bad.Mode = Mode(42)
	if _, err := Run(s, bad); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestValidateTimelineCatchesOverlap(t *testing.T) {
	topo := ring.MustNew(8)
	events := []TransferEvent{
		{Arc: ring.Arc{Src: 0, Dst: 2, Dir: ring.CW}, Wavelengths: []int{0}, Start: 0, End: 10},
		{Arc: ring.Arc{Src: 1, Dst: 3, Dir: ring.CW}, Wavelengths: []int{0}, Start: 5, End: 15},
	}
	if err := ValidateTimeline(topo, events); err == nil {
		t.Fatal("overlapping timeline accepted")
	}
	// Disjoint in time: fine.
	events[1].Start, events[1].End = 10, 15
	if err := ValidateTimeline(topo, events); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Barrier.String() != "barrier" || Async.String() != "async" {
		t.Fatal("Mode.String broken")
	}
}

func TestAsyncWrhtBeatsBarrierAtUnevenShapes(t *testing.T) {
	// A non-power grouping leaves a small trailing group per level whose
	// transfers finish early; async lets its representative proceed.
	s := wrhtSchedule(t, 100, 16, 7, 1<<16)
	optsB := DefaultOptions()
	optsB.Params.TuningNs = 0
	optsB.Params.StepControlNs = 0
	optsA := optsB
	optsA.Mode = Async
	rb, err := Run(s, optsB)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(s, optsA)
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalSec > rb.TotalSec {
		t.Fatalf("async %v > barrier %v", ra.TotalSec, rb.TotalSec)
	}
}
