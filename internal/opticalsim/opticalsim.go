// Package opticalsim is the message-level discrete-event simulator of the
// WDM optical ring — the "optical interconnect simulator" the paper's
// evaluation runs on. Where internal/optical prices synchronous steps in
// closed form, this package simulates every transfer as an event: wavelength
// reservations on the fabric, per-transfer SerDes/E-O/O-E and propagation,
// and (optionally) receiver-side reduction compute.
//
// Two execution modes:
//
//   - Barrier: every step is a global barrier, exactly matching the
//     step-synchronous cost model (tests assert equality with
//     runner.RunOptical to float precision).
//   - Async: a node starts its step-s transfers as soon as it — and the
//     peer — has finished their own step-(s-1) obligations; wavelengths are
//     granted greedily from the fabric's earliest-free time. Async removes
//     the global barrier skew, bounding how much a runtime implementation
//     could gain over the paper's synchronous analysis.
package opticalsim

import (
	"fmt"
	"sort"

	"wrht/internal/collective"
	"wrht/internal/optical"
	"wrht/internal/ring"
	"wrht/internal/sim"
	"wrht/internal/wdm"
)

// Mode selects barrier-synchronous or node-asynchronous execution.
type Mode int

const (
	// Barrier mode: all transfers of step s start together after step s-1
	// fully completes (the paper's model).
	Barrier Mode = iota
	// Async mode: node-local dependencies only.
	Async
)

func (m Mode) String() string {
	switch m {
	case Barrier:
		return "barrier"
	case Async:
		return "async"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a simulation run.
type Options struct {
	Params optical.Params
	Mode   Mode
	// Assigner picks the wavelength-assignment heuristic (per step).
	Assigner wdm.Policy
	// DefaultWidth applies to transfers without a stripe hint (1 = paper).
	DefaultWidth int
	// BytesPerElem converts schedule regions to bytes (0 = 4, FP32).
	BytesPerElem int
	// ReduceGBps, when positive, charges the receiver bytes/ReduceGBps of
	// reduction compute before its step obligation counts as met.
	ReduceGBps float64
}

// DefaultOptions mirrors runner.DefaultOpticalOptions.
func DefaultOptions() Options {
	return Options{
		Params:       optical.DefaultParams(),
		Mode:         Barrier,
		Assigner:     wdm.FirstFit,
		DefaultWidth: 1,
		BytesPerElem: 4,
	}
}

// TransferEvent is one simulated transmission.
type TransferEvent struct {
	Step        int
	Src, Dst    int
	Arc         ring.Arc
	Bytes       int64
	Wavelengths []int
	Start, End  float64
}

// Result is the outcome of a simulation.
type Result struct {
	Mode     Mode
	TotalSec float64
	Events   []TransferEvent
	// EventCount is the number of engine events executed (diagnostics).
	EventCount int64
}

// lowered is the columnar scheduling state of every non-empty schedule
// transfer: flat struct-of-arrays columns plus per-step index bounds, so
// neither execution mode materializes per-step boxed transfer slices.
type lowered struct {
	numSteps int
	stepOff  []int32 // len numSteps+1; step s covers [stepOff[s], stepOff[s+1])
	step     []int32
	arc      []ring.Arc
	bytes    []int64
	// stripe is assigned per step before any transfer of the step runs.
	stripe [][]int
}

// Run simulates the schedule and returns the transfer timeline.
func Run(s *collective.Schedule, opts Options) (Result, error) {
	cs := s.Compact()
	defer cs.Release()
	return RunCompact(cs, opts)
}

// RunCompact is Run on the columnar schedule representation (the fast path:
// no per-transfer boxing anywhere between the schedule and the event slab).
func RunCompact(cs *collective.CompactSchedule, opts Options) (Result, error) {
	if err := cs.Validate(); err != nil {
		return Result{}, err
	}
	if err := opts.Params.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 || opts.DefaultWidth < 0 || opts.ReduceGBps < 0 {
		return Result{}, fmt.Errorf("opticalsim: invalid options %+v", opts)
	}
	if opts.DefaultWidth == 0 {
		opts.DefaultWidth = 1
	}
	topo, err := ring.New(cs.N)
	if err != nil {
		return Result{}, err
	}
	fabric, err := optical.NewFabric(topo, opts.Params)
	if err != nil {
		return Result{}, err
	}

	// Lower schedule transfers and assign wavelengths per step (the same
	// per-step conflict structure both modes use; Async only relaxes time).
	numSteps := cs.NumSteps()
	low := &lowered{
		numSteps: numSteps,
		stepOff:  make([]int32, 1, numSteps+1),
	}
	total := cs.TotalTransfers()
	low.step = make([]int32, 0, total)
	low.arc = make([]ring.Arc, 0, total)
	low.bytes = make([]int64, 0, total)
	low.stripe = make([][]int, 0, total)
	ws := wdm.NewWorkspace(topo)
	var demands []wdm.Demand
	for si := 0; si < numSteps; si++ {
		lo, hi := cs.StepBounds(si)
		stepStart := len(low.step)
		demands = demands[:0]
		for i := lo; i < hi; i++ {
			tr := cs.Transfer(i)
			bytes := int64(tr.Region.Len) * int64(opts.BytesPerElem)
			if bytes == 0 {
				continue
			}
			arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
			if !tr.Routed {
				arc = topo.ShortestArc(tr.Src, tr.Dst)
			}
			width := tr.Width
			if width < 1 {
				width = opts.DefaultWidth
			}
			if width > opts.Params.Wavelengths {
				width = opts.Params.Wavelengths
			}
			low.step = append(low.step, int32(si))
			low.arc = append(low.arc, arc)
			low.bytes = append(low.bytes, bytes)
			low.stripe = append(low.stripe, nil)
			demands = append(demands, wdm.Demand{Arc: arc, Width: width})
		}
		if len(demands) > 0 {
			rounds, err := ws.Rounds(demands, opts.Params.Wavelengths, opts.Assigner, wdm.AsGiven)
			if err != nil {
				return Result{}, fmt.Errorf("opticalsim: step %d: %w", si, err)
			}
			for _, rd := range rounds {
				for i, di := range rd.Demands {
					low.stripe[stepStart+di] = rd.Assignment.Stripes[i]
				}
			}
		}
		low.stepOff = append(low.stepOff, int32(len(low.step)))
	}

	switch opts.Mode {
	case Barrier:
		return runBarrier(topo, fabric, opts, low)
	case Async:
		return runAsync(topo, fabric, opts, cs.N, low)
	default:
		return Result{}, fmt.Errorf("opticalsim: unknown mode %v", opts.Mode)
	}
}

// runBarrier reproduces the step-synchronous model with explicit
// reservations: each step starts when the previous ends, pays the step
// overhead, and transfers within it start together (per conflict round).
func runBarrier(topo ring.Topology, fabric *optical.Fabric, opts Options, low *lowered) (Result, error) {
	p := opts.Params
	res := Result{Mode: Barrier, Events: make([]TransferEvent, 0, len(low.step))}
	now := 0.0
	for si := 0; si < low.numSteps; si++ {
		now += p.StepOverheadSec()
		lo, hi := low.stepOff[si], low.stepOff[si+1]
		if lo == hi {
			continue
		}
		stepEnd := now
		for ti := lo; ti < hi; ti++ {
			arc, stripe := low.arc[ti], low.stripe[ti]
			start, err := fabric.EarliestFree(arc, stripe, now)
			if err != nil {
				return Result{}, err
			}
			d := p.TransferSec(low.bytes[ti], len(stripe), topo.Hops(arc))
			if err := fabric.Reserve(arc, stripe, start, d); err != nil {
				return Result{}, err
			}
			end := start + d
			if end > stepEnd {
				stepEnd = end
			}
			res.Events = append(res.Events, TransferEvent{
				Step: si, Src: arc.Src, Dst: arc.Dst, Arc: arc,
				Bytes: low.bytes[ti], Wavelengths: stripe, Start: start, End: end,
			})
		}
		now = stepEnd
	}
	res.TotalSec = now
	return res, nil
}

// runAsync runs the node-local dependency model on the event engine. All
// scheduling state is integer-indexed (CSR incident lists, a flat obligation
// table, one registered completion handler), so the event loop performs no
// per-event allocation.
func runAsync(topo ring.Topology, fabric *optical.Fabric, opts Options, n int, low *lowered) (Result, error) {
	p := opts.Params
	numSteps := low.numSteps
	total := len(low.step)
	// obligations[node*numSteps+step] = number of transfer endpoints the node
	// owns at that step.
	obligations := make([]int32, n*numSteps)
	for ti := 0; ti < total; ti++ {
		si := int(low.step[ti])
		obligations[low.arc[ti].Src*numSteps+si]++
		obligations[low.arc[ti].Dst*numSteps+si]++
	}
	// incident lists the transfers touching (node, step), in CSR form:
	// incIdx[incOff[node*numSteps+step]:incOff[node*numSteps+step+1]].
	incOff := make([]int32, n*numSteps+1)
	for ti := 0; ti < total; ti++ {
		si := int(low.step[ti])
		incOff[low.arc[ti].Src*numSteps+si+1]++
		incOff[low.arc[ti].Dst*numSteps+si+1]++
	}
	for i := 1; i < len(incOff); i++ {
		incOff[i] += incOff[i-1]
	}
	incIdx := make([]int32, 2*total)
	fill := make([]int32, n*numSteps)
	for ti := 0; ti < total; ti++ {
		si := int(low.step[ti])
		for _, node := range [2]int{low.arc[ti].Src, low.arc[ti].Dst} {
			slot := node*numSteps + si
			incIdx[incOff[slot]+fill[slot]] = int32(ti)
			fill[slot]++
		}
	}
	// nodeStep[i] = first step with unmet obligations; the node is ready
	// for every transfer at that step. While a step-s transfer is pending,
	// obligations[s] > 0 pins nodeStep at s, so eligibility is simply
	// nodeStep[src] >= step && nodeStep[dst] >= step.
	nodeStep := make([]int, n)
	advance := func(i int) bool {
		moved := false
		for nodeStep[i] < numSteps && obligations[i*numSteps+nodeStep[i]] == 0 {
			nodeStep[i]++
			moved = true
		}
		return moved
	}

	var eng sim.Engine
	eng.Grow(total)
	res := Result{Mode: Async, Events: make([]TransferEvent, 0, total)}
	launched := make([]bool, total)

	var launch func(ti int32)
	var completeH sim.HandlerID
	launchReady := func(i int) {
		if nodeStep[i] >= numSteps {
			return
		}
		slot := i*numSteps + nodeStep[i]
		for _, ti := range incIdx[incOff[slot]:incOff[slot+1]] {
			if launched[ti] || nodeStep[low.arc[ti].Src] < int(low.step[ti]) ||
				nodeStep[low.arc[ti].Dst] < int(low.step[ti]) {
				continue
			}
			launch(ti)
		}
	}
	completeH = eng.Register(func(ti int32) {
		arc, si := low.arc[ti], int(low.step[ti])
		obligations[arc.Src*numSteps+si]--
		obligations[arc.Dst*numSteps+si]--
		if advance(arc.Src) {
			launchReady(arc.Src)
		}
		if advance(arc.Dst) {
			launchReady(arc.Dst)
		}
	})
	launch = func(ti int32) {
		launched[ti] = true
		arc, stripe := low.arc[ti], low.stripe[ti]
		// Tuning is charged per transmission in async mode (each transfer
		// re-tunes its micro-rings); there is no global step to charge.
		eligible := eng.Now() + p.TuningNs*1e-9
		start, err := fabric.EarliestFree(arc, stripe, eligible)
		if err != nil {
			panic(err) // wavelengths validated at assignment time
		}
		d := p.TransferSec(low.bytes[ti], len(stripe), topo.Hops(arc))
		if err := fabric.Reserve(arc, stripe, start, d); err != nil {
			panic(err)
		}
		end := start + d
		if opts.ReduceGBps > 0 {
			end += float64(low.bytes[ti]) / (opts.ReduceGBps * 1e9)
		}
		res.Events = append(res.Events, TransferEvent{
			Step: int(low.step[ti]), Src: arc.Src, Dst: arc.Dst, Arc: arc,
			Bytes: low.bytes[ti], Wavelengths: stripe, Start: start, End: end,
		})
		eng.Schedule(end, completeH, ti)
	}

	for i := 0; i < n; i++ {
		advance(i)
	}
	for i := 0; i < n; i++ {
		launchReady(i)
	}
	res.TotalSec = eng.Run()
	res.EventCount = eng.Steps()

	// Every transfer must have run; a stall would mean a dependency cycle,
	// which the step-ordered schedule structure makes impossible.
	if len(res.Events) != total {
		return Result{}, fmt.Errorf("opticalsim: deadlock — %d of %d transfers ran",
			len(res.Events), total)
	}
	return res, nil
}

// ValidateTimeline checks that no two events overlap in time on the same
// (directed link, wavelength) — the physical-realizability certificate.
func ValidateTimeline(topo ring.Topology, events []TransferEvent) error {
	type key struct{ link, lambda int }
	type span struct{ start, end float64 }
	occ := make(map[key][]span)
	for _, ev := range events {
		var links []int
		topo.VisitLinks(ev.Arc, func(l int) { links = append(links, l) })
		for _, c := range ev.Wavelengths {
			for _, l := range links {
				occ[key{l, c}] = append(occ[key{l, c}], span{ev.Start, ev.End})
			}
		}
	}
	for k, spans := range occ {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end-1e-12 {
				return fmt.Errorf("opticalsim: link %d wavelength %d double-booked: [%g,%g) vs [%g,%g)",
					k.link, k.lambda, spans[i-1].start, spans[i-1].end, spans[i].start, spans[i].end)
			}
		}
	}
	return nil
}
