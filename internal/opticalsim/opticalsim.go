// Package opticalsim is the message-level discrete-event simulator of the
// WDM optical ring — the "optical interconnect simulator" the paper's
// evaluation runs on. Where internal/optical prices synchronous steps in
// closed form, this package simulates every transfer as an event: wavelength
// reservations on the fabric, per-transfer SerDes/E-O/O-E and propagation,
// and (optionally) receiver-side reduction compute.
//
// Two execution modes:
//
//   - Barrier: every step is a global barrier, exactly matching the
//     step-synchronous cost model (tests assert equality with
//     runner.RunOptical to float precision).
//   - Async: a node starts its step-s transfers as soon as it — and the
//     peer — has finished their own step-(s-1) obligations; wavelengths are
//     granted greedily from the fabric's earliest-free time. Async removes
//     the global barrier skew, bounding how much a runtime implementation
//     could gain over the paper's synchronous analysis.
package opticalsim

import (
	"fmt"
	"sort"

	"wrht/internal/collective"
	"wrht/internal/optical"
	"wrht/internal/ring"
	"wrht/internal/sim"
	"wrht/internal/wdm"
)

// Mode selects barrier-synchronous or node-asynchronous execution.
type Mode int

const (
	// Barrier mode: all transfers of step s start together after step s-1
	// fully completes (the paper's model).
	Barrier Mode = iota
	// Async mode: node-local dependencies only.
	Async
)

func (m Mode) String() string {
	switch m {
	case Barrier:
		return "barrier"
	case Async:
		return "async"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a simulation run.
type Options struct {
	Params optical.Params
	Mode   Mode
	// Assigner picks the wavelength-assignment heuristic (per step).
	Assigner wdm.Policy
	// DefaultWidth applies to transfers without a stripe hint (1 = paper).
	DefaultWidth int
	// BytesPerElem converts schedule regions to bytes (0 = 4, FP32).
	BytesPerElem int
	// ReduceGBps, when positive, charges the receiver bytes/ReduceGBps of
	// reduction compute before its step obligation counts as met.
	ReduceGBps float64
}

// DefaultOptions mirrors runner.DefaultOpticalOptions.
func DefaultOptions() Options {
	return Options{
		Params:       optical.DefaultParams(),
		Mode:         Barrier,
		Assigner:     wdm.FirstFit,
		DefaultWidth: 1,
		BytesPerElem: 4,
	}
}

// TransferEvent is one simulated transmission.
type TransferEvent struct {
	Step        int
	Src, Dst    int
	Arc         ring.Arc
	Bytes       int64
	Wavelengths []int
	Start, End  float64
}

// Result is the outcome of a simulation.
type Result struct {
	Mode     Mode
	TotalSec float64
	Events   []TransferEvent
	// EventCount is the number of engine events executed (diagnostics).
	EventCount int64
}

// transfer is the internal scheduling state of one schedule transfer.
type transfer struct {
	step  int
	arc   ring.Arc
	bytes int64
	width int
	// stripe is assigned lazily (per step, before the step's first transfer
	// becomes eligible).
	stripe []int
}

// Run simulates the schedule and returns the transfer timeline.
func Run(s *collective.Schedule, opts Options) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if err := opts.Params.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 || opts.DefaultWidth < 0 || opts.ReduceGBps < 0 {
		return Result{}, fmt.Errorf("opticalsim: invalid options %+v", opts)
	}
	if opts.DefaultWidth == 0 {
		opts.DefaultWidth = 1
	}
	topo, err := ring.New(s.N)
	if err != nil {
		return Result{}, err
	}
	fabric, err := optical.NewFabric(topo, opts.Params)
	if err != nil {
		return Result{}, err
	}

	// Lower schedule transfers and assign wavelengths per step (the same
	// per-step conflict structure both modes use; Async only relaxes time).
	steps := make([][]*transfer, len(s.Steps))
	for si, st := range s.Steps {
		var trs []*transfer
		var demands []wdm.Demand
		for _, tr := range st.Transfers {
			bytes := int64(tr.Region.Len) * int64(opts.BytesPerElem)
			if bytes == 0 {
				continue
			}
			arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
			if !tr.Routed {
				arc = topo.ShortestArc(tr.Src, tr.Dst)
			}
			width := tr.Width
			if width < 1 {
				width = opts.DefaultWidth
			}
			if width > opts.Params.Wavelengths {
				width = opts.Params.Wavelengths
			}
			trs = append(trs, &transfer{step: si, arc: arc, bytes: bytes, width: width})
			demands = append(demands, wdm.Demand{Arc: arc, Width: width})
		}
		if len(trs) == 0 {
			steps[si] = nil
			continue
		}
		rounds, err := wdm.Rounds(topo, demands, opts.Params.Wavelengths, opts.Assigner, wdm.AsGiven)
		if err != nil {
			return Result{}, fmt.Errorf("opticalsim: step %d: %w", si, err)
		}
		for _, rd := range rounds {
			for i, di := range rd.Demands {
				trs[di].stripe = rd.Assignment.Stripes[i]
			}
		}
		steps[si] = trs
	}

	switch opts.Mode {
	case Barrier:
		return runBarrier(topo, fabric, opts, steps)
	case Async:
		return runAsync(topo, fabric, opts, s.N, steps)
	default:
		return Result{}, fmt.Errorf("opticalsim: unknown mode %v", opts.Mode)
	}
}

// runBarrier reproduces the step-synchronous model with explicit
// reservations: each step starts when the previous ends, pays the step
// overhead, and transfers within it start together (per conflict round).
func runBarrier(topo ring.Topology, fabric *optical.Fabric, opts Options, steps [][]*transfer) (Result, error) {
	p := opts.Params
	res := Result{Mode: Barrier}
	now := 0.0
	for si, trs := range steps {
		now += p.StepOverheadSec()
		if len(trs) == 0 {
			continue
		}
		stepEnd := now
		for _, tr := range trs {
			start, err := fabric.EarliestFree(tr.arc, tr.stripe, now)
			if err != nil {
				return Result{}, err
			}
			d := p.TransferSec(tr.bytes, len(tr.stripe), topo.Hops(tr.arc))
			if err := fabric.Reserve(tr.arc, tr.stripe, start, d); err != nil {
				return Result{}, err
			}
			end := start + d
			if end > stepEnd {
				stepEnd = end
			}
			res.Events = append(res.Events, TransferEvent{
				Step: si, Src: tr.arc.Src, Dst: tr.arc.Dst, Arc: tr.arc,
				Bytes: tr.bytes, Wavelengths: tr.stripe, Start: start, End: end,
			})
		}
		now = stepEnd
	}
	res.TotalSec = now
	return res, nil
}

// runAsync runs the node-local dependency model on the event engine.
func runAsync(topo ring.Topology, fabric *optical.Fabric, opts Options, n int, steps [][]*transfer) (Result, error) {
	p := opts.Params
	numSteps := len(steps)
	// obligations[node][step] = number of transfer endpoints node owns.
	obligations := make([][]int, n)
	for i := range obligations {
		obligations[i] = make([]int, numSteps)
	}
	// incident[node][step] lists the transfers touching node at step.
	incident := make([][][]*transfer, n)
	for i := range incident {
		incident[i] = make([][]*transfer, numSteps)
	}
	total := 0
	for si, trs := range steps {
		for _, tr := range trs {
			obligations[tr.arc.Src][si]++
			obligations[tr.arc.Dst][si]++
			incident[tr.arc.Src][si] = append(incident[tr.arc.Src][si], tr)
			incident[tr.arc.Dst][si] = append(incident[tr.arc.Dst][si], tr)
			total++
		}
	}
	// nodeStep[i] = first step with unmet obligations; the node is ready
	// for every transfer at that step. While a step-s transfer is pending,
	// obligations[s] > 0 pins nodeStep at s, so eligibility is simply
	// nodeStep[src] >= step && nodeStep[dst] >= step.
	nodeStep := make([]int, n)
	advance := func(i int) bool {
		moved := false
		for nodeStep[i] < numSteps && obligations[i][nodeStep[i]] == 0 {
			nodeStep[i]++
			moved = true
		}
		return moved
	}

	var eng sim.Engine
	res := Result{Mode: Async}
	launched := make(map[*transfer]bool, total)

	var launch func(tr *transfer)
	launchReady := func(i int) {
		if nodeStep[i] >= numSteps {
			return
		}
		for _, tr := range incident[i][nodeStep[i]] {
			if launched[tr] || nodeStep[tr.arc.Src] < tr.step || nodeStep[tr.arc.Dst] < tr.step {
				continue
			}
			launch(tr)
		}
	}
	complete := func(tr *transfer) {
		obligations[tr.arc.Src][tr.step]--
		obligations[tr.arc.Dst][tr.step]--
		for _, node := range []int{tr.arc.Src, tr.arc.Dst} {
			if advance(node) {
				launchReady(node)
			}
		}
	}
	launch = func(tr *transfer) {
		launched[tr] = true
		// Tuning is charged per transmission in async mode (each transfer
		// re-tunes its micro-rings); there is no global step to charge.
		eligible := eng.Now() + p.TuningNs*1e-9
		start, err := fabric.EarliestFree(tr.arc, tr.stripe, eligible)
		if err != nil {
			panic(err) // wavelengths validated at assignment time
		}
		d := p.TransferSec(tr.bytes, len(tr.stripe), topo.Hops(tr.arc))
		if err := fabric.Reserve(tr.arc, tr.stripe, start, d); err != nil {
			panic(err)
		}
		end := start + d
		if opts.ReduceGBps > 0 {
			end += float64(tr.bytes) / (opts.ReduceGBps * 1e9)
		}
		res.Events = append(res.Events, TransferEvent{
			Step: tr.step, Src: tr.arc.Src, Dst: tr.arc.Dst, Arc: tr.arc,
			Bytes: tr.bytes, Wavelengths: tr.stripe, Start: start, End: end,
		})
		trCopy := tr
		eng.At(end, func() { complete(trCopy) })
	}

	for i := 0; i < n; i++ {
		advance(i)
	}
	for i := 0; i < n; i++ {
		launchReady(i)
	}
	res.TotalSec = eng.Run()
	res.EventCount = eng.Steps()

	// Every transfer must have run; a stall would mean a dependency cycle,
	// which the step-ordered schedule structure makes impossible.
	if len(res.Events) != total {
		return Result{}, fmt.Errorf("opticalsim: deadlock — %d of %d transfers ran",
			len(res.Events), total)
	}
	return res, nil
}

// ValidateTimeline checks that no two events overlap in time on the same
// (directed link, wavelength) — the physical-realizability certificate.
func ValidateTimeline(topo ring.Topology, events []TransferEvent) error {
	type key struct{ link, lambda int }
	type span struct{ start, end float64 }
	occ := make(map[key][]span)
	for _, ev := range events {
		var links []int
		topo.VisitLinks(ev.Arc, func(l int) { links = append(links, l) })
		for _, c := range ev.Wavelengths {
			for _, l := range links {
				occ[key{l, c}] = append(occ[key{l, c}], span{ev.Start, ev.End})
			}
		}
	}
	for k, spans := range occ {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end-1e-12 {
				return fmt.Errorf("opticalsim: link %d wavelength %d double-booked: [%g,%g) vs [%g,%g)",
					k.link, k.lambda, spans[i-1].start, spans[i-1].end, spans[i].start, spans[i].end)
			}
		}
	}
	return nil
}
