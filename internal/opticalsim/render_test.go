package opticalsim

import (
	"strings"
	"testing"

	"wrht/internal/ring"
)

func TestRenderTimelineBasics(t *testing.T) {
	events := []TransferEvent{
		{Step: 0, Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Wavelengths: []int{0}, Start: 0, End: 1},
		{Step: 0, Arc: ring.Arc{Src: 4, Dst: 5, Dir: ring.CW}, Wavelengths: []int{0}, Start: 0, End: 1},
		{Step: 1, Arc: ring.Arc{Src: 1, Dst: 2, Dir: ring.CW}, Wavelengths: []int{1}, Start: 1, End: 2},
	}
	out := RenderTimeline(events, 40, 0)
	if !strings.Contains(out, "λ0") || !strings.Contains(out, "λ1") {
		t.Fatalf("missing wavelength rows:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("missing step marks:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("expected 3 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRenderTimelineEdgeCases(t *testing.T) {
	if out := RenderTimeline(nil, 40, 0); !strings.Contains(out, "empty") {
		t.Fatalf("empty timeline: %q", out)
	}
	ev := []TransferEvent{{Wavelengths: []int{0}, Start: 0, End: 0}}
	if out := RenderTimeline(ev, 40, 0); !strings.Contains(out, "degenerate") {
		t.Fatalf("degenerate timeline: %q", out)
	}
}

func TestRenderTimelineRowCap(t *testing.T) {
	events := []TransferEvent{
		{Step: 0, Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Wavelengths: []int{0, 1, 2, 3}, Start: 0, End: 1},
	}
	out := RenderTimeline(events, 40, 2)
	if strings.Contains(out, "λ3") {
		t.Fatalf("row cap ignored:\n%s", out)
	}
}

func TestRenderFromRealSimulation(t *testing.T) {
	s := wrhtSchedule(t, 16, 4, 3, 4096)
	res, err := Run(s, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(res.Events, 80, 8)
	if len(out) == 0 || !strings.Contains(out, "λ0") {
		t.Fatalf("render failed:\n%s", out)
	}
}
