package opticalsim

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTimeline draws an ASCII Gantt chart of a simulated timeline: one row
// per wavelength, time on the horizontal axis, each transmission drawn as a
// run of its step's digit (steps beyond 9 wrap through a-z). Disjoint
// transfers sharing a row at the same instant are the visual proof of the
// paper's wavelength reuse. width is the number of time columns (min 20);
// maxRows caps the wavelength rows shown (0 = all).
func RenderTimeline(events []TransferEvent, width, maxRows int) string {
	if width < 20 {
		width = 20
	}
	if len(events) == 0 {
		return "(empty timeline)\n"
	}
	end := 0.0
	maxLambda := 0
	for _, ev := range events {
		if ev.End > end {
			end = ev.End
		}
		for _, c := range ev.Wavelengths {
			if c > maxLambda {
				maxLambda = c
			}
		}
	}
	if end <= 0 {
		return "(degenerate timeline)\n"
	}
	rows := maxLambda + 1
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	col := func(t float64) int {
		c := int(t / end * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	mark := func(step int) byte {
		const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
		return digits[step%len(digits)]
	}
	sorted := append([]TransferEvent(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for _, ev := range sorted {
		c0, c1 := col(ev.Start), col(ev.End)
		for _, lam := range ev.Wavelengths {
			if lam >= rows {
				continue
			}
			for c := c0; c <= c1; c++ {
				grid[lam][c] = mark(ev.Step)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.4gms, %d transfers, %d wavelength rows (cell = step id)\n",
		end*1e3, len(events), rows)
	for lam := 0; lam < rows; lam++ {
		fmt.Fprintf(&b, "λ%-3d %s\n", lam, grid[lam])
	}
	return b.String()
}
