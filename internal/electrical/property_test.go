package electrical

import (
	"math/rand"
	"testing"
)

func randomTopology(rng *rand.Rand, n int) (*Network, error) {
	switch rng.Intn(3) {
	case 0:
		return NewSwitchedCluster(n, 100)
	case 1:
		return NewRingNetwork(n, 100)
	default:
		pod := 1
		for _, p := range []int{4, 2, 1} {
			if n%p == 0 {
				pod = p
				break
			}
		}
		return NewFatTree(n, pod, 100, 2)
	}
}

func randomFlows(rng *rand.Rand, n, count int) []Flow {
	flows := make([]Flow, count)
	for i := range flows {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		for dst == src {
			dst = rng.Intn(n)
		}
		flows[i] = Flow{Src: src, Dst: dst, Bits: float64(rng.Intn(1<<30) + 1)}
	}
	return flows
}

func TestMakespanMonotoneInFlowSize(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(14) + 2
		nw, err := randomTopology(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		flows := randomFlows(rng, n, rng.Intn(12)+1)
		mk1, _, err := nw.FlowTimes(flows)
		if err != nil {
			t.Fatal(err)
		}
		bigger := append([]Flow(nil), flows...)
		for i := range bigger {
			bigger[i].Bits *= 2
		}
		mk2, _, err := nw.FlowTimes(bigger)
		if err != nil {
			t.Fatal(err)
		}
		if mk2 < mk1-1e-12 {
			t.Fatalf("%s: doubling flow sizes reduced makespan %v -> %v", nw.Name(), mk1, mk2)
		}
	}
}

func TestAddingFlowNeverSpeedsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(14) + 2
		nw, err := randomTopology(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		flows := randomFlows(rng, n, rng.Intn(10)+1)
		mk1, _, err := nw.FlowTimes(flows)
		if err != nil {
			t.Fatal(err)
		}
		more := append(append([]Flow(nil), flows...), randomFlows(rng, n, 1)...)
		mk2, _, err := nw.FlowTimes(more)
		if err != nil {
			t.Fatal(err)
		}
		if mk2 < mk1-1e-9 {
			t.Fatalf("%s: adding a flow reduced makespan %v -> %v", nw.Name(), mk1, mk2)
		}
	}
}

func TestRoutesStayInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20) + 2
		nw, err := randomTopology(rng, n)
		if err != nil {
			t.Fatal(err)
		}
		for pair := 0; pair < 20; pair++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			if src == dst {
				continue
			}
			path := nw.Route(src, dst)
			if len(path) == 0 {
				t.Fatalf("%s: empty path %d->%d", nw.Name(), src, dst)
			}
			for _, l := range path {
				if l < 0 || l >= nw.NumLinks() {
					t.Fatalf("%s: link %d out of range (%d links)", nw.Name(), l, nw.NumLinks())
				}
			}
		}
	}
}

func TestPerFlowCompletionNeverExceedsMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	nw, err := NewFatTree(8, 4, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	flows := randomFlows(rng, 8, 12)
	mk, done, err := nw.FlowTimes(flows)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if d > mk+1e-12 || d <= 0 {
			t.Fatalf("flow %d completion %v vs makespan %v", i, d, mk)
		}
	}
}
