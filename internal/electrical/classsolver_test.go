package electrical

import (
	"math/rand"
	"sort"
	"testing"
)

// TestClassSolverMatchesStepCost: on permutation steps (every host sends ≤1
// flow and receives ≤1) of a non-blocking cluster, pricing one representative
// flow per byte-size class is bit-identical to pricing all flows.
func TestClassSolverMatchesStepCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := DefaultParams()
	cs, err := NewClassSolver(p.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(60)
		nw, err := NewSwitchedCluster(n, p.LinkGbps)
		if err != nil {
			t.Fatal(err)
		}
		// A random partial permutation with a few distinct flow sizes.
		perm := rng.Perm(n)
		sizes := make([]float64, 1+rng.Intn(4))
		for i := range sizes {
			sizes[i] = float64(1+rng.Intn(1<<20)) * 8
		}
		var flows []Flow
		counts := map[float64]int{}
		for i := 0; i < n; i++ {
			if perm[i] == i || rng.Intn(3) == 0 {
				continue
			}
			b := sizes[rng.Intn(len(sizes))]
			flows = append(flows, Flow{Src: i, Dst: perm[i], Bits: b})
			counts[b]++
		}
		want, err := nw.StepCost(p, flows)
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]float64, 0, len(counts))
		for b := range counts {
			bits = append(bits, b)
		}
		sort.Float64s(bits)
		got, err := cs.StepCost(p, bits)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d (n=%d, %d flows, %d classes): class solve %v != full solve %v",
				trial, n, len(flows), len(bits), got, want)
		}
	}
	// Empty steps price to the fixed latency, like the full path.
	if got, err := cs.StepCost(p, nil); err != nil || got != p.PerStepLatencySec {
		t.Fatalf("empty step: %v, %v", got, err)
	}
}
