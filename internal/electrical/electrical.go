// Package electrical is the repository's stand-in for SimGrid: a flow-level
// simulator of electrical packet networks. Concurrent flows share link
// bandwidth max-min fairly (progressive filling, the same fluid model
// SimGrid's network models use); an event loop advances time to each flow
// completion and re-solves the remaining rates. Three topologies cover the
// paper's electrical baselines: a non-blocking switched cluster (default for
// E-Ring and RD — the most favorable to the electrical algorithms, making
// Wrht's reported gains conservative), a physical ring, and a two-level
// fat-tree with configurable oversubscription.
package electrical

import (
	"fmt"
	"math"
)

// Params are the electrical network constants.
type Params struct {
	// LinkGbps is the per-link (NIC/switch-port) bandwidth.
	LinkGbps float64
	// PerStepLatencySec is charged once per synchronous step: software
	// stack, NIC and switch traversal (SimGrid's latency term).
	PerStepLatencySec float64
}

// DefaultParams returns the constants used by the evaluation: 100 Gb/s links
// and 5 µs per-step latency (see DESIGN.md §4).
func DefaultParams() Params {
	return Params{LinkGbps: 100, PerStepLatencySec: 5e-6}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.LinkGbps <= 0 || math.IsNaN(p.LinkGbps) {
		return fmt.Errorf("electrical: invalid link rate %v", p.LinkGbps)
	}
	if p.PerStepLatencySec < 0 || math.IsNaN(p.PerStepLatencySec) {
		return fmt.Errorf("electrical: invalid step latency %v", p.PerStepLatencySec)
	}
	return nil
}

// Network is a directed-link topology with a routing function.
type Network struct {
	name     string
	numNodes int
	// capBps[l] is link l's capacity in bits/s.
	capBps []float64
	// route returns the link indices a src→dst flow traverses.
	route func(src, dst int) []int
}

// Name identifies the topology (for reports).
func (nw *Network) Name() string { return nw.name }

// NumNodes returns the number of end hosts.
func (nw *Network) NumNodes() int { return nw.numNodes }

// NumLinks returns the number of directed links.
func (nw *Network) NumLinks() int { return len(nw.capBps) }

// Route exposes the path of a flow (for tests).
func (nw *Network) Route(src, dst int) []int { return nw.route(src, dst) }

// NewSwitchedCluster models n hosts on a non-blocking switch: each host has
// one uplink and one downlink of linkGbps; the crossbar itself is not a
// bottleneck. Links [0,n) are uplinks, [n,2n) downlinks.
func NewSwitchedCluster(n int, linkGbps float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("electrical: cluster needs >= 2 hosts, got %d", n)
	}
	if linkGbps <= 0 {
		return nil, fmt.Errorf("electrical: link rate %v", linkGbps)
	}
	caps := make([]float64, 2*n)
	for i := range caps {
		caps[i] = linkGbps * 1e9
	}
	return &Network{
		name:     fmt.Sprintf("switched-cluster(%d)", n),
		numNodes: n,
		capBps:   caps,
		route: func(src, dst int) []int {
			return []int{src, n + dst}
		},
	}, nil
}

// NewRingNetwork models n hosts connected in a bidirectional ring of
// linkGbps links; flows take the shortest direction (CW on ties).
// Links [0,n) are CW (i -> i+1), [n,2n) are CCW (i -> i-1).
func NewRingNetwork(n int, linkGbps float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("electrical: ring needs >= 2 hosts, got %d", n)
	}
	if linkGbps <= 0 {
		return nil, fmt.Errorf("electrical: link rate %v", linkGbps)
	}
	caps := make([]float64, 2*n)
	for i := range caps {
		caps[i] = linkGbps * 1e9
	}
	return &Network{
		name:     fmt.Sprintf("ring(%d)", n),
		numNodes: n,
		capBps:   caps,
		route: func(src, dst int) []int {
			cw := ((dst-src)%n + n) % n
			ccw := n - cw
			var links []int
			if cw <= ccw {
				for k, cur := 0, src; k < cw; k++ {
					links = append(links, cur)
					cur = (cur + 1) % n
				}
			} else {
				for k, cur := 0, src; k < ccw; k++ {
					links = append(links, n+cur)
					cur = (cur - 1 + n) % n
				}
			}
			return links
		},
	}, nil
}

// NewFatTree models a two-level leaf/spine network: hosts sit in pods of
// podSize under a leaf switch; every leaf connects to one spine with an
// uplink of podSize*linkGbps/oversub. oversub = 1 is non-blocking; larger
// values starve cross-pod traffic, letting experiments show electrical
// congestion (something the optical ring does not suffer).
func NewFatTree(n, podSize int, linkGbps, oversub float64) (*Network, error) {
	if n < 2 || podSize < 1 || n%podSize != 0 {
		return nil, fmt.Errorf("electrical: fat-tree needs podSize | n, got n=%d podSize=%d", n, podSize)
	}
	if linkGbps <= 0 || oversub < 1 {
		return nil, fmt.Errorf("electrical: bad rates linkGbps=%v oversub=%v", linkGbps, oversub)
	}
	pods := n / podSize
	// Links: host up [0,n), host down [n,2n),
	// leaf up [2n, 2n+pods), leaf down [2n+pods, 2n+2*pods).
	caps := make([]float64, 2*n+2*pods)
	for i := 0; i < 2*n; i++ {
		caps[i] = linkGbps * 1e9
	}
	uplink := float64(podSize) * linkGbps * 1e9 / oversub
	for i := 2 * n; i < len(caps); i++ {
		caps[i] = uplink
	}
	return &Network{
		name:     fmt.Sprintf("fat-tree(%d,pod=%d,os=%.1f)", n, podSize, oversub),
		numNodes: n,
		capBps:   caps,
		route: func(src, dst int) []int {
			ps, pd := src/podSize, dst/podSize
			if ps == pd {
				return []int{src, n + dst}
			}
			return []int{src, 2*n + ps, 2*n + pods + pd, n + dst}
		},
	}, nil
}

// Flow is one transfer inside a synchronous step.
type Flow struct {
	Src, Dst int
	Bits     float64
}

// FlowTimes simulates the given flows all starting at t=0 and returns the
// completion time of each plus the makespan. Rates follow max-min fairness,
// re-solved at every flow completion (progressive filling).
func (nw *Network) FlowTimes(flows []Flow) (makespan float64, done []float64, err error) {
	type state struct {
		path      []int
		remaining float64
		done      float64
		active    bool
	}
	sts := make([]state, len(flows))
	for i, f := range flows {
		if f.Src < 0 || f.Src >= nw.numNodes || f.Dst < 0 || f.Dst >= nw.numNodes {
			return 0, nil, fmt.Errorf("electrical: flow %d endpoints (%d,%d) out of range", i, f.Src, f.Dst)
		}
		if f.Src == f.Dst {
			return 0, nil, fmt.Errorf("electrical: flow %d is a self-flow", i)
		}
		if f.Bits < 0 || math.IsNaN(f.Bits) {
			return 0, nil, fmt.Errorf("electrical: flow %d has %v bits", i, f.Bits)
		}
		sts[i] = state{path: nw.route(f.Src, f.Dst), remaining: f.Bits, active: f.Bits > 0}
	}

	now := 0.0
	rates := make([]float64, len(flows))
	paths := make([][]int, len(flows))
	active := make([]bool, len(flows))
	for i := range sts {
		paths[i] = sts[i].path
		active[i] = sts[i].active
	}
	for {
		activeCount := 0
		for i := range sts {
			if sts[i].active {
				activeCount++
			}
		}
		if activeCount == 0 {
			break
		}
		nw.maxMinRates(paths, active, rates)
		// Advance to the next completion.
		dt := math.Inf(1)
		for i := range sts {
			if !sts[i].active {
				continue
			}
			if rates[i] <= 0 {
				return 0, nil, fmt.Errorf("electrical: flow %d starved (zero rate)", i)
			}
			if d := sts[i].remaining / rates[i]; d < dt {
				dt = d
			}
		}
		now += dt
		for i := range sts {
			if !sts[i].active {
				continue
			}
			sts[i].remaining -= rates[i] * dt
			if sts[i].remaining <= 1e-6 { // sub-bit residue: finished
				sts[i].remaining = 0
				sts[i].active = false
				active[i] = false
				sts[i].done = now
			}
		}
	}
	done = make([]float64, len(flows))
	for i := range sts {
		done[i] = sts[i].done
		if done[i] > makespan {
			makespan = done[i]
		}
	}
	return makespan, done, nil
}

// maxMinRates fills rates for active flows via progressive filling:
// repeatedly saturate the link with the smallest fair share and freeze the
// flows crossing it. The result is the max-min fair allocation.
func (nw *Network) maxMinRates(paths [][]int, active []bool, rates []float64) {
	residual := make([]float64, len(nw.capBps))
	copy(residual, nw.capBps)
	count := make([]int, len(nw.capBps))
	frozen := make([]bool, len(paths))
	for i := range paths {
		rates[i] = 0
		if !active[i] {
			frozen[i] = true
			continue
		}
		for _, l := range paths[i] {
			count[l]++
		}
	}
	for {
		// Find the bottleneck link's fair share.
		share := math.Inf(1)
		for l := range residual {
			if count[l] > 0 {
				if s := residual[l] / float64(count[l]); s < share {
					share = s
				}
			}
		}
		if math.IsInf(share, 1) {
			return // all flows frozen
		}
		// Freeze every unfrozen flow crossing a saturating link.
		progress := false
		for i := range paths {
			if frozen[i] {
				continue
			}
			bottlenecked := false
			for _, l := range paths[i] {
				if count[l] > 0 && residual[l]/float64(count[l]) <= share*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			rates[i] = share
			frozen[i] = true
			progress = true
			for _, l := range paths[i] {
				residual[l] -= share
				if residual[l] < 0 {
					residual[l] = 0
				}
				count[l]--
			}
		}
		if !progress {
			return
		}
	}
}

// StepCost prices one synchronous step: fixed per-step latency plus the
// makespan of the step's flows under max-min sharing.
func (nw *Network) StepCost(p Params, flows []Flow) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	nonEmpty := flows[:0:0]
	for _, f := range flows {
		if f.Bits > 0 {
			nonEmpty = append(nonEmpty, f)
		}
	}
	if len(nonEmpty) == 0 {
		return p.PerStepLatencySec, nil
	}
	makespan, _, err := nw.FlowTimes(nonEmpty)
	if err != nil {
		return 0, err
	}
	return p.PerStepLatencySec + makespan, nil
}
