// Package electrical is the repository's stand-in for SimGrid: a flow-level
// simulator of electrical packet networks. Concurrent flows share link
// bandwidth max-min fairly (progressive filling, the same fluid model
// SimGrid's network models use); an event loop advances time to each flow
// completion and re-solves the remaining rates. Three topologies cover the
// paper's electrical baselines: a non-blocking switched cluster (default for
// E-Ring and RD — the most favorable to the electrical algorithms, making
// Wrht's reported gains conservative), a physical ring, and a two-level
// fat-tree with configurable oversubscription.
package electrical

import (
	"fmt"
	"math"
)

// Params are the electrical network constants.
type Params struct {
	// LinkGbps is the per-link (NIC/switch-port) bandwidth.
	LinkGbps float64
	// PerStepLatencySec is charged once per synchronous step: software
	// stack, NIC and switch traversal (SimGrid's latency term).
	PerStepLatencySec float64
}

// DefaultParams returns the constants used by the evaluation: 100 Gb/s links
// and 5 µs per-step latency (see DESIGN.md §4).
func DefaultParams() Params {
	return Params{LinkGbps: 100, PerStepLatencySec: 5e-6}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.LinkGbps <= 0 || math.IsNaN(p.LinkGbps) {
		return fmt.Errorf("electrical: invalid link rate %v", p.LinkGbps)
	}
	if p.PerStepLatencySec < 0 || math.IsNaN(p.PerStepLatencySec) {
		return fmt.Errorf("electrical: invalid step latency %v", p.PerStepLatencySec)
	}
	return nil
}

// Network is a directed-link topology with a routing function.
type Network struct {
	name     string
	numNodes int
	// capBps[l] is link l's capacity in bits/s.
	capBps []float64
	// route appends the link indices a src→dst flow traverses to buf and
	// returns the grown slice (append-style so hot paths can reuse arenas).
	route func(src, dst int, buf []int) []int
}

// Name identifies the topology (for reports).
func (nw *Network) Name() string { return nw.name }

// NumNodes returns the number of end hosts.
func (nw *Network) NumNodes() int { return nw.numNodes }

// NumLinks returns the number of directed links.
func (nw *Network) NumLinks() int { return len(nw.capBps) }

// Route exposes the path of a flow (for tests).
func (nw *Network) Route(src, dst int) []int { return nw.route(src, dst, nil) }

// NewSwitchedCluster models n hosts on a non-blocking switch: each host has
// one uplink and one downlink of linkGbps; the crossbar itself is not a
// bottleneck. Links [0,n) are uplinks, [n,2n) downlinks.
func NewSwitchedCluster(n int, linkGbps float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("electrical: cluster needs >= 2 hosts, got %d", n)
	}
	if linkGbps <= 0 {
		return nil, fmt.Errorf("electrical: link rate %v", linkGbps)
	}
	caps := make([]float64, 2*n)
	for i := range caps {
		caps[i] = linkGbps * 1e9
	}
	return &Network{
		name:     fmt.Sprintf("switched-cluster(%d)", n),
		numNodes: n,
		capBps:   caps,
		route: func(src, dst int, buf []int) []int {
			return append(buf, src, n+dst)
		},
	}, nil
}

// NewRingNetwork models n hosts connected in a bidirectional ring of
// linkGbps links; flows take the shortest direction (CW on ties).
// Links [0,n) are CW (i -> i+1), [n,2n) are CCW (i -> i-1).
func NewRingNetwork(n int, linkGbps float64) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("electrical: ring needs >= 2 hosts, got %d", n)
	}
	if linkGbps <= 0 {
		return nil, fmt.Errorf("electrical: link rate %v", linkGbps)
	}
	caps := make([]float64, 2*n)
	for i := range caps {
		caps[i] = linkGbps * 1e9
	}
	return &Network{
		name:     fmt.Sprintf("ring(%d)", n),
		numNodes: n,
		capBps:   caps,
		route: func(src, dst int, buf []int) []int {
			cw := ((dst-src)%n + n) % n
			ccw := n - cw
			if cw <= ccw {
				for k, cur := 0, src; k < cw; k++ {
					buf = append(buf, cur)
					cur = (cur + 1) % n
				}
			} else {
				for k, cur := 0, src; k < ccw; k++ {
					buf = append(buf, n+cur)
					cur = (cur - 1 + n) % n
				}
			}
			return buf
		},
	}, nil
}

// NewFatTree models a two-level leaf/spine network: hosts sit in pods of
// podSize under a leaf switch; every leaf connects to one spine with an
// uplink of podSize*linkGbps/oversub. oversub = 1 is non-blocking; larger
// values starve cross-pod traffic, letting experiments show electrical
// congestion (something the optical ring does not suffer).
func NewFatTree(n, podSize int, linkGbps, oversub float64) (*Network, error) {
	if n < 2 || podSize < 1 || n%podSize != 0 {
		return nil, fmt.Errorf("electrical: fat-tree needs podSize | n, got n=%d podSize=%d", n, podSize)
	}
	if linkGbps <= 0 || oversub < 1 {
		return nil, fmt.Errorf("electrical: bad rates linkGbps=%v oversub=%v", linkGbps, oversub)
	}
	pods := n / podSize
	// Links: host up [0,n), host down [n,2n),
	// leaf up [2n, 2n+pods), leaf down [2n+pods, 2n+2*pods).
	caps := make([]float64, 2*n+2*pods)
	for i := 0; i < 2*n; i++ {
		caps[i] = linkGbps * 1e9
	}
	uplink := float64(podSize) * linkGbps * 1e9 / oversub
	for i := 2 * n; i < len(caps); i++ {
		caps[i] = uplink
	}
	return &Network{
		name:     fmt.Sprintf("fat-tree(%d,pod=%d,os=%.1f)", n, podSize, oversub),
		numNodes: n,
		capBps:   caps,
		route: func(src, dst int, buf []int) []int {
			ps, pd := src/podSize, dst/podSize
			if ps == pd {
				return append(buf, src, n+dst)
			}
			return append(buf, src, 2*n+ps, 2*n+pods+pd, n+dst)
		},
	}, nil
}

// Flow is one transfer inside a synchronous step.
type Flow struct {
	Src, Dst int
	Bits     float64
}

// FlowTimes simulates the given flows all starting at t=0 and returns the
// completion time of each plus the makespan. Rates follow max-min fairness,
// re-solved at every flow completion (progressive filling).
func (nw *Network) FlowTimes(flows []Flow) (makespan float64, done []float64, err error) {
	s := NewSolver(nw)
	makespan, err = s.run(flows)
	if err != nil {
		return 0, nil, err
	}
	done = make([]float64, len(flows))
	copy(done, s.doneAt)
	return makespan, done, nil
}

// StepCost prices one synchronous step: fixed per-step latency plus the
// makespan of the step's flows under max-min sharing. For multi-step
// schedules, a Solver amortizes the fluid-model scratch across steps.
//
//wrht:noalloc
func (nw *Network) StepCost(p Params, flows []Flow) (float64, error) {
	return NewSolver(nw).StepCost(p, flows)
}

// Solver is a reusable flow-level solver bound to one network: the routing
// arena and fluid-model scratch persist across calls, so pricing a
// 1000-step schedule performs no per-flow allocation after the first step.
// Not safe for concurrent use.
type Solver struct {
	nw *Network
	// pathArena holds every flow's links back to back; flow i's path is
	// pathArena[pathOff[i]:pathOff[i+1]].
	pathArena []int
	pathOff   []int
	remaining []float64
	doneAt    []float64
	rates     []float64
	active    []bool
	frozen    []bool
	residual  []float64
	count     []int
	nonEmpty  []Flow
}

// NewSolver returns an empty solver for the network.
func NewSolver(nw *Network) *Solver {
	return &Solver{nw: nw}
}

// StepCost prices one synchronous step on the solver's scratch.
func (s *Solver) StepCost(p Params, flows []Flow) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	nonEmpty := s.nonEmpty[:0]
	for _, f := range flows {
		if f.Bits > 0 {
			nonEmpty = append(nonEmpty, f)
		}
	}
	s.nonEmpty = nonEmpty
	if len(nonEmpty) == 0 {
		return p.PerStepLatencySec, nil
	}
	makespan, err := s.run(nonEmpty)
	if err != nil {
		return 0, err
	}
	return p.PerStepLatencySec + makespan, nil
}

// grow sizes the per-flow and per-link scratch for n flows.
func (s *Solver) grow(n int) {
	if cap(s.remaining) < n {
		s.remaining = make([]float64, n)
		s.doneAt = make([]float64, n)
		s.rates = make([]float64, n)
		s.active = make([]bool, n)
		s.frozen = make([]bool, n)
	}
	s.remaining = s.remaining[:n]
	s.doneAt = s.doneAt[:n]
	s.rates = s.rates[:n]
	s.active = s.active[:n]
	s.frozen = s.frozen[:n]
	if cap(s.pathOff) < n+1 {
		s.pathOff = make([]int, 0, n+1)
	}
	s.pathOff = s.pathOff[:0]
	s.pathArena = s.pathArena[:0]
	links := len(s.nw.capBps)
	if cap(s.residual) < links {
		s.residual = make([]float64, links)
		s.count = make([]int, links)
	}
	s.residual = s.residual[:links]
	s.count = s.count[:links]
}

// ClassSolver prices permutation steps — each host sends at most one flow
// and receives at most one — on a non-blocking switched cluster from their
// flow equivalence classes. In such a step every flow has a dedicated uplink
// and downlink, so all flows of a class share one rate trajectory and the
// fluid model only distinguishes classes: one representative flow per class
// on a small internal cluster reproduces the exact progressive-filling
// arithmetic of the full N-flow solve (the event loop's minima and updates
// range over the same value multiset), making the result bit-identical to
// Solver.StepCost on the materialized flows at O(classes) instead of
// O(flows) per step. Not safe for concurrent use.
type ClassSolver struct {
	linkGbps float64
	nw       *Network
	s        *Solver
	flows    []Flow
}

// NewClassSolver returns a solver whose internal cluster links run at
// linkGbps — it must match the link rate of the network the full step would
// have been priced on.
func NewClassSolver(linkGbps float64) (*ClassSolver, error) {
	if linkGbps <= 0 {
		return nil, fmt.Errorf("electrical: link rate %v", linkGbps)
	}
	return &ClassSolver{linkGbps: linkGbps}, nil
}

// StepCost prices one permutation step given each active class's bit count
// (one entry per class with a positive byte count; zero-bit classes must be
// filtered by the caller, mirroring the full path's filter).
//
//wrht:noalloc
func (c *ClassSolver) StepCost(p Params, bits []float64) (float64, error) {
	if len(bits) == 0 {
		if err := p.Validate(); err != nil {
			return 0, err
		}
		return p.PerStepLatencySec, nil
	}
	if c.nw == nil || c.nw.numNodes < 2*len(bits) {
		n := 2 * len(bits)
		if n < 2 {
			n = 2
		}
		nw, err := NewSwitchedCluster(n, c.linkGbps)
		if err != nil {
			return 0, err
		}
		c.nw, c.s = nw, NewSolver(nw)
	}
	half := c.nw.numNodes / 2
	c.flows = c.flows[:0]
	for i, b := range bits {
		c.flows = append(c.flows, Flow{Src: i, Dst: half + i, Bits: b})
	}
	return c.s.StepCost(p, c.flows)
}

// run simulates the flows, leaving per-flow completion times in s.doneAt.
//
//wrht:noalloc
func (s *Solver) run(flows []Flow) (makespan float64, err error) {
	nw := s.nw
	s.grow(len(flows))
	s.pathOff = append(s.pathOff, 0)
	for i, f := range flows {
		if f.Src < 0 || f.Src >= nw.numNodes || f.Dst < 0 || f.Dst >= nw.numNodes {
			return 0, fmt.Errorf("electrical: flow %d endpoints (%d,%d) out of range", i, f.Src, f.Dst)
		}
		if f.Src == f.Dst {
			return 0, fmt.Errorf("electrical: flow %d is a self-flow", i)
		}
		if f.Bits < 0 || math.IsNaN(f.Bits) {
			return 0, fmt.Errorf("electrical: flow %d has %v bits", i, f.Bits)
		}
		s.pathArena = nw.route(f.Src, f.Dst, s.pathArena)
		s.pathOff = append(s.pathOff, len(s.pathArena))
		s.remaining[i] = f.Bits
		s.active[i] = f.Bits > 0
		s.doneAt[i] = 0
	}

	now := 0.0
	for {
		activeCount := 0
		for i := range flows {
			if s.active[i] {
				activeCount++
			}
		}
		if activeCount == 0 {
			break
		}
		s.maxMinRates()
		// Advance to the next completion.
		dt := math.Inf(1)
		for i := range flows {
			if !s.active[i] {
				continue
			}
			if s.rates[i] <= 0 {
				return 0, fmt.Errorf("electrical: flow %d starved (zero rate)", i)
			}
			if d := s.remaining[i] / s.rates[i]; d < dt {
				dt = d
			}
		}
		now += dt
		for i := range flows {
			if !s.active[i] {
				continue
			}
			s.remaining[i] -= s.rates[i] * dt
			if s.remaining[i] <= 1e-6 { // sub-bit residue: finished
				s.remaining[i] = 0
				s.active[i] = false
				s.doneAt[i] = now
			}
		}
	}
	for i := range flows {
		if s.doneAt[i] > makespan {
			makespan = s.doneAt[i]
		}
	}
	return makespan, nil
}

// path returns flow i's links.
func (s *Solver) path(i int) []int {
	return s.pathArena[s.pathOff[i]:s.pathOff[i+1]]
}

// maxMinRates fills rates for active flows via progressive filling:
// repeatedly saturate the link with the smallest fair share and freeze the
// flows crossing it. The result is the max-min fair allocation.
func (s *Solver) maxMinRates() {
	n := len(s.rates)
	copy(s.residual, s.nw.capBps)
	for l := range s.count {
		s.count[l] = 0
	}
	for i := 0; i < n; i++ {
		s.rates[i] = 0
		if !s.active[i] {
			s.frozen[i] = true
			continue
		}
		s.frozen[i] = false
		for _, l := range s.path(i) {
			s.count[l]++
		}
	}
	for {
		// Find the bottleneck link's fair share.
		share := math.Inf(1)
		for l := range s.residual {
			if s.count[l] > 0 {
				if sh := s.residual[l] / float64(s.count[l]); sh < share {
					share = sh
				}
			}
		}
		if math.IsInf(share, 1) {
			return // all flows frozen
		}
		// Freeze every unfrozen flow crossing a saturating link.
		progress := false
		for i := 0; i < n; i++ {
			if s.frozen[i] {
				continue
			}
			bottlenecked := false
			for _, l := range s.path(i) {
				if s.count[l] > 0 && s.residual[l]/float64(s.count[l]) <= share*(1+1e-12) {
					bottlenecked = true
					break
				}
			}
			if !bottlenecked {
				continue
			}
			s.rates[i] = share
			s.frozen[i] = true
			progress = true
			for _, l := range s.path(i) {
				s.residual[l] -= share
				if s.residual[l] < 0 {
					s.residual[l] = 0
				}
				s.count[l]--
			}
		}
		if !progress {
			return
		}
	}
}
