package electrical

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func TestSwitchedClusterSingleFlow(t *testing.T) {
	nw, err := NewSwitchedCluster(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	mk, done, err := nw.FlowTimes([]Flow{{Src: 0, Dst: 1, Bits: 100e9}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mk, 1.0, 1e-9) || !almost(done[0], 1.0, 1e-9) {
		t.Fatalf("100 Gb over 100 Gb/s should take 1 s, got %v", mk)
	}
}

func TestSwitchedClusterFanInShares(t *testing.T) {
	// Two flows into the same destination share its downlink: each gets 50.
	nw, _ := NewSwitchedCluster(4, 100)
	mk, done, err := nw.FlowTimes([]Flow{
		{Src: 0, Dst: 2, Bits: 100e9},
		{Src: 1, Dst: 2, Bits: 100e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mk, 2.0, 1e-9) {
		t.Fatalf("fan-in of two equal flows should take 2 s, got %v", mk)
	}
	if !almost(done[0], 2.0, 1e-9) || !almost(done[1], 2.0, 1e-9) {
		t.Fatalf("per-flow times %v", done)
	}
}

func TestMaxMinShortFlowReleasesBandwidth(t *testing.T) {
	// A short and a long flow share a downlink; when the short one finishes
	// the long one speeds up: 50 Gb/s for 1 s (50 Gb done), then 100 Gb/s
	// for the remaining 50 Gb → total 1.5 s.
	nw, _ := NewSwitchedCluster(4, 100)
	mk, done, err := nw.FlowTimes([]Flow{
		{Src: 0, Dst: 2, Bits: 50e9},
		{Src: 1, Dst: 2, Bits: 100e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(done[0], 1.0, 1e-6) {
		t.Fatalf("short flow done at %v, want 1 s", done[0])
	}
	if !almost(mk, 1.5, 1e-6) {
		t.Fatalf("makespan %v, want 1.5 s", mk)
	}
}

func TestPermutationTrafficIsNonBlocking(t *testing.T) {
	// RD/E-Ring traffic is a permutation each step: on a non-blocking
	// switch every flow gets full line rate.
	const n = 64
	nw, _ := NewSwitchedCluster(n, 100)
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{Src: i, Dst: (i + 7) % n, Bits: 1e9}
	}
	mk, _, err := nw.FlowTimes(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mk, 0.01, 1e-6) {
		t.Fatalf("permutation makespan %v, want 10 ms", mk)
	}
}

func TestRingNetworkRouting(t *testing.T) {
	nw, err := NewRingNetwork(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	// 0→2 goes CW over links 0,1.
	p := nw.Route(0, 2)
	if len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Fatalf("Route(0,2) = %v", p)
	}
	// 0→6 goes CCW over links n+0, n+7.
	p = nw.Route(0, 6)
	if len(p) != 2 || p[0] != 8 || p[1] != 8+7 {
		t.Fatalf("Route(0,6) = %v", p)
	}
}

func TestRingNetworkContention(t *testing.T) {
	// Two CW flows crossing the same ring link halve each other.
	nw, _ := NewRingNetwork(8, 100)
	mk, _, err := nw.FlowTimes([]Flow{
		{Src: 0, Dst: 3, Bits: 100e9},
		{Src: 1, Dst: 3, Bits: 100e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mk, 2.0, 1e-6) {
		t.Fatalf("contended ring makespan %v, want 2 s", mk)
	}
}

func TestFatTreeOversubscription(t *testing.T) {
	// 8 hosts, pods of 4, oversub 4: leaf uplink = 4*100/4 = 100 Gb/s.
	// Four cross-pod flows from pod 0 share one 100 Gb/s uplink: 25 each.
	nw, err := NewFatTree(8, 4, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]Flow, 4)
	for i := range flows {
		flows[i] = Flow{Src: i, Dst: 4 + i, Bits: 25e9}
	}
	mk, _, err := nw.FlowTimes(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mk, 1.0, 1e-6) {
		t.Fatalf("oversubscribed makespan %v, want 1 s", mk)
	}
	// Same flows within the pod: full rate, 0.25 s.
	for i := range flows {
		flows[i] = Flow{Src: i, Dst: (i + 1) % 4, Bits: 25e9}
	}
	mk, _, err = nw.FlowTimes(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mk, 0.25, 1e-6) {
		t.Fatalf("intra-pod makespan %v, want 0.25 s", mk)
	}
}

func TestMaxMinFairnessProperty(t *testing.T) {
	// Property: the max-min allocation never oversubscribes a link, and
	// every flow is bottlenecked somewhere (can't be increased unilaterally).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(14) + 2
		var nw *Network
		var err error
		switch trial % 3 {
		case 0:
			nw, err = NewSwitchedCluster(n, 100)
		case 1:
			nw, err = NewRingNetwork(n, 100)
		default:
			pod := 1
			for _, p := range []int{4, 2, 1} {
				if n%p == 0 {
					pod = p
					break
				}
			}
			nw, err = NewFatTree(n, pod, 100, 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		nf := rng.Intn(20) + 1
		flows := make([]Flow, nf)
		paths := make([][]int, nf)
		active := make([]bool, nf)
		for i := range flows {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			for dst == src {
				dst = rng.Intn(n)
			}
			flows[i] = Flow{Src: src, Dst: dst, Bits: 1e9}
			paths[i] = nw.Route(src, dst)
			active[i] = true
		}
		s := NewSolver(nw)
		s.grow(nf)
		s.pathOff = append(s.pathOff, 0)
		for i := range flows {
			s.pathArena = append(s.pathArena, paths[i]...)
			s.pathOff = append(s.pathOff, len(s.pathArena))
			s.active[i] = active[i]
		}
		s.maxMinRates()
		rates := s.rates

		// No link oversubscribed.
		load := make([]float64, nw.NumLinks())
		for i, p := range paths {
			for _, l := range p {
				load[l] += rates[i]
			}
		}
		for l, v := range load {
			if v > nw.capBps[l]*(1+1e-9) {
				t.Fatalf("link %d oversubscribed: %v > %v", l, v, nw.capBps[l])
			}
		}
		// Every flow has at least one saturated link (bottleneck property).
		for i, p := range paths {
			if rates[i] <= 0 {
				t.Fatalf("flow %d starved", i)
			}
			saturated := false
			for _, l := range p {
				if load[l] >= nw.capBps[l]*(1-1e-6) {
					saturated = true
					break
				}
			}
			if !saturated {
				t.Fatalf("flow %d (rate %v) has no bottleneck", i, rates[i])
			}
		}
	}
}

func TestStepCost(t *testing.T) {
	nw, _ := NewSwitchedCluster(4, 100)
	p := DefaultParams()
	// Empty step: latency only.
	c, err := nw.StepCost(p, nil)
	if err != nil || !almost(c, p.PerStepLatencySec, 1e-12) {
		t.Fatalf("empty StepCost = %v, %v", c, err)
	}
	c, err = nw.StepCost(p, []Flow{{Src: 0, Dst: 1, Bits: 100e9}})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(c, 1.0+p.PerStepLatencySec, 1e-9) {
		t.Fatalf("StepCost = %v", c)
	}
}

func TestFlowValidation(t *testing.T) {
	nw, _ := NewSwitchedCluster(4, 100)
	if _, _, err := nw.FlowTimes([]Flow{{Src: 0, Dst: 0, Bits: 1}}); err == nil {
		t.Fatal("self-flow accepted")
	}
	if _, _, err := nw.FlowTimes([]Flow{{Src: 0, Dst: 9, Bits: 1}}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, _, err := nw.FlowTimes([]Flow{{Src: 0, Dst: 1, Bits: -5}}); err == nil {
		t.Fatal("negative bits accepted")
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewSwitchedCluster(1, 100); err == nil {
		t.Fatal("1-host cluster accepted")
	}
	if _, err := NewRingNetwork(4, 0); err == nil {
		t.Fatal("0-rate ring accepted")
	}
	if _, err := NewFatTree(10, 4, 100, 2); err == nil {
		t.Fatal("non-dividing pod accepted")
	}
	if _, err := NewFatTree(8, 4, 100, 0.5); err == nil {
		t.Fatal("oversub < 1 accepted")
	}
}

func TestZeroBitFlowsCompleteInstantly(t *testing.T) {
	nw, _ := NewSwitchedCluster(4, 100)
	mk, done, err := nw.FlowTimes([]Flow{
		{Src: 0, Dst: 1, Bits: 0},
		{Src: 1, Dst: 2, Bits: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if done[0] != 0 {
		t.Fatalf("zero-bit flow done at %v", done[0])
	}
	if !almost(mk, 0.01, 1e-6) {
		t.Fatalf("makespan %v", mk)
	}
}

func TestERingStepAtScaleIsLineRate(t *testing.T) {
	// 1024 neighbor flows on the switched cluster: all at line rate.
	const n = 1024
	nw, _ := NewSwitchedCluster(n, 100)
	flows := make([]Flow, n)
	for i := range flows {
		flows[i] = Flow{Src: i, Dst: (i + 1) % n, Bits: 4.3e6}
	}
	mk, _, err := nw.FlowTimes(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mk, 4.3e6/100e9, 1e-6) {
		t.Fatalf("E-Ring step makespan %v", mk)
	}
}
