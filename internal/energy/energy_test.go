package energy

import (
	"math"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/model"
	"wrht/internal/optical"
)

func TestOpticalBreakdownHandComputed(t *testing.T) {
	s, err := collective.RingAllReduce(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c := OpticalCosts{
		SerDesPJPerBit: 1, EOPJPerBit: 0.5, OEPJPerBit: 0.5,
		TuningNJPerTransfer: 10, LaserMWPerNode: 100,
	}
	b, err := Optical(s, 2.0, c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Traffic = 2*(n-1)*elems = 6000 elems = 192000 bits at 2 pJ/bit.
	wantDyn := 192000 * 2e-12
	if math.Abs(b.DynamicJ-wantDyn) > 1e-18 {
		t.Fatalf("dynamic %v, want %v", b.DynamicJ, wantDyn)
	}
	// 6 steps × 4 transfers = 24 transfers × 10 nJ.
	if math.Abs(b.TuningJ-24*10e-9) > 1e-15 {
		t.Fatalf("tuning %v", b.TuningJ)
	}
	// 4 nodes × 100 mW × 2 s.
	if math.Abs(b.StaticJ-0.8) > 1e-12 {
		t.Fatalf("static %v", b.StaticJ)
	}
	if math.Abs(b.TotalJ()-(b.DynamicJ+b.TuningJ+b.StaticJ)) > 1e-18 {
		t.Fatal("TotalJ broken")
	}
}

func TestElectricalBreakdownHandComputed(t *testing.T) {
	s, err := collective.RingAllReduce(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	c := ElectricalCosts{NICPJPerBit: 5, SwitchPJPerBit: 10, SwitchesPerPath: 1, IdleMWPerNode: 200}
	b, err := Electrical(s, 1.0, c, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantDyn := 192000 * 20e-12 // 2×5 + 1×10 = 20 pJ/bit
	if math.Abs(b.DynamicJ-wantDyn) > 1e-18 {
		t.Fatalf("dynamic %v, want %v", b.DynamicJ, wantDyn)
	}
	if math.Abs(b.StaticJ-0.8) > 1e-12 {
		t.Fatalf("static %v", b.StaticJ)
	}
}

func TestValidation(t *testing.T) {
	s, _ := collective.RingAllReduce(4, 100)
	if _, err := Optical(s, -1, DefaultOpticalCosts(), 4); err == nil {
		t.Fatal("negative duration accepted")
	}
	if _, err := Optical(s, 1, DefaultOpticalCosts(), 0); err == nil {
		t.Fatal("zero elem width accepted")
	}
	if _, err := Electrical(s, -1, DefaultElectricalCosts(), 4); err == nil {
		t.Fatal("negative duration accepted")
	}
	bad := DefaultElectricalCosts()
	bad.SwitchesPerPath = -1
	if _, err := Electrical(s, 1, bad, 4); err == nil {
		t.Fatal("negative switch count accepted")
	}
}

func TestWrhtEnergyBeatsBaselines(t *testing.T) {
	// The paper's motivation: optical interconnects cut power. Compare one
	// VGG16-sized all-reduce at N=256: Wrht must beat E-Ring (electrical
	// per-bit cost) and O-Ring (12× longer static-laser exposure).
	const n = 256
	const elems = 138_357_544
	op := optical.DefaultParams()
	ep := electrical.DefaultParams()

	plan, err := core.BuildPlan(n, op.Wavelengths, core.Options{M: 3, Policy: core.A2AFormula, Striping: true})
	if err != nil {
		t.Fatal(err)
	}
	wrhtS, err := plan.Schedule(elems)
	if err != nil {
		t.Fatal(err)
	}
	ringS, err := collective.RingAllReduce(n, elems)
	if err != nil {
		t.Fatal(err)
	}

	bytes := int64(elems) * 4
	wrhtE, err := Optical(wrhtS, model.Wrht(plan, bytes, op), DefaultOpticalCosts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	oRingE, err := Optical(ringS, model.ORing(n, bytes, op), DefaultOpticalCosts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	eRingE, err := Electrical(ringS, model.ERing(n, bytes, ep), DefaultElectricalCosts(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if wrhtE.TotalJ() >= eRingE.TotalJ() {
		t.Errorf("Wrht %.3g J not below E-Ring %.3g J", wrhtE.TotalJ(), eRingE.TotalJ())
	}
	if wrhtE.TotalJ() >= oRingE.TotalJ() {
		t.Errorf("Wrht %.3g J not below O-Ring %.3g J", wrhtE.TotalJ(), oRingE.TotalJ())
	}
	// Optical per-bit dynamic energy is far below electrical.
	if wrhtE.DynamicJ >= eRingE.DynamicJ {
		t.Errorf("optical dynamic %.3g J not below electrical %.3g J",
			wrhtE.DynamicJ, eRingE.DynamicJ)
	}
}
