// Package energy estimates the energy of an all-reduce on either substrate,
// quantifying the paper's "low power cost" motivation for optical
// interconnects. Optical transfers pay conversion energy only at the
// endpoints (pass-through nodes stay in the optical domain — the structural
// advantage), plus micro-ring tuning per transmission and static laser power
// for the duration of the operation. Electrical transfers pay NIC energy at
// both endpoints and switch traversal energy per hop.
package energy

import (
	"fmt"
)

// Schedule is the accounting view of a collective schedule; both
// *collective.Schedule and *collective.CompactSchedule satisfy it, so the
// estimators accept either representation.
type Schedule interface {
	// TotalTrafficElems is the total number of elements moved.
	TotalTrafficElems() int64
	// TotalTransfers is the number of point-to-point transfers.
	TotalTransfers() int
	// Nodes is the participant count.
	Nodes() int
}

// OpticalCosts are per-event energy constants for the WDM ring
// (silicon-photonics literature values; see DESIGN.md §4).
type OpticalCosts struct {
	// SerDesPJPerBit + EOPJPerBit + OEPJPerBit are charged once per bit at
	// the transfer endpoints (≈1–4 pJ/bit total for integrated photonics).
	SerDesPJPerBit float64
	EOPJPerBit     float64
	OEPJPerBit     float64
	// TuningNJPerTransfer is the thermal micro-ring retuning energy charged
	// per transmission.
	TuningNJPerTransfer float64
	// LaserMWPerNode is the static comb-laser + thermal-stabilization wall
	// power per node, integrated over the operation's duration.
	LaserMWPerNode float64
}

// DefaultOpticalCosts returns representative silicon-photonics constants.
func DefaultOpticalCosts() OpticalCosts {
	return OpticalCosts{
		SerDesPJPerBit:      1.3,
		EOPJPerBit:          0.3,
		OEPJPerBit:          0.4,
		TuningNJPerTransfer: 25,
		LaserMWPerNode:      200,
	}
}

// ElectricalCosts are per-event energy constants for the packet network.
type ElectricalCosts struct {
	// NICPJPerBit is charged twice per bit (send + receive endpoints).
	NICPJPerBit float64
	// SwitchPJPerBit is charged once per bit per switch traversed.
	SwitchPJPerBit float64
	// SwitchesPerPath is the number of switches a flow crosses (1 for the
	// non-blocking cluster, 2–3 for the fat-tree).
	SwitchesPerPath int
	// IdleMWPerNode is the static NIC/serdes wall power per node.
	IdleMWPerNode float64
}

// DefaultElectricalCosts returns representative 100GbE constants.
func DefaultElectricalCosts() ElectricalCosts {
	return ElectricalCosts{
		NICPJPerBit:     6,
		SwitchPJPerBit:  12,
		SwitchesPerPath: 1,
		IdleMWPerNode:   400,
	}
}

// Breakdown is an energy estimate split by origin, in joules.
type Breakdown struct {
	DynamicJ float64 // per-bit conversion / traversal energy
	TuningJ  float64 // micro-ring retuning (optical only)
	StaticJ  float64 // laser / idle power × duration
}

// TotalJ sums the breakdown.
func (b Breakdown) TotalJ() float64 { return b.DynamicJ + b.TuningJ + b.StaticJ }

// scheduleBits returns total transmitted bits and transfer count.
func scheduleBits(s Schedule, bytesPerElem int) (float64, int, error) {
	if bytesPerElem < 1 {
		return 0, 0, fmt.Errorf("energy: bytes per elem %d", bytesPerElem)
	}
	bits := float64(s.TotalTrafficElems()) * float64(bytesPerElem) * 8
	return bits, s.TotalTransfers(), nil
}

// Optical estimates the energy of running the schedule on the WDM ring,
// given the operation's simulated duration (for the static laser term).
func Optical(s Schedule, durationSec float64, c OpticalCosts, bytesPerElem int) (Breakdown, error) {
	if durationSec < 0 {
		return Breakdown{}, fmt.Errorf("energy: negative duration %v", durationSec)
	}
	bits, transfers, err := scheduleBits(s, bytesPerElem)
	if err != nil {
		return Breakdown{}, err
	}
	perBit := (c.SerDesPJPerBit + c.EOPJPerBit + c.OEPJPerBit) * 1e-12
	return Breakdown{
		DynamicJ: bits * perBit,
		TuningJ:  float64(transfers) * c.TuningNJPerTransfer * 1e-9,
		StaticJ:  float64(s.Nodes()) * c.LaserMWPerNode * 1e-3 * durationSec,
	}, nil
}

// Electrical estimates the energy of running the schedule on the packet
// network, given the operation's simulated duration.
func Electrical(s Schedule, durationSec float64, c ElectricalCosts, bytesPerElem int) (Breakdown, error) {
	if durationSec < 0 {
		return Breakdown{}, fmt.Errorf("energy: negative duration %v", durationSec)
	}
	if c.SwitchesPerPath < 0 {
		return Breakdown{}, fmt.Errorf("energy: switches per path %d", c.SwitchesPerPath)
	}
	bits, _, err := scheduleBits(s, bytesPerElem)
	if err != nil {
		return Breakdown{}, err
	}
	perBit := (2*c.NICPJPerBit + float64(c.SwitchesPerPath)*c.SwitchPJPerBit) * 1e-12
	return Breakdown{
		DynamicJ: bits * perBit,
		StaticJ:  float64(s.Nodes()) * c.IdleMWPerNode * 1e-3 * durationSec,
	}, nil
}
