package optical

import (
	"math/rand"
	"testing"

	"wrht/internal/ring"
	"wrht/internal/wdm"
)

func TestStepCostMonotoneInBytes(t *testing.T) {
	topo := ring.MustNew(16)
	p := DefaultParams()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		specs := make([]TransferSpec, rng.Intn(10)+1)
		for i := range specs {
			src := rng.Intn(16)
			dst := (src + rng.Intn(15) + 1) % 16
			specs[i] = TransferSpec{
				Arc:   topo.ShortestArc(src, dst),
				Bytes: int64(rng.Intn(1 << 20)),
				Width: rng.Intn(4) + 1,
			}
		}
		r1, err := StepCost(topo, p, specs, wdm.FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		bigger := append([]TransferSpec(nil), specs...)
		for i := range bigger {
			bigger[i].Bytes *= 2
		}
		r2, err := StepCost(topo, p, bigger, wdm.FirstFit)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Duration < r1.Duration-1e-15 {
			t.Fatalf("doubling bytes reduced step cost: %v -> %v", r1.Duration, r2.Duration)
		}
	}
}

func TestStepCostWiderStripesNeverSlower(t *testing.T) {
	topo := ring.MustNew(12)
	p := DefaultParams()
	specs := []TransferSpec{
		{Arc: ring.Arc{Src: 0, Dst: 2, Dir: ring.CW}, Bytes: 1 << 22, Width: 1},
		{Arc: ring.Arc{Src: 6, Dst: 8, Dir: ring.CW}, Bytes: 1 << 22, Width: 1},
	}
	narrow, err := StepCost(topo, p, specs, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		specs[i].Width = 32
	}
	wide, err := StepCost(topo, p, specs, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Duration >= narrow.Duration {
		t.Fatalf("striping did not help: %v vs %v", wide.Duration, narrow.Duration)
	}
}

func TestTransferSecScalesWithHops(t *testing.T) {
	p := DefaultParams()
	d1 := p.TransferSec(0, 1, 1)
	d100 := p.TransferSec(0, 1, 100)
	wantDelta := 99 * p.PropagationNsPerHop * 1e-9
	if diff := d100 - d1; diff < wantDelta*0.999 || diff > wantDelta*1.001 {
		t.Fatalf("hop scaling: delta %v, want %v", diff, wantDelta)
	}
}

func TestFabricSequentialReuse(t *testing.T) {
	// The same wavelength can be reused back-to-back without gaps.
	topo := ring.MustNew(8)
	f, err := NewFabric(topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	arc := ring.Arc{Src: 0, Dst: 4, Dir: ring.CW}
	for i := 0; i < 10; i++ {
		start, err := f.EarliestFree(arc, []int{3}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(i); start != want {
			t.Fatalf("iteration %d: earliest %v, want %v", i, start, want)
		}
		if err := f.Reserve(arc, []int{3}, start, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEarliestFreeValidation(t *testing.T) {
	topo := ring.MustNew(8)
	f, _ := NewFabric(topo, DefaultParams())
	if _, err := f.EarliestFree(ring.Arc{Src: 0, Dst: 0, Dir: ring.CW}, []int{0}, 0); err == nil {
		t.Fatal("empty arc accepted")
	}
	if _, err := f.EarliestFree(ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, []int{999}, 0); err == nil {
		t.Fatal("out-of-range wavelength accepted")
	}
}
