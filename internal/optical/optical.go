// Package optical models a TeraRack-like WDM optical ring interconnect: each
// node couples to two directional waveguides through banks of micro-ring
// resonators, every waveguide carries Wavelengths channels of
// GbpsPerWavelength each, and a transfer occupies its wavelength(s) on every
// directed link along its arc for the duration of the transmission.
//
// The package prices synchronous communication steps (StepCost) by running
// real wavelength assignment over the step's arcs — splitting the step into
// sequential rounds when the demand exceeds the wavelength budget — and
// offers an event-level Fabric that replays complete schedules to certify
// that no (link, wavelength, time) is ever double-booked.
package optical

import (
	"fmt"
	"math"

	"wrht/internal/ring"
	"wrht/internal/wdm"
)

// Params are the hardware constants of the optical ring.
type Params struct {
	// Wavelengths per waveguide per direction (TeraRack: 64).
	Wavelengths int
	// GbpsPerWavelength is one channel's line rate (TeraRack comb lasers:
	// ~25 Gb/s per wavelength).
	GbpsPerWavelength float64
	// SerDesNs, EOConversionNs and OEConversionNs are charged once per
	// transfer (serializer plus electrical→optical→electrical conversion).
	SerDesNs       float64
	EOConversionNs float64
	OEConversionNs float64
	// TuningNs is the micro-ring thermal retuning cost charged once per
	// step (the fabric reconfigures between steps).
	TuningNs float64
	// StepControlNs is the per-step control-plane/synchronization overhead.
	StepControlNs float64
	// PropagationNsPerHop is the waveguide propagation delay per ring hop
	// (about 2 m of fiber at 5 ns/m at rack scale).
	PropagationNsPerHop float64
}

// DefaultParams returns the TeraRack-like constants used by the evaluation
// (see DESIGN.md §4).
func DefaultParams() Params {
	return Params{
		Wavelengths:         64,
		GbpsPerWavelength:   25,
		SerDesNs:            10,
		EOConversionNs:      5,
		OEConversionNs:      5,
		TuningNs:            2000,
		StepControlNs:       1000,
		PropagationNsPerHop: 10,
	}
}

// Validate checks the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.Wavelengths < 1 {
		return fmt.Errorf("optical: %d wavelengths", p.Wavelengths)
	}
	if p.GbpsPerWavelength <= 0 {
		return fmt.Errorf("optical: non-positive channel rate %v", p.GbpsPerWavelength)
	}
	for _, v := range []float64{p.SerDesNs, p.EOConversionNs, p.OEConversionNs,
		p.TuningNs, p.StepControlNs, p.PropagationNsPerHop} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("optical: invalid latency parameter %v", v)
		}
	}
	return nil
}

// StepOverheadSec is the fixed per-step cost (tuning + control).
func (p Params) StepOverheadSec() float64 {
	return (p.TuningNs + p.StepControlNs) * 1e-9
}

// PerTransferOverheadSec is the fixed per-transfer cost (SerDes + E/O + O/E).
func (p Params) PerTransferOverheadSec() float64 {
	return (p.SerDesNs + p.EOConversionNs + p.OEConversionNs) * 1e-9
}

// TransferSec returns the duration of a single transfer of `bytes` bytes
// striped over width wavelengths across hops ring links.
func (p Params) TransferSec(bytes int64, width, hops int) float64 {
	if width < 1 {
		width = 1
	}
	serialization := float64(bytes) * 8 / (float64(width) * p.GbpsPerWavelength * 1e9)
	return p.PerTransferOverheadSec() +
		float64(hops)*p.PropagationNsPerHop*1e-9 +
		serialization
}

// TransferSpec is one transfer inside a synchronous step.
type TransferSpec struct {
	Arc   ring.Arc
	Bytes int64
	// Width is the stripe width (wavelengths used in parallel); clamped to
	// [1, Params.Wavelengths].
	Width int
}

// StepResult describes the cost of one synchronous step.
type StepResult struct {
	// Duration includes the per-step overhead and all sequential rounds.
	Duration float64
	// Rounds the step was split into (1 when the demand fit the budget).
	Rounds int
	// WavelengthsUsed is the largest number of distinct wavelengths lit in
	// any round.
	WavelengthsUsed int
	// Assignments holds the per-round wavelength assignments (indices refer
	// to the non-empty transfers passed to StepCost, in order).
	Assignments []wdm.Round
}

// StepCost prices one synchronous step: the transfers are wavelength-assigned
// under the given policy (splitting into sequential rounds when they exceed
// the budget); each round lasts as long as its slowest transfer, rounds
// serialize, and the step pays the fixed reconfiguration overhead once.
// Zero-byte transfers are skipped. For a multi-step schedule, a StepPricer
// amortizes the assignment scratch across steps.
func StepCost(topo ring.Topology, p Params, transfers []TransferSpec, policy wdm.Policy) (StepResult, error) {
	sp, err := NewStepPricer(topo, p, policy)
	if err != nil {
		return StepResult{}, err
	}
	return sp.Price(transfers)
}

// StepPricer prices a sequence of synchronous steps on one ring, reusing the
// wavelength-assignment workspace and the demand buffers across steps so the
// per-step allocation cost is bounded by the result (rounds and stripes),
// not the step size. Not safe for concurrent use.
type StepPricer struct {
	topo    ring.Topology
	p       Params
	policy  wdm.Policy
	ws      *wdm.Workspace
	sym     *wdm.SymmetricAssigner
	demands []wdm.Demand
	active  []TransferSpec
}

// NewStepPricer validates the parameters once and returns a pricer.
func NewStepPricer(topo ring.Topology, p Params, policy wdm.Policy) (*StepPricer, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &StepPricer{topo: topo, p: p, policy: policy, ws: wdm.NewWorkspace(topo)}, nil
}

// Price prices one step. The result's Assignments are views into the
// pricer's reusable round storage and are valid only until the next Price
// call (multi-step runners consume them — e.g. for fabric replay — before
// pricing the next step).
//
//wrht:noalloc
func (sp *StepPricer) Price(transfers []TransferSpec) (StepResult, error) {
	p := sp.p
	demands := sp.demands[:0]
	active := sp.active[:0]
	for _, tr := range transfers {
		if tr.Bytes < 0 {
			return StepResult{}, fmt.Errorf("optical: negative transfer size %d", tr.Bytes)
		}
		if tr.Bytes == 0 {
			continue
		}
		width := tr.Width
		if width < 1 {
			width = 1
		}
		if width > p.Wavelengths {
			width = p.Wavelengths
		}
		demands = append(demands, wdm.Demand{Arc: tr.Arc, Width: width})
		tr.Width = width
		active = append(active, tr)
	}
	sp.demands, sp.active = demands, active
	res := StepResult{Duration: p.StepOverheadSec(), Rounds: 0}
	if len(active) == 0 {
		return res, nil
	}
	rounds, err := sp.ws.RoundsReused(demands, p.Wavelengths, sp.policy, wdm.AsGiven)
	if err != nil {
		return StepResult{}, err
	}
	res.Rounds = len(rounds)
	res.Assignments = rounds
	for _, rd := range rounds {
		longest := 0.0
		for _, di := range rd.Demands {
			tr := active[di]
			d := p.TransferSec(tr.Bytes, tr.Width, sp.topo.Hops(tr.Arc))
			if d > longest {
				longest = d
			}
		}
		if rd.Assignment.NumColors > res.WavelengthsUsed {
			res.WavelengthsUsed = rd.Assignment.NumColors
		}
		res.Duration += longest
	}
	return res, nil
}

// ClassSpec is one pricing equivalence class of a step: Count transfers of
// Bytes bytes striped over Width wavelengths across Hops ring links. Widths
// must already be resolved (no zero hints) but not clamped — PriceSymmetric
// clamps exactly as Price does.
type ClassSpec struct {
	Bytes       int64
	Width, Hops int
	Count       int
}

// PriceSymmetric prices one step from its classes and rotational-symmetry
// certificate instead of its materialized transfers: the step cost is the
// fixed overhead plus the slowest class representative, so pricing is
// O(classes + orbit) instead of O(transfers). It is bit-identical to Price
// on the materialized step whenever it reports ok=true:
//
//   - with no active (non-empty) class the step is empty: overhead only;
//   - when disjoint is set (every transfer pair link-disjoint), any active
//     subset fits one round and First Fit gives each transfer colors
//     0..width-1, so the color count is the widest active class;
//   - otherwise the full demand set must be the orbit replicated exactly
//     (no zero-byte holes): the orbit is assigned once (memoized by shape)
//     and its coloring replicates across the link-disjoint blocks.
//
// ok=false (policy not First Fit, zero-byte holes without disjointness, or
// an orbit that does not fit one round) means the caller must price the
// materialized step with Price; err reports malformed inputs.
//
//wrht:noalloc
func (sp *StepPricer) PriceSymmetric(orbit []wdm.Demand, classes []ClassSpec, disjoint bool) (StepResult, bool, error) {
	p := sp.p
	if sp.policy != wdm.FirstFit {
		return StepResult{}, false, nil
	}
	res := StepResult{Duration: p.StepOverheadSec()}
	longest, maxWidth, actives, holes := 0.0, 0, 0, false
	for _, c := range classes {
		if c.Bytes < 0 {
			return StepResult{}, false, fmt.Errorf("optical: negative transfer size %d", c.Bytes)
		}
		if c.Bytes == 0 {
			holes = true
			continue
		}
		actives++
		width := c.Width
		if width < 1 {
			width = 1
		}
		if width > p.Wavelengths {
			width = p.Wavelengths
		}
		if width > maxWidth {
			maxWidth = width
		}
		if d := p.TransferSec(c.Bytes, width, c.Hops); d > longest {
			longest = d
		}
	}
	if actives == 0 {
		return res, true, nil
	}
	res.Rounds = 1
	res.Duration += longest
	if disjoint {
		res.WavelengthsUsed = maxWidth
		return res, true, nil
	}
	if holes {
		// The active demand set is a strict subset of the replicated orbit;
		// without pairwise disjointness its coloring is not the orbit's.
		return StepResult{}, false, nil
	}
	if sp.sym == nil {
		sp.sym = wdm.NewSymmetricAssigner(sp.topo)
	}
	sp.demands = sp.demands[:0]
	for _, d := range orbit {
		w := d.Width
		if w < 1 {
			w = 1
		}
		if w > p.Wavelengths {
			w = p.Wavelengths
		}
		d.Width = w
		sp.demands = append(sp.demands, d)
	}
	colors, ok, err := sp.sym.SingleRoundColors(sp.demands, p.Wavelengths)
	if err != nil || !ok {
		return StepResult{}, false, err
	}
	res.WavelengthsUsed = colors
	return res, true, nil
}

// Fabric is an event-level reservation ledger: every (directed link,
// wavelength) tracks the time until which it is busy. Replaying a schedule's
// assignments through Reserve certifies the schedule is physically realizable
// (no double-booked wavelength anywhere, ever).
// Fabric is not safe for concurrent use: the link scratch buffer is shared
// across Reserve/EarliestFree calls.
type Fabric struct {
	topo   ring.Topology
	params Params
	// busyUntil[linkIndex][wavelength]
	busyUntil [][]float64
	// links is the arc-resolution scratch reused across calls.
	links []int
}

// NewFabric returns an idle fabric.
func NewFabric(topo ring.Topology, p Params) (*Fabric, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	busy := make([][]float64, topo.NumLinks())
	for i := range busy {
		busy[i] = make([]float64, p.Wavelengths)
	}
	return &Fabric{topo: topo, params: p, busyUntil: busy}, nil
}

// Reserve books the given wavelengths along arc for [start, start+duration).
// It fails if any wavelength is out of range or still busy at start.
// Reservations must be issued in non-decreasing start order (schedules are
// replayed step by step, so this holds by construction).
func (f *Fabric) Reserve(arc ring.Arc, wavelengths []int, start, duration float64) error {
	if duration < 0 {
		return fmt.Errorf("optical: negative duration %v", duration)
	}
	links := f.arcLinks(arc)
	if len(links) == 0 {
		return fmt.Errorf("optical: empty arc %v", arc)
	}
	for _, c := range wavelengths {
		if c < 0 || c >= f.params.Wavelengths {
			return fmt.Errorf("optical: wavelength %d outside [0,%d)", c, f.params.Wavelengths)
		}
		for _, l := range links {
			if f.busyUntil[l][c] > start {
				return fmt.Errorf("optical: link %d wavelength %d busy until %v, requested at %v",
					l, c, f.busyUntil[l][c], start)
			}
		}
	}
	end := start + duration
	for _, c := range wavelengths {
		for _, l := range links {
			f.busyUntil[l][c] = end
		}
	}
	return nil
}

// EarliestFree returns the earliest time at or after `earliest` when every
// given wavelength is free on every link of the arc. Combined with Reserve it
// supports greedy event-driven scheduling (internal/opticalsim).
func (f *Fabric) EarliestFree(arc ring.Arc, wavelengths []int, earliest float64) (float64, error) {
	links := f.arcLinks(arc)
	if len(links) == 0 {
		return 0, fmt.Errorf("optical: empty arc %v", arc)
	}
	t := earliest
	for _, c := range wavelengths {
		if c < 0 || c >= f.params.Wavelengths {
			return 0, fmt.Errorf("optical: wavelength %d outside [0,%d)", c, f.params.Wavelengths)
		}
		for _, l := range links {
			if f.busyUntil[l][c] > t {
				t = f.busyUntil[l][c]
			}
		}
	}
	return t, nil
}

// arcLinks resolves the arc's dense link indices into the shared scratch.
func (f *Fabric) arcLinks(arc ring.Arc) []int {
	f.links = f.topo.AppendArcLinks(arc, f.links[:0])
	return f.links
}

// Utilization returns the fraction of (link, wavelength) pairs that have ever
// been reserved — a coarse occupancy metric for reports.
func (f *Fabric) Utilization() float64 {
	used, total := 0, 0
	for _, ws := range f.busyUntil {
		for _, t := range ws {
			total++
			if t > 0 {
				used++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(used) / float64(total)
}
