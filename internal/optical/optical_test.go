package optical

import (
	"math"
	"testing"

	"wrht/internal/ring"
	"wrht/internal/wdm"
)

func almost(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidation(t *testing.T) {
	p := DefaultParams()
	p.Wavelengths = 0
	if err := p.Validate(); err == nil {
		t.Fatal("0 wavelengths accepted")
	}
	p = DefaultParams()
	p.GbpsPerWavelength = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	p = DefaultParams()
	p.TuningNs = math.NaN()
	if err := p.Validate(); err == nil {
		t.Fatal("NaN latency accepted")
	}
}

func TestTransferSecComponents(t *testing.T) {
	p := DefaultParams()
	// 25 Gb/s, 1 wavelength, 1 hop, 25 GB → 8 s of serialization dominates.
	d := p.TransferSec(25e9, 1, 1)
	if !almost(d, 8.0, 1e-6) {
		t.Fatalf("TransferSec = %v, want ≈8s", d)
	}
	// Striping over 64 wavelengths divides serialization by 64.
	d64 := p.TransferSec(25e9, 64, 1)
	if !almost(d64, 8.0/64, 1e-4) {
		t.Fatalf("striped TransferSec = %v, want ≈%v", d64, 8.0/64)
	}
	// Zero bytes: just overheads.
	d0 := p.TransferSec(0, 1, 3)
	want := p.PerTransferOverheadSec() + 3*p.PropagationNsPerHop*1e-9
	if !almost(d0, want, 1e-9) {
		t.Fatalf("zero-byte TransferSec = %v, want %v", d0, want)
	}
}

func TestStepCostSingleTransfer(t *testing.T) {
	topo := ring.MustNew(8)
	p := DefaultParams()
	res, err := StepCost(topo, p, []TransferSpec{
		{Arc: ring.Arc{Src: 0, Dst: 2, Dir: ring.CW}, Bytes: 1 << 20, Width: 1},
	}, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	want := p.StepOverheadSec() + p.TransferSec(1<<20, 1, 2)
	if !almost(res.Duration, want, 1e-9) {
		t.Fatalf("Duration = %v, want %v", res.Duration, want)
	}
	if res.Rounds != 1 || res.WavelengthsUsed != 1 {
		t.Fatalf("rounds=%d wavelengths=%d", res.Rounds, res.WavelengthsUsed)
	}
}

func TestStepCostParallelTransfersShareTime(t *testing.T) {
	// Disjoint arcs run concurrently: the step lasts as long as the slowest.
	topo := ring.MustNew(12)
	p := DefaultParams()
	res, err := StepCost(topo, p, []TransferSpec{
		{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Bytes: 1 << 20, Width: 1},
		{Arc: ring.Arc{Src: 4, Dst: 5, Dir: ring.CW}, Bytes: 4 << 20, Width: 1},
		{Arc: ring.Arc{Src: 8, Dst: 9, Dir: ring.CW}, Bytes: 2 << 20, Width: 1},
	}, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	want := p.StepOverheadSec() + p.TransferSec(4<<20, 1, 1)
	if !almost(res.Duration, want, 1e-9) {
		t.Fatalf("Duration = %v, want %v", res.Duration, want)
	}
	if res.Rounds != 1 || res.WavelengthsUsed != 1 {
		t.Fatalf("rounds=%d wavelengths=%d, want 1/1 (spatial reuse)", res.Rounds, res.WavelengthsUsed)
	}
}

func TestStepCostSplitsIntoRounds(t *testing.T) {
	// Three conflicting width-1 transfers with a 2-wavelength budget need
	// two sequential rounds.
	topo := ring.MustNew(8)
	p := DefaultParams()
	p.Wavelengths = 2
	specs := []TransferSpec{
		{Arc: ring.Arc{Src: 0, Dst: 4, Dir: ring.CW}, Bytes: 1 << 20, Width: 1},
		{Arc: ring.Arc{Src: 1, Dst: 5, Dir: ring.CW}, Bytes: 1 << 20, Width: 1},
		{Arc: ring.Arc{Src: 2, Dst: 6, Dir: ring.CW}, Bytes: 1 << 20, Width: 1},
	}
	res, err := StepCost(topo, p, specs, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Rounds)
	}
	oneRound := p.TransferSec(1<<20, 1, 4)
	want := p.StepOverheadSec() + oneRound + p.TransferSec(1<<20, 1, 4)
	if !almost(res.Duration, want, 1e-9) {
		t.Fatalf("Duration = %v, want %v", res.Duration, want)
	}
}

func TestStepCostClampsWidth(t *testing.T) {
	topo := ring.MustNew(4)
	p := DefaultParams()
	p.Wavelengths = 4
	res, err := StepCost(topo, p, []TransferSpec{
		{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Bytes: 1 << 20, Width: 999},
	}, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if res.WavelengthsUsed != 4 {
		t.Fatalf("width not clamped: %d", res.WavelengthsUsed)
	}
}

func TestStepCostSkipsEmptyTransfers(t *testing.T) {
	topo := ring.MustNew(4)
	p := DefaultParams()
	res, err := StepCost(topo, p, []TransferSpec{
		{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Bytes: 0, Width: 1},
	}, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || !almost(res.Duration, p.StepOverheadSec(), 1e-12) {
		t.Fatalf("empty step mispriced: %+v", res)
	}
}

func TestStepCostRejectsNegativeBytes(t *testing.T) {
	topo := ring.MustNew(4)
	if _, err := StepCost(topo, DefaultParams(), []TransferSpec{
		{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Bytes: -1},
	}, wdm.FirstFit); err == nil {
		t.Fatal("negative bytes accepted")
	}
}

func TestFabricReserveConflicts(t *testing.T) {
	topo := ring.MustNew(8)
	f, err := NewFabric(topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	arc := ring.Arc{Src: 0, Dst: 3, Dir: ring.CW}
	if err := f.Reserve(arc, []int{0, 1}, 0, 10); err != nil {
		t.Fatal(err)
	}
	// Same wavelength, overlapping link, overlapping time: must fail.
	if err := f.Reserve(ring.Arc{Src: 1, Dst: 4, Dir: ring.CW}, []int{1}, 5, 10); err == nil {
		t.Fatal("double booking accepted")
	}
	// Different wavelength: fine.
	if err := f.Reserve(ring.Arc{Src: 1, Dst: 4, Dir: ring.CW}, []int{2}, 5, 10); err != nil {
		t.Fatal(err)
	}
	// Same wavelength after the reservation ends: fine.
	if err := f.Reserve(ring.Arc{Src: 1, Dst: 4, Dir: ring.CW}, []int{0}, 10, 1); err != nil {
		t.Fatal(err)
	}
	// Opposite waveguide: fine even at the same time.
	if err := f.Reserve(ring.Arc{Src: 3, Dst: 0, Dir: ring.CCW}, []int{0}, 0, 10); err != nil {
		t.Fatal(err)
	}
	if f.Utilization() <= 0 {
		t.Fatal("utilization should be positive")
	}
}

func TestFabricRejectsBadWavelength(t *testing.T) {
	topo := ring.MustNew(4)
	f, err := NewFabric(topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Reserve(ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, []int{64}, 0, 1); err == nil {
		t.Fatal("out-of-range wavelength accepted")
	}
	if err := f.Reserve(ring.Arc{Src: 0, Dst: 0, Dir: ring.CW}, []int{0}, 0, 1); err == nil {
		t.Fatal("empty arc accepted")
	}
	if err := f.Reserve(ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, []int{0}, 0, -1); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestORingStepMatchesHandComputation(t *testing.T) {
	// One O-Ring step at N=1024 with the default parameters: every node
	// forwards a 1/N chunk one hop on a single wavelength; all arcs are
	// link-disjoint so one wavelength per waveguide direction suffices...
	// all transfers go CW so exactly 1 wavelength total.
	const n = 1024
	topo := ring.MustNew(n)
	p := DefaultParams()
	chunk := int64(249_200_000 / n) // AlexNet FP32 / N
	specs := make([]TransferSpec, n)
	for i := 0; i < n; i++ {
		specs[i] = TransferSpec{
			Arc:   ring.Arc{Src: i, Dst: (i + 1) % n, Dir: ring.CW},
			Bytes: chunk,
			Width: 1,
		}
	}
	res, err := StepCost(topo, p, specs, wdm.FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || res.WavelengthsUsed != 1 {
		t.Fatalf("O-Ring step: rounds=%d wavelengths=%d", res.Rounds, res.WavelengthsUsed)
	}
	want := p.StepOverheadSec() + p.TransferSec(chunk, 1, 1)
	if !almost(res.Duration, want, 1e-9) {
		t.Fatalf("Duration = %v, want %v", res.Duration, want)
	}
}
