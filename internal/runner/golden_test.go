package runner

import (
	"reflect"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/electrical"
)

// goldenSchedules builds a representative spread of schedules: ring, RD, HD,
// binomial, and Wrht plans (striped and not) over mixed node counts.
func goldenSchedules(t *testing.T) []*collective.Schedule {
	t.Helper()
	var out []*collective.Schedule
	add := func(s *collective.Schedule, err error) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	for _, n := range []int{4, 9, 16, 30} {
		add(collective.RingAllReduce(n, 4*n))
		add(collective.RecursiveDoubling(n, 128))
		add(collective.HalvingDoubling(n, 128))
		add(collective.BinomialTree(n, 64))
	}
	for _, c := range []struct{ n, w, m int }{{16, 8, 3}, {30, 16, 5}, {64, 8, 9}} {
		p, err := core.BuildPlan(c.n, c.w, core.Options{M: c.m, Striping: true})
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.Schedule(200)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestRunOpticalCompactGoldenEquality: the compact fast path is bit-identical
// to the historical boxed path — total, per-step durations, wavelength
// metrics — including with fabric replay validation on.
func TestRunOpticalCompactGoldenEquality(t *testing.T) {
	for _, s := range goldenSchedules(t) {
		for _, validate := range []bool{false, true} {
			opts := DefaultOpticalOptions()
			opts.ValidateFabric = validate
			want, err := RunOptical(s, opts)
			if err != nil {
				t.Fatalf("%s: boxed: %v", s.Algorithm, err)
			}
			cs := s.Compact()
			got, err := RunOpticalCompact(cs, opts)
			if err != nil {
				t.Fatalf("%s: compact: %v", s.Algorithm, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s (validate=%v): compact optical result diverges\n got %+v\nwant %+v",
					s.Algorithm, validate, got, want)
			}
			cs.Release()
		}
	}
}

// TestRunElectricalCompactGoldenEquality mirrors the optical golden test on
// the electrical substrate, on the default cluster and a custom network.
func TestRunElectricalCompactGoldenEquality(t *testing.T) {
	for _, s := range goldenSchedules(t) {
		nets := []*electrical.Network{nil}
		if ringNet, err := electrical.NewRingNetwork(s.N, 100); err == nil {
			nets = append(nets, ringNet)
		}
		for _, nw := range nets {
			opts := ElectricalOptions{Params: electrical.DefaultParams(), Network: nw}
			want, err := RunElectrical(s, opts)
			if err != nil {
				t.Fatalf("%s: boxed: %v", s.Algorithm, err)
			}
			cs := s.Compact()
			got, err := RunElectricalCompact(cs, opts)
			if err != nil {
				t.Fatalf("%s: compact: %v", s.Algorithm, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: compact electrical result diverges\n got %+v\nwant %+v",
					s.Algorithm, got, want)
			}
			cs.Release()
		}
	}
}
