package runner

import (
	"testing"

	"wrht/internal/collective"
	"wrht/internal/electrical"
)

// The electrical topology matters for RD but not for neighbor-only ring
// traffic — the congestion contrast that motivates non-blocking defaults.

func TestERingSameOnRingAndSwitchedTopology(t *testing.T) {
	const n, elems = 32, 1 << 18
	s, err := collective.RingAllReduce(n, elems)
	if err != nil {
		t.Fatal(err)
	}
	p := electrical.DefaultParams()
	star, err := electrical.NewSwitchedCluster(n, p.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := electrical.NewRingNetwork(n, p.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	rStar, err := RunElectrical(s, ElectricalOptions{Params: p, Network: star})
	if err != nil {
		t.Fatal(err)
	}
	rRing, err := RunElectrical(s, ElectricalOptions{Params: p, Network: rng})
	if err != nil {
		t.Fatal(err)
	}
	// Neighbor flows never share a link on either topology.
	if d := rStar.TotalSec - rRing.TotalSec; d > 1e-9 || d < -1e-9 {
		t.Fatalf("E-Ring differs across topologies: %v vs %v", rStar.TotalSec, rRing.TotalSec)
	}
}

func TestRDCongestsOnPhysicalRing(t *testing.T) {
	// RD's distance-2^k exchanges pile onto the same ring links; on the
	// physical ring it must be much slower than on the non-blocking switch.
	const n, elems = 32, 1 << 18
	s, err := collective.RecursiveDoubling(n, elems)
	if err != nil {
		t.Fatal(err)
	}
	p := electrical.DefaultParams()
	star, err := electrical.NewSwitchedCluster(n, p.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := electrical.NewRingNetwork(n, p.LinkGbps)
	if err != nil {
		t.Fatal(err)
	}
	rStar, err := RunElectrical(s, ElectricalOptions{Params: p, Network: star})
	if err != nil {
		t.Fatal(err)
	}
	rRing, err := RunElectrical(s, ElectricalOptions{Params: p, Network: rng})
	if err != nil {
		t.Fatal(err)
	}
	if rRing.TotalSec < rStar.TotalSec*2 {
		t.Fatalf("RD on physical ring (%v) should be >2x the switched cluster (%v)",
			rRing.TotalSec, rStar.TotalSec)
	}
}

func TestRDSlowsOnOversubscribedFatTree(t *testing.T) {
	const n, elems = 32, 1 << 18
	s, err := collective.RecursiveDoubling(n, elems)
	if err != nil {
		t.Fatal(err)
	}
	p := electrical.DefaultParams()
	blocking, err := electrical.NewFatTree(n, 8, p.LinkGbps, 4)
	if err != nil {
		t.Fatal(err)
	}
	nonblocking, err := electrical.NewFatTree(n, 8, p.LinkGbps, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunElectrical(s, ElectricalOptions{Params: p, Network: blocking})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := RunElectrical(s, ElectricalOptions{Params: p, Network: nonblocking})
	if err != nil {
		t.Fatal(err)
	}
	if rb.TotalSec <= rn.TotalSec {
		t.Fatalf("4:1 oversubscription (%v) should slow RD vs non-blocking (%v)",
			rb.TotalSec, rn.TotalSec)
	}
}
