package runner

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/electrical"
	"wrht/internal/ring"
	"wrht/internal/tensor"
	"wrht/internal/wdm"
)

// classedGoldenCases extends the golden schedule spread with randomized
// schedules: symmetric uniform-shift patterns (certificate path), arbitrary
// asymmetric patterns (per-step fallback path), and mixes with zero-length
// regions, so classed pricing is exercised on every branch.
func classedGoldenCases(t *testing.T) []*collective.Schedule {
	out := goldenSchedules(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(24)
		elems := rng.Intn(3000)
		chunks := tensor.Chunks(elems, n)
		s := &collective.Schedule{Algorithm: "random", N: n, Elems: elems}
		for st, steps := 0, 1+rng.Intn(4); st < steps; st++ {
			step := collective.Step{Label: fmt.Sprintf("s%d", st)}
			if trial%2 == 0 {
				// Uniform shift: rotationally symmetric, sometimes disjoint.
				shift := 1 + rng.Intn(n-1)
				width := rng.Intn(3)
				rot := rng.Intn(n)
				for i := 0; i < n; i++ {
					step.Transfers = append(step.Transfers, collective.Transfer{
						Src: i, Dst: (i + shift) % n,
						Region: chunks[(i+rot)%n],
						Op:     collective.OpReduce,
						Width:  width,
					})
				}
			} else {
				used := map[int]bool{}
				for k, lim := 0, rng.Intn(2*n); k < lim; k++ {
					src, dst := rng.Intn(n), rng.Intn(n)
					if src == dst || used[dst] {
						continue
					}
					used[dst] = true
					tr := collective.Transfer{
						Src: src, Dst: dst,
						Region: chunks[rng.Intn(n)],
						Op:     collective.Op(rng.Intn(2)),
						Width:  rng.Intn(4),
					}
					if rng.Intn(2) == 0 {
						tr.Routed = true
						tr.Dir = ring.Direction(rng.Intn(2))
					}
					step.Transfers = append(step.Transfers, tr)
				}
			}
			s.Steps = append(s.Steps, step)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random schedule: %v", trial, err)
		}
		out = append(out, s)
	}
	return out
}

// TestRunOpticalClassedGoldenEquality: classed optical pricing — certificate
// fast path and verified fallback alike — is bit-identical to the compact
// path, across assignment policies and stripe-width defaults.
func TestRunOpticalClassedGoldenEquality(t *testing.T) {
	for _, s := range classedGoldenCases(t) {
		cs := s.Compact()
		cls := cs.Classes()
		for _, policy := range []wdm.Policy{wdm.FirstFit, wdm.BestFit} {
			for _, dw := range []int{1, 4, 64} {
				opts := DefaultOpticalOptions()
				opts.Assigner = policy
				opts.DefaultWidth = dw
				want, errWant := RunOpticalCompact(cs, opts)
				got, errGot := RunOpticalClassed(cls, opts)
				if (errWant == nil) != (errGot == nil) {
					t.Fatalf("%s (policy=%v dw=%d): error divergence: compact=%v classed=%v",
						s.Algorithm, policy, dw, errWant, errGot)
				}
				if errWant != nil {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s (policy=%v dw=%d): classed optical result diverges\n got %+v\nwant %+v",
						s.Algorithm, policy, dw, got, want)
				}
			}
		}
		cls.Release()
		cs.Release()
	}
}

// TestRunElectricalClassedGoldenEquality: classed electrical pricing — the
// class-level fluid solve on permutation steps, the per-flow fallback
// everywhere else — is bit-identical to the compact path on the default
// cluster and on a custom ring network (where the quotient never applies).
func TestRunElectricalClassedGoldenEquality(t *testing.T) {
	for _, s := range classedGoldenCases(t) {
		cs := s.Compact()
		cls := cs.Classes()
		nets := []*electrical.Network{nil}
		if ringNet, err := electrical.NewRingNetwork(s.N, 100); err == nil {
			nets = append(nets, ringNet)
		}
		for _, nw := range nets {
			opts := ElectricalOptions{Params: electrical.DefaultParams(), Network: nw}
			want, errWant := RunElectricalCompact(cs, opts)
			got, errGot := RunElectricalClassed(cls, opts)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("%s: error divergence: compact=%v classed=%v", s.Algorithm, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s (net=%v): classed electrical result diverges\n got %+v\nwant %+v",
					s.Algorithm, nw != nil, got, want)
			}
		}
		cls.Release()
		cs.Release()
	}
}

// TestRunOpticalClassedFabricReplay: with fabric validation requested the
// classed runner materializes every step; results (and the reservation
// ledger's accept/reject behavior) match the compact path exactly.
func TestRunOpticalClassedFabricReplay(t *testing.T) {
	for _, s := range goldenSchedules(t) {
		cs := s.Compact()
		cls := cs.Classes()
		opts := DefaultOpticalOptions()
		opts.ValidateFabric = true
		want, err := RunOpticalCompact(cs, opts)
		if err != nil {
			t.Fatalf("%s: compact: %v", s.Algorithm, err)
		}
		got, err := RunOpticalClassed(cls, opts)
		if err != nil {
			t.Fatalf("%s: classed: %v", s.Algorithm, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: classed fabric-replay result diverges\n got %+v\nwant %+v", s.Algorithm, got, want)
		}
		cls.Release()
		cs.Release()
	}
}

// TestRunClassedRingDirect: the O(N) classed ring generator prices exactly
// like the materialized ring schedule on both substrates — the headline
// complexity-class win rests on this equality.
func TestRunClassedRingDirect(t *testing.T) {
	for _, n := range []int{2, 5, 16, 61} {
		for _, elems := range []int{0, 3, n, 10 * n} {
			boxed, err := collective.RingAllReduce(n, elems)
			if err != nil {
				t.Fatal(err)
			}
			cs := boxed.Compact()
			cls, err := collective.RingAllReduceClassed(n, elems)
			if err != nil {
				t.Fatal(err)
			}
			oWant, err := RunOpticalCompact(cs, DefaultOpticalOptions())
			if err != nil {
				t.Fatal(err)
			}
			oGot, err := RunOpticalClassed(cls, DefaultOpticalOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(oGot, oWant) {
				t.Fatalf("n=%d elems=%d: classed ring optical diverges", n, elems)
			}
			eOpts := ElectricalOptions{Params: electrical.DefaultParams()}
			eWant, err := RunElectricalCompact(cs, eOpts)
			if err != nil {
				t.Fatal(err)
			}
			eGot, err := RunElectricalClassed(cls, eOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(eGot, eWant) {
				t.Fatalf("n=%d elems=%d: classed ring electrical diverges", n, elems)
			}
			cls.Release()
			cs.Release()
		}
	}
}
