package runner

import (
	"reflect"
	"testing"

	"wrht/internal/electrical"
	"wrht/internal/obs"
)

// TestObservedPricingBitIdentical: attaching a flight recorder to the classed
// runners changes nothing about the priced numbers — recording is
// write-only — and the recorder comes back with per-step spans, wavelength
// samples, and run counters for every schedule priced.
func TestObservedPricingBitIdentical(t *testing.T) {
	for _, s := range classedGoldenCases(t) {
		cs := s.Compact()
		cls := cs.Classes()

		optOpts := DefaultOpticalOptions()
		rec := obs.New()
		want, errWant := RunOpticalClassed(cls, optOpts)
		got, errGot := RunOpticalClassedObserved(cls, optOpts, rec, "price optical "+s.Algorithm)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("%s: optical error divergence: plain=%v observed=%v", s.Algorithm, errWant, errGot)
		}
		if errWant == nil {
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: observed optical result diverges\n got %+v\nwant %+v", s.Algorithm, got, want)
			}
			snap := rec.Snapshot()
			if snap.Spans != cls.NumSteps() {
				t.Fatalf("%s: recorded %d optical step spans, want %d", s.Algorithm, snap.Spans, cls.NumSteps())
			}
			if snap.Samples != cls.NumSteps() {
				t.Fatalf("%s: recorded %d λ-width samples, want %d", s.Algorithm, snap.Samples, cls.NumSteps())
			}
			if n := rec.Counter("pricer.optical.runs"); n != 1 {
				t.Fatalf("%s: pricer.optical.runs = %d, want 1", s.Algorithm, n)
			}
			sym := rec.Counter("pricer.optical.steps.symmetric")
			mat := rec.Counter("pricer.optical.steps.materialized")
			if int(sym+mat) != cls.NumSteps() {
				t.Fatalf("%s: symmetric %d + materialized %d != steps %d",
					s.Algorithm, sym, mat, cls.NumSteps())
			}
			if rec.FloatCounter("pricer.optical.lambda_seconds") < 0 {
				t.Fatalf("%s: negative λ·seconds", s.Algorithm)
			}
		}

		elecOpts := ElectricalOptions{Params: electrical.DefaultParams()}
		erec := obs.New()
		ewant, errWant := RunElectricalClassed(cls, elecOpts)
		egot, errGot := RunElectricalClassedObserved(cls, elecOpts, erec, "price electrical "+s.Algorithm)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("%s: electrical error divergence: plain=%v observed=%v", s.Algorithm, errWant, errGot)
		}
		if errWant == nil {
			if !reflect.DeepEqual(egot, ewant) {
				t.Fatalf("%s: observed electrical result diverges\n got %+v\nwant %+v", s.Algorithm, egot, ewant)
			}
			esnap := erec.Snapshot()
			if esnap.Spans != cls.NumSteps() {
				t.Fatalf("%s: recorded %d electrical step spans, want %d", s.Algorithm, esnap.Spans, cls.NumSteps())
			}
			classed := erec.Counter("pricer.electrical.steps.classed")
			exact := erec.Counter("pricer.electrical.steps.exact")
			if int(classed+exact) != cls.NumSteps() {
				t.Fatalf("%s: classed %d + exact %d != steps %d",
					s.Algorithm, classed, exact, cls.NumSteps())
			}
		}

		cls.Release()
		cs.Release()
	}
}

// TestObservedNilRecorderIdentical: the Observed entry points with a nil
// recorder are exactly the plain entry points.
func TestObservedNilRecorderIdentical(t *testing.T) {
	for _, s := range goldenSchedules(t) {
		cs := s.Compact()
		cls := cs.Classes()
		opts := DefaultOpticalOptions()
		want, err1 := RunOpticalClassed(cls, opts)
		got, err2 := RunOpticalClassedObserved(cls, opts, nil, "")
		if (err1 == nil) != (err2 == nil) || (err1 == nil && !reflect.DeepEqual(got, want)) {
			t.Fatalf("%s: nil-recorder observed path diverges", s.Algorithm)
		}
		cls.Release()
		cs.Release()
	}
}
