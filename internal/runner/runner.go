// Package runner executes collective schedules against the optical and
// electrical substrates, producing timing results, and replays optical
// schedules through the reservation fabric to certify that the wavelength
// assignments are physically realizable. It is the glue between algorithm
// (internal/collective, internal/core) and substrate (internal/optical,
// internal/electrical); every number in EXPERIMENTS.md comes out of this
// package.
package runner

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/electrical"
	"wrht/internal/optical"
	"wrht/internal/ring"
	"wrht/internal/wdm"
)

// Result is the timing outcome of running one schedule on one substrate.
type Result struct {
	Algorithm string
	Substrate string
	// TotalSec is the end-to-end communication time.
	TotalSec float64
	// StepSec holds per-step durations (len == schedule steps).
	StepSec []float64
	// MaxWavelengths is the largest number of wavelengths lit in any round
	// (optical only).
	MaxWavelengths int
	// ExtraRounds counts steps that had to be split because their demand
	// exceeded the wavelength budget (optical only; 0 for Wrht by design).
	ExtraRounds int
}

// OpticalOptions configures optical execution.
type OpticalOptions struct {
	Params optical.Params
	// Assigner is the wavelength-assignment heuristic (paper §2: First Fit
	// or Best Fit).
	Assigner wdm.Policy
	// DefaultWidth applies to transfers whose Width hint is zero: 1
	// reproduces the paper's single-wavelength baselines (O-Ring); set it to
	// Params.Wavelengths for fully striped variants.
	DefaultWidth int
	// BytesPerElem converts schedule regions (elements) to bytes; 0 means 4
	// (FP32 gradients).
	BytesPerElem int
	// ValidateFabric additionally replays every reservation through the
	// event-level fabric, failing on any (link, wavelength, time) conflict.
	ValidateFabric bool
}

// DefaultOpticalOptions returns TeraRack defaults with First-Fit assignment
// and paper-faithful width-1 fallback.
func DefaultOpticalOptions() OpticalOptions {
	return OpticalOptions{
		Params:       optical.DefaultParams(),
		Assigner:     wdm.FirstFit,
		DefaultWidth: 1,
		BytesPerElem: 4,
	}
}

// RunOptical prices the schedule on the WDM ring.
func RunOptical(s *collective.Schedule, opts OpticalOptions) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 {
		return Result{}, fmt.Errorf("runner: BytesPerElem %d", opts.BytesPerElem)
	}
	if opts.DefaultWidth < 0 {
		return Result{}, fmt.Errorf("runner: DefaultWidth %d", opts.DefaultWidth)
	}
	if opts.DefaultWidth == 0 {
		opts.DefaultWidth = 1
	}
	topo, err := ring.New(s.N)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Algorithm: s.Algorithm,
		Substrate: fmt.Sprintf("optical-ring(w=%d)", opts.Params.Wavelengths),
		StepSec:   make([]float64, 0, len(s.Steps)),
	}
	var fabric *optical.Fabric
	if opts.ValidateFabric {
		fabric, err = optical.NewFabric(topo, opts.Params)
		if err != nil {
			return Result{}, err
		}
	}
	now := 0.0
	for si, st := range s.Steps {
		specs := make([]optical.TransferSpec, 0, len(st.Transfers))
		for _, tr := range st.Transfers {
			arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
			if !tr.Routed {
				arc = topo.ShortestArc(tr.Src, tr.Dst)
			}
			width := tr.Width
			if width == 0 {
				width = opts.DefaultWidth
			}
			specs = append(specs, optical.TransferSpec{
				Arc:   arc,
				Bytes: int64(tr.Region.Len) * int64(opts.BytesPerElem),
				Width: width,
			})
		}
		sr, err := optical.StepCost(topo, opts.Params, specs, opts.Assigner)
		if err != nil {
			return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, st.Label, err)
		}
		res.StepSec = append(res.StepSec, sr.Duration)
		res.TotalSec += sr.Duration
		if sr.WavelengthsUsed > res.MaxWavelengths {
			res.MaxWavelengths = sr.WavelengthsUsed
		}
		if sr.Rounds > 1 {
			res.ExtraRounds += sr.Rounds - 1
		}
		if fabric != nil {
			if err := replayStep(topo, opts.Params, fabric, specs, sr, now); err != nil {
				return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, st.Label, err)
			}
		}
		now += sr.Duration
	}
	return res, nil
}

// RunOpticalCompact is RunOptical on the columnar schedule representation:
// identical numbers (golden tests enforce bit equality with RunOptical), but
// the per-step transfer specs, the wavelength-assignment workspace, and the
// fabric-replay scratch are all reused across steps, so pricing allocates
// per step result, not per transfer.
func RunOpticalCompact(cs *collective.CompactSchedule, opts OpticalOptions) (Result, error) {
	if err := cs.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 {
		return Result{}, fmt.Errorf("runner: BytesPerElem %d", opts.BytesPerElem)
	}
	if opts.DefaultWidth < 0 {
		return Result{}, fmt.Errorf("runner: DefaultWidth %d", opts.DefaultWidth)
	}
	if opts.DefaultWidth == 0 {
		opts.DefaultWidth = 1
	}
	topo, err := ring.New(cs.N)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Algorithm: cs.Algorithm,
		Substrate: fmt.Sprintf("optical-ring(w=%d)", opts.Params.Wavelengths),
		StepSec:   make([]float64, 0, cs.NumSteps()),
	}
	var fabric *optical.Fabric
	if opts.ValidateFabric {
		fabric, err = optical.NewFabric(topo, opts.Params)
		if err != nil {
			return Result{}, err
		}
	}
	pricer, err := optical.NewStepPricer(topo, opts.Params, opts.Assigner)
	if err != nil {
		return Result{}, err
	}
	var specs, active []optical.TransferSpec
	now := 0.0
	for si := 0; si < cs.NumSteps(); si++ {
		lo, hi := cs.StepBounds(si)
		specs = specs[:0]
		for i := lo; i < hi; i++ {
			tr := cs.Transfer(i)
			arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
			if !tr.Routed {
				arc = topo.ShortestArc(tr.Src, tr.Dst)
			}
			width := tr.Width
			if width == 0 {
				width = opts.DefaultWidth
			}
			specs = append(specs, optical.TransferSpec{
				Arc:   arc,
				Bytes: int64(tr.Region.Len) * int64(opts.BytesPerElem),
				Width: width,
			})
		}
		sr, err := pricer.Price(specs)
		if err != nil {
			return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, cs.StepLabel(si), err)
		}
		res.StepSec = append(res.StepSec, sr.Duration)
		res.TotalSec += sr.Duration
		if sr.WavelengthsUsed > res.MaxWavelengths {
			res.MaxWavelengths = sr.WavelengthsUsed
		}
		if sr.Rounds > 1 {
			res.ExtraRounds += sr.Rounds - 1
		}
		if fabric != nil {
			active = activeSpecs(opts.Params, specs, active[:0])
			if err := replayRounds(topo, opts.Params, fabric, active, sr, now); err != nil {
				return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, cs.StepLabel(si), err)
			}
		}
		now += sr.Duration
	}
	return res, nil
}

// activeSpecs reconstructs the active set exactly as StepCost filtered it,
// appending to buf.
func activeSpecs(p optical.Params, specs []optical.TransferSpec, buf []optical.TransferSpec) []optical.TransferSpec {
	for _, tr := range specs {
		if tr.Bytes == 0 {
			continue
		}
		if tr.Width < 1 {
			tr.Width = 1
		}
		if tr.Width > p.Wavelengths {
			tr.Width = p.Wavelengths
		}
		buf = append(buf, tr)
	}
	return buf
}

// replayRounds books the step's active transfers on the fabric, round by
// round, mirroring the timing StepCost charged.
func replayRounds(topo ring.Topology, p optical.Params, fabric *optical.Fabric,
	active []optical.TransferSpec, sr optical.StepResult, stepStart float64) error {
	start := stepStart + p.StepOverheadSec()
	for _, rd := range sr.Assignments {
		longest := 0.0
		for i, di := range rd.Demands {
			tr := active[di]
			d := p.TransferSec(tr.Bytes, tr.Width, topo.Hops(tr.Arc))
			if err := fabric.Reserve(tr.Arc, rd.Assignment.Stripes[i], start, d); err != nil {
				return err
			}
			if d > longest {
				longest = d
			}
		}
		start += longest
	}
	return nil
}

// replayStep books every transfer of the step on the fabric, round by round,
// mirroring the timing StepCost charged.
func replayStep(topo ring.Topology, p optical.Params, fabric *optical.Fabric,
	specs []optical.TransferSpec, sr optical.StepResult, stepStart float64) error {
	// Reconstruct the active set exactly as StepCost filtered it.
	active := activeSpecs(p, specs, make([]optical.TransferSpec, 0, len(specs)))
	return replayRounds(topo, p, fabric, active, sr, stepStart)
}

// RunElectricalCompact is RunElectrical on the columnar schedule: identical
// numbers, with the flow buffer and the fluid-model solver scratch reused
// across steps.
func RunElectricalCompact(cs *collective.CompactSchedule, opts ElectricalOptions) (Result, error) {
	if err := cs.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 {
		return Result{}, fmt.Errorf("runner: BytesPerElem %d", opts.BytesPerElem)
	}
	nw := opts.Network
	if nw == nil {
		var err error
		nw, err = electrical.NewSwitchedCluster(cs.N, opts.Params.LinkGbps)
		if err != nil {
			return Result{}, err
		}
	}
	if nw.NumNodes() != cs.N {
		return Result{}, fmt.Errorf("runner: network has %d hosts, schedule needs %d",
			nw.NumNodes(), cs.N)
	}
	res := Result{
		Algorithm: cs.Algorithm,
		Substrate: nw.Name(),
		StepSec:   make([]float64, 0, cs.NumSteps()),
	}
	solver := electrical.NewSolver(nw)
	var flows []electrical.Flow
	for si := 0; si < cs.NumSteps(); si++ {
		lo, hi := cs.StepBounds(si)
		flows = flows[:0]
		for i := lo; i < hi; i++ {
			tr := cs.Transfer(i)
			flows = append(flows, electrical.Flow{
				Src: tr.Src, Dst: tr.Dst,
				Bits: float64(tr.Region.Len) * float64(opts.BytesPerElem) * 8,
			})
		}
		d, err := solver.StepCost(opts.Params, flows)
		if err != nil {
			return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, cs.StepLabel(si), err)
		}
		res.StepSec = append(res.StepSec, d)
		res.TotalSec += d
	}
	return res, nil
}

// ElectricalOptions configures electrical execution.
type ElectricalOptions struct {
	Params electrical.Params
	// Network is the topology to run on; its host count must match the
	// schedule. Nil selects a non-blocking switched cluster.
	Network *electrical.Network
	// BytesPerElem converts schedule regions (elements) to bytes; 0 means 4.
	BytesPerElem int
}

// RunElectrical prices the schedule on the electrical substrate.
func RunElectrical(s *collective.Schedule, opts ElectricalOptions) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 {
		return Result{}, fmt.Errorf("runner: BytesPerElem %d", opts.BytesPerElem)
	}
	nw := opts.Network
	if nw == nil {
		var err error
		nw, err = electrical.NewSwitchedCluster(s.N, opts.Params.LinkGbps)
		if err != nil {
			return Result{}, err
		}
	}
	if nw.NumNodes() != s.N {
		return Result{}, fmt.Errorf("runner: network has %d hosts, schedule needs %d",
			nw.NumNodes(), s.N)
	}
	res := Result{
		Algorithm: s.Algorithm,
		Substrate: nw.Name(),
		StepSec:   make([]float64, 0, len(s.Steps)),
	}
	for si, st := range s.Steps {
		flows := make([]electrical.Flow, 0, len(st.Transfers))
		for _, tr := range st.Transfers {
			flows = append(flows, electrical.Flow{
				Src: tr.Src, Dst: tr.Dst,
				Bits: float64(tr.Region.Len) * float64(opts.BytesPerElem) * 8,
			})
		}
		d, err := nw.StepCost(opts.Params, flows)
		if err != nil {
			return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, st.Label, err)
		}
		res.StepSec = append(res.StepSec, d)
		res.TotalSec += d
	}
	return res, nil
}
