package runner

import (
	"math"
	"testing"

	"wrht/internal/collective"
	"wrht/internal/core"
	"wrht/internal/electrical"
	"wrht/internal/tensor"
)

func almost(a, b, rel float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
}

func TestRunOpticalORingHandComputed(t *testing.T) {
	// O-Ring at n=8, 80 MB: 14 steps, each a 1-hop neighbor chunk on one
	// wavelength.
	const n, elems = 8, 20 << 20 // 20 Mi elements * 4 B = 80 MB
	s, err := collective.RingAllReduce(n, elems)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOpticalOptions()
	opts.ValidateFabric = true
	res, err := RunOptical(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := opts.Params
	chunkBytes := int64(elems/n) * 4
	want := float64(2*(n-1)) * (p.StepOverheadSec() + p.TransferSec(chunkBytes, 1, 1))
	if !almost(res.TotalSec, want, 1e-9) {
		t.Fatalf("O-Ring total %v, want %v", res.TotalSec, want)
	}
	if res.MaxWavelengths != 1 {
		t.Fatalf("O-Ring used %d wavelengths, want 1", res.MaxWavelengths)
	}
	if res.ExtraRounds != 0 {
		t.Fatalf("O-Ring split rounds: %d", res.ExtraRounds)
	}
}

func TestRunOpticalWrhtMatchesPrediction(t *testing.T) {
	// The planner's analytic model and the substrate must agree within 1%.
	for _, cse := range []struct{ n, w, m int }{
		{128, 64, 3},
		{128, 64, 129},
		{256, 64, 5},
		{1024, 64, 3},
		{100, 16, 7},
	} {
		m := cse.m
		if m > cse.n {
			m = cse.n
		}
		plan, err := core.BuildPlan(cse.n, cse.w, core.Options{M: m, Policy: core.A2AFormula, Striping: true})
		if err != nil {
			t.Fatal(err)
		}
		const elems = 4 << 20 // 16 MB
		s, err := plan.Schedule(elems)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOpticalOptions()
		opts.Params.Wavelengths = cse.w
		opts.ValidateFabric = true
		res, err := RunOptical(s, opts)
		if err != nil {
			t.Fatalf("n=%d m=%d: %v", cse.n, m, err)
		}
		cost := core.CostParams{
			GbpsPerWavelength: opts.Params.GbpsPerWavelength,
			PerStepSec:        opts.Params.StepOverheadSec() + opts.Params.PerTransferOverheadSec(),
			PropSecPerHop:     opts.Params.PropagationNsPerHop * 1e-9,
		}
		predicted := plan.PredictTime(cost, int64(elems)*4)
		if !almost(res.TotalSec, predicted, 0.01) {
			t.Errorf("n=%d w=%d m=%d: simulated %.6f s vs predicted %.6f s (%.2f%% off)",
				cse.n, cse.w, m, res.TotalSec, predicted,
				100*math.Abs(res.TotalSec-predicted)/predicted)
		}
		if res.MaxWavelengths > cse.w {
			t.Errorf("n=%d m=%d: used %d wavelengths, budget %d", cse.n, m, res.MaxWavelengths, cse.w)
		}
	}
}

func TestRunOpticalWrhtNoExtraRoundsOnTreeSteps(t *testing.T) {
	// Wrht's tree steps must fit the budget in one round (the paper's
	// wavelength analysis); only the all-to-all step may ever split under
	// First-Fit slack, and with the formula policy at these shapes it fits.
	plan, err := core.BuildPlan(512, 64, core.Options{M: 9, Policy: core.A2AFormula, Striping: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := plan.Schedule(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOpticalOptions()
	opts.ValidateFabric = true
	res, err := RunOptical(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraRounds != 0 {
		t.Fatalf("Wrht split %d extra rounds", res.ExtraRounds)
	}
}

func TestRunElectricalERingHandComputed(t *testing.T) {
	const n, elems = 16, 1 << 20
	s, err := collective.RingAllReduce(n, elems)
	if err != nil {
		t.Fatal(err)
	}
	p := electrical.DefaultParams()
	res, err := RunElectrical(s, ElectricalOptions{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	chunkBits := float64(elems/n) * 4 * 8
	want := float64(2*(n-1)) * (p.PerStepLatencySec + chunkBits/(p.LinkGbps*1e9))
	if !almost(res.TotalSec, want, 1e-6) {
		t.Fatalf("E-Ring total %v, want %v", res.TotalSec, want)
	}
}

func TestRunElectricalRDHandComputed(t *testing.T) {
	const n, elems = 16, 1 << 20
	s, err := collective.RecursiveDoubling(n, elems)
	if err != nil {
		t.Fatal(err)
	}
	p := electrical.DefaultParams()
	res, err := RunElectrical(s, ElectricalOptions{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	fullBits := float64(elems) * 4 * 8
	want := 4 * (p.PerStepLatencySec + fullBits/(p.LinkGbps*1e9))
	if !almost(res.TotalSec, want, 1e-6) {
		t.Fatalf("RD total %v, want %v", res.TotalSec, want)
	}
}

func TestRunElectricalNetworkMismatch(t *testing.T) {
	s, _ := collective.RingAllReduce(8, 64)
	nw, _ := electrical.NewSwitchedCluster(16, 100)
	if _, err := RunElectrical(s, ElectricalOptions{Params: electrical.DefaultParams(), Network: nw}); err == nil {
		t.Fatal("host-count mismatch accepted")
	}
}

func TestRunOpticalUnroutedUsesShortestPath(t *testing.T) {
	// An unrouted transfer from 0 to n-1 should take 1 hop (CCW), not n-1.
	s := &collective.Schedule{Algorithm: "probe", N: 8, Elems: 1024, Steps: []collective.Step{{
		Transfers: []collective.Transfer{{
			Src: 0, Dst: 7,
			Region: tensor.Region{Offset: 0, Len: 1024},
			Op:     collective.OpReduce,
		}},
	}}}
	opts := DefaultOpticalOptions()
	res, err := RunOptical(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := opts.Params
	want := p.StepOverheadSec() + p.TransferSec(4096, 1, 1)
	if !almost(res.TotalSec, want, 1e-9) {
		t.Fatalf("unrouted transfer total %v, want %v (1 hop)", res.TotalSec, want)
	}
}

func TestRunOpticalDefaultWidthStripes(t *testing.T) {
	// DefaultWidth = w turns O-Ring into its striped variant: 64x less
	// serialization per step.
	const n, elems = 8, 20 << 20
	s, _ := collective.RingAllReduce(n, elems)
	base := DefaultOpticalOptions()
	striped := DefaultOpticalOptions()
	striped.DefaultWidth = striped.Params.Wavelengths
	r1, err := RunOptical(s, base)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := RunOptical(s, striped)
	if err != nil {
		t.Fatal(err)
	}
	if r64.TotalSec >= r1.TotalSec {
		t.Fatalf("striping did not help: %v vs %v", r64.TotalSec, r1.TotalSec)
	}
	if r64.MaxWavelengths != 64 {
		t.Fatalf("striped ring lit %d wavelengths", r64.MaxWavelengths)
	}
}

func TestRunRejectsInvalidSchedule(t *testing.T) {
	bad := &collective.Schedule{Algorithm: "bad", N: 0, Elems: 4}
	if _, err := RunOptical(bad, DefaultOpticalOptions()); err == nil {
		t.Fatal("invalid schedule accepted by optical runner")
	}
	if _, err := RunElectrical(bad, ElectricalOptions{Params: electrical.DefaultParams()}); err == nil {
		t.Fatal("invalid schedule accepted by electrical runner")
	}
}

func TestFabricValidationCatchesNothingOnValidSchedules(t *testing.T) {
	// Smoke test over several algorithms with fabric replay enabled.
	builders := []func(n, elems int) (*collective.Schedule, error){
		collective.RingAllReduce,
		collective.RecursiveDoubling,
		collective.HalvingDoubling,
		collective.BinomialTree,
	}
	for _, b := range builders {
		s, err := b(16, 4096)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOpticalOptions()
		opts.ValidateFabric = true
		if _, err := RunOptical(s, opts); err != nil {
			t.Fatalf("%s: %v", s.Algorithm, err)
		}
	}
}
