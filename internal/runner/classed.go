package runner

import (
	"fmt"

	"wrht/internal/collective"
	"wrht/internal/electrical"
	"wrht/internal/obs"
	"wrht/internal/optical"
	"wrht/internal/ring"
	"wrht/internal/wdm"
)

// RunOpticalClassed is RunOpticalCompact on the symmetry-aware classed
// schedule form: steps carrying a verified rotational-symmetry certificate
// are priced from one representative per equivalence class (plus one orbit
// wavelength assignment, memoized by shape), turning the hot path from
// O(transfers) to O(classes) per step; steps without a certificate — and
// every step when the assigner is not First Fit or fabric replay is
// requested — are materialized and priced by the exact per-transfer path.
// Results are bit-identical to RunOpticalCompact on the materialized
// schedule (golden and property tests enforce this).
func RunOpticalClassed(cls *collective.ClassSchedule, opts OpticalOptions) (Result, error) {
	return RunOpticalClassedObserved(cls, opts, nil, "")
}

// RunOpticalClassedObserved is RunOpticalClassed with a flight recorder
// attached: each step is recorded as a span (duration, wavelengths,
// transfers, classes, rounds) on a per-run process named proc, plus a "λ
// used" counter track and symmetric-vs-materialized step counters. The
// recorder never influences pricing — results are bit-identical to the
// unobserved path — and a nil recorder costs one branch per step.
func RunOpticalClassedObserved(cls *collective.ClassSchedule, opts OpticalOptions, rec *obs.Recorder, proc string) (Result, error) {
	if err := cls.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 {
		return Result{}, fmt.Errorf("runner: BytesPerElem %d", opts.BytesPerElem)
	}
	if opts.DefaultWidth < 0 {
		return Result{}, fmt.Errorf("runner: DefaultWidth %d", opts.DefaultWidth)
	}
	if opts.DefaultWidth == 0 {
		opts.DefaultWidth = 1
	}
	topo, err := ring.New(cls.N)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Algorithm: cls.Algorithm,
		Substrate: fmt.Sprintf("optical-ring(w=%d)", opts.Params.Wavelengths),
		StepSec:   make([]float64, 0, cls.NumSteps()),
	}
	var fabric *optical.Fabric
	if opts.ValidateFabric {
		fabric, err = optical.NewFabric(topo, opts.Params)
		if err != nil {
			return Result{}, err
		}
	}
	pricer, err := optical.NewStepPricer(topo, opts.Params, opts.Assigner)
	if err != nil {
		return Result{}, err
	}
	var (
		specs, active []optical.TransferSpec
		orbit         []wdm.Demand
		classes       []optical.ClassSpec
	)
	stepTrack, widthTrack := obs.NoTrack, obs.NoTrack
	if rec.Enabled() {
		p := rec.Process(proc)
		stepTrack = rec.Track(p, "steps")
		widthTrack = rec.CounterTrack(p, "λ used")
	}
	now := 0.0
	for si := 0; si < cls.NumSteps(); si++ {
		var sr optical.StepResult
		priced := false
		if _, _, disjoint, _, sym := cls.Sym(si); sym && opts.Assigner == wdm.FirstFit && fabric == nil {
			classes = classes[:0]
			lo, hi := cls.ClassBounds(si)
			for i := lo; i < hi; i++ {
				c := cls.Class(i)
				width := int(c.Width)
				if width == 0 {
					width = opts.DefaultWidth
				}
				classes = append(classes, optical.ClassSpec{
					Bytes: int64(c.Len) * int64(opts.BytesPerElem),
					Width: width,
					Hops:  int(c.Hops),
					Count: int(c.Count),
				})
			}
			orbit = orbit[:0]
			olo, ohi := cls.OrbitBounds(si)
			for i := olo; i < ohi; i++ {
				src, dst, width, dir, routed := cls.OrbitAt(i)
				arc := ring.Arc{Src: src, Dst: dst, Dir: dir}
				if !routed {
					arc = topo.ShortestArc(src, dst)
				}
				if width == 0 {
					width = opts.DefaultWidth
				}
				orbit = append(orbit, wdm.Demand{Arc: arc, Width: width})
			}
			sr, priced, err = pricer.PriceSymmetric(orbit, classes, disjoint)
			if err != nil {
				return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, cls.StepLabel(si), err)
			}
		}
		if !priced {
			specs = specs[:0]
			cls.ForEachTransfer(si, func(tr collective.Transfer) {
				arc := ring.Arc{Src: tr.Src, Dst: tr.Dst, Dir: tr.Dir}
				if !tr.Routed {
					arc = topo.ShortestArc(tr.Src, tr.Dst)
				}
				width := tr.Width
				if width == 0 {
					width = opts.DefaultWidth
				}
				specs = append(specs, optical.TransferSpec{
					Arc:   arc,
					Bytes: int64(tr.Region.Len) * int64(opts.BytesPerElem),
					Width: width,
				})
			})
			sr, err = pricer.Price(specs)
			if err != nil {
				return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, cls.StepLabel(si), err)
			}
			if fabric != nil {
				active = activeSpecs(opts.Params, specs, active[:0])
				if err := replayRounds(topo, opts.Params, fabric, active, sr, now); err != nil {
					return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, cls.StepLabel(si), err)
				}
			}
		}
		res.StepSec = append(res.StepSec, sr.Duration)
		res.TotalSec += sr.Duration
		if sr.WavelengthsUsed > res.MaxWavelengths {
			res.MaxWavelengths = sr.WavelengthsUsed
		}
		if sr.Rounds > 1 {
			res.ExtraRounds += sr.Rounds - 1
		}
		if rec.Enabled() {
			nClasses := 0
			if priced {
				lo, hi := cls.ClassBounds(si)
				nClasses = hi - lo
			}
			rec.Span(stepTrack, cls.StepLabel(si), now, sr.Duration, obs.SpanArgs{
				Wavelengths: int64(sr.WavelengthsUsed),
				Transfers:   int64(cls.StepTransfers(si)),
				Classes:     int64(nClasses),
				Rounds:      int64(sr.Rounds),
			})
			rec.Sample(widthTrack, now, float64(sr.WavelengthsUsed))
			if priced {
				rec.Add("pricer.optical.steps.symmetric", 1)
			} else {
				rec.Add("pricer.optical.steps.materialized", 1)
			}
			rec.AddSeconds("pricer.optical.lambda_seconds", float64(sr.WavelengthsUsed)*sr.Duration)
		}
		now += sr.Duration
	}
	rec.Add("pricer.optical.runs", 1)
	return res, nil
}

// RunElectricalClassed is RunElectricalCompact on the classed schedule:
// steps certified as partial permutations on the default non-blocking
// cluster are priced through the class-level fluid solver (one
// representative flow per class, bit-identical by the symmetry of max-min
// fairness); everything else — including every step on a custom Network —
// is materialized and priced by the exact per-flow path.
func RunElectricalClassed(cls *collective.ClassSchedule, opts ElectricalOptions) (Result, error) {
	return RunElectricalClassedObserved(cls, opts, nil, "")
}

// RunElectricalClassedObserved is RunElectricalClassed with a flight
// recorder attached (see RunOpticalClassedObserved for the contract): each
// step records a span on process proc plus classed-vs-exact flow-solver
// counters. A nil recorder costs one branch per step.
func RunElectricalClassedObserved(cls *collective.ClassSchedule, opts ElectricalOptions, rec *obs.Recorder, proc string) (Result, error) {
	if err := cls.Validate(); err != nil {
		return Result{}, err
	}
	if opts.BytesPerElem == 0 {
		opts.BytesPerElem = 4
	}
	if opts.BytesPerElem < 1 {
		return Result{}, fmt.Errorf("runner: BytesPerElem %d", opts.BytesPerElem)
	}
	defaultNet := opts.Network == nil
	nw := opts.Network
	if defaultNet {
		var err error
		nw, err = electrical.NewSwitchedCluster(cls.N, opts.Params.LinkGbps)
		if err != nil {
			return Result{}, err
		}
	}
	if nw.NumNodes() != cls.N {
		return Result{}, fmt.Errorf("runner: network has %d hosts, schedule needs %d",
			nw.NumNodes(), cls.N)
	}
	res := Result{
		Algorithm: cls.Algorithm,
		Substrate: nw.Name(),
		StepSec:   make([]float64, 0, cls.NumSteps()),
	}
	solver := electrical.NewSolver(nw)
	var classSolver *electrical.ClassSolver
	var flows []electrical.Flow
	var bits []float64
	stepTrack := obs.NoTrack
	if rec.Enabled() {
		stepTrack = rec.Track(rec.Process(proc), "steps")
	}
	now := 0.0
	for si := 0; si < cls.NumSteps(); si++ {
		var d float64
		var err error
		classed := false
		if _, _, _, perm, sym := cls.Sym(si); sym && perm && defaultNet {
			classed = true
			bits = bits[:0]
			lo, hi := cls.ClassBounds(si)
			for i := lo; i < hi; i++ {
				c := cls.Class(i)
				if c.Len == 0 {
					continue
				}
				bits = append(bits, float64(c.Len)*float64(opts.BytesPerElem)*8)
			}
			if classSolver == nil {
				classSolver, err = electrical.NewClassSolver(opts.Params.LinkGbps)
				if err != nil {
					return Result{}, err
				}
			}
			d, err = classSolver.StepCost(opts.Params, bits)
		} else {
			flows = flows[:0]
			cls.ForEachTransfer(si, func(tr collective.Transfer) {
				flows = append(flows, electrical.Flow{
					Src: tr.Src, Dst: tr.Dst,
					Bits: float64(tr.Region.Len) * float64(opts.BytesPerElem) * 8,
				})
			})
			d, err = solver.StepCost(opts.Params, flows)
		}
		if err != nil {
			return Result{}, fmt.Errorf("runner: step %d (%s): %w", si, cls.StepLabel(si), err)
		}
		res.StepSec = append(res.StepSec, d)
		res.TotalSec += d
		if rec.Enabled() {
			nClasses := 0
			if classed {
				lo, hi := cls.ClassBounds(si)
				nClasses = hi - lo
			}
			rec.Span(stepTrack, cls.StepLabel(si), now, d, obs.SpanArgs{
				Transfers: int64(cls.StepTransfers(si)),
				Classes:   int64(nClasses),
			})
			if classed {
				rec.Add("pricer.electrical.steps.classed", 1)
			} else {
				rec.Add("pricer.electrical.steps.exact", 1)
			}
		}
		now += d
	}
	rec.Add("pricer.electrical.runs", 1)
	return res, nil
}
