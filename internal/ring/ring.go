// Package ring models the bidirectional optical ring topology used by
// TeraRack-style interconnects: N nodes connected sequentially, with one
// waveguide per direction. Transfers occupy directed arcs of the ring; two
// transfers conflict (must use different wavelengths) exactly when their arcs
// share a directed link.
//
// The package also provides the contiguous-group partitioning and
// representative ("intermediate node") selection that the Wrht scheme uses.
package ring

import (
	"fmt"
)

// Direction of travel around the ring. CW ("clockwise") moves from node i to
// node (i+1) mod N; CCW moves from node i to node (i-1+N) mod N.
type Direction int8

const (
	CW Direction = iota
	CCW
)

func (d Direction) String() string {
	switch d {
	case CW:
		return "cw"
	case CCW:
		return "ccw"
	default:
		return fmt.Sprintf("Direction(%d)", int8(d))
	}
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	if d == CW {
		return CCW
	}
	return CW
}

// Topology is an N-node ring. The zero value is invalid; use New.
type Topology struct {
	n int
}

// New returns an N-node ring topology. N must be at least 2.
func New(n int) (Topology, error) {
	if n < 2 {
		return Topology{}, fmt.Errorf("ring: need at least 2 nodes, got %d", n)
	}
	return Topology{n: n}, nil
}

// MustNew is New that panics on error, for tests and fixed-size callers.
func MustNew(n int) Topology {
	t, err := New(n)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of nodes.
func (t Topology) N() int { return t.n }

// Contains reports whether node is a valid node index.
func (t Topology) Contains(node int) bool { return node >= 0 && node < t.n }

// Dist returns the number of hops from src to dst travelling in direction d.
// Dist(x, x, d) == 0.
func (t Topology) Dist(src, dst int, d Direction) int {
	t.check(src)
	t.check(dst)
	if d == CW {
		return ((dst-src)%t.n + t.n) % t.n
	}
	return ((src-dst)%t.n + t.n) % t.n
}

// ShortestDir returns the direction with fewer hops from src to dst,
// preferring CW on ties. src must differ from dst.
func (t Topology) ShortestDir(src, dst int) Direction {
	if src == dst {
		panic(fmt.Sprintf("ring: ShortestDir(%d, %d) on identical nodes", src, dst))
	}
	if t.Dist(src, dst, CW) <= t.Dist(src, dst, CCW) {
		return CW
	}
	return CCW
}

func (t Topology) check(node int) {
	if !t.Contains(node) {
		panic(fmt.Sprintf("ring: node %d out of range [0,%d)", node, t.n))
	}
}

// Link is a directed waveguide segment leaving node From in direction Dir:
// CW link i connects i -> i+1; CCW link i connects i -> i-1.
type Link struct {
	From int
	Dir  Direction
}

// Index maps a link to a dense [0, 2N) index: CW links occupy [0, N),
// CCW links occupy [N, 2N).
func (t Topology) Index(l Link) int {
	t.check(l.From)
	if l.Dir == CW {
		return l.From
	}
	return t.n + l.From
}

// NumLinks returns the total number of directed links (2N).
func (t Topology) NumLinks() int { return 2 * t.n }

// Arc is a directed transfer path on the ring from Src to Dst travelling Dir.
// Src must differ from Dst for a non-empty arc.
type Arc struct {
	Src, Dst int
	Dir      Direction
}

func (a Arc) String() string {
	return fmt.Sprintf("%d-%s->%d", a.Src, a.Dir, a.Dst)
}

// ShortestArc returns the arc from src to dst using the shortest direction
// (CW preferred on ties).
func (t Topology) ShortestArc(src, dst int) Arc {
	return Arc{Src: src, Dst: dst, Dir: t.ShortestDir(src, dst)}
}

// Hops returns the number of links the arc traverses.
func (t Topology) Hops(a Arc) int { return t.Dist(a.Src, a.Dst, a.Dir) }

// Links returns the directed links the arc occupies, in traversal order.
func (t Topology) Links(a Arc) []Link {
	h := t.Hops(a)
	out := make([]Link, 0, h)
	cur := a.Src
	for i := 0; i < h; i++ {
		out = append(out, Link{From: cur, Dir: a.Dir})
		cur = t.Step(cur, a.Dir)
	}
	return out
}

// Step returns the neighbor of node in direction d.
func (t Topology) Step(node int, d Direction) int {
	t.check(node)
	if d == CW {
		return (node + 1) % t.n
	}
	return (node - 1 + t.n) % t.n
}

// VisitLinks calls fn with the dense index of every link the arc occupies.
// It avoids allocating the slice that Links returns.
func (t Topology) VisitLinks(a Arc, fn func(linkIndex int)) {
	h := t.Hops(a)
	cur := a.Src
	for i := 0; i < h; i++ {
		fn(t.Index(Link{From: cur, Dir: a.Dir}))
		cur = t.Step(cur, a.Dir)
	}
}

// AppendArcLinks appends the dense index of every link the arc occupies to
// buf and returns the grown slice — the allocation-free form hot paths use
// (a caller-owned arena instead of VisitLinks' closure).
func (t Topology) AppendArcLinks(a Arc, buf []int) []int {
	h := t.Hops(a)
	cur := a.Src
	for i := 0; i < h; i++ {
		buf = append(buf, t.Index(Link{From: cur, Dir: a.Dir}))
		cur = t.Step(cur, a.Dir)
	}
	return buf
}

// Conflict reports whether two arcs share at least one directed link.
func (t Topology) Conflict(a, b Arc) bool {
	if a.Dir != b.Dir {
		return false // opposite waveguides never conflict
	}
	// Arc a covers links starting at positions [Src, Src+hops) walking Dir.
	ha, hb := t.Hops(a), t.Hops(b)
	if ha == 0 || hb == 0 {
		return false
	}
	// Normalize to CW offsets of the link start nodes.
	var sa, sb int
	if a.Dir == CW {
		sa, sb = a.Src, b.Src
	} else {
		// CCW link leaving node x occupies "position" x; walking CCW visits
		// positions x, x-1, ... So convert to a CW-style interval by
		// reflecting: interval of length h starting at (x-h+1).
		sa = ((a.Src-ha+1)%t.n + t.n) % t.n
		sb = ((b.Src-hb+1)%t.n + t.n) % t.n
	}
	// Two circular intervals [sa, sa+ha), [sb, sb+hb) intersect?
	return circularIntervalsIntersect(sa, ha, sb, hb, t.n)
}

func circularIntervalsIntersect(s1, l1, s2, l2, n int) bool {
	if l1 >= n || l2 >= n {
		return true
	}
	d := ((s2-s1)%n + n) % n
	// interval 2 starts d positions after interval 1 (mod n)
	return d < l1 || n-d < l2
}

// Group is a contiguous run of ring positions with a designated
// representative (the "intermediate node" in the paper).
type Group struct {
	Members []int // in ring order
	Rep     int   // representative node id (an element of Members)
}

// RepIndex returns the index of the representative inside Members.
func (g Group) RepIndex() int {
	for i, m := range g.Members {
		if m == g.Rep {
			return i
		}
	}
	return -1
}

// Middle returns the middle element of a non-empty slice, favoring the lower
// index for even lengths — the paper's "intermediate node".
func Middle(members []int) int {
	if len(members) == 0 {
		panic("ring: Middle of empty group")
	}
	return members[(len(members)-1)/2]
}

// PartitionContiguous splits members (assumed in ring order) into contiguous
// groups of at most m, assigning each group's middle element as
// representative. The final group may be smaller. m must be >= 2 unless
// len(members) == 1.
func PartitionContiguous(members []int, m int) []Group {
	if m < 2 {
		panic(fmt.Sprintf("ring: group size m=%d (need >= 2)", m))
	}
	if len(members) == 0 {
		return nil
	}
	groups := make([]Group, 0, (len(members)+m-1)/m)
	for off := 0; off < len(members); off += m {
		end := off + m
		if end > len(members) {
			end = len(members)
		}
		g := Group{Members: members[off:end:end]}
		g.Rep = Middle(g.Members)
		groups = append(groups, g)
	}
	return groups
}

// AllNodes returns [0, 1, ..., N-1].
func (t Topology) AllNodes() []int {
	out := make([]int, t.n)
	for i := range out {
		out[i] = i
	}
	return out
}
