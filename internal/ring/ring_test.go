package ring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Fatal("New(1) should fail")
	}
	if _, err := New(0); err == nil {
		t.Fatal("New(0) should fail")
	}
	top, err := New(2)
	if err != nil || top.N() != 2 {
		t.Fatalf("New(2) = %v, %v", top, err)
	}
}

func TestDist(t *testing.T) {
	top := MustNew(8)
	cases := []struct {
		src, dst int
		dir      Direction
		want     int
	}{
		{0, 3, CW, 3},
		{0, 3, CCW, 5},
		{3, 0, CW, 5},
		{3, 0, CCW, 3},
		{5, 5, CW, 0},
		{5, 5, CCW, 0},
		{7, 0, CW, 1},
		{0, 7, CCW, 1},
	}
	for _, c := range cases {
		if got := top.Dist(c.src, c.dst, c.dir); got != c.want {
			t.Errorf("Dist(%d,%d,%v) = %d, want %d", c.src, c.dst, c.dir, got, c.want)
		}
	}
}

func TestDistSumsToN(t *testing.T) {
	prop := func(nRaw uint8, a, b uint16) bool {
		n := int(nRaw)%62 + 2
		top := MustNew(n)
		src, dst := int(a)%n, int(b)%n
		if src == dst {
			return top.Dist(src, dst, CW) == 0 && top.Dist(src, dst, CCW) == 0
		}
		return top.Dist(src, dst, CW)+top.Dist(src, dst, CCW) == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShortestDir(t *testing.T) {
	top := MustNew(10)
	if d := top.ShortestDir(0, 3); d != CW {
		t.Fatalf("ShortestDir(0,3) = %v", d)
	}
	if d := top.ShortestDir(0, 8); d != CCW {
		t.Fatalf("ShortestDir(0,8) = %v", d)
	}
	// Tie at distance 5 prefers CW.
	if d := top.ShortestDir(0, 5); d != CW {
		t.Fatalf("ShortestDir(0,5) = %v, want CW on tie", d)
	}
}

func TestStepInverse(t *testing.T) {
	top := MustNew(9)
	for node := 0; node < 9; node++ {
		if got := top.Step(top.Step(node, CW), CCW); got != node {
			t.Fatalf("Step CW then CCW from %d gives %d", node, got)
		}
	}
}

func TestLinksWalkArc(t *testing.T) {
	top := MustNew(6)
	a := Arc{Src: 4, Dst: 1, Dir: CW} // 4->5->0->1
	links := top.Links(a)
	want := []Link{{4, CW}, {5, CW}, {0, CW}}
	if len(links) != len(want) {
		t.Fatalf("Links(%v) = %v", a, links)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Fatalf("Links(%v)[%d] = %v, want %v", a, i, links[i], want[i])
		}
	}

	b := Arc{Src: 1, Dst: 4, Dir: CCW} // 1->0->5->4
	wantB := []Link{{1, CCW}, {0, CCW}, {5, CCW}}
	linksB := top.Links(b)
	for i := range wantB {
		if linksB[i] != wantB[i] {
			t.Fatalf("Links(%v)[%d] = %v, want %v", b, i, linksB[i], wantB[i])
		}
	}
}

func TestIndexDense(t *testing.T) {
	top := MustNew(5)
	seen := make(map[int]bool)
	for node := 0; node < 5; node++ {
		for _, d := range []Direction{CW, CCW} {
			idx := top.Index(Link{From: node, Dir: d})
			if idx < 0 || idx >= top.NumLinks() {
				t.Fatalf("Index out of range: %d", idx)
			}
			if seen[idx] {
				t.Fatalf("Index collision at %d", idx)
			}
			seen[idx] = true
		}
	}
	if len(seen) != top.NumLinks() {
		t.Fatalf("expected %d distinct indices, got %d", top.NumLinks(), len(seen))
	}
}

// conflictBrute computes arc conflict via explicit link sets.
func conflictBrute(top Topology, a, b Arc) bool {
	set := make(map[int]bool)
	top.VisitLinks(a, func(i int) { set[i] = true })
	hit := false
	top.VisitLinks(b, func(i int) {
		if set[i] {
			hit = true
		}
	})
	return hit
}

func TestConflictMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(14) + 2
		top := MustNew(n)
		randArc := func() Arc {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			for dst == src {
				dst = rng.Intn(n)
			}
			d := CW
			if rng.Intn(2) == 1 {
				d = CCW
			}
			return Arc{Src: src, Dst: dst, Dir: d}
		}
		a, b := randArc(), randArc()
		want := conflictBrute(top, a, b)
		if got := top.Conflict(a, b); got != want {
			t.Fatalf("n=%d Conflict(%v, %v) = %v, brute force %v", n, a, b, got, want)
		}
		if got := top.Conflict(b, a); got != want {
			t.Fatalf("n=%d Conflict not symmetric for (%v, %v)", n, a, b)
		}
	}
}

func TestOppositeDirectionsNeverConflict(t *testing.T) {
	top := MustNew(8)
	a := Arc{Src: 0, Dst: 4, Dir: CW}
	b := Arc{Src: 4, Dst: 0, Dir: CCW}
	if top.Conflict(a, b) {
		t.Fatal("opposite waveguides must not conflict")
	}
}

func TestShortestArcHops(t *testing.T) {
	top := MustNew(12)
	for src := 0; src < 12; src++ {
		for dst := 0; dst < 12; dst++ {
			if src == dst {
				continue
			}
			a := top.ShortestArc(src, dst)
			if h := top.Hops(a); h > 6 {
				t.Fatalf("ShortestArc(%d,%d) has %d hops", src, dst, h)
			}
		}
	}
}

func TestPartitionContiguous(t *testing.T) {
	members := []int{0, 1, 2, 3, 4, 5, 6}
	groups := PartitionContiguous(members, 3)
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	wantMembers := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	wantReps := []int{1, 4, 6}
	for i, g := range groups {
		if len(g.Members) != len(wantMembers[i]) {
			t.Fatalf("group %d members %v", i, g.Members)
		}
		for j := range g.Members {
			if g.Members[j] != wantMembers[i][j] {
				t.Fatalf("group %d members %v, want %v", i, g.Members, wantMembers[i])
			}
		}
		if g.Rep != wantReps[i] {
			t.Fatalf("group %d rep %d, want %d", i, g.Rep, wantReps[i])
		}
		if g.RepIndex() < 0 {
			t.Fatalf("group %d rep not a member", i)
		}
	}
}

func TestPartitionCoversAll(t *testing.T) {
	prop := func(nRaw uint8, mRaw uint8) bool {
		n := int(nRaw)%200 + 1
		m := int(mRaw)%16 + 2
		members := make([]int, n)
		for i := range members {
			members[i] = i * 3 // arbitrary sparse ids
		}
		groups := PartitionContiguous(members, m)
		total := 0
		prev := -1
		for _, g := range groups {
			if len(g.Members) == 0 || len(g.Members) > m {
				return false
			}
			for _, mm := range g.Members {
				if mm <= prev {
					return false // order must be preserved
				}
				prev = mm
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMiddle(t *testing.T) {
	if Middle([]int{5}) != 5 {
		t.Fatal("Middle single")
	}
	if Middle([]int{5, 9}) != 5 {
		t.Fatal("Middle pair should favor lower index")
	}
	if Middle([]int{5, 9, 11}) != 9 {
		t.Fatal("Middle triple")
	}
	if Middle([]int{1, 2, 3, 4}) != 2 {
		t.Fatal("Middle quad")
	}
}

func TestAllNodes(t *testing.T) {
	top := MustNew(4)
	nodes := top.AllNodes()
	for i, n := range nodes {
		if n != i {
			t.Fatalf("AllNodes[%d] = %d", i, n)
		}
	}
}

func TestDirectionHelpers(t *testing.T) {
	if CW.Opposite() != CCW || CCW.Opposite() != CW {
		t.Fatal("Opposite broken")
	}
	if CW.String() != "cw" || CCW.String() != "ccw" {
		t.Fatal("String broken")
	}
}
