package collective

import (
	"math/rand"
	"testing"

	"wrht/internal/tensor"
)

// executeWith runs the schedule over custom initial buffers and returns them.
func executeWith(t *testing.T, s *Schedule, fill func(node int, buf []float64)) [][]float64 {
	t.Helper()
	bufs := make([][]float64, s.N)
	for node := range bufs {
		bufs[node] = make([]float64, s.Elems)
		fill(node, bufs[node])
	}
	if err := s.Execute(bufs); err != nil {
		t.Fatal(err)
	}
	return bufs
}

func TestAllReduceZeroFixedPoint(t *testing.T) {
	// All-zero inputs must stay all-zero under every algorithm.
	for _, alg := range allAlgorithms() {
		s, err := alg.build(9, 31)
		if err != nil {
			t.Fatal(err)
		}
		bufs := executeWith(t, s, func(int, []float64) {})
		for node, b := range bufs {
			for i, v := range b {
				if v != 0 {
					t.Fatalf("%s: node %d element %d = %v", alg.name, node, i, v)
				}
			}
		}
	}
}

func TestAllReduceLinearity(t *testing.T) {
	// All-reduce is linear: running on α·x inputs gives α·(result on x).
	// Use integer α and integer inputs for exactness.
	rng := rand.New(rand.NewSource(33))
	for _, alg := range allAlgorithms() {
		n := rng.Intn(10) + 3
		elems := rng.Intn(50) + 1
		s, err := alg.build(n, elems)
		if err != nil {
			t.Fatal(err)
		}
		base := executeWith(t, s, func(node int, buf []float64) {
			tensor.Fill(buf, node)
		})
		scaled := executeWith(t, s, func(node int, buf []float64) {
			tensor.Fill(buf, node)
			tensor.Scale(buf, 3)
		})
		for node := range base {
			for i := range base[node] {
				if scaled[node][i] != 3*base[node][i] {
					t.Fatalf("%s: linearity broken at node %d elem %d: %v vs 3*%v",
						alg.name, node, i, scaled[node][i], base[node][i])
				}
			}
		}
	}
}

func TestAllReduceOneHotInputs(t *testing.T) {
	// If only node k holds data (value v), everyone must end with exactly v.
	for _, alg := range allAlgorithms() {
		const n, elems = 7, 13
		s, err := alg.build(n, elems)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			bufs := executeWith(t, s, func(node int, buf []float64) {
				if node == k {
					for i := range buf {
						buf[i] = float64(100*k + i)
					}
				}
			})
			for node := range bufs {
				for i, v := range bufs[node] {
					if v != float64(100*k+i) {
						t.Fatalf("%s: one-hot at %d: node %d elem %d = %v",
							alg.name, k, node, i, v)
					}
				}
			}
		}
	}
}

func TestTrafficLowerBound(t *testing.T) {
	// Any all-reduce must move at least (n-1) full buffers in total traffic
	// (each node's data must reach at least one aggregation point), and the
	// bandwidth-optimal algorithms sit at 2(n-1)/n per node.
	for _, alg := range allAlgorithms() {
		const n, elems = 16, 160
		s, err := alg.build(n, elems)
		if err != nil {
			t.Fatal(err)
		}
		min := int64((n - 1) * elems)
		if got := s.TotalTrafficElems(); got < min {
			t.Errorf("%s: traffic %d below the information-theoretic floor %d",
				alg.name, got, min)
		}
	}
}

func TestStepsNonEmpty(t *testing.T) {
	for _, alg := range allAlgorithms() {
		s, err := alg.build(12, 24)
		if err != nil {
			t.Fatal(err)
		}
		for si, st := range s.Steps {
			if len(st.Transfers) == 0 {
				t.Errorf("%s: step %d (%s) is empty", alg.name, si, st.Label)
			}
			if st.Label == "" {
				t.Errorf("%s: step %d unlabeled", alg.name, si)
			}
		}
	}
}
