package collective

import (
	"fmt"
	"sort"
	"sync"

	"wrht/internal/ring"
	"wrht/internal/tensor"
)

// ClassSchedule is the symmetry-aware pricing fingerprint of a schedule.
//
// Where CompactSchedule stores every point-to-point transfer, ClassSchedule
// stores, per step, (a) the transfer equivalence classes by (region length,
// hop count, stripe width) — the only coordinates substrate pricing depends
// on, since a step's cost is its slowest transfer plus fixed overheads — and
// (b) a rotational-symmetry certificate for the step's demand pattern: the
// step is a representative orbit of transfers replicated `blocks` times at
// node stride `period`, block-major, with the orbit's directed links confined
// to one period-wide window (so replicas are pairwise link-disjoint). Two
// extra flags refine the certificate: `disjoint` (all transfers in the step
// are pairwise link-disjoint, so wavelength assignment is trivial for any
// subset) and `permutation` (every node sends at most one and receives at
// most one transfer, the condition under which a non-blocking electrical
// cluster gives every flow its full link rate).
//
// Steps whose pattern is not provably symmetric are stored materialized
// (the verified fallback): their full transfer list is kept and priced by
// the exact per-transfer path. Symmetric steps can also be materialized on
// demand (ForEachTransfer) — region data is kept in one of three exact
// forms (uniform, rotated chunk ring, or explicit per-transfer) — so a
// classed runner can always fall back per step without losing bit-equality.
//
// The representation is what turns O(N²) schedule pricing into ~O(N): a
// ring all-reduce stores 2(N-1) steps of one orbit transfer and ≤3 classes
// each, instead of 2N(N-1) transfers.
type ClassSchedule struct {
	Algorithm string
	N         int
	Elems     int

	steps []classStep

	// Class columns; step s owns [steps[s].clsLo, steps[s].clsHi).
	clsCount, clsLen, clsHops, clsWidth []int32

	// Orbit columns (symmetric steps); step s owns [orbLo, orbHi).
	orbSrc, orbDst, orbWidth []int32
	orbDir                   []ring.Direction
	orbRouted                []bool
	orbOp                    []Op

	// lens/offs hold explicit per-transfer regions (block-major global
	// order) for lenExplicit steps; step s owns [lenLo, lenLo+transfers).
	lens, offs []int32

	// lenRing/offRing are the shared chunk regions lenRotated steps index
	// with a per-step rotation (the ring all-reduce generator's form).
	lenRing, offRing []int32

	// Fallback transfer columns (materialized steps); step s owns [fbLo, fbHi).
	fbSrc, fbDst, fbLen, fbOff, fbWidth []int32
	fbDir                               []ring.Direction
	fbRouted                            []bool
	fbOp                                []Op

	// certSteps counts steps whose symmetry certificate verified;
	// demotedSteps counts claimed-symmetric steps that failed verification
	// and were materialized (the observability layer surfaces both).
	certSteps, demotedSteps int32
}

// TransferClass is one pricing equivalence class: Count transfers moving Len
// elements over Hops ring links at stripe-width hint Width (0 = substrate
// default). Every coordinate substrate pricing reads is here; Op and
// direction are pricing-neutral and live only in the orbit/fallback columns.
type TransferClass struct {
	Count, Len, Hops, Width int32
}

type lenMode int8

const (
	lenUniform lenMode = iota
	lenRotated
	lenExplicit
)

type classStep struct {
	label string

	sym      bool
	period   int32
	blocks   int32
	disjoint bool
	perm     bool

	clsLo, clsHi int32
	orbLo, orbHi int32
	fbLo, fbHi   int32

	mode lenMode
	// lenParam is the uniform region length (lenUniform), the rotation
	// offset into lenRing (lenRotated), or unused (lenExplicit).
	lenParam int32
	// offParam is the uniform region offset (lenUniform only).
	offParam int32
	lenLo    int32
}

// NumSteps returns the number of synchronous steps.
func (c *ClassSchedule) NumSteps() int { return len(c.steps) }

// Nodes returns the node count (energy accounting accepts any schedule form
// through this method set).
func (c *ClassSchedule) Nodes() int { return c.N }

// StepLabel returns step s's label.
func (c *ClassSchedule) StepLabel(s int) string { return c.steps[s].label }

// StepTransfers returns the number of transfers in step s.
func (c *ClassSchedule) StepTransfers(s int) int {
	st := &c.steps[s]
	if st.sym {
		return int(st.orbHi-st.orbLo) * int(st.blocks)
	}
	return int(st.fbHi - st.fbLo)
}

// CertStats reports how the builder classified this schedule's steps:
// certified is the number of steps whose symmetry certificate verified
// (priced through the O(N)-free classed path), materialized is the number of
// steps priced transfer-by-transfer, and demoted counts the subset of
// materialized steps that *claimed* a certificate but failed verification —
// the silent fallbacks the flight recorder exists to surface.
func (c *ClassSchedule) CertStats() (certified, materialized, demoted int) {
	return int(c.certSteps), len(c.steps) - int(c.certSteps), int(c.demotedSteps)
}

// NumClasses returns the total number of pricing equivalence classes across
// all certified steps.
func (c *ClassSchedule) NumClasses() int { return len(c.clsCount) }

// TotalTransfers returns the number of point-to-point transfers.
func (c *ClassSchedule) TotalTransfers() int {
	n := 0
	for s := range c.steps {
		n += c.StepTransfers(s)
	}
	return n
}

// TotalTrafficElems returns the total number of elements moved.
func (c *ClassSchedule) TotalTrafficElems() int64 {
	var n int64
	for s := range c.steps {
		st := &c.steps[s]
		if st.sym {
			for i := st.clsLo; i < st.clsHi; i++ {
				n += int64(c.clsCount[i]) * int64(c.clsLen[i])
			}
		} else {
			for i := st.fbLo; i < st.fbHi; i++ {
				n += int64(c.fbLen[i])
			}
		}
	}
	return n
}

// Sym reports step s's symmetry certificate: ok is false for materialized
// (fallback) steps. disjoint means every transfer pair in the step is
// link-disjoint; perm means the step is a partial permutation (each node
// sends ≤1 and receives ≤1 transfer).
func (c *ClassSchedule) Sym(s int) (period, blocks int, disjoint, perm, ok bool) {
	st := &c.steps[s]
	return int(st.period), int(st.blocks), st.disjoint, st.perm, st.sym
}

// ClassBounds returns the half-open class-column range of step s
// (empty for fallback steps — they price per transfer).
func (c *ClassSchedule) ClassBounds(s int) (lo, hi int) {
	return int(c.steps[s].clsLo), int(c.steps[s].clsHi)
}

// Class returns the class at column index i.
func (c *ClassSchedule) Class(i int) TransferClass {
	return TransferClass{Count: c.clsCount[i], Len: c.clsLen[i], Hops: c.clsHops[i], Width: c.clsWidth[i]}
}

// OrbitBounds returns the half-open orbit-column range of symmetric step s.
func (c *ClassSchedule) OrbitBounds(s int) (lo, hi int) {
	return int(c.steps[s].orbLo), int(c.steps[s].orbHi)
}

// OrbitAt returns the orbit transfer pattern at column index i (block 0's
// endpoints; block b adds b·period to both, mod N). The region is not part
// of the pattern — lengths vary per block and live in the classes.
func (c *ClassSchedule) OrbitAt(i int) (src, dst, width int, dir ring.Direction, routed bool) {
	return int(c.orbSrc[i]), int(c.orbDst[i]), int(c.orbWidth[i]), c.orbDir[i], c.orbRouted[i]
}

// region returns transfer j (step-local, block-major) of symmetric step st.
func (c *ClassSchedule) region(st *classStep, j int) tensor.Region {
	switch st.mode {
	case lenUniform:
		return tensor.Region{Offset: int(st.offParam), Len: int(st.lenParam)}
	case lenRotated:
		k := (j + int(st.lenParam)) % len(c.lenRing)
		return tensor.Region{Offset: int(c.offRing[k]), Len: int(c.lenRing[k])}
	default:
		return tensor.Region{Offset: int(c.offs[int(st.lenLo)+j]), Len: int(c.lens[int(st.lenLo)+j])}
	}
}

// ForEachTransfer materializes step s's transfers in the exact order the
// compact form stores them (block-major for symmetric steps), calling fn for
// each. This is the per-step fallback path of the classed runners and the
// bridge the equality tests walk.
func (c *ClassSchedule) ForEachTransfer(s int, fn func(Transfer)) {
	st := &c.steps[s]
	if !st.sym {
		for i := st.fbLo; i < st.fbHi; i++ {
			fn(Transfer{
				Src: int(c.fbSrc[i]), Dst: int(c.fbDst[i]),
				Region: tensor.Region{Offset: int(c.fbOff[i]), Len: int(c.fbLen[i])},
				Op:     c.fbOp[i],
				Routed: c.fbRouted[i], Dir: c.fbDir[i],
				Width: int(c.fbWidth[i]),
			})
		}
		return
	}
	o := int(st.orbHi - st.orbLo)
	j := 0
	for b := 0; b < int(st.blocks); b++ {
		shift := b * int(st.period)
		for k := 0; k < o; k++ {
			i := int(st.orbLo) + k
			fn(Transfer{
				Src:    (int(c.orbSrc[i]) + shift) % c.N,
				Dst:    (int(c.orbDst[i]) + shift) % c.N,
				Region: c.region(st, j),
				Op:     c.orbOp[i],
				Routed: c.orbRouted[i], Dir: c.orbDir[i],
				Width: int(c.orbWidth[i]),
			})
			j++
		}
	}
}

// Expand materializes the full boxed schedule (tests and inspection).
func (c *ClassSchedule) Expand() *Schedule {
	s := &Schedule{Algorithm: c.Algorithm, N: c.N, Elems: c.Elems, Steps: make([]Step, c.NumSteps())}
	for si := range s.Steps {
		st := Step{Label: c.steps[si].label}
		if n := c.StepTransfers(si); n > 0 {
			st.Transfers = make([]Transfer, 0, n)
			c.ForEachTransfer(si, func(tr Transfer) { st.Transfers = append(st.Transfers, tr) })
		}
		s.Steps[si] = st
	}
	return s
}

// Validate checks the structural invariants pricing relies on: node indices
// in range, no self-transfers, non-negative regions and widths, sane
// certificates. (Overlapping-write validation needs the full per-transfer
// form and lives on Schedule/CompactSchedule.)
func (c *ClassSchedule) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("collective: class schedule has N=%d", c.N)
	}
	if c.Elems < 0 {
		return fmt.Errorf("collective: class schedule has Elems=%d", c.Elems)
	}
	for si := range c.steps {
		st := &c.steps[si]
		if st.sym {
			if st.period < 1 || st.blocks < 2 || int(st.period)*int(st.blocks) > c.N {
				return fmt.Errorf("collective: step %d certificate period=%d blocks=%d outside N=%d",
					si, st.period, st.blocks, c.N)
			}
			for i := st.orbLo; i < st.orbHi; i++ {
				if c.orbSrc[i] < 0 || int(c.orbSrc[i]) >= c.N || c.orbDst[i] < 0 || int(c.orbDst[i]) >= c.N {
					return fmt.Errorf("collective: step %d orbit transfer node out of range [0,%d)", si, c.N)
				}
				if c.orbSrc[i] == c.orbDst[i] {
					return fmt.Errorf("collective: step %d orbit self-transfer", si)
				}
				if c.orbWidth[i] < 0 {
					return fmt.Errorf("collective: step %d orbit negative width", si)
				}
			}
			for i := st.clsLo; i < st.clsHi; i++ {
				if c.clsLen[i] < 0 || c.clsCount[i] < 1 {
					return fmt.Errorf("collective: step %d class (len=%d count=%d)", si, c.clsLen[i], c.clsCount[i])
				}
			}
			continue
		}
		for i := st.fbLo; i < st.fbHi; i++ {
			if c.fbSrc[i] < 0 || int(c.fbSrc[i]) >= c.N || c.fbDst[i] < 0 || int(c.fbDst[i]) >= c.N {
				return fmt.Errorf("collective: step %d transfer node out of range [0,%d)", si, c.N)
			}
			if c.fbSrc[i] == c.fbDst[i] {
				return fmt.Errorf("collective: step %d self-transfer", si)
			}
			if c.fbLen[i] < 0 || c.fbWidth[i] < 0 {
				return fmt.Errorf("collective: step %d negative region or width", si)
			}
		}
	}
	return nil
}

// classPool recycles ClassSchedule backing arrays between builds.
var classPool = sync.Pool{New: func() any { return new(ClassSchedule) }}

// Release returns the schedule's arrays to the builder pool. Only release
// schedules no other goroutine or cache still references.
func (c *ClassSchedule) Release() {
	classPool.Put(c)
}

// ClassScheduleBuilder assembles a ClassSchedule step by step. Symmetric
// steps are verified as they close: a step whose claimed orbit fails the
// link-window check is silently materialized instead (the verified
// fallback), so a finished schedule's certificates always hold.
type ClassScheduleBuilder struct {
	cs *ClassSchedule

	open    bool
	sym     bool
	demoted bool

	// ringClasses are the precomputed (len → count) classes of the shared
	// chunk ring, reused by every lenRotated step.
	ringClasses []TransferClass

	// scratch
	ivCW, ivCCW []interval
	pts         []int32
	clsScratch  map[classKey]int32
	clsOrder    []classKey
}

type interval struct{ start, h int32 }

type classKey struct{ ln, hops, width int32 }

// NewClassScheduleBuilder starts a schedule for n nodes over elems elements.
func NewClassScheduleBuilder(algorithm string, n, elems int) *ClassScheduleBuilder {
	cs := classPool.Get().(*ClassSchedule)
	cs.Algorithm, cs.N, cs.Elems = algorithm, n, elems
	for i := range cs.steps {
		cs.steps[i] = classStep{}
	}
	cs.steps = cs.steps[:0]
	cs.clsCount, cs.clsLen, cs.clsHops, cs.clsWidth = cs.clsCount[:0], cs.clsLen[:0], cs.clsHops[:0], cs.clsWidth[:0]
	cs.orbSrc, cs.orbDst, cs.orbWidth = cs.orbSrc[:0], cs.orbDst[:0], cs.orbWidth[:0]
	cs.orbDir, cs.orbRouted, cs.orbOp = cs.orbDir[:0], cs.orbRouted[:0], cs.orbOp[:0]
	cs.lens, cs.offs = cs.lens[:0], cs.offs[:0]
	cs.lenRing, cs.offRing = cs.lenRing[:0], cs.offRing[:0]
	cs.fbSrc, cs.fbDst, cs.fbLen, cs.fbOff, cs.fbWidth = cs.fbSrc[:0], cs.fbDst[:0], cs.fbLen[:0], cs.fbOff[:0], cs.fbWidth[:0]
	cs.fbDir, cs.fbRouted, cs.fbOp = cs.fbDir[:0], cs.fbRouted[:0], cs.fbOp[:0]
	cs.certSteps, cs.demotedSteps = 0, 0
	return &ClassScheduleBuilder{cs: cs, clsScratch: map[classKey]int32{}}
}

// SetLenRing installs the shared chunk regions lenRotated steps rotate over
// and precomputes their class multiset (identical for every rotation).
func (b *ClassScheduleBuilder) SetLenRing(chunks []tensor.Region) {
	cs := b.cs
	for _, r := range chunks {
		cs.lenRing = append(cs.lenRing, int32(r.Len))
		cs.offRing = append(cs.offRing, int32(r.Offset))
	}
	counts := map[int32]int32{}
	for _, l := range cs.lenRing {
		counts[l]++
	}
	lens := make([]int32, 0, len(counts))
	for l := range counts {
		lens = append(lens, l)
	}
	sort.Slice(lens, func(i, j int) bool { return lens[i] < lens[j] })
	b.ringClasses = b.ringClasses[:0]
	for _, l := range lens {
		b.ringClasses = append(b.ringClasses, TransferClass{Count: counts[l], Len: l})
	}
}

// StartStep opens a materialized (fallback) step.
func (b *ClassScheduleBuilder) StartStep(label string) {
	b.closeStep()
	b.openStep(label, classStep{})
}

// Add appends a transfer to the open materialized step.
func (b *ClassScheduleBuilder) Add(tr Transfer) {
	cs := b.cs
	st := &cs.steps[len(cs.steps)-1]
	if !b.open || st.sym {
		panic("collective: ClassScheduleBuilder.Add outside a materialized step")
	}
	cs.fbSrc = append(cs.fbSrc, int32(tr.Src))
	cs.fbDst = append(cs.fbDst, int32(tr.Dst))
	cs.fbLen = append(cs.fbLen, int32(tr.Region.Len))
	cs.fbOff = append(cs.fbOff, int32(tr.Region.Offset))
	cs.fbWidth = append(cs.fbWidth, int32(tr.Width))
	cs.fbDir = append(cs.fbDir, tr.Dir)
	cs.fbRouted = append(cs.fbRouted, tr.Routed)
	cs.fbOp = append(cs.fbOp, tr.Op)
	st.fbHi++
}

// StartSymUniform opens a symmetric step whose transfers all move the same
// region (the Wrht tree-level shape).
func (b *ClassScheduleBuilder) StartSymUniform(label string, period, blocks int, region tensor.Region) {
	b.closeStep()
	b.openStep(label, classStep{
		sym: true, period: int32(period), blocks: int32(blocks),
		mode: lenUniform, lenParam: int32(region.Len), offParam: int32(region.Offset),
	})
}

// StartSymRotated opens a symmetric single-transfer-orbit step whose
// transfer j moves the shared chunk ring's region (j+rot) mod len(ring)
// (the ring all-reduce shape). SetLenRing must have been called first —
// without it the step has no region data to price or materialize from.
func (b *ClassScheduleBuilder) StartSymRotated(label string, period, blocks, rot int) {
	if len(b.cs.lenRing) == 0 {
		panic("collective: ClassScheduleBuilder.StartSymRotated before SetLenRing")
	}
	b.closeStep()
	b.openStep(label, classStep{
		sym: true, period: int32(period), blocks: int32(blocks),
		mode: lenRotated, lenParam: int32(rot),
	})
}

// StartSymExplicit opens a symmetric step with explicit per-transfer regions:
// AddOrbit supplies block 0 (pattern and regions), AddRegion the remaining
// blocks' regions in block-major order.
func (b *ClassScheduleBuilder) StartSymExplicit(label string, period, blocks int) {
	b.closeStep()
	b.openStep(label, classStep{
		sym: true, period: int32(period), blocks: int32(blocks),
		mode: lenExplicit, lenLo: int32(len(b.cs.lens)),
	})
}

// AddOrbit appends one orbit (block 0) transfer to the open symmetric step.
func (b *ClassScheduleBuilder) AddOrbit(tr Transfer) {
	cs := b.cs
	st := &cs.steps[len(cs.steps)-1]
	if !b.open || !st.sym {
		panic("collective: ClassScheduleBuilder.AddOrbit outside a symmetric step")
	}
	cs.orbSrc = append(cs.orbSrc, int32(tr.Src))
	cs.orbDst = append(cs.orbDst, int32(tr.Dst))
	cs.orbWidth = append(cs.orbWidth, int32(tr.Width))
	cs.orbDir = append(cs.orbDir, tr.Dir)
	cs.orbRouted = append(cs.orbRouted, tr.Routed)
	cs.orbOp = append(cs.orbOp, tr.Op)
	st.orbHi++
	if st.mode == lenExplicit {
		cs.lens = append(cs.lens, int32(tr.Region.Len))
		cs.offs = append(cs.offs, int32(tr.Region.Offset))
	}
}

// AddRegion appends one replica region to the open explicit symmetric step.
func (b *ClassScheduleBuilder) AddRegion(r tensor.Region) {
	cs := b.cs
	st := &cs.steps[len(cs.steps)-1]
	if !b.open || !st.sym || st.mode != lenExplicit {
		panic("collective: ClassScheduleBuilder.AddRegion outside an explicit symmetric step")
	}
	cs.lens = append(cs.lens, int32(r.Len))
	cs.offs = append(cs.offs, int32(r.Offset))
}

// Finish seals and returns the schedule; the builder must not be used again.
func (b *ClassScheduleBuilder) Finish() *ClassSchedule {
	b.closeStep()
	return b.cs
}

func (b *ClassScheduleBuilder) openStep(label string, st classStep) {
	cs := b.cs
	st.label = label
	st.clsLo, st.clsHi = int32(len(cs.clsCount)), int32(len(cs.clsCount))
	st.orbLo, st.orbHi = int32(len(cs.orbSrc)), int32(len(cs.orbSrc))
	st.fbLo, st.fbHi = int32(len(cs.fbSrc)), int32(len(cs.fbSrc))
	if st.mode == lenExplicit {
		st.lenLo = int32(len(cs.lens))
	}
	cs.steps = append(cs.steps, st)
	b.open, b.sym = true, st.sym
}

// effArc resolves a transfer pattern's effective direction and hop count,
// mirroring the runner: routed transfers travel their pinned direction,
// unrouted ones the shortest (CW on ties).
func effArc(n, src, dst int, dir ring.Direction, routed bool) (ring.Direction, int) {
	cw := ((dst-src)%n + n) % n
	ccw := n - cw
	if routed {
		if dir == ring.CW {
			return ring.CW, cw
		}
		return ring.CCW, ccw
	}
	if cw <= ccw {
		return ring.CW, cw
	}
	return ring.CCW, ccw
}

// closeStep verifies an open symmetric step's certificate and computes its
// classes; a failed certificate demotes the step to materialized form.
func (b *ClassScheduleBuilder) closeStep() {
	if !b.open {
		return
	}
	b.open = false
	cs := b.cs
	st := &cs.steps[len(cs.steps)-1]
	if !st.sym {
		return
	}
	o := int(st.orbHi - st.orbLo)
	if o == 0 {
		// An empty symmetric step is just an empty step.
		st.sym = false
		return
	}
	if !b.verifySym(st, o) {
		b.demote(st, o)
		cs.demotedSteps++
		return
	}
	b.buildClasses(st, o)
	cs.certSteps++
}

// verifySym checks the certificate's structural conditions and sets the
// disjoint/perm flags. It returns false when the orbit's replicas cannot be
// proven link-disjoint across blocks.
func (b *ClassScheduleBuilder) verifySym(st *classStep, o int) bool {
	cs := b.cs
	n, p, blocks := cs.N, int(st.period), int(st.blocks)
	if p < 1 || blocks < 2 || p*blocks > n {
		return false
	}
	if st.mode == lenRotated && (o != 1 || len(cs.lenRing) != o*blocks) {
		return false
	}
	if st.mode == lenExplicit && int(st.lenLo)+o*blocks != len(cs.lens) {
		return false
	}
	b.ivCW, b.ivCCW = b.ivCW[:0], b.ivCCW[:0]
	for i := int(st.orbLo); i < int(st.orbHi); i++ {
		src, dst := int(cs.orbSrc[i]), int(cs.orbDst[i])
		if src < 0 || src >= n || dst < 0 || dst >= n || src == dst {
			return false
		}
		dir, h := effArc(n, src, dst, cs.orbDir[i], cs.orbRouted[i])
		// CW arcs cover CW link positions [src, src+h); CCW arcs cover CCW
		// link positions [dst+1, dst+1+h).
		if dir == ring.CW {
			b.ivCW = append(b.ivCW, interval{int32(src), int32(h)})
		} else {
			b.ivCCW = append(b.ivCCW, interval{int32((dst + 1) % n), int32(h)})
		}
	}
	okCW, djCW := windowCheck(b.ivCW, p, n)
	okCCW, djCCW := windowCheck(b.ivCCW, p, n)
	if !okCW || !okCCW {
		return false
	}
	st.disjoint = djCW && djCCW

	// Permutation: sources (and destinations) each fit a period window and
	// are pairwise distinct, so their block replicas never repeat a node.
	perm := true
	for _, col := range [2][]int32{cs.orbSrc[st.orbLo:st.orbHi], cs.orbDst[st.orbLo:st.orbHi]} {
		iv := b.ivCW[:0]
		for _, v := range col {
			iv = append(iv, interval{v, 1})
		}
		fit, dj := windowCheck(iv, p, n)
		b.ivCW = iv[:0]
		if !fit || !dj {
			perm = false
			break
		}
	}
	st.perm = perm
	return true
}

// windowCheck reports whether all circular intervals fit inside one window
// of length p (so their period-p replicas are pairwise disjoint) and, if so,
// whether the intervals themselves are pairwise disjoint. Intervals are on
// a circle of n positions; p*blocks <= n with blocks >= 2 implies p <= n/2,
// which makes the left/right-of-reference classification unambiguous.
func windowCheck(iv []interval, p, n int) (fits, disjoint bool) {
	if len(iv) == 0 {
		return true, true
	}
	r := iv[0].start
	lo, hi := 0, 0
	for k := range iv {
		h := int(iv[k].h)
		if h > p {
			return false, false
		}
		d := (int(iv[k].start-r)%n + n) % n
		switch {
		case d+h <= p:
			// right of (or at) the reference
		case d >= n-p:
			d -= n // left of the reference
		default:
			return false, false
		}
		if d < lo {
			lo = d
		}
		if d+h > hi {
			hi = d + h
		}
		iv[k].start = int32(d) // normalized offset for the disjointness sort
	}
	if hi-lo > p {
		return false, false
	}
	sort.Slice(iv, func(a, b int) bool { return iv[a].start < iv[b].start })
	disjoint = true
	for k := 1; k < len(iv); k++ {
		if iv[k].start < iv[k-1].start+iv[k-1].h {
			disjoint = false
			break
		}
	}
	return true, disjoint
}

// demote materializes a symmetric step whose certificate failed, dropping
// its orbit/region data back into the fallback columns.
func (b *ClassScheduleBuilder) demote(st *classStep, o int) {
	cs := b.cs
	j := 0
	for blk := 0; blk < int(st.blocks); blk++ {
		shift := blk * int(st.period)
		for k := 0; k < o; k++ {
			i := int(st.orbLo) + k
			r := cs.region(st, j)
			cs.fbSrc = append(cs.fbSrc, int32(((int(cs.orbSrc[i])+shift)%cs.N+cs.N)%cs.N))
			cs.fbDst = append(cs.fbDst, int32(((int(cs.orbDst[i])+shift)%cs.N+cs.N)%cs.N))
			cs.fbLen = append(cs.fbLen, int32(r.Len))
			cs.fbOff = append(cs.fbOff, int32(r.Offset))
			cs.fbWidth = append(cs.fbWidth, cs.orbWidth[i])
			cs.fbDir = append(cs.fbDir, cs.orbDir[i])
			cs.fbRouted = append(cs.fbRouted, cs.orbRouted[i])
			cs.fbOp = append(cs.fbOp, cs.orbOp[i])
			st.fbHi++
			j++
		}
	}
	// Reclaim the orbit (it is the column tail — only the open step writes).
	cs.orbSrc = cs.orbSrc[:st.orbLo]
	cs.orbDst = cs.orbDst[:st.orbLo]
	cs.orbWidth = cs.orbWidth[:st.orbLo]
	cs.orbDir = cs.orbDir[:st.orbLo]
	cs.orbRouted = cs.orbRouted[:st.orbLo]
	cs.orbOp = cs.orbOp[:st.orbLo]
	st.orbHi = st.orbLo
	if st.mode == lenExplicit {
		cs.lens = cs.lens[:st.lenLo]
		cs.offs = cs.offs[:st.lenLo]
	}
	st.sym, st.disjoint, st.perm = false, false, false
}

// buildClasses computes the step's pricing classes.
func (b *ClassScheduleBuilder) buildClasses(st *classStep, o int) {
	cs := b.cs
	emit := func(k classKey, count int32) {
		if prev, ok := b.clsScratch[k]; ok {
			cs.clsCount[prev] += count
			return
		}
		b.clsScratch[k] = int32(len(cs.clsCount))
		b.clsOrder = append(b.clsOrder, k)
		cs.clsCount = append(cs.clsCount, count)
		cs.clsLen = append(cs.clsLen, k.ln)
		cs.clsHops = append(cs.clsHops, k.hops)
		cs.clsWidth = append(cs.clsWidth, k.width)
		st.clsHi++
	}
	switch st.mode {
	case lenUniform:
		for i := int(st.orbLo); i < int(st.orbHi); i++ {
			_, h := effArc(cs.N, int(cs.orbSrc[i]), int(cs.orbDst[i]), cs.orbDir[i], cs.orbRouted[i])
			emit(classKey{st.lenParam, int32(h), cs.orbWidth[i]}, st.blocks)
		}
	case lenRotated:
		_, h := effArc(cs.N, int(cs.orbSrc[st.orbLo]), int(cs.orbDst[st.orbLo]), cs.orbDir[st.orbLo], cs.orbRouted[st.orbLo])
		for _, rc := range b.ringClasses {
			emit(classKey{rc.Len, int32(h), cs.orbWidth[st.orbLo]}, rc.Count)
		}
	default: // lenExplicit
		j := int(st.lenLo)
		for blk := 0; blk < int(st.blocks); blk++ {
			for k := 0; k < o; k++ {
				i := int(st.orbLo) + k
				_, h := effArc(cs.N, int(cs.orbSrc[i]), int(cs.orbDst[i]), cs.orbDir[i], cs.orbRouted[i])
				emit(classKey{cs.lens[j], int32(h), cs.orbWidth[i]}, 1)
				j++
			}
		}
	}
	for _, k := range b.clsOrder {
		delete(b.clsScratch, k)
	}
	b.clsOrder = b.clsOrder[:0]
}

// Classes derives the symmetry-aware pricing fingerprint of the compact
// schedule: per step it detects the smallest block-major rotational orbit
// (falling back to full materialization when there is none or when the
// orbit's link windows cannot be verified) and groups the transfers into
// pricing classes. The result is self-contained — it copies what it needs
// and survives the compact schedule's Release.
func (c *CompactSchedule) Classes() *ClassSchedule {
	b := NewClassScheduleBuilder(c.Algorithm, c.N, c.Elems)
	for si := 0; si < c.NumSteps(); si++ {
		lo, hi := c.StepBounds(si)
		t := hi - lo
		o, p := c.detectOrbit(lo, hi)
		if o > 0 {
			b.StartSymExplicit(c.StepLabel(si), p, t/o)
			for j := 0; j < o; j++ {
				b.AddOrbit(c.Transfer(lo + j))
			}
			for j := o; j < t; j++ {
				b.AddRegion(tensor.Region{Offset: int(c.off[lo+j]), Len: int(c.ln[lo+j])})
			}
		} else {
			b.StartStep(c.StepLabel(si))
			for j := lo; j < hi; j++ {
				b.Add(c.Transfer(j))
			}
		}
	}
	return b.Finish()
}

// detectOrbit returns the smallest proper orbit size o (and the block node
// stride p) such that the step's transfers are the first o replicated
// block-major at stride p, or (0, 0) when no proper orbit exists.
func (c *CompactSchedule) detectOrbit(lo, hi int) (int, int) {
	t := hi - lo
	if t < 2 {
		return 0, 0
	}
	n := c.N
outer:
	for o := 1; o <= t/2; o++ {
		if t%o != 0 {
			continue
		}
		blocks := t / o
		p := ((int(c.src[lo+o])-int(c.src[lo]))%n + n) % n
		if p < 1 || p*blocks > n {
			continue
		}
		for j := o; j < t; j++ {
			a, b := lo+j, lo+j-o
			if int(c.src[a]) != (int(c.src[b])+p)%n || int(c.dst[a]) != (int(c.dst[b])+p)%n {
				continue outer
			}
			if c.dir[a] != c.dir[b] || c.routed[a] != c.routed[b] ||
				c.width[a] != c.width[b] || c.op[a] != c.op[b] {
				continue outer
			}
		}
		return o, p
	}
	return 0, 0
}
