// Package collective defines the schedule intermediate representation shared
// by every all-reduce algorithm in this repository, the baseline algorithms
// the paper compares against (Ring, Recursive Doubling), further classical
// baselines (Halving-Doubling, Binomial Tree, Hierarchical Ring, one-step
// All-to-All), and a synchronous data-level executor used to prove that every
// schedule actually computes an all-reduce.
//
// A Schedule is a sequence of synchronous steps; each step is a set of
// point-to-point transfers that happen simultaneously. Each transfer moves a
// contiguous region of the sender's buffer and either overwrites (OpCopy) or
// accumulates into (OpReduce) the same region at the receiver. Substrates
// (internal/optical, internal/electrical) cost the same schedules the
// executor verifies, so timing always refers to a schedule that provably
// reduces correctly.
package collective

import (
	"fmt"

	"wrht/internal/ring"
	"wrht/internal/tensor"
)

// Op is what the receiver does with an arriving region.
type Op int8

const (
	// OpReduce accumulates the arriving data into the receiver's region.
	OpReduce Op = iota
	// OpCopy overwrites the receiver's region with the arriving data.
	OpCopy
)

func (o Op) String() string {
	switch o {
	case OpReduce:
		return "reduce"
	case OpCopy:
		return "copy"
	default:
		return fmt.Sprintf("Op(%d)", int8(o))
	}
}

// Transfer is one point-to-point message inside a step.
type Transfer struct {
	Src, Dst int
	Region   tensor.Region
	Op       Op

	// Routed, when true, pins the transfer to travel Dir around the ring
	// (used by Wrht so intra-group traffic stays inside the group's arc).
	// When false the optical substrate routes along the shortest direction.
	Routed bool
	Dir    ring.Direction

	// Width is a stripe hint: the number of wavelengths the transfer should
	// use on the optical substrate. Zero lets the substrate decide.
	Width int
}

func (tr Transfer) String() string {
	return fmt.Sprintf("%d->%d %v %v", tr.Src, tr.Dst, tr.Region, tr.Op)
}

// Step is a synchronous communication round.
type Step struct {
	Label     string
	Transfers []Transfer
}

// Schedule is a complete collective operation on N nodes over a flat buffer
// of Elems elements.
type Schedule struct {
	Algorithm string
	N         int
	Elems     int
	Steps     []Step
}

// NumSteps returns the number of synchronous steps.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// Nodes returns N (as a method, so code generic over boxed and compact
// schedules — e.g. energy accounting — can accept either).
func (s *Schedule) Nodes() int { return s.N }

// TotalTransfers returns the number of point-to-point transfers.
func (s *Schedule) TotalTransfers() int {
	n := 0
	for _, st := range s.Steps {
		n += len(st.Transfers)
	}
	return n
}

// TotalTrafficElems returns the total number of elements moved (sum over all
// transfers of region length), a substrate-independent traffic measure.
func (s *Schedule) TotalTrafficElems() int64 {
	var n int64
	for _, st := range s.Steps {
		for _, tr := range st.Transfers {
			n += int64(tr.Region.Len)
		}
	}
	return n
}

// Validate checks structural invariants: node indices in range, valid
// regions, no self-transfers, no node both sending and receiving conflicting
// writes in a way the synchronous semantics cannot order. Within a step a
// destination region written by OpCopy must not overlap any other write to
// the same destination; OpReduce writes may overlap each other (addition
// commutes).
func (s *Schedule) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("collective: schedule has N=%d", s.N)
	}
	if s.Elems < 0 {
		return fmt.Errorf("collective: schedule has Elems=%d", s.Elems)
	}
	for si, st := range s.Steps {
		type write struct {
			region tensor.Region
			op     Op
		}
		writes := make(map[int][]write)
		for ti, tr := range st.Transfers {
			if tr.Src < 0 || tr.Src >= s.N || tr.Dst < 0 || tr.Dst >= s.N {
				return fmt.Errorf("collective: step %d transfer %d (%v) node out of range [0,%d)",
					si, ti, tr, s.N)
			}
			if tr.Src == tr.Dst {
				return fmt.Errorf("collective: step %d transfer %d is a self-transfer (%v)", si, ti, tr)
			}
			if !tr.Region.Valid(s.Elems) {
				return fmt.Errorf("collective: step %d transfer %d region %v outside buffer of %d",
					si, ti, tr.Region, s.Elems)
			}
			if tr.Width < 0 {
				return fmt.Errorf("collective: step %d transfer %d negative width", si, ti)
			}
			for _, w := range writes[tr.Dst] {
				if !w.region.Overlaps(tr.Region) {
					continue
				}
				if w.op == OpCopy || tr.Op == OpCopy {
					return fmt.Errorf("collective: step %d: conflicting writes to node %d region %v",
						si, tr.Dst, tr.Region)
				}
			}
			writes[tr.Dst] = append(writes[tr.Dst], write{tr.Region, tr.Op})
		}
	}
	return nil
}

// Execute runs the schedule against per-node buffers with synchronous-step
// semantics: within a step, every transfer reads the sender's buffer as it
// was when the step began. bufs must have length N, each buffer Elems long.
func (s *Schedule) Execute(bufs [][]float64) error {
	if len(bufs) != s.N {
		return fmt.Errorf("collective: %d buffers for N=%d", len(bufs), s.N)
	}
	for i, b := range bufs {
		if len(b) != s.Elems {
			return fmt.Errorf("collective: buffer %d has %d elems, want %d", i, len(b), s.Elems)
		}
	}
	for si, st := range s.Steps {
		// Stage: snapshot each transfer's payload before any mutation.
		payloads := make([][]float64, len(st.Transfers))
		for ti, tr := range st.Transfers {
			src := bufs[tr.Src][tr.Region.Offset:tr.Region.End()]
			payloads[ti] = append([]float64(nil), src...)
		}
		// Apply copies first, then reductions (validated non-conflicting).
		for pass := 0; pass < 2; pass++ {
			for ti, tr := range st.Transfers {
				if (pass == 0) != (tr.Op == OpCopy) {
					continue
				}
				dst := bufs[tr.Dst][tr.Region.Offset:tr.Region.End()]
				if tr.Op == OpCopy {
					copy(dst, payloads[ti])
				} else {
					for i := range dst {
						dst[i] += payloads[ti][i]
					}
				}
			}
		}
		_ = si
	}
	return nil
}

// VerifyAllReduce executes the schedule on deterministic per-node patterns
// and checks that every node ends with the exact elementwise sum of all
// inputs. It is the canonical correctness oracle for every algorithm in this
// repository, Wrht included.
func VerifyAllReduce(s *Schedule) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bufs := make([][]float64, s.N)
	for node := range bufs {
		bufs[node] = make([]float64, s.Elems)
		tensor.Fill(bufs[node], node)
	}
	if err := s.Execute(bufs); err != nil {
		return err
	}
	for node := 0; node < s.N; node++ {
		for i := 0; i < s.Elems; i++ {
			want := tensor.ExpectedSum(s.N, i)
			if bufs[node][i] != want {
				return fmt.Errorf("collective: %s N=%d elems=%d: node %d element %d = %v, want %v",
					s.Algorithm, s.N, s.Elems, node, i, bufs[node][i], want)
			}
		}
	}
	return nil
}
