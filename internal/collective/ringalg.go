package collective

import (
	"fmt"

	"wrht/internal/ring"
	"wrht/internal/tensor"
)

// RingAllReduce builds the bandwidth-optimal ring all-reduce of Patarasuk &
// Yuan: N-1 reduce-scatter steps followed by N-1 all-gather steps, each node
// exchanging 1/N of the buffer with its clockwise neighbor per step. This is
// the paper's E-Ring baseline (on the electrical substrate) and, restricted
// to a single wavelength, its O-Ring baseline.
func RingAllReduce(n, elems int) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: ring all-reduce needs n >= 2, got %d", n)
	}
	if elems < 0 {
		return nil, fmt.Errorf("collective: negative elems %d", elems)
	}
	chunks := tensor.Chunks(elems, n)
	s := &Schedule{Algorithm: "ring", N: n, Elems: elems}

	// Reduce-scatter: in step t, node i sends chunk (i-t) mod n to node i+1,
	// which accumulates it. After n-1 steps node i fully owns chunk (i+1) mod n.
	for t := 0; t < n-1; t++ {
		st := Step{Label: fmt.Sprintf("reduce-scatter %d/%d", t+1, n-1)}
		for i := 0; i < n; i++ {
			c := ((i-t)%n + n) % n
			st.Transfers = append(st.Transfers, Transfer{
				Src: i, Dst: (i + 1) % n,
				Region: chunks[c],
				Op:     OpReduce,
				Routed: true, Dir: ring.CW,
			})
		}
		s.Steps = append(s.Steps, st)
	}

	// All-gather: in step t, node i sends chunk (i+1-t) mod n to node i+1,
	// which overwrites it.
	for t := 0; t < n-1; t++ {
		st := Step{Label: fmt.Sprintf("all-gather %d/%d", t+1, n-1)}
		for i := 0; i < n; i++ {
			c := ((i+1-t)%n + n) % n
			st.Transfers = append(st.Transfers, Transfer{
				Src: i, Dst: (i + 1) % n,
				Region: chunks[c],
				Op:     OpCopy,
				Routed: true, Dir: ring.CW,
			})
		}
		s.Steps = append(s.Steps, st)
	}
	return s, nil
}

// RingAllReduceCompact is RingAllReduce built directly in columnar form —
// the hot simulate path's entry point, skipping the boxed per-step slices
// entirely (property tests enforce Expand-equality with RingAllReduce).
func RingAllReduceCompact(n, elems int) (*CompactSchedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: ring all-reduce needs n >= 2, got %d", n)
	}
	if elems < 0 {
		return nil, fmt.Errorf("collective: negative elems %d", elems)
	}
	chunks := tensor.Chunks(elems, n)
	b := NewScheduleBuilder("ring", n, elems)
	b.Grow(2*(n-1), 2*(n-1)*n)

	// Reduce-scatter: in step t, node i sends chunk (i-t) mod n to node i+1,
	// which accumulates it. After n-1 steps node i fully owns chunk (i+1) mod n.
	for t := 0; t < n-1; t++ {
		b.StartStep(fmt.Sprintf("reduce-scatter %d/%d", t+1, n-1))
		for i := 0; i < n; i++ {
			c := ((i-t)%n + n) % n
			b.Add(Transfer{
				Src: i, Dst: (i + 1) % n,
				Region: chunks[c],
				Op:     OpReduce,
				Routed: true, Dir: ring.CW,
			})
		}
	}

	// All-gather: in step t, node i sends chunk (i+1-t) mod n to node i+1,
	// which overwrites it.
	for t := 0; t < n-1; t++ {
		b.StartStep(fmt.Sprintf("all-gather %d/%d", t+1, n-1))
		for i := 0; i < n; i++ {
			c := ((i+1-t)%n + n) % n
			b.Add(Transfer{
				Src: i, Dst: (i + 1) % n,
				Region: chunks[c],
				Op:     OpCopy,
				Routed: true, Dir: ring.CW,
			})
		}
	}
	return b.Finish(), nil
}

// RingAllReduceClassed is RingAllReduce emitted directly in the
// symmetry-aware classed form, without materializing per-node transfers:
// every step is one orbit transfer (node 0 → node 1, CW) replicated N times
// at stride 1, with the chunk regions supplied as a rotation of the shared
// chunk ring. Build cost is O(N) for the whole schedule instead of O(N²);
// equality with RingAllReduce is enforced by property tests.
func RingAllReduceClassed(n, elems int) (*ClassSchedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: ring all-reduce needs n >= 2, got %d", n)
	}
	if elems < 0 {
		return nil, fmt.Errorf("collective: negative elems %d", elems)
	}
	b := NewClassScheduleBuilder("ring", n, elems)
	b.SetLenRing(tensor.Chunks(elems, n))
	orbit := Transfer{Src: 0, Dst: 1, Op: OpReduce, Routed: true, Dir: ring.CW}

	// Reduce-scatter: transfer i of step t moves chunk (i-t) mod n, i.e. the
	// chunk ring rotated by -t.
	for t := 0; t < n-1; t++ {
		b.StartSymRotated(fmt.Sprintf("reduce-scatter %d/%d", t+1, n-1), 1, n, ((-t)%n+n)%n)
		b.AddOrbit(orbit)
	}

	// All-gather: transfer i of step t moves chunk (i+1-t) mod n.
	orbit.Op = OpCopy
	for t := 0; t < n-1; t++ {
		b.StartSymRotated(fmt.Sprintf("all-gather %d/%d", t+1, n-1), 1, n, ((1-t)%n+n)%n)
		b.AddOrbit(orbit)
	}
	return b.Finish(), nil
}

// AllToAllAllReduce builds the one-step (plus local reduction) all-reduce in
// which every node sends its full buffer to every other node. It is only
// practical for small n but is the primitive Wrht uses among the final
// representatives, and a useful correctness reference.
func AllToAllAllReduce(n, elems int) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: all-to-all needs n >= 2, got %d", n)
	}
	s := &Schedule{Algorithm: "all-to-all", N: n, Elems: elems}
	st := Step{Label: "all-to-all exchange"}
	full := tensor.Region{Offset: 0, Len: elems}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			st.Transfers = append(st.Transfers, Transfer{
				Src: src, Dst: dst, Region: full, Op: OpReduce,
			})
		}
	}
	s.Steps = append(s.Steps, st)
	return s, nil
}
