package collective

import (
	"reflect"
	"testing"
)

// TestCompactRoundTrip: boxed -> compact -> boxed is the identity, for every
// classical algorithm over a spread of node counts and buffer sizes.
func TestCompactRoundTrip(t *testing.T) {
	builders := map[string]func(n, elems int) (*Schedule, error){
		"ring":     RingAllReduce,
		"rd":       RecursiveDoubling,
		"hd":       HalvingDoubling,
		"binomial": BinomialTree,
		"a2a":      AllToAllAllReduce,
	}
	for name, build := range builders {
		for _, n := range []int{2, 3, 5, 8, 16, 23} {
			for _, elems := range []int{0, 1, 7, 64, 1000} {
				s, err := build(n, elems)
				if err != nil {
					t.Fatalf("%s n=%d elems=%d: %v", name, n, elems, err)
				}
				cs := s.Compact()
				if got, want := cs.NumSteps(), s.NumSteps(); got != want {
					t.Fatalf("%s n=%d: compact steps %d, want %d", name, n, got, want)
				}
				if got, want := cs.TotalTransfers(), s.TotalTransfers(); got != want {
					t.Fatalf("%s n=%d: compact transfers %d, want %d", name, n, got, want)
				}
				if got, want := cs.TotalTrafficElems(), s.TotalTrafficElems(); got != want {
					t.Fatalf("%s n=%d: compact traffic %d, want %d", name, n, got, want)
				}
				back := cs.Expand()
				if !reflect.DeepEqual(normalize(back), normalize(s)) {
					t.Fatalf("%s n=%d elems=%d: round trip diverged", name, n, elems)
				}
				cs.Release()
			}
		}
	}
}

// normalize maps empty transfer slices to nil so DeepEqual ignores the
// nil-vs-empty distinction Expand cannot reconstruct.
func normalize(s *Schedule) *Schedule {
	c := *s
	c.Steps = append([]Step(nil), s.Steps...)
	for i := range c.Steps {
		if len(c.Steps[i].Transfers) == 0 {
			c.Steps[i].Transfers = nil
		}
	}
	return &c
}

// TestRingAllReduceCompactMatchesBoxed: the direct columnar constructor
// produces exactly the boxed constructor's schedule.
func TestRingAllReduceCompactMatchesBoxed(t *testing.T) {
	for _, n := range []int{2, 3, 4, 9, 16, 31} {
		for _, elems := range []int{0, 5, 64, 999} {
			boxed, err := RingAllReduce(n, elems)
			if err != nil {
				t.Fatal(err)
			}
			cs, err := RingAllReduceCompact(n, elems)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalize(cs.Expand()), normalize(boxed)) {
				t.Fatalf("n=%d elems=%d: compact ring diverges from boxed", n, elems)
			}
			cs.Release()
		}
	}
	if _, err := RingAllReduceCompact(1, 4); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RingAllReduceCompact(4, -1); err == nil {
		t.Fatal("negative elems accepted")
	}
}

// TestCompactValidateMatchesBoxed: the columnar validator accepts and
// rejects exactly what the boxed validator does.
func TestCompactValidateMatchesBoxed(t *testing.T) {
	good, err := RingAllReduce(6, 36)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Compact().Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}

	bad := func(mutate func(*Schedule)) *CompactSchedule {
		s, err := RingAllReduce(4, 16)
		if err != nil {
			t.Fatal(err)
		}
		mutate(s)
		return s.Compact()
	}
	cases := map[string]*CompactSchedule{
		"self-transfer": bad(func(s *Schedule) {
			s.Steps[0].Transfers[0].Dst = s.Steps[0].Transfers[0].Src
		}),
		"out-of-range node": bad(func(s *Schedule) {
			s.Steps[0].Transfers[0].Dst = 99
		}),
		"region outside buffer": bad(func(s *Schedule) {
			s.Steps[0].Transfers[0].Region.Len = 1 << 20
		}),
		"negative width": bad(func(s *Schedule) {
			s.Steps[0].Transfers[0].Width = -1
		}),
		"conflicting copy writes": bad(func(s *Schedule) {
			last := len(s.Steps) - 1
			tr := s.Steps[last].Transfers[0]
			tr.Src = (tr.Src + 2) % 4
			if tr.Src == tr.Dst {
				tr.Src = (tr.Src + 1) % 4
			}
			s.Steps[last].Transfers = append(s.Steps[last].Transfers, tr)
		}),
	}
	for name, cs := range cases {
		boxedErr := cs.Expand().Validate()
		compactErr := cs.Validate()
		if boxedErr == nil {
			t.Fatalf("%s: boxed validator accepted the mutation", name)
		}
		if compactErr == nil {
			t.Fatalf("%s: compact validator accepted what boxed rejects", name)
		}
	}
}

// TestBuilderPoolReuse: a released schedule's arrays feed the next build.
func TestBuilderPoolReuse(t *testing.T) {
	cs, err := RingAllReduceCompact(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	cs.Release()
	// A fresh build after release must be fully coherent (no stale state).
	cs2, err := RingAllReduceCompact(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer cs2.Release()
	if err := cs2.Validate(); err != nil {
		t.Fatalf("schedule built from pooled arrays invalid: %v", err)
	}
	boxed, _ := RingAllReduce(5, 10)
	if !reflect.DeepEqual(normalize(cs2.Expand()), normalize(boxed)) {
		t.Fatal("pooled rebuild diverges from boxed")
	}
}
