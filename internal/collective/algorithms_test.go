package collective

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Every algorithm constructor, paired with the node counts it supports.
type algCase struct {
	name  string
	build func(n, elems int) (*Schedule, error)
}

func allAlgorithms() []algCase {
	return []algCase{
		{"ring", RingAllReduce},
		{"recursive-doubling", RecursiveDoubling},
		{"halving-doubling", HalvingDoubling},
		{"binomial-tree", BinomialTree},
		{"all-to-all", AllToAllAllReduce},
	}
}

func TestAllReduceCorrectnessSweep(t *testing.T) {
	elemsCases := []int{1, 2, 7, 16, 97, 256}
	for _, alg := range allAlgorithms() {
		for n := 2; n <= 20; n++ {
			for _, elems := range elemsCases {
				s, err := alg.build(n, elems)
				if err != nil {
					t.Fatalf("%s(n=%d, elems=%d): %v", alg.name, n, elems, err)
				}
				if err := VerifyAllReduce(s); err != nil {
					t.Fatalf("%s: %v", alg.name, err)
				}
			}
		}
	}
}

func TestAllReduceCorrectnessProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	algs := allAlgorithms()
	prop := func(nRaw uint8, elemsRaw uint16, algRaw uint8) bool {
		n := int(nRaw)%63 + 2
		elems := int(elemsRaw) % 512
		alg := algs[int(algRaw)%len(algs)]
		s, err := alg.build(n, elems)
		if err != nil {
			return false
		}
		return VerifyAllReduce(s) == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRingStepCount(t *testing.T) {
	for _, n := range []int{2, 3, 8, 17, 128} {
		s, err := RingAllReduce(n, n*4)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumSteps() != 2*(n-1) {
			t.Fatalf("ring(%d) steps = %d, want %d", n, s.NumSteps(), 2*(n-1))
		}
	}
}

func TestRecursiveDoublingStepCount(t *testing.T) {
	cases := map[int]int{2: 1, 4: 2, 8: 3, 1024: 10} // power of two: log2(n)
	for n, want := range cases {
		s, err := RecursiveDoubling(n, 8)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumSteps() != want {
			t.Fatalf("rd(%d) steps = %d, want %d", n, s.NumSteps(), want)
		}
	}
	// Non-power-of-two adds fold + unfold.
	s, err := RecursiveDoubling(6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 2+2 {
		t.Fatalf("rd(6) steps = %d, want 4", s.NumSteps())
	}
}

func TestHalvingDoublingBandwidthOptimal(t *testing.T) {
	// For power-of-two n, HD moves 2*(n-1)/n*elems per node; total traffic
	// n * that = 2*(n-1)*elems, like ring.
	for _, n := range []int{2, 4, 8, 16} {
		elems := 64 * n
		s, err := HalvingDoubling(n, elems)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(2 * (n - 1) * elems)
		if got := s.TotalTrafficElems(); got != want {
			t.Fatalf("hd(%d,%d) traffic = %d, want %d", n, elems, got, want)
		}
		if got, want := s.NumSteps(), 2*CeilLog2(n); got != want {
			t.Fatalf("hd(%d) steps = %d, want %d", n, got, want)
		}
	}
}

func TestBinomialTreeStepCount(t *testing.T) {
	cases := map[int]int{2: 2, 3: 4, 8: 6, 9: 8, 1000: 20}
	for n, want := range cases {
		s, err := BinomialTree(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumSteps() != want {
			t.Fatalf("binomial(%d) steps = %d, want %d", n, s.NumSteps(), want)
		}
	}
}

func TestHierarchicalRingCorrectness(t *testing.T) {
	cases := []struct{ n, g int }{
		{4, 2}, {6, 2}, {6, 3}, {8, 4}, {9, 3}, {12, 4}, {12, 3}, {16, 4}, {16, 16}, {5, 1},
	}
	for _, c := range cases {
		for _, elems := range []int{1, 16, 100, 257} {
			s, err := HierarchicalRing(c.n, c.g, elems)
			if err != nil {
				t.Fatalf("hier(%d,%d): %v", c.n, c.g, err)
			}
			if err := VerifyAllReduce(s); err != nil {
				t.Fatalf("hier(%d,%d,%d): %v", c.n, c.g, elems, err)
			}
		}
	}
}

func TestHierarchicalRingStepCount(t *testing.T) {
	s, err := HierarchicalRing(16, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// (g-1) + 2(G-1) + (g-1) = 3 + 6 + 3
	if s.NumSteps() != 12 {
		t.Fatalf("hier(16,4) steps = %d, want 12", s.NumSteps())
	}
}

func TestHierarchicalRingRejectsBadGroup(t *testing.T) {
	if _, err := HierarchicalRing(10, 3, 8); err == nil {
		t.Fatal("non-dividing group size accepted")
	}
}

func TestConstructorsRejectTinyN(t *testing.T) {
	for _, alg := range allAlgorithms() {
		if _, err := alg.build(1, 8); err == nil {
			t.Fatalf("%s accepted n=1", alg.name)
		}
	}
}

func TestSchedulesValidateCleanRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(30) + 2
		elems := rng.Intn(200)
		for _, alg := range allAlgorithms() {
			s, err := alg.build(n, elems)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s(n=%d,elems=%d): %v", alg.name, n, elems, err)
			}
		}
	}
}

func TestLargeScaleSpotCheck(t *testing.T) {
	// The Figure-2 scales must at least construct + validate quickly.
	for _, n := range []int{128, 256, 512, 1024} {
		for _, alg := range allAlgorithms() {
			if alg.name == "all-to-all" && n > 128 {
				continue // quadratic transfers; exercised at 128 only
			}
			s, err := alg.build(n, 2048)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", alg.name, n, err)
			}
		}
	}
	// Full data-level verification at one large scale.
	s, err := RingAllReduce(256, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAllReduce(s); err != nil {
		t.Fatal(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}
