package collective

import (
	"strings"
	"testing"

	"wrht/internal/tensor"
)

func TestValidateCatchesOutOfRange(t *testing.T) {
	s := &Schedule{Algorithm: "bad", N: 2, Elems: 4, Steps: []Step{{
		Transfers: []Transfer{{Src: 0, Dst: 2, Region: tensor.Region{Offset: 0, Len: 4}}},
	}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected out-of-range error, got %v", err)
	}
}

func TestValidateCatchesSelfTransfer(t *testing.T) {
	s := &Schedule{Algorithm: "bad", N: 2, Elems: 4, Steps: []Step{{
		Transfers: []Transfer{{Src: 1, Dst: 1, Region: tensor.Region{Offset: 0, Len: 4}}},
	}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "self-transfer") {
		t.Fatalf("expected self-transfer error, got %v", err)
	}
}

func TestValidateCatchesBadRegion(t *testing.T) {
	s := &Schedule{Algorithm: "bad", N: 2, Elems: 4, Steps: []Step{{
		Transfers: []Transfer{{Src: 0, Dst: 1, Region: tensor.Region{Offset: 2, Len: 4}}},
	}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "outside buffer") {
		t.Fatalf("expected region error, got %v", err)
	}
}

func TestValidateCatchesConflictingCopies(t *testing.T) {
	s := &Schedule{Algorithm: "bad", N: 3, Elems: 4, Steps: []Step{{
		Transfers: []Transfer{
			{Src: 0, Dst: 2, Region: tensor.Region{Offset: 0, Len: 4}, Op: OpCopy},
			{Src: 1, Dst: 2, Region: tensor.Region{Offset: 2, Len: 2}, Op: OpCopy},
		},
	}}}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "conflicting writes") {
		t.Fatalf("expected conflict error, got %v", err)
	}
}

func TestValidateAllowsOverlappingReduces(t *testing.T) {
	s := &Schedule{Algorithm: "ok", N: 3, Elems: 4, Steps: []Step{{
		Transfers: []Transfer{
			{Src: 0, Dst: 2, Region: tensor.Region{Offset: 0, Len: 4}, Op: OpReduce},
			{Src: 1, Dst: 2, Region: tensor.Region{Offset: 2, Len: 2}, Op: OpReduce},
		},
	}}}
	if err := s.Validate(); err != nil {
		t.Fatalf("overlapping reduces must be legal: %v", err)
	}
}

func TestExecuteSynchronousSemantics(t *testing.T) {
	// A swap step: both nodes send their full buffer simultaneously with
	// OpCopy; synchronous semantics require each to receive the *pre-step*
	// value of the other.
	s := &Schedule{Algorithm: "swap", N: 2, Elems: 2, Steps: []Step{{
		Transfers: []Transfer{
			{Src: 0, Dst: 1, Region: tensor.Region{Offset: 0, Len: 2}, Op: OpCopy},
			{Src: 1, Dst: 0, Region: tensor.Region{Offset: 0, Len: 2}, Op: OpCopy},
		},
	}}}
	bufs := [][]float64{{1, 2}, {10, 20}}
	if err := s.Execute(bufs); err != nil {
		t.Fatal(err)
	}
	if bufs[0][0] != 10 || bufs[1][0] != 1 {
		t.Fatalf("swap broken: %v", bufs)
	}
}

func TestExecuteExchangeReduce(t *testing.T) {
	// RD-style pairwise exchange: both must end with the pre-step sum.
	s := &Schedule{Algorithm: "xchg", N: 2, Elems: 1, Steps: []Step{{
		Transfers: []Transfer{
			{Src: 0, Dst: 1, Region: tensor.Region{Offset: 0, Len: 1}, Op: OpReduce},
			{Src: 1, Dst: 0, Region: tensor.Region{Offset: 0, Len: 1}, Op: OpReduce},
		},
	}}}
	bufs := [][]float64{{3}, {4}}
	if err := s.Execute(bufs); err != nil {
		t.Fatal(err)
	}
	if bufs[0][0] != 7 || bufs[1][0] != 7 {
		t.Fatalf("exchange-reduce broken: %v", bufs)
	}
}

func TestExecuteRejectsWrongShapes(t *testing.T) {
	s := &Schedule{Algorithm: "x", N: 2, Elems: 2}
	if err := s.Execute([][]float64{{1, 2}}); err == nil {
		t.Fatal("wrong buffer count accepted")
	}
	if err := s.Execute([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("wrong buffer length accepted")
	}
}

func TestTrafficAccounting(t *testing.T) {
	s, err := RingAllReduce(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSteps() != 6 {
		t.Fatalf("ring(4) steps = %d, want 6", s.NumSteps())
	}
	if s.TotalTransfers() != 6*4 {
		t.Fatalf("ring(4) transfers = %d, want 24", s.TotalTransfers())
	}
	// Each of the 2(n-1) steps moves n chunks of elems/n: total 2(n-1)*elems.
	if got, want := s.TotalTrafficElems(), int64(2*3*8); got != want {
		t.Fatalf("ring(4,8) traffic = %d, want %d", got, want)
	}
}

func TestOpString(t *testing.T) {
	if OpReduce.String() != "reduce" || OpCopy.String() != "copy" {
		t.Fatal("Op String broken")
	}
}
