package collective

import (
	"fmt"

	"wrht/internal/tensor"
)

// HierarchicalRing builds a two-level ring all-reduce: nodes are split into
// contiguous groups of size g; each group runs an intra-group ring
// reduce-scatter, then the owners of corresponding chunks across groups run
// an inter-group ring all-reduce on their chunk, and finally each group runs
// an intra-group all-gather. It generalizes E-Ring the way Wrht generalizes
// a binary tree and is used as an extra baseline and ablation point.
//
// Step count: (g-1) + 2(G-1) + (g-1) where G = ⌈n/g⌉; groups must divide
// evenly (n % g == 0) to keep chunk ownership aligned across groups.
func HierarchicalRing(n, g, elems int) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: hierarchical ring needs n >= 2, got %d", n)
	}
	if g < 1 || n%g != 0 {
		return nil, fmt.Errorf("collective: group size %d must divide n=%d", g, n)
	}
	G := n / g
	s := &Schedule{Algorithm: fmt.Sprintf("hierarchical-ring(g=%d)", g), N: n, Elems: elems}
	chunks := tensor.Chunks(elems, g)
	node := func(group, member int) int { return group*g + member }

	// Phase 1: intra-group ring reduce-scatter over g chunks.
	for t := 0; t < g-1; t++ {
		st := Step{Label: fmt.Sprintf("intra reduce-scatter %d/%d", t+1, g-1)}
		for grp := 0; grp < G; grp++ {
			for i := 0; i < g; i++ {
				c := ((i-t)%g + g) % g
				st.Transfers = append(st.Transfers, Transfer{
					Src: node(grp, i), Dst: node(grp, (i+1)%g),
					Region: chunks[c], Op: OpReduce,
				})
			}
		}
		if len(st.Transfers) > 0 {
			s.Steps = append(s.Steps, st)
		}
	}
	// Ring reduce-scatter leaves member i owning chunk (i+1)%g, so chunk c
	// is owned by member (c-1+g)%g of every group.
	owner := func(c int) int { return ((c - 1) + g) % g }

	// Phase 2: inter-group ring all-reduce per chunk, among the owners of
	// that chunk across groups, over sub-chunks of the chunk.
	if G > 1 {
		for t := 0; t < G-1; t++ {
			st := Step{Label: fmt.Sprintf("inter reduce-scatter %d/%d", t+1, G-1)}
			for c := 0; c < g; c++ {
				sub := subChunks(chunks[c], G)
				for grp := 0; grp < G; grp++ {
					sc := ((grp-t)%G + G) % G
					if sub[sc].Len == 0 {
						continue
					}
					st.Transfers = append(st.Transfers, Transfer{
						Src: node(grp, owner(c)), Dst: node((grp+1)%G, owner(c)),
						Region: sub[sc], Op: OpReduce,
					})
				}
			}
			if len(st.Transfers) > 0 {
				s.Steps = append(s.Steps, st)
			}
		}
		for t := 0; t < G-1; t++ {
			st := Step{Label: fmt.Sprintf("inter all-gather %d/%d", t+1, G-1)}
			for c := 0; c < g; c++ {
				sub := subChunks(chunks[c], G)
				for grp := 0; grp < G; grp++ {
					sc := ((grp+1-t)%G + G) % G
					if sub[sc].Len == 0 {
						continue
					}
					st.Transfers = append(st.Transfers, Transfer{
						Src: node(grp, owner(c)), Dst: node((grp+1)%G, owner(c)),
						Region: sub[sc], Op: OpCopy,
					})
				}
			}
			if len(st.Transfers) > 0 {
				s.Steps = append(s.Steps, st)
			}
		}
	}

	// Phase 3: intra-group all-gather.
	for t := 0; t < g-1; t++ {
		st := Step{Label: fmt.Sprintf("intra all-gather %d/%d", t+1, g-1)}
		for grp := 0; grp < G; grp++ {
			for i := 0; i < g; i++ {
				c := ((i+1-t)%g + g) % g
				st.Transfers = append(st.Transfers, Transfer{
					Src: node(grp, i), Dst: node(grp, (i+1)%g),
					Region: chunks[c], Op: OpCopy,
				})
			}
		}
		if len(st.Transfers) > 0 {
			s.Steps = append(s.Steps, st)
		}
	}
	return s, nil
}

// subChunks partitions a region into parts contiguous sub-regions.
func subChunks(r tensor.Region, parts int) []tensor.Region {
	subs := tensor.Chunks(r.Len, parts)
	for i := range subs {
		subs[i].Offset += r.Offset
	}
	return subs
}
