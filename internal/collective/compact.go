package collective

import (
	"fmt"
	"math"
	"sync"

	"wrht/internal/ring"
	"wrht/internal/tensor"
)

// CompactSchedule is the columnar (struct-of-arrays) form of a Schedule:
// every transfer field lives in one flat backing slice, and steps are
// half-open ranges of transfer indices. The representation is what the hot
// simulate path consumes — pricing a step walks contiguous arrays instead of
// chasing one heap object per transfer — and what the cross-run schedule
// cache stores. Build one with a ScheduleBuilder (directly, on planners) or
// with Schedule.Compact (conversion); Expand goes back to the boxed form.
//
// A CompactSchedule is immutable after Finish and safe for concurrent
// readers. Release returns its arrays to the builder pool; callers must not
// touch a schedule after releasing it.
type CompactSchedule struct {
	Algorithm string
	N         int
	Elems     int

	// stepOff has len(steps)+1 entries; step s covers transfer indices
	// [stepOff[s], stepOff[s+1]).
	stepOff []int32
	labels  []string

	// Per-transfer columns, indexed by flat transfer index.
	src, dst []int32
	off, ln  []int32
	op       []Op
	routed   []bool
	dir      []ring.Direction
	width    []int32
}

// NumSteps returns the number of synchronous steps.
func (c *CompactSchedule) NumSteps() int { return len(c.labels) }

// Nodes returns the node count (the boxed Schedule's N field as a method,
// so energy accounting can accept either representation).
func (c *CompactSchedule) Nodes() int { return c.N }

// StepBounds returns the half-open flat-index range of step s.
func (c *CompactSchedule) StepBounds(s int) (lo, hi int) {
	return int(c.stepOff[s]), int(c.stepOff[s+1])
}

// StepLabel returns step s's label.
func (c *CompactSchedule) StepLabel(s int) string { return c.labels[s] }

// TotalTransfers returns the number of point-to-point transfers.
func (c *CompactSchedule) TotalTransfers() int { return len(c.src) }

// Transfer materializes the transfer at flat index i.
func (c *CompactSchedule) Transfer(i int) Transfer {
	return Transfer{
		Src:    int(c.src[i]),
		Dst:    int(c.dst[i]),
		Region: tensor.Region{Offset: int(c.off[i]), Len: int(c.ln[i])},
		Op:     c.op[i],
		Routed: c.routed[i],
		Dir:    c.dir[i],
		Width:  int(c.width[i]),
	}
}

// TotalTrafficElems returns the total number of elements moved.
func (c *CompactSchedule) TotalTrafficElems() int64 {
	var n int64
	for _, l := range c.ln {
		n += int64(l)
	}
	return n
}

// Expand converts back to the boxed representation.
func (c *CompactSchedule) Expand() *Schedule {
	s := &Schedule{
		Algorithm: c.Algorithm,
		N:         c.N,
		Elems:     c.Elems,
		Steps:     make([]Step, c.NumSteps()),
	}
	for si := range s.Steps {
		lo, hi := c.StepBounds(si)
		st := Step{Label: c.labels[si]}
		if hi > lo {
			st.Transfers = make([]Transfer, hi-lo)
			for i := lo; i < hi; i++ {
				st.Transfers[i-lo] = c.Transfer(i)
			}
		}
		s.Steps[si] = st
	}
	return s
}

// Compact converts the boxed schedule to columnar form (arrays come from the
// shared builder pool; Release when done on transient schedules).
func (s *Schedule) Compact() *CompactSchedule {
	b := NewScheduleBuilder(s.Algorithm, s.N, s.Elems)
	b.Grow(len(s.Steps), s.TotalTransfers())
	for _, st := range s.Steps {
		b.StartStep(st.Label)
		for _, tr := range st.Transfers {
			b.Add(tr)
		}
	}
	return b.Finish()
}

// Validate checks the same structural invariants as Schedule.Validate,
// directly on the columnar form. The per-step conflicting-writes check runs
// on a reusable per-destination linked list (two scratch slices for the
// whole schedule) instead of a per-step map, so validating is
// allocation-light even for million-transfer schedules.
func (c *CompactSchedule) Validate() error {
	if c.N < 1 {
		return fmt.Errorf("collective: schedule has N=%d", c.N)
	}
	if c.Elems < 0 {
		return fmt.Errorf("collective: schedule has Elems=%d", c.Elems)
	}
	// head[dst] is the flat index of dst's most recent write in the current
	// step (-1 = none); next chains earlier writes within the step.
	head := make([]int32, c.N)
	for i := range head {
		head[i] = -1
	}
	next := make([]int32, len(c.src))
	for si := 0; si < c.NumSteps(); si++ {
		lo, hi := c.StepBounds(si)
		for i := lo; i < hi; i++ {
			tr := c.Transfer(i)
			ti := i - lo
			if tr.Src < 0 || tr.Src >= c.N || tr.Dst < 0 || tr.Dst >= c.N {
				return fmt.Errorf("collective: step %d transfer %d (%v) node out of range [0,%d)",
					si, ti, tr, c.N)
			}
			if tr.Src == tr.Dst {
				return fmt.Errorf("collective: step %d transfer %d is a self-transfer (%v)", si, ti, tr)
			}
			if !tr.Region.Valid(c.Elems) {
				return fmt.Errorf("collective: step %d transfer %d region %v outside buffer of %d",
					si, ti, tr.Region, c.Elems)
			}
			if tr.Width < 0 {
				return fmt.Errorf("collective: step %d transfer %d negative width", si, ti)
			}
			for j := head[tr.Dst]; j >= 0; j = next[j] {
				prev := tensor.Region{Offset: int(c.off[j]), Len: int(c.ln[j])}
				if !prev.Overlaps(tr.Region) {
					continue
				}
				if c.op[j] == OpCopy || tr.Op == OpCopy {
					return fmt.Errorf("collective: step %d: conflicting writes to node %d region %v",
						si, tr.Dst, tr.Region)
				}
			}
			next[i] = head[tr.Dst]
			head[tr.Dst] = int32(i)
		}
		// Unlink this step's chains for the next step.
		for i := lo; i < hi; i++ {
			head[c.dst[i]] = -1
		}
	}
	return nil
}

// csPool recycles CompactSchedule backing arrays between builds.
var csPool = sync.Pool{New: func() any { return new(CompactSchedule) }}

// ScheduleBuilder assembles a CompactSchedule step by step. The zero value
// is invalid; use NewScheduleBuilder, which seeds the columns from a
// sync.Pool so steady-state builds reuse earlier schedules' capacity.
type ScheduleBuilder struct {
	cs *CompactSchedule
}

// NewScheduleBuilder starts a schedule for n nodes over elems elements.
func NewScheduleBuilder(algorithm string, n, elems int) ScheduleBuilder {
	cs := csPool.Get().(*CompactSchedule)
	cs.Algorithm, cs.N, cs.Elems = algorithm, n, elems
	cs.stepOff = append(cs.stepOff[:0], 0)
	// Drop label strings so the pool does not pin them.
	for i := range cs.labels {
		cs.labels[i] = ""
	}
	cs.labels = cs.labels[:0]
	cs.src = cs.src[:0]
	cs.dst = cs.dst[:0]
	cs.off = cs.off[:0]
	cs.ln = cs.ln[:0]
	cs.op = cs.op[:0]
	cs.routed = cs.routed[:0]
	cs.dir = cs.dir[:0]
	cs.width = cs.width[:0]
	return ScheduleBuilder{cs: cs}
}

// Grow pre-sizes the columns for the expected step and transfer counts.
func (b ScheduleBuilder) Grow(steps, transfers int) {
	cs := b.cs
	if cap(cs.stepOff) < steps+1 {
		grown := make([]int32, len(cs.stepOff), steps+1)
		copy(grown, cs.stepOff)
		cs.stepOff = grown
	}
	if cap(cs.labels) < steps {
		cs.labels = make([]string, 0, steps)
	}
	if cap(cs.src) < transfers {
		cs.src = make([]int32, 0, transfers)
		cs.dst = make([]int32, 0, transfers)
		cs.off = make([]int32, 0, transfers)
		cs.ln = make([]int32, 0, transfers)
		cs.op = make([]Op, 0, transfers)
		cs.routed = make([]bool, 0, transfers)
		cs.dir = make([]ring.Direction, 0, transfers)
		cs.width = make([]int32, 0, transfers)
	}
}

// StartStep opens a new synchronous step.
func (b ScheduleBuilder) StartStep(label string) {
	cs := b.cs
	cs.labels = append(cs.labels, label)
	cs.stepOff = append(cs.stepOff, cs.stepOff[len(cs.stepOff)-1])
}

// Add appends a transfer to the currently open step. The columnar form
// stores region coordinates as int32; schedules beyond 2^31-1 elements are
// outside the representable range and panic rather than truncate.
func (b ScheduleBuilder) Add(tr Transfer) {
	cs := b.cs
	if len(cs.labels) == 0 {
		panic("collective: ScheduleBuilder.Add before StartStep")
	}
	if tr.Region.Offset > math.MaxInt32 || tr.Region.Len > math.MaxInt32 {
		panic(fmt.Sprintf("collective: region %v exceeds the compact int32 range", tr.Region))
	}
	cs.src = append(cs.src, int32(tr.Src))
	cs.dst = append(cs.dst, int32(tr.Dst))
	cs.off = append(cs.off, int32(tr.Region.Offset))
	cs.ln = append(cs.ln, int32(tr.Region.Len))
	cs.op = append(cs.op, tr.Op)
	cs.routed = append(cs.routed, tr.Routed)
	cs.dir = append(cs.dir, tr.Dir)
	cs.width = append(cs.width, int32(tr.Width))
	cs.stepOff[len(cs.stepOff)-1]++
}

// Finish seals and returns the schedule; the builder must not be used again.
func (b ScheduleBuilder) Finish() *CompactSchedule {
	return b.cs
}

// Release returns the schedule's arrays to the builder pool. Only release
// schedules that no other goroutine or cache still references.
func (c *CompactSchedule) Release() {
	csPool.Put(c)
}
