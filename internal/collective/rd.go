package collective

import (
	"fmt"

	"wrht/internal/tensor"
)

// pow2Floor returns the largest power of two <= n (n >= 1).
func pow2Floor(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// CeilLog2 returns ⌈log2 n⌉ for n >= 1.
func CeilLog2(n int) int {
	l, p := 0, 1
	for p < n {
		p *= 2
		l++
	}
	return l
}

// RecursiveDoubling builds the classic recursive-doubling all-reduce: log2(n)
// steps in which pairs at distance 1, 2, 4, ... exchange their full buffers
// and both reduce. This is the paper's RD baseline (electrical substrate).
//
// Non-power-of-two node counts use the standard MPICH preamble: the first
// 2*(n-pow2) nodes fold pairwise so a power-of-two core runs the exchange,
// and a final step copies the result back to the folded-out nodes.
func RecursiveDoubling(n, elems int) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: recursive doubling needs n >= 2, got %d", n)
	}
	s := &Schedule{Algorithm: "recursive-doubling", N: n, Elems: elems}
	full := tensor.Region{Offset: 0, Len: elems}

	pow2 := pow2Floor(n)
	rem := n - pow2

	// core[i] = physical node acting as core rank i.
	core := make([]int, 0, pow2)
	if rem > 0 {
		pre := Step{Label: "fold non-power-of-two"}
		for i := 0; i < rem; i++ {
			// node 2i folds into node 2i+1
			pre.Transfers = append(pre.Transfers, Transfer{
				Src: 2 * i, Dst: 2*i + 1, Region: full, Op: OpReduce,
			})
			core = append(core, 2*i+1)
		}
		for i := 2 * rem; i < n; i++ {
			core = append(core, i)
		}
		s.Steps = append(s.Steps, pre)
	} else {
		for i := 0; i < n; i++ {
			core = append(core, i)
		}
	}

	for dist := 1; dist < pow2; dist *= 2 {
		st := Step{Label: fmt.Sprintf("exchange dist %d", dist)}
		for r := 0; r < pow2; r++ {
			p := r ^ dist
			// every ordered pair appears once; both directions in one step
			st.Transfers = append(st.Transfers, Transfer{
				Src: core[r], Dst: core[p], Region: full, Op: OpReduce,
			})
		}
		s.Steps = append(s.Steps, st)
	}

	if rem > 0 {
		post := Step{Label: "unfold"}
		for i := 0; i < rem; i++ {
			post.Transfers = append(post.Transfers, Transfer{
				Src: 2*i + 1, Dst: 2 * i, Region: full, Op: OpCopy,
			})
		}
		s.Steps = append(s.Steps, post)
	}
	return s, nil
}

// HalvingDoubling builds Rabenseifner's all-reduce: a reduce-scatter by
// recursive vector halving followed by an all-gather by recursive doubling.
// It moves 2·(n-1)/n of the buffer per node (bandwidth-optimal) in
// 2·log2(n) steps, and serves as an additional electrical/optical baseline
// and ablation point. Non-power-of-two counts fold as in RecursiveDoubling.
func HalvingDoubling(n, elems int) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: halving-doubling needs n >= 2, got %d", n)
	}
	s := &Schedule{Algorithm: "halving-doubling", N: n, Elems: elems}
	full := tensor.Region{Offset: 0, Len: elems}

	pow2 := pow2Floor(n)
	rem := n - pow2
	core := make([]int, 0, pow2)
	if rem > 0 {
		pre := Step{Label: "fold non-power-of-two"}
		for i := 0; i < rem; i++ {
			pre.Transfers = append(pre.Transfers, Transfer{
				Src: 2 * i, Dst: 2*i + 1, Region: full, Op: OpReduce,
			})
			core = append(core, 2*i+1)
		}
		for i := 2 * rem; i < n; i++ {
			core = append(core, i)
		}
		s.Steps = append(s.Steps, pre)
	} else {
		for i := 0; i < n; i++ {
			core = append(core, i)
		}
	}

	levels := 0
	for p := pow2; p > 1; p /= 2 {
		levels++
	}

	// Reduce-scatter by halving. regions[r] is core rank r's current region;
	// history[l][r] records it before level l's split, for the gather phase.
	regions := make([]tensor.Region, pow2)
	for r := range regions {
		regions[r] = full
	}
	history := make([][]tensor.Region, levels)
	dist := pow2 / 2
	for l := 0; l < levels; l++ {
		history[l] = append([]tensor.Region(nil), regions...)
		st := Step{Label: fmt.Sprintf("halving dist %d", dist)}
		for r := 0; r < pow2; r++ {
			p := r ^ dist
			lo, hi := tensor.Halves(regions[r])
			var keep, send tensor.Region
			if r&dist == 0 {
				keep, send = lo, hi
			} else {
				keep, send = hi, lo
			}
			if send.Len > 0 {
				st.Transfers = append(st.Transfers, Transfer{
					Src: core[r], Dst: core[p], Region: send, Op: OpReduce,
				})
			}
			regions[r] = keep
		}
		s.Steps = append(s.Steps, st)
		dist /= 2
	}

	// All-gather by doubling: undo levels in reverse order.
	dist = 1
	for l := levels - 1; l >= 0; l-- {
		st := Step{Label: fmt.Sprintf("doubling dist %d", dist)}
		for r := 0; r < pow2; r++ {
			p := r ^ dist
			if regions[r].Len > 0 {
				st.Transfers = append(st.Transfers, Transfer{
					Src: core[r], Dst: core[p], Region: regions[r], Op: OpCopy,
				})
			}
		}
		for r := 0; r < pow2; r++ {
			regions[r] = history[l][r]
		}
		s.Steps = append(s.Steps, st)
		dist *= 2
	}

	if rem > 0 {
		post := Step{Label: "unfold"}
		for i := 0; i < rem; i++ {
			post.Transfers = append(post.Transfers, Transfer{
				Src: 2*i + 1, Dst: 2 * i, Region: full, Op: OpCopy,
			})
		}
		s.Steps = append(s.Steps, post)
	}
	return s, nil
}

// BinomialTree builds a reduce-to-root followed by a broadcast, both along a
// binomial tree: 2·⌈log2 n⌉ steps, each moving the full buffer. It is the
// electrical ancestor of Wrht's hierarchical tree (fan-in limited to 2) and
// is used in ablations.
func BinomialTree(n, elems int) (*Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("collective: binomial tree needs n >= 2, got %d", n)
	}
	s := &Schedule{Algorithm: "binomial-tree", N: n, Elems: elems}
	full := tensor.Region{Offset: 0, Len: elems}
	levels := CeilLog2(n)

	// Reduce: at step l, nodes with r mod 2^(l+1) == 2^l send to r - 2^l.
	for l := 0; l < levels; l++ {
		bit := 1 << l
		st := Step{Label: fmt.Sprintf("reduce level %d", l+1)}
		for r := bit; r < n; r += 2 * bit {
			st.Transfers = append(st.Transfers, Transfer{
				Src: r, Dst: r - bit, Region: full, Op: OpReduce,
			})
		}
		s.Steps = append(s.Steps, st)
	}
	// Broadcast: mirror image.
	for l := levels - 1; l >= 0; l-- {
		bit := 1 << l
		st := Step{Label: fmt.Sprintf("broadcast level %d", l+1)}
		for r := bit; r < n; r += 2 * bit {
			st.Transfers = append(st.Transfers, Transfer{
				Src: r - bit, Dst: r, Region: full, Op: OpCopy,
			})
		}
		s.Steps = append(s.Steps, st)
	}
	return s, nil
}
