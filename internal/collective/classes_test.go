package collective

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"wrht/internal/ring"
	"wrht/internal/tensor"
)

// TestRingAllReduceClassedExpandEquality: the O(N) classed generator expands
// to exactly the boxed ring schedule, including ragged and tiny buffers
// (zero-length chunks) where the chunk-ring rotation must stay exact.
func TestRingAllReduceClassedExpandEquality(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16, 23, 64} {
		for _, elems := range []int{0, 1, 7, n - 1, n, n + 1, 1000} {
			if elems < 0 {
				continue
			}
			boxed, err := RingAllReduce(n, elems)
			if err != nil {
				t.Fatal(err)
			}
			cls, err := RingAllReduceClassed(n, elems)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := cls.TotalTransfers(), boxed.TotalTransfers(); got != want {
				t.Fatalf("n=%d elems=%d: classed transfers %d, want %d", n, elems, got, want)
			}
			if got, want := cls.TotalTrafficElems(), boxed.TotalTrafficElems(); got != want {
				t.Fatalf("n=%d elems=%d: classed traffic %d, want %d", n, elems, got, want)
			}
			if !reflect.DeepEqual(normalize(cls.Expand()), normalize(boxed)) {
				t.Fatalf("n=%d elems=%d: classed ring schedule diverges from boxed", n, elems)
			}
			for s := 0; s < cls.NumSteps(); s++ {
				if _, _, disjoint, perm, ok := cls.Sym(s); !ok || !disjoint || !perm {
					t.Fatalf("n=%d elems=%d step %d: ring step lost its certificate (ok=%v disjoint=%v perm=%v)",
						n, elems, s, ok, disjoint, perm)
				}
			}
			cls.Release()
		}
	}
}

// TestClassesFingerprintRoundTrip: Compact → Classes → Expand reproduces the
// boxed schedule exactly for every canonical algorithm (the fingerprint is
// lossless whichever steps it certifies or materializes).
func TestClassesFingerprintRoundTrip(t *testing.T) {
	builders := map[string]func(n, elems int) (*Schedule, error){
		"ring":     RingAllReduce,
		"rd":       RecursiveDoubling,
		"hd":       HalvingDoubling,
		"binomial": BinomialTree,
		"a2a":      AllToAllAllReduce,
	}
	for name, build := range builders {
		for _, n := range []int{2, 3, 5, 8, 16, 23} {
			for _, elems := range []int{0, 1, 7, 64, 1000} {
				s, err := build(n, elems)
				if err != nil {
					t.Fatal(err)
				}
				cs := s.Compact()
				cls := cs.Classes()
				if got, want := cls.TotalTransfers(), cs.TotalTransfers(); got != want {
					t.Fatalf("%s n=%d: classed transfers %d, want %d", name, n, got, want)
				}
				if got, want := cls.TotalTrafficElems(), cs.TotalTrafficElems(); got != want {
					t.Fatalf("%s n=%d: classed traffic %d, want %d", name, n, got, want)
				}
				if !reflect.DeepEqual(normalize(cls.Expand()), normalize(s)) {
					t.Fatalf("%s n=%d elems=%d: fingerprint round trip diverged", name, n, elems)
				}
				if err := cls.Validate(); err != nil {
					t.Fatalf("%s n=%d: %v", name, n, err)
				}
				cls.Release()
				cs.Release()
			}
		}
	}
}

// TestClassesDetectsRingSymmetry: the fingerprint recovers the rotational
// certificate of ring steps from the raw compact transfers (orbit of one,
// stride one, link-disjoint, permutation).
func TestClassesDetectsRingSymmetry(t *testing.T) {
	s, err := RingAllReduce(16, 160)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Compact()
	cls := cs.Classes()
	for si := 0; si < cls.NumSteps(); si++ {
		period, blocks, disjoint, perm, ok := cls.Sym(si)
		if !ok || period != 1 || blocks != 16 || !disjoint || !perm {
			t.Fatalf("step %d: cert (p=%d b=%d dj=%v perm=%v ok=%v), want (1, 16, true, true, true)",
				si, period, blocks, disjoint, perm, ok)
		}
		if lo, hi := cls.ClassBounds(si); hi-lo != 1 {
			t.Fatalf("step %d: %d classes for uniform chunks, want 1", si, hi-lo)
		}
	}
	cls.Release()
	cs.Release()
}

// randomSchedule builds a valid random schedule: arbitrary transfer patterns
// with mixed ops, routing, widths, and region shapes (including zero-length
// regions), never writing conflicting copies (each destination region is
// written by at most one transfer per step).
func randomSchedule(rng *rand.Rand, n, elems, steps int) *Schedule {
	s := &Schedule{Algorithm: "random", N: n, Elems: elems}
	chunks := tensor.Chunks(elems, n)
	for st := 0; st < steps; st++ {
		step := Step{Label: fmt.Sprintf("random %d", st)}
		used := map[int]bool{}
		for k, lim := 0, rng.Intn(2*n+1); k < lim; k++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			if src == dst || used[dst] {
				continue
			}
			used[dst] = true
			tr := Transfer{
				Src: src, Dst: dst,
				Region: chunks[rng.Intn(n)],
				Op:     Op(rng.Intn(2)),
				Width:  rng.Intn(4),
			}
			if rng.Intn(2) == 0 {
				tr.Routed = true
				tr.Dir = ring.Direction(rng.Intn(2))
			}
			step.Transfers = append(step.Transfers, tr)
		}
		s.Steps = append(s.Steps, step)
	}
	return s
}

// randomSymmetricSchedule builds a valid schedule whose steps are genuine
// block-major rotational orbits: a uniform shift pattern replicated around
// the ring, exercising the detection and certificate paths.
func randomSymmetricSchedule(rng *rand.Rand, n, elems, steps int) *Schedule {
	s := &Schedule{Algorithm: "random-sym", N: n, Elems: elems}
	chunks := tensor.Chunks(elems, n)
	for st := 0; st < steps; st++ {
		step := Step{Label: fmt.Sprintf("sym %d", st)}
		shift := 1 + rng.Intn(n-1)
		width := rng.Intn(3)
		op := Op(rng.Intn(2))
		routed := rng.Intn(2) == 0
		dir := ring.Direction(rng.Intn(2))
		rot := rng.Intn(n)
		for i := 0; i < n; i++ {
			tr := Transfer{
				Src: i, Dst: (i + shift) % n,
				Region: chunks[(i+rot)%n],
				Op:     op,
				Width:  width,
			}
			if routed {
				tr.Routed, tr.Dir = true, dir
			}
			step.Transfers = append(step.Transfers, tr)
		}
		s.Steps = append(s.Steps, step)
	}
	return s
}

// TestClassesRandomizedRoundTrip (property): for randomized schedules —
// symmetric and asymmetric alike — boxed → compact → boxed and
// compact → classes → boxed are both the identity, and the classed totals
// match. This is the structural half of the classed-equality property; the
// pricing half lives in internal/runner.
func TestClassesRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(30)
		elems := rng.Intn(4000)
		var s *Schedule
		if trial%2 == 0 {
			s = randomSchedule(rng, n, elems, 1+rng.Intn(5))
		} else {
			s = randomSymmetricSchedule(rng, n, elems, 1+rng.Intn(5))
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: invalid random schedule: %v", trial, err)
		}
		cs := s.Compact()
		if !reflect.DeepEqual(normalize(cs.Expand()), normalize(s)) {
			t.Fatalf("trial %d: compact round trip diverged", trial)
		}
		cls := cs.Classes()
		if !reflect.DeepEqual(normalize(cls.Expand()), normalize(s)) {
			t.Fatalf("trial %d: classes round trip diverged", trial)
		}
		if got, want := cls.TotalTransfers(), s.TotalTransfers(); got != want {
			t.Fatalf("trial %d: classed transfers %d, want %d", trial, got, want)
		}
		if got, want := cls.TotalTrafficElems(), s.TotalTrafficElems(); got != want {
			t.Fatalf("trial %d: classed traffic %d, want %d", trial, got, want)
		}
		cls.Release()
		cs.Release()
	}
}

// TestCertStatsPartition: CertStats partitions the steps — certified +
// materialized = total, demoted ⊆ materialized — and agrees with the
// per-step certificates Sym reports. The ring all-reduce certifies every
// step; arbitrary random patterns certify none.
func TestCertStatsPartition(t *testing.T) {
	ringSched, err := RingAllReduce(16, 160)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cases := []*Schedule{
		ringSched,
		randomSymmetricSchedule(rng, 12, 600, 3),
		randomSchedule(rng, 9, 300, 4),
	}
	for _, s := range cases {
		cs := s.Compact()
		cls := cs.Classes()
		cert, mat, dem := cls.CertStats()
		if cert+mat != cls.NumSteps() {
			t.Fatalf("%s: certified %d + materialized %d != steps %d",
				s.Algorithm, cert, mat, cls.NumSteps())
		}
		if dem < 0 || dem > mat {
			t.Fatalf("%s: demoted %d outside [0, materialized %d]", s.Algorithm, dem, mat)
		}
		symSteps := 0
		for si := 0; si < cls.NumSteps(); si++ {
			if _, _, _, _, ok := cls.Sym(si); ok {
				symSteps++
			}
		}
		if symSteps != cert {
			t.Fatalf("%s: %d steps report certificates via Sym, CertStats says %d",
				s.Algorithm, symSteps, cert)
		}
		cls.Release()
		cs.Release()
	}

	// The ring is fully certified end to end.
	cs := ringSched.Compact()
	cls := cs.Classes()
	if cert, mat, dem := cls.CertStats(); cert != cls.NumSteps() || mat != 0 || dem != 0 {
		t.Fatalf("ring CertStats = (%d, %d, %d), want (%d, 0, 0)", cert, mat, dem, cls.NumSteps())
	}
	if cls.NumClasses() == 0 {
		t.Fatal("ring schedule reports zero pricing classes")
	}
	cls.Release()
	cs.Release()
}
