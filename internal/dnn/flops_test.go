package dnn

import (
	"math"
	"testing"
)

// gmacs returns the forward multiply-accumulate count in billions.
func gmacs(m Model) float64 { return float64(m.TotalFLOPs()) / 2e9 }

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if d := math.Abs(got-want) / want; d > tol {
		t.Errorf("%s = %.4g, want %.4g (±%.0f%%)", name, got, want, 100*tol)
	}
}

func TestFLOPsMatchPublishedGMACs(t *testing.T) {
	// Published per-image forward GMACs at the standard input resolutions.
	within(t, "VGG16 GMACs", gmacs(VGG16()), 15.47, 0.01)
	within(t, "ResNet50 GMACs", gmacs(ResNet50()), 4.10, 0.02)
	within(t, "GoogLeNet GMACs", gmacs(GoogLeNet()), 1.5, 0.10)
	// AlexNet here is the ungrouped single-tower variant (62.3M params, the
	// paper's count); its MACs are ~1.13G — the often-quoted 0.71G is the
	// two-GPU grouped variant.
	within(t, "AlexNet GMACs", gmacs(AlexNet()), 1.13, 0.02)
}

func TestFLOPsPositivePerConvLayer(t *testing.T) {
	for _, m := range PaperModels() {
		for _, l := range m.Layers {
			if l.FLOPs <= 0 {
				t.Fatalf("%s layer %q has %d FLOPs", m.Name, l.Name, l.FLOPs)
			}
		}
	}
}

func TestConvOut(t *testing.T) {
	cases := []struct{ h, k, s, p, want int }{
		{227, 11, 4, 0, 55},
		{224, 7, 2, 3, 112},
		{112, 3, 2, 1, 56},
		{55, 3, 2, 0, 27},
	}
	for _, c := range cases {
		if got := convOut(c.h, c.k, c.s, c.p); got != c.want {
			t.Errorf("convOut(%d,%d,%d,%d) = %d, want %d", c.h, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestTransformerParams(t *testing.T) {
	// BERT-Large: ≈335M published (without pooler); GPT-2 XL: 1.557B.
	b := BERTLarge()
	within(t, "BERT-Large params", float64(b.TotalParams()), 335e6, 0.01)
	g := GPT2XL()
	within(t, "GPT-2-XL params", float64(g.TotalParams()), 1.557e9, 0.01)
	// Dense-transformer FLOP rule of thumb: ≈2·params·seq per forward pass.
	within(t, "GPT-2-XL FLOPs", float64(g.TotalFLOPs()),
		2*float64(g.TotalParams()-80_411_200-1_638_400)*1024, 0.01)
}

func TestExtensionModelsByName(t *testing.T) {
	for _, name := range []string{"BERT-Large", "GPT-2-XL"} {
		m, err := ByName(name)
		if err != nil || m.Name != name {
			t.Fatalf("ByName(%s): %v %v", name, m, err)
		}
	}
	if len(ExtensionModels()) != 2 {
		t.Fatal("extension catalog size")
	}
}

func TestTransformerBucketsWork(t *testing.T) {
	m := GPT2XL()
	buckets, err := m.Buckets(25<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, b := range buckets {
		total += b.Params
	}
	if total != m.TotalParams() {
		t.Fatalf("buckets cover %d of %d", total, m.TotalParams())
	}
	if len(buckets) < 100 {
		t.Fatalf("GPT-2-XL at 25MB cap should need many buckets, got %d", len(buckets))
	}
}
