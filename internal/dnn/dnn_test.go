package dnn

import (
	"math"
	"testing"
)

func TestAlexNetTotal(t *testing.T) {
	// The classic single-tower count the paper rounds to "62.3M".
	if got := AlexNet().TotalParams(); got != 62_378_344 {
		t.Fatalf("AlexNet params = %d, want 62378344", got)
	}
}

func TestVGG16Total(t *testing.T) {
	if got := VGG16().TotalParams(); got != 138_357_544 {
		t.Fatalf("VGG16 params = %d, want 138357544", got)
	}
}

func TestResNet50Total(t *testing.T) {
	// torchvision resnet50: 25,557,032 (the paper rounds to "25M").
	if got := ResNet50().TotalParams(); got != 25_557_032 {
		t.Fatalf("ResNet50 params = %d, want 25557032", got)
	}
}

func TestGoogLeNetTotal(t *testing.T) {
	// Architectural count with conv biases; the paper quotes 6.7977M for
	// the same network — assert we are within 3% and record the exact value.
	got := GoogLeNet().TotalParams()
	if got != 6_998_552 {
		t.Fatalf("GoogLeNet params = %d, want 6998552", got)
	}
	paper := 6_797_700.0
	if d := math.Abs(float64(got)-paper) / paper; d > 0.03 {
		t.Fatalf("GoogLeNet drifts %.1f%% from the paper's 6.7977M", 100*d)
	}
}

func TestGradientBytes(t *testing.T) {
	m := AlexNet()
	if got := m.GradientBytes(4); got != 4*62_378_344 {
		t.Fatalf("FP32 gradient bytes = %d", got)
	}
	if got := m.GradientBytes(2); got != 2*62_378_344 {
		t.Fatalf("FP16 gradient bytes = %d", got)
	}
	if m.GradientElems() != m.TotalParams() {
		t.Fatal("GradientElems != TotalParams")
	}
}

func TestPaperModelsOrder(t *testing.T) {
	ms := PaperModels()
	want := []string{"AlexNet", "VGG16", "ResNet50", "GoogLeNet"}
	if len(ms) != len(want) {
		t.Fatalf("%d models", len(ms))
	}
	for i, w := range want {
		if ms[i].Name != w {
			t.Fatalf("model %d = %s, want %s", i, ms[i].Name, w)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("VGG16")
	if err != nil || m.Name != "VGG16" {
		t.Fatalf("ByName: %v, %v", m, err)
	}
	if _, err := ByName("LeNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLayersHavePositiveParams(t *testing.T) {
	for _, m := range PaperModels() {
		if len(m.Layers) < 5 {
			t.Fatalf("%s has only %d layers", m.Name, len(m.Layers))
		}
		for _, l := range m.Layers {
			if l.Params <= 0 {
				t.Fatalf("%s layer %q has %d params", m.Name, l.Name, l.Params)
			}
			if l.Name == "" {
				t.Fatalf("%s has unnamed layer", m.Name)
			}
		}
	}
}

func TestResNet50LayerStructure(t *testing.T) {
	m := ResNet50()
	// conv1+bn1, 16 bottlenecks (3+4+6+3) with 6 layers each plus 4
	// downsample pairs of 2, and the final fc:
	// 2 + 16*6 + 4*2 + 1 = 107 layers.
	if len(m.Layers) != 107 {
		t.Fatalf("ResNet50 has %d layers, want 107", len(m.Layers))
	}
}

func TestBucketsCoverAllLayersOnce(t *testing.T) {
	for _, m := range PaperModels() {
		for _, capMB := range []int64{1, 25, 100} {
			buckets, err := m.Buckets(capMB<<20, 4)
			if err != nil {
				t.Fatal(err)
			}
			var total int64
			lastFirst := len(m.Layers)
			for _, b := range buckets {
				if b.FirstLayer > b.LastLayer {
					t.Fatalf("%s: inverted bucket %+v", m.Name, b)
				}
				if b.LastLayer != lastFirst-1 {
					t.Fatalf("%s: bucket %+v not contiguous with previous first %d",
						m.Name, b, lastFirst)
				}
				lastFirst = b.FirstLayer
				var sum int64
				for i := b.FirstLayer; i <= b.LastLayer; i++ {
					sum += m.Layers[i].Params
				}
				if sum != b.Params {
					t.Fatalf("%s: bucket params %d, layers sum %d", m.Name, b.Params, sum)
				}
				total += b.Params
			}
			if lastFirst != 0 {
				t.Fatalf("%s: buckets do not reach layer 0", m.Name)
			}
			if total != m.TotalParams() {
				t.Fatalf("%s: buckets cover %d params of %d", m.Name, total, m.TotalParams())
			}
		}
	}
}

func TestBucketsRespectCap(t *testing.T) {
	m := VGG16()
	const cap = 25 << 20 // 25 MB, Horovod-ish fusion buffer
	buckets, err := m.Buckets(cap, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range buckets {
		oversized := b.Params*4 > cap
		single := b.FirstLayer == b.LastLayer
		if oversized && !single {
			t.Fatalf("multi-layer bucket exceeds cap: %+v", b)
		}
	}
	if len(buckets) < 2 {
		t.Fatalf("VGG16 at 25MB cap should need several buckets, got %d", len(buckets))
	}
}

func TestBucketsValidation(t *testing.T) {
	m := AlexNet()
	if _, err := m.Buckets(0, 4); err == nil {
		t.Fatal("zero cap accepted")
	}
	if _, err := m.Buckets(1<<20, 0); err == nil {
		t.Fatal("zero elem width accepted")
	}
}

func TestStringFormat(t *testing.T) {
	if s := AlexNet().String(); s == "" {
		t.Fatal("empty String")
	}
}
