// Package dnn provides layer-accurate parameter and FLOP tables for the four
// networks the paper evaluates — AlexNet, VGG16, ResNet50 and GoogLeNet —
// computed from the architectural shapes (kernel size, channel counts,
// strides and the resulting spatial resolutions, fully-connected dimensions,
// batch-norm affine pairs). It also provides transformer language models
// (BERT-Large, GPT-2 XL) as modern extension workloads, gradient sizing, and
// the gradient-bucket partitioning data-parallel trainers use to overlap
// communication with backpropagation.
//
// Parameter totals are asserted against the published counts in tests:
// AlexNet 62,378,344 ("62.3M" in the paper), VGG16 138,357,544 ("138M"),
// ResNet50 25,557,032 ("25M"), GoogLeNet 6,998,552 (paper quotes 6.7977M;
// the small delta is bias bookkeeping — documented in DESIGN.md). FLOP
// totals are asserted against published GMACs.
package dnn

import (
	"fmt"
)

// Layer is one parameterized layer (convolution, batch-norm, fully connected
// or transformer sublayer). Parameter counts are per layer so trainers can
// bucket gradients layer-by-layer in backprop (reverse) order; FLOPs are the
// forward cost for one example (0 when unknown).
type Layer struct {
	Name   string
	Params int64
	FLOPs  int64
}

// Model is a named network with its parameter table in forward order.
type Model struct {
	Name   string
	Layers []Layer
}

// TotalParams sums the table.
func (m Model) TotalParams() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.Params
	}
	return t
}

// GradientBytes returns the byte size of one full gradient exchange at the
// given element width (4 for FP32, 2 for FP16).
func (m Model) GradientBytes(bytesPerElem int) int64 {
	return m.TotalParams() * int64(bytesPerElem)
}

// GradientElems returns the number of gradient elements (== parameters).
func (m Model) GradientElems() int64 { return m.TotalParams() }

func (m Model) String() string {
	return fmt.Sprintf("%s(%.4gM params)", m.Name, float64(m.TotalParams())/1e6)
}

// Bucket is a contiguous run of layers whose gradients are fused into one
// all-reduce, as bucketing DDP implementations do.
type Bucket struct {
	FirstLayer, LastLayer int // inclusive indices into Layers, forward order
	Params                int64
}

// Buckets partitions the model's layers, walking in backprop (reverse) order,
// into fusion buckets of at most capBytes each (at the given element width).
// A single layer larger than the cap gets its own bucket. Buckets are
// returned in backprop order — the order their all-reduces become ready.
func (m Model) Buckets(capBytes int64, bytesPerElem int) ([]Bucket, error) {
	if capBytes <= 0 {
		return nil, fmt.Errorf("dnn: bucket cap %d", capBytes)
	}
	if bytesPerElem <= 0 {
		return nil, fmt.Errorf("dnn: bytes per elem %d", bytesPerElem)
	}
	var out []Bucket
	i := len(m.Layers) - 1
	for i >= 0 {
		b := Bucket{FirstLayer: i, LastLayer: i, Params: m.Layers[i].Params}
		j := i - 1
		for j >= 0 && (b.Params+m.Layers[j].Params)*int64(bytesPerElem) <= capBytes {
			b.Params += m.Layers[j].Params
			b.FirstLayer = j
			j--
		}
		out = append(out, b)
		i = j
	}
	return out, nil
}

// builder accumulates layers while tracking parameter and FLOP math.
type builder struct {
	m Model
}

func (b *builder) add(name string, params, flops int64) {
	b.m.Layers = append(b.m.Layers, Layer{Name: name, Params: params, FLOPs: flops})
}

// convP returns the parameter count of a 2D convolution with bias.
func convP(k, cin, cout int) int64 {
	return int64(k)*int64(k)*int64(cin)*int64(cout) + int64(cout)
}

// convNoBiasP returns a bias-free convolution (the ResNet/BN convention).
func convNoBiasP(k, cin, cout int) int64 {
	return int64(k) * int64(k) * int64(cin) * int64(cout)
}

// bnP returns the learnable parameters of a batch-norm layer (γ and β).
func bnP(c int) int64 { return 2 * int64(c) }

// fcP returns the parameter count of a fully connected layer with bias.
func fcP(in, out int) int64 { return int64(in)*int64(out) + int64(out) }

// AlexNet returns the classic single-tower AlexNet (Krizhevsky et al. 2012):
// five convolutions plus three fully connected layers, 62,378,344 parameters
// — the paper's "62.3M" — at 227×227 input.
func AlexNet() Model {
	var b builder
	b.m.Name = "AlexNet"
	h := 227
	h = convOut(h, 11, 4, 0) // 55
	b.add("conv1 11x11x3x96", convP(11, 3, 96), convFLOPs(11, 3, 96, h, h))
	h = convOut(h, 3, 2, 0) // pool -> 27
	b.add("conv2 5x5x96x256", convP(5, 96, 256), convFLOPs(5, 96, 256, h, h))
	h = convOut(h, 3, 2, 0) // pool -> 13
	b.add("conv3 3x3x256x384", convP(3, 256, 384), convFLOPs(3, 256, 384, h, h))
	b.add("conv4 3x3x384x384", convP(3, 384, 384), convFLOPs(3, 384, 384, h, h))
	b.add("conv5 3x3x384x256", convP(3, 384, 256), convFLOPs(3, 384, 256, h, h))
	b.add("fc6 9216x4096", fcP(256*6*6, 4096), fcFLOPs(256*6*6, 4096))
	b.add("fc7 4096x4096", fcP(4096, 4096), fcFLOPs(4096, 4096))
	b.add("fc8 4096x1000", fcP(4096, 1000), fcFLOPs(4096, 1000))
	return b.m
}

// VGG16 returns VGG-16 (Simonyan & Zisserman 2014): thirteen convolutions
// and three fully connected layers, 138,357,544 parameters — the paper's
// "138M" — at 224×224 input.
func VGG16() Model {
	var b builder
	b.m.Name = "VGG16"
	type c struct {
		cin, cout int
		pool      bool // max-pool after this conv
	}
	convs := []c{
		{3, 64, false}, {64, 64, true},
		{64, 128, false}, {128, 128, true},
		{128, 256, false}, {256, 256, false}, {256, 256, true},
		{256, 512, false}, {512, 512, false}, {512, 512, true},
		{512, 512, false}, {512, 512, false}, {512, 512, true},
	}
	h := 224
	for i, cc := range convs {
		b.add(fmt.Sprintf("conv%d 3x3x%dx%d", i+1, cc.cin, cc.cout),
			convP(3, cc.cin, cc.cout), convFLOPs(3, cc.cin, cc.cout, h, h))
		if cc.pool {
			h /= 2
		}
	}
	b.add("fc14 25088x4096", fcP(512*7*7, 4096), fcFLOPs(512*7*7, 4096))
	b.add("fc15 4096x4096", fcP(4096, 4096), fcFLOPs(4096, 4096))
	b.add("fc16 4096x1000", fcP(4096, 1000), fcFLOPs(4096, 1000))
	return b.m
}

// ResNet50 returns ResNet-50 (He et al. 2016) with batch-norm affine
// parameters and bias-free convolutions, 25,557,032 parameters — the
// paper's "25M" (torchvision agrees exactly) — at 224×224 input.
func ResNet50() Model {
	var b builder
	b.m.Name = "ResNet50"
	h := convOut(224, 7, 2, 3) // 112
	b.add("conv1 7x7x3x64", convNoBiasP(7, 3, 64), convFLOPs(7, 3, 64, h, h))
	b.add("bn1", bnP(64), bnFLOPs(64, h, h))
	h = convOut(h, 3, 2, 1) // maxpool -> 56

	// bottleneck appends one block: 1x1 reduce, 3x3 (stride s), 1x1 expand,
	// each with BN; downsample adds a projection 1x1 conv (stride s) + BN.
	bottleneck := func(stage, block, cin, mid, cout, stride int, downsample bool) {
		p := fmt.Sprintf("layer%d.%d", stage, block)
		hout := h / stride
		b.add(p+".conv1 1x1", convNoBiasP(1, cin, mid), convFLOPs(1, cin, mid, h, h))
		b.add(p+".bn1", bnP(mid), bnFLOPs(mid, h, h))
		b.add(p+".conv2 3x3", convNoBiasP(3, mid, mid), convFLOPs(3, mid, mid, hout, hout))
		b.add(p+".bn2", bnP(mid), bnFLOPs(mid, hout, hout))
		b.add(p+".conv3 1x1", convNoBiasP(1, mid, cout), convFLOPs(1, mid, cout, hout, hout))
		b.add(p+".bn3", bnP(cout), bnFLOPs(cout, hout, hout))
		if downsample {
			b.add(p+".downsample 1x1", convNoBiasP(1, cin, cout), convFLOPs(1, cin, cout, hout, hout))
			b.add(p+".downsample.bn", bnP(cout), bnFLOPs(cout, hout, hout))
		}
		h = hout
	}
	type stage struct{ blocks, mid, cout, stride int }
	stages := []stage{{3, 64, 256, 1}, {4, 128, 512, 2}, {6, 256, 1024, 2}, {3, 512, 2048, 2}}
	cin := 64
	for si, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			bottleneck(si+1, blk, cin, st.mid, st.cout, stride, blk == 0)
			cin = st.cout
		}
	}
	b.add("fc 2048x1000", fcP(2048, 1000), fcFLOPs(2048, 1000))
	return b.m
}

// GoogLeNet returns GoogLeNet / Inception-v1 (Szegedy et al. 2015) without
// auxiliary classifiers, convolutions with bias (the pre-BN original),
// 6,998,552 parameters; the paper quotes 6.7977M for the same network.
// Input is 224×224.
func GoogLeNet() Model {
	var b builder
	b.m.Name = "GoogLeNet"
	h := convOut(224, 7, 2, 3) // 112
	b.add("conv1 7x7x3x64", convP(7, 3, 64), convFLOPs(7, 3, 64, h, h))
	h = (h-3)/2 + 2 // ceil-mode maxpool -> 56
	b.add("conv2 1x1x64x64", convP(1, 64, 64), convFLOPs(1, 64, 64, h, h))
	b.add("conv3 3x3x64x192", convP(3, 64, 192), convFLOPs(3, 64, 192, h, h))
	h = (h-3)/2 + 2 // -> 28

	// inception appends one module: 1x1 branch, 1x1→3x3 branch, 1x1→5x5
	// branch, pool→1x1 branch, all at the module's resolution.
	inception := func(name string, in, b1, r3, b3, r5, b5, pp int) {
		b.add(name+".branch1 1x1", convP(1, in, b1), convFLOPs(1, in, b1, h, h))
		b.add(name+".branch2 1x1", convP(1, in, r3), convFLOPs(1, in, r3, h, h))
		b.add(name+".branch2 3x3", convP(3, r3, b3), convFLOPs(3, r3, b3, h, h))
		b.add(name+".branch3 1x1", convP(1, in, r5), convFLOPs(1, in, r5, h, h))
		b.add(name+".branch3 5x5", convP(5, r5, b5), convFLOPs(5, r5, b5, h, h))
		b.add(name+".branch4 1x1", convP(1, in, pp), convFLOPs(1, in, pp, h, h))
	}
	inception("inception3a", 192, 64, 96, 128, 16, 32, 32)
	inception("inception3b", 256, 128, 128, 192, 32, 96, 64)
	h = (h-3)/2 + 2 // -> 14
	inception("inception4a", 480, 192, 96, 208, 16, 48, 64)
	inception("inception4b", 512, 160, 112, 224, 24, 64, 64)
	inception("inception4c", 512, 128, 128, 256, 24, 64, 64)
	inception("inception4d", 512, 112, 144, 288, 32, 64, 64)
	inception("inception4e", 528, 256, 160, 320, 32, 128, 128)
	h = (h-3)/2 + 2 // -> 7
	inception("inception5a", 832, 256, 160, 320, 32, 128, 128)
	inception("inception5b", 832, 384, 192, 384, 48, 128, 128)
	b.add("fc 1024x1000", fcP(1024, 1000), fcFLOPs(1024, 1000))
	return b.m
}

// Transformer builds a decoder/encoder-only transformer language model with
// the given depth, width and vocabulary: per block q/k/v/o projections
// (4d²+4d), a 4d MLP (8d²+5d) and two layer norms (4d), plus token and
// position embeddings. seq is the context length used for FLOP accounting
// (2·params·seq per forward pass, the standard dense-transformer estimate).
func Transformer(name string, layers, dmodel, vocab, seq int) Model {
	var b builder
	b.m.Name = name
	d := int64(dmodel)
	b.add("embed.tokens", int64(vocab)*d, 0)
	b.add("embed.positions", int64(seq)*d, 0)
	for l := 0; l < layers; l++ {
		p := fmt.Sprintf("block%d", l)
		attn := 4*d*d + 4*d
		mlp := 8*d*d + 5*d
		ln := 4 * d
		b.add(p+".attn", attn, 2*attn*int64(seq))
		b.add(p+".mlp", mlp, 2*mlp*int64(seq))
		b.add(p+".ln", ln, 2*ln*int64(seq))
	}
	b.add("ln_f", 2*d, 2*2*d*int64(seq))
	return b.m
}

// BERTLarge returns BERT-Large (Devlin et al. 2018): 24 layers, d=1024,
// ≈336M parameters — a modern extension workload beyond the paper's CNNs.
func BERTLarge() Model {
	return Transformer("BERT-Large", 24, 1024, 30522, 512)
}

// GPT2XL returns GPT-2 XL (Radford et al. 2019): 48 layers, d=1600, ≈1.56B
// parameters — the large-gradient extension workload.
func GPT2XL() Model {
	return Transformer("GPT-2-XL", 48, 1600, 50257, 1024)
}

// PaperModels returns the four evaluation networks in the paper's Figure-2
// order.
func PaperModels() []Model {
	return []Model{AlexNet(), VGG16(), ResNet50(), GoogLeNet()}
}

// ExtensionModels returns the transformer workloads added beyond the paper.
func ExtensionModels() []Model {
	return []Model{BERTLarge(), GPT2XL()}
}

// ByName looks a model up case-sensitively by its catalog name (the paper's
// four plus the transformer extensions).
func ByName(name string) (Model, error) {
	for _, m := range append(PaperModels(), ExtensionModels()...) {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("dnn: unknown model %q (have AlexNet, VGG16, ResNet50, GoogLeNet, BERT-Large, GPT-2-XL)", name)
}
