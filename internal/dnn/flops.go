package dnn

// Forward-pass FLOP accounting. Convolution FLOPs are 2·k²·Cin·Cout·Hout·Wout
// (multiply + add), fully connected layers 2·in·out, batch-norm 2·C·H·W.
// The builders in dnn.go attach these to each layer by tracking the spatial
// resolution through the network; totals are asserted against published
// GMACs in tests (AlexNet ≈0.71, VGG16 ≈15.5, ResNet50 ≈4.1, GoogLeNet ≈1.5
// GMACs per 224²/227² image).

// TotalFLOPs sums the per-layer forward FLOPs (0 for models built without
// FLOP annotations).
func (m Model) TotalFLOPs() int64 {
	var t int64
	for _, l := range m.Layers {
		t += l.FLOPs
	}
	return t
}

// convFLOPs is the forward cost of a convolution producing hout×wout.
func convFLOPs(k, cin, cout, hout, wout int) int64 {
	return 2 * int64(k) * int64(k) * int64(cin) * int64(cout) * int64(hout) * int64(wout)
}

// fcFLOPs is the forward cost of a fully connected layer.
func fcFLOPs(in, out int) int64 { return 2 * int64(in) * int64(out) }

// bnFLOPs is the forward cost of batch normalization over c×h×w.
func bnFLOPs(c, h, w int) int64 { return 2 * int64(c) * int64(h) * int64(w) }

// convOut returns the output resolution of a convolution/pool with kernel k,
// stride s and padding p on an h×h input.
func convOut(h, k, s, p int) int {
	return (h+2*p-k)/s + 1
}
