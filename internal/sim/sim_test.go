package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	if end := e.Run(); end != 3 {
		t.Fatalf("end time %v", end)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order %v", order)
		}
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var order []string
	e.At(1, func() { order = append(order, "a") })
	e.At(1, func() { order = append(order, "b") })
	e.At(1, func() { order = append(order, "c") })
	e.Run()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("tie order %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []float64
	e.At(1, func() {
		hits = append(hits, e.Now())
		e.After(0.5, func() { hits = append(hits, e.Now()) })
	})
	end := e.Run()
	if end != 1.5 || len(hits) != 2 || hits[1] != 1.5 {
		t.Fatalf("end=%v hits=%v", end, hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNaNTimePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time accepted")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(float64(i), func() { count++ })
	}
	if n := e.RunUntil(3); n != 3 || count != 3 {
		t.Fatalf("executed %d, count %d", n, count)
	}
	if e.Now() != 3 {
		t.Fatalf("now %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run()
	if count != 5 || e.Steps() != 5 {
		t.Fatalf("count %d steps %d", count, e.Steps())
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	var e Engine
	e.RunUntil(7)
	if e.Now() != 7 {
		t.Fatalf("now %v", e.Now())
	}
}

func TestDeterministicUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var times []float64
		for i := 0; i < 500; i++ {
			tt := rng.Float64() * 100
			e.At(tt, func() { times = append(times, e.Now()) })
		}
		e.Run()
		return times
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if !sort.Float64sAreSorted(a) {
		t.Fatal("event times not monotone")
	}
}
