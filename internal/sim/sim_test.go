package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var e Engine
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	if end := e.Run(); end != 3 {
		t.Fatalf("end time %v", end)
	}
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order %v", order)
		}
	}
}

func TestTiesBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var order []string
	e.At(1, func() { order = append(order, "a") })
	e.At(1, func() { order = append(order, "b") })
	e.At(1, func() { order = append(order, "c") })
	e.Run()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("tie order %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []float64
	e.At(1, func() {
		hits = append(hits, e.Now())
		e.After(0.5, func() { hits = append(hits, e.Now()) })
	})
	end := e.Run()
	if end != 1.5 || len(hits) != 2 || hits[1] != 1.5 {
		t.Fatalf("end=%v hits=%v", end, hits)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestNaNTimePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time accepted")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 5; i++ {
		e.At(float64(i), func() { count++ })
	}
	if n := e.RunUntil(3); n != 3 || count != 3 {
		t.Fatalf("executed %d, count %d", n, count)
	}
	if e.Now() != 3 {
		t.Fatalf("now %v", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Run()
	if count != 5 || e.Steps() != 5 {
		t.Fatalf("count %d steps %d", count, e.Steps())
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	var e Engine
	e.RunUntil(7)
	if e.Now() != 7 {
		t.Fatalf("now %v", e.Now())
	}
}

func TestDeterministicUnderRandomLoad(t *testing.T) {
	run := func(seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var times []float64
		for i := 0; i < 500; i++ {
			tt := rng.Float64() * 100
			e.At(tt, func() { times = append(times, e.Now()) })
		}
		e.Run()
		return times
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if !sort.Float64sAreSorted(a) {
		t.Fatal("event times not monotone")
	}
}

// --- PR 3 edge cases: the typed 4-ary heap engine ---

func TestRunUntilAdvancesClockPastDrainedQueue(t *testing.T) {
	var e Engine
	ran := false
	e.At(2, func() { ran = true })
	// The queue drains at t=2; the clock must still advance to the horizon.
	if n := e.RunUntil(10); n != 1 || !ran {
		t.Fatalf("executed %d, ran=%v", n, ran)
	}
	if e.Now() != 10 {
		t.Fatalf("now %v, want 10", e.Now())
	}
	// A horizon behind the clock must not move time backwards.
	if n := e.RunUntil(5); n != 0 {
		t.Fatalf("executed %d on empty queue", n)
	}
	if e.Now() != 10 {
		t.Fatalf("now %v after RunUntil(5), want 10", e.Now())
	}
}

func TestSchedulePastTimePanics(t *testing.T) {
	var e Engine
	h := e.Register(func(int32) {})
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("Schedule in the past did not panic")
			}
		}()
		e.Schedule(1, h, 0)
	})
	e.Run()
}

func TestScheduleNaNPanics(t *testing.T) {
	var e Engine
	h := e.Register(func(int32) {})
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time accepted by Schedule")
		}
	}()
	e.Schedule(math.NaN(), h, 0)
}

func TestScheduleUnregisteredHandlerPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered handler accepted")
		}
	}()
	e.Schedule(1, 7, 0)
}

func TestHandlerDispatchCarriesArg(t *testing.T) {
	var e Engine
	var got []int32
	h := e.Register(func(arg int32) { got = append(got, arg) })
	e.Schedule(2, h, 20)
	e.Schedule(1, h, 10)
	e.Schedule(3, h, 30)
	e.Run()
	for i, want := range []int32{10, 20, 30} {
		if got[i] != want {
			t.Fatalf("dispatch order %v", got)
		}
	}
}

// TestQuaternaryHeapTieBreaking drives the 4-ary heap through heavy same-time
// contention: many events share timestamps, interleaved with earlier and
// later ones, and every tie must still resolve in scheduling order.
func TestQuaternaryHeapTieBreaking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var e Engine
	type rec struct {
		time float64
		id   int
	}
	var got []rec
	h := e.Register(func(arg int32) { got = append(got, rec{e.Now(), int(arg)}) })
	// Only 5 distinct timestamps over 2000 events: ~400-way ties each.
	for i := 0; i < 2000; i++ {
		e.Schedule(float64(rng.Intn(5)), h, int32(i))
	}
	e.Run()
	if len(got) != 2000 {
		t.Fatalf("ran %d events", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].time < got[i-1].time {
			t.Fatalf("time went backwards at %d", i)
		}
		if got[i].time == got[i-1].time && got[i].id < got[i-1].id {
			t.Fatalf("tie at t=%v broke out of scheduling order: %d before %d",
				got[i].time, got[i-1].id, got[i].id)
		}
	}
}

func TestMixedClosureAndHandlerOrdering(t *testing.T) {
	var e Engine
	var order []string
	h := e.Register(func(arg int32) { order = append(order, fmt.Sprintf("h%d", arg)) })
	e.At(1, func() { order = append(order, "c0") })
	e.Schedule(1, h, 1)
	e.At(1, func() { order = append(order, "c2") })
	e.Schedule(1, h, 3)
	e.Run()
	want := []string{"c0", "h1", "c2", "h3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("mixed order %v, want %v", order, want)
		}
	}
}

func TestResetReusesSlab(t *testing.T) {
	var e Engine
	count := 0
	h := e.Register(func(int32) { count++ })
	for i := 0; i < 100; i++ {
		e.Schedule(float64(i), h, 0)
	}
	e.Run()
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Steps() != 0 {
		t.Fatalf("reset left now=%v pending=%d steps=%d", e.Now(), e.Pending(), e.Steps())
	}
	// Handlers survive reset; the slab is reused.
	e.Schedule(1, h, 0)
	e.Run()
	if count != 101 {
		t.Fatalf("count %d", count)
	}
}

// TestRunAllocationFree asserts the tentpole property: a steady-state Run
// over typed handler events performs zero per-event heap allocations.
func TestRunAllocationFree(t *testing.T) {
	var e Engine
	var h HandlerID
	h = e.Register(func(arg int32) {
		if arg > 0 {
			e.Schedule(e.Now()+1, h, arg-1)
		}
	})
	e.Grow(4)
	// Warm up the slab.
	e.Schedule(0, h, 100)
	e.Run()
	allocs := testing.AllocsPerRun(10, func() {
		e.Reset()
		e.Schedule(0, h, 1000)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("Run allocated %.1f times per run, want 0", allocs)
	}
}

func TestMaxPendingTracksHeapDepth(t *testing.T) {
	var e Engine
	if e.MaxPending() != 0 {
		t.Fatalf("fresh engine MaxPending = %d, want 0", e.MaxPending())
	}
	for i := 1; i <= 5; i++ {
		e.At(float64(i), func() {})
	}
	// Draining events must not lower the recorded peak.
	e.Run()
	if got := e.MaxPending(); got != 5 {
		t.Fatalf("MaxPending = %d, want 5", got)
	}
	// Nested scheduling past the prior peak raises it.
	e.Reset()
	if e.MaxPending() != 0 {
		t.Fatalf("Reset did not clear MaxPending: %d", e.MaxPending())
	}
	e.At(1, func() {
		for i := 0; i < 7; i++ {
			e.At(2+float64(i), func() {})
		}
	})
	e.Run()
	if got := e.MaxPending(); got != 7 {
		t.Fatalf("MaxPending after nested scheduling = %d, want 7", got)
	}
}
