// Package sim is a small deterministic discrete-event engine: events execute
// in (time, sequence) order, so ties break by scheduling order and every run
// of the same program is identical. It underpins the message-level optical
// simulator (internal/opticalsim) and the multi-tenant fabric co-simulator
// (internal/fabric).
//
// The engine is allocation-light by construction: events live in a typed
// 4-ary min-heap backed by one flat slab (no per-event boxing, no
// container/heap interface{} round-trips), and callbacks dispatch through
// integer handler ids registered once per program (Register/Schedule), so a
// steady-state Run executes zero per-event heap allocations. The historical
// closure API (At/After) remains as a thin shim over the same slab: the
// closure is parked in a free-listed slot and dispatched by index.
package sim

import (
	"fmt"
	"math"
)

// Handler is an integer-dispatch callback: arg is whatever small integer the
// scheduler packed at Schedule time (typically an index into caller state).
type Handler func(arg int32)

// HandlerID names a registered Handler.
type HandlerID int32

// closureHandler marks shim events whose arg indexes Engine.fns.
const closureHandler HandlerID = -1

// event is one slab entry of the 4-ary heap. Ordering is (time, seq):
// seq is assigned in scheduling order, so ties execute in the order they
// were scheduled.
type event struct {
	time float64
	seq  int64
	h    HandlerID
	arg  int32
}

// before reports heap ordering: earlier time first, scheduling order on ties.
func (a event) before(b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// Engine is a discrete-event executor. The zero value is ready to use.
type Engine struct {
	now        float64
	seq        int64
	nsteps     int64
	maxPending int
	// heap is a 4-ary min-heap of events ordered by (time, seq). A 4-ary
	// layout halves the tree depth of a binary heap, trading slightly more
	// comparisons per level for far fewer cache-missing swaps.
	heap []event
	// handlers are the integer-dispatch callbacks (Register).
	handlers []Handler
	// fns and freeFns implement the At/After closure shim: fns parks each
	// pending closure, freeFns recycles drained slots so the slice stops
	// growing once the engine reaches steady state.
	fns     []func()
	freeFns []int32
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.nsteps }

// MaxPending returns the high-water mark of the event queue — the deepest
// the heap has been since the last Reset.
func (e *Engine) MaxPending() int { return e.maxPending }

// Register installs fn as an integer-dispatch callback and returns its id.
// Register once per callback kind (not per event); Schedule then enqueues
// events against the id with zero per-event allocation.
func (e *Engine) Register(fn Handler) HandlerID {
	if fn == nil {
		panic("sim: registering nil handler")
	}
	e.handlers = append(e.handlers, fn)
	return HandlerID(len(e.handlers) - 1)
}

// Schedule enqueues handler h with arg at absolute time t; t must not precede
// the current time.
//
//wrht:noalloc
func (e *Engine) Schedule(t float64, h HandlerID, arg int32) {
	if h < 0 || int(h) >= len(e.handlers) {
		panic(fmt.Sprintf("sim: scheduling unregistered handler %d", h))
	}
	e.push(t, h, arg)
}

// push validates t and sifts a new event into the heap.
//
//wrht:noalloc
func (e *Engine) push(t float64, h HandlerID, arg int32) {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	ev := event{time: t, seq: e.seq, h: h, arg: arg}
	e.heap = append(e.heap, ev)
	if len(e.heap) > e.maxPending {
		e.maxPending = len(e.heap)
	}
	// Sift up.
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(e.heap[parent]) {
			break
		}
		e.heap[i] = e.heap[parent]
		i = parent
	}
	e.heap[i] = ev
}

// pop removes and returns the earliest event.
//
//wrht:noalloc
func (e *Engine) pop() event {
	top := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap = e.heap[:n]
	if n == 0 {
		return top
	}
	// Sift down from the root.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Pick the smallest of up to four children.
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.heap[c].before(e.heap[min]) {
				min = c
			}
		}
		if !e.heap[min].before(last) {
			break
		}
		e.heap[i] = e.heap[min]
		i = min
	}
	e.heap[i] = last
	return top
}

// Grow preallocates heap capacity for n additional pending events, so bulk
// scheduling does not re-grow the slab.
func (e *Engine) Grow(n int) {
	if free := cap(e.heap) - len(e.heap); free < n {
		grown := make([]event, len(e.heap), len(e.heap)+n)
		copy(grown, e.heap)
		e.heap = grown
	}
}

// Reset returns the engine to time zero with an empty queue, keeping the
// event slab and registered handlers for reuse.
func (e *Engine) Reset() {
	e.now, e.seq, e.nsteps = 0, 0, 0
	e.maxPending = 0
	e.heap = e.heap[:0]
	for i := range e.fns {
		e.fns[i] = nil
	}
	e.fns = e.fns[:0]
	e.freeFns = e.freeFns[:0]
}

// At schedules fn at absolute time t; t must not precede the current time.
// This is the closure shim over the typed slab: prefer Register/Schedule on
// hot paths, where the callback set is fixed and arg carries the state index.
func (e *Engine) At(t float64, fn func()) {
	var slot int32
	if n := len(e.freeFns); n > 0 {
		slot = e.freeFns[n-1]
		e.freeFns = e.freeFns[:n-1]
		e.fns[slot] = fn
	} else {
		slot = int32(len(e.fns))
		e.fns = append(e.fns, fn)
	}
	e.push(t, closureHandler, slot)
}

// After schedules fn delay seconds from now; delay must be non-negative.
func (e *Engine) After(delay float64, fn func()) {
	e.At(e.now+delay, fn)
}

// Run executes events until the queue drains, returning the final time.
//
//wrht:noalloc
func (e *Engine) Run() float64 {
	for len(e.heap) > 0 {
		e.step()
	}
	return e.now
}

// RunChecked is Run with a cancellation hook: check is invoked every
// `every` executed events (<= 0 selects a default of 1024), and a non-nil
// return abandons the simulation — the pending queue is dropped and the
// check's error is returned with the clock frozen at the abandonment
// instant. A nil check degrades to plain Run. This is the seam that lets a
// serving deadline kill an in-flight fabric or fleet co-simulation at an
// event boundary instead of burning a worker to completion.
//
//wrht:noalloc
func (e *Engine) RunChecked(every int64, check func() error) (float64, error) {
	if check == nil {
		return e.Run(), nil
	}
	if every <= 0 {
		every = 1024
	}
	n := int64(0)
	for len(e.heap) > 0 {
		e.step()
		if n++; n%every == 0 {
			if err := check(); err != nil {
				e.heap = e.heap[:0]
				return e.now, err
			}
		}
	}
	return e.now, nil
}

// RunUntil executes events with time <= t, then sets the clock to t (if the
// queue drained earlier) and returns the number of events executed.
//
//wrht:noalloc
func (e *Engine) RunUntil(t float64) int64 {
	executed := int64(0)
	for len(e.heap) > 0 && e.heap[0].time <= t {
		e.step()
		executed++
	}
	if e.now < t {
		e.now = t
	}
	return executed
}

//wrht:noalloc
func (e *Engine) step() {
	ev := e.pop()
	e.now = ev.time
	e.nsteps++
	if ev.h == closureHandler {
		fn := e.fns[ev.arg]
		e.fns[ev.arg] = nil
		e.freeFns = append(e.freeFns, ev.arg)
		fn()
		return
	}
	e.handlers[ev.h](ev.arg)
}
