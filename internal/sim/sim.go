// Package sim is a small deterministic discrete-event engine: events execute
// in (time, sequence) order, so ties break by scheduling order and every run
// of the same program is identical. It underpins the message-level optical
// simulator (internal/opticalsim).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine is a discrete-event executor. The zero value is ready to use.
type Engine struct {
	now    float64
	seq    int64
	queue  eventQueue
	nsteps int64
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.nsteps }

// At schedules fn at absolute time t; t must not precede the current time.
func (e *Engine) At(t float64, fn func()) {
	if math.IsNaN(t) || t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn delay seconds from now; delay must be non-negative.
func (e *Engine) After(delay float64, fn func()) {
	e.At(e.now+delay, fn)
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() float64 {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with time <= t, then sets the clock to t (if the
// queue drained earlier) and returns the number of events executed.
func (e *Engine) RunUntil(t float64) int64 {
	executed := int64(0)
	for len(e.queue) > 0 && e.queue[0].time <= t {
		e.step()
		executed++
	}
	if e.now < t {
		e.now = t
	}
	return executed
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.time
	e.nsteps++
	ev.fn()
}
