package wdm

import (
	"math/rand"
	"reflect"
	"testing"

	"wrht/internal/ring"
)

// TestRoundsReusedMatchesRounds: the arena-backed variant returns value-equal
// results to Rounds for random demand sets, budgets, policies, and orders —
// and keeps doing so across reuse of one workspace.
func TestRoundsReusedMatchesRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 9, 16} {
		topo := ring.MustNew(n)
		ws := NewWorkspace(topo)
		for trial := 0; trial < 40; trial++ {
			demands := randomDemands(rng, topo, 1+rng.Intn(3*n), 3)
			w := 3 + rng.Intn(8)
			policy := Policy(rng.Intn(2))
			order := Order(rng.Intn(2))
			want, errWant := Rounds(topo, demands, w, policy, order)
			got, errGot := ws.RoundsReused(demands, w, policy, order)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("n=%d trial %d: error divergence: %v vs %v", n, trial, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d trial %d (w=%d %v %v): reused rounds diverge\n got %+v\nwant %+v",
					n, trial, w, policy, order, got, want)
			}
		}
	}
}

// TestSymmetricSingleRoundColorsMatchesRounds: on orbit demand sets that fit
// one round, the symmetric assigner reports exactly the colors a full
// First-Fit Rounds run uses; when the orbit cannot fit, it reports ok=false
// exactly when Rounds needs more than one round.
func TestSymmetricSingleRoundColorsMatchesRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	topo := ring.MustNew(24)
	sa := NewSymmetricAssigner(topo)
	for trial := 0; trial < 60; trial++ {
		w := 2 + rng.Intn(10)
		orbit := randomDemands(rng, topo, 1+rng.Intn(8), w)
		colors, ok, err := sa.SingleRoundColors(orbit, w)
		if err != nil {
			t.Fatal(err)
		}
		rounds, err := Rounds(topo, orbit, w, FirstFit, AsGiven)
		if err != nil {
			t.Fatal(err)
		}
		if ok != (len(rounds) == 1) {
			t.Fatalf("trial %d: ok=%v but full path used %d rounds", trial, ok, len(rounds))
		}
		if ok && colors != rounds[0].Assignment.NumColors {
			t.Fatalf("trial %d: symmetric colors %d, full path %d", trial, colors, rounds[0].Assignment.NumColors)
		}
	}
}

// TestSymmetricAssignerReplication: replicating a link-disjoint orbit
// block-major around the ring changes nothing about the full assignment —
// the whole step uses exactly the orbit's colors in a single round (the
// property classed pricing rests on).
func TestSymmetricAssignerReplication(t *testing.T) {
	topo := ring.MustNew(24)
	sa := NewSymmetricAssigner(topo)
	// Orbit: three demands confined to nodes [0, 6) — one period window of a
	// period-6, 4-block layout.
	orbit := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 3, Dir: ring.CW}, Width: 2},
		{Arc: ring.Arc{Src: 1, Dst: 3, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 5, Dst: 3, Dir: ring.CCW}, Width: 1},
	}
	const w, period, blocks = 8, 6, 4
	colors, ok, err := sa.SingleRoundColors(orbit, w)
	if err != nil || !ok {
		t.Fatalf("orbit solve failed: colors=%d ok=%v err=%v", colors, ok, err)
	}
	var full []Demand
	for b := 0; b < blocks; b++ {
		for _, d := range orbit {
			d.Arc.Src = (d.Arc.Src + b*period) % topo.N()
			d.Arc.Dst = (d.Arc.Dst + b*period) % topo.N()
			full = append(full, d)
		}
	}
	rounds, err := Rounds(topo, full, w, FirstFit, AsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 {
		t.Fatalf("replicated step used %d rounds, want 1", len(rounds))
	}
	if got := rounds[0].Assignment.NumColors; got != colors {
		t.Fatalf("replicated step used %d colors, orbit solve said %d", got, colors)
	}
	if err := Validate(topo, full, rounds[0].Assignment); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetricAssignerMemo: identical orbit shapes solve once and hit the
// shape memo thereafter (verified by pointer-stable results, not timing).
func TestSymmetricAssignerMemo(t *testing.T) {
	topo := ring.MustNew(16)
	sa := NewSymmetricAssigner(topo)
	orbit := []Demand{{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Width: 3}}
	c1, ok1, err1 := sa.SingleRoundColors(orbit, 8)
	c2, ok2, err2 := sa.SingleRoundColors(orbit, 8)
	if err1 != nil || err2 != nil || !ok1 || !ok2 || c1 != c2 || c1 != 3 {
		t.Fatalf("memoized solve inconsistent: (%d,%v,%v) vs (%d,%v,%v)", c1, ok1, err1, c2, ok2, err2)
	}
	// A different budget is a different shape (callers clamp widths first).
	narrow := []Demand{{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Width: 2}}
	c3, ok3, err3 := sa.SingleRoundColors(narrow, 2)
	if err3 != nil || !ok3 || c3 != 2 {
		t.Fatalf("clamped-budget solve: colors=%d ok=%v err=%v, want 2", c3, ok3, err3)
	}
}
