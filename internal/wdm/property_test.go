package wdm

import (
	"math/rand"
	"testing"

	"wrht/internal/ring"
)

func TestRoundsConsistentWithAssign(t *testing.T) {
	// If an unconstrained assignment fits within w colors, the budgeted
	// splitter must produce exactly one round (and vice versa: more rounds
	// imply the unconstrained coloring exceeded w under the same order).
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		top := ring.MustNew(rng.Intn(18) + 2)
		demands := randomDemands(rng, top, rng.Intn(20)+1, 3)
		asg, err := Assign(top, demands, FirstFit, AsGiven)
		if err != nil {
			t.Fatal(err)
		}
		w := rng.Intn(10) + 3
		maxWidth := 0
		for _, d := range demands {
			if d.Width > maxWidth {
				maxWidth = d.Width
			}
		}
		if maxWidth > w {
			continue // Rounds would reject; covered elsewhere
		}
		rounds, err := Rounds(top, demands, w, FirstFit, AsGiven)
		if err != nil {
			t.Fatal(err)
		}
		if asg.NumColors <= w && len(rounds) != 1 {
			t.Fatalf("assignment fits %d <= %d colors but Rounds split into %d",
				asg.NumColors, w, len(rounds))
		}
		if asg.NumColors > w && len(rounds) == 1 {
			t.Fatalf("assignment needs %d > %d colors but Rounds produced one round",
				asg.NumColors, w)
		}
	}
}

func TestAssignDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	top := ring.MustNew(16)
	demands := randomDemands(rng, top, 25, 3)
	a1, err := Assign(top, demands, FirstFit, LongestFirst)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Assign(top, demands, FirstFit, LongestFirst)
	if err != nil {
		t.Fatal(err)
	}
	if a1.NumColors != a2.NumColors {
		t.Fatal("non-deterministic color count")
	}
	for i := range a1.Stripes {
		for j := range a1.Stripes[i] {
			if a1.Stripes[i][j] != a2.Stripes[i][j] {
				t.Fatalf("non-deterministic stripe for demand %d", i)
			}
		}
	}
}

func TestBalancedRoutingNeverWorseLoadThanNaive(t *testing.T) {
	// Balanced all-to-all routing must not exceed the naive shortest-path
	// routing's maximum link load.
	for r := 3; r <= 12; r++ {
		top := ring.MustNew(r * 5)
		nodes := make([]int, r)
		for i := range nodes {
			nodes[i] = i * 5
		}
		naive, err := MaxLinkLoad(top, AllToAllDemands(top, nodes, 1))
		if err != nil {
			t.Fatal(err)
		}
		balanced, err := MaxLinkLoad(top, AllToAllDemandsBalanced(top, nodes, 1))
		if err != nil {
			t.Fatal(err)
		}
		if balanced > naive {
			t.Errorf("r=%d: balanced load %d worse than naive %d", r, balanced, naive)
		}
	}
}

func TestAllToAllDemandsCount(t *testing.T) {
	top := ring.MustNew(20)
	nodes := []int{0, 5, 10, 15}
	for _, demands := range [][]Demand{
		AllToAllDemands(top, nodes, 2),
		AllToAllDemandsBalanced(top, nodes, 2),
	} {
		if len(demands) != len(nodes)*(len(nodes)-1) {
			t.Fatalf("%d demands for %d nodes", len(demands), len(nodes))
		}
		for _, d := range demands {
			if d.Width != 2 {
				t.Fatalf("width %d", d.Width)
			}
			if d.Arc.Src == d.Arc.Dst {
				t.Fatalf("self arc %v", d.Arc)
			}
		}
	}
}

func TestOptimalColorsSimpleCases(t *testing.T) {
	top := ring.MustNew(6)
	// Two disjoint arcs: optimum 1.
	d := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 3, Dst: 4, Dir: ring.CW}, Width: 1},
	}
	if opt, err := OptimalColors(top, d); err != nil || opt != 1 {
		t.Fatalf("disjoint optimum = %d, %v", opt, err)
	}
	// Three mutually conflicting arcs: optimum 3.
	d = []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 3, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 1, Dst: 4, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 2, Dst: 5, Dir: ring.CW}, Width: 1},
	}
	if opt, err := OptimalColors(top, d); err != nil || opt != 3 {
		t.Fatalf("clique optimum = %d, %v", opt, err)
	}
	// Width-2 demand unsupported.
	d[0].Width = 2
	if _, err := OptimalColors(top, d); err == nil {
		t.Fatal("width-2 accepted by OptimalColors")
	}
}
