// Package wdm implements routing-and-wavelength-assignment (RWA) for
// transfers on a WDM optical ring.
//
// A Demand is a directed ring arc plus a stripe width (how many wavelengths
// the transfer uses in parallel). Two demands conflict when their arcs share
// a directed link; conflicting demands must receive disjoint wavelength sets.
// Demands whose arcs are link-disjoint may reuse the same wavelengths — this
// spatial reuse is what the Wrht paper's "wavelength reused" tree exploits.
//
// The package provides the First Fit and Best Fit heuristics referenced by
// the paper, an exact optimal search for small instances (used to validate
// the heuristics), a greedy splitter that breaks an over-subscribed step into
// sequential rounds, and the Liang–Shen ⌈r²/8⌉ bound for single-step
// all-to-all on a ring.
package wdm

import (
	"fmt"
	"sort"

	"wrht/internal/ring"
)

// Demand is a request for Width wavelengths along Arc.
type Demand struct {
	Arc   ring.Arc
	Width int
}

// Policy selects the wavelength-assignment heuristic.
type Policy int

const (
	// FirstFit assigns the lowest-indexed wavelengths that are free on every
	// link of the arc.
	FirstFit Policy = iota
	// BestFit prefers, among feasible wavelengths, those already carrying the
	// most traffic elsewhere on the ring (packing), falling back to index
	// order on ties.
	BestFit
)

func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Order selects the order in which demands are considered.
type Order int

const (
	// AsGiven keeps the caller's order.
	AsGiven Order = iota
	// LongestFirst sorts demands by descending hop count (classic RWA
	// heuristic: long arcs are hardest to place).
	LongestFirst
)

func (o Order) String() string {
	switch o {
	case AsGiven:
		return "as-given"
	case LongestFirst:
		return "longest-first"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Assignment is the result of wavelength assignment. Stripes[i] lists the
// wavelengths given to demands[i], in ascending order; NumColors is the
// total number of distinct wavelengths used (max index + 1).
type Assignment struct {
	Stripes   [][]int
	NumColors int
}

// state tracks, per color, which directed links are occupied.
type state struct {
	topo ring.Topology
	// busy[c] is a bitmap over link indices for color c.
	busy [][]bool
	// usage[c] counts how many demands use color c (for BestFit packing).
	usage []int
}

func newState(t ring.Topology) *state {
	return &state{topo: t}
}

func (s *state) ensure(c int) {
	for len(s.busy) <= c {
		s.busy = append(s.busy, make([]bool, s.topo.NumLinks()))
		s.usage = append(s.usage, 0)
	}
}

// feasible reports whether color c is free on every link of the arc.
func (s *state) feasible(c int, links []int) bool {
	s.ensure(c)
	for _, l := range links {
		if s.busy[c][l] {
			return false
		}
	}
	return true
}

func (s *state) take(c int, links []int) {
	s.ensure(c)
	for _, l := range links {
		s.busy[c][l] = true
	}
	s.usage[c]++
}

func arcLinks(t ring.Topology, a ring.Arc) ([]int, error) {
	if a.Src == a.Dst {
		return nil, fmt.Errorf("wdm: arc %v has zero length", a)
	}
	if !t.Contains(a.Src) || !t.Contains(a.Dst) {
		return nil, fmt.Errorf("wdm: arc %v out of range for N=%d", a, t.N())
	}
	links := make([]int, 0, t.Hops(a))
	t.VisitLinks(a, func(i int) { links = append(links, i) })
	return links, nil
}

// Assign colors every demand with Width wavelengths under the given policy
// and ordering, with no limit on the number of wavelengths. Use Rounds to
// respect a hardware wavelength budget.
func Assign(t ring.Topology, demands []Demand, policy Policy, order Order) (Assignment, error) {
	idx, err := orderIndices(t, demands, order)
	if err != nil {
		return Assignment{}, err
	}
	s := newState(t)
	stripes := make([][]int, len(demands))
	for _, di := range idx {
		d := demands[di]
		links, err := arcLinks(t, d.Arc)
		if err != nil {
			return Assignment{}, err
		}
		if d.Width < 1 {
			return Assignment{}, fmt.Errorf("wdm: demand %v has width %d", d.Arc, d.Width)
		}
		stripe, err := place(s, links, d.Width, policy, -1)
		if err != nil {
			return Assignment{}, err
		}
		stripes[di] = stripe
	}
	return Assignment{Stripes: stripes, NumColors: maxColor(stripes) + 1}, nil
}

// maxColor returns the highest color index used by any stripe, or -1.
func maxColor(stripes [][]int) int {
	max := -1
	for _, st := range stripes {
		for _, c := range st {
			if c > max {
				max = c
			}
		}
	}
	return max
}

// place finds width feasible colors for the given links under policy. If
// limit >= 0, only colors < limit may be used; returns an error when the
// demand cannot fit.
func place(s *state, links []int, width int, policy Policy, limit int) ([]int, error) {
	stripe := make([]int, 0, width)
	switch policy {
	case FirstFit:
		for c := 0; len(stripe) < width; c++ {
			if limit >= 0 && c >= limit {
				return nil, errNoFit
			}
			if s.feasible(c, links) && !contains(stripe, c) {
				stripe = append(stripe, c)
			}
		}
	case BestFit:
		// Gather all feasible colors in the allowed range plus enough fresh
		// colors, then pick the most-used ones.
		max := len(s.busy) + width
		if limit >= 0 {
			max = limit
		}
		type cand struct{ c, usage int }
		var cands []cand
		for c := 0; c < max; c++ {
			if s.feasible(c, links) {
				cands = append(cands, cand{c, s.usage[c]})
			}
		}
		if len(cands) < width {
			return nil, errNoFit
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].usage != cands[j].usage {
				return cands[i].usage > cands[j].usage
			}
			return cands[i].c < cands[j].c
		})
		for i := 0; i < width; i++ {
			stripe = append(stripe, cands[i].c)
		}
		sort.Ints(stripe)
	default:
		return nil, fmt.Errorf("wdm: unknown policy %v", policy)
	}
	for _, c := range stripe {
		s.take(c, links)
	}
	return stripe, nil
}

var errNoFit = fmt.Errorf("wdm: demand does not fit in wavelength budget")

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func orderIndices(t ring.Topology, demands []Demand, order Order) ([]int, error) {
	idx := make([]int, len(demands))
	for i := range idx {
		idx[i] = i
	}
	switch order {
	case AsGiven:
	case LongestFirst:
		sort.SliceStable(idx, func(a, b int) bool {
			return t.Hops(demands[idx[a]].Arc) > t.Hops(demands[idx[b]].Arc)
		})
	default:
		return nil, fmt.Errorf("wdm: unknown order %v", order)
	}
	return idx, nil
}

// Round is one sequential sub-round of a step: the demands (by index into the
// original slice) that can be carried simultaneously within the wavelength
// budget, plus their assignment.
type Round struct {
	Demands    []int
	Assignment Assignment
}

// Rounds splits demands into sequential rounds such that each round's
// assignment uses at most w wavelengths. Demands are considered in the given
// order; a demand that does not fit in the open round closes it and starts a
// new one. A demand whose Width alone exceeds w is an error.
func Rounds(t ring.Topology, demands []Demand, w int, policy Policy, order Order) ([]Round, error) {
	if w < 1 {
		return nil, fmt.Errorf("wdm: wavelength budget %d", w)
	}
	idx, err := orderIndices(t, demands, order)
	if err != nil {
		return nil, err
	}
	var rounds []Round
	var cur *state
	var curIdx []int
	var curStripes [][]int
	flush := func() {
		if cur == nil {
			return
		}
		rounds = append(rounds, Round{
			Demands:    curIdx,
			Assignment: Assignment{Stripes: curStripes, NumColors: maxColor(curStripes) + 1},
		})
		cur, curIdx, curStripes = nil, nil, nil
	}
	for _, di := range idx {
		d := demands[di]
		if d.Width < 1 {
			return nil, fmt.Errorf("wdm: demand %v has width %d", d.Arc, d.Width)
		}
		if d.Width > w {
			return nil, fmt.Errorf("wdm: demand %v width %d exceeds budget %d", d.Arc, d.Width, w)
		}
		links, err := arcLinks(t, d.Arc)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			cur = newState(t)
		}
		stripe, err := place(cur, links, d.Width, policy, w)
		if err == errNoFit {
			flush()
			cur = newState(t)
			stripe, err = place(cur, links, d.Width, policy, w)
		}
		if err != nil {
			return nil, err
		}
		curIdx = append(curIdx, di)
		curStripes = append(curStripes, stripe)
	}
	flush()
	return rounds, nil
}

// Validate checks that asg is a proper wavelength assignment for demands:
// every demand received exactly Width distinct colors, and no two demands
// sharing a directed link share a color.
func Validate(t ring.Topology, demands []Demand, asg Assignment) error {
	if len(asg.Stripes) != len(demands) {
		return fmt.Errorf("wdm: %d stripes for %d demands", len(asg.Stripes), len(demands))
	}
	// owner[link][color] = demand index + 1
	owner := make(map[[2]int]int)
	for i, d := range demands {
		stripe := asg.Stripes[i]
		if len(stripe) != d.Width {
			return fmt.Errorf("wdm: demand %d got %d colors, want %d", i, len(stripe), d.Width)
		}
		seen := make(map[int]bool)
		links, err := arcLinks(t, d.Arc)
		if err != nil {
			return err
		}
		for _, c := range stripe {
			if c < 0 || c >= asg.NumColors {
				return fmt.Errorf("wdm: demand %d color %d outside [0,%d)", i, c, asg.NumColors)
			}
			if seen[c] {
				return fmt.Errorf("wdm: demand %d repeats color %d", i, c)
			}
			seen[c] = true
			for _, l := range links {
				key := [2]int{l, c}
				if prev, ok := owner[key]; ok {
					return fmt.Errorf("wdm: demands %d and %d both use wavelength %d on link %d",
						prev-1, i, c, l)
				}
				owner[key] = i + 1
			}
		}
	}
	return nil
}

// MaxLinkLoad returns the maximum, over directed links, of the total demand
// width crossing the link. It is a lower bound on the number of wavelengths
// any assignment needs.
func MaxLinkLoad(t ring.Topology, demands []Demand) (int, error) {
	load := make([]int, t.NumLinks())
	for _, d := range demands {
		links, err := arcLinks(t, d.Arc)
		if err != nil {
			return 0, err
		}
		for _, l := range links {
			load[l] += d.Width
		}
	}
	max := 0
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	return max, nil
}

// AllToAllDemands builds the demand set for a single-step all-to-all among
// the given nodes: one transfer per ordered pair, routed along the shortest
// ring direction, each of the given stripe width. Antipodal ties alternate
// CW/CCW by source index so the two waveguides carry equal load.
func AllToAllDemands(t ring.Topology, nodes []int, width int) []Demand {
	var out []Demand
	for si, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			cw, ccw := t.Dist(src, dst, ring.CW), t.Dist(src, dst, ring.CCW)
			dir := ring.CW
			switch {
			case ccw < cw:
				dir = ring.CCW
			case ccw == cw && si%2 == 1:
				dir = ring.CCW
			}
			out = append(out, Demand{Arc: ring.Arc{Src: src, Dst: dst, Dir: dir}, Width: width})
		}
	}
	return out
}

// AllToAllDemandsBalanced is AllToAllDemands with load-aware routing: pairs
// are routed (longest span first) in whichever direction currently yields the
// smaller maximum link load. This approximates the routing Liang & Shen use
// to reach the ⌈r²/8⌉ wavelength requirement.
func AllToAllDemandsBalanced(t ring.Topology, nodes []int, width int) []Demand {
	type pair struct{ src, dst, span int }
	var pairs []pair
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			span := t.Dist(src, dst, ring.CW)
			if c := t.Dist(src, dst, ring.CCW); c < span {
				span = c
			}
			pairs = append(pairs, pair{src, dst, span})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].span > pairs[j].span })
	load := make([]int, t.NumLinks())
	peak := func(a ring.Arc) int {
		m := 0
		t.VisitLinks(a, func(l int) {
			if load[l] > m {
				m = load[l]
			}
		})
		return m
	}
	demands := make(map[[2]int]Demand, len(pairs))
	for _, p := range pairs {
		cwArc := ring.Arc{Src: p.src, Dst: p.dst, Dir: ring.CW}
		ccwArc := ring.Arc{Src: p.src, Dst: p.dst, Dir: ring.CCW}
		hcw, hccw := t.Hops(cwArc), t.Hops(ccwArc)
		var arc ring.Arc
		switch {
		case hcw < hccw:
			arc = cwArc
		case hccw < hcw:
			arc = ccwArc
		default: // tie: pick the direction with smaller current peak load
			if peak(cwArc) <= peak(ccwArc) {
				arc = cwArc
			} else {
				arc = ccwArc
			}
		}
		t.VisitLinks(arc, func(l int) { load[l] += width })
		demands[[2]int{p.src, p.dst}] = Demand{Arc: arc, Width: width}
	}
	// Emit in deterministic (src, dst) node order.
	var out []Demand
	for _, src := range nodes {
		for _, dst := range nodes {
			if src != dst {
				out = append(out, demands[[2]int{src, dst}])
			}
		}
	}
	return out
}

// AllToAllDemandsNoWrap routes every ordered pair so that no arc crosses
// the "wrap" span between node N-1 and node 0: ascending pairs travel CW,
// descending pairs CCW. Combined with Wrht's contiguous (never-wrapping)
// groups this makes the whole schedule survive a failure of that span —
// see core.Options.AvoidWrap. Link loads roughly double versus balanced
// routing; the substrate charges any extra rounds honestly.
func AllToAllDemandsNoWrap(t ring.Topology, nodes []int, width int) []Demand {
	var out []Demand
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			dir := ring.CW
			if src > dst {
				dir = ring.CCW
			}
			out = append(out, Demand{Arc: ring.Arc{Src: src, Dst: dst, Dir: dir}, Width: width})
		}
	}
	return out
}

// LiangShenBound is the paper's wavelength requirement ⌈r²/8⌉ for one-step
// all-to-all among r equally spaced nodes on a WDM ring (Liang & Shen).
func LiangShenBound(r int) int {
	return (r*r + 7) / 8
}

// OptimalColors finds the minimum number of wavelengths for width-1 demands
// by exhaustive search. It is exponential and intended only for validating
// heuristics on small instances (len(demands) <= ~12).
func OptimalColors(t ring.Topology, demands []Demand) (int, error) {
	links := make([][]int, len(demands))
	for i, d := range demands {
		if d.Width != 1 {
			return 0, fmt.Errorf("wdm: OptimalColors supports width-1 demands only")
		}
		ls, err := arcLinks(t, d.Arc)
		if err != nil {
			return 0, err
		}
		links[i] = ls
	}
	lb, err := MaxLinkLoad(t, demands)
	if err != nil {
		return 0, err
	}
	conflict := make([][]bool, len(demands))
	for i := range conflict {
		conflict[i] = make([]bool, len(demands))
		for j := range conflict[i] {
			if i != j {
				conflict[i][j] = t.Conflict(demands[i].Arc, demands[j].Arc)
			}
		}
	}
	colors := make([]int, len(demands))
	var try func(i, k int) bool
	try = func(i, k int) bool {
		if i == len(demands) {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			for j := 0; j < i; j++ {
				if conflict[i][j] && colors[j] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[i] = c
				if try(i+1, k) {
					return true
				}
			}
		}
		return false
	}
	for k := lb; ; k++ {
		if try(0, k) {
			return k, nil
		}
		if k > len(demands) {
			return 0, fmt.Errorf("wdm: OptimalColors failed to converge")
		}
	}
}
