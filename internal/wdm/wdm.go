// Package wdm implements routing-and-wavelength-assignment (RWA) for
// transfers on a WDM optical ring.
//
// A Demand is a directed ring arc plus a stripe width (how many wavelengths
// the transfer uses in parallel). Two demands conflict when their arcs share
// a directed link; conflicting demands must receive disjoint wavelength sets.
// Demands whose arcs are link-disjoint may reuse the same wavelengths — this
// spatial reuse is what the Wrht paper's "wavelength reused" tree exploits.
//
// The package provides the First Fit and Best Fit heuristics referenced by
// the paper, an exact optimal search for small instances (used to validate
// the heuristics), a greedy splitter that breaks an over-subscribed step into
// sequential rounds, and the Liang–Shen ⌈r²/8⌉ bound for single-step
// all-to-all on a ring.
package wdm

import (
	"fmt"
	"slices"
	"sort"

	"wrht/internal/ring"
)

// Demand is a request for Width wavelengths along Arc.
type Demand struct {
	Arc   ring.Arc
	Width int
}

// Policy selects the wavelength-assignment heuristic.
type Policy int

const (
	// FirstFit assigns the lowest-indexed wavelengths that are free on every
	// link of the arc.
	FirstFit Policy = iota
	// BestFit prefers, among feasible wavelengths, those already carrying the
	// most traffic elsewhere on the ring (packing), falling back to index
	// order on ties.
	BestFit
)

func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Order selects the order in which demands are considered.
type Order int

const (
	// AsGiven keeps the caller's order.
	AsGiven Order = iota
	// LongestFirst sorts demands by descending hop count (classic RWA
	// heuristic: long arcs are hardest to place).
	LongestFirst
)

func (o Order) String() string {
	switch o {
	case AsGiven:
		return "as-given"
	case LongestFirst:
		return "longest-first"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Assignment is the result of wavelength assignment. Stripes[i] lists the
// wavelengths given to demands[i], in ascending order; NumColors is the
// total number of distinct wavelengths used (max index + 1). The stripes of
// one assignment may share a single backing array; callers must treat them
// as read-only.
type Assignment struct {
	Stripes   [][]int
	NumColors int
}

// Workspace holds the reusable scratch state of repeated assignment calls:
// the per-(color, link) occupancy table, the BestFit candidate buffer, and
// the link/order buffers. One Workspace serves any number of sequential
// Assign/Rounds calls on the same topology with zero steady-state
// allocation beyond the result slices; it is not safe for concurrent use.
type Workspace struct {
	topo     ring.Topology
	numLinks int
	// colors is the occupancy high-water mark: the number of distinct colors
	// ever probed since the last reset (mirrors the length of the historical
	// per-color table, which BestFit's candidate range depends on).
	colors int
	// busy is the flat (color, link) table: busy[c*numLinks+l] == epoch means
	// color c is occupied on link l in the current round. Bumping epoch
	// clears the whole table in O(1).
	epoch uint32
	busy  []uint32
	// usage[c] counts demands on color c in the current round (BestFit).
	usage []int
	// inStripe[c] marks colors already chosen for the stripe being placed —
	// the boolean-slice replacement for the historical linear contains scan.
	inStripe []bool
	links    []int // current demand's link indices
	idx      []int // order buffer
	cands    []bfCand

	// RoundsReused result arenas (valid until the next RoundsReused call).
	stripeArena  []int
	demArena     []int
	stripesArena [][]int
	rounds       []Round
}

type bfCand struct{ c, usage int }

// NewWorkspace returns an empty workspace for the topology.
func NewWorkspace(t ring.Topology) *Workspace {
	return &Workspace{topo: t, numLinks: t.NumLinks(), epoch: 1}
}

// reset clears the occupancy state (a fresh round) while keeping capacity.
//
//wrht:noalloc
func (ws *Workspace) reset() {
	ws.epoch++
	if ws.epoch == 0 { // wrapped: the stale marks are indistinguishable, clear
		for i := range ws.busy {
			ws.busy[i] = 0
		}
		ws.epoch = 1
	}
	for c := 0; c < ws.colors; c++ {
		ws.usage[c] = 0
	}
	ws.colors = 0
}

// ensure grows the tables to cover color c.
func (ws *Workspace) ensure(c int) {
	if c < ws.colors {
		return
	}
	for need := (c + 1) * ws.numLinks; len(ws.busy) < need; {
		ws.busy = append(ws.busy, 0)
	}
	for len(ws.usage) <= c {
		ws.usage = append(ws.usage, 0)
		ws.inStripe = append(ws.inStripe, false)
	}
	// Colors in [old colors, c] start this round untouched; their usage may
	// hold counts from an earlier round and must be cleared.
	for i := ws.colors; i <= c; i++ {
		ws.usage[i] = 0
	}
	ws.colors = c + 1
}

// feasible reports whether color c is free on every link of the arc.
//
//wrht:noalloc
func (ws *Workspace) feasible(c int, links []int) bool {
	ws.ensure(c)
	row := ws.busy[c*ws.numLinks:]
	for _, l := range links {
		if row[l] == ws.epoch {
			return false
		}
	}
	return true
}

//wrht:noalloc
func (ws *Workspace) take(c int, links []int) {
	ws.ensure(c)
	row := ws.busy[c*ws.numLinks:]
	for _, l := range links {
		row[l] = ws.epoch
	}
	ws.usage[c]++
}

// demandLinks resolves the demand's arc into ws.links (reused across calls).
//
//wrht:noalloc
func (ws *Workspace) demandLinks(a ring.Arc) ([]int, error) {
	if a.Src == a.Dst {
		return nil, fmt.Errorf("wdm: arc %v has zero length", a)
	}
	if !ws.topo.Contains(a.Src) || !ws.topo.Contains(a.Dst) {
		return nil, fmt.Errorf("wdm: arc %v out of range for N=%d", a, ws.topo.N())
	}
	ws.links = ws.topo.AppendArcLinks(a, ws.links[:0])
	return ws.links, nil
}

func arcLinks(t ring.Topology, a ring.Arc) ([]int, error) {
	if a.Src == a.Dst {
		return nil, fmt.Errorf("wdm: arc %v has zero length", a)
	}
	if !t.Contains(a.Src) || !t.Contains(a.Dst) {
		return nil, fmt.Errorf("wdm: arc %v out of range for N=%d", a, t.N())
	}
	return t.AppendArcLinks(a, make([]int, 0, t.Hops(a))), nil
}

// Assign colors every demand with Width wavelengths under the given policy
// and ordering, with no limit on the number of wavelengths. Use Rounds to
// respect a hardware wavelength budget.
func Assign(t ring.Topology, demands []Demand, policy Policy, order Order) (Assignment, error) {
	return NewWorkspace(t).Assign(demands, policy, order)
}

// Assign is the package-level Assign running on this workspace's scratch.
func (ws *Workspace) Assign(demands []Demand, policy Policy, order Order) (Assignment, error) {
	idx, err := ws.orderIndices(demands, order)
	if err != nil {
		return Assignment{}, err
	}
	ws.reset()
	stripes := make([][]int, len(demands))
	arena := make([]int, 0, totalWidth(demands))
	for _, di := range idx {
		d := demands[di]
		links, err := ws.demandLinks(d.Arc)
		if err != nil {
			return Assignment{}, err
		}
		if d.Width < 1 {
			return Assignment{}, fmt.Errorf("wdm: demand %v has width %d", d.Arc, d.Width)
		}
		var stripe []int
		arena, stripe, err = ws.place(links, d.Width, policy, -1, arena)
		if err != nil {
			return Assignment{}, err
		}
		stripes[di] = stripe
	}
	return Assignment{Stripes: stripes, NumColors: maxColor(stripes) + 1}, nil
}

// totalWidth sums demand widths (the stripe arena capacity; negative widths
// are rejected later by place, so clamp them out of the sum).
func totalWidth(demands []Demand) int {
	n := 0
	for _, d := range demands {
		if d.Width > 0 {
			n += d.Width
		}
	}
	return n
}

// maxColor returns the highest color index used by any stripe, or -1.
func maxColor(stripes [][]int) int {
	max := -1
	for _, st := range stripes {
		for _, c := range st {
			if c > max {
				max = c
			}
		}
	}
	return max
}

// place finds width feasible colors for the given links under policy,
// appending them to arena and returning the grown arena plus the stripe (a
// view into arena; on error the arena is returned unchanged). If limit >= 0,
// only colors < limit may be used; errNoFit means the demand cannot fit.
func (ws *Workspace) place(links []int, width int, policy Policy, limit int, arena []int) ([]int, []int, error) {
	start := len(arena)
	switch policy {
	case FirstFit:
		for c := 0; len(arena)-start < width; c++ {
			if limit >= 0 && c >= limit {
				// Unwind the partial stripe before reporting no-fit.
				for _, cc := range arena[start:] {
					ws.inStripe[cc] = false
				}
				return arena[:start], nil, errNoFit
			}
			if ws.feasible(c, links) && !ws.inStripe[c] {
				ws.inStripe[c] = true
				arena = append(arena, c)
			}
		}
	case BestFit:
		// Gather all feasible colors in the allowed range plus enough fresh
		// colors, then pick the most-used ones.
		max := ws.colors + width
		if limit >= 0 {
			max = limit
		}
		cands := ws.cands[:0]
		for c := 0; c < max; c++ {
			if ws.feasible(c, links) {
				cands = append(cands, bfCand{c, ws.usage[c]})
			}
		}
		ws.cands = cands
		if len(cands) < width {
			return arena[:start], nil, errNoFit
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].usage != cands[j].usage {
				return cands[i].usage > cands[j].usage
			}
			return cands[i].c < cands[j].c
		})
		for i := 0; i < width; i++ {
			arena = append(arena, cands[i].c)
		}
		sort.Ints(arena[start:])
	default:
		return arena[:start], nil, fmt.Errorf("wdm: unknown policy %v", policy)
	}
	stripe := arena[start:len(arena):len(arena)]
	for _, c := range stripe {
		ws.inStripe[c] = false // clear the membership marks for the next stripe
		ws.take(c, links)
	}
	return arena, stripe, nil
}

var errNoFit = fmt.Errorf("wdm: demand does not fit in wavelength budget")

func (ws *Workspace) orderIndices(demands []Demand, order Order) ([]int, error) {
	idx := ws.idx[:0]
	for i := range demands {
		idx = append(idx, i)
	}
	ws.idx = idx
	switch order {
	case AsGiven:
	case LongestFirst:
		sort.SliceStable(idx, func(a, b int) bool {
			return ws.topo.Hops(demands[idx[a]].Arc) > ws.topo.Hops(demands[idx[b]].Arc)
		})
	default:
		return nil, fmt.Errorf("wdm: unknown order %v", order)
	}
	return idx, nil
}

// Round is one sequential sub-round of a step: the demands (by index into the
// original slice) that can be carried simultaneously within the wavelength
// budget, plus their assignment.
type Round struct {
	Demands    []int
	Assignment Assignment
}

// Rounds splits demands into sequential rounds such that each round's
// assignment uses at most w wavelengths. Demands are considered in the given
// order; a demand that does not fit in the open round closes it and starts a
// new one. A demand whose Width alone exceeds w is an error.
func Rounds(t ring.Topology, demands []Demand, w int, policy Policy, order Order) ([]Round, error) {
	return NewWorkspace(t).Rounds(demands, w, policy, order)
}

// Rounds is the package-level Rounds running on this workspace's scratch.
// Result storage is freshly allocated (one backing array per call for the
// stripes, demand indices, and rounds) and stays valid across later
// workspace reuse.
func (ws *Workspace) Rounds(demands []Demand, w int, policy Policy, order Order) ([]Round, error) {
	return ws.roundsImpl(demands, w, policy, order, false)
}

// RoundsReused is Rounds with every piece of result storage owned by the
// workspace: the returned rounds, their Demands index slices, and their
// stripes are all views into reusable arenas, valid only until the next
// Rounds/RoundsReused call. It is the allocation-free form multi-step
// pricers use (optical.StepPricer prices thousands of ring steps per
// schedule); use Rounds when the result must outlive the workspace's next
// call.
func (ws *Workspace) RoundsReused(demands []Demand, w int, policy Policy, order Order) ([]Round, error) {
	return ws.roundsImpl(demands, w, policy, order, true)
}

// roundsImpl is the single round-splitting loop behind Rounds and
// RoundsReused; `reuse` selects workspace-owned arenas versus fresh
// allocations for the result storage. The arenas are pre-sized so appends
// never reallocate mid-run (the returned views alias them).
func (ws *Workspace) roundsImpl(demands []Demand, w int, policy Policy, order Order, reuse bool) ([]Round, error) {
	if w < 1 {
		return nil, fmt.Errorf("wdm: wavelength budget %d", w)
	}
	idx, err := ws.orderIndices(demands, order)
	if err != nil {
		return nil, err
	}
	var (
		arena        []int
		demArena     []int
		stripesArena [][]int
		rounds       []Round
	)
	if reuse {
		if cap(ws.stripeArena) < totalWidth(demands) {
			ws.stripeArena = make([]int, 0, totalWidth(demands))
		}
		if cap(ws.demArena) < len(demands) {
			ws.demArena = make([]int, 0, len(demands))
		}
		if cap(ws.stripesArena) < len(demands) {
			ws.stripesArena = make([][]int, 0, len(demands))
		}
		arena = ws.stripeArena[:0]
		demArena = ws.demArena[:0]
		stripesArena = ws.stripesArena[:0]
		rounds = ws.rounds[:0]
	} else {
		arena = make([]int, 0, totalWidth(demands))
		demArena = make([]int, 0, len(demands))
		stripesArena = make([][]int, 0, len(demands))
	}
	open := false
	demLo, strLo := 0, 0
	flush := func() {
		if !open {
			return
		}
		curIdx := demArena[demLo:len(demArena):len(demArena)]
		curStripes := stripesArena[strLo:len(stripesArena):len(stripesArena)]
		rounds = append(rounds, Round{
			Demands:    curIdx,
			Assignment: Assignment{Stripes: curStripes, NumColors: maxColor(curStripes) + 1},
		})
		open = false
		demLo, strLo = len(demArena), len(stripesArena)
	}
	for _, di := range idx {
		d := demands[di]
		if d.Width < 1 {
			return nil, fmt.Errorf("wdm: demand %v has width %d", d.Arc, d.Width)
		}
		if d.Width > w {
			return nil, fmt.Errorf("wdm: demand %v width %d exceeds budget %d", d.Arc, d.Width, w)
		}
		links, err := ws.demandLinks(d.Arc)
		if err != nil {
			return nil, err
		}
		if !open {
			ws.reset()
			open = true
		}
		var stripe []int
		arena, stripe, err = ws.place(links, d.Width, policy, w, arena)
		if err == errNoFit {
			flush()
			ws.reset()
			open = true
			arena, stripe, err = ws.place(links, d.Width, policy, w, arena)
		}
		if err != nil {
			return nil, err
		}
		demArena = append(demArena, di)
		stripesArena = append(stripesArena, stripe)
	}
	flush()
	if reuse {
		ws.stripeArena, ws.demArena, ws.stripesArena, ws.rounds = arena, demArena, stripesArena, rounds
	}
	return rounds, nil
}

// SymmetricAssigner solves rotationally-symmetric demand sets by their
// representative orbit: a step whose demands are one orbit replicated
// block-major at a fixed node stride, with replicas pairwise link-disjoint
// (the certificate collective.ClassSchedule carries), receives — under First
// Fit in given order — exactly the orbit's coloring in every block. Solving
// the orbit alone therefore yields the full step's round structure and color
// count. Solutions are memoized by orbit shape (demand pattern + budget), so
// the 2(N-1) identical steps of a ring schedule are assigned once.
type SymmetricAssigner struct {
	ws    *Workspace
	arena []int
	memo  map[uint64][]symEntry
}

type symEntry struct {
	demands []Demand
	w       int
	colors  int
	ok      bool
}

// NewSymmetricAssigner returns an assigner for the topology.
func NewSymmetricAssigner(t ring.Topology) *SymmetricAssigner {
	return &SymmetricAssigner{ws: NewWorkspace(t), memo: map[uint64][]symEntry{}}
}

// SingleRoundColors assigns the orbit demands under First Fit (as-given
// order) within budget w and returns the number of distinct colors used.
// ok=false means the orbit alone does not fit in a single round, in which
// case symmetric pricing does not apply and the caller must fall back to the
// materialized path. Widths must already be clamped to [1, w].
func (sa *SymmetricAssigner) SingleRoundColors(orbit []Demand, w int) (colors int, ok bool, err error) {
	h := shapeHash(orbit, w)
	for _, e := range sa.memo[h] {
		if e.w == w && slices.Equal(e.demands, orbit) {
			return e.colors, e.ok, nil
		}
	}
	colors, ok, err = sa.solve(orbit, w)
	if err != nil {
		return 0, false, err
	}
	sa.memo[h] = append(sa.memo[h], symEntry{
		demands: slices.Clone(orbit), w: w, colors: colors, ok: ok,
	})
	return colors, ok, nil
}

func (sa *SymmetricAssigner) solve(orbit []Demand, w int) (int, bool, error) {
	ws := sa.ws
	ws.reset()
	arena := sa.arena[:0]
	colors := 0
	for _, d := range orbit {
		if d.Width < 1 || d.Width > w {
			return 0, false, fmt.Errorf("wdm: symmetric demand %v width %d outside [1,%d]", d.Arc, d.Width, w)
		}
		links, err := ws.demandLinks(d.Arc)
		if err != nil {
			return 0, false, err
		}
		var stripe []int
		arena, stripe, err = ws.place(links, d.Width, FirstFit, w, arena)
		if err == errNoFit {
			sa.arena = arena
			return 0, false, nil
		}
		if err != nil {
			return 0, false, err
		}
		for _, c := range stripe {
			if c+1 > colors {
				colors = c + 1
			}
		}
	}
	sa.arena = arena
	return colors, true, nil
}

// shapeHash is an FNV-1a fingerprint of the orbit's demand pattern; memo
// entries verify full equality, so collisions only cost a comparison.
func shapeHash(orbit []Demand, w int) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(w))
	for _, d := range orbit {
		mix(uint64(d.Arc.Src))
		mix(uint64(d.Arc.Dst))
		mix(uint64(d.Arc.Dir))
		mix(uint64(d.Width))
	}
	return h
}

// Validate checks that asg is a proper wavelength assignment for demands:
// every demand received exactly Width distinct colors, and no two demands
// sharing a directed link share a color.
func Validate(t ring.Topology, demands []Demand, asg Assignment) error {
	if len(asg.Stripes) != len(demands) {
		return fmt.Errorf("wdm: %d stripes for %d demands", len(asg.Stripes), len(demands))
	}
	// owner[link][color] = demand index + 1
	owner := make(map[[2]int]int)
	for i, d := range demands {
		stripe := asg.Stripes[i]
		if len(stripe) != d.Width {
			return fmt.Errorf("wdm: demand %d got %d colors, want %d", i, len(stripe), d.Width)
		}
		seen := make(map[int]bool)
		links, err := arcLinks(t, d.Arc)
		if err != nil {
			return err
		}
		for _, c := range stripe {
			if c < 0 || c >= asg.NumColors {
				return fmt.Errorf("wdm: demand %d color %d outside [0,%d)", i, c, asg.NumColors)
			}
			if seen[c] {
				return fmt.Errorf("wdm: demand %d repeats color %d", i, c)
			}
			seen[c] = true
			for _, l := range links {
				key := [2]int{l, c}
				if prev, ok := owner[key]; ok {
					return fmt.Errorf("wdm: demands %d and %d both use wavelength %d on link %d",
						prev-1, i, c, l)
				}
				owner[key] = i + 1
			}
		}
	}
	return nil
}

// MaxLinkLoad returns the maximum, over directed links, of the total demand
// width crossing the link. It is a lower bound on the number of wavelengths
// any assignment needs.
func MaxLinkLoad(t ring.Topology, demands []Demand) (int, error) {
	load := make([]int, t.NumLinks())
	for _, d := range demands {
		links, err := arcLinks(t, d.Arc)
		if err != nil {
			return 0, err
		}
		for _, l := range links {
			load[l] += d.Width
		}
	}
	max := 0
	for _, v := range load {
		if v > max {
			max = v
		}
	}
	return max, nil
}

// AllToAllDemands builds the demand set for a single-step all-to-all among
// the given nodes: one transfer per ordered pair, routed along the shortest
// ring direction, each of the given stripe width. Antipodal ties alternate
// CW/CCW by source index so the two waveguides carry equal load.
func AllToAllDemands(t ring.Topology, nodes []int, width int) []Demand {
	var out []Demand
	for si, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			cw, ccw := t.Dist(src, dst, ring.CW), t.Dist(src, dst, ring.CCW)
			dir := ring.CW
			switch {
			case ccw < cw:
				dir = ring.CCW
			case ccw == cw && si%2 == 1:
				dir = ring.CCW
			}
			out = append(out, Demand{Arc: ring.Arc{Src: src, Dst: dst, Dir: dir}, Width: width})
		}
	}
	return out
}

// AllToAllDemandsBalanced is AllToAllDemands with load-aware routing: pairs
// are routed (longest span first) in whichever direction currently yields the
// smaller maximum link load. This approximates the routing Liang & Shen use
// to reach the ⌈r²/8⌉ wavelength requirement.
func AllToAllDemandsBalanced(t ring.Topology, nodes []int, width int) []Demand {
	type pair struct{ src, dst, span int }
	var pairs []pair
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			span := t.Dist(src, dst, ring.CW)
			if c := t.Dist(src, dst, ring.CCW); c < span {
				span = c
			}
			pairs = append(pairs, pair{src, dst, span})
		}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].span > pairs[j].span })
	load := make([]int, t.NumLinks())
	peak := func(a ring.Arc) int {
		m := 0
		t.VisitLinks(a, func(l int) {
			if load[l] > m {
				m = load[l]
			}
		})
		return m
	}
	demands := make(map[[2]int]Demand, len(pairs))
	for _, p := range pairs {
		cwArc := ring.Arc{Src: p.src, Dst: p.dst, Dir: ring.CW}
		ccwArc := ring.Arc{Src: p.src, Dst: p.dst, Dir: ring.CCW}
		hcw, hccw := t.Hops(cwArc), t.Hops(ccwArc)
		var arc ring.Arc
		switch {
		case hcw < hccw:
			arc = cwArc
		case hccw < hcw:
			arc = ccwArc
		default: // tie: pick the direction with smaller current peak load
			if peak(cwArc) <= peak(ccwArc) {
				arc = cwArc
			} else {
				arc = ccwArc
			}
		}
		t.VisitLinks(arc, func(l int) { load[l] += width })
		demands[[2]int{p.src, p.dst}] = Demand{Arc: arc, Width: width}
	}
	// Emit in deterministic (src, dst) node order.
	var out []Demand
	for _, src := range nodes {
		for _, dst := range nodes {
			if src != dst {
				out = append(out, demands[[2]int{src, dst}])
			}
		}
	}
	return out
}

// AllToAllDemandsNoWrap routes every ordered pair so that no arc crosses
// the "wrap" span between node N-1 and node 0: ascending pairs travel CW,
// descending pairs CCW. Combined with Wrht's contiguous (never-wrapping)
// groups this makes the whole schedule survive a failure of that span —
// see core.Options.AvoidWrap. Link loads roughly double versus balanced
// routing; the substrate charges any extra rounds honestly.
func AllToAllDemandsNoWrap(t ring.Topology, nodes []int, width int) []Demand {
	var out []Demand
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			dir := ring.CW
			if src > dst {
				dir = ring.CCW
			}
			out = append(out, Demand{Arc: ring.Arc{Src: src, Dst: dst, Dir: dir}, Width: width})
		}
	}
	return out
}

// LiangShenBound is the paper's wavelength requirement ⌈r²/8⌉ for one-step
// all-to-all among r equally spaced nodes on a WDM ring (Liang & Shen).
func LiangShenBound(r int) int {
	return (r*r + 7) / 8
}

// OptimalColors finds the minimum number of wavelengths for width-1 demands
// by exhaustive search. It is exponential and intended only for validating
// heuristics on small instances (len(demands) <= ~12).
func OptimalColors(t ring.Topology, demands []Demand) (int, error) {
	links := make([][]int, len(demands))
	for i, d := range demands {
		if d.Width != 1 {
			return 0, fmt.Errorf("wdm: OptimalColors supports width-1 demands only")
		}
		ls, err := arcLinks(t, d.Arc)
		if err != nil {
			return 0, err
		}
		links[i] = ls
	}
	lb, err := MaxLinkLoad(t, demands)
	if err != nil {
		return 0, err
	}
	conflict := make([][]bool, len(demands))
	for i := range conflict {
		conflict[i] = make([]bool, len(demands))
		for j := range conflict[i] {
			if i != j {
				conflict[i][j] = t.Conflict(demands[i].Arc, demands[j].Arc)
			}
		}
	}
	colors := make([]int, len(demands))
	var try func(i, k int) bool
	try = func(i, k int) bool {
		if i == len(demands) {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			for j := 0; j < i; j++ {
				if conflict[i][j] && colors[j] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[i] = c
				if try(i+1, k) {
					return true
				}
			}
		}
		return false
	}
	for k := lb; ; k++ {
		if try(0, k) {
			return k, nil
		}
		if k > len(demands) {
			return 0, fmt.Errorf("wdm: OptimalColors failed to converge")
		}
	}
}
