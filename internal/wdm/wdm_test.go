package wdm

import (
	"math/rand"
	"testing"

	"wrht/internal/ring"
)

func randomDemands(rng *rand.Rand, t ring.Topology, count, maxWidth int) []Demand {
	out := make([]Demand, count)
	for i := range out {
		src := rng.Intn(t.N())
		dst := rng.Intn(t.N())
		for dst == src {
			dst = rng.Intn(t.N())
		}
		dir := ring.CW
		if rng.Intn(2) == 1 {
			dir = ring.CCW
		}
		out[i] = Demand{Arc: ring.Arc{Src: src, Dst: dst, Dir: dir}, Width: rng.Intn(maxWidth) + 1}
	}
	return out
}

func TestAssignValidRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		top := ring.MustNew(rng.Intn(20) + 2)
		demands := randomDemands(rng, top, rng.Intn(30)+1, 4)
		for _, pol := range []Policy{FirstFit, BestFit} {
			for _, ord := range []Order{AsGiven, LongestFirst} {
				asg, err := Assign(top, demands, pol, ord)
				if err != nil {
					t.Fatalf("Assign(%v,%v): %v", pol, ord, err)
				}
				if err := Validate(top, demands, asg); err != nil {
					t.Fatalf("Validate(%v,%v): %v", pol, ord, err)
				}
			}
		}
	}
}

func TestAssignRespectsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		top := ring.MustNew(rng.Intn(16) + 2)
		demands := randomDemands(rng, top, rng.Intn(20)+1, 3)
		lb, err := MaxLinkLoad(top, demands)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := Assign(top, demands, FirstFit, LongestFirst)
		if err != nil {
			t.Fatal(err)
		}
		if asg.NumColors < lb {
			t.Fatalf("NumColors %d below link-load lower bound %d", asg.NumColors, lb)
		}
	}
}

func TestDisjointArcsReuseWavelengths(t *testing.T) {
	// Wrht's core property: link-disjoint groups reuse the same wavelengths.
	top := ring.MustNew(12)
	// Four disjoint 1-hop arcs spread around the ring.
	demands := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 3, Dst: 4, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 6, Dst: 7, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 9, Dst: 10, Dir: ring.CW}, Width: 1},
	}
	asg, err := Assign(top, demands, FirstFit, AsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if asg.NumColors != 1 {
		t.Fatalf("disjoint arcs should share one wavelength, got %d", asg.NumColors)
	}
}

func TestGroupCollectionNeedsHalfM(t *testing.T) {
	// A Wrht group of m members around a middle representative needs exactly
	// ⌊m/2⌋ wavelengths: members on each side send toward the middle and the
	// two sides travel on opposite waveguides.
	for m := 2; m <= 9; m++ {
		top := ring.MustNew(3 * m)
		// group occupying positions [m, 2m)
		members := make([]int, m)
		for i := range members {
			members[i] = m + i
		}
		rep := ring.Middle(members)
		var demands []Demand
		for _, mem := range members {
			if mem == rep {
				continue
			}
			dir := ring.CW
			if mem > rep {
				dir = ring.CCW
			}
			demands = append(demands, Demand{Arc: ring.Arc{Src: mem, Dst: rep, Dir: dir}, Width: 1})
		}
		asg, err := Assign(top, demands, FirstFit, AsGiven)
		if err != nil {
			t.Fatal(err)
		}
		want := m / 2
		if asg.NumColors != want {
			t.Fatalf("m=%d: group collection used %d wavelengths, want ⌊m/2⌋=%d",
				m, asg.NumColors, want)
		}
	}
}

func TestAllToAllNearLiangShenBound(t *testing.T) {
	// Balanced routing keeps the per-link load at (or under) the paper's
	// ⌈r²/8⌉ requirement for r equally spaced nodes; First-Fit coloring of
	// circular arcs may exceed the load bound by a small constant factor
	// (exact Liang–Shen schedules need a bespoke construction).
	for r := 2; r <= 16; r++ {
		top := ring.MustNew(r * 4)
		nodes := make([]int, r)
		for i := range nodes {
			nodes[i] = i * 4
		}
		demands := AllToAllDemandsBalanced(top, nodes, 1)
		load, err := MaxLinkLoad(top, demands)
		if err != nil {
			t.Fatal(err)
		}
		if load > LiangShenBound(r) {
			t.Errorf("r=%d: balanced routing load %d exceeds Liang–Shen bound %d",
				r, load, LiangShenBound(r))
		}
		asg, err := Assign(top, demands, FirstFit, LongestFirst)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(top, demands, asg); err != nil {
			t.Fatal(err)
		}
		if asg.NumColors < load {
			t.Fatalf("r=%d: coloring beat the load lower bound (%d < %d)", r, asg.NumColors, load)
		}
		slack := LiangShenBound(r) + LiangShenBound(r)/3 + 1
		if asg.NumColors > slack {
			t.Errorf("r=%d: all-to-all used %d wavelengths, want <= %d (bound %d + 1/3 slack)",
				r, asg.NumColors, slack, LiangShenBound(r))
		}
	}
}

func TestLiangShenBoundValues(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 8: 8, 13: 22, 16: 32}
	for r, want := range cases {
		if got := LiangShenBound(r); got != want {
			t.Errorf("LiangShenBound(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestHeuristicsNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		top := ring.MustNew(rng.Intn(8) + 4)
		demands := randomDemands(rng, top, rng.Intn(8)+2, 1)
		opt, err := OptimalColors(top, demands)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := Assign(top, demands, FirstFit, LongestFirst)
		if err != nil {
			t.Fatal(err)
		}
		if asg.NumColors < opt {
			t.Fatalf("heuristic beat the optimum: %d < %d (invalid!)", asg.NumColors, opt)
		}
		// Ring RWA heuristics are within 2x of optimal in practice; flag
		// anything worse as a regression.
		if asg.NumColors > 2*opt {
			t.Errorf("first-fit used %d colors, optimum %d", asg.NumColors, opt)
		}
	}
}

func TestStripedAssignment(t *testing.T) {
	top := ring.MustNew(8)
	demands := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 2, Dir: ring.CW}, Width: 3},
		{Arc: ring.Arc{Src: 1, Dst: 3, Dir: ring.CW}, Width: 2}, // conflicts with first
		{Arc: ring.Arc{Src: 4, Dst: 6, Dir: ring.CW}, Width: 3}, // disjoint from both
	}
	asg, err := Assign(top, demands, FirstFit, AsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(top, demands, asg); err != nil {
		t.Fatal(err)
	}
	if asg.NumColors != 5 {
		t.Fatalf("expected 5 colors (3 + 2 conflicting, third reuses), got %d", asg.NumColors)
	}
}

func TestRoundsRespectBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		top := ring.MustNew(rng.Intn(16) + 2)
		demands := randomDemands(rng, top, rng.Intn(25)+1, 3)
		w := rng.Intn(6) + 3
		rounds, err := Rounds(top, demands, w, FirstFit, AsGiven)
		if err != nil {
			t.Fatal(err)
		}
		covered := make(map[int]bool)
		for _, r := range rounds {
			if r.Assignment.NumColors > w {
				t.Fatalf("round exceeds budget: %d > %d", r.Assignment.NumColors, w)
			}
			sub := make([]Demand, len(r.Demands))
			for i, di := range r.Demands {
				sub[i] = demands[di]
				if covered[di] {
					t.Fatalf("demand %d scheduled twice", di)
				}
				covered[di] = true
			}
			if err := Validate(top, sub, r.Assignment); err != nil {
				t.Fatal(err)
			}
		}
		if len(covered) != len(demands) {
			t.Fatalf("rounds covered %d of %d demands", len(covered), len(demands))
		}
	}
}

func TestRoundsSingleWhenFits(t *testing.T) {
	top := ring.MustNew(12)
	demands := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Width: 2},
		{Arc: ring.Arc{Src: 6, Dst: 7, Dir: ring.CW}, Width: 2},
	}
	rounds, err := Rounds(top, demands, 2, FirstFit, AsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 1 {
		t.Fatalf("disjoint demands should fit one round, got %d", len(rounds))
	}
}

func TestRoundsWidthTooLarge(t *testing.T) {
	top := ring.MustNew(4)
	demands := []Demand{{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Width: 5}}
	if _, err := Rounds(top, demands, 4, FirstFit, AsGiven); err == nil {
		t.Fatal("width > budget must error")
	}
}

func TestAssignRejectsBadDemands(t *testing.T) {
	top := ring.MustNew(4)
	if _, err := Assign(top, []Demand{{Arc: ring.Arc{Src: 1, Dst: 1, Dir: ring.CW}, Width: 1}}, FirstFit, AsGiven); err == nil {
		t.Fatal("zero-length arc must error")
	}
	if _, err := Assign(top, []Demand{{Arc: ring.Arc{Src: 0, Dst: 1, Dir: ring.CW}, Width: 0}}, FirstFit, AsGiven); err == nil {
		t.Fatal("zero width must error")
	}
}

func TestValidateCatchesConflicts(t *testing.T) {
	top := ring.MustNew(6)
	demands := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 2, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 1, Dst: 3, Dir: ring.CW}, Width: 1},
	}
	bad := Assignment{Stripes: [][]int{{0}, {0}}, NumColors: 1}
	if err := Validate(top, demands, bad); err == nil {
		t.Fatal("Validate accepted a conflicting assignment")
	}
	short := Assignment{Stripes: [][]int{{0}}, NumColors: 1}
	if err := Validate(top, demands, short); err == nil {
		t.Fatal("Validate accepted wrong stripe count")
	}
}

func TestBestFitPacks(t *testing.T) {
	top := ring.MustNew(16)
	// Place one long arc, then a disjoint short arc: BestFit should reuse
	// color 0 (most used) rather than open a new one.
	demands := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 4, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 8, Dst: 9, Dir: ring.CW}, Width: 1},
	}
	asg, err := Assign(top, demands, BestFit, AsGiven)
	if err != nil {
		t.Fatal(err)
	}
	if asg.NumColors != 1 {
		t.Fatalf("BestFit should pack into 1 color, used %d", asg.NumColors)
	}
}

func TestMaxLinkLoadSimple(t *testing.T) {
	top := ring.MustNew(6)
	demands := []Demand{
		{Arc: ring.Arc{Src: 0, Dst: 3, Dir: ring.CW}, Width: 2},
		{Arc: ring.Arc{Src: 2, Dst: 4, Dir: ring.CW}, Width: 1},
		{Arc: ring.Arc{Src: 3, Dst: 1, Dir: ring.CCW}, Width: 4},
	}
	got, err := MaxLinkLoad(top, demands)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("MaxLinkLoad = %d, want 4", got)
	}
}
