package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1.0) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram reported data")
	}
	st := h.Stat("x")
	if st.Name != "x" || st.Count != 0 {
		t.Fatalf("nil Stat = %+v", st)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 observations spread over two decades: 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(1e-3 * float64(i))
	}
	st := h.Stat("lat")
	if st.Count != 100 {
		t.Fatalf("count = %d", st.Count)
	}
	if math.Abs(st.Mean-0.0505) > 1e-9 {
		t.Fatalf("mean = %g", st.Mean)
	}
	if st.Max != 0.1 {
		t.Fatalf("max = %g", st.Max)
	}
	// Bucket resolution is 10^(1/8) ≈ 1.33×; quantile upper bounds must
	// bracket the exact values within one bucket.
	checks := []struct {
		q, exact float64
	}{{0.50, 0.050}, {0.90, 0.090}, {0.99, 0.099}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.exact || got > c.exact*1.34 {
			t.Errorf("q%.2f = %g, want in [%g, %g]", c.q, got, c.exact, c.exact*1.34)
		}
	}
	if q := h.Quantile(1.0); q != 0.1 {
		t.Errorf("q1.00 = %g, want exact max 0.1", q)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-5)         // clamped to lowest bucket
	h.Observe(math.NaN()) // clamped to lowest bucket
	h.Observe(1e9)        // past the top decade: clamped into last bucket
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d", got)
	}
	if q := h.Quantile(1.0); q != 1e9 {
		t.Fatalf("q1.0 = %g, want exact max", q)
	}
	if st := h.Stat("x"); st.Max != 1e9 {
		t.Fatalf("max = %g", st.Max)
	}
}

func TestRecorderHist(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Hist("a") != nil {
		t.Fatalf("nil recorder returned live histogram")
	}
	r := New()
	h1 := r.Hist("serve.latency")
	h2 := r.Hist("serve.latency")
	if h1 != h2 {
		t.Fatalf("Hist not idempotent")
	}
	h1.Observe(0.002)
	r.Hist("other").Observe(0.5)
	snap := r.Snapshot()
	if len(snap.Hists) != 2 {
		t.Fatalf("snapshot hists = %d", len(snap.Hists))
	}
	if snap.Hists[0].Name != "other" || snap.Hists[1].Name != "serve.latency" {
		t.Fatalf("hists not sorted: %+v", snap.Hists)
	}
	if snap.Hists[1].Count != 1 {
		t.Fatalf("count = %d", snap.Hists[1].Count)
	}
	// The Latency table must render.
	found := false
	for _, tb := range snap.Tables() {
		if tb.Title == "Latency" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Latency table in snapshot")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1e-3)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}
