package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderNoOps drives every method through a nil receiver: nothing
// may panic, ids must come back as the No sentinels, and reads must report
// zero values.
func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
	p := r.Process("p")
	if p != NoProc {
		t.Fatalf("nil Process = %d, want NoProc", p)
	}
	tk := r.Track(p, "t")
	if tk != NoTrack {
		t.Fatalf("nil Track = %d, want NoTrack", tk)
	}
	if ct := r.CounterTrack(p, "c"); ct != NoTrack {
		t.Fatalf("nil CounterTrack = %d, want NoTrack", ct)
	}
	r.Span(tk, "s", 0, 1, SpanArgs{Width: 3})
	r.Instant(tk, "i", 0, 1)
	r.Sample(tk, 0, 1)
	r.Add("c", 1)
	r.AddSeconds("f", 1.5)
	r.Gauge("g", 2)
	r.LaneOn(p, 0, 0, "job")
	r.LaneOff(p, 0, 1)
	if v := r.Counter("c"); v != 0 {
		t.Fatalf("nil Counter = %d, want 0", v)
	}
	if v := r.FloatCounter("f"); v != 0 {
		t.Fatalf("nil FloatCounter = %g, want 0", v)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Lanes) != 0 {
		t.Fatalf("nil Snapshot not empty: %+v", snap)
	}
}

// TestDisabledPathAllocationFree is the contract the hot loops rely on: with
// a nil recorder every recording call is allocation-free.
func TestDisabledPathAllocationFree(t *testing.T) {
	var r *Recorder
	p := r.Process("p")
	tk := r.Track(p, "t")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Span(tk, "step", 1, 2, SpanArgs{Wavelengths: 4, Transfers: 8})
		r.Instant(tk, "ev", 1, 3)
		r.Sample(tk, 1, 5)
		r.Add("counter", 1)
		r.AddSeconds("float", 0.5)
		r.Gauge("gauge", 7)
		r.LaneOn(p, 3, 1, "job")
		r.LaneOff(p, 3, 2)
	})
	if allocs != 0 {
		t.Fatalf("disabled recorder path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledNoTrackIgnored: recording against NoTrack/NoProc on a live
// recorder is a no-op, not a panic — mixed enabled/disabled call sites stay
// safe.
func TestEnabledNoTrackIgnored(t *testing.T) {
	r := New()
	r.Span(NoTrack, "s", 0, 1, SpanArgs{})
	r.Instant(NoTrack, "i", 0, 0)
	r.Sample(NoTrack, 0, 0)
	r.LaneOn(NoProc, 0, 0, "x")
	r.LaneOff(NoProc, 0, 1)
	if tk := r.Track(NoProc, "t"); tk != NoTrack {
		t.Fatalf("Track(NoProc) = %d, want NoTrack", tk)
	}
	snap := r.Snapshot()
	if snap.Spans != 0 || snap.Instants != 0 || snap.Samples != 0 || len(snap.Lanes) != 0 {
		t.Fatalf("NoTrack records leaked into snapshot: %+v", snap)
	}
}

func TestCountersGaugesSnapshot(t *testing.T) {
	r := New()
	r.Add("b.count", 2)
	r.Add("b.count", 3)
	r.Add("a.count", 1)
	r.AddSeconds("c.seconds", 1.5)
	r.AddSeconds("c.seconds", 0.25)
	r.Gauge("depth", 4)
	r.Gauge("depth", 9)
	r.Gauge("depth", 2)

	if v := r.Counter("b.count"); v != 5 {
		t.Fatalf("Counter(b.count) = %d, want 5", v)
	}
	if v := r.FloatCounter("c.seconds"); v != 1.75 {
		t.Fatalf("FloatCounter(c.seconds) = %g, want 1.75", v)
	}
	snap := r.Snapshot()
	want := []Counter{{"a.count", 1}, {"b.count", 5}, {"c.seconds", 1.75}}
	if len(snap.Counters) != len(want) {
		t.Fatalf("snapshot counters = %+v, want %+v", snap.Counters, want)
	}
	for i, c := range want {
		if snap.Counters[i] != c {
			t.Fatalf("counter[%d] = %+v, want %+v (sorted by name)", i, snap.Counters[i], c)
		}
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Last != 2 || snap.Gauges[0].Max != 9 {
		t.Fatalf("gauge = %+v, want last 2 max 9", snap.Gauges)
	}
}

func TestLaneAccounting(t *testing.T) {
	r := New()
	p := r.Process("fab")
	r.LaneOn(p, 0, 1.0, "jobA")
	r.LaneOff(p, 0, 3.0)
	// Re-opening an open lane closes the running interval first.
	r.LaneOn(p, 1, 0.0, "jobA")
	r.LaneOn(p, 1, 2.0, "jobB")
	r.LaneOff(p, 1, 5.0)
	// Zero-length intervals are dropped.
	r.LaneOn(p, 2, 4.0, "jobC")
	r.LaneOff(p, 2, 4.0)
	// LaneOff on a closed lane is a no-op.
	r.LaneOff(p, 0, 9.0)

	snap := r.Snapshot()
	if len(snap.Lanes) != 3 {
		t.Fatalf("lanes = %+v, want 3", snap.Lanes)
	}
	l0, l1, l2 := snap.Lanes[0], snap.Lanes[1], snap.Lanes[2]
	if l0.Lane != 0 || l0.BusySec != 2.0 || l0.Segments != 1 {
		t.Fatalf("lane0 = %+v, want busy 2.0 over 1 segment", l0)
	}
	if l1.Lane != 1 || l1.BusySec != 5.0 || l1.Segments != 2 {
		t.Fatalf("lane1 = %+v, want busy 5.0 over 2 segments", l1)
	}
	if l2.Lane != 2 || l2.BusySec != 0 || l2.Segments != 0 {
		t.Fatalf("lane2 = %+v, want empty (zero-length segment dropped)", l2)
	}
}

// record populates a recorder with a fixed scene; order describes which of
// two processes records first, so the determinism test can interleave.
func record(r *Recorder, order []string) {
	for _, name := range order {
		p := r.Process(name)
		steps := r.Track(p, "steps")
		depth := r.CounterTrack(p, "depth")
		r.Span(steps, "reduce", 0.0, 1.0, SpanArgs{Wavelengths: 4, Transfers: 16})
		r.Span(steps, "gather", 1.0, 0.5, SpanArgs{Wavelengths: 2})
		r.Instant(steps, "start", 0.0, 4)
		r.Sample(depth, 0.0, 3)
		r.Sample(depth, 1.0, 1)
		r.LaneOn(p, 0, 0.0, "job-"+name)
		r.LaneOff(p, 0, 1.5)
		r.Add("runs", 1)
		r.AddSeconds("busy", 1.5)
		r.Gauge("peak", 4)
	}
}

// TestWriteTraceDeterministicAcrossInterleavings: two recorders whose
// processes record in opposite orders (simulating different worker
// interleavings) export byte-identical traces.
func TestWriteTraceDeterministicAcrossInterleavings(t *testing.T) {
	a, b := New(), New()
	record(a, []string{"proc-one", "proc-two"})
	record(b, []string{"proc-two", "proc-one"})
	var ba, bb bytes.Buffer
	if err := a.WriteTrace(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteTrace(&bb); err != nil {
		t.Fatal(err)
	}
	if ba.String() != bb.String() {
		t.Fatalf("trace bytes differ across recording order:\n%s\nvs\n%s", ba.String(), bb.String())
	}
}

// TestWriteTraceDeterministicAcrossRuns: concurrent writers to distinct
// processes still export byte-identical traces run-to-run.
func TestWriteTraceDeterministicAcrossRuns(t *testing.T) {
	export := func() string {
		r := New()
		var wg sync.WaitGroup
		for _, name := range []string{"pa", "pb", "pc", "pd"} {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				record(r, []string{name})
			}(name)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WriteTrace(&buf); err != nil {
			t.Error(err)
		}
		return buf.String()
	}
	first := export()
	for i := 0; i < 10; i++ {
		if got := export(); got != first {
			t.Fatalf("run %d produced different trace bytes", i)
		}
	}
}

func TestWriteTraceShape(t *testing.T) {
	r := New()
	record(r, []string{"only"})
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayUnit)
	}
	var phases = map[string]int{}
	var procName, laneName bool
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		if ev.Ph == "M" && ev.Name == "process_name" && ev.Args["name"] == "only" {
			procName = true
		}
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "λ00" {
			laneName = true
		}
		if ev.Name == "reduce" {
			if ev.Dur != 1e6 { // 1 s in µs
				t.Fatalf("reduce span dur = %g µs, want 1e6", ev.Dur)
			}
			if ev.Args["wavelengths"] != float64(4) || ev.Args["transfers"] != float64(16) {
				t.Fatalf("reduce span args = %v", ev.Args)
			}
		}
	}
	if !procName {
		t.Fatal("missing process_name metadata")
	}
	if !laneName {
		t.Fatal("missing λ00 lane thread_name metadata")
	}
	// 2 spans + 1 lane segment = 3 "X"; 1 instant; 2 counter samples.
	if phases["X"] != 3 || phases["i"] != 1 || phases["C"] != 2 {
		t.Fatalf("phase counts = %v, want X:3 i:1 C:2", phases)
	}
}

func TestNilWriteTrace(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != `{"traceEvents":[]}` {
		t.Fatalf("nil trace = %q", got)
	}
}

func TestSnapshotTables(t *testing.T) {
	r := New()
	record(r, []string{"p"})
	tables := r.Snapshot().Tables()
	if len(tables) != 3 {
		t.Fatalf("Tables() returned %d tables, want counters+gauges+lanes", len(tables))
	}
	md := tables[0].Markdown()
	for _, want := range []string{"runs", "busy", "trace.spans"} {
		if !strings.Contains(md, want) {
			t.Fatalf("counters table missing %q:\n%s", want, md)
		}
	}
}
