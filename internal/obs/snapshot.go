package obs

import (
	"sort"

	"wrht/internal/stats"
)

// Counter is one named scalar in a Snapshot; integer counters and float
// accumulators are merged into a single sorted list.
type Counter struct {
	Name  string
	Value float64
}

// GaugeStat is the last/max pair of a recorded gauge.
type GaugeStat struct {
	Name string
	Last float64
	Max  float64
}

// LaneStat summarizes one wavelength lane's closed busy intervals.
type LaneStat struct {
	Process  string
	Lane     int
	BusySec  float64
	Segments int
}

// Snapshot is a point-in-time copy of the recorder's aggregate state,
// suitable for rendering (Markdown/CSV) or programmatic inspection. Streams
// are summarized by count; lanes report accumulated busy seconds.
type Snapshot struct {
	Counters []Counter
	Gauges   []GaugeStat
	Hists    []HistStat
	Lanes    []LaneStat
	Spans    int
	Instants int
	Samples  int
}

// Snapshot copies the recorder's aggregate state. A nil recorder returns the
// zero Snapshot.
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Counters = make([]Counter, 0, len(r.ints)+len(r.floats))
	for name, v := range r.ints {
		s.Counters = append(s.Counters, Counter{Name: name, Value: float64(v)})
	}
	for name, v := range r.floats {
		s.Counters = append(s.Counters, Counter{Name: name, Value: v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	s.Gauges = make([]GaugeStat, 0, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeStat{Name: name, Last: g.last, Max: g.max})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	s.Hists = r.histStatsLocked()
	s.Lanes = make([]LaneStat, 0, len(r.lanes))
	for key, ln := range r.lanes {
		s.Lanes = append(s.Lanes, LaneStat{
			Process:  r.procs[key.proc].name,
			Lane:     key.lane,
			BusySec:  ln.busy,
			Segments: len(ln.segs),
		})
	}
	sort.Slice(s.Lanes, func(i, j int) bool {
		if s.Lanes[i].Process != s.Lanes[j].Process {
			return s.Lanes[i].Process < s.Lanes[j].Process
		}
		return s.Lanes[i].Lane < s.Lanes[j].Lane
	})
	s.Spans = len(r.spans)
	s.Instants = len(r.insts)
	s.Samples = len(r.samples)
	return s
}

// Tables renders the snapshot as stats tables: counters+gauges, and (when
// lanes were recorded) per-wavelength occupancy.
func (s Snapshot) Tables() []*stats.Table {
	var out []*stats.Table
	ct := stats.NewTable("Counters", "name", "value")
	for _, c := range s.Counters {
		ct.AddRowf(c.Name, c.Value)
	}
	ct.AddRowf("trace.spans", s.Spans)
	ct.AddRowf("trace.instants", s.Instants)
	ct.AddRowf("trace.samples", s.Samples)
	out = append(out, ct)
	if len(s.Gauges) > 0 {
		gt := stats.NewTable("Gauges", "name", "last", "max")
		for _, g := range s.Gauges {
			gt.AddRowf(g.Name, g.Last, g.Max)
		}
		out = append(out, gt)
	}
	if len(s.Hists) > 0 {
		ht := stats.NewTable("Latency", "name", "count", "mean", "p50", "p90", "p99", "max")
		for _, h := range s.Hists {
			ht.AddRowf(h.Name, h.Count,
				stats.FormatSeconds(h.Mean), stats.FormatSeconds(h.P50),
				stats.FormatSeconds(h.P90), stats.FormatSeconds(h.P99),
				stats.FormatSeconds(h.Max))
		}
		out = append(out, ht)
	}
	if len(s.Lanes) > 0 {
		lt := stats.NewTable("Wavelength occupancy", "process", "wavelength", "busy", "segments")
		for _, ln := range s.Lanes {
			lt.AddRowf(ln.Process, ln.Lane, stats.FormatSeconds(ln.BusySec), ln.Segments)
		}
		out = append(out, lt)
	}
	return out
}
