package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace-event JSON object. Field order and
// encoding/json's deterministic output (struct fields in declaration order,
// map keys sorted) make the exported bytes a pure function of the recorded
// content.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace exports the recorded streams as Chrome trace-event JSON
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: processes per
// logical run, slice tracks for spans, instant events for fabric
// transitions, counter tracks for sampled gauges, and one slice lane per
// wavelength labeled with the occupying job.
//
// The export is byte-deterministic: processes are ordered by name, tracks by
// name within their process, and events by (time, track, per-track
// sequence). Timestamps are recorded seconds scaled to microseconds (the
// trace-event unit).
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	// Stable pids: processes sorted by name.
	procOrder := make([]ProcID, len(r.procs))
	for i := range procOrder {
		procOrder[i] = ProcID(i)
	}
	sort.Slice(procOrder, func(i, j int) bool {
		return r.procs[procOrder[i]].name < r.procs[procOrder[j]].name
	})
	pidOf := make(map[ProcID]int, len(procOrder))
	for i, p := range procOrder {
		pidOf[p] = i + 1
	}

	// Stable tids: named tracks sorted by (process, name), then wavelength
	// lanes sorted by index after them.
	trackOrder := make([]TrackID, len(r.tracks))
	for i := range trackOrder {
		trackOrder[i] = TrackID(i)
	}
	sort.Slice(trackOrder, func(i, j int) bool {
		a, b := r.tracks[trackOrder[i]], r.tracks[trackOrder[j]]
		if pidOf[a.proc] != pidOf[b.proc] {
			return pidOf[a.proc] < pidOf[b.proc]
		}
		return a.name < b.name
	})
	tidOf := make(map[TrackID]int, len(trackOrder))
	nextTid := make(map[ProcID]int, len(r.procs))
	for _, t := range trackOrder {
		p := r.tracks[t].proc
		nextTid[p]++
		tidOf[t] = nextTid[p]
	}
	laneKeys := make([]laneKey, 0, len(r.lanes))
	for k := range r.lanes {
		laneKeys = append(laneKeys, k)
	}
	sort.Slice(laneKeys, func(i, j int) bool {
		if pidOf[laneKeys[i].proc] != pidOf[laneKeys[j].proc] {
			return pidOf[laneKeys[i].proc] < pidOf[laneKeys[j].proc]
		}
		return laneKeys[i].lane < laneKeys[j].lane
	})
	laneTid := make(map[laneKey]int, len(laneKeys))
	for _, k := range laneKeys {
		nextTid[k.proc]++
		laneTid[k] = nextTid[k.proc]
	}

	const usec = 1e6
	events := make([]traceEvent, 0,
		len(procOrder)+len(trackOrder)+2*len(laneKeys)+len(r.spans)+len(r.insts)+len(r.samples))

	// Metadata: process and thread names.
	for _, p := range procOrder {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pidOf[p],
			Args: map[string]any{"name": r.procs[p].name},
		})
	}
	for _, t := range trackOrder {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf[r.tracks[t].proc], Tid: tidOf[t],
			Args: map[string]any{"name": r.tracks[t].name},
		})
	}
	for _, k := range laneKeys {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf[k.proc], Tid: laneTid[k],
			Args: map[string]any{"name": fmt.Sprintf("λ%02d", k.lane)},
		})
	}
	nmeta := len(events)

	type orderKey struct {
		ts   float64
		pid  int
		tid  int
		seq  int64
		kind int
	}
	keys := make([]orderKey, 0, cap(events)-nmeta)
	push := func(ev traceEvent, seq int64, kind int) {
		events = append(events, ev)
		keys = append(keys, orderKey{ts: ev.Ts, pid: ev.Pid, tid: ev.Tid, seq: seq, kind: kind})
	}

	for _, s := range r.spans {
		t := r.tracks[s.track]
		push(traceEvent{
			Name: s.name, Ph: "X", Ts: s.start * usec, Dur: s.dur * usec,
			Pid: pidOf[t.proc], Tid: tidOf[s.track], Args: spanArgsMap(s.args),
		}, s.seq, 0)
	}
	for _, in := range r.insts {
		t := r.tracks[in.track]
		var args map[string]any
		if in.val != 0 {
			args = map[string]any{"value": in.val}
		}
		push(traceEvent{
			Name: in.name, Ph: "i", Ts: in.at * usec,
			Pid: pidOf[t.proc], Tid: tidOf[in.track], Args: args,
		}, in.seq, 1)
	}
	for _, sm := range r.samples {
		t := r.tracks[sm.track]
		push(traceEvent{
			Name: t.name, Ph: "C", Ts: sm.at * usec,
			Pid: pidOf[t.proc], Tid: tidOf[sm.track], Args: map[string]any{"value": sm.val},
		}, sm.seq, 2)
	}
	for _, k := range laneKeys {
		for _, seg := range r.lanes[k].segs {
			push(traceEvent{
				Name: seg.label, Ph: "X", Ts: seg.start * usec, Dur: (seg.end - seg.start) * usec,
				Pid: pidOf[k.proc], Tid: laneTid[k],
			}, 0, 3)
		}
	}

	// Sort the non-metadata tail by (time, track, per-track sequence): lane
	// segments within a lane are already in time order, and distinct tracks
	// never share (pid, tid), so the order is total and deterministic.
	tail := events[nmeta:]
	idx := make([]int, len(tail))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		a, b := keys[idx[i]], keys[idx[j]]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.seq < b.seq
	})
	sorted := make([]traceEvent, len(tail))
	for i, j := range idx {
		sorted[i] = tail[j]
	}
	copy(tail, sorted)

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"})
}

func spanArgsMap(a SpanArgs) map[string]any {
	if a == (SpanArgs{}) {
		return nil
	}
	m := make(map[string]any, 5)
	if a.Width != 0 {
		m["width"] = a.Width
	}
	if a.Wavelengths != 0 {
		m["wavelengths"] = a.Wavelengths
	}
	if a.Transfers != 0 {
		m["transfers"] = a.Transfers
	}
	if a.Classes != 0 {
		m["classes"] = a.Classes
	}
	if a.Rounds != 0 {
		m["rounds"] = a.Rounds
	}
	return m
}
