package obs

import (
	"math"
	"sort"
	"sync"
)

// Histogram bucketing: geometric buckets anchored at 1µs with 8 buckets per
// decade, spanning 12 decades (1µs .. ~1e6s). That keeps the relative error
// of any reported quantile under ~33% (one bucket width, 10^(1/8) ≈ 1.33×)
// with a fixed 96-slot footprint — no per-observation allocation, so the
// serving hot path can record every request latency.
const (
	histMin       = 1e-6
	histPerDecade = 8
	histBuckets   = 12 * histPerDecade
)

// histGamma is the bucket growth factor, 10^(1/histPerDecade).
var histGamma = math.Pow(10, 1.0/histPerDecade)

// Histogram is a fixed-size log-bucketed distribution accumulator for
// latencies (or any non-negative seconds-valued metric). Like the rest of
// the recorder, a nil *Histogram is the disabled state: Observe on it is a
// single branch and records nothing. Enabled histograms are safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]int64
	n      int64
	sum    float64
	max    float64
}

// NewHistogram returns an empty enabled histogram. Recorder-owned histograms
// come from Recorder.Hist instead.
func NewHistogram() *Histogram { return &Histogram{} }

// histIndex maps a value to its bucket. Values at or below the smallest
// bucket's range land in slot 0; values past the top clamp into the last
// slot (the exact max is tracked separately, so clamping only widens the
// extreme quantiles).
func histIndex(v float64) int {
	if !(v > histMin) { // also catches NaN
		return 0
	}
	idx := int(math.Log10(v/histMin) * histPerDecade)
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// Observe records one value. Nil-safe; NaN and negative values are clamped
// into the lowest bucket rather than corrupting the distribution.
//
//wrht:noalloc disabled
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.mu.Lock()
	h.counts[histIndex(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
//
//wrht:noalloc disabled
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]) of the
// recorded values: the upper edge of the bucket holding the q-th
// observation, capped at the exact observed max. An empty (or nil)
// histogram returns 0.
//
//wrht:noalloc disabled
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if cum >= rank {
			if i == histBuckets-1 {
				return h.max // open-ended overflow bucket
			}
			upper := histMin * math.Pow(histGamma, float64(i+1))
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// HistStat is the rendered summary of one named histogram in a Snapshot.
// All values are in the histogram's native unit (seconds for latencies).
type HistStat struct {
	Name  string
	Count int64
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
}

// Stat summarizes the histogram under the given name.
//
//wrht:noalloc disabled
func (h *Histogram) Stat(name string) HistStat {
	if h == nil {
		return HistStat{Name: name}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HistStat{Name: name, Count: h.n, Max: h.max}
	if h.n > 0 {
		st.Mean = h.sum / float64(h.n)
		st.P50 = h.quantileLocked(0.50)
		st.P90 = h.quantileLocked(0.90)
		st.P99 = h.quantileLocked(0.99)
	}
	return st
}

// Hist returns the named histogram, creating it on first use. A nil recorder
// returns a nil (disabled) histogram, keeping the caller's Observe calls
// branch-cheap when observability is off.
//
//wrht:noalloc disabled
func (r *Recorder) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// histStatsLocked snapshots every recorder-owned histogram, sorted by name.
// Caller holds r.mu; each histogram is summarized under its own lock, which
// is safe because Histogram never calls back into the recorder.
func (r *Recorder) histStatsLocked() []HistStat {
	if len(r.hists) == 0 {
		return nil
	}
	out := make([]HistStat, 0, len(r.hists))
	for name, h := range r.hists {
		out = append(out, h.Stat(name))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
