// Package obs is the flight-recorder substrate for the pricing and fabric
// stack: monotonic counters, last/max gauges, timestamped span and instant
// streams grouped into processes and tracks, counter-track samples, and a
// per-wavelength occupancy accumulator.
//
// The recorder is a concrete *Recorder handle (never an interface, so the
// disabled path never boxes) and every method is nil-safe: with a nil
// receiver each call is a single predictable branch and performs zero
// allocations, so hot loops thread a recorder unconditionally and pay
// nothing when observability is off. All timestamps are simulated/priced
// seconds supplied by the caller — the recorder never reads the wall clock —
// which is what makes exported traces byte-deterministic across worker
// parallelism.
//
// Enabled recorders are safe for concurrent use; ordering within a track is
// made deterministic at export time by sorting on (track, time, per-track
// sequence), so concurrent writers to *distinct* tracks cannot perturb the
// output. Callers that need deterministic traces must therefore give each
// logical run its own process (see Process).
package obs

import "sync"

// ProcID names a process (a top-level Perfetto track group) created by
// Process. The zero recorder path uses NoProc.
type ProcID int32

// TrackID names a span/instant or counter track within a process. The zero
// recorder path uses NoTrack.
type TrackID int32

// NoProc and NoTrack are the ids handed out by a nil recorder; all recording
// methods ignore them.
const (
	NoProc  ProcID  = -1
	NoTrack TrackID = -1
)

// SpanArgs carries the optional numeric annotations of a span. It is passed
// by value so the disabled path allocates nothing; zero fields are omitted
// from the exported trace.
type SpanArgs struct {
	Width       int64 // allocated wavelengths (fabric job segments)
	Wavelengths int64 // distinct wavelengths used (pricer steps)
	Transfers   int64 // transfers carried by the step
	Classes     int64 // symmetry classes priced
	Rounds      int64 // WDM rounds the step serialized into
}

type gauge struct {
	last float64
	max  float64
	set  bool
}

type span struct {
	track TrackID
	seq   int64
	name  string
	start float64
	dur   float64
	args  SpanArgs
}

type instant struct {
	track TrackID
	seq   int64
	name  string
	at    float64
	val   int64
}

type sample struct {
	track TrackID
	seq   int64
	at    float64
	val   float64
}

type proc struct {
	name string
}

type trackKind uint8

const (
	trackSlice trackKind = iota
	trackCounter
)

type track struct {
	proc ProcID
	name string
	kind trackKind
	seq  int64 // per-track sequence, assigned under the recorder mutex
}

type trackKey struct {
	proc ProcID
	name string
}

// laneSeg is one closed busy interval of a wavelength lane.
type laneSeg struct {
	start, end float64
	label      string
}

type laneKey struct {
	proc ProcID
	lane int
}

type lane struct {
	open      bool
	openSince float64
	openLabel string
	busy      float64
	segs      []laneSeg
}

// Recorder is the flight recorder. A nil *Recorder is the disabled state:
// every method no-ops (zero allocations, one branch). Construct with New.
type Recorder struct {
	mu       sync.Mutex
	ints     map[string]int64
	floats   map[string]float64
	gauges   map[string]gauge
	procs    []proc
	procIdx  map[string]ProcID
	tracks   []track
	trackIdx map[trackKey]TrackID
	spans    []span
	insts    []instant
	samples  []sample
	lanes    map[laneKey]*lane
	hists    map[string]*Histogram // lazily created by Hist
}

// New returns an enabled, empty recorder.
func New() *Recorder {
	return &Recorder{
		ints:     make(map[string]int64),
		floats:   make(map[string]float64),
		gauges:   make(map[string]gauge),
		procIdx:  make(map[string]ProcID),
		trackIdx: make(map[trackKey]TrackID),
		lanes:    make(map[laneKey]*lane),
	}
}

// Enabled reports whether the recorder is live (non-nil).
//
//wrht:noalloc disabled
func (r *Recorder) Enabled() bool { return r != nil }

// Process returns the id for the named process, creating it on first use.
// Each logical run (one fabric simulation, one schedule pricing) should own a
// distinct process so concurrent runs never interleave on shared tracks —
// that per-run isolation is what keeps exports deterministic under
// parallelism.
//
//wrht:noalloc disabled
func (r *Recorder) Process(name string) ProcID {
	if r == nil {
		return NoProc
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.procIdx[name]; ok {
		return id
	}
	id := ProcID(len(r.procs))
	r.procs = append(r.procs, proc{name: name})
	r.procIdx[name] = id
	return id
}

// Track returns the id of the named span/instant track within p, creating it
// on first use.
//
//wrht:noalloc disabled
func (r *Recorder) Track(p ProcID, name string) TrackID {
	return r.track(p, name, trackSlice)
}

// CounterTrack returns the id of the named counter track within p, creating
// it on first use. Counter tracks render as step graphs in Perfetto.
//
//wrht:noalloc disabled
func (r *Recorder) CounterTrack(p ProcID, name string) TrackID {
	return r.track(p, name, trackCounter)
}

//wrht:noalloc disabled
func (r *Recorder) track(p ProcID, name string, kind trackKind) TrackID {
	if r == nil || p == NoProc {
		return NoTrack
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := trackKey{proc: p, name: name}
	if id, ok := r.trackIdx[key]; ok {
		return id
	}
	id := TrackID(len(r.tracks))
	r.tracks = append(r.tracks, track{proc: p, name: name, kind: kind})
	r.trackIdx[key] = id
	return id
}

// Span records a completed slice [start, start+dur) on track t.
//
//wrht:noalloc disabled
func (r *Recorder) Span(t TrackID, name string, start, dur float64, args SpanArgs) {
	if r == nil || t == NoTrack {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks[t].seq++
	r.spans = append(r.spans, span{track: t, seq: r.tracks[t].seq, name: name, start: start, dur: dur, args: args})
}

// Instant records a zero-duration event at time at on track t; val is an
// optional integer payload (e.g. the wavelength width of a fabric event).
//
//wrht:noalloc disabled
func (r *Recorder) Instant(t TrackID, name string, at float64, val int64) {
	if r == nil || t == NoTrack {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks[t].seq++
	r.insts = append(r.insts, instant{track: t, seq: r.tracks[t].seq, name: name, at: at, val: val})
}

// Sample records a counter-track value at time at on track t.
//
//wrht:noalloc disabled
func (r *Recorder) Sample(t TrackID, at float64, val float64) {
	if r == nil || t == NoTrack {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tracks[t].seq++
	r.samples = append(r.samples, sample{track: t, seq: r.tracks[t].seq, at: at, val: val})
}

// Add bumps the named monotonic integer counter by delta.
//
//wrht:noalloc disabled
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ints[name] += delta
	r.mu.Unlock()
}

// AddSeconds accumulates delta into the named float counter (λ·seconds,
// busy seconds, and similar integrals).
//
//wrht:noalloc disabled
func (r *Recorder) AddSeconds(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.floats[name] += delta
	r.mu.Unlock()
}

// Gauge records the latest value of the named gauge, tracking last and max.
//
//wrht:noalloc disabled
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	g := r.gauges[name]
	g.last = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	r.gauges[name] = g
	r.mu.Unlock()
}

// Counter returns the current value of the named integer counter.
//
//wrht:noalloc disabled
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ints[name]
}

// FloatCounter returns the current value of the named float counter.
//
//wrht:noalloc disabled
func (r *Recorder) FloatCounter(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.floats[name]
}

// LaneOn marks wavelength lane (p, idx) busy from time at, labeled (e.g.
// with the occupying job's name). Re-opening an open lane first closes the
// running interval at at.
//
//wrht:noalloc disabled
func (r *Recorder) LaneOn(p ProcID, idx int, at float64, label string) {
	if r == nil || p == NoProc {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ln := r.laneLocked(p, idx)
	if ln.open {
		r.closeLaneLocked(ln, at)
	}
	ln.open = true
	ln.openSince = at
	ln.openLabel = label
}

// LaneOff closes the busy interval of wavelength lane (p, idx) at time at.
//
//wrht:noalloc disabled
func (r *Recorder) LaneOff(p ProcID, idx int, at float64) {
	if r == nil || p == NoProc {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ln := r.laneLocked(p, idx)
	if ln.open {
		r.closeLaneLocked(ln, at)
	}
}

func (r *Recorder) laneLocked(p ProcID, idx int) *lane {
	key := laneKey{proc: p, lane: idx}
	ln := r.lanes[key]
	if ln == nil {
		ln = &lane{}
		r.lanes[key] = ln
	}
	return ln
}

func (r *Recorder) closeLaneLocked(ln *lane, at float64) {
	ln.open = false
	if at > ln.openSince {
		ln.busy += at - ln.openSince
		ln.segs = append(ln.segs, laneSeg{start: ln.openSince, end: at, label: ln.openLabel})
	}
}
