package fleet

import (
	"fmt"
	"math"
	"math/rand"
)

// TraceKind selects the synthetic arrival process.
type TraceKind int

const (
	// Poisson draws i.i.d. exponential inter-arrival gaps with mean
	// MeanGapSec.
	Poisson TraceKind = iota
	// Diurnal modulates the Poisson rate sinusoidally with period
	// PeriodSec and relative amplitude Amplitude (day/night load swing).
	Diurnal
	// HeavyTail draws Pareto(alpha=TailAlpha) gaps with mean MeanGapSec
	// and, with probability BurstProb per arrival, lands BurstSize jobs on
	// the same instant (correlated burst arrivals).
	HeavyTail
)

// MaxTraceJobs bounds generated trace length: traces materialize as a
// slice before simulation, so an absurd count would allocate gigabytes
// instead of erroring.
const MaxTraceJobs = 1_000_000

func (k TraceKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Diurnal:
		return "diurnal"
	case HeavyTail:
		return "heavy-tail"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceSpec parameterizes a seeded synthetic arrival trace. Generation is
// fully deterministic in the spec: the same spec yields the byte-identical
// job slice regardless of GOMAXPROCS or call site.
type TraceSpec struct {
	Kind TraceKind
	// Jobs is the trace length (10^5-10^6 is the intended regime).
	Jobs int
	Seed int64
	// MeanGapSec is the mean inter-arrival gap. Must be > 0 and finite.
	MeanGapSec float64
	// NumShapes is how many distinct workload shapes the trace draws from
	// (shared runtime curves — keep small relative to Jobs). Must be >= 1.
	NumShapes int
	// NumFabrics bounds the affinity draw: each job gets a home fabric in
	// [0, NumFabrics). Must be >= 1.
	NumFabrics int
	// MaxWidth bounds each job's MaxWavelengths draw (default 8).
	MaxWidth int
	// Priorities is the number of priority levels (default 3).
	Priorities int
	// PeriodSec is the diurnal period (Diurnal only; default 86400).
	PeriodSec float64
	// Amplitude is the relative diurnal swing in [0, 1) (Diurnal only;
	// default 0.8).
	Amplitude float64
	// TailAlpha is the Pareto shape (HeavyTail only; must be > 1 so the
	// mean exists; default 1.5).
	TailAlpha float64
	// BurstProb is the per-arrival probability of a burst (HeavyTail
	// only; default 0.05).
	BurstProb float64
	// BurstSize is the number of jobs sharing a burst instant (HeavyTail
	// only; default 8).
	BurstSize int
}

// withDefaults fills zero-valued optional fields.
func (s TraceSpec) withDefaults() TraceSpec {
	if s.MaxWidth == 0 {
		s.MaxWidth = 8
	}
	if s.Priorities == 0 {
		s.Priorities = 3
	}
	if s.PeriodSec == 0 {
		s.PeriodSec = 86400
	}
	if s.Amplitude == 0 {
		s.Amplitude = 0.8
	}
	if s.TailAlpha == 0 {
		s.TailAlpha = 1.5
	}
	if s.BurstProb == 0 {
		s.BurstProb = 0.05
	}
	if s.BurstSize == 0 {
		s.BurstSize = 8
	}
	return s
}

// Validate rejects unusable specs with field-naming errors, mirroring
// FabricSpec.Validate. It validates the spec as Gen will see it, i.e.
// after defaults.
func (s TraceSpec) Validate() error {
	s = s.withDefaults()
	switch s.Kind {
	case Poisson, Diurnal, HeavyTail:
	default:
		return fmt.Errorf("fleet: unknown trace kind %d", int(s.Kind))
	}
	if s.Jobs < 1 {
		return fmt.Errorf("fleet: trace job count %d (need >= 1)", s.Jobs)
	}
	if s.Jobs > MaxTraceJobs {
		return fmt.Errorf("fleet: trace job count %d (max %d)", s.Jobs, MaxTraceJobs)
	}
	if s.MeanGapSec <= 0 || math.IsNaN(s.MeanGapSec) || math.IsInf(s.MeanGapSec, 0) {
		return fmt.Errorf("fleet: trace mean gap %v (need > 0)", s.MeanGapSec)
	}
	if s.NumShapes < 1 {
		return fmt.Errorf("fleet: trace shape count %d (need >= 1)", s.NumShapes)
	}
	if s.NumFabrics < 1 {
		return fmt.Errorf("fleet: trace fabric count %d (need >= 1)", s.NumFabrics)
	}
	if s.MaxWidth < 1 {
		return fmt.Errorf("fleet: trace max width %d (need >= 1)", s.MaxWidth)
	}
	if s.Priorities < 1 {
		return fmt.Errorf("fleet: trace priority count %d (need >= 1)", s.Priorities)
	}
	if s.PeriodSec <= 0 || math.IsNaN(s.PeriodSec) || math.IsInf(s.PeriodSec, 0) {
		return fmt.Errorf("fleet: trace diurnal period %v (need > 0)", s.PeriodSec)
	}
	if s.Amplitude < 0 || s.Amplitude >= 1 || math.IsNaN(s.Amplitude) {
		return fmt.Errorf("fleet: trace diurnal amplitude %v (need [0, 1))", s.Amplitude)
	}
	if s.TailAlpha <= 1 || math.IsNaN(s.TailAlpha) || math.IsInf(s.TailAlpha, 0) {
		return fmt.Errorf("fleet: trace tail alpha %v (need > 1)", s.TailAlpha)
	}
	if s.BurstProb < 0 || s.BurstProb > 1 || math.IsNaN(s.BurstProb) {
		return fmt.Errorf("fleet: trace burst probability %v (need [0, 1])", s.BurstProb)
	}
	if s.BurstSize < 1 {
		return fmt.Errorf("fleet: trace burst size %d (need >= 1)", s.BurstSize)
	}
	return nil
}

// Gen generates the trace. Job names are left empty (Simulate fills them
// only in full-stats mode), affinities are drawn in [0, NumFabrics), and
// shapes in [0, NumShapes).
func (s TraceSpec) Gen() ([]Job, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	jobs := make([]Job, 0, s.Jobs)
	t := 0.0
	// Pareto gaps with mean MeanGapSec: xm * alpha/(alpha-1) = mean.
	xm := s.MeanGapSec * (s.TailAlpha - 1) / s.TailAlpha
	for len(jobs) < s.Jobs {
		switch s.Kind {
		case Poisson:
			t += rng.ExpFloat64() * s.MeanGapSec
		case Diurnal:
			rate := 1 + s.Amplitude*math.Sin(2*math.Pi*t/s.PeriodSec)
			t += rng.ExpFloat64() * s.MeanGapSec / rate
		case HeavyTail:
			// 1-u keeps the draw in (0, 1] so the power never divides by
			// zero.
			t += xm / math.Pow(1-rng.Float64(), 1/s.TailAlpha)
		}
		n := 1
		if s.Kind == HeavyTail && rng.Float64() < s.BurstProb {
			n = s.BurstSize
		}
		for ; n > 0 && len(jobs) < s.Jobs; n-- {
			jobs = append(jobs, Job{
				ArrivalSec:     t,
				Priority:       rng.Intn(s.Priorities),
				MinWavelengths: 1,
				MaxWavelengths: 1 + rng.Intn(s.MaxWidth),
				Iterations:     1 + rng.Intn(3),
				Shape:          rng.Intn(s.NumShapes),
				Affinity:       rng.Intn(s.NumFabrics),
			})
		}
	}
	return jobs, nil
}
