// Package fleet co-simulates a datacenter of heterogeneous optical fabrics
// on one shared event timeline. Each fabric is an internal/fabric scheduler
// with its own wavelength budget, node count, and reconfiguration delay;
// jobs arrive from a (typically generated — see trace.go) trace and a
// placement policy routes each arrival to one fabric, paying an inter-fabric
// migration cost when a job lands away from its affinity fabric. This is
// the TopoOpt/RAMP regime on top of the paper's single-ring pricing: the
// incremental elastic solver and shape-keyed runtime curves keep
// million-event traces affordable.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"wrht/internal/fabric"
	"wrht/internal/faults"
	"wrht/internal/obs"
	"wrht/internal/sim"
	"wrht/internal/stats"
)

// FabricSpec describes one fabric of the fleet.
type FabricSpec struct {
	// Name identifies the fabric in summaries and recorder processes
	// (default "fabric<i>").
	Name string
	// Nodes is the ring size of the fabric (informational at this layer:
	// the runtime function prices against it).
	Nodes int
	// Wavelengths is the fabric's wavelength budget.
	Wavelengths int
	// ReconfigDelaySec is the optical switch settling time for elastic
	// stripe changes on this fabric. Must be >= 0 and finite.
	ReconfigDelaySec float64
	// MigrationCostSec is the delay a job pays before starting here when
	// placed away from its affinity fabric (checkpoint transfer plus
	// connection re-establishment). Must be >= 0 and finite.
	MigrationCostSec float64
}

// Validate mirrors JobSpec.Validate's style: every rejected field names
// itself and its value.
func (s FabricSpec) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("fleet: fabric %q node count %d (need >= 2)", s.Name, s.Nodes)
	}
	if s.Wavelengths < 1 {
		return fmt.Errorf("fleet: fabric %q wavelength budget %d (need >= 1)", s.Name, s.Wavelengths)
	}
	if s.ReconfigDelaySec < 0 || math.IsNaN(s.ReconfigDelaySec) || math.IsInf(s.ReconfigDelaySec, 0) {
		return fmt.Errorf("fleet: fabric %q reconfiguration delay %v", s.Name, s.ReconfigDelaySec)
	}
	if s.MigrationCostSec < 0 || math.IsNaN(s.MigrationCostSec) || math.IsInf(s.MigrationCostSec, 0) {
		return fmt.Errorf("fleet: fabric %q migration cost %v", s.Name, s.MigrationCostSec)
	}
	return nil
}

// PlacementKind selects the fleet's job-to-fabric routing policy.
type PlacementKind int

const (
	// LeastLoaded routes each arrival to the admissible fabric with the
	// lowest committed-load fraction (running widths plus queued minimums
	// over budget), ignoring migration cost.
	LeastLoaded PlacementKind = iota
	// BestFit routes to the admissible fabric whose free wavelength count
	// most tightly fits the job's desired width (classic best-fit bin
	// packing), falling back to the minimum grant and then to least load
	// when nothing currently fits.
	BestFit
	// PriorityAware scores each fabric by the projected cost to THIS job:
	// the migration delay it would pay to land there plus its solo runtime
	// scaled by the fabric's committed load at or above the job's priority
	// (lower-priority tenants shrink out of an elastic job's way, so they
	// do not count). It is the only policy that weighs migration cost
	// against contention.
	PriorityAware
)

func (k PlacementKind) String() string {
	switch k {
	case LeastLoaded:
		return "least-loaded"
	case BestFit:
		return "best-fit"
	case PriorityAware:
		return "priority-aware"
	default:
		return fmt.Sprintf("PlacementKind(%d)", int(k))
	}
}

func (k PlacementKind) validate() error {
	switch k {
	case LeastLoaded, BestFit, PriorityAware:
		return nil
	default:
		return fmt.Errorf("fleet: unknown placement kind %v", k)
	}
}

// Job is one trace entry: a tenant to be placed on some fabric.
type Job struct {
	// Name labels the job in per-job stats (default "j<i>"; unused and
	// left empty under Lite).
	Name string
	// ArrivalSec is when the job reaches the fleet front door. Placement
	// happens here; landing off-affinity adds the target fabric's
	// migration cost before the job enters that fabric's queue.
	ArrivalSec float64
	Priority   int
	// MinWavelengths/MaxWavelengths/Iterations as in fabric.Job (defaults
	// 1 / fabric budget / 1).
	MinWavelengths int
	MaxWavelengths int
	Iterations     int
	// Shape indexes the job's model/workload shape (0-based); jobs with
	// the same shape share runtime curves. Must be >= 0.
	Shape int
	// Affinity is the job's home fabric index (where its data already
	// lives); -1 means no affinity (first placement is free everywhere).
	Affinity int
	// CheckpointEverySec is the job's checkpoint interval in productive
	// service seconds (0: no checkpointing). Only meaningful with fault
	// injection; see fabric.Job.CheckpointEverySec.
	CheckpointEverySec float64
}

func (j Job) validate(i, nFabrics int) error {
	if j.ArrivalSec < 0 || math.IsNaN(j.ArrivalSec) || math.IsInf(j.ArrivalSec, 0) {
		return fmt.Errorf("fleet: job %d (%q) arrival %v", i, j.Name, j.ArrivalSec)
	}
	if j.MinWavelengths < 0 || (j.MaxWavelengths != 0 && j.MaxWavelengths < j.MinWavelengths) {
		return fmt.Errorf("fleet: job %d (%q) wavelength range [%d,%d]",
			i, j.Name, j.MinWavelengths, j.MaxWavelengths)
	}
	if j.Iterations < 0 {
		return fmt.Errorf("fleet: job %d (%q) iterations %d", i, j.Name, j.Iterations)
	}
	if j.Shape < 0 {
		return fmt.Errorf("fleet: job %d (%q) shape %d", i, j.Name, j.Shape)
	}
	if j.Affinity < -1 || j.Affinity >= nFabrics {
		return fmt.Errorf("fleet: job %d (%q) affinity %d with %d fabrics",
			i, j.Name, j.Affinity, nFabrics)
	}
	return nil
}

// RuntimeFunc prices ONE all-reduce iteration of shape `shape` on fabric
// `fab` at stripe width w. wrht.SimulateFleet wires this to the paper's
// single-ring simulation through the session runtime-curve cache.
type RuntimeFunc func(fab, shape, w int) (float64, error)

// Options configures a fleet co-simulation.
type Options struct {
	Placement PlacementKind
	// Policy is the per-fabric scheduling discipline (zero value is
	// StaticPartition, matching fabric.Policy; ElasticReallocate is the
	// intended fleet regime — each fabric's ReconfigDelaySec comes from
	// its spec).
	Policy fabric.PolicyKind
	// Lite selects aggregate-only statistics (required for 10^5+ jobs).
	Lite bool
	// Rec attaches a flight recorder: one process per fabric plus
	// fleet-level counters. Proc prefixes the per-fabric process names.
	Rec  *obs.Recorder
	Proc string
	// Faults is the failure plan injected on the shared timeline. An empty
	// plan leaves every result bit-identical to a run without it.
	Faults faults.Plan
	// Recovery picks what happens to jobs caught in a fabric outage
	// (default RetrySameFabric); Retry bounds backoff and per-job retry
	// budgets (zero values take faults.Retry defaults).
	Recovery RecoveryPolicy
	Retry    faults.Retry
	// Cancel, when set, is polled every few thousand executed events on
	// the shared timeline; a non-nil return abandons the co-simulation
	// with that error. This is the seam serving deadlines use to stop a
	// killed fleet query from burning a worker to completion.
	Cancel func() error
}

// FabricSummary is one fabric's share of a fleet run.
type FabricSummary struct {
	Name   string
	Budget int
	// Placed counts jobs routed here; Migrated those that paid a
	// migration to land here.
	Placed   int
	Migrated int
	// Result is the fabric's own co-simulation outcome (zero-valued when
	// no job was placed here). Queue and slowdown figures are measured
	// from the job's fabric arrival, i.e. net of migration delay.
	Result fabric.Result
}

// PlacedJob maps one job to its placement outcome (full-stats mode only).
type PlacedJob struct {
	Name     string
	Fabric   int
	Migrated bool
	// MigrationSec is the delay paid before entering the fabric queue.
	MigrationSec float64
	Stats        fabric.JobStats
}

// Result is the fleet-wide outcome.
type Result struct {
	Placement PlacementKind
	Fabrics   int
	Jobs      int
	// Completed/Rejected tally job outcomes fleet-wide; Unplaceable counts
	// jobs no fabric could ever admit (minimum above every budget) —
	// rejected at the fleet front door, included in Rejected.
	Completed   int
	Rejected    int
	Unplaceable int
	// Migrations counts off-affinity placements; MigrationSec totals the
	// delay they paid.
	Migrations   int
	MigrationSec float64
	MakespanSec  float64
	MeanQueueSec float64
	MaxQueueSec  float64
	MeanSlowdown float64
	// Fairness is Jain's index over completed jobs' slowdowns, fleet-wide.
	Fairness float64
	// Utilization is lit wavelength-seconds over total budget x fleet
	// makespan.
	Utilization float64
	Reconfigs   int
	Preemptions int
	// EngineEvents is the shared event-loop's executed event count — the
	// "10^6-event trace" scale measure BenchmarkFabricTrace reports.
	EngineEvents int64
	// Solver sums the per-fabric scheduling-work counters.
	Solver    fabric.SolverStats
	PerFabric []FabricSummary
	// PerJob maps jobs to placements (nil under Lite).
	PerJob []PlacedJob
	// Fault-recovery aggregates (all zero on fault-free runs). Outages
	// counts whole-fabric failures; Killed jobs dropped by FailFast;
	// FailedJobs exhausted retry budgets (fleet- and fabric-level);
	// JobFaults/Evictions/Retries/LostWorkSec sum the per-fabric counters
	// plus work discarded by cross-fabric restarts.
	Outages     int
	Killed      int
	JobFaults   int
	Evictions   int
	Retries     int
	FailedJobs  int
	LostWorkSec float64
	// Availability is the capacity-weighted fraction of fleet
	// wavelength-second capacity (total budget × fleet makespan) not lost
	// to dark wavelengths or outages; 1 on fault-free runs.
	Availability float64
	// P99Slowdown is the 99th-percentile completed-job slowdown
	// (nearest-rank; 0 under Lite, where per-job stats are dropped).
	P99Slowdown float64
}

// Simulate places every job of the trace onto the fleet and co-simulates
// all fabrics on one shared event timeline. Deterministic: same specs,
// jobs, and options produce the identical Result.
func Simulate(specs []FabricSpec, jobs []Job, rt RuntimeFunc, opt Options) (Result, error) {
	if len(specs) == 0 {
		return Result{}, fmt.Errorf("fleet: empty fleet (no fabric specs)")
	}
	if len(jobs) == 0 {
		return Result{}, fmt.Errorf("fleet: no jobs")
	}
	if rt == nil {
		return Result{}, fmt.Errorf("fleet: no runtime function")
	}
	if err := opt.Placement.validate(); err != nil {
		return Result{}, err
	}
	specs = append([]FabricSpec(nil), specs...)
	for i := range specs {
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("fabric%d", i)
		}
		if err := specs[i].Validate(); err != nil {
			return Result{}, err
		}
	}
	for i, j := range jobs {
		if err := j.validate(i, len(specs)); err != nil {
			return Result{}, err
		}
	}
	var evs []faults.Event
	if !opt.Faults.Empty() {
		if err := opt.Faults.Validate(len(specs)); err != nil {
			return Result{}, err
		}
		if err := opt.Recovery.validate(); err != nil {
			return Result{}, err
		}
		var err error
		if evs, err = opt.Faults.Events(len(specs)); err != nil {
			return Result{}, err
		}
		if opt.Policy == fabric.StaticPartition && faults.HasWavelengthEvents(evs) {
			return Result{}, fmt.Errorf("fleet: wavelength faults are not supported under StaticPartition")
		}
	}

	f := &fleet{specs: specs, jobs: jobs, rt: rt, opt: opt, evs: evs}
	return f.run()
}

// fleet is one co-simulation in flight.
type fleet struct {
	specs []FabricSpec
	jobs  []Job
	rt    RuntimeFunc
	opt   Options

	eng    sim.Engine
	scheds []*fabric.Scheduler
	// rtFns memoizes the per-(fabric, shape) runtime closures so a
	// million-job trace does not allocate a closure per job.
	rtFns []map[int]func(w int) (float64, error)

	placed      []int
	migrated    []int
	order       []int // job indices sorted by (ArrivalSec, index)
	next        int
	unplaceable int
	migrations  int
	migrationS  float64
	placements  []PlacedJob // full-stats mode only
	placeIdx    []int       // job index -> placements index (full mode; -1 unplaced)
	err         error

	// Fault-recovery state. pendSame holds outage-evicted jobs waiting for
	// their own fabric's repair (RetrySameFabric); pendAny jobs waiting for
	// ANY admissible fabric to come up (MigrateOnFailure with the whole
	// admissible set down, and front-door arrivals in the same situation).
	armed    bool
	evs      []faults.Event
	retry    faults.Retry
	down     []bool
	pendSame [][]fabric.Resubmit
	pendAny  []pendRes
	outagesN int
	killed   int
	failedN  int
	lostAdj  float64 // work discarded by cross-fabric restarts
}

// pendRes is one job parked at the fleet layer waiting for a repair: the
// resubmission state plus the fabric it was evicted from (-1: never placed).
type pendRes struct {
	from int
	rs   fabric.Resubmit
}

func (f *fleet) run() (Result, error) {
	opt := f.opt
	f.scheds = make([]*fabric.Scheduler, len(f.specs))
	f.rtFns = make([]map[int]func(w int) (float64, error), len(f.specs))
	f.placed = make([]int, len(f.specs))
	f.migrated = make([]int, len(f.specs))
	f.armed = !opt.Faults.Empty()
	f.retry = opt.Retry.WithDefaults()
	f.down = make([]bool, len(f.specs))
	f.pendSame = make([][]fabric.Resubmit, len(f.specs))
	if !opt.Lite {
		f.placeIdx = make([]int, len(f.jobs))
		for i := range f.placeIdx {
			f.placeIdx[i] = -1
		}
	}
	for i, spec := range f.specs {
		pol := fabric.Policy{Kind: opt.Policy, ReconfigDelaySec: spec.ReconfigDelaySec}
		proc := spec.Name
		if opt.Proc != "" {
			proc = opt.Proc + " · " + spec.Name
		}
		so := fabric.SchedOpts{
			Rec: opt.Rec, Proc: proc, Lite: opt.Lite,
			TrackLoad: opt.Placement == PriorityAware,
		}
		if f.armed {
			fi := i
			so.Faults = true
			so.Retry = opt.Retry
			so.OnEvict = func(rs fabric.Resubmit) { f.recover(fi, rs) }
		}
		sch, err := fabric.NewScheduler(&f.eng, spec.Wavelengths, pol, so)
		if err != nil {
			return Result{}, err
		}
		f.scheds[i] = sch
		f.rtFns[i] = map[int]func(w int) (float64, error){}
	}

	f.order = make([]int, len(f.jobs))
	for i := range f.order {
		f.order[i] = i
	}
	sort.SliceStable(f.order, func(a, b int) bool {
		return f.jobs[f.order[a]].ArrivalSec < f.jobs[f.order[b]].ArrivalSec
	})
	// One feeder event per distinct arrival instant keeps the engine heap
	// at O(live jobs), not O(trace length).
	f.eng.At(f.jobs[f.order[0]].ArrivalSec, f.feed)
	// Fault events ride the same timeline; at equal instants the feeder's
	// earlier sequence number places arrivals before faults, deterministically.
	for _, ev := range f.evs {
		ev := ev
		f.eng.At(ev.TimeSec, func() { f.inject(ev) })
	}
	if _, err := f.eng.RunChecked(1024, opt.Cancel); err != nil {
		return Result{}, err
	}
	if f.err != nil {
		return Result{}, f.err
	}
	return f.finish()
}

// feed places every job arriving at the current instant and re-arms itself
// for the next arrival.
func (f *fleet) feed() {
	now := f.eng.Now()
	for f.next < len(f.order) && f.jobs[f.order[f.next]].ArrivalSec == now {
		if f.err == nil {
			f.place(f.order[f.next])
		}
		f.next++
	}
	if f.next < len(f.order) && f.err == nil {
		f.eng.At(f.jobs[f.order[f.next]].ArrivalSec, f.feed)
	}
}

// runtimeFor returns the memoized fabric.Job runtime closure for (fab,
// shape).
func (f *fleet) runtimeFor(fab, shape int) func(w int) (float64, error) {
	if fn := f.rtFns[fab][shape]; fn != nil {
		return fn
	}
	rt := f.rt
	fn := func(w int) (float64, error) { return rt(fab, shape, w) }
	f.rtFns[fab][shape] = fn
	return fn
}

// place routes job i to a fabric and submits it.
func (f *fleet) place(i int) {
	j := f.jobs[i]
	minW := j.MinWavelengths
	if minW == 0 {
		minW = 1
	}
	fab := f.choose(j, minW)
	if fab < 0 {
		if f.err == nil && f.armed && f.anyDownFits(minW) {
			f.deferArrival(i, j)
			return
		}
		f.unplaceable++
		return
	}
	now := f.eng.Now()
	delay := 0.0
	migratedHere := j.Affinity >= 0 && fab != j.Affinity
	if migratedHere {
		delay = f.specs[fab].MigrationCostSec
		f.migrations++
		f.migrationS += delay
	}
	f.placed[fab]++
	if migratedHere {
		f.migrated[fab]++
	}
	name := j.Name
	if name == "" && !f.opt.Lite {
		name = fmt.Sprintf("j%d", i)
	}
	err := f.scheds[fab].Submit(fabric.Job{
		Name:               name,
		ArrivalSec:         now + delay,
		Priority:           j.Priority,
		MinWavelengths:     j.MinWavelengths,
		MaxWavelengths:     j.MaxWavelengths,
		Iterations:         j.Iterations,
		Shape:              j.Shape + 1, // fabric shape 0 = private curve
		CheckpointEverySec: j.CheckpointEverySec,
		Tag:                i,
		Runtime:            f.runtimeFor(fab, j.Shape),
	})
	if err != nil {
		f.err = err
		return
	}
	if !f.opt.Lite {
		f.placeIdx[i] = len(f.placements)
		f.placements = append(f.placements, PlacedJob{
			Name: name, Fabric: fab, Migrated: migratedHere, MigrationSec: delay,
		})
	}
}

// choose scores the admissible fabrics under the placement policy and
// returns the winner (-1 when no fabric can ever admit the job). All
// tie-breaks are deterministic: better score, then the affinity fabric,
// then the lowest index.
func (f *fleet) choose(j Job, minW int) int {
	best, bestScore := -1, math.Inf(1)
	desire := j.MaxWavelengths
	for i, spec := range f.specs {
		if minW > spec.Wavelengths || f.down[i] {
			continue
		}
		var score float64
		switch f.opt.Placement {
		case LeastLoaded:
			score = float64(f.scheds[i].CommittedLoad()) / float64(spec.Wavelengths)
		case BestFit:
			want := desire
			if want == 0 || want > spec.Wavelengths {
				want = spec.Wavelengths
			}
			free := f.scheds[i].FreeWavelengths()
			switch {
			case free >= want:
				// Tightest fit for the full appetite.
				score = float64(free - want)
			case free >= minW:
				// Can start now at reduced width: worse than any full fit.
				score = 1e6 + float64(free-minW)
			default:
				// Must queue: fall back to least load.
				score = 1e12 + float64(f.scheds[i].CommittedLoad())/float64(spec.Wavelengths)
			}
		case PriorityAware:
			alone, err := f.aloneSec(i, j, spec)
			if err != nil {
				f.err = err
				return -1
			}
			contention := float64(f.scheds[i].LoadAtOrAbove(j.Priority)) / float64(spec.Wavelengths)
			score = contention * alone
			if j.Affinity >= 0 && i != j.Affinity {
				score += spec.MigrationCostSec
			}
		}
		if score < bestScore ||
			(score == bestScore && j.Affinity >= 0 && i == j.Affinity && best != j.Affinity) {
			best, bestScore = i, score
		}
	}
	return best
}

// aloneSec prices the job's solo runtime at its widest grant on fabric i
// (through the shared shape curves, so this is a cache hit after the first
// placement of a shape on a fabric).
func (f *fleet) aloneSec(i int, j Job, spec FabricSpec) (float64, error) {
	w := j.MaxWavelengths
	if w == 0 || w > spec.Wavelengths {
		w = spec.Wavelengths
	}
	one, err := f.rt(i, j.Shape, w)
	if err != nil {
		return 0, fmt.Errorf("fleet: pricing shape %d on fabric %q at width %d: %w",
			j.Shape, spec.Name, w, err)
	}
	iters := j.Iterations
	if iters == 0 {
		iters = 1
	}
	return one * float64(iters), nil
}

// finish finalizes every fabric and folds the fleet aggregates.
func (f *fleet) finish() (Result, error) {
	res := Result{
		Placement:    f.opt.Placement,
		Fabrics:      len(f.specs),
		Jobs:         len(f.jobs),
		Unplaceable:  f.unplaceable,
		Rejected:     f.unplaceable,
		Migrations:   f.migrations,
		MigrationSec: f.migrationS,
		EngineEvents: f.eng.Steps(),
		PerFabric:    make([]FabricSummary, len(f.specs)),
	}
	// Jobs still parked at the fleet layer (a scripted outage with no
	// matching repair) are failed before folding the aggregates.
	for fi := range f.pendSame {
		for _, rs := range f.pendSame[fi] {
			f.abandon(rs)
		}
		f.pendSame[fi] = nil
	}
	for _, p := range f.pendAny {
		f.abandon(p.rs)
	}
	f.pendAny = nil
	totalBudget := 0
	busy, darkLost := 0.0, 0.0
	var slowSum, slowSumSq, queueSum float64
	for i, spec := range f.specs {
		sum := FabricSummary{
			Name: spec.Name, Budget: spec.Wavelengths,
			Placed: f.placed[i], Migrated: f.migrated[i],
		}
		totalBudget += spec.Wavelengths
		if f.placed[i] > 0 {
			fr, err := f.scheds[i].Finalize()
			if err != nil {
				return Result{}, fmt.Errorf("fleet: fabric %q: %w", spec.Name, err)
			}
			sum.Result = fr
			res.Completed += fr.CompletedJobs
			res.Rejected += fr.RejectedJobs
			res.Reconfigs += fr.Reconfigs
			res.Preemptions += fr.Preemptions
			res.JobFaults += fr.JobFaults
			res.Evictions += fr.Evictions
			res.Retries += fr.Retries
			res.FailedJobs += fr.FailedJobs
			res.LostWorkSec += fr.LostWorkSec
			res.Solver = res.Solver.Sum(fr.Solver)
			if fr.MakespanSec > res.MakespanSec {
				res.MakespanSec = fr.MakespanSec
			}
			if fr.MaxQueueSec > res.MaxQueueSec {
				res.MaxQueueSec = fr.MaxQueueSec
			}
			queueSum += fr.MeanQueueSec * float64(fr.CompletedJobs)
			slowSum += fr.SlowdownSum
			slowSumSq += fr.SlowdownSumSq
			busy += fr.Utilization * float64(spec.Wavelengths) * fr.MakespanSec
			darkLost += (1 - fr.Availability) * float64(spec.Wavelengths) * fr.MakespanSec
		}
		res.PerFabric[i] = sum
	}
	res.Outages = f.outagesN
	res.Killed = f.killed
	res.FailedJobs += f.failedN
	res.LostWorkSec += f.lostAdj
	if res.Completed == 0 && res.Killed == 0 && res.FailedJobs == 0 {
		return Result{}, fmt.Errorf("fleet: every job was rejected")
	}
	if n := float64(res.Completed); n > 0 {
		res.MeanQueueSec = queueSum / n
		res.MeanSlowdown = slowSum / n
		if slowSumSq > 0 {
			res.Fairness = slowSum * slowSum / (n * slowSumSq)
		}
	}
	if res.MakespanSec > 0 && totalBudget > 0 {
		res.Utilization = busy / (float64(totalBudget) * res.MakespanSec)
	}
	res.Availability = 1
	if darkLost > 0 && res.MakespanSec > 0 && totalBudget > 0 {
		a := 1 - darkLost/(float64(totalBudget)*res.MakespanSec)
		if a < 0 {
			a = 0
		}
		res.Availability = a
	}
	if !f.opt.Lite {
		res.PerJob = f.placements
		var slows []float64
		for pi := range res.PerJob {
			p := &res.PerJob[pi]
			for _, js := range res.PerFabric[p.Fabric].Result.Jobs {
				if js.Name == p.Name {
					p.Stats = js
					break
				}
			}
			if s := p.Stats; !s.Rejected && !s.Failed && s.Slowdown > 0 {
				slows = append(slows, s.Slowdown)
			}
		}
		res.P99Slowdown = stats.Percentile(slows, 99)
	}
	if f.opt.Rec.Enabled() {
		f.opt.Rec.Add("fleet.sims", 1)
		f.opt.Rec.Add("fleet.jobs", int64(len(f.jobs)))
		f.opt.Rec.Add("fleet.migrations", int64(f.migrations))
		f.opt.Rec.Add("fleet.engine.events", f.eng.Steps())
		f.opt.Rec.Gauge("fleet.engine.max_pending", float64(f.eng.MaxPending()))
		if res.Outages > 0 {
			f.opt.Rec.Add("fleet.outages", int64(res.Outages))
		}
		if res.Killed > 0 {
			f.opt.Rec.Add("fleet.killed", int64(res.Killed))
		}
		if res.FailedJobs > 0 {
			f.opt.Rec.Add("fleet.failed_jobs", int64(res.FailedJobs))
		}
	}
	return res, nil
}
