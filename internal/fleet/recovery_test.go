package fleet

import (
	"reflect"
	"testing"

	"wrht/internal/fabric"
	"wrht/internal/faults"
)

// outagePlan takes fabric 0 down for [0.3, 0.5) and fabric 1 down for
// [0.8, 1.0) — early enough that both still hold live jobs from the
// 60-job, ~1.2s-arrival-span test trace.
func outagePlan() faults.Plan {
	return faults.Plan{Scripted: []faults.Event{
		{TimeSec: 0.3, Kind: faults.FabricDown, Fabric: 0},
		{TimeSec: 0.5, Kind: faults.FabricUp, Fabric: 0},
		{TimeSec: 0.8, Kind: faults.FabricDown, Fabric: 1},
		{TimeSec: 1.0, Kind: faults.FabricUp, Fabric: 1},
	}}
}

// TestFleetEmptyFaultPlanBitIdentical pins the fleet layer's zero-fault
// guarantee: passing an explicitly empty plan (with recovery knobs set)
// leaves every field bit-identical to a run without one.
func TestFleetEmptyFaultPlanBitIdentical(t *testing.T) {
	jobs := smallTrace(t, 60)
	for _, lite := range []bool{false, true} {
		base := mustFleet(t, smallFleet(), jobs, Options{
			Placement: BestFit, Policy: fabric.ElasticReallocate, Lite: lite,
		})
		armed := mustFleet(t, smallFleet(), jobs, Options{
			Placement: BestFit, Policy: fabric.ElasticReallocate, Lite: lite,
			Faults:   faults.Plan{},
			Recovery: MigrateOnFailure,
			Retry:    faults.Retry{MaxRetries: 3},
		})
		if !reflect.DeepEqual(base, armed) {
			t.Fatalf("lite=%v: empty fault plan perturbs the result:\n  base  %+v\n  armed %+v",
				lite, base, armed)
		}
		if armed.Availability != 1 {
			t.Fatalf("lite=%v: fault-free availability %v, want 1", lite, armed.Availability)
		}
	}
}

// TestFleetOutageRecoveryPolicies drives the same scripted double outage
// through all three recovery policies and pins their contracts: FailFast
// kills the caught jobs, RetrySameFabric and MigrateOnFailure save them,
// and every policy keeps the fleet-wide job accounting identity.
func TestFleetOutageRecoveryPolicies(t *testing.T) {
	jobs := smallTrace(t, 60)
	results := map[RecoveryPolicy]Result{}
	for _, rp := range []RecoveryPolicy{FailFast, RetrySameFabric, MigrateOnFailure} {
		res := mustFleet(t, smallFleet(), jobs, Options{
			Placement: BestFit, Policy: fabric.ElasticReallocate,
			Faults: outagePlan(), Recovery: rp,
		})
		results[rp] = res
		if res.Outages != 2 {
			t.Fatalf("%v: %d outages, want 2", rp, res.Outages)
		}
		if got := res.Completed + res.Rejected + res.Killed + res.FailedJobs; got != res.Jobs {
			t.Fatalf("%v: %d completed + %d rejected + %d killed + %d failed != %d jobs",
				rp, res.Completed, res.Rejected, res.Killed, res.FailedJobs, res.Jobs)
		}
		if !(res.Availability > 0 && res.Availability < 1) {
			t.Fatalf("%v: availability %v, want in (0,1) under outages", rp, res.Availability)
		}
	}
	ff, rsf, mig := results[FailFast], results[RetrySameFabric], results[MigrateOnFailure]
	if ff.Killed == 0 {
		t.Fatalf("fail-fast killed nothing: %+v", ff)
	}
	if ff.Retries != 0 {
		t.Fatalf("fail-fast retried %d jobs, want 0", ff.Retries)
	}
	if rsf.Killed != 0 || mig.Killed != 0 {
		t.Fatalf("non-fail-fast policies killed jobs: retry %d, migrate %d", rsf.Killed, mig.Killed)
	}
	if rsf.Retries == 0 || mig.Retries == 0 {
		t.Fatalf("recovery never retried: retry-same %d, migrate %d", rsf.Retries, mig.Retries)
	}
	if mig.Completed < ff.Completed {
		t.Fatalf("migration completed %d < fail-fast %d", mig.Completed, ff.Completed)
	}
}

// TestFleetMigrationAccountingUnderRetries is the satellite-3 accounting
// test: under MigrateOnFailure with repeated outages, every completed job's
// end-to-end latency still dominates its alone time (slowdown >= 1 even
// through evictions, cross-fabric restarts, and backoff), lost work is
// consistently non-negative, and the whole faulty run — retry counts
// included — is byte-stable across repeated simulations.
func TestFleetMigrationAccountingUnderRetries(t *testing.T) {
	jobs := smallTrace(t, 60)
	opt := Options{
		Placement: BestFit, Policy: fabric.ElasticReallocate,
		Faults: outagePlan(), Recovery: MigrateOnFailure,
		Retry: faults.Retry{BackoffSec: 0.002, MaxRetries: 8},
	}
	res := mustFleet(t, smallFleet(), jobs, opt)
	if res.Retries == 0 || res.Evictions == 0 {
		t.Fatalf("outage plan exercised no recovery: %+v", res)
	}
	checked := 0
	for _, pj := range res.PerJob {
		st := pj.Stats
		if st.Rejected || st.Failed || st.DoneSec == 0 {
			continue
		}
		checked++
		if st.DoneSec-st.ArrivalSec < st.AloneSec-1e-9 {
			t.Fatalf("job %s: latency %v < alone %v (arrival %v done %v, retries %d)",
				pj.Name, st.DoneSec-st.ArrivalSec, st.AloneSec, st.ArrivalSec, st.DoneSec, st.Retries)
		}
		if st.LostWorkSec < 0 || st.ServiceSec < st.LostWorkSec-1e-9 {
			t.Fatalf("job %s: lost %v of %v service seconds", pj.Name, st.LostWorkSec, st.ServiceSec)
		}
	}
	if checked == 0 {
		t.Fatal("no completed jobs to check")
	}
	if again := mustFleet(t, smallFleet(), jobs, opt); !reflect.DeepEqual(res, again) {
		t.Fatal("faulty fleet run is not byte-stable across repeated simulations")
	}
}

// TestFleetGeneratedFaultsDeterministic pins determinism for a generated
// (MTBF/MTTR-seeded) fault plan spanning all three fault classes, in both
// stats modes.
func TestFleetGeneratedFaultsDeterministic(t *testing.T) {
	jobs := smallTrace(t, 80)
	plan := faults.Plan{
		Seed: 7, HorizonSec: 2,
		WavelengthMTBFSec: 0.4, WavelengthMTTRSec: 0.05,
		JobFaultMTBFSec: 0.6,
		FabricMTBFSec:   1.0, FabricMTTRSec: 0.1,
	}
	for _, lite := range []bool{false, true} {
		opt := Options{
			Placement: LeastLoaded, Policy: fabric.ElasticReallocate, Lite: lite,
			Faults: plan, Recovery: MigrateOnFailure,
		}
		a := mustFleet(t, smallFleet(), jobs, opt)
		b := mustFleet(t, smallFleet(), jobs, opt)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("lite=%v: seeded faulty fleet run not deterministic", lite)
		}
		if a.JobFaults == 0 && a.Outages == 0 && a.Evictions == 0 {
			t.Fatalf("lite=%v: plan injected nothing: %+v", lite, a)
		}
	}
}
