// Fleet-level fault recovery: whole-fabric outages evict every resident job
// (internal/fabric packages each as a Resubmit) and the fleet decides what
// happens next under a RecoveryPolicy — drop the job, hold it for its own
// fabric's repair, or re-place it on a surviving fabric through the normal
// placement policy. Cross-fabric recovery reuses the migration-as-delayed-
// submit machinery from placement: the job pays the target's migration cost
// plus a capped exponential backoff, and — because checkpoints are
// fabric-local — restarts from scratch against the target's runtime curve.
package fleet

import (
	"fmt"

	"wrht/internal/fabric"
	"wrht/internal/faults"
)

// RecoveryPolicy selects what happens to jobs caught in a fabric outage.
type RecoveryPolicy int

const (
	// RetrySameFabric (the default) holds evicted jobs at the fleet layer
	// and resubmits them to their own fabric once it is repaired, resuming
	// from the last checkpoint.
	RetrySameFabric RecoveryPolicy = iota
	// FailFast drops every job caught in an outage (counted in
	// Result.Killed); their in-flight work is charged to LostWorkSec.
	FailFast
	// MigrateOnFailure re-places evicted jobs on the best surviving fabric
	// per the placement policy, restarting from scratch there; when every
	// admissible fabric is down the job waits for the first repair.
	MigrateOnFailure
)

func (p RecoveryPolicy) String() string {
	switch p {
	case RetrySameFabric:
		return "retry-same-fabric"
	case FailFast:
		return "fail-fast"
	case MigrateOnFailure:
		return "migrate-on-failure"
	default:
		return fmt.Sprintf("RecoveryPolicy(%d)", int(p))
	}
}

func (p RecoveryPolicy) validate() error {
	switch p {
	case RetrySameFabric, FailFast, MigrateOnFailure:
		return nil
	default:
		return fmt.Errorf("fleet: unknown recovery policy %v", p)
	}
}

// inject applies one fault event at its scheduled instant. Wavelength and
// job faults are handled entirely inside the target fabric; fabric outages
// bounce every resident job back through recover.
func (f *fleet) inject(ev faults.Event) {
	if f.err != nil {
		return
	}
	switch ev.Kind {
	case faults.WavelengthDown:
		f.scheds[ev.Fabric].WavelengthsDown(ev.Count)
	case faults.WavelengthUp:
		f.scheds[ev.Fabric].WavelengthsUp(ev.Count)
	case faults.JobFault:
		f.scheds[ev.Fabric].InjectJobFault(ev.Pick, ev.Job)
	case faults.FabricDown:
		f.outage(ev.Fabric)
	case faults.FabricUp:
		f.restore(ev.Fabric)
	}
}

// outage takes fabric fi down, evicting every resident job in deterministic
// admission order.
func (f *fleet) outage(fi int) {
	if f.down[fi] {
		return
	}
	f.down[fi] = true
	f.outagesN++
	for _, rs := range f.scheds[fi].Outage() {
		if f.err != nil {
			return
		}
		f.recover(fi, rs)
	}
}

// restore repairs fabric fi and flushes the jobs waiting on it: first its
// own RetrySameFabric backlog, then every job waiting for ANY fabric.
func (f *fleet) restore(fi int) {
	if !f.down[fi] {
		return
	}
	f.down[fi] = false
	f.scheds[fi].Restore()
	same := f.pendSame[fi]
	f.pendSame[fi] = nil
	for _, rs := range same {
		if f.err != nil {
			return
		}
		f.submitRecovered(fi, fi, rs)
	}
	any := f.pendAny
	f.pendAny = nil
	for _, p := range any {
		if f.err != nil {
			return
		}
		f.migrateEvicted(p.from, p.rs)
	}
}

// recover routes one outage-evicted job per the fleet's recovery policy.
// Also invoked (via the scheduler's OnEvict hook) for jobs whose delayed
// submit lands on a fabric that has since gone down.
func (f *fleet) recover(fi int, rs fabric.Resubmit) {
	switch {
	case f.opt.Recovery == FailFast:
		f.killed++
		f.dropStats(&rs)
	case rs.Retries >= f.retry.MaxRetries:
		f.failedN++
		f.dropStats(&rs)
	case f.opt.Recovery == RetrySameFabric:
		f.pendSame[fi] = append(f.pendSame[fi], rs)
	default: // MigrateOnFailure
		f.migrateEvicted(fi, rs)
	}
}

// dropStats finalizes the stats of a job the fleet gives up on: everything
// not already charged as lost work is charged now, and the job's placement
// record (full mode) keeps the terminal stats.
func (f *fleet) dropStats(rs *fabric.Resubmit) {
	if waste := rs.Stats.ServiceSec - rs.Stats.LostWorkSec; waste > 0 {
		rs.Stats.LostWorkSec += waste
		f.lostAdj += waste
	}
	rs.Stats.Failed = true
	if !f.opt.Lite {
		if pi := f.placeIdx[rs.Job.Tag]; pi >= 0 {
			f.placements[pi].Stats = rs.Stats
		}
	}
}

// migrateEvicted re-places one evicted job on the best surviving fabric, or
// parks it until the first repair when nothing admissible is up.
func (f *fleet) migrateEvicted(from int, rs fabric.Resubmit) {
	minW := rs.Job.MinWavelengths
	if minW == 0 {
		minW = 1
	}
	target := f.choose(f.jobs[rs.Job.Tag], minW)
	if target < 0 {
		if f.err == nil {
			f.pendAny = append(f.pendAny, pendRes{from: from, rs: rs})
		}
		return
	}
	f.submitRecovered(target, from, rs)
}

// submitRecovered resubmits one recovered job to fabric `target` after its
// retry backoff. `from` is the fabric it last ran on (-1 for a front-door
// arrival that was deferred because its admissible fabrics were all down).
// Landing on a different fabric restarts the job from scratch — checkpoints
// are fabric-local — and pays the target's migration cost when the move is
// a real migration (cross-fabric, or off-affinity for a first placement).
func (f *fleet) submitRecovered(target, from int, rs fabric.Resubmit) {
	now := f.eng.Now()
	ji := rs.Job.Tag
	jb := f.jobs[ji]
	job := rs.Job
	delay := f.retry.Delay(rs.Retries)
	rs.Retries++
	moved := target != from
	if moved {
		rs.Remaining, rs.CkptRemaining, rs.CkptService = 1, 1, 0
		if waste := rs.Stats.ServiceSec - rs.Stats.LostWorkSec; waste > 0 {
			rs.Stats.LostWorkSec += waste
			f.lostAdj += waste
		}
		job.MaxWavelengths = jb.MaxWavelengths
		job.Runtime = f.runtimeFor(target, jb.Shape)
		f.placed[target]++
	}
	mig := 0.0
	if (from >= 0 && moved) || (from < 0 && jb.Affinity >= 0 && target != jb.Affinity) {
		mig = f.specs[target].MigrationCostSec
		delay += mig
		f.migrations++
		f.migrationS += mig
		f.migrated[target]++
	}
	job.ArrivalSec = now + delay
	rs.Job = job
	if err := f.scheds[target].SubmitResumed(rs); err != nil {
		f.err = err
		return
	}
	if f.opt.Lite {
		return
	}
	if pi := f.placeIdx[ji]; pi >= 0 {
		p := &f.placements[pi]
		p.Fabric = target
		if mig > 0 {
			p.Migrated = true
			p.MigrationSec += mig
		}
	} else {
		f.placeIdx[ji] = len(f.placements)
		f.placements = append(f.placements, PlacedJob{
			Name: job.Name, Fabric: target, Migrated: mig > 0, MigrationSec: mig,
		})
	}
}

// anyDownFits reports whether some currently-down fabric could structurally
// admit a job with floor minW — i.e. whether deferring beats rejecting.
func (f *fleet) anyDownFits(minW int) bool {
	for i, spec := range f.specs {
		if f.down[i] && minW <= spec.Wavelengths {
			return true
		}
	}
	return false
}

// deferArrival parks a front-door arrival whose only admissible fabrics are
// currently down; it re-enters placement at the next repair.
func (f *fleet) deferArrival(i int, j Job) {
	now := f.eng.Now()
	name := j.Name
	if name == "" && !f.opt.Lite {
		name = fmt.Sprintf("j%d", i)
	}
	f.pendAny = append(f.pendAny, pendRes{from: -1, rs: fabric.Resubmit{
		Job: fabric.Job{
			Name:               name,
			ArrivalSec:         now,
			Priority:           j.Priority,
			MinWavelengths:     j.MinWavelengths,
			MaxWavelengths:     j.MaxWavelengths,
			Iterations:         j.Iterations,
			Shape:              j.Shape + 1, // fabric shape 0 = private curve
			CheckpointEverySec: j.CheckpointEverySec,
			Tag:                i,
		},
		Remaining:     1,
		CkptRemaining: 1,
		Stats:         fabric.JobStats{Name: name, ArrivalSec: now},
	}})
}

// abandon counts a job still parked at simulation end (a scripted outage
// with no matching repair) as failed.
func (f *fleet) abandon(rs fabric.Resubmit) {
	f.failedN++
	f.dropStats(&rs)
}
