package fleet

import (
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestTraceSpecValidation(t *testing.T) {
	ok := TraceSpec{Kind: Poisson, Jobs: 10, MeanGapSec: 1, NumShapes: 2, NumFabrics: 2}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*TraceSpec)
		want   string
	}{
		{"bad kind", func(s *TraceSpec) { s.Kind = TraceKind(7) }, "trace kind"},
		{"zero jobs", func(s *TraceSpec) { s.Jobs = 0 }, "job count"},
		{"negative gap", func(s *TraceSpec) { s.MeanGapSec = -1 }, "mean gap"},
		{"nan gap", func(s *TraceSpec) { s.MeanGapSec = math.NaN() }, "mean gap"},
		{"zero shapes", func(s *TraceSpec) { s.NumShapes = 0 }, "shape count"},
		{"zero fabrics", func(s *TraceSpec) { s.NumFabrics = 0 }, "fabric count"},
		{"negative width", func(s *TraceSpec) { s.MaxWidth = -1 }, "max width"},
		{"negative priorities", func(s *TraceSpec) { s.Priorities = -1 }, "priority count"},
		{"negative period", func(s *TraceSpec) { s.PeriodSec = -1 }, "diurnal period"},
		{"amplitude one", func(s *TraceSpec) { s.Amplitude = 1 }, "diurnal amplitude"},
		{"alpha one", func(s *TraceSpec) { s.TailAlpha = 1 }, "tail alpha"},
		{"burst prob", func(s *TraceSpec) { s.BurstProb = 1.5 }, "burst probability"},
		{"burst size", func(s *TraceSpec) { s.BurstSize = -1 }, "burst size"},
	}
	for _, c := range cases {
		s := ok
		c.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if _, err := s.Gen(); err == nil {
			t.Fatalf("%s: Gen accepted an invalid spec", c.name)
		}
	}
}

// TestTraceDeterministicBySeed pins that the same spec regenerates the
// identical trace, that different seeds differ, and that generation is
// byte-stable under concurrency (no hidden global randomness or
// GOMAXPROCS dependence).
func TestTraceDeterministicBySeed(t *testing.T) {
	spec := TraceSpec{
		Kind: HeavyTail, Jobs: 2000, Seed: 7, MeanGapSec: 0.05,
		NumShapes: 5, NumFabrics: 4,
	}
	ref, err := spec.Gen()
	if err != nil {
		t.Fatal(err)
	}
	workers := 2 * runtime.GOMAXPROCS(0)
	got := make([][]Job, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = spec.Gen()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if !reflect.DeepEqual(g, ref) {
			t.Fatalf("worker %d: concurrent regeneration diverged", i)
		}
	}
	other := spec
	other.Seed = 8
	alt, err := other.Gen()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(alt, ref) {
		t.Fatal("different seeds produced the identical trace")
	}
	for i, j := range ref {
		if j.Shape < 0 || j.Shape >= spec.NumShapes ||
			j.Affinity < 0 || j.Affinity >= spec.NumFabrics ||
			j.MaxWavelengths < 1 || j.MaxWavelengths > 8 ||
			j.ArrivalSec < 0 {
			t.Fatalf("job %d out of spec bounds: %+v", i, j)
		}
		if i > 0 && j.ArrivalSec < ref[i-1].ArrivalSec {
			t.Fatalf("job %d arrivals not monotone: %v after %v", i, j.ArrivalSec, ref[i-1].ArrivalSec)
		}
	}
}

// gaps returns the positive inter-arrival gaps of a trace (zero gaps are
// burst co-arrivals).
func gaps(jobs []Job) (pos []float64, zeros int) {
	for i := 1; i < len(jobs); i++ {
		g := jobs[i].ArrivalSec - jobs[i-1].ArrivalSec
		if g == 0 {
			zeros++
		} else {
			pos = append(pos, g)
		}
	}
	return pos, zeros
}

// TestTracePoissonMeanGap pins the generated mean inter-arrival gap to the
// spec within 5% on a 20k-job trace (the standard error of the mean is
// ~0.7%).
func TestTracePoissonMeanGap(t *testing.T) {
	const mean = 0.04
	jobs, err := TraceSpec{
		Kind: Poisson, Jobs: 20000, Seed: 11, MeanGapSec: mean,
		NumShapes: 3, NumFabrics: 4,
	}.Gen()
	if err != nil {
		t.Fatal(err)
	}
	pos, zeros := gaps(jobs)
	if zeros != 0 {
		t.Fatalf("poisson trace produced %d zero gaps", zeros)
	}
	sum := 0.0
	for _, g := range pos {
		sum += g
	}
	got := sum / float64(len(pos))
	if math.Abs(got-mean)/mean > 0.05 {
		t.Fatalf("poisson mean gap %v, want %v within 5%%", got, mean)
	}
}

// TestTraceHeavyTailMass pins the two defining features of the bursty
// trace: burst co-arrivals (zero gaps) and a Pareto tail heavier than the
// exponential (far more >5x-mean gaps than a Poisson trace would show),
// with every gap at least the Pareto scale xm.
func TestTraceHeavyTailMass(t *testing.T) {
	const mean, alpha = 0.05, 1.5
	jobs, err := TraceSpec{
		Kind: HeavyTail, Jobs: 20000, Seed: 13, MeanGapSec: mean,
		NumShapes: 3, NumFabrics: 4, TailAlpha: alpha,
	}.Gen()
	if err != nil {
		t.Fatal(err)
	}
	pos, zeros := gaps(jobs)
	if zeros == 0 {
		t.Fatal("heavy-tail trace produced no burst co-arrivals")
	}
	xm := mean * (alpha - 1) / alpha
	tail := 0
	for _, g := range pos {
		if g < xm*(1-1e-12) {
			t.Fatalf("gap %v below the Pareto scale %v", g, xm)
		}
		if g > 5*mean {
			tail++
		}
	}
	// Pareto(1.5): P(gap > 5*mean) = (xm/(5*mean))^1.5 ~= 1.7%;
	// exponential: e^-5 ~= 0.67%. Split the difference as the floor.
	if frac := float64(tail) / float64(len(pos)); frac < 0.012 {
		t.Fatalf("tail mass %v: heavy-tail gaps are not heavy (want > 1.2%% beyond 5x mean)", frac)
	}
}

// TestTraceDiurnalModulation pins that the diurnal trace is denser in the
// high-rate half-period than the low-rate half.
func TestTraceDiurnalModulation(t *testing.T) {
	const period = 10.0
	jobs, err := TraceSpec{
		Kind: Diurnal, Jobs: 20000, Seed: 17, MeanGapSec: 0.01,
		NumShapes: 3, NumFabrics: 4, PeriodSec: period, Amplitude: 0.8,
	}.Gen()
	if err != nil {
		t.Fatal(err)
	}
	high, low := 0, 0
	for _, j := range jobs {
		if math.Mod(j.ArrivalSec, period) < period/2 {
			high++
		} else {
			low++
		}
	}
	if float64(high) < 1.5*float64(low) {
		t.Fatalf("diurnal modulation too weak: %d high-phase vs %d low-phase arrivals", high, low)
	}
}
