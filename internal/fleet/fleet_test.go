package fleet

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"wrht/internal/fabric"
)

// testRT prices shape s on fabric f as (0.1*(1+s))/w, slightly slowed on
// higher-index fabrics so placements are not all symmetric.
func testRT(fab, shape, w int) (float64, error) {
	return 0.1 * float64(1+shape) * (1 + 0.05*float64(fab)) / float64(w), nil
}

func smallFleet() []FabricSpec {
	return []FabricSpec{
		{Name: "big", Nodes: 64, Wavelengths: 16, ReconfigDelaySec: 0.001, MigrationCostSec: 0.5},
		{Name: "mid", Nodes: 32, Wavelengths: 8, ReconfigDelaySec: 0.002, MigrationCostSec: 0.3},
		{Name: "small", Nodes: 16, Wavelengths: 4, ReconfigDelaySec: 0.005, MigrationCostSec: 0.1},
	}
}

func smallTrace(t *testing.T, n int) []Job {
	t.Helper()
	jobs, err := TraceSpec{
		Kind: Poisson, Jobs: n, Seed: 42, MeanGapSec: 0.02,
		NumShapes: 4, NumFabrics: 3, MaxWidth: 8,
	}.Gen()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func mustFleet(t *testing.T, specs []FabricSpec, jobs []Job, opt Options) Result {
	t.Helper()
	res, err := Simulate(specs, jobs, testRT, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFleetValidation(t *testing.T) {
	ok := smallFleet()
	jobs := smallTrace(t, 10)
	cases := []struct {
		name  string
		specs []FabricSpec
		jobs  []Job
		rt    RuntimeFunc
		opt   Options
		want  string
	}{
		{"empty fleet", nil, jobs, testRT, Options{}, "empty fleet"},
		{"no jobs", ok, nil, testRT, Options{}, "no jobs"},
		{"nil runtime", ok, jobs, nil, Options{}, "no runtime"},
		{"bad placement", ok, jobs, testRT, Options{Placement: PlacementKind(9)}, "placement kind"},
		{"zero budget", []FabricSpec{{Name: "x", Nodes: 8, Wavelengths: 0}}, jobs, testRT, Options{},
			"wavelength budget 0"},
		{"one node", []FabricSpec{{Name: "x", Nodes: 1, Wavelengths: 4}}, jobs, testRT, Options{},
			"node count 1"},
		{"negative reconfig", []FabricSpec{{Name: "x", Nodes: 8, Wavelengths: 4, ReconfigDelaySec: -1}},
			jobs, testRT, Options{}, "reconfiguration delay"},
		{"negative migration", []FabricSpec{{Name: "x", Nodes: 8, Wavelengths: 4, MigrationCostSec: -2}},
			jobs, testRT, Options{}, "migration cost"},
		{"nan migration", []FabricSpec{{Name: "x", Nodes: 8, Wavelengths: 4, MigrationCostSec: math.NaN()}},
			jobs, testRT, Options{}, "migration cost"},
		{"negative arrival", ok, []Job{{ArrivalSec: -1}}, testRT, Options{}, "arrival"},
		{"bad range", ok, []Job{{MinWavelengths: 5, MaxWavelengths: 2}}, testRT, Options{}, "wavelength range"},
		{"bad shape", ok, []Job{{Shape: -1}}, testRT, Options{}, "shape"},
		{"bad affinity", ok, []Job{{Affinity: 3}}, testRT, Options{}, "affinity"},
		{"bad affinity low", ok, []Job{{Affinity: -2}}, testRT, Options{}, "affinity"},
		{"bad iterations", ok, []Job{{Iterations: -1}}, testRT, Options{}, "iterations"},
	}
	for _, c := range cases {
		_, err := Simulate(c.specs, c.jobs, c.rt, c.opt)
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestFleetDeterministic pins that two identical runs produce identical
// results, per placement policy and in both stats modes.
func TestFleetDeterministic(t *testing.T) {
	jobs := smallTrace(t, 60)
	for _, pk := range []PlacementKind{LeastLoaded, BestFit, PriorityAware} {
		for _, lite := range []bool{false, true} {
			opt := Options{Placement: pk, Lite: lite}
			a := mustFleet(t, smallFleet(), jobs, opt)
			b := mustFleet(t, smallFleet(), jobs, opt)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%v lite=%v: non-deterministic fleet result", pk, lite)
			}
		}
	}
}

// TestFleetLiteMatchesFullAggregates pins that Lite mode reproduces the
// full mode's fleet aggregates.
func TestFleetLiteMatchesFullAggregates(t *testing.T) {
	jobs := smallTrace(t, 80)
	for _, pk := range []PlacementKind{LeastLoaded, BestFit, PriorityAware} {
		full := mustFleet(t, smallFleet(), jobs, Options{Placement: pk})
		lite := mustFleet(t, smallFleet(), jobs, Options{Placement: pk, Lite: true})
		if lite.PerJob != nil {
			t.Fatalf("%v: lite retained per-job placements", pk)
		}
		if lite.Completed != full.Completed || lite.Rejected != full.Rejected ||
			lite.Migrations != full.Migrations || lite.Reconfigs != full.Reconfigs ||
			lite.Preemptions != full.Preemptions {
			t.Fatalf("%v: counts diverge:\n  lite %+v\n  full %+v", pk, lite, full)
		}
		approx := func(a, b float64) bool {
			return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
		}
		if !approx(lite.MakespanSec, full.MakespanSec) ||
			!approx(lite.MeanSlowdown, full.MeanSlowdown) ||
			!approx(lite.Fairness, full.Fairness) ||
			!approx(lite.Utilization, full.Utilization) {
			t.Fatalf("%v: aggregates diverge:\n  lite %+v\n  full %+v", pk, lite, full)
		}
	}
}

// TestFleetPlacementSpreads pins that least-loaded actually spreads an
// affinity-free burst across fabrics rather than piling onto one.
func TestFleetPlacementSpreads(t *testing.T) {
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{
			ArrivalSec: float64(i) * 1e-4, MaxWavelengths: 4,
			Iterations: 1, Shape: 0, Affinity: -1,
		})
	}
	res := mustFleet(t, smallFleet(), jobs, Options{Placement: LeastLoaded})
	used := 0
	for _, f := range res.PerFabric {
		if f.Placed > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("least-loaded piled all 12 jobs onto one fabric: %+v", res.PerFabric)
	}
	if res.Migrations != 0 {
		t.Fatalf("affinity-free jobs counted as migrations: %d", res.Migrations)
	}
}

// TestFleetMigrationAccounting pins that off-affinity placements pay the
// target fabric's migration cost and are counted, and that priority-aware
// placement keeps a job home when migration is expensive.
func TestFleetMigrationAccounting(t *testing.T) {
	specs := []FabricSpec{
		{Name: "home", Nodes: 16, Wavelengths: 2, MigrationCostSec: 5},
		{Name: "away", Nodes: 16, Wavelengths: 16, MigrationCostSec: 5},
	}
	// One job with affinity 0; least-loaded will move it to the empty big
	// fabric... but both are empty, so load is 0 on both; the tie-break
	// keeps it home. Add a blocker on home first so home is loaded.
	jobs := []Job{
		{Name: "blocker", ArrivalSec: 0, MaxWavelengths: 2, Affinity: 0},
		{Name: "mover", ArrivalSec: 1e-3, MaxWavelengths: 2, Affinity: 0},
	}
	res := mustFleet(t, specs, jobs, Options{Placement: LeastLoaded})
	if res.Migrations != 1 {
		t.Fatalf("expected exactly 1 migration, got %d (%+v)", res.Migrations, res.PerFabric)
	}
	if res.MigrationSec != 5 {
		t.Fatalf("migration delay %v, want 5", res.MigrationSec)
	}
	var mover PlacedJob
	for _, p := range res.PerJob {
		if p.Name == "mover" {
			mover = p
		}
	}
	if !mover.Migrated || mover.Fabric != 1 || mover.MigrationSec != 5 {
		t.Fatalf("mover placement: %+v", mover)
	}
	// Priority-aware weighs the 5 s migration against a sub-second queue
	// wait and keeps the mover home.
	res = mustFleet(t, specs, jobs, Options{Placement: PriorityAware})
	if res.Migrations != 0 {
		t.Fatalf("priority-aware migrated despite 5s cost: %+v", res.PerFabric)
	}
}

// TestFleetUnplaceable pins the fleet-level rejection of jobs whose
// minimum exceeds every budget.
func TestFleetUnplaceable(t *testing.T) {
	specs := []FabricSpec{{Name: "tiny", Nodes: 8, Wavelengths: 2}}
	jobs := []Job{
		{Name: "fits", MaxWavelengths: 2},
		{Name: "huge", MinWavelengths: 4, MaxWavelengths: 8},
	}
	res := mustFleet(t, specs, jobs, Options{})
	if res.Unplaceable != 1 || res.Rejected != 1 || res.Completed != 1 {
		t.Fatalf("unplaceable accounting: %+v", res)
	}
}

// TestFleetSolverStatsAggregate pins that per-fabric solver-work counters
// roll up into the fleet result.
func TestFleetSolverStatsAggregate(t *testing.T) {
	res := mustFleet(t, smallFleet(), smallTrace(t, 60), Options{
		Placement: BestFit, Policy: fabric.ElasticReallocate, Lite: true,
	})
	if res.Solver.Solves == 0 || res.Solver.JobsRepriced == 0 {
		t.Fatalf("fleet solver counters empty: %+v", res.Solver)
	}
	if res.Solver.CurveHits == 0 {
		t.Fatalf("shape curve cache never hit on a 60-job 4-shape trace: %+v", res.Solver)
	}
}
