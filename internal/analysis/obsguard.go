package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Obsguard keeps the flight recorder's zero-cost-disabled invariant
// structural:
//
//   - inside internal/obs, every method on *Recorder and *Histogram must
//     reach a nil-receiver guard (`if r == nil { return ... }`, possibly
//     `r == nil || ...`) before its first real use of the receiver, so a nil
//     (disabled) recorder stays a single predictable branch. Methods whose
//     names end in "Locked" are lock-held internals reached only after a
//     guard and are exempt, as is the `return r != nil` shape of Enabled;
//   - everywhere else in the module, *obs.Recorder and *obs.Histogram must
//     never be boxed into an interface (argument, assignment, or return):
//     the recorder is deliberately a concrete handle — an interface-typed
//     recorder would make every disabled call an allocation and an
//     indirection (see the package doc of internal/obs).
var Obsguard = &Analyzer{
	Name: "obsguard",
	Doc:  "enforce the obs nil-guard idiom and forbid boxing the recorder",
	Run:  runObsguard,
}

const obsPkgSuffix = "internal/obs"

func runObsguard(p *Pass) error {
	if strings.HasSuffix(p.PkgPath, obsPkgSuffix) {
		for _, f := range p.Files {
			for _, fn := range enclosingFuncDecls(f) {
				checkRecorderMethodGuard(p, fn)
			}
		}
		return nil
	}
	if !moduleScope(p.PkgPath) && !strings.HasPrefix(p.PkgPath, "wrht/") {
		return nil
	}
	for _, f := range p.Files {
		checkRecorderBoxing(p, f)
	}
	return nil
}

// checkRecorderMethodGuard enforces guard-before-dereference on recorder
// methods: scanning top-level statements in order, a nil-receiver guard must
// appear before any statement that uses the receiver beyond nil comparisons.
func checkRecorderMethodGuard(p *Pass, fn *ast.FuncDecl) {
	switch receiverBaseName(fn) {
	case "Recorder", "Histogram":
	default:
		return
	}
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return // lock-held internals, reached only past a guarded entry point
	}
	recv := receiverObject(p.TypesInfo, fn)
	if recv == nil {
		return // blank receiver cannot be dereferenced
	}
	for _, stmt := range fn.Body.List {
		if isNilGuard(p.TypesInfo, stmt, recv) {
			return
		}
		if use := firstRecvUse(p.TypesInfo, stmt, recv); use != nil {
			p.Reportf(use.Pos(), "method %s uses receiver %s before its nil guard; a disabled recorder must stay one branch (guard first, or suffix the name with Locked)", fn.Name.Name, recv.Name())
			return
		}
	}
	// Never dereferenced at the top level at all (e.g. `return r != nil`):
	// that is its own disabled path.
}

// firstRecvUse returns the first identifier in stmt that uses recv outside a
// nil comparison, or nil.
func firstRecvUse(info *types.Info, stmt ast.Stmt, recv types.Object) ast.Node {
	var found ast.Node
	var stack []ast.Node
	ast.Inspect(stmt, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != recv {
			return true
		}
		// Walk outward past parens: a use inside `recv == nil` is the guard
		// itself, not a dereference. A use as the receiver of a method call
		// (`return r.track(...)`) is safe delegation — calling a method on a
		// nil pointer is legal, and every method is itself held to this rule,
		// so guard-before-use holds by induction.
		for i := len(stack) - 2; i >= 0; i-- {
			switch parent := stack[i].(type) {
			case *ast.ParenExpr:
				continue
			case *ast.BinaryExpr:
				if isNilComparison(info, parent, recv) {
					return true
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[parent]; ok && sel.Kind() == types.MethodVal {
					if i > 0 {
						if call, ok := stack[i-1].(*ast.CallExpr); ok && call.Fun == ast.Expr(parent) {
							return true
						}
					}
				}
			}
			break
		}
		found = id
		return false
	})
	return found
}

// checkRecorderBoxing flags any site that converts a *obs.Recorder or
// *obs.Histogram into an interface value.
func checkRecorderBoxing(p *Pass, f *ast.File) {
	isRecorder := func(expr ast.Expr) bool {
		tv, ok := p.TypesInfo.Types[expr]
		return ok && typeIsObsPointer(tv.Type, obsPkgSuffix, "Recorder", "Histogram")
	}
	report := func(n ast.Node, what string) {
		p.Reportf(n.Pos(), "%s boxes the flight recorder into an interface; keep it a concrete *obs handle so the disabled path never allocates", what)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isConversion(p.TypesInfo, n) && len(n.Args) == 1 && isRecorder(n.Args[0]) {
				if tv, ok := p.TypesInfo.Types[n.Fun]; ok && types.IsInterface(tv.Type) {
					report(n, "conversion")
				}
				return true
			}
			forEachBoxedArg(p.TypesInfo, n, func(arg ast.Expr, _ types.Type) {
				if isRecorder(arg) {
					report(arg, "call argument")
				}
			})
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isRecorder(rhs) {
					continue
				}
				if ltv, ok := p.TypesInfo.Types[n.Lhs[i]]; ok && boxesInto(p.TypesInfo, rhs, ltv.Type) {
					report(rhs, "assignment")
				}
			}
		case *ast.ValueSpec:
			if n.Type == nil {
				return true
			}
			dtv, ok := p.TypesInfo.Types[n.Type]
			if !ok {
				return true
			}
			for _, v := range n.Values {
				if isRecorder(v) && boxesInto(p.TypesInfo, v, dtv.Type) {
					report(v, "declaration")
				}
			}
		case *ast.FuncDecl:
			if n.Body == nil {
				return true
			}
			obj, ok := p.TypesInfo.Defs[n.Name].(*types.Func)
			if !ok {
				return true
			}
			results := obj.Type().(*types.Signature).Results()
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if _, ok := inner.(*ast.FuncLit); ok {
					return false // returns inside closures have their own signature
				}
				ret, ok := inner.(*ast.ReturnStmt)
				if !ok || results.Len() != len(ret.Results) {
					return true
				}
				for i, res := range ret.Results {
					if isRecorder(res) && boxesInto(p.TypesInfo, res, results.At(i).Type()) {
						report(res, "return")
					}
				}
				return true
			})
		}
		return true
	})
}
